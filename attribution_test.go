package cais_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"cais"
	"cais/internal/attrib"
)

// Acceptance tests for the time-attribution engine (DESIGN.md §12): for
// every evaluated strategy the per-component buckets and the critical-path
// shares must each sum to the run's elapsed time EXACTLY, in integer
// simulation ticks — attribution is a partition, not an estimate.

// tinyModel keeps attribution runs fast while still exercising every
// kernel kind and both communication directions.
func tinyModel() cais.Model {
	return cais.Model{Name: "Tiny", Hidden: 512, FFNHidden: 2048, Heads: 4, SeqLen: 512, Batch: 2, Layers: 2}
}

func attributedRun(t *testing.T, s cais.Strategy, sched *cais.FaultSchedule) cais.Result {
	t.Helper()
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10
	hw.Seed = 0xD37E12
	res, err := cais.RunInferenceOpts(hw, s, tinyModel(), 1, cais.RunOptions{Attrib: true, Faults: sched})
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	if res.Attrib == nil {
		t.Fatalf("%s: RunOptions.Attrib set but Result.Attrib is nil", s.Name)
	}
	return res
}

func assertExactPartition(t *testing.T, name string, res cais.Result) {
	t.Helper()
	rep := res.Attrib
	if rep.Elapsed != res.Elapsed {
		t.Errorf("%s: report elapsed %v != run elapsed %v", name, rep.Elapsed, res.Elapsed)
	}
	if len(rep.Components) == 0 {
		t.Fatalf("%s: report has no components", name)
	}
	for _, c := range rep.Components {
		if got := c.Total(); got != rep.Elapsed {
			t.Errorf("%s/%s: buckets sum to %v, want elapsed %v (off by %d ticks)",
				name, c.Name, got, rep.Elapsed, int64(got-rep.Elapsed))
		}
		for _, b := range c.Buckets {
			if b < 0 {
				t.Errorf("%s/%s: negative bucket %v", name, c.Name, b)
			}
		}
	}
	var pathSum cais.Time
	for _, s := range rep.PathShare {
		pathSum += s.Time
	}
	if pathSum != rep.Elapsed {
		t.Errorf("%s: critical-path shares sum to %v, want elapsed %v", name, pathSum, rep.Elapsed)
	}
}

// TestAttributionBucketsSumExact covers every strategy of the evaluation
// (the Table II pair included): exact partition per GPU and per plane.
func TestAttributionBucketsSumExact(t *testing.T) {
	for _, s := range cais.Strategies() {
		assertExactPartition(t, s.Name, attributedRun(t, s, nil))
	}
}

// TestAttributionExactUnderFaults repeats the partition check with a mixed
// fault schedule active: fault windows claim time like any other bucket
// and must not break exactness.
func TestAttributionExactUnderFaults(t *testing.T) {
	sched, err := cais.ParseFaultSchedule([]byte(`{
		"name": "attrib-mix",
		"faults": [
			{"kind": "link-degrade", "at_us": 5, "for_us": 100, "factor": 0.5},
			{"kind": "plane-down", "at_us": 20, "plane": 3},
			{"kind": "straggler", "at_us": 0, "gpu": 1, "factor": 1.5}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res := assertFaultAttrib(t, sched)
	// The straggler targets gpu1 from t=0 with no end: some fault-stall
	// time must actually be attributed, or the schedule wiring is dead.
	var fault cais.Time
	for _, c := range res.Attrib.Components {
		fault += c.Buckets[attrib.FaultStall]
	}
	if fault == 0 {
		t.Error("active fault schedule attributed zero fault-stall time")
	}
}

func assertFaultAttrib(t *testing.T, sched *cais.FaultSchedule) cais.Result {
	t.Helper()
	res := attributedRun(t, cais.CAIS(), sched)
	assertExactPartition(t, "CAIS+faults", res)
	return res
}

// TestAttributionReportExports smoke-tests the single-run export surface:
// both JSON forms must be valid documents and the rendered tables
// non-empty.
func TestAttributionReportExports(t *testing.T) {
	res := attributedRun(t, cais.CAIS(), nil)
	if out := res.Attrib.Render(); len(out) == 0 {
		t.Fatal("empty rendered report")
	}
	var buf bytes.Buffer
	if err := res.Attrib.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var point struct {
		Elapsed    int64             `json:"elapsed_ps"`
		Components []json.RawMessage `json:"components"`
	}
	if err := json.Unmarshal(buf.Bytes(), &point); err != nil {
		t.Fatalf("attribution JSON does not decode: %v", err)
	}
	if point.Elapsed != int64(res.Elapsed) || len(point.Components) == 0 {
		t.Fatalf("attribution JSON lost data: elapsed %d, %d components", point.Elapsed, len(point.Components))
	}
	buf.Reset()
	if err := res.Attrib.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace export is not valid JSON")
	}
}

// TestAttributionDisabledIsFree pins the off-switch: without
// RunOptions.Attrib no report materializes and no tracer is implicitly
// attached (the hot path stays the nil-check-only seed path).
func TestAttributionDisabledIsFree(t *testing.T) {
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10
	res, err := cais.RunInference(hw, cais.CAIS(), tinyModel(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attrib != nil {
		t.Fatal("attribution report produced without opt-in")
	}
	if !res.Timeline.IsZero() {
		t.Fatal("utilization timeline recorded without opt-in")
	}
}

// Command caislint runs the project's determinism & unit-safety static
// analyzer over the simulator source tree.
//
// Usage:
//
//	caislint [-json] [-C dir] [patterns...]
//
// Patterns default to "./..." and are resolved against the module root (a
// directory containing go.mod, found by walking up from -C or the current
// directory). Exit status is 0 when the tree is clean, 1 when diagnostics
// were reported, and 2 when the analysis itself failed to run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cais/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	dir := flag.String("C", ".", "directory to start the module-root search from")
	flag.Parse()

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caislint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.Config{Dir: root, Patterns: flag.Args()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "caislint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "caislint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "caislint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir until it finds a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

// Command caislint runs the project's determinism, unit-safety and
// cache-soundness static analyzer over the simulator source tree.
//
// Usage:
//
//	caislint [-json] [-sarif file] [-cache file] [-checks a,b] [-list] [-C dir] [patterns...]
//
// Patterns default to "./..." and are resolved against the module root (a
// directory containing go.mod, found by walking up from -C or the current
// directory). -list prints the registered checks and exits. -checks runs
// a subset by name. -cache enables incremental mode: per-package results
// are reused when neither the package nor any of its transitive module
// dependencies changed. -sarif additionally writes a SARIF 2.1.0 log
// ("-" for stdout) for code-scanning UIs and CI artifacts.
//
// Exit status is 0 when the tree is clean, 1 when diagnostics were
// reported, and 2 when the analysis itself failed to run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cais/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	sarifOut := flag.String("sarif", "", "also write a SARIF 2.1.0 log to this file (\"-\" for stdout)")
	cachePath := flag.String("cache", "", "incremental mode: cache per-package results in this file")
	checksFlag := flag.String("checks", "", "comma-separated subset of checks to run (default: all)")
	list := flag.Bool("list", false, "print the registered checks with their one-line docs and exit")
	dir := flag.String("C", ".", "directory to start the module-root search from")
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := findModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "caislint:", err)
		os.Exit(2)
	}
	var checks []string
	if *checksFlag != "" {
		checks = strings.Split(*checksFlag, ",")
	}
	diags, err := lint.Run(lint.Config{
		Dir:       root,
		Patterns:  flag.Args(),
		Checks:    checks,
		CachePath: *cachePath,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "caislint:", err)
		os.Exit(2)
	}
	if *sarifOut != "" {
		data, err := lint.SARIF(diags, root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "caislint: sarif:", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if *sarifOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*sarifOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "caislint: sarif:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "caislint:", err)
			os.Exit(2)
		}
	} else if *sarifOut != "-" {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "caislint: %d violation(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// findModuleRoot walks up from dir until it finds a go.mod.
func findModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", abs)
		}
		d = parent
	}
}

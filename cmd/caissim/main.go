// Command caissim regenerates the paper's tables and figures from the CAIS
// simulation stack, or runs individual workloads under a chosen execution
// strategy.
//
// Usage:
//
//	caissim -experiment fig11            # regenerate one figure/table
//	caissim -experiment all              # regenerate everything
//	caissim -experiment fig14 -quick     # reduced fidelity (fast)
//	caissim -list                        # list experiment IDs
//	caissim -strategy CAIS -model llama-7b -layers 1 -training
//	caissim -strategies                  # list strategies
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cais"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (see -list), or 'all'")
		quick      = flag.Bool("quick", false, "reduced fidelity (fast)")
		list       = flag.Bool("list", false, "list experiment IDs")
		strategies = flag.Bool("strategies", false, "list execution strategies")
		strat      = flag.String("strategy", "", "run one workload under this strategy")
		modelName  = flag.String("model", "llama-7b", "model: mega-gpt-4b | mega-gpt-8b | llama-7b")
		layers     = flag.Int("layers", 1, "transformer layers to simulate")
		training   = flag.Bool("training", false, "simulate training (fwd+bwd) instead of prefill")
		gpus       = flag.Int("gpus", 0, "override the GPU count (default: 8)")
		requestKB  = flag.Int("request-kb", 0, "override the request granularity in KB")
	)
	flag.Parse()

	switch {
	case *list:
		for _, n := range cais.ExperimentNames() {
			fmt.Println(n)
		}
	case *strategies:
		for _, s := range cais.Strategies() {
			nvls := ""
			if s.UsesNVLS() {
				nvls = " (in-switch computing)"
			}
			fmt.Printf("%-14s layout=%s%s\n", s.Name, s.Layout, nvls)
		}
		for _, s := range cais.ExtensionStrategies() {
			fmt.Printf("%-14s layout=%s (extension beyond the paper)\n", s.Name, s.Layout)
		}
	case *strat != "":
		runStrategy(*strat, *modelName, *layers, *training, *gpus, *requestKB)
	case *experiment != "":
		runExperiments(*experiment, *quick)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runExperiments(id string, quick bool) {
	cfg := cais.DefaultExperiments()
	if quick {
		cfg = cais.QuickExperiments()
	}
	ids := []string{id}
	if id == "all" {
		ids = cais.ExperimentNames()
	}
	for _, x := range ids {
		start := time.Now()
		out, err := cais.RunExperiment(x, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", x, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", x, time.Since(start).Round(time.Millisecond))
	}
}

func runStrategy(name, modelName string, layers int, training bool, gpus, requestKB int) {
	spec, err := cais.StrategyByName(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	var m cais.Model
	switch strings.ToLower(modelName) {
	case "mega-gpt-4b":
		m = cais.MegaGPT4B()
	case "mega-gpt-8b":
		m = cais.MegaGPT8B()
	case "llama-7b":
		m = cais.LLaMA7B()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", modelName)
		os.Exit(1)
	}
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10
	if gpus > 0 {
		hw.NumGPUs = gpus
	}
	if requestKB > 0 {
		hw.RequestBytes = int64(requestKB) << 10
	}
	run := cais.RunInference
	kind := "inference (prefill)"
	if training {
		run = cais.RunTraining
		kind = "training step"
	}
	res, err := run(hw, spec, m, layers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	perLayer := res.Elapsed / cais.Time(layers)
	full := perLayer * cais.Time(m.Layers)
	fmt.Printf("%s on %s, %s\n", spec.Name, m.Name, kind)
	fmt.Printf("  simulated %d layer(s): %v (%v per layer)\n", layers, res.Elapsed, perLayer)
	fmt.Printf("  extrapolated full model (%d layers): %v\n", m.Layers, full)
	fmt.Printf("  avg link utilization: %.1f%%\n", res.AvgUtil*100)
	st := res.Stats
	fmt.Printf("  merged loads: %d  merged reductions: %d  sync releases: %d\n",
		st.MergedLoads, st.MergedReds, st.SyncReleases)
	if st.SkewSamples() > 0 {
		fmt.Printf("  avg request arrival skew: %v\n", st.AvgSkew())
	}
}

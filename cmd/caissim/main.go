// Command caissim regenerates the paper's tables and figures from the CAIS
// simulation stack, or runs individual workloads under a chosen execution
// strategy.
//
// Usage:
//
//	caissim -experiment fig11            # regenerate one figure/table
//	caissim -experiment all              # regenerate everything
//	caissim -experiment fig14 -quick     # reduced fidelity (fast)
//	caissim -experiment serving -arrival-rate 25 -slo 500   # serving study
//	caissim -list                        # list experiment IDs
//	caissim -strategy CAIS -model llama-7b -layers 1 -training
//	caissim -strategy CAIS -model llama-7b -trace out.json   # Perfetto trace
//	caissim -strategies                  # list strategies
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"cais"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment ID (see -list), or 'all'")
		quick      = flag.Bool("quick", false, "reduced fidelity (fast)")
		list       = flag.Bool("list", false, "list experiment IDs")
		strategies = flag.Bool("strategies", false, "list execution strategies")
		strat      = flag.String("strategy", "", "run one workload under this strategy")
		modelName  = flag.String("model", "llama-7b", "model: mega-gpt-4b | mega-gpt-8b | llama-7b")
		layers     = flag.Int("layers", 1, "transformer layers to simulate")
		training   = flag.Bool("training", false, "simulate training (fwd+bwd) instead of prefill")
		gpus       = flag.Int("gpus", 0, "override the GPU count (default: 8)")
		requestKB  = flag.Int("request-kb", 0, "override the request granularity in KB")
		seed       = flag.Uint64("seed", 0, "RNG seed for simulated jitter (0 = built-in default)")
		parallel   = flag.Int("parallel", 0, "sweep worker pool size for experiments (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at any value")
		noMemo     = flag.Bool("no-memo", false, "disable cross-sweep point memoization; every experiment point simulates cold (output is byte-identical either way)")
		arrival    = flag.Float64("arrival-rate", 0, "serving experiment: collapse the arrival-rate sweep to this rate in requests/second (0 = built-in sweep)")
		sloMs      = flag.Float64("slo", 0, "serving experiment: end-to-end latency SLO in milliseconds (0 = fidelity default)")
		faultsFile = flag.String("faults", "", "JSON fault-injection schedule (strategy runs; see DESIGN.md §8)")
		traceOut   = flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this file (strategy runs)")
		metricsOut = flag.String("metrics-json", "", "write the metric snapshot as JSON to this file (per-run for -strategy; sweep-level memo/cache counters for experiments)")
		attribOn   = flag.Bool("attrib", false, "print the time-attribution breakdown and critical path (DESIGN.md §12)")
		attribJSON = flag.String("attrib-json", "", "write the attribution report as JSON to this file (implies attribution)")
		attribTr   = flag.String("attrib-trace", "", "write the attribution top-contributors view as a Chrome trace to this file (implies attribution)")
		verbose    = flag.Bool("v", false, "log simulation progress to stderr")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)")
	)
	flag.Parse()

	gpusSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "gpus" {
			gpusSet = true
		}
	})

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on %s\n", *pprofAddr)
	}

	switch {
	case *list:
		for _, n := range cais.ExperimentNames() {
			fmt.Println(n)
		}
	case *strategies:
		for _, s := range cais.Strategies() {
			nvls := ""
			if s.UsesNVLS() {
				nvls = " (in-switch computing)"
			}
			fmt.Printf("%-14s layout=%s%s\n", s.Name, s.Layout, nvls)
		}
		for _, s := range cais.ExtensionStrategies() {
			fmt.Printf("%-14s layout=%s (extension beyond the paper)\n", s.Name, s.Layout)
		}
	case *strat != "":
		runStrategy(strategyRun{
			name: *strat, model: *modelName, layers: *layers, training: *training,
			gpus: *gpus, gpusSet: gpusSet, requestKB: *requestKB, seed: *seed, faultsFile: *faultsFile,
			traceOut: *traceOut, metricsOut: *metricsOut, verbose: *verbose,
			attrib: *attribOn, attribJSON: *attribJSON, attribTrace: *attribTr,
		})
	case *experiment != "":
		if *traceOut != "" {
			fmt.Fprintln(os.Stderr, "note: -trace applies to -strategy runs only; ignored for experiments")
		}
		if *faultsFile != "" {
			fmt.Fprintln(os.Stderr, "note: -faults applies to -strategy runs only; the resilience experiment builds its own schedules")
		}
		runExperiments(experimentRun{
			id: *experiment, quick: *quick, seed: *seed, workers: *parallel, noMemo: *noMemo,
			arrivalRate: *arrival, sloMs: *sloMs,
			metricsOut: *metricsOut,
			attrib:     *attribOn, attribJSON: *attribJSON, attribTrace: *attribTr,
		})
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// usageErr reports an invalid flag value with the accepted IDs and exits
// with the conventional bad-usage status.
func usageErr(what, got string, valid []string) {
	fmt.Fprintf(os.Stderr, "unknown %s %q; valid: %s\n", what, got, strings.Join(valid, ", "))
	os.Exit(2)
}

type experimentRun struct {
	id      string
	quick   bool
	seed    uint64
	workers int
	noMemo  bool

	arrivalRate float64
	sloMs       float64

	metricsOut  string
	attrib      bool
	attribJSON  string
	attribTrace string
}

func runExperiments(r experimentRun) {
	cfg := cais.DefaultExperiments()
	if r.quick {
		cfg = cais.QuickExperiments()
	}
	if r.seed != 0 {
		cfg.HW.Seed = r.seed
	}
	cfg.Workers = r.workers
	// One cache per invocation: points repeated across figure drivers (the
	// shared TP-NVLS / CAIS anchors) simulate once under -experiment all.
	if !r.noMemo {
		cfg.Memo = cais.NewMemoCache()
	}
	cfg.ServingRate = r.arrivalRate
	cfg.ServingSLOMs = r.sloMs
	// The serving driver records per-request latency histograms into
	// cfg.Metrics; the memo gauges join the same snapshot below.
	if r.metricsOut != "" {
		cfg.Metrics = cais.NewMetricsRegistry()
	}
	if r.attrib || r.attribJSON != "" || r.attribTrace != "" {
		cfg.Attrib = cais.NewAttribAggregator()
	}
	ids := []string{r.id}
	if r.id == "all" {
		ids = cais.ExperimentNames()
	} else {
		known := false
		for _, n := range cais.ExperimentNames() {
			if n == r.id {
				known = true
				break
			}
		}
		if !known {
			usageErr("experiment", r.id, append(cais.ExperimentNames(), "all"))
		}
	}
	for _, x := range ids {
		start := time.Now()
		out, err := cais.RunExperiment(x, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", x, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s regenerated in %v]\n\n", x, time.Since(start).Round(time.Millisecond))
	}
	if r.attrib {
		fmt.Println(cfg.Attrib.Render())
	}
	if r.attribJSON != "" {
		if err := cfg.Attrib.WriteFile(r.attribJSON); err != nil {
			fmt.Fprintf(os.Stderr, "attrib-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote attribution for %d points to %s\n", cfg.Attrib.Len(), r.attribJSON)
	}
	if r.attribTrace != "" {
		if err := cfg.Attrib.WriteChromeTraceFile(r.attribTrace); err != nil {
			fmt.Fprintf(os.Stderr, "attrib-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote attribution Chrome trace to %s\n", r.attribTrace)
	}
	if r.metricsOut != "" {
		cais.RegisterMemoMetrics(cfg.Memo, cfg.Metrics)
		if err := writeMetrics(r.metricsOut, cfg.Metrics.Snapshot()); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d metrics to %s\n", cfg.Metrics.Snapshot().Len(), r.metricsOut)
	}
	if cfg.Memo != nil {
		fmt.Fprintf(os.Stderr, "[memo: %d lookups, %d served from cache, %d points simulated]\n",
			cfg.Memo.Lookups(), cfg.Memo.Hits(), cfg.Memo.Misses())
	}
}

type strategyRun struct {
	name      string
	model     string
	layers    int
	training  bool
	gpus      int
	gpusSet   bool
	requestKB int
	seed      uint64

	faultsFile string
	traceOut   string
	metricsOut string
	verbose    bool

	attrib      bool
	attribJSON  string
	attribTrace string
}

// strategyNames lists every accepted -strategy value (baselines, CAIS, its
// ablations, and the extension strategies).
func strategyNames() []string {
	var names []string
	for _, s := range cais.Strategies() {
		names = append(names, s.Name)
	}
	for _, s := range cais.ExtensionStrategies() {
		names = append(names, s.Name)
	}
	return names
}

func runStrategy(r strategyRun) {
	spec, err := cais.StrategyByName(r.name)
	if err != nil {
		usageErr("strategy", r.name, strategyNames())
	}
	var m cais.Model
	switch strings.ToLower(r.model) {
	case "mega-gpt-4b":
		m = cais.MegaGPT4B()
	case "mega-gpt-8b":
		m = cais.MegaGPT8B()
	case "llama-7b":
		m = cais.LLaMA7B()
	default:
		usageErr("model", r.model, []string{"mega-gpt-4b", "mega-gpt-8b", "llama-7b"})
	}
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10
	if r.gpusSet {
		hw.NumGPUs = r.gpus
	}
	if r.requestKB > 0 {
		hw.RequestBytes = int64(r.requestKB) << 10
	}
	if r.seed != 0 {
		hw.Seed = r.seed
	}
	if err := hw.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "cannot assemble this topology: %v\n", err)
		os.Exit(2)
	}

	var opts cais.RunOptions
	if r.faultsFile != "" {
		sched, err := cais.LoadFaultSchedule(r.faultsFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faults: %v\n", err)
			os.Exit(1)
		}
		if err := sched.Validate(hw.NumGPUs, hw.NumSwitchPlanes); err != nil {
			fmt.Fprintf(os.Stderr, "faults: schedule does not fit this topology: %v\n", err)
			os.Exit(1)
		}
		opts.Faults = sched
	}
	if r.traceOut != "" {
		opts.Tracer = cais.NewTracer()
	}
	if r.attrib || r.attribJSON != "" || r.attribTrace != "" {
		opts.Attrib = true
	}
	if r.verbose {
		wallStart := time.Now()
		lastWall := wallStart
		var lastSteps uint64
		opts.ProgressEvery = 1 << 18
		opts.Progress = func(now cais.Time, steps uint64) {
			wall := time.Now()
			rate := float64(steps-lastSteps) / wall.Sub(lastWall).Seconds()
			lastWall, lastSteps = wall, steps
			fmt.Fprintf(os.Stderr, "[%8.1fs] sim time %v, %d events (%.0f events/s)\n",
				wall.Sub(wallStart).Seconds(), now, steps, rate)
		}
	}

	run := cais.RunInferenceOpts
	kind := "inference (prefill)"
	if r.training {
		run = cais.RunTrainingOpts
		kind = "training step"
	}
	start := time.Now()
	res, err := run(hw, spec, m, r.layers, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if r.verbose {
		fmt.Fprintf(os.Stderr, "run finished in %v wall time\n", time.Since(start).Round(time.Millisecond))
	}

	perLayer := res.Elapsed / cais.Time(r.layers)
	full := perLayer * cais.Time(m.Layers)
	fmt.Printf("%s on %s, %s\n", spec.Name, m.Name, kind)
	fmt.Printf("  simulated %d layer(s): %v (%v per layer)\n", r.layers, res.Elapsed, perLayer)
	fmt.Printf("  extrapolated full model (%d layers): %v\n", m.Layers, full)
	fmt.Printf("  avg link utilization: %.1f%%\n", res.AvgUtil*100)
	st := res.Stats
	fmt.Printf("  merged loads: %d  merged reductions: %d  sync releases: %d\n",
		st.MergedLoads, st.MergedReds, st.SyncReleases)
	if st.SkewSamples() > 0 {
		fmt.Printf("  avg request arrival skew: %v\n", st.AvgSkew())
	}
	if r.attrib {
		fmt.Println()
		fmt.Print(res.Attrib.Render())
	}
	if r.attribJSON != "" {
		if err := writeTo(r.attribJSON, res.Attrib.WriteJSON); err != nil {
			fmt.Fprintf(os.Stderr, "attrib-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote attribution report to %s\n", r.attribJSON)
	}
	if r.attribTrace != "" {
		if err := writeTo(r.attribTrace, res.Attrib.WriteChromeTrace); err != nil {
			fmt.Fprintf(os.Stderr, "attrib-trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote attribution Chrome trace to %s\n", r.attribTrace)
	}

	if r.traceOut != "" {
		if err := opts.Tracer.WriteFile(r.traceOut); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d trace events to %s\n", opts.Tracer.Len(), r.traceOut)
	}
	if r.metricsOut != "" {
		if err := writeMetrics(r.metricsOut, res.Telemetry); err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %d metrics to %s\n", res.Telemetry.Len(), r.metricsOut)
	}
}

func writeMetrics(path string, snap cais.Telemetry) error {
	return writeTo(path, snap.WriteJSON)
}

// writeTo creates path and streams write into it, closing on all paths.
func writeTo(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

module cais

go 1.22

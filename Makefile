GO ?= go

.PHONY: all build test check vet fmt lint race bench clean

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race: the tracer/registry/engine are single-goroutine by design, but the
# CLI spawns a pprof server goroutine and tests exercise concurrent
# snapshotting idioms — keep the concurrency-sensitive packages honest.
race:
	$(GO) test -race ./internal/trace/ ./internal/metrics/ ./internal/sim/

vet:
	$(GO) vet ./...

# lint: caislint, the project's determinism & unit-safety analyzer
# (see DESIGN.md "Static analysis").
lint:
	$(GO) run ./cmd/caislint ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet lint test race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/trace/ ./internal/metrics/

clean:
	$(GO) clean ./...

GO ?= go

.PHONY: all build test check vet fmt lint lint-fast lint-sarif race resilience-smoke parallel-smoke attrib-smoke serving-smoke bench bench-quick bench-diff profile clean

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race: the simulator is single-goroutine by design, but the CLI spawns a
# pprof server goroutine and tests exercise concurrent snapshotting idioms
# — run the whole suite under the race detector to keep that honest.
race:
	$(GO) test -race ./...

# resilience-smoke: the fault-injection degradation study at reduced
# fidelity (DESIGN.md §8) — a fast end-to-end pass over every fault kind.
resilience-smoke: build
	$(GO) run ./cmd/caissim -experiment resilience -quick

# parallel-smoke: every experiment at reduced fidelity on a 4-worker sweep
# pool — exercises the parallel executor end to end.
parallel-smoke: build
	$(GO) run ./cmd/caissim -experiment all -quick -parallel 4

# attrib-smoke: the time-attribution engine end to end (DESIGN.md §12) —
# a quick fig17 sweep with the tick-exact JSON report written out; CI
# uploads the report as a non-gating artifact.
attrib-smoke: build
	$(GO) run ./cmd/caissim -experiment fig17 -quick -attrib-json attrib-report.json

# serving-smoke: the request-level serving study (DESIGN.md §13) at reduced
# fidelity on a 4-worker pool — continuous batching, SLO/goodput evaluation
# and the memoized cost anchors, end to end through the CLI.
serving-smoke: build
	$(GO) run ./cmd/caissim -experiment serving -quick -parallel 4

vet:
	$(GO) vet ./...

# lint: caislint, the project's determinism, unit-safety and
# cache-soundness analyzer (see DESIGN.md "Static analysis").
# `caislint -list` prints the check catalog.
lint:
	$(GO) run ./cmd/caislint ./...

# lint-fast: incremental caislint — per-package results are cached under
# .caislint-cache.json keyed by content hashes of each package and its
# transitive module dependencies, so unchanged packages are skipped
# entirely. Same diagnostics as `make lint`, much faster on re-runs.
lint-fast:
	$(GO) run ./cmd/caislint -cache .caislint-cache.json ./...

# lint-sarif: full run plus a SARIF 2.1.0 log for code-scanning UIs; CI
# uploads caislint.sarif as a workflow artifact.
lint-sarif:
	$(GO) run ./cmd/caislint -sarif caislint.sarif ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet lint test race resilience-smoke attrib-smoke serving-smoke

# bench: the full benchmark suite (experiment drivers, engine hot path,
# tracer, metrics) via scripts/bench.sh, which writes a dated
# benchstat-compatible baseline to BENCH_<date>.json.
bench: build
	sh scripts/bench.sh

# bench-quick: engine + tracer/metrics microbenchmarks only (skips the
# slow experiment-level benchmarks).
bench-quick: build
	sh scripts/bench.sh -quick

# bench-diff: benchstat-style comparison of a fresh quick benchmark run
# against the newest committed BENCH_*.json baseline; flags >10% ns/op
# regressions and any allocs/op increase. Pass baselines explicitly with
# `sh scripts/bench_diff.sh OLD.json NEW.json`. Non-gating in CI.
bench-diff: build
	sh scripts/bench_diff.sh

# profile: CPU + allocation profiles of the hot path (the three workloads
# the allocation ceilings pin) via scripts/profile.sh; pprof files land in
# profiles/ and the top allocation sites print inline. CI uploads the
# directory as a non-gating artifact.
profile: build
	sh scripts/profile.sh

clean:
	$(GO) clean ./...

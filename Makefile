GO ?= go

.PHONY: all build test check vet fmt lint race resilience-smoke bench clean

all: check

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

# race: the simulator is single-goroutine by design, but the CLI spawns a
# pprof server goroutine and tests exercise concurrent snapshotting idioms
# — run the whole suite under the race detector to keep that honest.
race:
	$(GO) test -race ./...

# resilience-smoke: the fault-injection degradation study at reduced
# fidelity (DESIGN.md §8) — a fast end-to-end pass over every fault kind.
resilience-smoke: build
	$(GO) run ./cmd/caissim -experiment resilience -quick

vet:
	$(GO) vet ./...

# lint: caislint, the project's determinism & unit-safety analyzer
# (see DESIGN.md "Static analysis").
lint:
	$(GO) run ./cmd/caislint ./...

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

check: fmt vet lint test race resilience-smoke

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./internal/trace/ ./internal/metrics/

clean:
	$(GO) clean ./...

#!/bin/sh
# bench.sh — run the repo's benchmark suite and write a dated baseline.
#
# Runs the experiment-level benchmarks (bench_test.go at the root), the
# engine hot-path microbenchmarks (internal/sim), and the tracer/metrics
# benchmarks, then writes BENCH_<date>.json: a JSON envelope holding the
# parsed results plus the raw `go test -bench` text, which is
# benchstat-compatible (extract .raw and feed two baselines to benchstat
# to compare).
#
# Usage:
#   scripts/bench.sh             # full suite -> BENCH_<date>.json
#   scripts/bench.sh -quick      # engine + tracer/metrics microbenchmarks only
#   BENCH_OUT=path scripts/bench.sh   # override the output file
set -eu

cd "$(dirname "$0")/.."

quick=0
if [ "${1:-}" = "-quick" ]; then
	quick=1
fi

out="${BENCH_OUT:-BENCH_$(date -u +%Y%m%d).json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

# The root package carries the per-experiment regeneration benchmarks
# (BenchmarkFig*, BenchmarkServingSweep, ...); it joins the full suite only —
# quick mode sticks to the fast engine/tooling microbenchmarks.
pkgs="./internal/sim/ ./internal/trace/ ./internal/metrics/ ./internal/lint/ ./internal/model/ ./internal/machine/"
if [ "$quick" = 0 ]; then
	pkgs=". $pkgs"
fi

echo "== go test -bench (benchtime=1x warmup skipped; packages: $pkgs)"
# -count=1 and -run='^$' keep this a pure benchmark pass; GOMAXPROCS is
# left alone so the numbers reflect the machine CI ran on.
# shellcheck disable=SC2086
go test -run='^$' -bench=. -benchmem -count=1 $pkgs | tee "$raw"

# Fold the raw output into a JSON baseline. The raw text is embedded
# verbatim so `jq -r .raw BENCH_x.json | benchstat /dev/stdin ...` works.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v go_version="$(go env GOVERSION)" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", date, go_version
	first = 1
}
{ raw = raw $0 "\\n" }
/^Benchmark/ && NF >= 4 {
	# BenchmarkName-N  iters  ns/op  [B/op  allocs/op]
	name = $1; sub(/-[0-9]+$/, "", name)
	if (!first) printf ",\n"
	first = 0
	printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op") printf ", \"bytes_per_op\": %s", $i
		if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
	}
	printf "}"
}
END {
	gsub(/"/, "\\\"", raw)
	gsub(/\t/, "\\t", raw)
	printf "\n  ],\n  \"raw\": \"%s\"\n}\n", raw
}
' "$raw" > "$out"

echo "wrote $out"

#!/bin/sh
# check.sh — the repo's pre-merge gate, mirrored by .github/workflows/ci.yml.
# Runs formatting, vet, build, caislint (the determinism & unit-safety
# analyzer), the full test suite (plain and under the race detector), and
# the quick fault-injection smoke.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt needed on:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== caislint (determinism, unit safety, cache soundness; incremental)"
go run ./cmd/caislint -cache .caislint-cache.json ./...

echo "== go test"
go test ./...

echo "== go test -race"
go test -race ./...

echo "== disabled-tracer zero-alloc benchmark"
go test -run='^$' -bench=BenchmarkDisabledHotPath -benchmem ./internal/trace/

echo "== resilience smoke (fault-injection degradation study, quick)"
go run ./cmd/caissim -experiment resilience -quick

echo "== attribution smoke (fig17 quick, JSON report)"
go run ./cmd/caissim -experiment fig17 -quick -attrib-json attrib-report.json > /dev/null

echo "== serving smoke (request-level serving study, quick, 4 workers)"
go run ./cmd/caissim -experiment serving -quick -parallel 4 > /dev/null

echo "== parallel sweep smoke (all experiments, quick, 4 workers)"
go run ./cmd/caissim -experiment all -quick -parallel 4 > /dev/null

echo "OK"

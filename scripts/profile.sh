#!/bin/sh
# profile.sh — capture CPU and allocation profiles of the simulator's hot
# path. Runs the three workloads the allocation ceilings pin (Fig. 17 GPU
# scaling, Table II, Fig. 13b coordination ablation) as benchmarks with
# -cpuprofile/-memprofile, drops the pprof files under profiles/, and
# prints the top allocation sites so a regression is visible in the CI log
# without downloading the artifact.
#
# The profiles are the ground truth for the zero-alloc kernel-construction
# work (DESIGN.md §10): before touching a pool or an arena, look at what
# actually allocates.
#
# Usage:
#   scripts/profile.sh                 # profiles -> profiles/
#   PROFILE_DIR=path scripts/profile.sh
#   PROFILE_BENCH='BenchmarkFig17GPUScaling' scripts/profile.sh
set -eu

cd "$(dirname "$0")/.."

dir="${PROFILE_DIR:-profiles}"
bench="${PROFILE_BENCH:-BenchmarkFig17GPUScaling|BenchmarkTable2ScaledDown|BenchmarkFig13Coordination}"
mkdir -p "$dir"

echo "== profiling $bench -> $dir/"
go test -run='^$' -bench="$bench" -benchmem -count=1 \
	-cpuprofile "$dir/cpu.pprof" \
	-memprofile "$dir/mem.pprof" \
	-o "$dir/bench.test" \
	.

# Keep the binary next to the profiles: `go tool pprof` needs it to
# symbolize, and the artifact is useless without matching symbols.
echo
echo "== top allocation sites (alloc_objects)"
go tool pprof -top -nodecount=15 -sample_index=alloc_objects "$dir/bench.test" "$dir/mem.pprof"
echo
echo "== top CPU (cum)"
go tool pprof -top -nodecount=15 -cum "$dir/bench.test" "$dir/cpu.pprof"
echo
echo "profiles written: $dir/cpu.pprof $dir/mem.pprof (binary: $dir/bench.test)"

#!/bin/sh
# bench_diff.sh — benchstat-style comparison of two BENCH_*.json baselines
# (the envelopes scripts/bench.sh writes).
#
# Usage:
#   scripts/bench_diff.sh OLD.json NEW.json   # compare two baselines
#   scripts/bench_diff.sh OLD.json            # fresh -quick run vs OLD
#   scripts/bench_diff.sh                     # fresh -quick run vs the
#                                             # newest committed BENCH_*.json
#
# Prints one row per benchmark present in both files: ns/op and allocs/op
# with their deltas. Rows regressing more than 10% on ns/op, or increasing
# allocs/op at all, are flagged REGRESSION and make the script exit 1 —
# CI runs it with continue-on-error so the annotation never gates a merge
# (benchmark noise on shared runners is real; a human reads the flag).
set -eu

cd "$(dirname "$0")/.."

old="${1:-}"
new="${2:-}"

if [ -z "$old" ]; then
	# Newest committed baseline by name (the files are date-stamped).
	old=$(ls BENCH_*.json 2>/dev/null | sort | tail -1 || true)
	if [ -z "$old" ]; then
		echo "bench_diff: no BENCH_*.json baseline found" >&2
		exit 2
	fi
fi
if [ ! -f "$old" ]; then
	echo "bench_diff: baseline $old not found" >&2
	exit 2
fi

tmp=""
if [ -z "$new" ]; then
	tmp=$(mktemp)
	trap 'rm -f "$tmp"' EXIT
	echo "== no NEW baseline given; running the quick benchmark suite"
	BENCH_OUT="$tmp" sh scripts/bench.sh -quick >/dev/null
	new="$tmp"
fi
if [ ! -f "$new" ]; then
	echo "bench_diff: new baseline $new not found" >&2
	exit 2
fi

echo "== bench-diff: $old -> $new"

# extract pulls "name ns_per_op allocs_per_op" triples out of a baseline's
# benchmarks array (one JSON object per line, as bench.sh emits them).
extract() {
	awk '
	/"name":/ {
		name = ""; ns = ""; allocs = "-"
		if (match($0, /"name": "[^"]*"/)) {
			name = substr($0, RSTART + 9, RLENGTH - 10)
		}
		if (match($0, /"ns_per_op": [0-9.]*/)) {
			ns = substr($0, RSTART + 13, RLENGTH - 13)
		}
		if (match($0, /"allocs_per_op": [0-9]*/)) {
			allocs = substr($0, RSTART + 17, RLENGTH - 17)
		}
		if (name != "" && ns != "") print name, ns, allocs
	}' "$1"
}

oldtab=$(mktemp)
newtab=$(mktemp)
trap 'rm -f "$oldtab" "$newtab" ${tmp:+"$tmp"}' EXIT
extract "$old" > "$oldtab"
extract "$new" > "$newtab"

awk -v oldfile="$oldtab" '
BEGIN {
	while ((getline line < oldfile) > 0) {
		split(line, f, " ")
		ns[f[1]] = f[2]; allocs[f[1]] = f[3]
	}
	close(oldfile)
	printf "%-34s %14s %14s %8s %12s %12s %8s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "old allocs", "new allocs", "delta", ""
	bad = 0
}
{
	name = $1; newns = $2; newallocs = $3
	if (!(name in ns)) next
	oldns = ns[name]; oldallocs = allocs[name]
	dns = (oldns > 0) ? (newns - oldns) / oldns * 100 : 0
	flag = ""
	if (dns > 10) flag = "REGRESSION(ns/op +" sprintf("%.1f", dns) "%)"
	da = "-"
	if (oldallocs != "-" && newallocs != "-") {
		da = sprintf("%+d", newallocs - oldallocs)
		if (newallocs + 0 > oldallocs + 0) {
			flag = flag ((flag == "") ? "" : " ") "REGRESSION(allocs/op +" newallocs - oldallocs ")"
		}
	}
	if (flag != "") bad++
	printf "%-34s %14s %14s %+7.1f%% %12s %12s %8s  %s\n",
		name, oldns, newns, dns, oldallocs, newallocs, da, flag
}
END {
	if (bad > 0) {
		printf "\n%d benchmark(s) regressed (>10%% ns/op or any allocs/op increase)\n", bad
		exit 1
	}
	print "\nno regressions"
}' "$newtab"

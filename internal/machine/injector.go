package machine

import (
	"cais/internal/faults"
	"cais/internal/metrics"
	"cais/internal/noc"
	"cais/internal/nvswitch"
	"cais/internal/trace"
)

// injector plays a fault schedule back on the sim clock: one onset event
// per fault, plus a repair event for faults with a finite duration. All
// events are scheduled during assembly, before the workload's own t=0
// events, so fault application order is deterministic and independent of
// the workload.
type injector struct {
	m      *Machine
	sched  *faults.Schedule
	active int

	applied  *metrics.Counter
	repaired *metrics.Counter
}

// installFaults arms the injector when the machine's options carry a
// non-empty schedule. With no schedule this is a single nil check — no
// metrics, no state, no behavioral difference from an unfaulted build.
func (m *Machine) installFaults() {
	sched := m.Opts.Faults
	if sched.Empty() {
		return
	}
	if err := sched.Validate(m.HW.NumGPUs, m.HW.NumSwitchPlanes); err != nil {
		panic(err)
	}
	inj := &injector{
		m: m, sched: sched,
		applied:  m.reg.Counter("faults.applied"),
		repaired: m.reg.Counter("faults.repaired"),
	}
	m.inj = inj
	m.reg.GaugeFunc("faults.active", func() float64 { return float64(inj.active) })
	m.reg.GaugeFunc("faults.reroutes", func() float64 { return float64(m.reroutes) })
	m.reg.GaugeFunc("faults.sync_reregistrations", func() float64 {
		var n int64
		for _, g := range m.GPUs {
			n += g.Synchronizer().Reregistrations
		}
		return float64(n)
	})
	m.reg.GaugeFunc("faults.sync_retries", func() float64 {
		var n int64
		for _, g := range m.GPUs {
			n += g.Synchronizer().Retries
		}
		return float64(n)
	})
	m.reg.GaugeFunc("faults.stale_releases", func() float64 {
		var n int64
		for _, g := range m.GPUs {
			n += g.Synchronizer().StaleReleases
		}
		return float64(n)
	})
	if sched.HasPlaneFault() {
		// Arm the failover protocol everywhere: NVLS completion timeouts
		// and idempotent sync registration on the switches, duplicate-
		// release tolerance on the GPUs. Schedules without plane faults
		// keep the strict healthy-run invariants.
		for _, sw := range m.Switches {
			sw.SetFaultTolerant(true)
		}
		for _, g := range m.GPUs {
			g.Synchronizer().SetLenient(true)
		}
	}
	for i := range sched.Faults {
		f := sched.Faults[i]
		m.Eng.At(f.At, func() { inj.apply(f) })
		if f.For > 0 {
			m.Eng.At(f.At+f.For, func() { inj.repair(f) })
		}
	}
}

// Reroutes reports how many packets were routed around a dead plane.
func (m *Machine) Reroutes() int64 { return m.reroutes }

// FaultsActive reports how many injected faults are currently in effect
// (0 when no schedule is installed).
func (m *Machine) FaultsActive() int {
	if m.inj == nil {
		return 0
	}
	return m.inj.active
}

func (inj *injector) instant(label string) {
	m := inj.m
	if m.tr.Enabled() {
		m.tr.Instant(trace.PIDMachine, 0, "faults", label, m.Eng.Now())
	}
}

func (inj *injector) apply(f faults.Fault) {
	m := inj.m
	inj.applied.Inc()
	inj.active++
	inj.instant("onset: " + f.String())
	switch f.Kind {
	case faults.LinkDegrade:
		inj.eachLink(f, func(l *noc.Link) { l.SetBandwidthScale(f.Factor) })
	case faults.LinkDown:
		inj.eachLink(f, func(l *noc.Link) { l.SetDown(true) })
	case faults.PlaneDown:
		m.planeAlive[f.Plane] = false
		m.recomputeSurvivors()
		// Flush the dead plane's state first, then sweep the GPUs so sync
		// waits registered there re-register on a survivor.
		m.Switches[f.Plane].Failover()
		for _, g := range m.GPUs {
			g.Synchronizer().Resync()
		}
	case faults.MergeDisable:
		inj.eachMergeUnit(f, func(u *nvswitch.MergeUnit) { u.SetDisabled(true) })
	case faults.Straggler:
		m.GPUs[f.GPU].SetComputeSlowdown(f.Factor)
	}
}

func (inj *injector) repair(f faults.Fault) {
	m := inj.m
	inj.repaired.Inc()
	inj.active--
	inj.instant("repair: " + f.String())
	switch f.Kind {
	case faults.LinkDegrade:
		inj.eachLink(f, func(l *noc.Link) { l.SetBandwidthScale(1) })
	case faults.LinkDown:
		inj.eachLink(f, func(l *noc.Link) { l.SetDown(false) })
	case faults.PlaneDown:
		m.planeAlive[f.Plane] = true
		m.recomputeSurvivors()
		m.Switches[f.Plane].Repair()
		// Routing reverted: waits registered on the standby plane during
		// the outage move back, so all peers of a group meet at one table.
		for _, g := range m.GPUs {
			g.Synchronizer().Resync()
		}
	case faults.MergeDisable:
		inj.eachMergeUnit(f, func(u *nvswitch.MergeUnit) { u.SetDisabled(false) })
	case faults.Straggler:
		m.GPUs[f.GPU].SetComputeSlowdown(1)
	}
}

// eachLink visits the links a link fault targets, in (plane, gpu,
// up-before-down) order.
func (inj *injector) eachLink(f faults.Fault, fn func(l *noc.Link)) {
	m := inj.m
	for pl := 0; pl < m.HW.NumSwitchPlanes; pl++ {
		if f.Plane != faults.All && f.Plane != pl {
			continue
		}
		for g := 0; g < m.HW.NumGPUs; g++ {
			if f.GPU != faults.All && f.GPU != g {
				continue
			}
			if f.Dir == faults.DirBoth || f.Dir == faults.DirUp {
				fn(m.upLink[pl][g])
			}
			if f.Dir == faults.DirBoth || f.Dir == faults.DirDown {
				fn(m.downLink[pl][g])
			}
		}
	}
}

// eachMergeUnit visits the merge units a merge-disable fault targets (GPU
// selects the port), in (plane, port) order.
func (inj *injector) eachMergeUnit(f faults.Fault, fn func(u *nvswitch.MergeUnit)) {
	m := inj.m
	for pl := 0; pl < m.HW.NumSwitchPlanes; pl++ {
		if f.Plane != faults.All && f.Plane != pl {
			continue
		}
		for g := 0; g < m.HW.NumGPUs; g++ {
			if f.GPU != faults.All && f.GPU != g {
				continue
			}
			fn(m.Switches[pl].Port(g))
		}
	}
}

package machine

import (
	"testing"

	"cais/internal/config"
	"cais/internal/kernel"
	"cais/internal/noc"
	"cais/internal/sim"
)

func testHW() config.Hardware {
	hw := config.DGXH100()
	hw.NumGPUs = 4
	hw.NumSwitchPlanes = 2
	hw.SMsPerGPU = 8
	hw.RequestBytes = 1024
	hw.KernelLaunchJitter = 2 * sim.Microsecond
	return hw
}

func newTestMachine(t *testing.T, hw config.Hardware, opts Options) *Machine {
	t.Helper()
	eng := sim.NewEngine()
	eng.SetStepLimit(50_000_000)
	return New(eng, hw, opts)
}

// computeOnly builds a kernel of pure local compute.
func computeOnly(name string, grid int, flops float64) *kernel.Kernel {
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindGEMM, Grid: grid,
		Work: func(g, tb int) kernel.TBDesc {
			return kernel.TBDesc{Flops: flops, LocalBytes: 1 << 12, Group: -1}
		},
	}
}

func TestComputeKernelCompletes(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	done := false
	m.Eng.At(0, func() { m.LaunchKernel(computeOnly("gemm", 32, 1e9), func() { done = true }) })
	end := m.Run()
	if !done {
		t.Fatal("kernel never completed")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	// 32 TBs over 8 SMs, ~267us each (1e9/3.75e12): at least 4 waves.
	perTB := 1e9 / 7.5e12 // seconds per TB
	minT := sim.Time(4 * perTB * 1e12)
	if end < minT {
		t.Fatalf("completed at %v, faster than %v lower bound", end, minT)
	}
	var tbs int64
	for _, g := range m.GPUs {
		tbs += g.TBsRun
	}
	if tbs != 32*4 {
		t.Fatalf("TBs run = %d, want 128", tbs)
	}
}

func TestSequenceRunsKernelsWithBarriers(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	var order []string
	k1 := computeOnly("a", 8, 1e8)
	k2 := computeOnly("b", 8, 1e8)
	m.Eng.At(0, func() {
		m.Sequence([]*kernel.Kernel{k1, k2}, func() { order = append(order, "done") })
	})
	m.Run()
	if len(order) != 1 {
		t.Fatal("sequence did not complete")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

// buildAGKernel models the AG-GEMM pattern: TB 0 of each row-block loads a
// remote shard via ld.cais (GPU-invariant address), publishing a per-GPU
// copy tile; the remaining TBs of the block consume the copy locally.
func buildAGKernel(m *Machine, rows, cols int, shardBytes int64, copyBuf int) *kernel.Kernel {
	n := m.HW.NumGPUs
	bases := make([]uint64, rows)
	for r := 0; r < rows; r++ {
		bases[r] = m.AllocAddrs(m.AddrsFor(shardBytes))
	}
	return &kernel.Kernel{
		Name: "ag-gemm", Kind: kernel.KindGEMM, Grid: rows * cols,
		PreLaunchSync: true, PreAccessSync: true, Throttled: true,
		Work: func(g, tb int) kernel.TBDesc {
			r, c := tb/cols, tb%cols
			home := r % n
			copyTile := kernel.Tile{Buf: copyBuf, Idx: r*n + g}
			// Throttled kernels include the owner in the group.
			d := kernel.TBDesc{Flops: 1e8, LocalBytes: 1 << 12, Group: tb, GroupPeers: n}
			if c == 0 {
				if home == g {
					// The shard is local: read it from HBM.
					d.Pre = append(d.Pre, kernel.Access{
						Sem: kernel.SemRead, Mode: noc.OpLoad, Local: true,
						Addr: bases[r], Home: g, Bytes: shardBytes,
						Publish: []kernel.Tile{copyTile},
					})
				} else {
					d.Pre = append(d.Pre, kernel.Access{
						Sem: kernel.SemRead, Mode: noc.OpLdCAIS,
						Addr: bases[r], Home: home, Bytes: shardBytes,
						Expected: n - 1,
						Publish:  []kernel.Tile{copyTile},
					})
				}
			} else {
				d.In = append(d.In, copyTile)
			}
			return d
		},
	}
}

func TestAGPatternMergesLoads(t *testing.T) {
	hw := testHW()
	m := newTestMachine(t, hw, Options{UnlimitedMergeTable: true})
	const rows, cols = 8, 4
	shardBytes := int64(8 << 10) // 8 chunks of 1KB
	done := false
	var k *kernel.Kernel
	m.Eng.At(0, func() {
		k = buildAGKernel(m, rows, cols, shardBytes, m.NewBuffer())
		m.LaunchKernel(k, func() { done = true })
	})
	m.Run()
	if !done {
		t.Fatal("AG kernel did not finish")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	st := m.SwitchStats()
	chunks := int64(shardBytes / hw.RequestBytes)
	// Each remote row (6 of 8 rows per... each row has 3 remote
	// requesters): fetched exactly once per chunk.
	wantFetches := int64(rows) * chunks
	if st.LoadFetches != wantFetches {
		t.Fatalf("fetches = %d, want %d (one per chunk per row)", st.LoadFetches, wantFetches)
	}
	// The other N-2 remote requesters per chunk merged.
	wantMerged := int64(rows) * chunks * int64(hw.NumGPUs-2)
	if st.MergedLoads != wantMerged {
		t.Fatalf("merged = %d, want %d", st.MergedLoads, wantMerged)
	}
	if st.BypassLoads != 0 {
		t.Fatalf("bypasses = %d, want 0 with unlimited table", st.BypassLoads)
	}
}

// buildRSKernel models the GEMM-RS pattern: every GPU's TB computes a
// partial for row r and reduces it to owner(r) via red.cais; the home
// GPU's own partial is a local contribution. The reduced tile publishes at
// the home GPU once all N contributions land.
func buildRSKernel(m *Machine, rows int, tileBytes int64, outBuf int, coordinated bool) *kernel.Kernel {
	n := m.HW.NumGPUs
	bases := make([]uint64, rows)
	for r := 0; r < rows; r++ {
		bases[r] = m.AllocAddrs(m.AddrsFor(tileBytes))
	}
	return &kernel.Kernel{
		Name: "gemm-rs", Kind: kernel.KindGEMM, Grid: rows,
		PreLaunchSync: coordinated, PreAccessSync: coordinated, Throttled: coordinated,
		Work: func(g, tb int) kernel.TBDesc {
			home := tb % n
			redTile := kernel.Tile{Buf: outBuf, Idx: tb}
			peers := n - 1
			if coordinated {
				peers = n // the throttled owner joins its group
			}
			d := kernel.TBDesc{Flops: 1e8, LocalBytes: 1 << 12, Group: tb, GroupPeers: peers}
			a := kernel.Access{
				Sem: kernel.SemReduce, Addr: bases[tb], Home: home,
				Bytes: tileBytes, TileNeed: n,
				Publish: []kernel.Tile{redTile},
			}
			if home == g {
				a.Mode = noc.OpStore
				a.Local = true
			} else {
				a.Mode = noc.OpRedCAIS
				a.Expected = n - 1
			}
			d.Post = append(d.Post, a)
			return d
		},
	}
}

func TestRSPatternMergesReductionsAndPublishes(t *testing.T) {
	hw := testHW()
	m := newTestMachine(t, hw, Options{UnlimitedMergeTable: true})
	const rows = 8
	tileBytes := int64(4 << 10)
	outBuf := 0
	done := false
	m.Eng.At(0, func() {
		outBuf = m.NewBuffer()
		k := buildRSKernel(m, rows, tileBytes, outBuf, true)
		m.LaunchKernel(k, func() { done = true })
	})
	m.Run()
	if !done {
		t.Fatal("RS kernel did not finish")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	// Every reduced tile must have published (N contributions each).
	for r := 0; r < rows; r++ {
		if !m.TileReady(kernel.Tile{Buf: outBuf, Idx: r}) {
			t.Fatalf("reduced tile %d never published", r)
		}
	}
	st := m.SwitchStats()
	chunks := int64(tileBytes / hw.RequestBytes)
	wantSessions := int64(rows) * chunks
	if st.CompletedReds != wantSessions {
		t.Fatalf("completed reduction sessions = %d, want %d", st.CompletedReds, wantSessions)
	}
	if st.PartialFlushes != 0 {
		t.Fatalf("partial flushes = %d, want 0 with coordination + unlimited table", st.PartialFlushes)
	}
}

func TestCoordinationReducesSkew(t *testing.T) {
	hw := testHW()
	hw.KernelLaunchJitter = 10 * sim.Microsecond
	run := func(coordinated bool) sim.Time {
		m := newTestMachine(t, hw, Options{UnlimitedMergeTable: true})
		m.Eng.At(0, func() {
			k := buildRSKernel(m, 16, 4<<10, m.NewBuffer(), coordinated)
			m.LaunchKernel(k, nil)
		})
		m.Run()
		if err := m.CheckQuiescent(); err != nil {
			t.Fatal(err)
		}
		return m.SwitchStats().AvgSkew()
	}
	uncoord := run(false)
	coord := run(true)
	if coord >= uncoord {
		t.Fatalf("coordination did not reduce skew: coord=%v uncoord=%v", coord, uncoord)
	}
	if coord > 3*sim.Microsecond {
		t.Fatalf("coordinated skew %v exceeds 3us", coord)
	}
}

func TestCoordinationReducesMergeTableHighWater(t *testing.T) {
	hw := testHW()
	hw.KernelLaunchJitter = 10 * sim.Microsecond
	run := func(coordinated bool) int64 {
		m := newTestMachine(t, hw, Options{UnlimitedMergeTable: true})
		m.Eng.At(0, func() {
			k := buildRSKernel(m, 32, 4<<10, m.NewBuffer(), coordinated)
			m.LaunchKernel(k, nil)
		})
		m.Run()
		return m.MergeTableHighWater()
	}
	if c, u := run(true), run(false); c > u {
		t.Fatalf("coordinated high-water %d exceeds uncoordinated %d", c, u)
	}
}

func TestRunsAreDeterministic(t *testing.T) {
	run := func() (sim.Time, uint64) {
		m := newTestMachine(t, testHW(), Options{})
		m.Eng.At(0, func() {
			k := buildRSKernel(m, 16, 4<<10, m.NewBuffer(), true)
			m.LaunchKernel(k, nil)
		})
		end := m.Run()
		return end, m.Eng.Steps()
	}
	t1, s1 := run()
	t2, s2 := run()
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
}

func TestAddrAllocatorNonOverlapping(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	a := m.AllocAddrs(10)
	b := m.AllocAddrs(5)
	if b < a+10 {
		t.Fatalf("overlapping allocations: a=%d b=%d", a, b)
	}
	if m.AddrsFor(4096) != 4 {
		t.Fatalf("AddrsFor(4096) = %d, want 4 at 1KB chunks", m.AddrsFor(4096))
	}
	if m.AddrsFor(0) != 1 {
		t.Fatal("AddrsFor(0) should be 1")
	}
}

func TestCheckQuiescentDetectsStuckDependency(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	never := kernel.Tile{Buf: 999, Idx: 0}
	k := &kernel.Kernel{
		Name: "stuck", Grid: 1,
		Work: func(g, tb int) kernel.TBDesc {
			return kernel.TBDesc{In: []kernel.Tile{never}, Group: -1}
		},
	}
	m.Eng.At(0, func() { m.LaunchKernel(k, nil) })
	m.Run()
	if err := m.CheckQuiescent(); err == nil {
		t.Fatal("stuck dependency not detected")
	}
}

func TestAvgLinkUtilizationBounded(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	m.Eng.At(0, func() {
		k := buildRSKernel(m, 16, 16<<10, m.NewBuffer(), false)
		m.LaunchKernel(k, nil)
	})
	end := m.Run()
	u := m.AvgLinkUtilization(end)
	if u <= 0 || u > 1 {
		t.Fatalf("utilization %v out of (0,1]", u)
	}
}

package machine

import (
	"testing"

	"cais/internal/faults"
	"cais/internal/sim"
)

// runRS executes the standard coordinated GEMM-RS workload on a machine
// with the given fault schedule and returns (elapsed, steps).
func runRS(t *testing.T, sched *faults.Schedule) (sim.Time, uint64, *Machine) {
	t.Helper()
	m := newTestMachine(t, testHW(), Options{UnlimitedMergeTable: true, Faults: sched})
	done := false
	m.Eng.At(0, func() {
		k := buildRSKernel(m, 16, 4<<10, m.NewBuffer(), true)
		m.LaunchKernel(k, func() { done = true })
	})
	end := m.Run()
	if !done {
		t.Fatal("workload did not finish under faults")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
	return end, m.Eng.Steps(), m
}

func TestZeroFaultScheduleIsInert(t *testing.T) {
	base, baseSteps, bm := runRS(t, nil)
	empty, emptySteps, em := runRS(t, &faults.Schedule{Name: "empty"})
	if base != empty || baseSteps != emptySteps {
		t.Fatalf("empty schedule perturbed the run: (%v,%d) vs baseline (%v,%d)",
			empty, emptySteps, base, baseSteps)
	}
	for _, m := range []*Machine{bm, em} {
		if m.FaultsActive() != 0 || m.Reroutes() != 0 {
			t.Fatalf("fault state on an unfaulted machine: active=%d reroutes=%d",
				m.FaultsActive(), m.Reroutes())
		}
		if _, ok := m.Metrics().Snapshot().Get("faults.applied"); ok {
			t.Fatal("faults.* metrics registered without a schedule")
		}
	}
}

func TestLinkDegradeSlowsRun(t *testing.T) {
	base, _, _ := runRS(t, nil)
	deg, _, m := runRS(t, &faults.Schedule{Name: "degrade", Faults: []faults.Fault{
		{Kind: faults.LinkDegrade, At: 0, Plane: faults.All, GPU: faults.All, Factor: 0.25},
	}})
	if deg <= base {
		t.Fatalf("75%% degradation did not slow the run: %v <= baseline %v", deg, base)
	}
	snap := m.Metrics().Snapshot()
	if snap.Value("faults.applied") != 1 {
		t.Fatalf("faults.applied = %v, want 1", snap.Value("faults.applied"))
	}
	if m.FaultsActive() != 1 {
		t.Fatalf("active faults = %d, want 1 (permanent degrade)", m.FaultsActive())
	}
}

func TestLinkDownWindowStallsAndRecovers(t *testing.T) {
	base, _, _ := runRS(t, nil)
	// Take GPU 1's plane-0 uplink down for a window straddling the run.
	down, _, m := runRS(t, &faults.Schedule{Name: "outage", Faults: []faults.Fault{
		{Kind: faults.LinkDown, At: 5 * sim.Microsecond, For: 40 * sim.Microsecond,
			Plane: 0, GPU: 1, Dir: faults.DirUp},
	}})
	if down < base {
		t.Fatalf("link outage sped up the run: %v < baseline %v", down, base)
	}
	snap := m.Metrics().Snapshot()
	if snap.Value("faults.applied") != 1 || snap.Value("faults.repaired") != 1 {
		t.Fatalf("applied/repaired = %v/%v, want 1/1", snap.Value("faults.applied"), snap.Value("faults.repaired"))
	}
	if m.FaultsActive() != 0 {
		t.Fatalf("active faults after repair = %d, want 0", m.FaultsActive())
	}
	if m.UpLink(0, 1).Down() {
		t.Fatal("uplink still down after the repair event")
	}
}

func TestPlaneDownFailoverCompletes(t *testing.T) {
	_, _, m := runRS(t, &faults.Schedule{Name: "plane-kill", Faults: []faults.Fault{
		{Kind: faults.PlaneDown, At: 3 * sim.Microsecond, Plane: 1, GPU: faults.All},
	}})
	if m.PlaneAlive(1) {
		t.Fatal("plane 1 still marked alive")
	}
	if m.Reroutes() == 0 {
		t.Fatal("no packets rerouted around the dead plane")
	}
	if m.Switches[1].Failed() != true {
		t.Fatal("switch 1 not in failed state")
	}
	// Routing invariants after the kill: everything lands on plane 0.
	for addr := uint64(1); addr < 64; addr++ {
		if m.routeAddr(addr) != 0 {
			t.Fatalf("addr %d routed to dead plane", addr)
		}
	}
	for g := 0; g < 8; g++ {
		if m.routeGroup(g) != 0 {
			t.Fatalf("group %d routed to dead plane", g)
		}
	}
}

func TestPlaneDownThenRepair(t *testing.T) {
	_, _, m := runRS(t, &faults.Schedule{Name: "plane-blip", Faults: []faults.Fault{
		{Kind: faults.PlaneDown, At: 3 * sim.Microsecond, For: 30 * sim.Microsecond,
			Plane: 0, GPU: faults.All},
	}})
	if !m.PlaneAlive(0) {
		t.Fatal("plane 0 not restored after repair")
	}
	if m.Switches[0].Failed() {
		t.Fatal("switch 0 still failed after repair")
	}
	// Static routing restored: addr hash is the identity plane hash again.
	for addr := uint64(1); addr < 16; addr++ {
		if got, want := m.routeAddr(addr), int(addr%2); got != want {
			t.Fatalf("routeAddr(%d) = %d after repair, want %d", addr, got, want)
		}
	}
}

func TestMergeDisableForcesBypass(t *testing.T) {
	_, _, m := runRS(t, &faults.Schedule{Name: "no-merge", Faults: []faults.Fault{
		{Kind: faults.MergeDisable, At: 0, Plane: faults.All, GPU: faults.All},
	}})
	st := m.SwitchStats()
	if st.BypassReds == 0 {
		t.Fatal("disabled merge units absorbed no bypass reductions")
	}
	if st.MergedReds != 0 {
		t.Fatalf("disabled merge units still merged %d contributions", st.MergedReds)
	}
}

func TestStragglerSlowsRun(t *testing.T) {
	base, _, _ := runRS(t, nil)
	slow, _, m := runRS(t, &faults.Schedule{Name: "straggler", Faults: []faults.Fault{
		{Kind: faults.Straggler, At: 0, GPU: 0, Plane: faults.All, Factor: 4},
	}})
	if slow <= base {
		t.Fatalf("4x straggler did not slow the run: %v <= baseline %v", slow, base)
	}
	if m.GPUs[0].ComputeSlowdown() != 4 {
		t.Fatalf("gpu0 slowdown = %v, want 4", m.GPUs[0].ComputeSlowdown())
	}
}

func TestStragglerRepairRestoresSpeed(t *testing.T) {
	_, _, m := runRS(t, &faults.Schedule{Name: "transient-straggler", Faults: []faults.Fault{
		{Kind: faults.Straggler, At: 0, For: 10 * sim.Microsecond, GPU: 2, Plane: faults.All, Factor: 2},
	}})
	if m.GPUs[2].ComputeSlowdown() != 1 {
		t.Fatalf("gpu2 slowdown = %v after repair, want 1", m.GPUs[2].ComputeSlowdown())
	}
}

func TestFaultedRunsAreDeterministic(t *testing.T) {
	sched := &faults.Schedule{Name: "mixed", Faults: []faults.Fault{
		{Kind: faults.LinkDegrade, At: 2 * sim.Microsecond, For: 20 * sim.Microsecond,
			Plane: faults.All, GPU: faults.All, Factor: 0.5},
		{Kind: faults.PlaneDown, At: 5 * sim.Microsecond, Plane: 1, GPU: faults.All},
		{Kind: faults.Straggler, At: 0, GPU: 3, Plane: faults.All, Factor: 1.5},
	}}
	t1, s1, m1 := runRS(t, sched)
	t2, s2, m2 := runRS(t, sched)
	if t1 != t2 || s1 != s2 {
		t.Fatalf("nondeterministic faulted run: (%v,%d) vs (%v,%d)", t1, s1, t2, s2)
	}
	if m1.Reroutes() != m2.Reroutes() {
		t.Fatalf("reroute counts differ: %d vs %d", m1.Reroutes(), m2.Reroutes())
	}
}

func TestInvalidScheduleRejectedAtAssembly(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range plane fault not rejected")
		}
	}()
	newTestMachine(t, testHW(), Options{Faults: &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.PlaneDown, At: 0, Plane: 99, GPU: faults.All},
	}}})
}

// A plane failure while heavy ld.cais fan-in is in flight: the AG workload
// exercises the pull-path re-route (pullTag) and sync failover together.
func TestPlaneDownDuringAGPattern(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{UnlimitedMergeTable: true,
		Faults: &faults.Schedule{Name: "ag-plane-kill", Faults: []faults.Fault{
			{Kind: faults.PlaneDown, At: 4 * sim.Microsecond, Plane: 0, GPU: faults.All},
		}}})
	done := false
	m.Eng.At(0, func() {
		k := buildAGKernel(m, 8, 4, 8<<10, m.NewBuffer())
		m.LaunchKernel(k, func() { done = true })
	})
	m.Run()
	if !done {
		t.Fatal("AG kernel did not survive the plane failure")
	}
	if err := m.CheckQuiescent(); err != nil {
		t.Fatal(err)
	}
}

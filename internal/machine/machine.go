// Package machine assembles the simulated multi-GPU system — GPUs, switch
// planes and the links between them — and drives kernel execution: it owns
// the global tile tracker that implements TB-level dataflow (consumer TBs
// become eligible the moment their input tiles are ready), counts
// reduction contributions at home GPUs, and sequences kernel launches for
// the execution strategies.
package machine

import (
	"fmt"
	"sort"

	"cais/internal/config"
	"cais/internal/faults"
	"cais/internal/gpu"
	"cais/internal/kernel"
	"cais/internal/metrics"
	"cais/internal/noc"
	"cais/internal/nvswitch"
	"cais/internal/pool"
	"cais/internal/sim"
	"cais/internal/trace"
)

// Options tune system assembly beyond the hardware config.
type Options struct {
	// TrafficControl enables virtual channels with round-robin
	// arbitration on every link (full CAIS; CAIS-Partial disables it).
	TrafficControl bool
	// UnlimitedMergeTable measures the minimal required table size
	// (Fig. 13a) by removing the capacity limit.
	UnlimitedMergeTable bool
	// MergeTableBytes overrides the hardware per-port capacity when > 0.
	MergeTableBytes int64
	// Eviction selects the merge unit's victim policy (default LRU).
	Eviction nvswitch.EvictionPolicy
	// NoControlSideband disables the dedicated request/control channel
	// on every link (design ablation: control packets then share the
	// data queues and suffer head-of-line blocking).
	NoControlSideband bool
	// Tracer, when non-nil, is attached to the engine before assembly so
	// every subsystem records spans into it (Perfetto export). Nil keeps
	// instrumentation disabled at zero cost.
	Tracer *trace.Tracer
	// Faults, when non-nil and non-empty, is the fault schedule the
	// machine's injector plays back on the sim clock (DESIGN.md §8). Nil
	// or empty keeps every fault hook inert, bit-identical to an
	// unfaulted run.
	Faults *faults.Schedule
}

// Machine is one assembled system plus its execution state.
type Machine struct {
	Eng  *sim.Engine
	HW   config.Hardware
	Opts Options

	GPUs     []*gpu.GPU
	Switches []*nvswitch.Switch
	upLink   [][]*noc.Link // [plane][gpu] GPU->switch
	downLink [][]*noc.Link // [plane][gpu] switch->GPU

	// Global tile tracker.
	ready   map[kernel.Tile]bool
	waiters map[kernel.Tile][]*tbDep

	// Reduction contribution counting at home GPUs.
	contrib map[contribKey]*contribState

	// Per-run allocation state for the kernel-construction and dataflow
	// hot path (DESIGN.md §10). All of it is owned by this machine and
	// dies with it, so nothing leaks across simulation points.
	tiles    pool.Arena[kernel.Tile]   // TB descriptor tile slices
	accs     pool.Arena[kernel.Access] // TB descriptor access slices
	deps     pool.Pool[tbDep]          // tile-tracker dependency records
	depLists [][]*tbDep                // recycled waiter backing arrays
	kdones   pool.Pool[kernelDone]     // per-kernel completion records
	contribs pool.Pool[contribState]   // reduction contribution counters
	latches  sim.LatchPool             // kernel/batch completion latches

	// tbRetireFn is the one retire callback shared by every launch: the
	// retiring TB's Out tiles arrive as an argument, so nothing needs to
	// be captured per kernel per GPU.
	tbRetireFn func(tb int, out []kernel.Tile)
	// launchScratch is the reusable per-launchKernel slice of the
	// SPMD launch handles (only live inside one launchKernel call).
	launchScratch []*gpu.Launch

	nextLaunchID  int
	nextGroupBase int
	nextAddr      uint64
	nextBuf       int

	// PublishedTiles counts tile publications (diagnostics).
	PublishedTiles int64

	// Plane liveness for fault-aware routing: planeAlive[p] is false while
	// plane p is failed; survivors lists the live planes in index order.
	// All-alive keeps routeAddr/routeGroup bit-identical to the static
	// address-hash of a healthy machine.
	planeAlive []bool
	survivors  []int
	reroutes   int64 // packets routed around a dead plane
	inj        *injector

	// KernelSpans records per-kernel execution windows for reporting:
	// earliest launch start to latest completion across GPUs.
	KernelSpans []*KernelSpan
	// nextWave numbers barrier-delimited launch batches: every kernel of
	// one LaunchAll shares a wave, standalone launches get their own. The
	// wave order is the dependency order the critical-path extraction in
	// internal/attrib chains spans by.
	nextWave int

	pkts *noc.PacketPool
	reg  *metrics.Registry
	tr   *trace.Tracer
}

// KernelSpan is one kernel's execution window across all GPUs.
type KernelSpan struct {
	Name  string
	Kind  kernel.Kind
	Wave  int      // barrier-delimited launch batch (see Machine.nextWave)
	Start sim.Time // first launch start
	End   sim.Time // last GPU's completion
}

// AttachRecorder installs a busy-interval observer on every link in the
// fabric (utilization-over-time measurements, Fig. 16).
func (m *Machine) AttachRecorder(r noc.BusyRecorder) {
	for _, l := range m.Links() {
		l.SetRecorder(r)
	}
}

type contribKey struct {
	base uint64
	gpu  int
}

type contribState struct {
	need int64
	got  int64
}

// reset clears the counter for pool reuse (caislint: poolreset).
func (c *contribState) reset() {
	c.need = 0
	c.got = 0
}

// tbDep tracks one TB instance's unsatisfied input count.
type tbDep struct {
	launch  *gpu.Launch
	tb      int
	pending int
}

// reset clears the record for pool reuse (caislint: poolreset).
func (d *tbDep) reset() {
	d.launch = nil
	d.tb = 0
	d.pending = 0
}

// kernelDone carries one kernel's completion bookkeeping (span close,
// trace end, caller callback); the pooled launch latch fires it when the
// kernel has retired on every GPU. The m back-pointer and cached fire
// method value are installed once per object lifetime.
type kernelDone struct {
	m       *Machine
	span    *KernelSpan
	traceID uint64
	onDone  func()
	fireFn  func()
}

// reset clears per-kernel state for pool reuse; the m back-pointer and
// cached fireFn are the object's identity and survive (caislint:
// poolreset).
func (d *kernelDone) reset() {
	d.span = nil
	d.traceID = 0
	d.onDone = nil
}

// fire closes the kernel's span and runs the caller's completion. The
// record recycles itself first so the callback may immediately launch the
// next kernel through a fresh record.
func (d *kernelDone) fire() {
	m, span, traceID, onDone := d.m, d.span, d.traceID, d.onDone
	d.reset()
	m.kdones.Put(d)
	span.End = m.Eng.Now()
	if traceID != 0 {
		m.tr.EndAsync(trace.PIDMachine, "kernel", span.Name, traceID, span.End)
	}
	if onDone != nil {
		onDone()
	}
}

// getKernelDone pops a recycled completion record and (first time only)
// installs its identity.
func (m *Machine) getKernelDone() *kernelDone {
	d := m.kdones.Get()
	if d.m == nil {
		d.m = m
		d.fireFn = d.fire
	}
	return d
}

// TileArena exposes the per-run tile-slice arena to the workload builders:
// kernel Work generators allocate their descriptor slices here instead of
// the heap. Slices live until the machine dies (or, inside the machine's
// own registration loop, until the surrounding Mark/Rewind window closes).
func (m *Machine) TileArena() *pool.Arena[kernel.Tile] { return &m.tiles }

// AccessArena is the access-slice counterpart of TileArena.
func (m *Machine) AccessArena() *pool.Arena[kernel.Access] { return &m.accs }

// New assembles a machine for the hardware configuration.
func New(eng *sim.Engine, hw config.Hardware, opts Options) *Machine {
	if err := hw.Validate(); err != nil {
		panic(err)
	}
	if opts.Tracer != nil {
		// Attach before assembly: every component captures the tracer from
		// the engine at construction time.
		trace.Attach(eng, opts.Tracer)
	}
	m := &Machine{
		Eng: eng, HW: hw, Opts: opts,
		ready:   make(map[kernel.Tile]bool),
		waiters: make(map[kernel.Tile][]*tbDep),
		contrib: make(map[contribKey]*contribState),
		// Address 0 is reserved so a zero Access is always a bug.
		nextAddr: 1,
		reg:      metrics.NewRegistry(),
		tr:       trace.FromEngine(eng),
	}
	// One retire callback for every launch of this machine's lifetime
	// (the per-kernel-per-GPU closures it replaces were ~N_GPUs allocs
	// per launch).
	m.tbRetireFn = func(tb int, out []kernel.Tile) {
		if len(out) > 0 {
			m.PublishTiles(out)
		}
	}
	m.planeAlive = make([]bool, hw.NumSwitchPlanes)
	for p := range m.planeAlive {
		m.planeAlive[p] = true
	}
	m.recomputeSurvivors()
	// One run-wide packet free list shared by every GPU and switch plane:
	// packets recycle wherever they are terminally consumed, which is
	// usually on the other side of the fabric from where they were built.
	pkts := &noc.PacketPool{}
	m.pkts = pkts
	for g := 0; g < hw.NumGPUs; g++ {
		m.GPUs = append(m.GPUs, gpu.New(eng, g, hw, m.routeAddr, m))
		m.GPUs[g].SetGroupRouter(m.routeGroup)
		m.GPUs[g].SetPacketPool(pkts)
	}
	capacity := hw.MergeTableBytes
	if opts.MergeTableBytes > 0 {
		capacity = opts.MergeTableBytes
	}
	if opts.UnlimitedMergeTable {
		capacity = -1
	}
	planeBW := hw.PlaneBandwidth()
	for pl := 0; pl < hw.NumSwitchPlanes; pl++ {
		sw := nvswitch.New(eng, nvswitch.Config{
			NumGPUs: hw.NumGPUs, Plane: pl,
			SwitchLatency: hw.SwitchLatency,
			MergeCapacity: capacity,
			MergeTimeout:  hw.MergeTimeout,
			CreditLatency: hw.LinkLatency,
			Eviction:      opts.Eviction,
			Metrics:       m.reg,
		})
		sw.SetPacketPool(pkts)
		m.Switches = append(m.Switches, sw)
		ups := make([]*noc.Link, hw.NumGPUs)
		downs := make([]*noc.Link, hw.NumGPUs)
		for g := 0; g < hw.NumGPUs; g++ {
			up := noc.NewLink(eng, fmt.Sprintf("g%d->sw%d", g, pl), planeBW, hw.LinkLatency, sw)
			down := noc.NewLink(eng, fmt.Sprintf("sw%d->g%d", pl, g), planeBW, hw.LinkLatency, m.GPUs[g])
			up.SetVirtualChannels(opts.TrafficControl)
			down.SetVirtualChannels(opts.TrafficControl)
			up.SetControlSideband(!opts.NoControlSideband)
			down.SetControlSideband(!opts.NoControlSideband)
			m.GPUs[g].ConnectUp(pl, up)
			sw.ConnectDown(g, down)
			ups[g], downs[g] = up, down
			// Link busy intervals render on the switch plane's process:
			// one uplink and one downlink track per GPU port.
			up.TraceOn(trace.SwitchPid(pl), trace.TIDUplinkBase+int32(g))
			down.TraceOn(trace.SwitchPid(pl), trace.TIDDownlinkBase+int32(g))
		}
		m.upLink = append(m.upLink, ups)
		m.downLink = append(m.downLink, downs)
	}
	m.nameTraceTracks()
	m.registerGauges()
	m.installFaults()
	return m
}

// routeAddr is the fault-aware address-to-plane hash shared by every GPU:
// the static plane hash when the plane is alive, else a consistent re-hash
// over the survivors. Only addresses that hashed to a dead plane remap, so
// live-plane merge/NVLS sessions are never split by a failover.
func (m *Machine) routeAddr(addr uint64) int {
	p := int(addr % uint64(m.HW.NumSwitchPlanes))
	if m.planeAlive[p] {
		return p
	}
	if len(m.survivors) == 0 {
		panic("machine: all switch planes are down")
	}
	m.reroutes++
	return m.survivors[addr%uint64(len(m.survivors))]
}

// routeGroup is the fault-aware Group Sync Table plane hash (same fallback
// rule as routeAddr, keyed by group ID).
func (m *Machine) routeGroup(group int) int {
	p := group % m.HW.NumSwitchPlanes
	if p < 0 {
		p = 0
	}
	if m.planeAlive[p] {
		return p
	}
	if len(m.survivors) == 0 {
		panic("machine: all switch planes are down")
	}
	return m.survivors[uint64(p)%uint64(len(m.survivors))]
}

func (m *Machine) recomputeSurvivors() {
	m.survivors = m.survivors[:0]
	for p, alive := range m.planeAlive {
		if alive {
			m.survivors = append(m.survivors, p)
		}
	}
}

// PlaneAlive reports whether a switch plane is currently in service.
func (m *Machine) PlaneAlive(p int) bool { return m.planeAlive[p] }

// nameTraceTracks labels the Perfetto processes and threads so the trace
// reads as the machine topology.
func (m *Machine) nameTraceTracks() {
	if !m.tr.Enabled() {
		return
	}
	m.tr.NameProcess(trace.PIDMachine, "machine")
	m.tr.NameThread(trace.PIDMachine, 0, "kernels")
	for g := 0; g < m.HW.NumGPUs; g++ {
		m.tr.NameProcess(trace.GPUPid(g), fmt.Sprintf("gpu%d", g))
		m.tr.NameThread(trace.GPUPid(g), trace.TIDSync, "sync")
	}
	for pl := 0; pl < m.HW.NumSwitchPlanes; pl++ {
		pid := trace.SwitchPid(pl)
		m.tr.NameProcess(pid, fmt.Sprintf("switch plane%d", pl))
		for g := 0; g < m.HW.NumGPUs; g++ {
			m.tr.NameThread(pid, trace.TIDUplinkBase+int32(g), fmt.Sprintf("uplink g%d", g))
			m.tr.NameThread(pid, trace.TIDDownlinkBase+int32(g), fmt.Sprintf("downlink g%d", g))
		}
	}
}

// registerGauges feeds machine-wide aggregates into the metric registry;
// all are lazily evaluated at snapshot time, so assembly pays nothing on
// the hot path.
func (m *Machine) registerGauges() {
	m.reg.GaugeFunc("sim.now_us", func() float64 { return m.Eng.Now().Microseconds() })
	m.reg.GaugeFunc("sim.steps", func() float64 { return float64(m.Eng.Steps()) })
	m.reg.GaugeFunc("machine.published_tiles", func() float64 { return float64(m.PublishedTiles) })
	m.reg.GaugeFunc("machine.merge_hwm_bytes", func() float64 { return float64(m.MergeTableHighWater()) })
	m.reg.GaugeFunc("noc.up.wire_bytes", func() float64 { up, _ := m.DirectionTraffic(); return float64(up) })
	m.reg.GaugeFunc("noc.down.wire_bytes", func() float64 { _, down := m.DirectionTraffic(); return float64(down) })
	m.reg.GaugeFunc("noc.up.busy_us", func() float64 { up, _ := m.DirectionBusy(); return up.Microseconds() })
	m.reg.GaugeFunc("noc.down.busy_us", func() float64 { _, down := m.DirectionBusy(); return down.Microseconds() })
	m.reg.GaugeFunc("gpu.tbs_run", func() float64 {
		var n int64
		for _, g := range m.GPUs {
			n += g.TBsRun
		}
		return float64(n)
	})
	m.reg.GaugeFunc("gpu.requests_sent", func() float64 {
		var n int64
		for _, g := range m.GPUs {
			n += g.RequestsSent
		}
		return float64(n)
	})
	m.reg.GaugeFunc("gpu.bytes_requested", func() float64 {
		var n int64
		for _, g := range m.GPUs {
			n += g.BytesRequested
		}
		return float64(n)
	})
	m.reg.GaugeFunc("machine.kernels_launched", func() float64 { return float64(len(m.KernelSpans)) })

	// Free-list health: Get traffic, fresh allocations and idle entries per
	// pool family. A steady-state run re-serves the same objects, so
	// allocs plateauing while gets keep climbing is the healthy signature
	// (DESIGN.md §10); these gauges surface it in -metrics-json.
	m.reg.GaugeFunc("pool.packets.gets", func() float64 { g, _, _ := m.pkts.Stats(); return float64(g) })
	m.reg.GaugeFunc("pool.packets.allocs", func() float64 { _, n, _ := m.pkts.Stats(); return float64(n) })
	m.reg.GaugeFunc("pool.packets.idle", func() float64 { _, _, i := m.pkts.Stats(); return float64(i) })
	gpuPools := func() (gets, news, idle int) {
		for _, g := range m.GPUs {
			pg, pn, pi := g.PoolStats()
			gets, news, idle = gets+pg, news+pn, idle+pi
		}
		return
	}
	m.reg.GaugeFunc("pool.gpu.gets", func() float64 { g, _, _ := gpuPools(); return float64(g) })
	m.reg.GaugeFunc("pool.gpu.allocs", func() float64 { _, n, _ := gpuPools(); return float64(n) })
	m.reg.GaugeFunc("pool.gpu.idle", func() float64 { _, _, i := gpuPools(); return float64(i) })
	swPools := func() (gets, news, idle int) {
		for _, sw := range m.Switches {
			sg, sn, si := sw.PoolStats()
			gets, news, idle = gets+sg, news+sn, idle+si
		}
		return
	}
	m.reg.GaugeFunc("pool.nvswitch.gets", func() float64 { g, _, _ := swPools(); return float64(g) })
	m.reg.GaugeFunc("pool.nvswitch.allocs", func() float64 { _, n, _ := swPools(); return float64(n) })
	m.reg.GaugeFunc("pool.nvswitch.idle", func() float64 { _, _, i := swPools(); return float64(i) })
	machinePools := func() (gets, news, idle int) {
		for _, p := range []interface{ Stats() (int, int, int) }{&m.deps, &m.kdones, &m.contribs, &m.latches} {
			g, n, i := p.Stats()
			gets, news, idle = gets+g, news+n, idle+i
		}
		return
	}
	m.reg.GaugeFunc("pool.machine.gets", func() float64 { g, _, _ := machinePools(); return float64(g) })
	m.reg.GaugeFunc("pool.machine.allocs", func() float64 { _, n, _ := machinePools(); return float64(n) })
	m.reg.GaugeFunc("pool.machine.idle", func() float64 { _, _, i := machinePools(); return float64(i) })
	// Arena health: chunks is the real heap footprint; elems keeps climbing
	// with work done, so elems/chunk >> arenaChunk means healthy reuse.
	m.reg.GaugeFunc("arena.tiles.chunks", func() float64 { c, _, _ := m.tiles.Stats(); return float64(c) })
	m.reg.GaugeFunc("arena.tiles.elems", func() float64 { _, _, e := m.tiles.Stats(); return float64(e) })
	m.reg.GaugeFunc("arena.accs.chunks", func() float64 { c, _, _ := m.accs.Stats(); return float64(c) })
	m.reg.GaugeFunc("arena.accs.elems", func() float64 { _, _, e := m.accs.Stats(); return float64(e) })
}

// Metrics exposes the machine's central metric registry.
func (m *Machine) Metrics() *metrics.Registry { return m.reg }

// UpLink returns the GPU->switch link for (plane, gpu).
func (m *Machine) UpLink(plane, g int) *noc.Link { return m.upLink[plane][g] }

// DownLink returns the switch->GPU link for (plane, gpu).
func (m *Machine) DownLink(plane, g int) *noc.Link { return m.downLink[plane][g] }

// Links yields every link in the fabric (both directions).
func (m *Machine) Links() []*noc.Link {
	var out []*noc.Link
	for pl := range m.upLink {
		out = append(out, m.upLink[pl]...)
		out = append(out, m.downLink[pl]...)
	}
	return out
}

// AllocAddrs reserves n consecutive address keys (one per request chunk)
// and returns the base.
func (m *Machine) AllocAddrs(n int) uint64 {
	if n < 1 {
		n = 1
	}
	base := m.nextAddr
	m.nextAddr += uint64(n)
	return base
}

// AddrsFor reports how many address keys an access of the given byte size
// occupies at the machine's request granularity.
func (m *Machine) AddrsFor(bytes int64) int {
	rb := m.HW.RequestBytes
	if rb <= 0 || bytes <= 0 {
		return 1
	}
	return int((bytes + rb - 1) / rb)
}

// NewBuffer allocates a tile-buffer ID.
func (m *Machine) NewBuffer() int {
	m.nextBuf++
	return m.nextBuf
}

// SwitchStats folds the per-plane switch statistics.
func (m *Machine) SwitchStats() nvswitch.Summary {
	var acc nvswitch.Summary
	for _, sw := range m.Switches {
		acc = acc.Add(sw.Summary())
	}
	return acc
}

// MergeTableHighWater reports the largest per-port merging-table occupancy
// across all planes and ports.
func (m *Machine) MergeTableHighWater() int64 {
	var hwm int64
	for _, sw := range m.Switches {
		for g := 0; g < m.HW.NumGPUs; g++ {
			if v := sw.Port(g).HighWater(); v > hwm {
				hwm = v
			}
		}
	}
	return hwm
}

// DirectionTraffic reports total wire bytes carried upstream (GPU->switch)
// and downstream (switch->GPU) — the asymmetric-traffic decomposition of
// Fig. 10.
func (m *Machine) DirectionTraffic() (up, down int64) {
	for pl := range m.upLink {
		for g := range m.upLink[pl] {
			up += m.upLink[pl][g].BytesSent()
			down += m.downLink[pl][g].BytesSent()
		}
	}
	return up, down
}

// DirectionBusy reports the accumulated serialization time per direction,
// summed across links.
func (m *Machine) DirectionBusy() (up, down sim.Time) {
	for pl := range m.upLink {
		for g := range m.upLink[pl] {
			up += m.upLink[pl][g].BusyTime()
			down += m.downLink[pl][g].BusyTime()
		}
	}
	return up, down
}

// AvgLinkUtilization reports the mean busy fraction across every link and
// both directions over [0, horizon] (Fig. 15's metric).
func (m *Machine) AvgLinkUtilization(horizon sim.Time) float64 {
	links := m.Links()
	if len(links) == 0 || horizon <= 0 {
		return 0
	}
	var sum float64
	for _, l := range links {
		sum += l.Utilization(horizon)
	}
	return sum / float64(len(links))
}

// Run drains the event queue and returns the final simulated time.
func (m *Machine) Run() sim.Time { return m.Eng.Run() }

// CheckQuiescent reports an error when the machine stopped with
// unsatisfied dependencies — a deadlock or a miswired workload.
func (m *Machine) CheckQuiescent() error {
	var stuck []string
	tiles := make([]kernel.Tile, 0, len(m.waiters))
	for t := range m.waiters {
		tiles = append(tiles, t)
	}
	sort.Slice(tiles, func(i, j int) bool {
		if tiles[i].Buf != tiles[j].Buf {
			return tiles[i].Buf < tiles[j].Buf
		}
		return tiles[i].Idx < tiles[j].Idx
	})
	for _, t := range tiles {
		live := 0
		for _, d := range m.waiters[t] {
			if d.pending > 0 {
				live++
			}
		}
		if live > 0 {
			stuck = append(stuck, fmt.Sprintf("tile{buf=%d idx=%d}: %d TBs waiting", t.Buf, t.Idx, live))
		}
	}
	for _, g := range m.GPUs {
		if n := g.Synchronizer().Pending(); n > 0 {
			stuck = append(stuck, fmt.Sprintf("gpu%d: %d sync waits pending", g.ID, n))
		}
		if n := g.ActiveLaunches(); n > 0 {
			stuck = append(stuck, fmt.Sprintf("gpu%d: %d launches unfinished", g.ID, n))
		}
	}
	if n := len(m.contrib); n > 0 {
		stuck = append(stuck, fmt.Sprintf("%d reduction contributions incomplete", n))
	}
	if len(stuck) == 0 {
		return nil
	}
	sort.Strings(stuck)
	if len(stuck) > 12 {
		stuck = append(stuck[:12], "...")
	}
	return fmt.Errorf("machine not quiescent: %v", stuck)
}

package machine

import (
	"testing"

	"cais/internal/kernel"
	"cais/internal/metrics"
	"cais/internal/noc"
	"cais/internal/sim"
)

func TestLaunchAllEmptyAndSequenceEmpty(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	calls := 0
	m.LaunchAll(nil, func() { calls++ })
	m.Sequence(nil, func() { calls++ })
	if calls != 2 {
		t.Fatalf("empty plans must complete immediately: %d", calls)
	}
}

func TestKernelSpansRecorded(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	m.Eng.At(0, func() {
		m.Sequence([]*kernel.Kernel{computeOnly("a", 4, 1e8), computeOnly("b", 4, 1e8)}, nil)
	})
	m.Run()
	if len(m.KernelSpans) != 2 {
		t.Fatalf("spans = %d, want 2", len(m.KernelSpans))
	}
	for _, s := range m.KernelSpans {
		if s.End <= s.Start {
			t.Fatalf("span %s has no duration", s.Name)
		}
	}
	if m.KernelSpans[1].Start < m.KernelSpans[0].End {
		t.Fatal("sequence spans must not overlap")
	}
}

func TestContributionInconsistencyPanics(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	m.addContribution(0, 99, 100, 10, nil, nil, kernel.Tile{})
	defer func() {
		if recover() == nil {
			t.Fatal("inconsistent contribution need did not panic")
		}
	}()
	m.addContribution(0, 99, 200, 10, nil, nil, kernel.Tile{})
}

func TestOnDataIgnoresUntaggedPackets(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	m.OnData(0, &noc.Packet{Op: noc.OpStore, Size: 128}) // no tag: no-op
	if len(m.contrib) != 0 {
		t.Fatal("untagged packet created contribution state")
	}
}

func TestAttachRecorderCoversAllLinks(t *testing.T) {
	hw := testHW()
	m := newTestMachine(t, hw, Options{})
	rec := metrics.NewUtilSeries(10*sim.Microsecond, len(m.Links()))
	m.AttachRecorder(rec)
	m.Eng.At(0, func() {
		k := buildRSKernel(m, 8, 4<<10, m.NewBuffer(), false)
		m.LaunchKernel(k, nil)
	})
	m.Run()
	if rec.Mean(0) <= 0 {
		t.Fatal("recorder saw no traffic despite remote reductions")
	}
}

func TestPublishTilesIdempotent(t *testing.T) {
	m := newTestMachine(t, testHW(), Options{})
	tl := kernel.Tile{Buf: 5, Idx: 1}
	m.PublishTiles([]kernel.Tile{tl})
	n := m.PublishedTiles
	m.PublishTiles([]kernel.Tile{tl})
	if m.PublishedTiles != n {
		t.Fatal("republishing must be a no-op")
	}
	if !m.TileReady(tl) {
		t.Fatal("tile not ready")
	}
}

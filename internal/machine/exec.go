package machine

import (
	"fmt"

	"cais/internal/gpu"
	"cais/internal/kernel"
	"cais/internal/noc"
	"cais/internal/trace"
)

// LaunchKernel starts kernel k on every GPU (SPMD) and wires TB-level
// dependencies through the global tile tracker. onDone fires when the
// kernel has retired on all GPUs. The kernel gets its own wave number
// (LaunchAll batches share one).
func (m *Machine) LaunchKernel(k *kernel.Kernel, onDone func()) {
	m.nextWave++
	m.launchKernel(k, m.nextWave, onDone)
}

func (m *Machine) launchKernel(k *kernel.Kernel, wave int, onDone func()) {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	m.nextLaunchID++
	launchID := m.nextLaunchID
	groupBase := m.nextGroupBase
	m.nextGroupBase += k.Grid

	span := &KernelSpan{Name: k.Name, Kind: k.Kind, Wave: wave, Start: m.Eng.Now()}
	m.KernelSpans = append(m.KernelSpans, span)
	var traceID uint64
	if m.tr.Enabled() {
		// Kernels overlap (asymmetric kernel overlapping), so they trace as
		// async spans on the machine process.
		traceID = m.tr.NextID()
		m.tr.BeginAsync(trace.PIDMachine, "kernel", k.Name, traceID, span.Start)
	}
	// A pooled latch counts per-GPU completions into one pooled
	// completion record: the per-kernel closures this replaces were the
	// largest machine-layer allocation after the tile tracker.
	done := m.getKernelDone()
	done.span, done.traceID, done.onDone = span, traceID, onDone
	latch := m.latches.Get(len(m.GPUs), done.fireFn)
	doneFn := latch.DoneFunc()
	launches := m.launchScratch[:0]
	for g := range m.GPUs {
		launches = append(launches, m.GPUs[g].Launch(k, gpu.LaunchOpts{
			LaunchID:   launchID,
			GroupBase:  groupBase,
			OnTBRetire: m.tbRetireFn,
			OnDone:     doneFn,
		}))
	}
	// Register input dependencies after all launches exist so publishes
	// triggered by eligibility cascades see a consistent tracker. The
	// iteration order (gpu-major, then tb) is deterministic and identical
	// across runs; per-GPU relative TB order is identical across GPUs,
	// which keeps cross-GPU group synchronization deadlock-free.
	//
	// Each registration descriptor is transient — registerTB copies the
	// tiles it needs into the tracker — so the arena space every Work
	// call allocates here is rewound immediately. Admission-time Work
	// calls (at readyAt, strictly later) run outside any Mark window and
	// their slices stay live for the machine's lifetime.
	for g := range m.GPUs {
		for tb := 0; tb < k.Grid; tb++ {
			tm, am := m.tiles.Mark(), m.accs.Mark()
			m.registerTB(launches[g], tb, k.Work(g, tb).In)
			m.tiles.Rewind(tm)
			m.accs.Rewind(am)
		}
	}
	m.launchScratch = launches[:0]
}

// Sequence launches kernels one after another with a global barrier
// between steps (the communication-centric baseline execution mode), then
// calls onDone.
func (m *Machine) Sequence(kernels []*kernel.Kernel, onDone func()) {
	var step func(i int)
	step = func(i int) {
		if i >= len(kernels) {
			if onDone != nil {
				onDone()
			}
			return
		}
		m.LaunchKernel(kernels[i], func() { step(i + 1) })
	}
	step(0)
}

// LaunchAll launches a set of kernels concurrently (they share the GPU per
// their SM partitions) and calls onDone when every one of them finished.
// The whole batch shares one wave number: the batch boundary is the
// barrier the critical-path extraction chains spans across.
func (m *Machine) LaunchAll(kernels []*kernel.Kernel, onDone func()) {
	if len(kernels) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	m.nextWave++
	wave := m.nextWave
	// One pooled latch counts the batch: each kernel's completion record
	// holds the latch's cached Done method value as its onDone.
	batch := m.latches.Get(len(kernels), onDone)
	bdone := batch.DoneFunc()
	for _, k := range kernels {
		m.launchKernel(k, wave, bdone)
	}
}

func (m *Machine) registerTB(l *gpu.Launch, tb int, in []kernel.Tile) {
	pending := 0
	var dep *tbDep
	for _, t := range in {
		if m.ready[t] {
			continue
		}
		if dep == nil {
			dep = m.deps.Get()
			dep.launch, dep.tb = l, tb
		}
		pending++
		m.addWaiter(t, dep)
	}
	if pending == 0 {
		l.MarkEligible(tb)
		return
	}
	dep.pending = pending
}

// addWaiter appends a dependency record to a tile's waiter list, reusing
// a recycled backing array for lists starting from scratch. Identical
// dependency sets thereby share pool-interned storage across kernels
// instead of growing a fresh map entry per registration.
func (m *Machine) addWaiter(t kernel.Tile, d *tbDep) {
	w, ok := m.waiters[t]
	if !ok && len(m.depLists) > 0 {
		w = m.depLists[len(m.depLists)-1]
		m.depLists = m.depLists[:len(m.depLists)-1]
	}
	m.waiters[t] = append(w, d)
}

// PublishTiles marks tiles globally ready and wakes waiting TBs in
// registration order.
func (m *Machine) PublishTiles(tiles []kernel.Tile) {
	for _, t := range tiles {
		m.publishOne(t)
	}
}

// publishOne publishes a single tile: drained dependency records return
// to their pool and the waiter list's backing array goes back on the
// free list for the next registration.
func (m *Machine) publishOne(t kernel.Tile) {
	if m.ready[t] {
		return
	}
	m.ready[t] = true
	m.PublishedTiles++
	deps, ok := m.waiters[t]
	if !ok {
		return
	}
	delete(m.waiters, t)
	for i, d := range deps {
		deps[i] = nil
		d.pending--
		if d.pending == 0 {
			launch, tb := d.launch, d.tb
			d.reset()
			m.deps.Put(d)
			launch.MarkEligible(tb)
		}
	}
	m.depLists = append(m.depLists, deps[:0])
}

// TileReady reports whether a tile has been published.
func (m *Machine) TileReady(t kernel.Tile) bool { return m.ready[t] }

// OnData implements gpu.DataSink: a data packet committed to HBM at GPU g.
// Packets carrying a TileTag contribute toward their access's completion;
// once the required contribution bytes accumulate, the tiles publish.
func (m *Machine) OnData(g int, p *noc.Packet) {
	tag, ok := p.Tag.(*gpu.TileTag)
	if !ok || tag == nil {
		return
	}
	contribs := p.Contribs
	if contribs < 1 {
		contribs = 1
	}
	m.addContribution(g, tag.Base, tag.NeedBytes, int64(contribs)*p.Size,
		tag.Publish, tag.PublishAt, tag.PublishEach)
}

// OnAccessDone implements gpu.DataSink: one TB's access completed at the
// issuing GPU. Read accesses publish their tiles directly (the data is now
// local); local write/reduce accesses count as contributions at this (home)
// GPU.
func (m *Machine) OnAccessDone(g int, a kernel.Access) {
	if a.Sem == kernel.SemRead {
		m.publishFor(g, a.Publish, a.PublishAt, a.PublishEach)
		return
	}
	need := a.TileNeed
	if need <= 0 {
		need = 1
	}
	m.addContribution(g, a.Addr, int64(need)*a.Bytes, a.Bytes,
		a.Publish, a.PublishAt, a.PublishEach)
}

func (m *Machine) addContribution(g int, base uint64, needBytes, bytes int64,
	pub []kernel.Tile, pubAt func(int) []kernel.Tile, pubEach kernel.Tile) {
	key := contribKey{base: base, gpu: g}
	st, ok := m.contrib[key]
	if !ok {
		st = m.contribs.Get()
		st.need = needBytes
		m.contrib[key] = st
	}
	if st.need != needBytes {
		panic(fmt.Sprintf("machine: inconsistent contribution need at addr %#x gpu %d: %d vs %d",
			base, g, st.need, needBytes))
	}
	st.got += bytes
	if st.got < st.need {
		return
	}
	delete(m.contrib, key)
	st.reset()
	m.contribs.Put(st)
	m.publishFor(g, pub, pubAt, pubEach)
}

func (m *Machine) publishFor(g int, tiles []kernel.Tile, perGPU func(int) []kernel.Tile, each kernel.Tile) {
	if perGPU != nil {
		m.PublishTiles(perGPU(g))
		return
	}
	if each.Buf != 0 {
		m.publishOne(kernel.Tile{Buf: each.Buf, Idx: each.Idx + g})
		return
	}
	m.PublishTiles(tiles)
}

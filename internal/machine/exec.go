package machine

import (
	"fmt"

	"cais/internal/gpu"
	"cais/internal/kernel"
	"cais/internal/noc"
	"cais/internal/trace"
)

// LaunchKernel starts kernel k on every GPU (SPMD) and wires TB-level
// dependencies through the global tile tracker. onDone fires when the
// kernel has retired on all GPUs. The kernel gets its own wave number
// (LaunchAll batches share one).
func (m *Machine) LaunchKernel(k *kernel.Kernel, onDone func()) {
	m.nextWave++
	m.launchKernel(k, m.nextWave, onDone)
}

func (m *Machine) launchKernel(k *kernel.Kernel, wave int, onDone func()) {
	if err := k.Validate(); err != nil {
		panic(err)
	}
	m.nextLaunchID++
	launchID := m.nextLaunchID
	groupBase := m.nextGroupBase
	m.nextGroupBase += k.Grid

	span := &KernelSpan{Name: k.Name, Kind: k.Kind, Wave: wave, Start: m.Eng.Now()}
	m.KernelSpans = append(m.KernelSpans, span)
	var traceID uint64
	if m.tr.Enabled() {
		// Kernels overlap (asymmetric kernel overlapping), so they trace as
		// async spans on the machine process.
		traceID = m.tr.NextID()
		m.tr.BeginAsync(trace.PIDMachine, "kernel", k.Name, traceID, span.Start)
	}
	remaining := len(m.GPUs)
	launches := make([]*gpu.Launch, len(m.GPUs))
	for g := range m.GPUs {
		g := g
		launches[g] = m.GPUs[g].Launch(k, gpu.LaunchOpts{
			LaunchID:  launchID,
			GroupBase: groupBase,
			OnTBRetire: func(tb int) {
				out := k.Work(g, tb).Out
				if len(out) > 0 {
					m.PublishTiles(out)
				}
			},
			OnDone: func() {
				remaining--
				if remaining == 0 {
					span.End = m.Eng.Now()
					if traceID != 0 {
						m.tr.EndAsync(trace.PIDMachine, "kernel", k.Name, traceID, span.End)
					}
					if onDone != nil {
						onDone()
					}
				}
			},
		})
	}
	// Register input dependencies after all launches exist so publishes
	// triggered by eligibility cascades see a consistent tracker. The
	// iteration order (gpu-major, then tb) is deterministic and identical
	// across runs; per-GPU relative TB order is identical across GPUs,
	// which keeps cross-GPU group synchronization deadlock-free.
	for g := range m.GPUs {
		for tb := 0; tb < k.Grid; tb++ {
			m.registerTB(launches[g], g, tb, k.Work(g, tb).In)
		}
	}
}

// Sequence launches kernels one after another with a global barrier
// between steps (the communication-centric baseline execution mode), then
// calls onDone.
func (m *Machine) Sequence(kernels []*kernel.Kernel, onDone func()) {
	var step func(i int)
	step = func(i int) {
		if i >= len(kernels) {
			if onDone != nil {
				onDone()
			}
			return
		}
		m.LaunchKernel(kernels[i], func() { step(i + 1) })
	}
	step(0)
}

// LaunchAll launches a set of kernels concurrently (they share the GPU per
// their SM partitions) and calls onDone when every one of them finished.
// The whole batch shares one wave number: the batch boundary is the
// barrier the critical-path extraction chains spans across.
func (m *Machine) LaunchAll(kernels []*kernel.Kernel, onDone func()) {
	if len(kernels) == 0 {
		if onDone != nil {
			onDone()
		}
		return
	}
	m.nextWave++
	wave := m.nextWave
	remaining := len(kernels)
	for _, k := range kernels {
		m.launchKernel(k, wave, func() {
			remaining--
			if remaining == 0 && onDone != nil {
				onDone()
			}
		})
	}
}

func (m *Machine) registerTB(l *gpu.Launch, g, tb int, in []kernel.Tile) {
	pending := 0
	var dep *tbDep
	for _, t := range in {
		if m.ready[t] {
			continue
		}
		if dep == nil {
			dep = &tbDep{launch: l, tb: tb}
		}
		pending++
		m.waiters[t] = append(m.waiters[t], dep)
	}
	if pending == 0 {
		l.MarkEligible(tb)
		return
	}
	dep.pending = pending
}

// PublishTiles marks tiles globally ready and wakes waiting TBs in
// registration order.
func (m *Machine) PublishTiles(tiles []kernel.Tile) {
	for _, t := range tiles {
		if m.ready[t] {
			continue
		}
		m.ready[t] = true
		m.PublishedTiles++
		deps := m.waiters[t]
		delete(m.waiters, t)
		for _, d := range deps {
			d.pending--
			if d.pending == 0 {
				d.launch.MarkEligible(d.tb)
			}
		}
	}
}

// TileReady reports whether a tile has been published.
func (m *Machine) TileReady(t kernel.Tile) bool { return m.ready[t] }

// OnData implements gpu.DataSink: a data packet committed to HBM at GPU g.
// Packets carrying a TileTag contribute toward their access's completion;
// once the required contribution bytes accumulate, the tiles publish.
func (m *Machine) OnData(g int, p *noc.Packet) {
	tag, ok := p.Tag.(*gpu.TileTag)
	if !ok || tag == nil {
		return
	}
	contribs := p.Contribs
	if contribs < 1 {
		contribs = 1
	}
	m.addContribution(g, tag, int64(contribs)*p.Size)
}

// OnAccessDone implements gpu.DataSink: one TB's access completed at the
// issuing GPU. Read accesses publish their tiles directly (the data is now
// local); local write/reduce accesses count as contributions at this (home)
// GPU.
func (m *Machine) OnAccessDone(g int, a kernel.Access) {
	if a.Sem == kernel.SemRead {
		m.publishFor(g, a.Publish, a.PublishAt)
		return
	}
	need := a.TileNeed
	if need <= 0 {
		need = 1
	}
	tag := &gpu.TileTag{Base: a.Addr, NeedBytes: int64(need) * a.Bytes, Publish: a.Publish, PublishAt: a.PublishAt}
	m.addContribution(g, tag, a.Bytes)
}

func (m *Machine) addContribution(g int, tag *gpu.TileTag, bytes int64) {
	key := contribKey{base: tag.Base, gpu: g}
	st, ok := m.contrib[key]
	if !ok {
		st = &contribState{need: tag.NeedBytes}
		m.contrib[key] = st
	}
	if st.need != tag.NeedBytes {
		panic(fmt.Sprintf("machine: inconsistent contribution need at addr %#x gpu %d: %d vs %d",
			tag.Base, g, st.need, tag.NeedBytes))
	}
	st.got += bytes
	if st.got < st.need {
		return
	}
	delete(m.contrib, key)
	m.publishFor(g, tag.Publish, tag.PublishAt)
}

func (m *Machine) publishFor(g int, tiles []kernel.Tile, perGPU func(int) []kernel.Tile) {
	if perGPU != nil {
		m.PublishTiles(perGPU(g))
		return
	}
	m.PublishTiles(tiles)
}

// Dependency-tracker hot-path microbenchmark. Every TB of every kernel
// registers its input tiles and is woken by publishes — tens of millions
// of cycles per sweep point — so the pooled dependency records, recycled
// waiter lists, and pooled TB run slots must make the full cycle
// allocation-free at steady state. The benchmark pins that in addition to
// timing it.
package machine

import (
	"testing"

	"cais/internal/gpu"
	"cais/internal/kernel"
	"cais/internal/sim"
)

// BenchmarkRegisterTB drives one full dependency cycle per iteration:
// register a TB against two unready tiles, publish both (waking and
// admitting the TB), and drain the engine so the no-op TB retires and its
// run slot recycles. The tiles are un-published between iterations so the
// tracker's maps stay at constant size.
func BenchmarkRegisterTB(b *testing.B) {
	eng := sim.NewEngine()
	m := New(eng, testHW(), Options{})
	// A huge grid of no-op TBs: each iteration consumes one fresh TB index
	// (MarkEligible is exactly-once per TB) and the launch never completes.
	k := &kernel.Kernel{
		Name: "bench", Kind: kernel.KindGEMM, Grid: 1 << 30,
		Work: func(g, tb int) kernel.TBDesc { return kernel.TBDesc{Group: -1} },
	}
	var l *gpu.Launch
	eng.At(0, func() { l = m.GPUs[0].Launch(k, gpu.LaunchOpts{LaunchID: 1}) })
	eng.Run() // past readyAt: eligibility now admits instead of buffering
	in := []kernel.Tile{{Buf: 1, Idx: 0}, {Buf: 1, Idx: 1}}
	nextTB := 0
	cycle := func() {
		m.registerTB(l, nextTB, in)
		nextTB++
		m.PublishTiles(in)
		eng.Run() // retire the admitted no-op TB, recycling its run slot
		m.ready[in[0]] = false
		m.ready[in[1]] = false
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the pools, waiter lists, and event heap
	}
	if got := testing.AllocsPerRun(100, cycle); got != 0 {
		b.Fatalf("warmed dependency cycle allocates %.2f/op, want 0", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

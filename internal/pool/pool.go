// Package pool provides typed, per-run free-lists for the simulator's
// high-churn objects (noc packets, gpu requests and TB runs, nvswitch merge
// sessions). A Pool is a plain stack of recycled pointers: the engine
// packages are single-threaded by construction (enforced by caislint's
// goroutine check), so no synchronization is needed and Get/Put compile to
// a few instructions.
//
// Pools are owned by the per-run assembly (machine.New) and die with it, so
// recycled objects never leak across simulation points and a leaked object
// costs at most one run's worth of memory.
//
// Discipline (enforced by caislint's poolreset check): every type handed to
// a Pool must carry a reset() method, and every Put call site must reset
// the object immediately before returning it. Get does not clear objects —
// a stale field after reuse is a reset() bug, not a Get bug.
package pool

// Pool is a stack-backed free list of *T. The zero value is ready to use.
type Pool[T any] struct {
	free []*T
	news int
	gets int
}

// Get pops a recycled object, or allocates a fresh zero-valued T when the
// free list is empty. Objects from the free list were reset() by the Put
// site and are indistinguishable from fresh ones.
func (p *Pool[T]) Get() *T {
	p.gets++
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	p.news++
	return new(T)
}

// Put pushes x back onto the free list. The caller must have reset x first
// (caislint: poolreset). Putting the same object twice without an
// intervening Get corrupts the pool; the lifecycle events that call Put
// (packet delivered, TB retired, session flushed) each fire exactly once.
func (p *Pool[T]) Put(x *T) {
	if x == nil {
		return
	}
	p.free = append(p.free, x)
}

// Stats reports pool traffic: total Gets, how many allocated fresh objects,
// and the current free-list depth. Used by tests and diagnostics.
func (p *Pool[T]) Stats() (gets, news, idle int) {
	return p.gets, p.news, len(p.free)
}

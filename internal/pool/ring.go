package pool

// Ring is a reusable circular queue (deque). Like Pool it exists to kill
// steady-state allocation: the backing array grows to the burst high-water
// mark once and is recycled forever, unlike the append/reslice queue idiom
// which reallocates every burst and strands capacity behind the advancing
// slice head. Capacity is a power of two so index wrap is a mask.
//
// PopFront zeroes the vacated slot, so a Ring of pointers never pins
// dequeued objects for the GC (or for an object pool).
type Ring[T any] struct {
	buf  []T
	head int
	n    int
}

// Len reports the number of queued elements.
func (r *Ring[T]) Len() int { return r.n }

// PushBack appends v at the tail.
func (r *Ring[T]) PushBack(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// PushFront prepends v at the head (priority re-queueing).
func (r *Ring[T]) PushFront(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = v
	r.n++
}

// Head returns the head element without removing it. It panics when empty.
func (r *Ring[T]) Head() T {
	if r.n == 0 {
		panic("pool: Head on empty Ring")
	}
	return r.buf[r.head]
}

// PopFront removes and returns the head element. It panics when empty —
// callers check Len, mirroring slice-index discipline.
func (r *Ring[T]) PopFront() T {
	if r.n == 0 {
		panic("pool: PopFront on empty Ring")
	}
	v := r.buf[r.head]
	var zero T
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

func (r *Ring[T]) grow() {
	c := len(r.buf) * 2
	if c < 16 {
		c = 16
	}
	nb := make([]T, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

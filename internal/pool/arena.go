package pool

// Arena is a chunked bump allocator for small slices with run lifetime.
// The kernel-construction hot path (model builders, strategy wirings)
// produces millions of tiny []kernel.Tile and []kernel.Access slices per
// simulation point; allocating each from the heap dominated the post-PR-5
// allocation profile. An Arena hands out sub-slices of large chunks
// instead: steady state costs one heap allocation per arenaChunk elements
// rather than one per slice.
//
// Like Pool, an Arena is owned by the per-run assembly (machine.New) and
// dies with it — slices returned by Make stay valid for the owning
// machine's lifetime and never leak across simulation points. The engine
// packages are single-threaded by construction, so no synchronization is
// needed.
//
// Mark/Rewind give callers with a transient allocation pattern (the
// machine's TB-registration loop, which discards each Work descriptor
// after copying its input tiles into the tile tracker) a way to reclaim
// arena space: take a Mark, allocate freely, Rewind when every slice
// allocated since the mark is dead. Rewinding while such a slice is still
// referenced is a use-after-free-style bug — the memory will be handed
// out again.
type Arena[T any] struct {
	chunks [][]T
	ci     int // active chunk index
	used   int // elements used in the active chunk
	slabs  int // oversized requests served by dedicated slabs
	elems  int64
}

// arenaChunk is the per-chunk element count. Large enough that chunk
// allocation is rare, small enough that a mostly-idle arena stays cheap.
const arenaChunk = 4096

// Mark is a position in the arena that Rewind can return to.
type Mark struct {
	ci   int
	used int
}

// Make returns a zeroed-length-n slice backed by the arena. The slice has
// cap == len (three-index), so appending to it cannot bleed into a
// neighbouring allocation. n == 0 returns nil; n > arenaChunk falls back
// to a dedicated heap slab (rare, still correct).
func (a *Arena[T]) Make(n int) []T {
	if n <= 0 {
		return nil
	}
	if n > arenaChunk {
		a.slabs++
		a.elems += int64(n)
		return make([]T, n)
	}
	a.elems += int64(n)
	for {
		if a.ci < len(a.chunks) {
			c := a.chunks[a.ci]
			if a.used+n <= len(c) {
				s := c[a.used : a.used+n : a.used+n]
				a.used += n
				// Rewound chunks hand out stale elements: clear them so
				// Make always returns zero values, like make([]T, n).
				clear(s)
				return s
			}
			a.ci++
			a.used = 0
			continue
		}
		a.chunks = append(a.chunks, make([]T, arenaChunk))
	}
}

// One returns a 1-element arena slice holding v — the replacement for the
// ubiquitous []T{v} literal on the kernel-construction path.
func (a *Arena[T]) One(v T) []T {
	s := a.Make(1)
	s[0] = v
	return s
}

// With returns a fresh arena slice holding s's elements followed by
// extra. s is never mutated (its backing array may be shared or interned).
func (a *Arena[T]) With(s []T, extra T) []T {
	d := a.Make(len(s) + 1)
	copy(d, s)
	d[len(s)] = extra
	return d
}

// Mark records the current allocation position.
func (a *Arena[T]) Mark() Mark {
	return Mark{ci: a.ci, used: a.used}
}

// Rewind returns the arena to a previously taken Mark, reclaiming every
// in-chunk allocation made since. Dedicated slabs (oversized Makes) are
// not reclaimed — they stay with the garbage collector. The caller
// guarantees no slice allocated after the mark is still referenced.
func (a *Arena[T]) Rewind(m Mark) {
	if m.ci > a.ci || (m.ci == a.ci && m.used > a.used) {
		return // stale mark from a position already rewound past
	}
	a.ci = m.ci
	a.used = m.used
}

// Stats reports arena traffic: chunks allocated, dedicated oversized
// slabs, and total elements handed out (including rewound ones).
func (a *Arena[T]) Stats() (chunks, slabs int, elems int64) {
	return len(a.chunks), a.slabs, a.elems
}

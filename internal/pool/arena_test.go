package pool

import "testing"

func TestArenaMakeZeroedAndCapped(t *testing.T) {
	var a Arena[int]
	s := a.Make(3)
	if len(s) != 3 || cap(s) != 3 {
		t.Fatalf("Make(3): len=%d cap=%d, want 3/3", len(s), cap(s))
	}
	for i, v := range s {
		if v != 0 {
			t.Fatalf("Make returned non-zero element %d at %d", v, i)
		}
	}
	s[0], s[1], s[2] = 1, 2, 3
	// cap == len: appending must not bleed into the next allocation.
	n := a.Make(2)
	_ = append(s, 99)
	if n[0] != 0 || n[1] != 0 {
		t.Fatalf("append to a full arena slice clobbered the neighbour: %v", n)
	}
	if a.Make(0) != nil {
		t.Fatal("Make(0) must return nil")
	}
}

func TestArenaOneAndWith(t *testing.T) {
	var a Arena[int]
	s := a.One(7)
	if len(s) != 1 || s[0] != 7 {
		t.Fatalf("One(7) = %v", s)
	}
	w := a.With(s, 8)
	if len(w) != 2 || w[0] != 7 || w[1] != 8 {
		t.Fatalf("With = %v", w)
	}
	if s[0] != 7 {
		t.Fatal("With mutated its input")
	}
	if w2 := a.With(nil, 5); len(w2) != 1 || w2[0] != 5 {
		t.Fatalf("With(nil, 5) = %v", w2)
	}
}

func TestArenaMarkRewindReclaims(t *testing.T) {
	var a Arena[int]
	a.Make(10)
	m := a.Mark()
	first := a.Make(4)
	first[0] = 42
	a.Rewind(m)
	second := a.Make(4)
	// Same backing memory, and it must come back zeroed.
	if &first[0] != &second[0] {
		t.Fatal("Rewind did not reclaim arena space")
	}
	if second[0] != 0 {
		t.Fatal("reclaimed arena slice not re-zeroed")
	}
	// A stale mark (taken after the position we rewound to) is a no-op.
	a.Rewind(Mark{ci: 5, used: 0})
	if got := a.Make(1); got == nil {
		t.Fatal("arena unusable after stale rewind")
	}
}

func TestArenaChunkSpillAndOversized(t *testing.T) {
	var a Arena[byte]
	total := 0
	for total < 3*arenaChunk {
		s := a.Make(100)
		if len(s) != 100 {
			t.Fatalf("len = %d", len(s))
		}
		total += 100
	}
	chunks, slabs, elems := a.Stats()
	if chunks < 3 {
		t.Fatalf("chunks = %d, want >= 3 after %d elems", chunks, total)
	}
	if slabs != 0 || elems != int64(total) {
		t.Fatalf("slabs=%d elems=%d, want 0/%d", slabs, elems, total)
	}
	big := a.Make(arenaChunk + 1)
	if len(big) != arenaChunk+1 {
		t.Fatalf("oversized Make len = %d", len(big))
	}
	if _, slabs, _ := a.Stats(); slabs != 1 {
		t.Fatalf("slabs = %d after oversized Make, want 1", slabs)
	}
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	var a Arena[int]
	// Warm one chunk, then Mark/Rewind cycles must not allocate at all.
	m := a.Mark()
	a.Make(64)
	a.Rewind(m)
	allocs := testing.AllocsPerRun(100, func() {
		mk := a.Mark()
		s := a.Make(8)
		s[0] = 1
		_ = a.One(2)
		a.Rewind(mk)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Mark/Make/Rewind allocates %.1f/op, want 0", allocs)
	}
}

package pool

import "testing"

func TestRingDequeOrder(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 5; i++ {
		r.PushBack(i)
	}
	r.PushFront(-1)
	want := []int{-1, 0, 1, 2, 3, 4}
	for _, w := range want {
		if got := r.PopFront(); got != w {
			t.Fatalf("PopFront = %d, want %d", got, w)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after drain, want 0", r.Len())
	}
}

func TestRingWrapAndGrow(t *testing.T) {
	var r Ring[int]
	next := 0
	for i := 0; i < 200; i++ {
		r.PushBack(i)
		if i%3 == 0 {
			if got := r.PopFront(); got != next {
				t.Fatalf("PopFront = %d, want %d", got, next)
			}
			next++
		}
	}
	for r.Len() > 0 {
		if got := r.PopFront(); got != next {
			t.Fatalf("drain PopFront = %d, want %d", got, next)
		}
		next++
	}
	if next != 200 {
		t.Fatalf("drained %d, want 200", next)
	}
}

func TestRingPopClearsPointerSlot(t *testing.T) {
	var r Ring[*int]
	x := new(int)
	r.PushBack(x)
	r.PopFront()
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d still set after PopFront", i)
		}
	}
}

func TestRingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("PopFront on empty ring did not panic")
		}
	}()
	var r Ring[int]
	r.PopFront()
}

func TestRingSteadyStateZeroAlloc(t *testing.T) {
	var r Ring[int]
	for i := 0; i < 8; i++ {
		r.PushBack(i)
	}
	for r.Len() > 0 {
		r.PopFront()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			r.PushBack(i)
		}
		for r.Len() > 0 {
			r.PopFront()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ring churn allocates %v allocs/op, want 0", allocs)
	}
}

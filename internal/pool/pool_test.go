package pool

import "testing"

type thing struct {
	a int
	b []int
}

func (t *thing) reset() { t.a = 0; t.b = t.b[:0] }

func TestGetPutRecycles(t *testing.T) {
	var p Pool[thing]
	x := p.Get()
	x.a = 7
	x.b = append(x.b, 1, 2, 3)
	x.reset()
	p.Put(x)
	y := p.Get()
	if y != x {
		t.Fatalf("Get after Put returned a fresh object, want the recycled one")
	}
	if y.a != 0 || len(y.b) != 0 {
		t.Fatalf("recycled object not reset: %+v", y)
	}
	if cap(y.b) < 3 {
		t.Fatalf("reset dropped backing array: cap=%d", cap(y.b))
	}
}

func TestGetOrderLIFO(t *testing.T) {
	var p Pool[thing]
	a, b := p.Get(), p.Get()
	a.reset()
	p.Put(a)
	b.reset()
	p.Put(b)
	if got := p.Get(); got != b {
		t.Fatalf("pool is not LIFO: got %p want %p", got, b)
	}
	if got := p.Get(); got != a {
		t.Fatalf("pool is not LIFO on second Get")
	}
}

func TestPutNilIgnored(t *testing.T) {
	var p Pool[thing]
	p.Put(nil)
	if x := p.Get(); x == nil {
		t.Fatalf("Get returned nil after Put(nil)")
	}
}

func TestStats(t *testing.T) {
	var p Pool[thing]
	x := p.Get()
	x.reset()
	p.Put(x)
	p.Get()
	gets, news, idle := p.Stats()
	if gets != 2 || news != 1 || idle != 0 {
		t.Fatalf("Stats() = (%d,%d,%d), want (2,1,0)", gets, news, idle)
	}
}

func TestSteadyStateZeroAlloc(t *testing.T) {
	var p Pool[thing]
	// Warm the free list so append in Put never grows.
	warm := make([]*thing, 8)
	for i := range warm {
		warm[i] = p.Get()
	}
	for _, x := range warm {
		x.reset()
		p.Put(x)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		x := p.Get()
		x.reset()
		p.Put(x)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Get/Put allocates %v allocs/op, want 0", allocs)
	}
}

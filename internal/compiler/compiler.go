// Package compiler implements the CAIS compiler support of Section III-B:
// static index analysis of memory-access address expressions (detecting
// GPU-ID invariance), TB-group formation, and the lowering decision that
// rewrites eligible instructions to their compute-aware CAIS variants
// (ld.cais / red.cais) while leaving GPU-dependent accesses untouched.
package compiler

import (
	"fmt"

	"cais/internal/kernel"
	"cais/internal/noc"
)

// Verdict is the analysis result for one access pattern.
type Verdict struct {
	Pattern   kernel.Pattern
	Mergeable bool   // address expression is GPU-invariant
	Mode      noc.Op // CAIS lowering when mergeable; plain op otherwise
	Reason    string // human-readable justification
}

// Analyze performs the static index analysis on one pattern: an access is
// mergeable iff its address expression does not reference the GPU ID —
// then TBs with equal blockIdx on different GPUs touch the same location
// (Fig. 8a). Plain writes are never rewritten: CAIS extends only loads and
// reductions (Fig. 4).
func Analyze(p kernel.Pattern) Verdict {
	v := Verdict{Pattern: p}
	if kernel.UsesParam(p.Addr, kernel.ParamGPU) {
		v.Mergeable = false
		v.Mode = plainMode(p.Sem)
		v.Reason = fmt.Sprintf("address %s references gpuID: GPU-variant, not mergeable", p.Addr)
		return v
	}
	switch p.Sem {
	case kernel.SemRead:
		v.Mergeable = true
		v.Mode = noc.OpLdCAIS
		v.Reason = fmt.Sprintf("address %s is GPU-invariant: rewritten to ld.cais", p.Addr)
	case kernel.SemReduce:
		v.Mergeable = true
		v.Mode = noc.OpRedCAIS
		v.Reason = fmt.Sprintf("address %s is GPU-invariant: rewritten to red.cais", p.Addr)
	default:
		v.Mergeable = false
		v.Mode = plainMode(p.Sem)
		v.Reason = "plain writes have no CAIS variant"
	}
	return v
}

func plainMode(s kernel.Semantic) noc.Op {
	switch s {
	case kernel.SemRead:
		return noc.OpLoad
	case kernel.SemReduce, kernel.SemWrite:
		return noc.OpStore
	}
	panic(fmt.Sprintf("compiler: unknown semantic %v", s))
}

// AnalyzeKernel analyzes every pattern of a kernel.
func AnalyzeKernel(k *kernel.Kernel) []Verdict {
	out := make([]Verdict, 0, len(k.Patterns))
	for _, p := range k.Patterns {
		out = append(out, Analyze(p))
	}
	return out
}

// AllMergeable reports whether every pattern of the kernel passed the
// analysis (the precondition for full CAIS lowering of the kernel).
func AllMergeable(verdicts []Verdict) bool {
	for _, v := range verdicts {
		if !v.Mergeable {
			return false
		}
	}
	return len(verdicts) > 0
}

// GroupPlan is the TB-group metadata attached to a kernel launch: TBs
// across GPUs with the same blockIdx form one logical group (Sec. III-B-1)
// so the runtime and switch can align their request timing.
type GroupPlan struct {
	Grid    int // TBs per GPU
	Members int // GPUs participating per group
	Base    int // globally-unique group ID base (assigned at launch)
}

// BuildGroups creates the TB-group plan for a kernel launched on numGPUs
// GPUs: one group per blockIdx, each containing one TB per GPU.
func BuildGroups(grid, numGPUs int) GroupPlan {
	if grid < 1 || numGPUs < 1 {
		panic(fmt.Sprintf("compiler: invalid group plan grid=%d gpus=%d", grid, numGPUs))
	}
	return GroupPlan{Grid: grid, Members: numGPUs}
}

// GroupOf returns the global group ID of a thread block, identical on
// every GPU (that identity is what makes the group's requests mergeable).
func (g GroupPlan) GroupOf(tb int) int {
	if tb < 0 || tb >= g.Grid {
		panic(fmt.Sprintf("compiler: tb %d out of grid %d", tb, g.Grid))
	}
	return g.Base + tb
}

// NumGroups reports how many groups the plan defines.
func (g GroupPlan) NumGroups() int { return g.Grid }

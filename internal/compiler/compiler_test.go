package compiler

import (
	"strings"
	"testing"

	"cais/internal/kernel"
	"cais/internal/noc"
)

func invariantRead() kernel.Pattern {
	// The AG-GEMM input load of Fig. 8a: addr = blockIdx*tile (no gpuID).
	return kernel.Pattern{
		Name: "ld.X", Sem: kernel.SemRead,
		Addr: kernel.Mul(kernel.ParamBlock, kernel.Const(128)),
		Home: kernel.Mod(kernel.ParamBlock, kernel.Const(8)),
	}
}

func TestAnalyzeRewritesGPUInvariantLoad(t *testing.T) {
	v := Analyze(invariantRead())
	if !v.Mergeable {
		t.Fatalf("GPU-invariant load not mergeable: %s", v.Reason)
	}
	if v.Mode != noc.OpLdCAIS {
		t.Fatalf("mode = %v, want ld.cais", v.Mode)
	}
	if !strings.Contains(v.Reason, "ld.cais") {
		t.Fatalf("reason lacks rewrite detail: %s", v.Reason)
	}
}

func TestAnalyzeRewritesGPUInvariantReduction(t *testing.T) {
	p := invariantRead()
	p.Sem = kernel.SemReduce
	v := Analyze(p)
	if !v.Mergeable || v.Mode != noc.OpRedCAIS {
		t.Fatalf("reduction verdict = %+v", v)
	}
}

func TestAnalyzeRejectsGPUVariantAccess(t *testing.T) {
	p := kernel.Pattern{
		Name: "ld.local", Sem: kernel.SemRead,
		// addr = gpuID*shard + blockIdx*tile: each GPU touches its own
		// shard, so merging would be incorrect.
		Addr: kernel.Add(
			kernel.Mul(kernel.ParamGPU, kernel.Const(1<<20)),
			kernel.Mul(kernel.ParamBlock, kernel.Const(128))),
		Home: kernel.ParamGPU,
	}
	v := Analyze(p)
	if v.Mergeable {
		t.Fatal("GPU-variant access marked mergeable")
	}
	if v.Mode != noc.OpLoad {
		t.Fatalf("mode = %v, want plain ld", v.Mode)
	}
	if !strings.Contains(v.Reason, "gpuID") {
		t.Fatalf("reason should cite gpuID: %s", v.Reason)
	}
}

func TestAnalyzePlainWriteNeverRewritten(t *testing.T) {
	p := invariantRead()
	p.Sem = kernel.SemWrite
	v := Analyze(p)
	if v.Mergeable {
		t.Fatal("plain write marked mergeable: CAIS only extends ld/red")
	}
	if v.Mode != noc.OpStore {
		t.Fatalf("mode = %v, want st", v.Mode)
	}
}

func TestAnalyzeKernelAndAllMergeable(t *testing.T) {
	red := invariantRead()
	red.Sem = kernel.SemReduce
	k := &kernel.Kernel{
		Name: "fused", Grid: 8,
		Work:     func(g, tb int) kernel.TBDesc { return kernel.TBDesc{} },
		Patterns: []kernel.Pattern{invariantRead(), red},
	}
	vs := AnalyzeKernel(k)
	if len(vs) != 2 {
		t.Fatalf("verdicts = %d, want 2", len(vs))
	}
	if !AllMergeable(vs) {
		t.Fatal("fully-invariant kernel should be all-mergeable")
	}
	variant := invariantRead()
	variant.Addr = kernel.ParamGPU
	k.Patterns = append(k.Patterns, variant)
	if AllMergeable(AnalyzeKernel(k)) {
		t.Fatal("kernel with a variant pattern must not be all-mergeable")
	}
	if AllMergeable(nil) {
		t.Fatal("empty verdict list must not be all-mergeable")
	}
}

func TestGroupPlanOneGroupPerBlockIdx(t *testing.T) {
	g := BuildGroups(100, 8)
	g.Base = 1000
	if g.NumGroups() != 100 {
		t.Fatalf("groups = %d, want 100", g.NumGroups())
	}
	if g.Members != 8 {
		t.Fatalf("members = %d, want 8", g.Members)
	}
	if g.GroupOf(0) != 1000 || g.GroupOf(99) != 1099 {
		t.Fatal("group IDs not contiguous from base")
	}
	// Identical mapping regardless of which GPU asks — that identity is
	// the merging precondition.
	seen := map[int]bool{}
	for tb := 0; tb < 100; tb++ {
		id := g.GroupOf(tb)
		if seen[id] {
			t.Fatalf("duplicate group id %d", id)
		}
		seen[id] = true
	}
}

func TestGroupPlanBounds(t *testing.T) {
	g := BuildGroups(10, 4)
	for _, tb := range []int{-1, 10} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("GroupOf(%d) did not panic", tb)
				}
			}()
			g.GroupOf(tb)
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("BuildGroups(0, 0) did not panic")
		}
	}()
	BuildGroups(0, 0)
}

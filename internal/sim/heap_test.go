package sim

import (
	"sort"
	"testing"
)

// TestEventHeapOrderMatchesSortedReference drains the 4-ary heap on random
// workloads and checks the pop order against a stable sort by (at, seq) —
// the full ordering contract of the event queue, including the FIFO
// tie-break for same-instant events.
func TestEventHeapOrderMatchesSortedReference(t *testing.T) {
	rng := NewRNG(0xBEEF)
	for trial := 0; trial < 20; trial++ {
		n := 1 + int(rng.Uint64()%2000)
		h := &eventHeap{}
		ref := make([]event, 0, n)
		for i := 0; i < n; i++ {
			// Few distinct timestamps: tie-breaking is the hard part.
			ev := event{at: Time(rng.Uint64() % 37), seq: uint64(i)}
			h.push(ev)
			ref = append(ref, ev)
		}
		sort.Slice(ref, func(i, j int) bool { return ref[i].before(&ref[j]) })
		for i := range ref {
			got := h.pop()
			if got.at != ref[i].at || got.seq != ref[i].seq {
				t.Fatalf("trial %d pop %d = (at=%d seq=%d), want (at=%d seq=%d)",
					trial, i, got.at, got.seq, ref[i].at, ref[i].seq)
			}
		}
		if h.len() != 0 {
			t.Fatalf("trial %d: heap not drained, %d left", trial, h.len())
		}
	}
}

// TestEventHeapInterleavedPushPop exercises the steady-state pop+push cycle
// (the hold pattern) and checks the invariant that pops never go backwards
// in (at, seq) order relative to what the pending set allows.
func TestEventHeapInterleavedPushPop(t *testing.T) {
	rng := NewRNG(7)
	h := &eventHeap{}
	var seq uint64
	push := func(at Time) {
		seq++
		h.push(event{at: at, seq: seq})
	}
	for i := 0; i < 256; i++ {
		push(Time(rng.Uint64() % 100))
	}
	lastAt := Time(-1)
	for i := 0; i < 10_000; i++ {
		ev := h.pop()
		if ev.at < lastAt {
			t.Fatalf("pop %d went backwards in time: %d after %d", i, ev.at, lastAt)
		}
		lastAt = ev.at
		// Hold: reinsert at or after the popped timestamp.
		push(ev.at + Time(rng.Uint64()%50))
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	end := e.Run()
	if end != 30*Nanosecond {
		t.Fatalf("end time = %v, want 30ns", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestEngineSameTimeEventsRunInScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { order = append(order, i) })
	}
	e.Run()
	for i := 0; i < 10; i++ {
		if order[i] != i {
			t.Fatalf("tie-break order = %v", order)
		}
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var hit Time = -1
	e.At(100*Nanosecond, func() {
		e.After(50*Nanosecond, func() { hit = e.Now() })
	})
	e.Run()
	if hit != 150*Nanosecond {
		t.Fatalf("After fired at %v, want 150ns", hit)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10*Nanosecond, func() { ran++ })
	e.At(20*Nanosecond, func() { ran++ })
	e.At(30*Nanosecond, func() { ran++ })
	e.RunUntil(20 * Nanosecond)
	if ran != 2 {
		t.Fatalf("ran %d events before deadline, want 2", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Run()
	if ran != 3 {
		t.Fatalf("ran %d after full drain, want 3", ran)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(10*Nanosecond, func() { ran++; e.Stop() })
	e.At(20*Nanosecond, func() { ran++ })
	e.Run()
	if ran != 1 {
		t.Fatalf("ran = %d, want 1 (Stop should halt)", ran)
	}
}

func TestEngineStepLimitPanics(t *testing.T) {
	e := NewEngine()
	e.SetStepLimit(5)
	var loop func()
	loop = func() { e.After(Nanosecond, loop) }
	e.At(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("step limit did not panic")
		}
	}()
	e.Run()
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0s"},
		{500 * Picosecond, "500ps"},
		{3 * Nanosecond, "3.00ns"},
		{2 * Microsecond, "2.000us"},
		{350 * Microsecond, "350.00us"},
		{4 * Millisecond, "4.000ms"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestDurationForBytes(t *testing.T) {
	// 450 GB/s, 4500 bytes -> 10ns.
	d := DurationForBytes(4500, 450e9)
	if d != 10*Nanosecond {
		t.Fatalf("DurationForBytes = %v, want 10ns", d)
	}
	if DurationForBytes(0, 450e9) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
	if DurationForBytes(1, 1e15) < 1 {
		t.Fatal("nonzero transfer must take at least 1ps")
	}
}

func TestResourceSerializesReservations(t *testing.T) {
	r := NewResource("link")
	s1, e1 := r.Reserve(0, 10*Nanosecond)
	if s1 != 0 || e1 != 10*Nanosecond {
		t.Fatalf("first reservation (%v,%v)", s1, e1)
	}
	// Second request at t=5ns queues behind the first.
	s2, e2 := r.Reserve(5*Nanosecond, 10*Nanosecond)
	if s2 != 10*Nanosecond || e2 != 20*Nanosecond {
		t.Fatalf("second reservation (%v,%v), want (10ns,20ns)", s2, e2)
	}
	// A request after the resource is idle starts immediately.
	s3, _ := r.Reserve(100*Nanosecond, Nanosecond)
	if s3 != 100*Nanosecond {
		t.Fatalf("idle-start reservation at %v, want 100ns", s3)
	}
	if r.BusyTime() != 21*Nanosecond {
		t.Fatalf("busy = %v, want 21ns", r.BusyTime())
	}
}

func TestResourceUtilization(t *testing.T) {
	r := NewResource("hbm")
	r.Reserve(0, 25*Nanosecond)
	if u := r.Utilization(100 * Nanosecond); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
	if u := r.Utilization(0); u != 0 {
		t.Fatalf("zero-horizon utilization = %v", u)
	}
}

func TestResourceReservationsNeverOverlap(t *testing.T) {
	// Property: for any request sequence, granted intervals are disjoint
	// and ordered.
	f := func(durs []uint16, gaps []uint16) bool {
		r := NewResource("x")
		now := Time(0)
		lastEnd := Time(0)
		for i, d := range durs {
			if i < len(gaps) {
				now += Time(gaps[i])
			}
			s, e := r.Reserve(now, Time(d))
			if s < now || s < lastEnd || e != s+Time(d) {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatchFiresOnceAtZero(t *testing.T) {
	l := NewLatch(3)
	fired := 0
	l.OnRelease(func() { fired++ })
	l.Done()
	l.Done()
	if fired != 0 {
		t.Fatal("latch fired early")
	}
	l.Done()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// Late registration runs immediately.
	l.OnRelease(func() { fired++ })
	if fired != 2 {
		t.Fatalf("late OnRelease fired = %d, want 2", fired)
	}
}

func TestLatchZeroCountFiresImmediately(t *testing.T) {
	l := NewLatch(0)
	fired := false
	l.OnRelease(func() { fired = true })
	if !fired {
		t.Fatal("zero latch should fire on registration")
	}
}

func TestLatchDoubleDonePanics(t *testing.T) {
	l := NewLatch(1)
	l.Done()
	defer func() {
		if recover() == nil {
			t.Error("Done on released latch did not panic")
		}
	}()
	l.Done()
}

func TestLatchPoolRecyclesOnFire(t *testing.T) {
	var lp LatchPool
	fired := 0
	l := lp.Get(2, func() { fired++ })
	done := l.DoneFunc()
	done()
	if fired != 0 {
		t.Fatal("latch fired early")
	}
	done()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	// The fired latch must already be back in the pool: the next Get
	// returns the same object with fresh state.
	l2 := lp.Get(1, nil)
	if l2 != l {
		t.Fatal("fired latch was not recycled")
	}
	if l2.Remaining() != 1 {
		t.Fatalf("recycled latch Remaining = %d, want 1", l2.Remaining())
	}
	l2.Done()
	if gets, news, idle := lp.Stats(); gets != 2 || news != 1 || idle != 1 {
		t.Fatalf("Stats = (%d, %d, %d), want (2, 1, 1)", gets, news, idle)
	}
}

func TestLatchPoolRecyclesBeforeCallback(t *testing.T) {
	// A completion callback may immediately Get a follow-up latch from the
	// same pool — the machine launches the next kernel batch from exactly
	// this position. The fired latch must already be available for reuse.
	var lp LatchPool
	var inner *Latch
	outer := lp.Get(1, nil)
	outer.OnRelease(func() { inner = lp.Get(1, nil) })
	outer.Done()
	if inner != outer {
		t.Fatal("callback Get did not reuse the just-fired latch")
	}
	inner.Done()
}

func TestLatchPoolGetZeroPanics(t *testing.T) {
	var lp LatchPool
	defer func() {
		if recover() == nil {
			t.Error("Get(0) did not panic")
		}
	}()
	lp.Get(0, nil)
}

func TestLatchPoolSteadyStateAllocs(t *testing.T) {
	var lp LatchPool
	l := lp.Get(1, nil)
	l.DoneFunc()()
	allocs := testing.AllocsPerRun(100, func() {
		l := lp.Get(2, nil)
		done := l.DoneFunc()
		done()
		done()
	})
	if allocs != 0 {
		t.Fatalf("steady-state latch cycle allocates %.1f/op, want 0", allocs)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGBetween(t *testing.T) {
	r := NewRNG(9)
	lo, hi := 10*Nanosecond, 20*Nanosecond
	for i := 0; i < 1000; i++ {
		v := r.Between(lo, hi)
		if v < lo || v > hi {
			t.Fatalf("Between out of range: %v", v)
		}
	}
	if r.Between(hi, lo) != hi {
		t.Fatal("inverted range should return lo")
	}
}

func TestRNGJitterRange(t *testing.T) {
	r := NewRNG(11)
	for i := 0; i < 1000; i++ {
		j := r.Jitter(0.1)
		if j < 0.9 || j > 1.1 {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	if r.Jitter(0) != 1 {
		t.Fatal("zero-frac jitter must be exactly 1")
	}
}

func TestHash64Distinct(t *testing.T) {
	seen := map[uint64]bool{}
	for g := uint64(0); g < 8; g++ {
		for k := uint64(0); k < 64; k++ {
			h := Hash64(g, k)
			if seen[h] {
				t.Fatalf("Hash64 collision at (%d,%d)", g, k)
			}
			seen[h] = true
		}
	}
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Fatal("Hash64 should be order-sensitive")
	}
}

func TestRNGIntnUniformish(t *testing.T) {
	r := NewRNG(123)
	counts := make([]int, 8)
	const n = 80000
	for i := 0; i < n; i++ {
		counts[r.Intn(8)]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.10 || frac > 0.15 {
			t.Fatalf("bucket %d frac %v far from 0.125", b, frac)
		}
	}
}

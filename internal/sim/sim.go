// Package sim provides the discrete-event simulation engine used by every
// other subsystem in the CAIS reproduction: a deterministic event heap with
// picosecond resolution, a splitmix64-based reproducible RNG, serialized
// resources for bandwidth/occupancy accounting, and countdown latches for
// barrier modeling.
//
// All simulated components (GPUs, links, switches, runtimes) share one
// Engine and communicate exclusively by scheduling events on it, so a whole
// multi-GPU system simulation is single-threaded and bit-reproducible.
package sim

import (
	"fmt"
)

// Time is simulated time in picoseconds. Picoseconds keep bandwidth
// arithmetic exact enough for 450 GB/s-class links (0.45 bytes/ps) while an
// int64 still spans ~106 days of simulated time.
type Time int64

// Convenient time units.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders a Time in the most readable unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Millisecond == 0 || t >= 100*Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= 100*Microsecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.2fns", float64(t)/float64(Nanosecond))
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// Nanoseconds converts to float64 nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds converts to float64 microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Milliseconds converts to float64 milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Seconds converts to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// DurationForBytes returns the serialization time of size bytes on a
// resource with the given bandwidth in bytes per second. It rounds up so a
// nonzero transfer always takes at least one picosecond.
func DurationForBytes(size int64, bytesPerSecond float64) Time {
	if size <= 0 || bytesPerSecond <= 0 {
		return 0
	}
	ps := float64(size) / bytesPerSecond * float64(Second)
	d := Time(ps)
	if d < 1 {
		d = 1
	}
	return d
}

// DurationForFlops returns the execution time of a floating-point workload
// on a resource with the given throughput in FLOP/s. Non-positive inputs
// yield zero. Like DurationForBytes it truncates toward zero picoseconds,
// matching a direct Time(flops/rate*Second) conversion bit-for-bit.
func DurationForFlops(flops, flopsPerSecond float64) Time {
	if flops <= 0 || flopsPerSecond <= 0 {
		return 0
	}
	return Time(flops / flopsPerSecond * float64(Second))
}

// Scale stretches a duration by a dimensionless factor (jitter, slowdown,
// overlap ratios), truncating the sub-picosecond remainder.
func Scale(d Time, factor float64) Time {
	return Time(float64(d) * factor)
}

// FromPicoseconds converts a float picosecond count (e.g. a metrics gauge
// value) back into a Time, truncating toward zero.
func FromPicoseconds(ps float64) Time {
	return Time(ps)
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before orders events by timestamp, breaking ties by scheduling sequence
// so same-instant events run in the order they were scheduled.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// initialHeapCap is the event queue's starting capacity. Even the smallest
// real runs (one sub-layer at coarse granularity) schedule tens of
// thousands of events, so starting at a few hundred slots skips the
// pointless 1→2→4→... growth ladder without bloating trivial tests.
const initialHeapCap = 512

// eventHeap is a 4-ary min-heap specialized to event. The event loop is
// the simulator's hottest path: a concrete element type avoids the
// interface{} box/unbox and indirect Less/Swap calls of container/heap,
// and the 4-ary layout halves the tree depth so pops touch fewer cache
// lines than a binary heap over the same pending set.
//
// Layout: children of node i are 4i+1..4i+4, parent of i is (i-1)/4.
type eventHeap struct {
	a []event
}

func (h *eventHeap) len() int { return len(h.a) }

// min returns the earliest pending event without removing it. Callers must
// check len first.
func (h *eventHeap) min() *event { return &h.a[0] }

// push inserts an event, growing the backing array geometrically (doubling)
// so n pushes cost O(log n) allocations regardless of starting size.
func (h *eventHeap) push(e event) {
	if len(h.a) == cap(h.a) {
		c := cap(h.a) * 2
		if c < initialHeapCap {
			c = initialHeapCap
		}
		grown := make([]event, len(h.a), c)
		copy(grown, h.a)
		h.a = grown
	}
	h.a = append(h.a, e)
	h.siftUp(len(h.a) - 1)
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() event {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a[n] = event{} // release the fn reference for the GC
	h.a = h.a[:n]
	if n > 1 {
		h.siftDown(0)
	}
	return top
}

func (h *eventHeap) siftUp(i int) {
	e := h.a[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.before(&h.a[parent]) {
			break
		}
		h.a[i] = h.a[parent]
		i = parent
	}
	h.a[i] = e
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.a)
	e := h.a[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.a[c].before(&h.a[best]) {
				best = c
			}
		}
		if !h.a[best].before(&e) {
			break
		}
		h.a[i] = h.a[best]
		i = best
	}
	h.a[i] = e
}

// Engine is a deterministic discrete-event scheduler. Events scheduled for
// the same instant run in scheduling order, so simulations are
// bit-reproducible across runs and platforms.
type Engine struct {
	now     Time
	seq     uint64
	steps   uint64
	heap    eventHeap
	stopped bool
	limit   uint64 // optional hard step limit guard; 0 disables

	// observer is an opaque attachment slot for cross-cutting
	// instrumentation (the trace package's Tracer hooks in here, so every
	// component that holds the engine can find it without new plumbing).
	observer any

	// Progress heartbeat: fn runs every progEvery executed events.
	progEvery uint64
	progress  func(now Time, steps uint64)
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports current simulated time.
func (e *Engine) Now() Time { return e.now }

// Steps reports how many events have been executed so far.
func (e *Engine) Steps() uint64 { return e.steps }

// SetStepLimit installs a guard that aborts Run with a panic after n events.
// It exists to turn accidental event loops in tests into immediate failures
// rather than hangs. Zero disables the guard.
func (e *Engine) SetStepLimit(n uint64) { e.limit = n }

// SetObserver attaches an opaque observer to the engine. The trace package
// uses this slot so every component holding the engine can discover the
// tracer at construction time; a nil observer means instrumentation is
// disabled and call sites compile down to nil checks.
func (e *Engine) SetObserver(v any) { e.observer = v }

// Observer returns the attached observer (nil when none).
func (e *Engine) Observer() any { return e.observer }

// SetProgress installs a heartbeat callback invoked every `every` executed
// events (0 disables). The callback sees the current simulated time and
// total executed events; the CLI uses it for -v progress logging.
func (e *Engine) SetProgress(every uint64, fn func(now Time, steps uint64)) {
	if every == 0 || fn == nil {
		e.progEvery, e.progress = 0, nil
		return
	}
	e.progEvery, e.progress = every, fn
}

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics, since it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.heap.push(event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d after the current time. Negative delays clamp
// to zero.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		d = 0
	}
	e.At(e.now+d, fn)
}

// Stop makes the current Run call return after the in-flight event
// completes. Pending events stay queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue is empty or Stop is called. It
// returns the final simulated time.
func (e *Engine) Run() Time {
	return e.RunUntil(-1)
}

// RunUntil executes events with timestamp <= deadline (deadline < 0 means
// no deadline) until the queue drains or Stop is called. The clock is left
// at the last executed event (or at the deadline if the deadline was
// reached with events still pending).
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for e.heap.len() > 0 && !e.stopped {
		if deadline >= 0 && e.heap.min().at > deadline {
			e.now = deadline
			return e.now
		}
		ev := e.heap.pop()
		e.now = ev.at
		e.steps++
		if e.limit > 0 && e.steps > e.limit {
			panic(fmt.Sprintf("sim: step limit %d exceeded at t=%v", e.limit, e.now))
		}
		if e.progEvery > 0 && e.steps%e.progEvery == 0 {
			e.progress(e.now, e.steps)
		}
		ev.fn()
	}
	return e.now
}

// Pending reports how many events are queued.
func (e *Engine) Pending() int { return e.heap.len() }

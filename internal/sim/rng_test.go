package sim

import (
	"math"
	"testing"
)

// TestStreamRNGDeterministic pins the stream-derivation contract: the same
// (seed, label) pair always yields the same draw sequence, and distinct
// labels yield distinct streams.
func TestStreamRNGDeterministic(t *testing.T) {
	a := NewStreamRNG(0xCA15, "serve/arrivals")
	b := NewStreamRNG(0xCA15, "serve/arrivals")
	for i := 0; i < 64; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: same (seed, stream) diverged: %x vs %x", i, x, y)
		}
	}
	c := NewStreamRNG(0xCA15, "serve/prompt")
	if a.Uint64() == c.Uint64() {
		t.Error("distinct stream labels produced the same draw (streams not independent)")
	}
	d := NewStreamRNG(0xBEEF, "serve/arrivals")
	if NewStreamRNG(0xCA15, "serve/arrivals").Uint64() == d.Uint64() {
		t.Error("distinct seeds produced the same draw")
	}
}

// TestStreamRNGIsolation is the property the serving workload relies on:
// draws from one stream do not perturb another stream of the same seed, so
// changing a workload's length distribution leaves its arrival times alone.
func TestStreamRNGIsolation(t *testing.T) {
	arrivals := NewStreamRNG(7, "arrivals")
	var ref []uint64
	for i := 0; i < 16; i++ {
		ref = append(ref, arrivals.Uint64())
	}

	arrivals = NewStreamRNG(7, "arrivals")
	other := NewStreamRNG(7, "lengths")
	for i := 0; i < 16; i++ {
		other.Uint64() // interleaved draws on a sibling stream
		if got := arrivals.Uint64(); got != ref[i] {
			t.Fatalf("draw %d: sibling-stream draws perturbed this stream", i)
		}
	}
}

// TestExpFloat64 checks the exponential sampler's range and mean: every
// draw is finite and non-negative, and the empirical mean of many draws is
// close to 1.
func TestExpFloat64(t *testing.T) {
	r := NewRNG(42)
	const n = 200_000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.ExpFloat64()
		if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			t.Fatalf("draw %d: %v out of range", i, x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("empirical mean %.4f, want 1±0.02", mean)
	}
}

package sim

import "testing"

func TestRetryFirstAttemptImmediate(t *testing.T) {
	eng := NewEngine()
	calls := 0
	Retry(eng, Backoff{}, func(n int) bool {
		calls++
		if n != 1 {
			t.Fatalf("attempt number = %d, want 1", n)
		}
		return true
	}, nil)
	if calls != 1 {
		t.Fatalf("attempt ran %d times before Run, want 1 (synchronous first attempt)", calls)
	}
	if eng.Pending() != 0 {
		t.Fatalf("successful first attempt left %d events pending", eng.Pending())
	}
}

func TestRetryExponentialSpacing(t *testing.T) {
	eng := NewEngine()
	var at []Time
	Retry(eng, Backoff{Base: 1 * Microsecond, Factor: 2}, func(n int) bool {
		at = append(at, eng.Now())
		return n >= 4
	}, nil)
	eng.Run()
	// Attempts at 0, base, base+2*base, base+2*base+4*base.
	want := []Time{0, 1 * Microsecond, 3 * Microsecond, 7 * Microsecond}
	if len(at) != len(want) {
		t.Fatalf("got %d attempts, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("attempt %d at %v, want %v", i+1, at[i], want[i])
		}
	}
}

func TestRetryMaxCapsDelay(t *testing.T) {
	eng := NewEngine()
	var at []Time
	Retry(eng, Backoff{Base: 1 * Microsecond, Factor: 4, Max: 2 * Microsecond}, func(n int) bool {
		at = append(at, eng.Now())
		return n >= 4
	}, nil)
	eng.Run()
	// Delays: 1us, min(4us,2us)=2us, min(16us,2us)=2us.
	want := []Time{0, 1 * Microsecond, 3 * Microsecond, 5 * Microsecond}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("attempt %d at %v, want %v", i+1, at[i], want[i])
		}
	}
}

func TestRetryGiveUp(t *testing.T) {
	eng := NewEngine()
	attempts, gaveUp := 0, false
	Retry(eng, Backoff{Base: Nanosecond, Attempts: 3}, func(n int) bool {
		attempts++
		return false
	}, func() { gaveUp = true })
	eng.Run()
	if attempts != 3 {
		t.Errorf("ran %d attempts, want 3", attempts)
	}
	if !gaveUp {
		t.Error("onGiveUp did not run after the attempt budget was exhausted")
	}
}

// TestRetryGiveUpTiming pins WHEN onGiveUp runs, not just that it runs: it
// must fire synchronously at the final attempt's sim time (no extra backoff
// delay after a decision that will never be retried) and leave nothing
// pending on the engine.
func TestRetryGiveUpTiming(t *testing.T) {
	eng := NewEngine()
	var lastAttemptAt, gaveUpAt Time
	gaveUpAt = -1
	Retry(eng, Backoff{Base: Microsecond, Attempts: 3}, func(n int) bool {
		lastAttemptAt = eng.Now()
		return false
	}, func() { gaveUpAt = eng.Now() })
	eng.Run()
	if gaveUpAt < 0 {
		t.Fatal("onGiveUp never ran")
	}
	// Attempts at 0, 1us, 3us; giving up must not add a fourth delay.
	if want := 3 * Microsecond; lastAttemptAt != want {
		t.Errorf("final attempt at %v, want %v", lastAttemptAt, want)
	}
	if gaveUpAt != lastAttemptAt {
		t.Errorf("onGiveUp at %v, want the final attempt's time %v", gaveUpAt, lastAttemptAt)
	}
	if eng.Pending() != 0 {
		t.Errorf("give-up left %d events pending", eng.Pending())
	}
}

// TestRetrySingleAttemptGivesUpSynchronously covers the Attempts=1 edge:
// one synchronous try, an immediate give-up at t=0, and no engine events at
// all (the backoff ladder is never consulted).
func TestRetrySingleAttemptGivesUpSynchronously(t *testing.T) {
	eng := NewEngine()
	attempts, giveUps := 0, 0
	Retry(eng, Backoff{Base: Second, Attempts: 1}, func(n int) bool {
		attempts++
		return false
	}, func() {
		giveUps++
		if now := eng.Now(); now != 0 {
			t.Errorf("gave up at %v, want 0 (synchronous)", now)
		}
	})
	if attempts != 1 || giveUps != 1 {
		t.Fatalf("before Run: %d attempts / %d give-ups, want 1/1", attempts, giveUps)
	}
	if eng.Pending() != 0 {
		t.Errorf("single-attempt policy scheduled %d events, want 0", eng.Pending())
	}
	eng.Run()
	if attempts != 1 || giveUps != 1 {
		t.Errorf("after Run: %d attempts / %d give-ups, want 1/1", attempts, giveUps)
	}
}

// TestRetryMaxBelowBaseClampsFirstDelay pins the ceiling edge where Max is
// smaller than Base: every delay, including the very first, is clamped to
// Max rather than starting above it.
func TestRetryMaxBelowBaseClampsFirstDelay(t *testing.T) {
	eng := NewEngine()
	var at []Time
	Retry(eng, Backoff{Base: 8 * Microsecond, Max: 2 * Microsecond}, func(n int) bool {
		at = append(at, eng.Now())
		return n >= 3
	}, nil)
	eng.Run()
	want := []Time{0, 2 * Microsecond, 4 * Microsecond}
	if len(at) != len(want) {
		t.Fatalf("got %d attempts, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("attempt %d at %v, want %v", i+1, at[i], want[i])
		}
	}
}

// TestRetryFactorBelowTwoDefaults pins the Factor floor: 0 and 1 both fall
// back to doubling (a factor of 1 would retry at a constant interval
// forever, defeating the backoff).
func TestRetryFactorBelowTwoDefaults(t *testing.T) {
	for _, factor := range []int{0, 1} {
		eng := NewEngine()
		var at []Time
		Retry(eng, Backoff{Base: Microsecond, Factor: factor}, func(n int) bool {
			at = append(at, eng.Now())
			return n >= 3
		}, nil)
		eng.Run()
		want := []Time{0, Microsecond, 3 * Microsecond} // doubling ladder
		for i := range want {
			if at[i] != want[i] {
				t.Errorf("factor=%d attempt %d at %v, want %v", factor, i+1, at[i], want[i])
			}
		}
	}
}

// TestRetryDelayCeilingExact probes the delay ladder right at the ceiling:
// once the exponential ladder reaches Max the delay stays pinned there for
// every later attempt (no overflow past the cap on long retry chains).
func TestRetryDelayCeilingExact(t *testing.T) {
	b := Backoff{Base: Microsecond, Factor: 2, Max: 8 * Microsecond}
	want := []Time{
		Microsecond,     // after attempt 1
		2 * Microsecond, // after attempt 2
		4 * Microsecond,
		8 * Microsecond, // ladder meets the cap exactly
		8 * Microsecond, // and stays clamped
		8 * Microsecond,
	}
	for n := 1; n <= len(want); n++ {
		if got := b.delay(n); got != want[n-1] {
			t.Errorf("delay(%d) = %v, want %v", n, got, want[n-1])
		}
	}
}

func TestRetryUnlimitedUntilSuccess(t *testing.T) {
	eng := NewEngine()
	attempts := 0
	Retry(eng, Backoff{Base: Nanosecond, Max: 4 * Nanosecond}, func(n int) bool {
		attempts++
		return n >= 20
	}, func() { t.Error("onGiveUp ran for an unlimited policy") })
	eng.Run()
	if attempts != 20 {
		t.Errorf("ran %d attempts, want 20", attempts)
	}
}

package sim

import "testing"

func TestRetryFirstAttemptImmediate(t *testing.T) {
	eng := NewEngine()
	calls := 0
	Retry(eng, Backoff{}, func(n int) bool {
		calls++
		if n != 1 {
			t.Fatalf("attempt number = %d, want 1", n)
		}
		return true
	}, nil)
	if calls != 1 {
		t.Fatalf("attempt ran %d times before Run, want 1 (synchronous first attempt)", calls)
	}
	if eng.Pending() != 0 {
		t.Fatalf("successful first attempt left %d events pending", eng.Pending())
	}
}

func TestRetryExponentialSpacing(t *testing.T) {
	eng := NewEngine()
	var at []Time
	Retry(eng, Backoff{Base: 1 * Microsecond, Factor: 2}, func(n int) bool {
		at = append(at, eng.Now())
		return n >= 4
	}, nil)
	eng.Run()
	// Attempts at 0, base, base+2*base, base+2*base+4*base.
	want := []Time{0, 1 * Microsecond, 3 * Microsecond, 7 * Microsecond}
	if len(at) != len(want) {
		t.Fatalf("got %d attempts, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("attempt %d at %v, want %v", i+1, at[i], want[i])
		}
	}
}

func TestRetryMaxCapsDelay(t *testing.T) {
	eng := NewEngine()
	var at []Time
	Retry(eng, Backoff{Base: 1 * Microsecond, Factor: 4, Max: 2 * Microsecond}, func(n int) bool {
		at = append(at, eng.Now())
		return n >= 4
	}, nil)
	eng.Run()
	// Delays: 1us, min(4us,2us)=2us, min(16us,2us)=2us.
	want := []Time{0, 1 * Microsecond, 3 * Microsecond, 5 * Microsecond}
	for i := range want {
		if at[i] != want[i] {
			t.Errorf("attempt %d at %v, want %v", i+1, at[i], want[i])
		}
	}
}

func TestRetryGiveUp(t *testing.T) {
	eng := NewEngine()
	attempts, gaveUp := 0, false
	Retry(eng, Backoff{Base: Nanosecond, Attempts: 3}, func(n int) bool {
		attempts++
		return false
	}, func() { gaveUp = true })
	eng.Run()
	if attempts != 3 {
		t.Errorf("ran %d attempts, want 3", attempts)
	}
	if !gaveUp {
		t.Error("onGiveUp did not run after the attempt budget was exhausted")
	}
}

func TestRetryUnlimitedUntilSuccess(t *testing.T) {
	eng := NewEngine()
	attempts := 0
	Retry(eng, Backoff{Base: Nanosecond, Max: 4 * Nanosecond}, func(n int) bool {
		attempts++
		return n >= 20
	}, func() { t.Error("onGiveUp ran for an unlimited policy") })
	eng.Run()
	if attempts != 20 {
		t.Errorf("ran %d attempts, want 20", attempts)
	}
}

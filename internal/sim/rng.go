package sim

import "math"

// RNG is a splitmix64 pseudo-random generator. It is used for the
// calibrated execution-time jitter described in DESIGN.md §1; splitmix64 is
// chosen because it is trivially seedable per entity (gpu, kernel, tb), has
// no shared state, and is reproducible across platforms.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Between returns a uniform Time in [lo, hi]. If hi <= lo it returns lo.
func (r *RNG) Between(lo, hi Time) Time {
	if hi <= lo {
		return lo
	}
	return lo + Time(r.Uint64()%uint64(hi-lo+1))
}

// Jitter returns a multiplicative factor in [1-frac, 1+frac] for modeling
// execution-time noise. frac <= 0 yields exactly 1.
func (r *RNG) Jitter(frac float64) float64 {
	if frac <= 0 {
		return 1
	}
	return 1 + frac*(2*r.Float64()-1)
}

// ExpFloat64 returns an exponentially distributed value with mean 1
// (inverse-CDF sampling). Scale by 1/rate for a mean-1/rate inter-arrival
// draw. The underlying Float64 is in [0, 1), so the log argument 1-u is in
// (0, 1] and the result is finite and non-negative.
func (r *RNG) ExpFloat64() float64 {
	return -math.Log(1 - r.Float64())
}

// NewStreamRNG derives an independent generator from a base seed and a
// purpose label ("serve/arrivals", "faults/campaign", ...). Each label gets
// its own splitmix64 stream, so adding draws to one stream never perturbs
// another — a workload's arrival times survive a change to its length
// distribution. This is the shared seeded-randomness entry point for
// subsystems outside the engine (fault campaigns, serving workloads); the
// engine itself derives per-entity RNGs with Hash64 directly.
func NewStreamRNG(seed uint64, stream string) *RNG {
	// Fold the label into a 64-bit value with the same FNV-1a scheme the
	// memo hasher uses, then mix it with the seed.
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(stream); i++ {
		h ^= uint64(stream[i])
		h *= 0x100000001b3
	}
	return NewRNG(Hash64(seed, h))
}

// Hash64 mixes an arbitrary number of 64-bit values into one, for deriving
// deterministic per-entity seeds (e.g. Hash64(gpuID, kernelID, tbID)).
func Hash64(parts ...uint64) uint64 {
	h := uint64(0x2545f4914f6cdd1d)
	for _, p := range parts {
		h ^= p + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
	}
	return h
}

package sim

import "cais/internal/pool"

// Resource models a serialized, full-throughput resource such as a link's
// serialization stage or a GPU's HBM share. Callers reserve an interval of
// exclusive use; the resource tracks its next-free time and accumulated
// busy time for utilization reporting.
//
// Resource intentionally does not schedule events itself: the caller
// receives the (start, end) interval and schedules whatever completion
// events it needs, which keeps queueing policy (FIFO vs virtual channels)
// in the component that owns the policy.
type Resource struct {
	Name     string
	freeAt   Time
	busy     Time
	firstUse Time
	used     bool
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource {
	return &Resource{Name: name}
}

// Reserve books dur of exclusive use no earlier than now and returns the
// interval granted. Reservations are FIFO: each call starts at
// max(now, previous end).
func (r *Resource) Reserve(now Time, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	if !r.used {
		r.used = true
		r.firstUse = start
	}
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime reports the total reserved time.
func (r *Resource) BusyTime() Time { return r.busy }

// Utilization reports busy time as a fraction of the window [0, horizon].
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Latch is a countdown latch used to model barriers: once Add'ed count
// reaches zero the registered callbacks fire, in registration order, at the
// time of the final Done call.
//
// Latches come in two flavours. NewLatch builds a standalone one-shot
// latch with the historical OnRelease API. LatchPool.Get builds a pooled
// latch with a single pre-bound callback slot: firing recycles the latch
// into its pool automatically, and the DoneFunc method value is cached
// across pool round trips, so the machine-layer kernel-completion path
// counts down without allocating a closure per latch.
type Latch struct {
	remaining int
	fns       []func()
	fired     bool

	// fn is the pooled flavour's single pre-bound callback slot — the
	// cached-method-value counterpart of the OnRelease closure list.
	fn   func()
	home *LatchPool // recycle destination; nil for standalone latches

	// doneFn is the cached Done method value. It is bound to this object's
	// identity and deliberately survives reset() (caislint: poolreset).
	doneFn func()
}

// NewLatch returns a standalone latch waiting for n completions. n == 0
// latches fire immediately upon the first callback registration.
func NewLatch(n int) *Latch {
	return &Latch{remaining: n}
}

// reset clears the latch for pool reuse; the cached doneFn method value
// is the object's identity and survives (caislint: poolreset).
func (l *Latch) reset() {
	l.remaining = 0
	l.fns = nil
	l.fired = false
	l.fn = nil
	l.home = nil
}

// Remaining reports outstanding completions.
func (l *Latch) Remaining() int { return l.remaining }

// OnRelease registers fn to run when the latch reaches zero. If the latch
// already fired, fn runs synchronously.
func (l *Latch) OnRelease(fn func()) {
	if l.fired || l.remaining <= 0 {
		l.fire()
		fn()
		return
	}
	l.fns = append(l.fns, fn)
}

// Done counts down one completion, firing callbacks when the count hits
// zero. Calling Done on a released latch panics: it indicates a
// double-completion bug in the caller.
func (l *Latch) Done() {
	if l.remaining <= 0 {
		panic("sim: Latch.Done on released latch")
	}
	l.remaining--
	if l.remaining == 0 {
		l.fire()
	}
}

// DoneFunc returns the cached Done method value. Pooled latches create it
// once per object lifetime, so handing it to N waiters costs nothing on
// reuse. Callers must not invoke it after the latch has released.
func (l *Latch) DoneFunc() func() {
	if l.doneFn == nil {
		l.doneFn = l.Done
	}
	return l.doneFn
}

// fire releases the latch. A pooled latch recycles itself before invoking
// its callbacks, so a callback may immediately Get a fresh latch from the
// same pool (the machine launches follow-up kernels from completion
// callbacks).
func (l *Latch) fire() {
	if l.fired {
		return
	}
	l.fired = true
	fn, fns, home := l.fn, l.fns, l.home
	if home != nil {
		l.reset()
		home.p.Put(l)
	}
	if fn != nil {
		fn()
	}
	for _, f := range fns {
		f()
	}
}

// LatchPool is a free list of latches with the strict reset-before-Put
// lifecycle of the other engine pools. The zero value is ready to use.
type LatchPool struct {
	p pool.Pool[Latch]
}

// Get returns a latch waiting for n completions (n must be >= 1) that
// invokes fn — which may be nil — when the count reaches zero and then
// recycles itself. The caller must arrange exactly n Done calls (use
// DoneFunc to hand the countdown to the waiters allocation-free).
func (lp *LatchPool) Get(n int, fn func()) *Latch {
	if n < 1 {
		panic("sim: LatchPool.Get needs n >= 1")
	}
	l := lp.p.Get()
	l.remaining = n
	l.fn = fn
	l.home = lp
	return l
}

// Stats reports pool traffic (total Gets, fresh allocations, idle depth).
func (lp *LatchPool) Stats() (gets, news, idle int) { return lp.p.Stats() }

package sim

// Resource models a serialized, full-throughput resource such as a link's
// serialization stage or a GPU's HBM share. Callers reserve an interval of
// exclusive use; the resource tracks its next-free time and accumulated
// busy time for utilization reporting.
//
// Resource intentionally does not schedule events itself: the caller
// receives the (start, end) interval and schedules whatever completion
// events it needs, which keeps queueing policy (FIFO vs virtual channels)
// in the component that owns the policy.
type Resource struct {
	Name     string
	freeAt   Time
	busy     Time
	firstUse Time
	used     bool
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource {
	return &Resource{Name: name}
}

// Reserve books dur of exclusive use no earlier than now and returns the
// interval granted. Reservations are FIFO: each call starts at
// max(now, previous end).
func (r *Resource) Reserve(now Time, dur Time) (start, end Time) {
	if dur < 0 {
		dur = 0
	}
	start = now
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.busy += dur
	if !r.used {
		r.used = true
		r.firstUse = start
	}
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// BusyTime reports the total reserved time.
func (r *Resource) BusyTime() Time { return r.busy }

// Utilization reports busy time as a fraction of the window [0, horizon].
func (r *Resource) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(r.busy) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Latch is a countdown latch used to model barriers: once Add'ed count
// reaches zero the registered callbacks fire, in registration order, at the
// time of the final Done call.
type Latch struct {
	remaining int
	fns       []func()
	fired     bool
}

// NewLatch returns a latch waiting for n completions. n == 0 latches fire
// immediately upon the first callback registration.
func NewLatch(n int) *Latch {
	return &Latch{remaining: n}
}

// Remaining reports outstanding completions.
func (l *Latch) Remaining() int { return l.remaining }

// OnRelease registers fn to run when the latch reaches zero. If the latch
// already fired, fn runs synchronously.
func (l *Latch) OnRelease(fn func()) {
	if l.fired || l.remaining <= 0 {
		l.fire()
		fn()
		return
	}
	l.fns = append(l.fns, fn)
}

// Done counts down one completion, firing callbacks when the count hits
// zero. Calling Done on a released latch panics: it indicates a
// double-completion bug in the caller.
func (l *Latch) Done() {
	if l.remaining <= 0 {
		panic("sim: Latch.Done on released latch")
	}
	l.remaining--
	if l.remaining == 0 {
		l.fire()
	}
}

func (l *Latch) fire() {
	if l.fired {
		return
	}
	l.fired = true
	fns := l.fns
	l.fns = nil
	for _, fn := range fns {
		fn()
	}
}

package sim

// Backoff describes a deterministic exponential retry policy. There is no
// jitter by design: retry timing must be bit-reproducible, and the caller
// already gets de-correlation from the simulated system state (queue
// depths, link repairs) rather than from randomness.
type Backoff struct {
	// Base is the delay before the second attempt (the first attempt runs
	// immediately). Non-positive defaults to 1 microsecond.
	Base Time
	// Max caps the per-attempt delay once the exponential ladder exceeds
	// it. Non-positive means uncapped.
	Max Time
	// Factor multiplies the delay between consecutive attempts. Values
	// below 2 default to 2.
	Factor int
	// Attempts bounds the total number of attempts. Non-positive means
	// unlimited (the caller must guarantee eventual success, e.g. a fault
	// schedule that repairs the resource being waited on).
	Attempts int
}

// delay reports the wait before attempt n+1 (n is the 1-based attempt that
// just failed).
func (b Backoff) delay(n int) Time {
	base := b.Base
	if base <= 0 {
		base = Microsecond
	}
	factor := b.Factor
	if factor < 2 {
		factor = 2
	}
	d := base
	for i := 1; i < n; i++ {
		d *= Time(factor)
		if b.Max > 0 && d >= b.Max {
			return b.Max
		}
	}
	if b.Max > 0 && d > b.Max {
		d = b.Max
	}
	return d
}

// Retry invokes attempt until it reports success, spacing attempts per the
// backoff policy. The first attempt runs synchronously; each subsequent one
// is an engine event. attempt receives the 1-based attempt number and
// returns true when it succeeded (or permanently gave up on its own). When
// the policy's attempt budget is exhausted, onGiveUp (if non-nil) runs
// once. This is the timeout/retry primitive the fault re-routing path uses:
// e.g. re-registering a sync group after a switch-plane failure retries
// until the surviving plane's uplink is back up.
func Retry(eng *Engine, b Backoff, attempt func(n int) bool, onGiveUp func()) {
	var try func(n int)
	try = func(n int) {
		if attempt(n) {
			return
		}
		if b.Attempts > 0 && n >= b.Attempts {
			if onGiveUp != nil {
				onGiveUp()
			}
			return
		}
		eng.After(b.delay(n), func() { try(n + 1) })
	}
	try(1)
}

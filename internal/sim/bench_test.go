// Engine hot-path microbenchmarks. The event queue is the simulator's
// innermost loop — every simulated request, kernel phase and sync crossing
// is one push/pop pair — so these benchmarks pin the two properties the
// concrete 4-ary heap was built for: low ns/event and zero steady-state
// allocations per scheduled event.
//
// BenchmarkEngineHoldBoxedHeap keeps the old container/heap implementation
// alive (test-only) as the comparison baseline: run
//
//	go test -run='^$' -bench='BenchmarkEngineHold' -benchmem ./internal/sim/
//
// to see the specialized heap against the interface-boxed one on the same
// hold workload.
package sim

import (
	"container/heap"
	"testing"
)

// nop is the scheduled body for queue-focused benchmarks: the work under
// measurement is the heap, not the event.
func nop() {}

// BenchmarkEngineSchedule measures a bare At push into a warm engine
// (events accumulate; the heap grows geometrically but is never drained).
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(Time(i), nop)
	}
}

// benchHold runs the classic hold model on the real engine: a pending set
// of `depth` events where each executed event schedules one successor, so
// the queue depth stays constant and every iteration is exactly one pop
// plus one push at steady state.
func benchHold(b *testing.B, depth int) {
	e := NewEngine()
	remaining := b.N
	// Self-rescheduling closure: each event re-arms itself while budget
	// remains, keeping the pending set at `depth`.
	var arm func()
	arm = func() {
		if remaining > 0 {
			remaining--
			e.After(Time(1+remaining%64), arm)
		}
	}
	for i := 0; i < depth; i++ {
		e.At(Time(i%64), arm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

func BenchmarkEngineHold64(b *testing.B)   { benchHold(b, 64) }
func BenchmarkEngineHold1024(b *testing.B) { benchHold(b, 1024) }
func BenchmarkEngineHold8192(b *testing.B) { benchHold(b, 8192) }

// boxedHeap is the pre-overhaul event queue: container/heap over a slice
// of events, paying one interface box per Push and one unbox per Pop. It
// lives only in this benchmark file as the comparison baseline.
type boxedHeap []event

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return e
}

// BenchmarkEngineHoldBoxedHeap is the same hold workload as
// BenchmarkEngineHold1024 run against the old container/heap queue.
func BenchmarkEngineHoldBoxedHeap(b *testing.B) {
	const depth = 1024
	var h boxedHeap
	var seq uint64
	push := func(at Time) {
		seq++
		heap.Push(&h, event{at: at, seq: seq, fn: nop})
	}
	for i := 0; i < depth; i++ {
		push(Time(i % 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := heap.Pop(&h).(event)
		push(ev.at + Time(1+i%64))
	}
}

// BenchmarkEngineHoldConcreteHeap is the queue-only counterpart of
// BenchmarkEngineHoldBoxedHeap: the same pop+push cycle directly against
// the 4-ary heap, isolating the queue from engine bookkeeping.
func BenchmarkEngineHoldConcreteHeap(b *testing.B) {
	const depth = 1024
	var h eventHeap
	var seq uint64
	push := func(at Time) {
		seq++
		h.push(event{at: at, seq: seq, fn: nop})
	}
	for i := 0; i < depth; i++ {
		push(Time(i % 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := h.pop()
		push(ev.at + Time(1+i%64))
	}
}

// TestEngineSteadyStateAllocs proves the hot path allocates nothing per
// event once the heap is warm: scheduling into and draining a warmed
// engine must cost zero allocations per push/pop pair.
func TestEngineSteadyStateAllocs(t *testing.T) {
	e := NewEngine()
	// Warm the queue past the initial capacity so growth is behind us.
	for i := 0; i < 2*initialHeapCap; i++ {
		e.At(Time(i), nop)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.At(e.Now()+1, nop)
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+run allocates %.1f times per event, want 0", allocs)
	}
}

// TestEventHeapPushAllocsAmortized checks the geometric-growth contract of
// the queue itself: pushing n events from scratch performs O(log n)
// allocations (the doubling ladder), far below one per event.
func TestEventHeapPushAllocsAmortized(t *testing.T) {
	const n = 100_000
	var h *eventHeap
	allocs := testing.AllocsPerRun(1, func() {
		h = &eventHeap{}
		for i := 0; i < n; i++ {
			h.push(event{at: Time(i), seq: uint64(i), fn: nop})
		}
	})
	// log2(100k/512) ≈ 8 doublings plus the heap struct itself; 16 leaves
	// headroom without letting per-event allocation regressions hide.
	if allocs > 16 {
		t.Errorf("pushing %d events allocated %.0f times; geometric growth should need <= 16", n, allocs)
	}
	if h.len() != n {
		t.Fatalf("heap lost events: len=%d want %d", h.len(), n)
	}
}

// BenchmarkLatchPool measures a full pooled-latch cycle: Get, the cached
// Done method value, and the fire that recycles the latch back into the
// pool before its callback runs. At steady state the same latch object
// round-trips forever: zero allocations per cycle.
func BenchmarkLatchPool(b *testing.B) {
	var lp LatchPool
	cb := func() {}
	cycle := func() {
		l := lp.Get(2, cb)
		done := l.DoneFunc()
		done()
		done()
	}
	for i := 0; i < 64; i++ {
		cycle() // warm: the pool settles on one latch with a cached doneFn
	}
	if got := testing.AllocsPerRun(100, cycle); got != 0 {
		b.Fatalf("warmed latch cycle allocates %.2f/op, want 0", got)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cycle()
	}
}

package strategy

import (
	"strings"
	"testing"

	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/model"
)

func computeOnly(name string, grid int, flops float64) *kernel.Kernel {
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindGEMM, Grid: grid,
		Work: func(g, tb int) kernel.TBDesc {
			return kernel.TBDesc{Flops: flops, Group: -1}
		},
	}
}

// runTinySub runs one tiny sub-layer and returns the result for
// structural inspection.
func runTinySub(t *testing.T, spec Spec) Result {
	t.Helper()
	res, err := RunSubLayer(tinyHW(), spec, model.SubLayers(tinyModel())[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func countSpans(m *machine.Machine, substr string) int {
	n := 0
	for _, s := range m.KernelSpans {
		if strings.Contains(s.Name, substr) {
			n++
		}
	}
	return n
}

func TestCoCoNetLaunchesPerChunkCollectives(t *testing.T) {
	coco := runTinySub(t, CoCoNet())
	fuse := runTinySub(t, FuseLib())
	// CoCoNet pays one kernel launch per chunk; FuseLib fuses the chunked
	// collective into a single kernel.
	cocoAR := countSpans(coco.Machine, "ar.")
	fuseAR := countSpans(fuse.Machine, "ar.")
	if cocoAR != CoCoNet().Chunks {
		t.Fatalf("CoCoNet AR kernels = %d, want %d chunks", cocoAR, CoCoNet().Chunks)
	}
	if fuseAR != 1 {
		t.Fatalf("FuseLib AR kernels = %d, want 1 fused", fuseAR)
	}
	if countSpans(coco.Machine, "gate.") != 1 || countSpans(fuse.Machine, "gate.") != 1 {
		t.Fatal("chunked overlap needs exactly one gate kernel")
	}
}

func TestGlobalBarriersSerializeSpans(t *testing.T) {
	res := runTinySub(t, TPNVLS())
	spans := res.Machine.KernelSpans
	if len(spans) < 3 {
		t.Fatalf("spans = %d", len(spans))
	}
	// Under global barriers each kernel starts after the previous ended.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			t.Fatalf("span %q starts (%v) before %q ends (%v) despite global barriers",
				spans[i].Name, spans[i].Start, spans[i-1].Name, spans[i-1].End)
		}
	}
}

func TestCAISSpansOverlap(t *testing.T) {
	res := runTinySub(t, CAIS())
	spans := res.Machine.KernelSpans
	if len(spans) != 3 { // GEMM-RS, LN, AG-GEMM: all launched together
		t.Fatalf("spans = %d, want 3 fused-pipeline kernels", len(spans))
	}
	overlapped := false
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].End {
			overlapped = true
		}
	}
	if !overlapped {
		t.Fatal("CAIS pipeline kernels never overlapped")
	}
}

func TestT3UsesDirectStoresNotMergeUnit(t *testing.T) {
	res := runTinySub(t, T3())
	st := res.Stats
	if st.MergedReds != 0 || st.MergedLoads != 0 {
		t.Fatalf("T3 must not use the CAIS merge unit: %d/%d", st.MergedReds, st.MergedLoads)
	}
	if st.PushReduces != 0 || st.PullReduces != 0 {
		t.Fatal("plain T3 must not use NVLS either")
	}
}

func TestT3NVLSUsesPushReduction(t *testing.T) {
	res := runTinySub(t, T3NVLS())
	st := res.Stats
	if st.PushReduces == 0 {
		t.Fatal("T3-NVLS must reduce through the NVLS unit")
	}
	if st.MergedReds != 0 {
		t.Fatal("T3-NVLS must not use the CAIS merge table")
	}
	if st.MulticastStores == 0 {
		t.Fatal("T3-NVLS AllGather must use multimem.st multicast")
	}
}

func TestSPNVLSUsesPullAndMulticast(t *testing.T) {
	res := runTinySub(t, SPNVLS())
	st := res.Stats
	if st.PullReduces == 0 {
		t.Fatal("SP-NVLS ReduceScatter must use multimem.ld_reduce")
	}
	if st.MulticastStores == 0 {
		t.Fatal("SP-NVLS AllGather must use multimem.st")
	}
}

func TestLADMGeneratesRedundantTraffic(t *testing.T) {
	ladm := runTinySub(t, LADM())
	cais := runTinySub(t, CAIS())
	var ladmBytes, caisBytes int64
	for _, l := range ladm.Machine.Links() {
		ladmBytes += l.BytesSent()
	}
	for _, l := range cais.Machine.Links() {
		caisBytes += l.BytesSent()
	}
	if ladmBytes <= caisBytes {
		t.Fatalf("LADM traffic (%d) should exceed CAIS (%d): per-TB fetches are redundant",
			ladmBytes, caisBytes)
	}
}

func TestCoordinationSpecWiring(t *testing.T) {
	c := CAIS().coordination()
	if !c.PreLaunch || !c.PreAccess || !c.Throttle {
		t.Fatal("CAIS coordination incomplete")
	}
	n := CAISNoCoord().coordination()
	if n.PreLaunch || n.PreAccess || n.Throttle {
		t.Fatal("CAIS-w/o-Coord must disable coordination")
	}
}

func TestBarrierPlanPlacement(t *testing.T) {
	p := &plan{}
	a := computeOnly("a", 4, 1)
	b := computeOnly("b", 4, 1)
	p.add(BarrierGlobal, a, b)
	if len(p.stages) != 2 {
		t.Fatalf("global: stages = %d, want 2", len(p.stages))
	}
	p2 := &plan{}
	p2.add(BarrierStage, a, b)
	if len(p2.stages) != 1 || len(p2.stages[0]) != 2 {
		t.Fatal("stage mode must group the op's kernels")
	}
	p3 := &plan{}
	p3.add(BarrierNone, a)
	p3.add(BarrierNone, b)
	if len(p3.stages) != 1 || len(p3.stages[0]) != 2 {
		t.Fatal("barrier-none must accumulate one stage")
	}
}

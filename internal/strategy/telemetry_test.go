package strategy

import (
	"bytes"
	"encoding/json"
	"testing"

	"cais/internal/trace"
)

// TestTracingDoesNotPerturbSimulation: attaching a tracer must be a pure
// observer — elapsed time and every switch statistic must be identical to
// the untraced run (bit-reproducibility is a stated engine invariant).
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	hw := tinyHW()
	m := tinyModel()

	base, err := RunLayersOpts(hw, CAIS(), m, false, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	traced, err := RunLayersOpts(hw, CAIS(), m, false, 1, Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}

	if base.Elapsed != traced.Elapsed {
		t.Fatalf("tracing changed elapsed time: %v vs %v", base.Elapsed, traced.Elapsed)
	}
	if base.Stats != traced.Stats {
		t.Fatalf("tracing changed stats:\nbase:   %+v\ntraced: %+v", base.Stats, traced.Stats)
	}
	if base.AvgUtil != traced.AvgUtil {
		t.Fatalf("tracing changed utilization: %v vs %v", base.AvgUtil, traced.AvgUtil)
	}
	if tr.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}

	// The trace must serialize as valid Chrome trace-event JSON with spans
	// from the GPU, switch, and interconnect subsystems.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	cats := map[string]int{}
	for _, e := range doc.TraceEvents {
		cats[e.Cat]++
	}
	for _, want := range []string{"gpu.tb", "gpu.sync", "nvswitch.merge", "noc.link", "kernel"} {
		if cats[want] == 0 {
			t.Errorf("no %q events in trace (got %v)", want, cats)
		}
	}
}

// TestTelemetrySnapshotInResult: every run must carry a machine-readable
// metric snapshot with the core cross-subsystem gauges populated.
func TestTelemetrySnapshotInResult(t *testing.T) {
	res, err := RunLayersOpts(tinyHW(), CAIS(), tinyModel(), false, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := res.Telemetry
	if snap.Len() < 20 {
		t.Fatalf("telemetry has %d metrics, want >= 20", snap.Len())
	}
	for _, name := range []string{
		"sim.steps", "sim.now_us", "gpu.tbs_run", "machine.kernels_launched",
		"noc.up.wire_bytes", "nvswitch.plane0.merged_loads",
	} {
		if _, ok := snap.Get(name); !ok {
			t.Errorf("metric %q missing from snapshot", name)
		}
	}
	if v := snap.Value("gpu.tbs_run"); v <= 0 {
		t.Errorf("gpu.tbs_run = %v, want > 0", v)
	}
	if v := snap.Value("sim.steps"); v <= 0 {
		t.Errorf("sim.steps = %v, want > 0", v)
	}
}

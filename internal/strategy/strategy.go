// Package strategy implements the execution strategies the paper
// evaluates: CAIS itself (with its ablations CAIS-Base, CAIS-Partial and
// CAIS-w/o-Coord) and the nine baselines of Section IV-C — TP-NVLS,
// SP-NVLS, CoCoNet, FuseLib, T3, their NVLS-enhanced variants, and LADM.
// A strategy is a declarative Spec; the executor in run.go lowers a
// workload under the Spec onto a machine.
package strategy

import (
	"fmt"
	"strings"
)

// Layout is the tensor-parallel partitioning scheme (Fig. 1a/1b).
type Layout int

const (
	// BasicTP replicates activations and AllReduces row-GEMM outputs.
	BasicTP Layout = iota
	// SeqParallel shards activations along the sequence and uses
	// ReduceScatter + AllGather.
	SeqParallel
)

func (l Layout) String() string {
	if l == SeqParallel {
		return "tp+sp"
	}
	return "basic-tp"
}

// GatherImpl is how a column-parallel GEMM obtains its full input.
type GatherImpl int

const (
	// AGNone: the input is already replicated (Basic TP).
	AGNone GatherImpl = iota
	// AGNVLS: multimem.st push-mode AllGather (communication kernel).
	AGNVLS
	// AGRing: GPU-driven ring AllGather.
	AGRing
	// AGP2PPush: owners push blocks to every peer with direct stores
	// (T3 without NVLS).
	AGP2PPush
	// AGFusedCAIS: the GEMM issues ld.cais loads itself (compute-aware).
	AGFusedCAIS
	// AGPerTB: every consuming TB re-fetches remote rows with plain
	// loads (LADM).
	AGPerTB
)

// ReduceImpl is how a row-parallel GEMM's partial output is combined.
type ReduceImpl int

const (
	// RedARNVLS: multimem.red push AllReduce (communication kernel).
	RedARNVLS ReduceImpl = iota
	// RedARRing: GPU-driven ring AllReduce.
	RedARRing
	// RedRSNVLSPull: multimem.ld_reduce pull ReduceScatter.
	RedRSNVLSPull
	// RedRSFusedCAIS: the GEMM issues red.cais reductions itself.
	RedRSFusedCAIS
	// RedRSFusedStore: the GEMM pushes partial tiles to the owner with
	// direct stores (T3).
	RedRSFusedStore
	// RedRSFusedNVLSPush: the GEMM pushes partials through multimem.red
	// (T3-NVLS's DMA-based NVLS).
	RedRSFusedNVLSPush
	// RedARFusedCAIS: the GEMM issues broadcast red.cais reductions — the
	// compute-aware GEMM-AR combination of Fig. 1(h), an extension beyond
	// the paper's evaluated SP pipelines.
	RedARFusedCAIS
	// RedRSRing: GPU-driven ring ReduceScatter (no in-switch computing).
	RedRSRing
)

// BarrierMode is the synchronization granularity between kernels.
type BarrierMode int

const (
	// BarrierGlobal puts a global barrier after every kernel: the
	// communication-centric isolation of the NVLS baselines.
	BarrierGlobal BarrierMode = iota
	// BarrierStage groups each communication with its adjacent compute
	// kernel but keeps barriers between operator stages (T3, CAIS-Base).
	BarrierStage
	// BarrierNone launches the whole pipeline at once; ordering comes
	// purely from TB-level tile dependencies (CAIS's graph-level
	// dataflow optimizer).
	BarrierNone
)

// Spec declares one execution strategy.
type Spec struct {
	Name    string
	Layout  Layout
	Gather  GatherImpl
	Reduce  ReduceImpl
	Barrier BarrierMode

	// Chunks > 0 splits collective kernels into per-chunk launches gated
	// on chunk completion (CoCoNet's software pipelining). FusedComm
	// keeps the chunked collective in a single kernel launch (FuseLib).
	Chunks    int
	FusedComm bool

	// CAIS knobs (the Fig. 13b ablation axes).
	CoordPreLaunch bool // pre-launch TB-group synchronization
	CoordPreAccess bool // pre-access synchronization
	Throttled      bool // TB-aware request throttling
	TrafficControl bool // load/reduction virtual channels (Sec. III-C-2)
}

// String returns the strategy name.
func (s Spec) String() string { return s.Name }

// UsesNVLS reports whether the strategy leverages in-switch computing.
func (s Spec) UsesNVLS() bool {
	switch s.Gather {
	case AGNVLS, AGFusedCAIS:
		return true
	default:
	}
	switch s.Reduce {
	case RedARNVLS, RedRSNVLSPull, RedRSFusedCAIS, RedRSFusedNVLSPush:
		return true
	default:
		return false
	}
}

// The paper's configurations.

// TPNVLS is Basic TP with NVLS AllReduce and global barriers.
func TPNVLS() Spec {
	return Spec{Name: "TP-NVLS", Layout: BasicTP, Gather: AGNone, Reduce: RedARNVLS, Barrier: BarrierGlobal}
}

// SPNVLS is TP+SP with NVLS ReduceScatter/AllGather and global barriers.
func SPNVLS() Spec {
	return Spec{Name: "SP-NVLS", Layout: SeqParallel, Gather: AGNVLS, Reduce: RedRSNVLSPull, Barrier: BarrierGlobal}
}

// CoCoNet overlaps GEMM with chunked ring AllReduce via software
// pipelining (one kernel launch per chunk).
func CoCoNet() Spec {
	return Spec{Name: "CoCoNet", Layout: BasicTP, Gather: AGNone, Reduce: RedARRing, Barrier: BarrierStage, Chunks: 4}
}

// FuseLib is the fused-kernel variant of chunked overlap (single launch).
func FuseLib() Spec {
	return Spec{Name: "FuseLib", Layout: BasicTP, Gather: AGNone, Reduce: RedARRing, Barrier: BarrierStage, Chunks: 4, FusedComm: true}
}

// T3 uses hardware track-and-trigger: fused GEMM-RS via direct stores and
// fine-grained P2P AllGather, with stage-level barriers.
func T3() Spec {
	return Spec{Name: "T3", Layout: SeqParallel, Gather: AGP2PPush, Reduce: RedRSFusedStore, Barrier: BarrierStage}
}

// CoCoNetNVLS is CoCoNet with NVLS collectives.
func CoCoNetNVLS() Spec {
	s := CoCoNet()
	s.Name = "CoCoNet-NVLS"
	s.Reduce = RedARNVLS
	return s
}

// FuseLibNVLS is FuseLib with NVLS collectives.
func FuseLibNVLS() Spec {
	s := FuseLib()
	s.Name = "FuseLib-NVLS"
	s.Reduce = RedARNVLS
	return s
}

// T3NVLS is T3 with the DMA-based NVLS design.
func T3NVLS() Spec {
	return Spec{Name: "T3-NVLS", Layout: SeqParallel, Gather: AGNVLS, Reduce: RedRSFusedNVLSPush, Barrier: BarrierStage}
}

// LADM is locality-aware TB scheduling without in-switch computing:
// per-TB remote fetches and direct-store reductions.
func LADM() Spec {
	return Spec{Name: "LADM", Layout: SeqParallel, Gather: AGPerTB, Reduce: RedRSFusedStore, Barrier: BarrierNone}
}

// CAIS is the full compute-aware in-switch computing framework.
func CAIS() Spec {
	return Spec{
		Name: "CAIS", Layout: SeqParallel,
		Gather: AGFusedCAIS, Reduce: RedRSFusedCAIS, Barrier: BarrierNone,
		CoordPreLaunch: true, CoordPreAccess: true, Throttled: true, TrafficControl: true,
	}
}

// CAISBase disables TB coordination and the graph-level dataflow
// optimizer (stage barriers, no coordination, no traffic control).
func CAISBase() Spec {
	return Spec{
		Name: "CAIS-Base", Layout: SeqParallel,
		Gather: AGFusedCAIS, Reduce: RedRSFusedCAIS, Barrier: BarrierStage,
	}
}

// CAISPartial is CAIS without traffic control (Fig. 15/16).
func CAISPartial() Spec {
	s := CAIS()
	s.Name = "CAIS-Partial"
	s.TrafficControl = false
	return s
}

// CAISNoCoord is CAIS without merging-aware TB coordination (Fig. 13/14).
func CAISNoCoord() Spec {
	s := CAIS()
	s.Name = "CAIS-w/o-Coord"
	s.CoordPreLaunch = false
	s.CoordPreAccess = false
	s.Throttled = false
	return s
}

// CAISTP is an extension strategy: compute-aware in-switch computing
// applied to the Basic TP layout (the GEMM-AR / AR-GEMM combinations of
// Fig. 1(h)): row-parallel GEMMs issue broadcast red.cais reductions and
// the merged tile is written to every replica, with no AllGather at all.
func CAISTP() Spec {
	return Spec{
		Name: "CAIS-TP", Layout: BasicTP,
		Gather: AGNone, Reduce: RedARFusedCAIS, Barrier: BarrierNone,
		CoordPreLaunch: true, CoordPreAccess: true, Throttled: true, TrafficControl: true,
	}
}

// Baselines returns the nine baselines of Fig. 11 in paper order.
func Baselines() []Spec {
	return []Spec{
		TPNVLS(), SPNVLS(), CoCoNet(), FuseLib(), T3(),
		CoCoNetNVLS(), FuseLibNVLS(), T3NVLS(), LADM(),
	}
}

// All returns the nine baselines plus CAIS-Base and CAIS.
func All() []Spec {
	return append(Baselines(), CAISBase(), CAIS())
}

// MegatronRing is a reference strategy outside the paper's baseline list:
// TP+SP with plain GPU-driven ring collectives (standard NCCL without any
// in-switch computing) and global barriers — the pre-NVLS status quo.
func MegatronRing() Spec {
	return Spec{Name: "Megatron-Ring", Layout: SeqParallel, Gather: AGRing, Reduce: RedRSRing, Barrier: BarrierGlobal}
}

// Extensions returns strategies beyond the paper's evaluated set.
func Extensions() []Spec {
	return []Spec{CAISTP(), MegatronRing()}
}

// ByName looks a strategy up case-insensitively.
func ByName(name string) (Spec, error) {
	all := append(All(), CAISPartial(), CAISNoCoord())
	all = append(all, Extensions()...)
	for _, s := range all {
		if strings.EqualFold(s.Name, name) {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("strategy: unknown strategy %q", name)
}

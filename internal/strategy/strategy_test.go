package strategy

import (
	"testing"

	"cais/internal/config"
	"cais/internal/model"
	"cais/internal/sim"
)

// tinyHW is a scaled-down system that keeps tests fast while preserving
// every mechanism (4 GPUs, 2 planes, small SM count).
func tinyHW() config.Hardware {
	hw := config.DGXH100()
	hw.NumGPUs = 4
	hw.NumSwitchPlanes = 2
	hw.SMsPerGPU = 16
	hw.RequestBytes = 16 << 10
	return hw
}

// tinyModel is a miniature transformer that still produces multi-tile
// grids in every dimension.
func tinyModel() config.Model {
	return config.Model{Name: "tiny", Hidden: 512, FFNHidden: 1024, Heads: 4, SeqLen: 256, Batch: 2, Layers: 2}
}

func TestSpecCatalog(t *testing.T) {
	if len(Baselines()) != 9 {
		t.Fatalf("baselines = %d, want 9 (paper Sec. IV-C)", len(Baselines()))
	}
	all := All()
	if len(all) != 11 {
		t.Fatalf("All() = %d, want 11 (9 baselines + CAIS-Base + CAIS)", len(all))
	}
	names := map[string]bool{}
	for _, s := range all {
		if names[s.Name] {
			t.Fatalf("duplicate strategy name %q", s.Name)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"TP-NVLS", "SP-NVLS", "CoCoNet", "FuseLib", "T3",
		"CoCoNet-NVLS", "FuseLib-NVLS", "T3-NVLS", "LADM", "CAIS-Base", "CAIS"} {
		if !names[want] {
			t.Errorf("missing strategy %q", want)
		}
	}
}

func TestCAISTPExtension(t *testing.T) {
	hw := tinyHW()
	sub := model.SubLayers(tinyModel())[0]
	tp, err := RunSubLayer(hw, TPNVLS(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := RunSubLayer(hw, CAISTP(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Elapsed >= tp.Elapsed {
		t.Fatalf("CAIS-TP (%v) not faster than TP-NVLS (%v)", ext.Elapsed, tp.Elapsed)
	}
	// Broadcast sessions complete in place: every reduction merges and no
	// partial is stranded at a home replica.
	if ext.Stats.CompletedReds == 0 {
		t.Fatal("CAIS-TP produced no completed broadcast merges")
	}
	if got, err := ByName("cais-tp"); err != nil || got.Name != "CAIS-TP" {
		t.Fatalf("extension not resolvable by name: %v %v", got, err)
	}
}

func TestMegatronRingReference(t *testing.T) {
	hw := tinyHW()
	sub := model.SubLayers(tinyModel())[0]
	ring, err := RunSubLayer(hw, MegatronRing(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	nvls, err := RunSubLayer(hw, SPNVLS(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cais, err := RunSubLayer(hw, CAIS(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// In-switch computing must beat the GPU-driven ring; CAIS beats both.
	if nvls.Elapsed >= ring.Elapsed {
		t.Errorf("SP-NVLS (%v) not faster than the ring baseline (%v)", nvls.Elapsed, ring.Elapsed)
	}
	if cais.Elapsed >= ring.Elapsed {
		t.Errorf("CAIS (%v) not faster than the ring baseline (%v)", cais.Elapsed, ring.Elapsed)
	}
	if ring.Stats.PullReduces != 0 || ring.Stats.MulticastStores != 0 || ring.Stats.MergedReds != 0 {
		t.Error("ring baseline must not touch NVLS or the merge unit")
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("cais-partial")
	if err != nil || s.Name != "CAIS-Partial" {
		t.Fatalf("ByName(cais-partial) = %v, %v", s, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestNVLSUsage(t *testing.T) {
	if !CAIS().UsesNVLS() || !TPNVLS().UsesNVLS() || !T3NVLS().UsesNVLS() {
		t.Fatal("NVLS strategies misclassified")
	}
	if CoCoNet().UsesNVLS() || T3().UsesNVLS() || LADM().UsesNVLS() {
		t.Fatal("non-NVLS strategies misclassified")
	}
}

func TestAllStrategiesCompleteSubLayer(t *testing.T) {
	hw := tinyHW()
	sub := model.SubLayers(tinyModel())[0]
	for _, spec := range append(All(), CAISPartial(), CAISNoCoord()) {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunSubLayer(hw, spec, sub, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatal("zero elapsed time")
			}
			if res.AvgUtil < 0 || res.AvgUtil > 1 {
				t.Fatalf("utilization %v out of range", res.AvgUtil)
			}
		})
	}
}

func TestAllStrategiesCompleteLayerChain(t *testing.T) {
	hw := tinyHW()
	cfg := tinyModel()
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunLayers(hw, spec, cfg, false, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatal("zero elapsed time")
			}
		})
	}
}

func TestAllStrategiesCompleteTraining(t *testing.T) {
	// The mirrored backward pass exercises different lowering-state
	// transitions (gather-first): every strategy must complete it.
	hw := tinyHW()
	cfg := tinyModel()
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			res, err := RunLayers(hw, spec, cfg, true, 1)
			if err != nil {
				t.Fatal(err)
			}
			if res.Elapsed <= 0 {
				t.Fatal("zero elapsed time")
			}
		})
	}
}

func TestTrainingChainCompletes(t *testing.T) {
	res, err := RunLayers(tinyHW(), CAIS(), tinyModel(), true, 1)
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := RunLayers(tinyHW(), CAIS(), tinyModel(), false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= fwd.Elapsed {
		t.Fatalf("training (%v) not slower than inference (%v)", res.Elapsed, fwd.Elapsed)
	}
}

func TestCAISBeatsGlobalBarrierBaselines(t *testing.T) {
	hw := tinyHW()
	sub := model.SubLayers(tinyModel())[1]
	run := func(s Spec) sim.Time {
		res, err := RunSubLayer(hw, s, sub, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	cais := run(CAIS())
	spnvls := run(SPNVLS())
	tpnvls := run(TPNVLS())
	ladm := run(LADM())
	if cais >= spnvls {
		t.Errorf("CAIS (%v) not faster than SP-NVLS (%v)", cais, spnvls)
	}
	if cais >= tpnvls {
		t.Errorf("CAIS (%v) not faster than TP-NVLS (%v)", cais, tpnvls)
	}
	if cais >= ladm {
		t.Errorf("CAIS (%v) not faster than LADM (%v)", cais, ladm)
	}
}

func TestCAISMergesTraffic(t *testing.T) {
	hw := tinyHW()
	sub := model.SubLayers(tinyModel())[0]
	res, err := RunSubLayer(hw, CAIS(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.MergedLoads == 0 {
		t.Error("CAIS run produced no merged loads")
	}
	if res.Stats.CompletedReds == 0 {
		t.Error("CAIS run produced no completed reduction merges")
	}
	if res.Stats.SyncReleases == 0 {
		t.Error("coordinated CAIS run produced no group sync releases")
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := Result{Elapsed: 100}
	b := Result{Elapsed: 150}
	if got := a.Speedup(b); got != 1.5 {
		t.Fatalf("speedup = %v, want 1.5", got)
	}
	if (Result{}).Speedup(b) != 0 {
		t.Fatal("zero-elapsed speedup should be 0")
	}
}

func TestResultsAreDeterministic(t *testing.T) {
	hw := tinyHW()
	sub := model.SubLayers(tinyModel())[0]
	r1, err := RunSubLayer(hw, CAIS(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSubLayer(hw, CAIS(), sub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed != r2.Elapsed {
		t.Fatalf("nondeterministic: %v vs %v", r1.Elapsed, r2.Elapsed)
	}
}

package strategy

import (
	"testing"

	"cais/internal/machine"
	"cais/internal/model"
	"cais/internal/sim"
)

// Lowering-state guards: a miswired op sequence must fail loudly, not
// silently produce a wrong pipeline.

func guardBuilder(t *testing.T) *model.Builder {
	t.Helper()
	eng := sim.NewEngine()
	return model.NewBuilder(machine.New(eng, tinyHW(), machine.Options{}))
}

func expectPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestLoweringGuards(t *testing.T) {
	b := guardBuilder(t)
	tokens := tinyModel().Tokens()

	expectPanic(t, "attention without a local QKV grid", func() {
		st := actState{kind: stateSharded, sharded: b.NewSharded(tokens)}
		lower(b, CAIS(), model.OpSpec{Name: "attn", Kind: model.OpAttention,
			Batch: 1, Heads: 4, Seq: 256, HeadDim: 128}, &st, &plan{})
	})
	expectPanic(t, "row GEMM without a local input grid", func() {
		st := actState{kind: stateGathered, gathered: b.NewGathered(tokens)}
		lower(b, CAIS(), model.OpSpec{Name: "rg", Kind: model.OpRowGEMM,
			M: tokens, N: 512, K: 512}, &st, &plan{})
	})
	expectPanic(t, "Basic-TP col GEMM without replicated input", func() {
		st := actState{kind: stateSharded, sharded: b.NewSharded(tokens)}
		lower(b, TPNVLS(), model.OpSpec{Name: "cg", Kind: model.OpColGEMM,
			M: tokens, N: 512, K: 512}, &st, &plan{})
	})
	expectPanic(t, "SP gather from a non-sharded state", func() {
		st := actState{kind: stateLocal, local: b.NewLocalGrid(tokens, 512)}
		lower(b, CAIS(), model.OpSpec{Name: "cg", Kind: model.OpColGEMM,
			M: tokens, N: 512, K: 512}, &st, &plan{})
	})
	expectPanic(t, "row op with no activation state", func() {
		st := actState{}
		lower(b, CAIS(), model.OpSpec{Name: "ln", Kind: model.OpLN,
			Rows: tokens, Cols: 512}, &st, &plan{})
	})
}

func TestRunLayersRejectsInvalidModel(t *testing.T) {
	bad := tinyModel()
	bad.Layers = 0
	if _, err := RunLayers(tinyHW(), CAIS(), bad, false, 1); err == nil {
		t.Fatal("invalid model accepted")
	}
}

func TestRunLayersOptsConfigureHook(t *testing.T) {
	called := false
	_, err := RunLayersOpts(tinyHW(), CAIS(), tinyModel(), false, 1, Options{
		Configure: func(m *machine.Machine) { called = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("Configure hook not invoked")
	}
}

func TestDirectionTrafficAsymmetry(t *testing.T) {
	// A pure GEMM-RS run is GPU-to-switch heavy (Fig. 10a): contributions
	// go up, only merged results come down.
	hw := tinyHW()
	res, err := RunSubLayer(hw, CAISNoCoord(), model.SubLayers(tinyModel())[0], Options{})
	if err != nil {
		t.Fatal(err)
	}
	up, down := res.Machine.DirectionTraffic()
	if up <= 0 || down <= 0 {
		t.Fatal("no directional traffic")
	}
	busyUp, busyDown := res.Machine.DirectionBusy()
	if busyUp <= 0 || busyDown <= 0 {
		t.Fatal("no directional busy time")
	}
}

package strategy

import (
	"testing"
)

// TestObserversDisabledAllocatesNothing pins the zero-overhead contract at
// the run-setup layer: with attribution and timeline recording both off,
// the observer hook must neither allocate nor attach a tracer — the run
// stays on the seed's nil-check-only hot path.
func TestObserversDisabledAllocatesNothing(t *testing.T) {
	hw := tinyHW()
	allocs := testing.AllocsPerRun(1000, func() {
		opts := Options{}
		if rec := observers(hw, &opts); rec != nil {
			panic("recorder created without opt-in")
		}
		if opts.Tracer != nil {
			panic("tracer attached without opt-in")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled observers allocate %v/op, want 0", allocs)
	}
}

// TestAttributionDoesNotPerturbSimulation: enabling attribution (which
// implicitly attaches a tracer and runs an offline interval sweep after
// the engine drains) must not change a single simulated quantity.
func TestAttributionDoesNotPerturbSimulation(t *testing.T) {
	hw := tinyHW()
	m := tinyModel()

	base, err := RunLayersOpts(hw, CAIS(), m, false, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	attributed, err := RunLayersOpts(hw, CAIS(), m, false, 1, Options{Attrib: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Elapsed != attributed.Elapsed {
		t.Fatalf("attribution changed elapsed time: %v vs %v", base.Elapsed, attributed.Elapsed)
	}
	if base.Stats != attributed.Stats {
		t.Fatalf("attribution changed stats:\nbase: %+v\nattr: %+v", base.Stats, attributed.Stats)
	}
	if base.AvgUtil != attributed.AvgUtil {
		t.Fatalf("attribution changed utilization: %v vs %v", base.AvgUtil, attributed.AvgUtil)
	}
	if attributed.Attrib == nil {
		t.Fatal("attributed run produced no report")
	}
	for _, c := range attributed.Attrib.Components {
		if c.Total() != attributed.Attrib.Elapsed {
			t.Fatalf("%s: buckets sum to %v, want %v", c.Name, c.Total(), attributed.Attrib.Elapsed)
		}
	}
}

// TestUtilBinRecordsTimeline: the declarative UtilBin knob must produce a
// non-empty timeline whose bin width round-trips, without perturbing the
// run either.
func TestUtilBinRecordsTimeline(t *testing.T) {
	hw := tinyHW()
	m := tinyModel()

	base, err := RunLayersOpts(hw, CAIS(), m, false, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLayersOpts(hw, CAIS(), m, false, 1, Options{UtilBin: base.Elapsed / 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed != base.Elapsed {
		t.Fatalf("timeline recording changed elapsed time: %v vs %v", res.Elapsed, base.Elapsed)
	}
	if res.Timeline.IsZero() {
		t.Fatal("UtilBin set but no timeline recorded")
	}
	if res.Timeline.Bin != base.Elapsed/16 {
		t.Fatalf("timeline bin: got %v, want %v", res.Timeline.Bin, base.Elapsed/16)
	}
	if u := res.Timeline.Utilization(); len(u) == 0 {
		t.Fatal("timeline has no utilization bins")
	}
}

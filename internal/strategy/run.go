package strategy

import (
	"fmt"

	"cais/internal/attrib"
	"cais/internal/config"
	"cais/internal/faults"
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/nvswitch"
	"cais/internal/sim"
	"cais/internal/trace"
)

// Options tune a run beyond the strategy spec (experiment knobs).
type Options struct {
	// MergeTableBytes overrides the per-port merging-table capacity.
	MergeTableBytes int64
	// UnlimitedMergeTable removes the capacity limit (Fig. 13a probes).
	UnlimitedMergeTable bool
	// NoMergeTimeout disables the forward-progress timeout so sessions
	// wait for every expected request (the "merge all eligible requests"
	// condition of Fig. 13a).
	NoMergeTimeout bool
	// Eviction selects the merge unit's victim policy (design ablation).
	Eviction nvswitch.EvictionPolicy
	// NoControlSideband disables the links' dedicated control channel
	// (design ablation).
	NoControlSideband bool
	// StepLimit guards against runaway simulations (0 = default).
	StepLimit uint64
	// Configure, when set, runs on the freshly assembled machine before
	// any kernel launches (e.g. to attach utilization recorders).
	Configure func(*machine.Machine) //caislint:nodigest opaque behavior; memo.Cacheable rejects runs that set it
	// Tracer, when non-nil, records the run as a Perfetto-loadable event
	// trace. Instrumentation stays disabled (zero-cost) when nil.
	Tracer *trace.Tracer //caislint:nodigest observer only; memo.Cacheable rejects runs that set it
	// Progress, when set together with ProgressEvery, is invoked from the
	// event loop every ProgressEvery engine steps (heartbeat logging).
	Progress      func(now sim.Time, steps uint64) //caislint:nodigest observer only; memo.Cacheable rejects runs that set it
	ProgressEvery uint64                           //caislint:nodigest heartbeat cadence; does not affect simulated time
	// Faults, when non-nil and non-empty, is the fault schedule injected
	// into the run (DESIGN.md §8). Nil or empty reproduces the unfaulted
	// run bit-for-bit.
	Faults *faults.Schedule
	// UtilBin, when positive, records a binned link-utilization timeline
	// over all links and returns it in Result.Timeline (Fig. 16). Unlike a
	// Configure callback, this declarative form hashes into the memo key,
	// so timeline-producing runs stay cacheable.
	UtilBin sim.Time
	// Attrib, when set, attaches an internal tracer and runs the time-
	// attribution pass after completion (Result.Attrib, DESIGN.md §12).
	// The tracer only observes — elapsed time and telemetry are identical
	// with Attrib on or off.
	Attrib bool
}

// Result is the outcome of one simulated run.
type Result struct {
	Strategy string
	Elapsed  sim.Time // completion time of the final stage
	Stats    nvswitch.Summary
	AvgUtil  float64 // mean link utilization over [0, Elapsed]
	MergeHWM int64   // max per-port merging-table occupancy
	Machine  *machine.Machine
	// Telemetry is the machine-readable snapshot of every registered
	// metric at run completion (-metrics-json).
	Telemetry metrics.Snapshot
	// Timeline is the binned utilization timeline (Options.UtilBin > 0).
	Timeline metrics.UtilTimeline
	// Attrib is the time-attribution report (Options.Attrib).
	Attrib *attrib.Report
}

// Speedup reports other's elapsed time divided by r's (how much faster r
// is than other).
func (r Result) Speedup(other Result) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(other.Elapsed) / float64(r.Elapsed)
}

// coordination maps the spec's CAIS knobs to the builder's flags.
func (s Spec) coordination() model.Coordination {
	return model.Coordination{
		PreLaunch: s.CoordPreLaunch,
		PreAccess: s.CoordPreAccess,
		Throttle:  s.Throttled,
	}
}

// stateKind tracks the representation the activation currently lives in.
type stateKind int

const (
	stateNone stateKind = iota
	stateSharded
	stateParts
	stateGathered
	stateLocal         // column-parallel GEMM output (per-GPU shard)
	stateReducedCopies // AllReduce result (per-GPU full-width copy)
)

// actState is the lowering context threaded through the op sequence.
type actState struct {
	kind       stateKind
	sharded    model.Sharded
	parts      model.LocalGrid
	partsOwner model.Sharded
	gathered   model.Gathered
	local      model.LocalGrid
}

// plan accumulates kernels into barrier-delimited stages.
type plan struct {
	stages [][]*kernel.Kernel
}

func (p *plan) stage(ks ...*kernel.Kernel) {
	p.stages = append(p.stages, ks)
}

func (p *plan) appendToStage(ks ...*kernel.Kernel) {
	if len(p.stages) == 0 {
		p.stages = append(p.stages, nil)
	}
	last := len(p.stages) - 1
	p.stages[last] = append(p.stages[last], ks...)
}

// add places kernels according to the barrier mode: Global = every kernel
// its own stage; Stage = this op's kernels together in a fresh stage;
// None = everything in one stage.
func (p *plan) add(mode BarrierMode, ks ...*kernel.Kernel) {
	switch mode {
	case BarrierGlobal:
		for _, k := range ks {
			p.stage(k)
		}
	case BarrierStage:
		p.stage(ks...)
	case BarrierNone:
		p.appendToStage(ks...)
	}
}

// lower translates one operator under the spec, mutating the state and
// appending kernels to the plan.
func lower(b *model.Builder, spec Spec, op model.OpSpec, st *actState, p *plan) {
	P := b.P
	switch op.Kind {
	case model.OpLN, model.OpElemwise:
		lowerRowOp(b, spec, op, st, p)

	case model.OpColGEMM:
		lowerColGEMM(b, spec, op, st, p)

	case model.OpRowGEMM:
		lowerRowGEMM(b, spec, op, st, p)

	case model.OpAttention:
		headsLocal := op.Heads / P
		if headsLocal < 1 {
			headsLocal = 1
		}
		if st.kind != stateLocal {
			panic(fmt.Sprintf("strategy: attention %q needs a local QKV grid, have state %d", op.Name, st.kind))
		}
		tokens := op.Batch * op.Seq
		out := b.NewLocalGrid(tokens, headsLocal*op.HeadDim)
		k := b.Attention(op.Name, op.Batch, headsLocal, op.Seq, op.HeadDim, op.ComputeScale(), st.local, out)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateLocal, local: out}

	default:
		panic(fmt.Sprintf("strategy: unknown op kind %v", op.Kind))
	}
}

// lowerRowOp handles LN and elementwise ops in whatever representation the
// activation currently has.
func lowerRowOp(b *model.Builder, spec Spec, op model.OpSpec, st *actState, p *plan) {
	kind := kernel.KindLN
	if op.Kind == model.OpElemwise {
		kind = kernel.KindElemwise
	}
	switch st.kind {
	case stateLocal:
		// Elementwise on a column-parallel shard (GeLU).
		local := st.local
		out := b.NewLocalGrid(op.Rows, local.NTiles*model.TileN)
		k := b.LocalRowOp(op.Name, op.Rows, local.NTiles*model.TileN,
			func(g, mi, ni int) []kernel.Tile { return b.Tile1(local.Tile(mi, ni, g)) }, out)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateLocal, local: out}

	case stateParts:
		// Sharded row op over freshly reduced blocks (SP).
		parts := st.parts
		out := b.NewSharded(op.Rows)
		k := b.ShardedRowOp(op.Name, kind, op.Rows, op.Cols,
			func(g, mi, _ int) []kernel.Tile { return b.RowTiles(parts, mi, 0) }, out)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateSharded, sharded: out}

	case stateSharded:
		src := st.sharded
		out := b.NewSharded(op.Rows)
		k := b.ShardedRowOp(op.Name, kind, op.Rows, op.Cols,
			func(g, mi, _ int) []kernel.Tile { return b.Tile1(src.Tile(mi)) }, out)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateSharded, sharded: out}

	case stateGathered:
		src := st.gathered
		out := b.NewGathered(op.Rows)
		k := b.ReplicatedRowOp(op.Name, kind, op.Rows, op.Cols,
			func(g, mi, _ int) []kernel.Tile { return b.Tile1(src.Tile(mi, g)) }, out)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateGathered, gathered: out}

	case stateReducedCopies:
		copies := st.local
		out := b.NewGathered(op.Rows)
		k := b.ReplicatedRowOp(op.Name, kind, op.Rows, op.Cols,
			func(g, mi, _ int) []kernel.Tile { return b.RowTiles(copies, mi, g) }, out)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateGathered, gathered: out}

	default:
		panic(fmt.Sprintf("strategy: row op %q with no activation state", op.Name))
	}
}

// lowerColGEMM handles the AllGather + column-parallel GEMM boundary.
func lowerColGEMM(b *model.Builder, spec Spec, op model.OpSpec, st *actState, p *plan) {
	P := b.P
	nLocal := op.N / P
	if nLocal < model.TileN {
		nLocal = model.TileN
	}
	out := b.NewLocalGrid(op.M, nLocal)
	scale := op.ComputeScale()

	switch spec.Gather {
	case AGNone:
		if st.kind != stateGathered {
			panic(fmt.Sprintf("strategy: %q needs replicated input under Basic TP", op.Name))
		}
		src := st.gathered
		k := b.GEMM(op.Name, op.M, nLocal, op.K, scale,
			func(g, mi, ni int) []kernel.Tile { return b.Tile1(src.Tile(mi, g)) }, out)
		p.add(spec.Barrier, k)

	case AGNVLS, AGRing, AGP2PPush:
		src := needSharded(st, op.Name)
		copies := b.NewGathered(op.M)
		in := func(g, mi, _ int) []kernel.Tile { return b.Tile1(src.Tile(mi)) }
		var ag *kernel.Kernel
		switch spec.Gather {
		case AGNVLS:
			ag = b.NVLSAllGather("ag."+op.Name, src, op.K, in, copies)
		case AGRing:
			ag = b.RingAllGather("ag."+op.Name, src, op.K, in, copies)
		case AGP2PPush:
			ag = b.P2PAllGather("ag."+op.Name, src, op.K, in, copies)
		default:
			panic("strategy: unreachable gather impl inside AGNVLS/AGRing/AGP2PPush case")
		}
		gemm := b.GEMM(op.Name, op.M, nLocal, op.K, scale,
			func(g, mi, ni int) []kernel.Tile { return b.Tile1(copies.Tile(mi, g)) }, out)
		// Stage mode keeps the gather and its consumer together for
		// fine-grained AG-GEMM overlap (T3's extension); Global mode
		// splits them (p.add handles both).
		p.add(spec.Barrier, ag, gemm)

	case AGFusedCAIS:
		src := needSharded(st, op.Name)
		k := b.FusedAGGEMM(op.Name, src, op.M, nLocal, op.K, scale,
			model.GatherCAIS, spec.coordination(), out)
		p.add(spec.Barrier, k)

	case AGPerTB:
		src := needSharded(st, op.Name)
		k := b.FusedAGGEMM(op.Name, src, op.M, nLocal, op.K, scale,
			model.GatherPerTB, model.Coordination{}, out)
		p.add(spec.Barrier, k)
	}
	*st = actState{kind: stateLocal, local: out}
}

// lowerRowGEMM handles the row-parallel GEMM + reduction boundary.
func lowerRowGEMM(b *model.Builder, spec Spec, op model.OpSpec, st *actState, p *plan) {
	P := b.P
	kLocal := op.K / P
	if kLocal < 1 {
		kLocal = op.K
	}
	if st.kind != stateLocal {
		panic(fmt.Sprintf("strategy: row GEMM %q needs a local input grid, have state %d", op.Name, st.kind))
	}
	input := st.local
	in := func(g, mi, ni int) []kernel.Tile { return b.RowTiles(input, mi, g) }
	scale := op.ComputeScale()

	switch spec.Reduce {
	case RedARNVLS, RedARRing:
		partial := b.NewLocalGrid(op.M, op.N)
		gemm := b.GEMM(op.Name, op.M, op.N, kLocal, scale, in, partial)
		copies := b.NewLocalGrid(op.M, op.N)
		commIn := func(g, mi, ni int) []kernel.Tile { return b.Tile1(partial.Tile(mi, ni, g)) }
		build := func(name string, cin model.InTiles) *kernel.Kernel {
			if spec.Reduce == RedARNVLS {
				return b.NVLSAllReduce(name, op.M, op.N, cin, copies)
			}
			return b.RingAllReduce(name, op.M, op.N, cin, copies)
		}
		if spec.Chunks > 1 {
			comms := chunkedComms(b, spec, op, partial, build)
			p.add(spec.Barrier, append([]*kernel.Kernel{gemm}, comms...)...)
		} else {
			ar := build("ar."+op.Name, commIn)
			p.add(spec.Barrier, gemm, ar)
		}
		*st = actState{kind: stateReducedCopies, local: copies}

	case RedRSNVLSPull, RedRSRing:
		partial := b.NewLocalGrid(op.M, op.N)
		gemm := b.GEMM(op.Name, op.M, op.N, kLocal, scale, in, partial)
		red := b.NewSharded(op.M)
		parts := b.NewParts(op.M, op.N)
		var rs *kernel.Kernel
		if spec.Reduce == RedRSNVLSPull {
			commIn := func(g, mi, ni int) []kernel.Tile {
				// The pull fans reads to every GPU's replica: all partials
				// of this tile must be in place (interned: the set is the
				// same for every requesting GPU and iteration).
				return b.PeerTiles(partial, mi, ni)
			}
			rs = b.NVLSReduceScatter("rs."+op.Name, op.M, op.N, commIn, red, parts)
		} else {
			commIn := func(g, mi, ni int) []kernel.Tile {
				return b.Tile1(partial.Tile(mi, ni, g))
			}
			rs = b.RingReduceScatter("rs."+op.Name, op.M, op.N, commIn, red, parts)
		}
		p.add(spec.Barrier, gemm, rs)
		*st = actState{kind: stateParts, parts: parts, partsOwner: red}

	case RedARFusedCAIS:
		copies := b.NewLocalGrid(op.M, op.N)
		k := b.FusedGEMMAR(op.Name, op.M, op.N, kLocal, scale, in, spec.coordination(), copies)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateReducedCopies, local: copies}

	case RedRSFusedCAIS, RedRSFusedStore, RedRSFusedNVLSPush:
		red := b.NewSharded(op.M)
		parts := b.NewParts(op.M, op.N)
		mode := model.ReduceCAIS
		switch spec.Reduce {
		case RedRSFusedStore:
			mode = model.ReduceP2PStore
		case RedRSFusedNVLSPush:
			mode = model.ReduceNVLSPush
		default:
			// RedRSFusedCAIS keeps ReduceCAIS.
		}
		k := b.FusedGEMMRS(op.Name, op.M, op.N, kLocal, scale, in,
			mode, spec.coordination(), red, parts)
		p.add(spec.Barrier, k)
		*st = actState{kind: stateParts, parts: parts, partsOwner: red}
	}
}

// chunkedComms builds the software-pipelined collective of CoCoNet /
// FuseLib: a gate kernel publishes per-chunk completion; the collective is
// split into per-chunk kernels (CoCoNet) or kept as one kernel whose TBs
// are gated per chunk (FuseLib).
func chunkedComms(b *model.Builder, spec Spec, op model.OpSpec,
	partial model.LocalGrid, build func(string, model.InTiles) *kernel.Kernel) []*kernel.Kernel {

	C := spec.Chunks
	mT := model.MTiles(op.M)
	chunkOf := func(mi int) int {
		c := mi * C / mT
		if c >= C {
			c = C - 1
		}
		return c
	}
	// Gate inputs intern per (gpu, chunk): the set is identical on every
	// Work re-evaluation, so one immutable slice serves them all.
	gateIn := make(map[[2]int][]kernel.Tile)
	gate, gateTile := b.GateKernel("gate."+op.Name, C, func(g, c int) []kernel.Tile {
		key := [2]int{g, c}
		if tiles, ok := gateIn[key]; ok {
			return tiles
		}
		var tiles []kernel.Tile
		for mi := 0; mi < mT; mi++ {
			if chunkOf(mi) != c {
				continue
			}
			tiles = append(tiles, b.RowTiles(partial, mi, g)...)
		}
		gateIn[key] = tiles
		return tiles
	})
	out := []*kernel.Kernel{gate}
	if spec.FusedComm {
		k := build("ar."+op.Name, func(g, mi, ni int) []kernel.Tile {
			return b.Tile1(gateTile(chunkOf(mi), g))
		})
		return append(out, k)
	}
	for c := 0; c < C; c++ {
		c := c
		k := build(fmt.Sprintf("ar.%s.c%d", op.Name, c), func(g, mi, ni int) []kernel.Tile {
			if chunkOf(mi) != c {
				return nil
			}
			return b.Tile1(gateTile(c, g))
		})
		out = append(out, chunkFiltered(k, chunkOf, c, model.NTiles(op.N), model.MTiles(op.M)*model.NTiles(op.N)))
	}
	return out
}

// chunkFiltered wraps a collective kernel so TBs outside the chunk are
// no-ops (they neither move data nor publish tiles). tiles is the number
// of data tiles per phase (ring AllReduce grids have two phases).
func chunkFiltered(k *kernel.Kernel, chunkOf func(mi int) int, c, nT, tiles int) *kernel.Kernel {
	orig := k.Work
	k.Work = func(g, tb int) kernel.TBDesc {
		mi := (tb % tiles) / nT
		if chunkOf(mi) != c {
			return kernel.TBDesc{Group: -1}
		}
		return orig(g, tb)
	}
	return k
}

func needSharded(st *actState, name string) model.Sharded {
	if st.kind != stateSharded {
		panic(fmt.Sprintf("strategy: %q needs a sharded input under SP, have state %d", name, st.kind))
	}
	return st.sharded
}

// initialState publishes the chain's input activation and returns the
// starting lowering state.
func initialState(b *model.Builder, spec Spec, tokens int) actState {
	switch spec.Layout {
	case SeqParallel:
		x := b.NewSharded(tokens)
		var tiles []kernel.Tile
		for mi := 0; mi < x.MTiles; mi++ {
			tiles = append(tiles, x.Tile(mi))
		}
		b.M.PublishTiles(tiles)
		return actState{kind: stateSharded, sharded: x}
	default:
		x := b.NewGathered(tokens)
		var tiles []kernel.Tile
		for mi := 0; mi < x.MTiles; mi++ {
			for g := 0; g < b.P; g++ {
				tiles = append(tiles, x.Tile(mi, g))
			}
		}
		b.M.PublishTiles(tiles)
		return actState{kind: stateGathered, gathered: x}
	}
}

// publishLocalGrid publishes a whole per-GPU grid (workload inputs).
func publishLocalGrid(b *model.Builder, grid model.LocalGrid) {
	var tiles []kernel.Tile
	for mi := 0; mi < grid.MTiles; mi++ {
		for ni := 0; ni < grid.NTiles; ni++ {
			for g := 0; g < grid.P; g++ {
				tiles = append(tiles, grid.Tile(mi, ni, g))
			}
		}
	}
	b.M.PublishTiles(tiles)
}

// execute runs the plan's stages and returns the completion time.
func execute(m *machine.Machine, p *plan) (sim.Time, error) {
	var doneAt sim.Time
	completed := false
	m.Eng.At(0, func() {
		var step func(i int)
		step = func(i int) {
			if i >= len(p.stages) {
				completed = true
				doneAt = m.Eng.Now()
				return
			}
			m.LaunchAll(p.stages[i], func() { step(i + 1) })
		}
		step(0)
	})
	m.Run()
	if !completed {
		if err := m.CheckQuiescent(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("strategy: plan did not complete")
	}
	return doneAt, nil
}

// DefaultStepLimit is the runaway-simulation guard applied when
// Options.StepLimit is zero. Exported so the memo layer can resolve the
// default before hashing (zero and explicit default must key identically).
const DefaultStepLimit uint64 = 2_000_000_000

func newMachine(hw config.Hardware, spec Spec, opts Options) *machine.Machine {
	eng := sim.NewEngine()
	limit := opts.StepLimit
	if limit == 0 {
		limit = DefaultStepLimit
	}
	eng.SetStepLimit(limit)
	if opts.Progress != nil && opts.ProgressEvery > 0 {
		eng.SetProgress(opts.ProgressEvery, opts.Progress)
	}
	if opts.NoMergeTimeout {
		hw.MergeTimeout = 0
	}
	return machine.New(eng, hw, machine.Options{
		TrafficControl:      spec.TrafficControl,
		UnlimitedMergeTable: opts.UnlimitedMergeTable,
		MergeTableBytes:     opts.MergeTableBytes,
		Eviction:            opts.Eviction,
		NoControlSideband:   opts.NoControlSideband,
		Tracer:              opts.Tracer,
		Faults:              opts.Faults,
	})
}

// observers resolves the declarative observability knobs. The internal
// tracer must exist before machine assembly (GPU trace thread ids are
// assigned at construction), so callers invoke this on the options copy
// before newMachine and attach the returned recorder right after.
func observers(hw config.Hardware, opts *Options) *metrics.UtilSeries {
	if opts.Attrib && opts.Tracer == nil {
		opts.Tracer = trace.New()
	}
	if opts.UtilBin > 0 {
		return metrics.NewUtilSeries(opts.UtilBin, 2*hw.NumGPUs*hw.NumSwitchPlanes)
	}
	return nil
}

func finish(spec Spec, m *machine.Machine, doneAt sim.Time, opts Options, rec *metrics.UtilSeries) Result {
	res := Result{
		Strategy:  spec.Name,
		Elapsed:   doneAt,
		Stats:     m.SwitchStats(),
		AvgUtil:   m.AvgLinkUtilization(doneAt),
		MergeHWM:  m.MergeTableHighWater(),
		Machine:   m,
		Telemetry: m.Metrics().Snapshot(),
	}
	if rec != nil {
		res.Timeline = rec.Timeline()
	}
	if opts.Attrib {
		res.Attrib = attrib.Build(m, opts.Tracer, doneAt)
	}
	return res
}

// RunSubLayer executes one of the paper's communication-intensive
// sub-layers (row-GEMM -> LN -> col-GEMM, Fig. 12) under the strategy.
func RunSubLayer(hw config.Hardware, spec Spec, sub model.SubLayer, opts Options) (Result, error) {
	rec := observers(hw, &opts)
	m := newMachine(hw, spec, opts)
	if rec != nil {
		m.AttachRecorder(rec)
	}
	if opts.Configure != nil {
		opts.Configure(m)
	}
	b := model.NewBuilder(m)
	p := &plan{}

	// The row GEMM's input: the preceding column-parallel activation.
	kLocal := sub.RowGEMM.K / b.P
	if kLocal < model.TileN {
		kLocal = model.TileN
	}
	input := b.NewLocalGrid(sub.RowGEMM.M, kLocal)
	publishLocalGrid(b, input)
	st := actState{kind: stateLocal, local: input}

	lower(b, spec, sub.RowGEMM, &st, p)
	lower(b, spec, sub.LN, &st, p)
	lower(b, spec, sub.ColGEMM, &st, p)

	doneAt, err := execute(m, p)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%s: %w", spec.Name, sub.ID, err)
	}
	return finish(spec, m, doneAt, opts, rec), nil
}

// RunLayers executes n transformer layers (forward, plus backward when
// training) under the strategy and returns the elapsed time for that
// chain. Callers scale per-layer time to the full model depth.
func RunLayers(hw config.Hardware, spec Spec, cfg config.Model, training bool, layers int) (Result, error) {
	return RunLayersOpts(hw, spec, cfg, training, layers, Options{})
}

// RunLayersOpts is RunLayers with experiment knobs.
func RunLayersOpts(hw config.Hardware, spec Spec, cfg config.Model, training bool, layers int, opts Options) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	rec := observers(hw, &opts)
	m := newMachine(hw, spec, opts)
	if rec != nil {
		m.AttachRecorder(rec)
	}
	if opts.Configure != nil {
		opts.Configure(m)
	}
	b := model.NewBuilder(m)
	p := &plan{}
	st := initialState(b, spec, cfg.Tokens())

	phases := []model.Phase{model.Forward}
	if training {
		phases = append(phases, model.Backward)
	}
	for _, phase := range phases {
		for layer := 0; layer < layers; layer++ {
			for _, op := range model.LayerOps(cfg, phase) {
				op.Name = fmt.Sprintf("%s.l%d.%s", phase, layer, op.Name)
				lower(b, spec, op, &st, p)
			}
		}
	}

	doneAt, err := execute(m, p)
	if err != nil {
		return Result{}, fmt.Errorf("%s/%s: %w", spec.Name, cfg.Name, err)
	}
	return finish(spec, m, doneAt, opts, rec), nil
}

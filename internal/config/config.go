// Package config holds the hardware and workload configuration of the CAIS
// reproduction: the simulated DGX-H100 system parameters (Section IV-A of
// the paper) and the Table I LLM settings.
package config

import (
	"fmt"

	"cais/internal/sim"
)

// Hardware describes the simulated multi-GPU system. Defaults follow the
// paper's methodology: an 8-GPU DGX-H100 with four NVSwitch planes, 900 GB/s
// bidirectional (450 GB/s per direction) NVLink per GPU, 250 ns one-way
// GPU<->switch latency, 40 KB per-port merge tables, and the half-scale SM
// count (66) used for the scaled-down LLM variants.
type Hardware struct {
	// Topology.
	NumGPUs         int // GPUs participating in tensor parallelism
	NumSwitchPlanes int // parallel NVSwitch planes (DGX-H100: 4)

	// GPU compute.
	SMsPerGPU    int     // streaming multiprocessors per GPU
	SMFLOPs      float64 // dense BF16 FLOP/s per SM
	HBMBandwidth float64 // bytes/s of local memory bandwidth per GPU

	// Interconnect. LinkBandwidth is the per-GPU aggregate per direction;
	// each of the NumSwitchPlanes planes carries an equal share.
	// LinkEfficiency is the achievable fraction of wire bandwidth beyond
	// what packet queueing models (protocol, flow control, NCCL/NVLS
	// pipeline inefficiency); it is calibrated so the simulated
	// communication:computation ratio matches the paper's measurement
	// (~1.6:1 for LLaMA-7B on 8 GPUs, Fig. 2).
	LinkBandwidth  float64  // bytes/s per direction per GPU (wire rate)
	LinkEfficiency float64  // achievable fraction of wire rate
	LinkLatency    sim.Time // one-way GPU<->switch propagation
	SwitchLatency  sim.Time // switch-internal processing per packet

	// CAIS merge unit (per switch port).
	MergeTableBytes int64    // capacity of the merging table in bytes
	MergeTimeout    sim.Time // forward-progress eviction timeout

	// Traffic control.
	NumVirtualChannels int // VCs per input port when traffic control is on

	// Simulation granularity: communication is modeled as requests of
	// RequestBytes each (DESIGN.md §1). Smaller values increase fidelity
	// of the queueing/merging microstudies at higher event cost.
	RequestBytes int64

	// Execution-noise calibration (DESIGN.md §1): these reproduce the
	// uncoordinated inter-GPU request skew the paper measures (~35 us).
	KernelLaunchOverhead sim.Time // fixed per-kernel launch cost
	KernelLaunchJitter   sim.Time // uniform [0, J) extra per (gpu,kernel)
	TBTimeNoise          float64  // fractional per-TB execution-time noise

	// TBOverhead is the fixed dispatch/drain cost per thread block.
	TBOverhead sim.Time

	// ThrottleWindowBytes bounds a GPU's outstanding mergeable request
	// bytes when TB-aware request throttling is enabled (Sec. III-B-2).
	ThrottleWindowBytes int64

	// CommSMs is the number of SMs a dedicated communication kernel
	// occupies (NCCL-style channel count).
	CommSMs int

	// Data type width in bytes (BF16 = 2).
	ElemBytes int

	// Seed for all deterministic pseudo-randomness.
	Seed uint64
}

// DGXH100 returns the paper's simulated system: 8 H100 GPUs at half SM
// count (66), four NVSwitch planes, 450 GB/s per direction per GPU.
func DGXH100() Hardware {
	return Hardware{
		NumGPUs:         8,
		NumSwitchPlanes: 4,
		SMsPerGPU:       66,
		// H100 SXM BF16 tensor-core peak ~ 990 TFLOPS over 132 SMs;
		// the paper's CUTLASS kernels run near peak on the simulator.
		SMFLOPs:      7.5e12,
		HBMBandwidth: 3.35e12, // 3.35 TB/s
		// 900 GB/s bidirectional = 450 GB/s per direction wire rate.
		LinkBandwidth:        450e9,
		LinkEfficiency:       0.45,
		LinkLatency:          250 * sim.Nanosecond,
		SwitchLatency:        50 * sim.Nanosecond,
		MergeTableBytes:      40 << 10, // 40 KB per port
		MergeTimeout:         8 * sim.Microsecond,
		NumVirtualChannels:   2,
		RequestBytes:         8 << 10,
		KernelLaunchOverhead: 2 * sim.Microsecond,
		KernelLaunchJitter:   30 * sim.Microsecond,
		TBTimeNoise:          0.08,
		TBOverhead:           300 * sim.Nanosecond,
		// The paper's Sec. V-C-2 bound: system-wide merge footprint is
		// bounded by one GPU's outstanding requests = 1280 KB (40 KB per
		// switch port across 32 ports).
		// The paper's Sec. V-C-2 footprint bound: outstanding mergeable
		// bytes per GPU (1280 KB system-wide = 40 KB x 32 ports). The
		// throttle's primary mechanism is uplink-rate pacing; this bound
		// is the backstop.
		ThrottleWindowBytes: 1280 << 10,
		CommSMs:             16,
		ElemBytes:           2,
		Seed:                0xCA15,
	}
}

// FullScaleH100 returns the full-scale configuration used by the Table II
// scaled-down validation: 132 SMs.
func FullScaleH100() Hardware {
	h := DGXH100()
	h.SMsPerGPU = 132
	return h
}

// Validate reports configuration errors that would make a simulation
// meaningless (zero GPUs, non-positive bandwidths, and similar).
func (h Hardware) Validate() error {
	switch {
	case h.NumGPUs < 1:
		return fmt.Errorf("config: NumGPUs = %d, need >= 1", h.NumGPUs)
	case h.NumSwitchPlanes < 1:
		return fmt.Errorf("config: NumSwitchPlanes = %d, need >= 1", h.NumSwitchPlanes)
	case h.SMsPerGPU < 1:
		return fmt.Errorf("config: SMsPerGPU = %d, need >= 1", h.SMsPerGPU)
	case h.SMFLOPs <= 0:
		return fmt.Errorf("config: SMFLOPs = %g, need > 0", h.SMFLOPs)
	case h.HBMBandwidth <= 0:
		return fmt.Errorf("config: HBMBandwidth = %g, need > 0", h.HBMBandwidth)
	case h.LinkBandwidth <= 0:
		return fmt.Errorf("config: LinkBandwidth = %g, need > 0", h.LinkBandwidth)
	case h.LinkLatency < 0:
		return fmt.Errorf("config: negative LinkLatency")
	case h.MergeTableBytes < 0:
		return fmt.Errorf("config: negative MergeTableBytes")
	case h.RequestBytes < 1:
		return fmt.Errorf("config: RequestBytes = %d, need >= 1", h.RequestBytes)
	case h.ElemBytes < 1:
		return fmt.Errorf("config: ElemBytes = %d, need >= 1", h.ElemBytes)
	case h.NumVirtualChannels < 1:
		return fmt.Errorf("config: NumVirtualChannels = %d, need >= 1", h.NumVirtualChannels)
	}
	return nil
}

// PlaneBandwidth is the effective per-direction bandwidth of one switch
// plane's link to one GPU.
func (h Hardware) PlaneBandwidth() float64 {
	eff := h.LinkEfficiency
	if eff <= 0 || eff > 1 {
		eff = 1
	}
	return h.LinkBandwidth * eff / float64(h.NumSwitchPlanes)
}

// GPUFLOPs is the total dense FLOP/s of one GPU.
func (h Hardware) GPUFLOPs() float64 {
	return h.SMFLOPs * float64(h.SMsPerGPU)
}

// Model is one LLM configuration from Table I. Layer counts are not in the
// table; they follow the public model definitions (LLaMA-7B: 32) and the
// Megatron-GPT family sizing for the Mega-GPT variants, and only scale
// absolute runtime, not speedup ratios (layers are homogeneous).
type Model struct {
	Name      string
	Hidden    int // hidden size
	FFNHidden int // FFN intermediate size
	Heads     int // attention heads
	SeqLen    int // sequence length
	Batch     int // batch size
	Layers    int // transformer layers
}

// MegaGPT4B is Table I row 1.
func MegaGPT4B() Model {
	return Model{Name: "Mega-GPT-4B", Hidden: 2048, FFNHidden: 8192, Heads: 24, SeqLen: 1024, Batch: 16, Layers: 24}
}

// MegaGPT8B is Table I row 2.
func MegaGPT8B() Model {
	return Model{Name: "Mega-GPT-8B", Hidden: 3072, FFNHidden: 12288, Heads: 32, SeqLen: 1024, Batch: 12, Layers: 32}
}

// LLaMA7B is Table I row 3.
func LLaMA7B() Model {
	return Model{Name: "LLaMA-7B", Hidden: 4096, FFNHidden: 11264, Heads: 32, SeqLen: 3072, Batch: 3, Layers: 32}
}

// TableIModels returns the three evaluation models in paper order.
func TableIModels() []Model {
	return []Model{MegaGPT4B(), MegaGPT8B(), LLaMA7B()}
}

// Validate reports model configuration errors.
func (m Model) Validate() error {
	if m.Hidden < 1 || m.FFNHidden < 1 || m.Heads < 1 || m.SeqLen < 1 || m.Batch < 1 || m.Layers < 1 {
		return fmt.Errorf("config: model %q has non-positive dimension: %+v", m.Name, m)
	}
	return nil
}

// Tokens is the number of tokens processed per step (batch * seqlen).
func (m Model) Tokens() int { return m.Batch * m.SeqLen }

// HeadDim is the per-head dimension (rounded down; Table I's Mega-GPT-4B
// pairs hidden 2048 with 24 heads).
func (m Model) HeadDim() int {
	d := m.Hidden / m.Heads
	if d < 1 {
		d = 1
	}
	return d
}

// Scale returns a copy with the key matrix dimensions multiplied by f
// (Section IV-B / Table II scaled-down methodology). Head count scales with
// hidden so head dimension stays constant.
func (m Model) Scale(f float64) Model {
	s := m
	s.Hidden = roundMult(int(float64(m.Hidden)*f), 64)
	s.FFNHidden = roundMult(int(float64(m.FFNHidden)*f), 64)
	s.Heads = max(1, int(float64(m.Heads)*f))
	for s.Hidden%s.Heads != 0 {
		s.Heads--
	}
	s.Name = fmt.Sprintf("%s-x%.2g", m.Name, f)
	return s
}

func roundMult(v, m int) int {
	if v < m {
		return m
	}
	return (v + m/2) / m * m
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

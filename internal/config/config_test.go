package config

import (
	"testing"
	"testing/quick"

	"cais/internal/sim"
)

func TestDGXH100IsValid(t *testing.T) {
	if err := DGXH100().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := FullScaleH100().Validate(); err != nil {
		t.Fatal(err)
	}
	if FullScaleH100().SMsPerGPU != 2*DGXH100().SMsPerGPU {
		t.Fatal("full scale must double the SM count")
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	break1 := []func(*Hardware){
		func(h *Hardware) { h.NumGPUs = 0 },
		func(h *Hardware) { h.NumSwitchPlanes = 0 },
		func(h *Hardware) { h.SMsPerGPU = 0 },
		func(h *Hardware) { h.SMFLOPs = 0 },
		func(h *Hardware) { h.HBMBandwidth = -1 },
		func(h *Hardware) { h.LinkBandwidth = 0 },
		func(h *Hardware) { h.LinkLatency = -1 },
		func(h *Hardware) { h.MergeTableBytes = -1 },
		func(h *Hardware) { h.RequestBytes = 0 },
		func(h *Hardware) { h.ElemBytes = 0 },
		func(h *Hardware) { h.NumVirtualChannels = 0 },
	}
	for i, breakIt := range break1 {
		h := DGXH100()
		breakIt(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("broken config %d accepted", i)
		}
	}
}

func TestPlaneBandwidthAppliesEfficiency(t *testing.T) {
	h := DGXH100()
	want := h.LinkBandwidth * h.LinkEfficiency / float64(h.NumSwitchPlanes)
	if got := h.PlaneBandwidth(); got != want {
		t.Fatalf("plane bw = %g, want %g", got, want)
	}
	h.LinkEfficiency = 0 // disabled -> wire rate
	if got := h.PlaneBandwidth(); got != h.LinkBandwidth/float64(h.NumSwitchPlanes) {
		t.Fatalf("zero efficiency should mean wire rate, got %g", got)
	}
	if DGXH100().GPUFLOPs() != DGXH100().SMFLOPs*float64(DGXH100().SMsPerGPU) {
		t.Fatal("GPUFLOPs wrong")
	}
}

func TestTableIModelsMatchPaper(t *testing.T) {
	ms := TableIModels()
	if len(ms) != 3 {
		t.Fatalf("models = %d", len(ms))
	}
	type row struct{ hidden, ffn, heads, seq, batch int }
	want := map[string]row{
		"Mega-GPT-4B": {2048, 8192, 24, 1024, 16},
		"Mega-GPT-8B": {3072, 12288, 32, 1024, 12},
		"LLaMA-7B":    {4096, 11264, 32, 3072, 3},
	}
	for _, m := range ms {
		w, ok := want[m.Name]
		if !ok {
			t.Fatalf("unexpected model %q", m.Name)
		}
		if m.Hidden != w.hidden || m.FFNHidden != w.ffn || m.Heads != w.heads ||
			m.SeqLen != w.seq || m.Batch != w.batch {
			t.Errorf("%s dims do not match Table I: %+v", m.Name, m)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s invalid: %v", m.Name, err)
		}
	}
}

func TestModelHelpers(t *testing.T) {
	m := LLaMA7B()
	if m.Tokens() != 3*3072 {
		t.Fatalf("tokens = %d", m.Tokens())
	}
	if m.HeadDim() != 128 {
		t.Fatalf("head dim = %d", m.HeadDim())
	}
	// Table I pairs Mega-GPT-4B's hidden 2048 with 24 heads (indivisible):
	// HeadDim rounds down and validation accepts it.
	if MegaGPT4B().HeadDim() != 2048/24 {
		t.Fatalf("Mega-GPT-4B head dim = %d", MegaGPT4B().HeadDim())
	}
	if err := MegaGPT4B().Validate(); err != nil {
		t.Fatalf("Table I config rejected: %v", err)
	}
	bad := m
	bad.Batch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch accepted")
	}
}

func TestModelScale(t *testing.T) {
	m := LLaMA7B()
	s := m.Scale(2)
	if s.Hidden != 2*m.Hidden || s.FFNHidden != 2*m.FFNHidden {
		t.Fatalf("scale 2: %+v", s)
	}
	if s.Hidden%s.Heads != 0 {
		t.Fatal("scaled heads must divide hidden")
	}
	f := func(factorPct uint8) bool {
		factor := 0.5 + float64(factorPct%64)/16 // 0.5 .. 4.4
		sc := m.Scale(factor)
		return sc.Hidden >= 64 && sc.Heads >= 1 && sc.Hidden%sc.Heads == 0 && sc.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeFieldsAreSane(t *testing.T) {
	h := DGXH100()
	if h.LinkLatency != 250*sim.Nanosecond {
		t.Fatalf("link latency = %v, want 250ns (Sec. IV-A)", h.LinkLatency)
	}
	if h.MergeTableBytes != 40<<10 {
		t.Fatalf("merge table = %d, want 40KB (Sec. IV-A)", h.MergeTableBytes)
	}
}

package model

import (
	"testing"
	"testing/quick"

	"cais/internal/config"
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/noc"
	"cais/internal/sim"
)

func testBuilder(t testing.TB) *Builder {
	t.Helper()
	hw := config.DGXH100()
	hw.NumGPUs = 4
	hw.NumSwitchPlanes = 2
	hw.RequestBytes = 8 << 10
	eng := sim.NewEngine()
	return NewBuilder(machine.New(eng, hw, machine.Options{}))
}

func TestTileHelpers(t *testing.T) {
	s := Sharded{Buf: 7, MTiles: 16, P: 4}
	// Block-cyclic ownership.
	for mi := 0; mi < 16; mi++ {
		if s.Owner(mi) != mi%4 {
			t.Fatalf("owner(%d) = %d, want %d", mi, s.Owner(mi), mi%4)
		}
	}
	if (Sharded{P: 1}).Owner(5) != 0 {
		t.Fatal("single-GPU owner must be 0")
	}
	g := Gathered{Buf: 8, MTiles: 16, P: 4}
	if g.Tile(3, 2) == g.Tile(3, 1) || g.Tile(3, 2) == g.Tile(2, 2) {
		t.Fatal("gathered tiles must be distinct per (block, gpu)")
	}
	l := LocalGrid{Buf: 9, MTiles: 4, NTiles: 3, P: 4}
	seen := map[kernel.Tile]bool{}
	for mi := 0; mi < 4; mi++ {
		for ni := 0; ni < 3; ni++ {
			for gpu := 0; gpu < 4; gpu++ {
				tl := l.Tile(mi, ni, gpu)
				if seen[tl] {
					t.Fatalf("duplicate tile %v", tl)
				}
				seen[tl] = true
			}
		}
	}
	if len(l.RowTiles(2, 1, nil)) != 3 {
		t.Fatal("RowTiles must span NTiles")
	}
}

func TestOwnershipBalancedProperty(t *testing.T) {
	f := func(mt uint8, p uint8) bool {
		P := int(p%8) + 1
		MT := int(mt) + P // at least one block per GPU
		s := Sharded{MTiles: MT, P: P}
		counts := make([]int, P)
		for mi := 0; mi < MT; mi++ {
			counts[s.Owner(mi)]++
		}
		min, max := counts[0], counts[0]
		for _, c := range counts {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max-min <= 1 // block-cyclic is maximally balanced
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayerOpsStructure(t *testing.T) {
	m := config.LLaMA7B()
	ops := LayerOps(m, Forward)
	if len(ops) != 10 {
		t.Fatalf("forward ops = %d, want 10", len(ops))
	}
	kinds := map[OpKind]int{}
	for _, op := range ops {
		kinds[op.Kind]++
	}
	if kinds[OpColGEMM] != 2 || kinds[OpRowGEMM] != 2 {
		t.Fatalf("GEMM boundary counts wrong: %v", kinds)
	}
	if kinds[OpLN] != 2 || kinds[OpAttention] != 1 {
		t.Fatalf("op mix wrong: %v", kinds)
	}
	bwd := LayerOps(m, Backward)
	if len(bwd) != 10 {
		t.Fatalf("backward ops = %d, want 10", len(bwd))
	}
	bk := map[OpKind]int{}
	for _, op := range bwd {
		bk[op.Kind]++
		if op.Kind == OpColGEMM || op.Kind == OpRowGEMM || op.Kind == OpAttention {
			if op.ComputeScale() != 2 {
				t.Fatalf("backward %s scale = %v, want 2 (dgrad+wgrad)", op.Name, op.ComputeScale())
			}
		}
	}
	if bk[OpColGEMM] != 2 || bk[OpRowGEMM] != 2 {
		t.Fatalf("backward GEMM boundary counts wrong: %v", bk)
	}
	// Mirrored communication: the backward pass starts from the gather
	// side (the forward RS point becomes a backward AG, Fig. 1b).
	firstGEMM := ""
	for _, op := range bwd {
		if op.Kind == OpColGEMM || op.Kind == OpRowGEMM {
			firstGEMM = op.Name
			break
		}
	}
	if firstGEMM != "ffn2-dgrad" {
		t.Fatalf("backward must start at the FFN2 dgrad gather, got %s", firstGEMM)
	}
}

func TestSubLayersMatchPaper(t *testing.T) {
	subs := SubLayers(config.LLaMA7B())
	if len(subs) != 4 {
		t.Fatalf("sub-layers = %d, want 4 (L1-L4)", len(subs))
	}
	for i, want := range []string{"L1", "L2", "L3", "L4"} {
		if subs[i].ID != want {
			t.Fatalf("sub-layer %d = %s, want %s", i, subs[i].ID, want)
		}
		if subs[i].RowGEMM.Kind != OpRowGEMM || subs[i].ColGEMM.Kind != OpColGEMM {
			t.Fatalf("%s: wrong pipeline structure", want)
		}
	}
	// Backward sub-layers carry the 2x compute scale.
	if subs[2].RowGEMM.ComputeScale() != 2 || subs[3].RowGEMM.ComputeScale() != 2 {
		t.Fatal("L3/L4 must be backward-scaled")
	}
}

func TestGEMMBuilderGrid(t *testing.T) {
	b := testBuilder(t)
	out := b.NewLocalGrid(512, 256)
	k := b.GEMM("g", 512, 256, 1024, 1, NoInputs, out)
	if k.Grid != MTiles(512)*NTiles(256) {
		t.Fatalf("grid = %d", k.Grid)
	}
	d := k.Work(0, 0)
	if d.Flops != 2*128*128*1024 {
		t.Fatalf("flops = %v", d.Flops)
	}
	if len(d.Out) != 1 {
		t.Fatal("GEMM TB must publish its tile")
	}
}

func TestFusedAGGEMMLoaderStructure(t *testing.T) {
	b := testBuilder(t)
	src := b.NewSharded(512)
	out := b.NewLocalGrid(512, 256)
	k := b.FusedAGGEMM("ag", src, 512, 256, 1024, 1, GatherCAIS, FullCoordination(), out)
	if !k.PreLaunchSync || !k.PreAccessSync || !k.Throttled {
		t.Fatal("coordination flags not set")
	}
	nT := NTiles(256)
	// Loader TB of a remote block issues ld.cais; compute TBs depend on
	// the local copy.
	var remoteLoader, localLoader kernel.TBDesc
	for mi := 0; mi < 4; mi++ {
		d := k.Work(1, mi*nT) // gpu 1
		if src.Owner(mi) == 1 {
			localLoader = d
		} else {
			remoteLoader = d
		}
	}
	if len(remoteLoader.Pre) != 1 || remoteLoader.Pre[0].Mode != noc.OpLdCAIS {
		t.Fatalf("remote loader access = %+v", remoteLoader.Pre)
	}
	if remoteLoader.Pre[0].Expected != b.P-1 {
		t.Fatalf("merge expected = %d, want P-1", remoteLoader.Pre[0].Expected)
	}
	if len(localLoader.Pre) != 1 || !localLoader.Pre[0].Local {
		t.Fatal("owner's loader must read locally")
	}
	compute := k.Work(1, 1) // ni=1
	if len(compute.Pre) != 0 || len(compute.In) != 1 {
		t.Fatalf("compute TB = %+v", compute)
	}
	// The compiler verdict is encoded in the kernel's pattern.
	if len(k.Patterns) != 1 || k.Patterns[0].Sem != kernel.SemRead {
		t.Fatal("missing symbolic pattern")
	}
}

func TestFusedAGGEMMPerTBMode(t *testing.T) {
	b := testBuilder(t)
	src := b.NewSharded(512)
	out := b.NewLocalGrid(512, 256)
	k := b.FusedAGGEMM("ladm", src, 512, 256, 1024, 1, GatherPerTB, Coordination{}, out)
	if k.PreLaunchSync || k.Throttled {
		t.Fatal("LADM mode must not be coordinated")
	}
	nT := NTiles(256)
	// Every TB fetches: addresses unique per (gpu, tb) so nothing merges.
	a0 := k.Work(1, 0*nT+1).Pre[0]
	a1 := k.Work(2, 0*nT+1).Pre[0]
	if a0.Addr == a1.Addr {
		t.Fatal("per-TB loads must not share addresses")
	}
	if a0.Mode != noc.OpLoad {
		t.Fatalf("mode = %v, want plain ld", a0.Mode)
	}
}

func TestFusedGEMMRSModes(t *testing.T) {
	b := testBuilder(t)
	for _, mode := range []ReduceMode{ReduceCAIS, ReduceP2PStore, ReduceNVLSPush} {
		red := b.NewSharded(512)
		parts := b.NewParts(512, 512)
		k := b.FusedGEMMRS("rs", 512, 512, 256, 1, NoInputs, mode, FullCoordination(), red, parts)
		nT := NTiles(512)
		var remote kernel.Access
		found := false
		for tb := 0; tb < k.Grid && !found; tb++ {
			d := k.Work(0, tb)
			if len(d.Post) == 1 && !d.Post[0].Local {
				remote = d.Post[0]
				found = true
			}
		}
		if !found {
			t.Fatalf("mode %v: no remote reduction found", mode)
		}
		want := map[ReduceMode]noc.Op{
			ReduceCAIS:     noc.OpRedCAIS,
			ReduceP2PStore: noc.OpStore,
			ReduceNVLSPush: noc.OpMultimemRed,
		}[mode]
		if remote.Mode != want {
			t.Fatalf("mode %v lowered to %v, want %v", mode, remote.Mode, want)
		}
		if remote.TileNeed != b.P {
			t.Fatalf("TileNeed = %d, want P", remote.TileNeed)
		}
		if k.Throttled != (mode == ReduceCAIS) {
			t.Fatalf("mode %v: throttling only applies to CAIS lowering", mode)
		}
		_ = nT
	}
}

func TestCommKernelShapes(t *testing.T) {
	b := testBuilder(t)
	src := b.NewSharded(512)
	copies := b.NewGathered(512)
	in := func(g, mi, ni int) []kernel.Tile { return nil }

	ag := b.NVLSAllGather("ag", src, 1024, in, copies)
	if ag.Kind != kernel.KindComm || ag.CommSMs != b.M.HW.CommSMs {
		t.Fatal("AG must be a comm kernel on CommSMs")
	}
	// The owner's TB pushes with multimem.st and publishes its own copy.
	ownerTB := ag.Work(src.Owner(0), 0)
	if len(ownerTB.Post) != 1 || ownerTB.Post[0].Mode != noc.OpMultimemST {
		t.Fatalf("owner AG TB = %+v", ownerTB.Post)
	}
	if ownerTB.Post[0].PublishEach.Buf == 0 {
		t.Fatal("multicast must publish per receiver")
	}
	// Non-owners do nothing.
	other := ag.Work((src.Owner(0)+1)%b.P, 0)
	if len(other.Post) != 0 {
		t.Fatal("non-owner AG TB must be empty")
	}

	red := b.NewSharded(512)
	parts := b.NewParts(512, 512)
	rs := b.NVLSReduceScatter("rs", 512, 512, in, red, parts)
	ownerRS := rs.Work(red.Owner(0), 0)
	if len(ownerRS.Pre) != 1 || ownerRS.Pre[0].Mode != noc.OpMultimemLdReduce {
		t.Fatalf("owner RS TB = %+v", ownerRS.Pre)
	}

	outAR := b.NewLocalGrid(512, 512)
	ar := b.NVLSAllReduce("ar", 512, 512, in, outAR)
	tb := ar.Work(2, 5)
	if len(tb.Post) != 1 || tb.Post[0].Mode != noc.OpMultimemRed {
		t.Fatalf("AR TB = %+v", tb.Post)
	}
	if tb.Post[0].Home != -1 {
		t.Fatal("AR push must broadcast (Home -1)")
	}
}

func TestRingKernelsHopStructure(t *testing.T) {
	b := testBuilder(t)
	src := b.NewSharded(512)
	copies := b.NewGathered(512)
	in := func(g, mi, ni int) []kernel.Tile { return nil }
	ag := b.RingAllGather("ring-ag", src, 1024, in, copies)
	// Owner forwards its block to the next GPU; the GPU before the owner
	// does not forward (the ring ends there).
	owner := src.Owner(0)
	ownerTB := ag.Work(owner, 0)
	if len(ownerTB.Post) != 1 || ownerTB.Post[0].Home != (owner+1)%b.P {
		t.Fatalf("owner must forward to the next GPU: %+v", ownerTB.Post)
	}
	last := (owner - 1 + b.P) % b.P
	if lastTB := ag.Work(last, 0); len(lastTB.Post) != 0 {
		t.Fatal("the GPU before the owner must not forward")
	}

	outAR := b.NewLocalGrid(256, 256)
	ar := b.RingAllReduce("ring-ar", 256, 256, in, outAR)
	if ar.Grid != 2*MTiles(256)*NTiles(256) {
		t.Fatalf("ring AR grid = %d, want two phases", ar.Grid)
	}
}

func TestGateKernel(t *testing.T) {
	b := testBuilder(t)
	k, gate := b.GateKernel("gate", 4, func(g, c int) []kernel.Tile {
		return []kernel.Tile{{Buf: 1, Idx: c}}
	})
	if k.Grid != 4 {
		t.Fatalf("grid = %d", k.Grid)
	}
	d := k.Work(2, 3)
	if len(d.In) != 1 || len(d.Out) != 1 || d.Out[0] != gate(3, 2) {
		t.Fatalf("gate TB = %+v", d)
	}
}

func TestMNTiles(t *testing.T) {
	if MTiles(128) != 1 || MTiles(129) != 2 || NTiles(4096) != 32 {
		t.Fatal("tile math wrong")
	}
	if CommVolume(9216, 4096, 2) != int64(9216)*4096*2 {
		t.Fatal("comm volume wrong")
	}
}

func singleGPUBuilder(t *testing.T) *Builder {
	t.Helper()
	hw := config.DGXH100()
	hw.NumGPUs = 1
	hw.NumSwitchPlanes = 1
	hw.RequestBytes = 8 << 10
	eng := sim.NewEngine()
	return NewBuilder(machine.New(eng, hw, machine.Options{}))
}

func TestCollectivesDegenerateAtP1(t *testing.T) {
	// With one GPU every collective becomes a local republish: no remote
	// accesses at all.
	b := singleGPUBuilder(t)
	in := func(g, mi, ni int) []kernel.Tile { return nil }
	src := b.NewSharded(256)
	copies := b.NewGathered(256)
	parts := b.NewParts(256, 256)
	outAR := b.NewLocalGrid(256, 256)
	kernels := []*kernel.Kernel{
		b.NVLSAllGather("ag", src, 256, in, copies),
		b.RingAllGather("rag", src, 256, in, copies),
		b.P2PAllGather("pag", src, 256, in, copies),
		b.NVLSReduceScatter("rs", 256, 256, in, src, parts),
		b.RingReduceScatter("rrs", 256, 256, in, src, parts),
		b.NVLSAllReduce("ar", 256, 256, in, outAR),
		b.RingAllReduce("rar", 256, 256, in, outAR),
	}
	for _, k := range kernels {
		if got := k.RemoteBytes(0); got != 0 {
			t.Errorf("%s: remote bytes = %d at P=1, want 0", k.Name, got)
		}
	}
}

func TestAttentionWorkStructure(t *testing.T) {
	b := testBuilder(t)
	// 2 batches x 2 local heads x seq 256 (head dim 128).
	qkv := b.NewLocalGrid(512, 512)
	out := b.NewLocalGrid(512, 256)
	k := b.Attention("attn", 2, 2, 256, 128, 2, qkv, out)
	sT := MTiles(256)
	if k.Grid != 2*2*sT {
		t.Fatalf("grid = %d, want %d", k.Grid, 2*2*sT)
	}
	d := k.Work(0, 0)
	if len(d.In) != sT {
		t.Fatalf("attention TB deps = %d, want the full K/V column (%d)", len(d.In), sT)
	}
	if d.Flops != 4*128*256*128*2 {
		t.Fatalf("attention flops = %v", d.Flops)
	}
	// Batch 1's TBs read batch 1's token rows.
	d2 := k.Work(0, 2*sT) // first TB of batch 1
	if d2.In[0] == d.In[0] {
		t.Fatal("batches must depend on distinct token rows")
	}
}

func TestKernelAggregateHelpers(t *testing.T) {
	b := testBuilder(t)
	src := b.NewSharded(512)
	out := b.NewLocalGrid(512, 256)
	k := b.FusedAGGEMM("agg", src, 512, 256, 1024, 1, GatherCAIS, FullCoordination(), out)
	if k.TotalFlops(0) <= 0 {
		t.Fatal("no compute")
	}
	// Remote bytes: each GPU loads the 3 remote row blocks of 4.
	wantRemote := int64(3) * b.rowBytes(1024)
	if got := k.RemoteBytes(1); got != wantRemote {
		t.Fatalf("remote bytes = %d, want %d", got, wantRemote)
	}
}

package model

import "cais/internal/kernel"

// Sharded is a sequence-sharded tensor handle: row block mi lives on
// Owner(mi); its tile publishes at the owner when the block's data is
// final (e.g. after a ReduceScatter or a sharded LN).
type Sharded struct {
	Buf    int
	MTiles int
	P      int // TP degree
}

// Owner maps a row block to the GPU holding it. Ownership is block-cyclic
// (round-robin): consecutive row blocks live on different GPUs, which
// spreads concurrent merge sessions across the switch ports of different
// home GPUs — the load balance the paper's 40 KB/port bound relies on.
func (s Sharded) Owner(mi int) int {
	if s.P <= 1 {
		return 0
	}
	return mi % s.P
}

// Tile is the global readiness tile for row block mi.
func (s Sharded) Tile(mi int) kernel.Tile {
	return kernel.Tile{Buf: s.Buf, Idx: mi}
}

// Gathered is a per-GPU replicated tensor handle: each GPU holds (or is
// receiving) a local copy of every row block; tile (mi, g) publishes when
// GPU g's copy of block mi is locally available.
type Gathered struct {
	Buf    int
	MTiles int
	P      int
}

// Tile is GPU g's local-copy readiness tile for row block mi.
func (g Gathered) Tile(mi, gpu int) kernel.Tile {
	return kernel.Tile{Buf: g.Buf, Idx: mi*g.P + gpu}
}

// LocalGrid is a per-GPU tile grid (column-parallel GEMM outputs,
// row-parallel GEMM partials): tile (mi, ni, g) publishes when GPU g's
// block is computed locally.
type LocalGrid struct {
	Buf    int
	MTiles int
	NTiles int
	P      int
}

// Tile is GPU g's readiness tile for block (mi, ni).
func (l LocalGrid) Tile(mi, ni, gpu int) kernel.Tile {
	return kernel.Tile{Buf: l.Buf, Idx: (mi*l.NTiles+ni)*l.P + gpu}
}

// RowTiles lists all of GPU g's tiles in row mi. With a non-nil cache the
// slice is interned: every kernel iteration asking for the same row set
// shares one immutable backing array instead of allocating a fresh one
// (kernel Work generators re-request identical sets millions of times per
// sweep point). A nil cache allocates fresh, for callers outside a run.
func (l LocalGrid) RowTiles(mi, gpu int, c *TileCache) []kernel.Tile {
	key := tileSetKey{kind: setRow, buf: l.Buf, a: mi, b: gpu}
	if s, ok := c.lookup(key); ok {
		return s
	}
	out := make([]kernel.Tile, 0, l.NTiles)
	for ni := 0; ni < l.NTiles; ni++ {
		out = append(out, l.Tile(mi, ni, gpu))
	}
	return c.store(key, out)
}

// PeerTiles lists block (mi, ni) across every GPU of the grid, interned
// like RowTiles (the pull-mode ReduceScatter gates on all P partials).
func (l LocalGrid) PeerTiles(mi, ni int, c *TileCache) []kernel.Tile {
	key := tileSetKey{kind: setPeers, buf: l.Buf, a: mi, b: ni}
	if s, ok := c.lookup(key); ok {
		return s
	}
	out := make([]kernel.Tile, 0, l.P)
	for g := 0; g < l.P; g++ {
		out = append(out, l.Tile(mi, ni, g))
	}
	return c.store(key, out)
}

// tileSetKey identifies one deterministic tile set. Buffer IDs are unique
// per machine, so (kind, buf, a, b) can never alias across handles.
type tileSetKey struct {
	kind uint8
	buf  int
	a, b int
}

// Tile-set kinds (tileSetKey.kind).
const (
	setRow uint8 = iota // LocalGrid.RowTiles: a=mi, b=gpu
	setPeers
	setAttn // attention K/V column: a=batch*NTiles+head column, b=gpu
)

// TileCache interns the deterministic tile sets kernel Work generators
// request repeatedly (GEMM input rows, attention K/V columns). Interned
// slices are immutable and deliberately heap-allocated — never
// arena-backed — so a machine-layer arena rewind can't corrupt them; the
// cache is owned by the Builder and dies with the run.
type TileCache struct {
	sets map[tileSetKey][]kernel.Tile
	hits int64
}

func (c *TileCache) lookup(k tileSetKey) ([]kernel.Tile, bool) {
	if c == nil {
		return nil, false
	}
	s, ok := c.sets[k]
	if ok {
		c.hits++
	}
	return s, ok
}

func (c *TileCache) store(k tileSetKey, s []kernel.Tile) []kernel.Tile {
	if c == nil {
		return s
	}
	if c.sets == nil {
		c.sets = make(map[tileSetKey][]kernel.Tile)
	}
	c.sets[k] = s
	return s
}

// Stats reports interned set count and lookup hits.
func (c *TileCache) Stats() (sets int, hits int64) {
	if c == nil {
		return 0, 0
	}
	return len(c.sets), c.hits
}

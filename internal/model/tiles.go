package model

import "cais/internal/kernel"

// Sharded is a sequence-sharded tensor handle: row block mi lives on
// Owner(mi); its tile publishes at the owner when the block's data is
// final (e.g. after a ReduceScatter or a sharded LN).
type Sharded struct {
	Buf    int
	MTiles int
	P      int // TP degree
}

// Owner maps a row block to the GPU holding it. Ownership is block-cyclic
// (round-robin): consecutive row blocks live on different GPUs, which
// spreads concurrent merge sessions across the switch ports of different
// home GPUs — the load balance the paper's 40 KB/port bound relies on.
func (s Sharded) Owner(mi int) int {
	if s.P <= 1 {
		return 0
	}
	return mi % s.P
}

// Tile is the global readiness tile for row block mi.
func (s Sharded) Tile(mi int) kernel.Tile {
	return kernel.Tile{Buf: s.Buf, Idx: mi}
}

// Gathered is a per-GPU replicated tensor handle: each GPU holds (or is
// receiving) a local copy of every row block; tile (mi, g) publishes when
// GPU g's copy of block mi is locally available.
type Gathered struct {
	Buf    int
	MTiles int
	P      int
}

// Tile is GPU g's local-copy readiness tile for row block mi.
func (g Gathered) Tile(mi, gpu int) kernel.Tile {
	return kernel.Tile{Buf: g.Buf, Idx: mi*g.P + gpu}
}

// LocalGrid is a per-GPU tile grid (column-parallel GEMM outputs,
// row-parallel GEMM partials): tile (mi, ni, g) publishes when GPU g's
// block is computed locally.
type LocalGrid struct {
	Buf    int
	MTiles int
	NTiles int
	P      int
}

// Tile is GPU g's readiness tile for block (mi, ni).
func (l LocalGrid) Tile(mi, ni, gpu int) kernel.Tile {
	return kernel.Tile{Buf: l.Buf, Idx: (mi*l.NTiles+ni)*l.P + gpu}
}

// RowTiles lists all of GPU g's tiles in row mi.
func (l LocalGrid) RowTiles(mi, gpu int) []kernel.Tile {
	out := make([]kernel.Tile, 0, l.NTiles)
	for ni := 0; ni < l.NTiles; ni++ {
		out = append(out, l.Tile(mi, ni, gpu))
	}
	return out
}

// Kernel-construction hot-path microbenchmarks. Work generators re-request
// the same deterministic tile sets millions of times per sweep point, so
// the interned lookup must be allocation-free once the cache is warm — the
// benchmark pins that property in addition to timing it.
package model

import (
	"testing"

	"cais/internal/kernel"
)

// BenchmarkRowTiles measures a warmed interned row-set lookup through the
// Builder cache: one map probe, zero allocations.
func BenchmarkRowTiles(b *testing.B) {
	bl := testBuilder(b)
	grid := bl.NewLocalGrid(4096, 4096)
	// Warm the cache: every (row, gpu) set interns exactly once.
	for mi := 0; mi < grid.MTiles; mi++ {
		for g := 0; g < bl.P; g++ {
			bl.RowTiles(grid, mi, g)
		}
	}
	if got := testing.AllocsPerRun(100, func() {
		_ = bl.RowTiles(grid, 1, 0)
	}); got != 0 {
		b.Fatalf("warmed RowTiles allocates %.2f/op, want 0", got)
	}
	var sink []kernel.Tile
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = bl.RowTiles(grid, i%grid.MTiles, i%bl.P)
	}
	_ = sink
}

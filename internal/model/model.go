// Package model builds the LLM tensor-parallel workloads of the paper's
// evaluation: it decomposes transformer layers (Table I configurations)
// into operator sequences under Basic TP and TP+Sequence-Parallelism
// (Fig. 1a/1b), and provides the kernel builders the execution strategies
// lower those operators with — local GEMMs, CAIS-fused AG-GEMM / GEMM-RS,
// NVLS and ring collectives, LayerNorm, elementwise and attention kernels.
package model

import (
	"fmt"

	"cais/internal/config"
)

// TileM and TileN are the GEMM thread-block tile dimensions (CUTLASS-style
// 128x128 tiles).
const (
	TileM = 128
	TileN = 128
)

// l2Reuse approximates the L2/shared-memory reuse factor applied to a GEMM
// TB's HBM traffic (operand tiles are shared between neighboring TBs).
const l2Reuse = 4

// OpKind classifies the operators a transformer layer decomposes into.
type OpKind int

const (
	// OpColGEMM is a column-parallel GEMM: weights sharded along the
	// output dimension; input must be full (gathered under SP,
	// replicated under Basic TP); output is local.
	OpColGEMM OpKind = iota
	// OpRowGEMM is a row-parallel GEMM: weights sharded along the input
	// dimension; output is a full-size partial sum that requires a
	// ReduceScatter (SP) or AllReduce (Basic TP).
	OpRowGEMM
	// OpLN is layer normalization.
	OpLN
	// OpElemwise covers GeLU / dropout / residual-add.
	OpElemwise
	// OpAttention is the head-local attention compute.
	OpAttention
)

func (k OpKind) String() string {
	switch k {
	case OpColGEMM:
		return "col-gemm"
	case OpRowGEMM:
		return "row-gemm"
	case OpLN:
		return "ln"
	case OpElemwise:
		return "elemwise"
	case OpAttention:
		return "attention"
	}
	return fmt.Sprintf("op(%d)", int(k))
}

// OpSpec is one operator instance with its full (unpartitioned)
// dimensions; strategies apply the TP partitioning during lowering.
type OpSpec struct {
	Name string
	Kind OpKind

	// GEMM dims: output is M x N, contraction over K (full sizes; the
	// lowering divides N (col) or K (row) by the TP degree).
	M, N, K int

	// LN/elemwise dims.
	Rows, Cols int

	// Attention dims.
	Batch, Heads, Seq, HeadDim int

	// BackwardScale multiplies GEMM compute for backward ops (dgrad +
	// wgrad share the communication pattern of one forward GEMM).
	BackwardScale float64
}

// ComputeScale returns the GEMM work multiplier (1 forward, 2 backward).
func (o OpSpec) ComputeScale() float64 {
	if o.BackwardScale > 0 {
		return o.BackwardScale
	}
	return 1
}

// Phase selects forward or backward decomposition.
type Phase int

const (
	// Forward is the inference/prefill direction.
	Forward Phase = iota
	// Backward adds gradient GEMMs with mirrored communication.
	Backward
)

func (p Phase) String() string {
	if p == Backward {
		return "backward"
	}
	return "forward"
}

// LayerOps decomposes one transformer layer into its operator sequence.
// The forward sequence alternates the paper's communication-relevant
// patterns: (LN ->) AG + col-GEMM ... row-GEMM + RS (-> add); under Basic
// TP the AG and RS boundaries become no-comm and AllReduce respectively.
//
// The backward sequence traverses the layer in reverse with mirrored
// communication (Fig. 1b's g / g-bar duality: the forward ReduceScatter
// point becomes a backward AllGather and vice versa): the forward
// row-parallel GEMMs back-propagate as gather + column-parallel dgrads,
// and the forward column-parallel GEMMs as row-parallel dgrads + reduce.
// Weight-gradient GEMMs are communication-free and folded into the 2x
// backward compute scale.
func LayerOps(m config.Model, phase Phase) []OpSpec {
	tokens := m.Tokens()
	if phase == Backward {
		return []OpSpec{
			{Name: "add2-grad", Kind: OpElemwise, Rows: tokens, Cols: m.Hidden},
			// d(FFN2 input) = dY @ W2^T: gathers the sharded output grad.
			{Name: "ffn2-dgrad", Kind: OpColGEMM, M: tokens, N: m.FFNHidden, K: m.Hidden, BackwardScale: 2},
			{Name: "gelu-grad", Kind: OpElemwise, Rows: tokens, Cols: m.FFNHidden},
			// d(FFN1 input) = dGelu @ W1^T: partial sum over the FFN shard.
			{Name: "ffn1-dgrad", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: m.FFNHidden, BackwardScale: 2},
			{Name: "ln2-grad", Kind: OpLN, Rows: tokens, Cols: m.Hidden},
			{Name: "add1-grad", Kind: OpElemwise, Rows: tokens, Cols: m.Hidden},
			{Name: "out-proj-dgrad", Kind: OpColGEMM, M: tokens, N: m.Hidden, K: m.Hidden, BackwardScale: 2},
			{Name: "attn-grad", Kind: OpAttention, Batch: m.Batch, Heads: m.Heads, Seq: m.SeqLen, HeadDim: m.HeadDim(), BackwardScale: 2},
			{Name: "qkv-dgrad", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: 3 * m.Hidden, BackwardScale: 2},
			{Name: "ln1-grad", Kind: OpLN, Rows: tokens, Cols: m.Hidden},
		}
	}
	return []OpSpec{
		{Name: "ln1", Kind: OpLN, Rows: tokens, Cols: m.Hidden},
		{Name: "qkv", Kind: OpColGEMM, M: tokens, N: 3 * m.Hidden, K: m.Hidden},
		{Name: "attn", Kind: OpAttention, Batch: m.Batch, Heads: m.Heads, Seq: m.SeqLen, HeadDim: m.HeadDim()},
		{Name: "out-proj", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: m.Hidden},
		{Name: "add1", Kind: OpElemwise, Rows: tokens, Cols: m.Hidden},
		{Name: "ln2", Kind: OpLN, Rows: tokens, Cols: m.Hidden},
		{Name: "ffn1", Kind: OpColGEMM, M: tokens, N: m.FFNHidden, K: m.Hidden},
		{Name: "gelu", Kind: OpElemwise, Rows: tokens, Cols: m.FFNHidden},
		{Name: "ffn2", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: m.FFNHidden},
		{Name: "add2", Kind: OpElemwise, Rows: tokens, Cols: m.Hidden},
	}
}

// SubLayer identifies the four communication-intensive sub-layers of
// Fig. 12: each is a row-GEMM -> LN -> col-GEMM pipeline (GEMM-RS + LN +
// AG-GEMM under SP).
type SubLayer struct {
	ID   string // L1..L4
	Desc string
	// RowGEMM produces the reduced/sharded tensor; ColGEMM consumes the
	// re-gathered one.
	RowGEMM OpSpec
	LN      OpSpec
	ColGEMM OpSpec
}

// SubLayers builds the paper's L1-L4 sub-layer pipelines for a model.
func SubLayers(m config.Model) []SubLayer {
	tokens := m.Tokens()
	ln := func(cols int) OpSpec {
		return OpSpec{Name: "ln", Kind: OpLN, Rows: tokens, Cols: cols}
	}
	outProj := OpSpec{Name: "out-proj", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: m.Hidden}
	ffn1 := OpSpec{Name: "ffn1", Kind: OpColGEMM, M: tokens, N: m.FFNHidden, K: m.Hidden}
	ffn2 := OpSpec{Name: "ffn2", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: m.FFNHidden}
	inProj := OpSpec{Name: "in-proj", Kind: OpColGEMM, M: tokens, N: 3 * m.Hidden, K: m.Hidden}
	ffn1Row := OpSpec{Name: "ffn1-bwd", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: m.FFNHidden, BackwardScale: 2}
	outProjCol := OpSpec{Name: "out-proj-bwd", Kind: OpColGEMM, M: tokens, N: m.Hidden, K: m.Hidden, BackwardScale: 2}
	inProjRow := OpSpec{Name: "in-proj-bwd", Kind: OpRowGEMM, M: tokens, N: m.Hidden, K: 3 * m.Hidden, BackwardScale: 2}
	ffn2Col := OpSpec{Name: "ffn2-bwd", Kind: OpColGEMM, M: tokens, N: m.FFNHidden, K: m.Hidden, BackwardScale: 2}
	return []SubLayer{
		{ID: "L1", Desc: "Output projection -> LayerNorm -> First FFN layer (forward)",
			RowGEMM: outProj, LN: ln(m.Hidden), ColGEMM: ffn1},
		{ID: "L2", Desc: "Second FFN layer -> LayerNorm -> Input projection (forward)",
			RowGEMM: ffn2, LN: ln(m.Hidden), ColGEMM: inProj},
		{ID: "L3", Desc: "First FFN layer -> LayerNorm -> Output projection (backward)",
			RowGEMM: ffn1Row, LN: ln(m.Hidden), ColGEMM: outProjCol},
		{ID: "L4", Desc: "Input projection -> LayerNorm -> Second FFN layer (backward)",
			RowGEMM: inProjRow, LN: ln(m.Hidden), ColGEMM: ffn2Col},
	}
}

// CommVolume reports the bytes a collective over a tokens x cols tensor
// moves (full tensor size).
func CommVolume(tokens, cols, elemBytes int) int64 {
	return int64(tokens) * int64(cols) * int64(elemBytes)
}

// MTiles is the number of row blocks for a row count.
func MTiles(rows int) int { return (rows + TileM - 1) / TileM }

// NTiles is the number of column blocks for a column count.
func NTiles(cols int) int { return (cols + TileN - 1) / TileN }

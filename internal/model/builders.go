package model

import (
	"fmt"

	"cais/internal/compiler"
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/noc"
	"cais/internal/pool"
)

// Builder lowers operators into kernels on a machine. It owns the tile
// buffer and address-space allocation so kernels built for the same
// machine never collide, plus the per-run allocation state kernel Work
// generators draw descriptor slices from: the machine's tile/access
// arenas and a tile-set intern cache (DESIGN.md §10).
type Builder struct {
	M    *machine.Machine
	Elem int64 // element width in bytes
	P    int   // TP degree (machine GPU count)

	tiles *pool.Arena[kernel.Tile]
	accs  *pool.Arena[kernel.Access]
	cache *TileCache
}

// NewBuilder creates a builder for a machine.
func NewBuilder(m *machine.Machine) *Builder {
	return &Builder{
		M: m, Elem: int64(m.HW.ElemBytes), P: m.HW.NumGPUs,
		tiles: m.TileArena(), accs: m.AccessArena(), cache: &TileCache{},
	}
}

// Tile1 is the arena-backed single-tile list — the replacement for the
// []kernel.Tile{t} literals on the kernel-construction hot path.
func (b *Builder) Tile1(t kernel.Tile) []kernel.Tile { return b.tiles.One(t) }

// RowTiles is grid.RowTiles interned through the builder's cache.
func (b *Builder) RowTiles(grid LocalGrid, mi, gpu int) []kernel.Tile {
	return grid.RowTiles(mi, gpu, b.cache)
}

// PeerTiles is grid.PeerTiles interned through the builder's cache.
func (b *Builder) PeerTiles(grid LocalGrid, mi, ni int) []kernel.Tile {
	return grid.PeerTiles(mi, ni, b.cache)
}

// CacheStats reports the tile-set intern cache's size and hit count.
func (b *Builder) CacheStats() (sets int, hits int64) { return b.cache.Stats() }

// NewSharded allocates a sequence-sharded tensor handle for rows rows.
func (b *Builder) NewSharded(rows int) Sharded {
	return Sharded{Buf: b.M.NewBuffer(), MTiles: MTiles(rows), P: b.P}
}

// NewGathered allocates a per-GPU replicated tensor handle.
func (b *Builder) NewGathered(rows int) Gathered {
	return Gathered{Buf: b.M.NewBuffer(), MTiles: MTiles(rows), P: b.P}
}

// NewLocalGrid allocates a per-GPU tile-grid handle.
func (b *Builder) NewLocalGrid(rows, cols int) LocalGrid {
	return LocalGrid{Buf: b.M.NewBuffer(), MTiles: MTiles(rows), NTiles: NTiles(cols), P: b.P}
}

// NewParts allocates a reduced-parts handle (tile grid without a GPU
// dimension: block (mi, ni) lives at the row owner).
func (b *Builder) NewParts(rows, cols int) LocalGrid {
	return LocalGrid{Buf: b.M.NewBuffer(), MTiles: MTiles(rows), NTiles: NTiles(cols), P: 1}
}

// gemmTB fills the compute cost of one 128x128xK GEMM thread block.
func (b *Builder) gemmTB(k int, scale float64) (flops float64, localBytes int64) {
	flops = 2 * float64(TileM) * float64(TileN) * float64(k) * scale
	bytes := (int64(TileM)*int64(k) + int64(k)*int64(TileN) + int64(TileM)*int64(TileN)) * b.Elem
	return flops, bytes / l2Reuse
}

// rowBytes is the size of one TileM-row block of a width-cols tensor.
func (b *Builder) rowBytes(cols int) int64 {
	return int64(TileM) * int64(cols) * b.Elem
}

// tileBytes is the size of one TileM x TileN block.
func (b *Builder) tileBytes() int64 {
	return int64(TileM) * int64(TileN) * b.Elem
}

// Coordination selects which merging-aware TB coordination mechanisms a
// fused CAIS kernel uses (the Fig. 13b ablation axes).
type Coordination struct {
	PreLaunch bool // pre-launch TB-group synchronization
	PreAccess bool // pre-access synchronization
	Throttle  bool // TB-aware request throttling
}

// FullCoordination enables every mechanism.
func FullCoordination() Coordination {
	return Coordination{PreLaunch: true, PreAccess: true, Throttle: true}
}

// InTiles wires a consumer kernel's TB inputs; implementations close over
// the producer handles chosen by the strategy.
type InTiles func(gpu, mi, ni int) []kernel.Tile

// NoInputs is the empty dependency wiring.
func NoInputs(gpu, mi, ni int) []kernel.Tile { return nil }

// GEMM builds a pure-local GEMM kernel (column-parallel GEMMs whose input
// is already local, weight-gradient GEMMs, attention projections):
// M x nLocal output, contraction over k.
func (b *Builder) GEMM(name string, m, nLocal, k int, scale float64, in InTiles, out LocalGrid) *kernel.Kernel {
	mT, nT := MTiles(m), NTiles(nLocal)
	flops, localBytes := b.gemmTB(k, scale)
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindGEMM, Grid: mT * nT,
		Work: func(g, tb int) kernel.TBDesc {
			mi, ni := tb/nT, tb%nT
			return kernel.TBDesc{
				Flops: flops, LocalBytes: localBytes, Group: -1,
				In:  in(g, mi, ni),
				Out: b.tiles.One(out.Tile(mi, ni, g)),
			}
		},
	}
}

// GatherMode selects how a fused gather-GEMM brings remote rows in.
type GatherMode int

const (
	// GatherCAIS uses ld.cais merged loads (compute-aware in-switch
	// computing): the switch fetches each row block once and replicates
	// it to all requesters.
	GatherCAIS GatherMode = iota
	// GatherP2P uses plain loads with a per-GPU loader TB: every GPU
	// fetches every remote block once (no in-switch merging).
	GatherP2P
	// GatherPerTB uses plain loads issued by every consuming TB (LADM:
	// locality-aware TB scheduling without in-switch computing or
	// gather staging) — remote operand rows are re-fetched by each
	// column tile's TB.
	GatherPerTB
)

// FusedAGGEMM builds the compute-aware AG-GEMM kernel (Fig. 1k): the GEMM
// reads remote rows directly, following its memory-semantic requirement.
// TB (mi, 0) is the block's loader: it issues the (mergeable) load for row
// block mi and publishes the local copy; TBs (mi, ni>0) consume the copy.
// src holds the gathered operand (width k); out is the M x nLocal result.
func (b *Builder) FusedAGGEMM(name string, src Sharded, m, nLocal, k int, scale float64,
	mode GatherMode, coord Coordination, out LocalGrid) *kernel.Kernel {

	mT, nT := MTiles(m), NTiles(nLocal)
	if src.MTiles != mT {
		panic(fmt.Sprintf("model: %s: src has %d row blocks, GEMM needs %d", name, src.MTiles, mT))
	}
	rowBytes := b.rowBytes(k)
	addrsPerRow := b.M.AddrsFor(rowBytes)
	base := b.M.AllocAddrs(mT * addrsPerRow)
	copies := b.NewGathered(m)
	var perTBBase uint64
	if mode == GatherPerTB {
		perTBBase = b.M.AllocAddrs(b.P * mT * nT * addrsPerRow)
	}

	// The symbolic pattern the CAIS compiler analyzes: the load address
	// depends only on blockIdx (row block = blockIdx / nTiles), so the
	// instruction is GPU-invariant and mergeable (Fig. 8a).
	pattern := kernel.Pattern{
		Name: "ld." + name, Sem: kernel.SemRead,
		Addr: kernel.Add(kernel.Const(int64(base)),
			kernel.Mul(kernel.Div(kernel.ParamBlock, kernel.Const(int64(nT))), kernel.Const(int64(addrsPerRow)))),
		Home: kernel.Mod(
			kernel.Div(kernel.ParamBlock, kernel.Const(int64(nT))),
			kernel.Const(int64(b.P))),
		Bytes: rowBytes,
	}
	loadOp := noc.OpLoad
	if mode == GatherCAIS {
		v := compiler.Analyze(pattern)
		if !v.Mergeable {
			panic(fmt.Sprintf("model: %s: compiler rejected CAIS lowering: %s", name, v.Reason))
		}
		loadOp = v.Mode
	}
	// TB groups: one per blockIdx, one TB per GPU (the compiler's launch
	// metadata, Sec. III-B-1).
	groups := compiler.BuildGroups(mT*nT, b.P)

	flops, localBytes := b.gemmTB(k, scale)
	peers := b.P - 1
	if coord.Throttle {
		// The owner's TB joins the group too (TB-aware throttling keeps
		// every GPU locked to its group).
		peers = b.P
	}
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindGEMM, Grid: mT * nT,
		Patterns:      []kernel.Pattern{pattern},
		PreLaunchSync: coord.PreLaunch && mode == GatherCAIS,
		PreAccessSync: coord.PreAccess && mode == GatherCAIS,
		Throttled:     coord.Throttle && mode == GatherCAIS,
		Work: func(g, tb int) kernel.TBDesc {
			mi, ni := tb/nT, tb%nT
			d := kernel.TBDesc{
				Flops: flops, LocalBytes: localBytes,
				Group: groups.GroupOf(tb), GroupPeers: peers,
				Out: b.tiles.One(out.Tile(mi, ni, g)),
			}
			owner := src.Owner(mi)
			if mode == GatherPerTB {
				// Every TB fetches its operand rows itself: no copy
				// staging, no merging — the redundant-traffic mode.
				acc := kernel.Access{
					Sem: kernel.SemRead, Addr: 0, Home: owner, Bytes: rowBytes,
				}
				// Per-(gpu, tb) unique address range so nothing merges.
				acc.Addr = perTBBase + uint64(g*mT*nT+tb)*uint64(addrsPerRow)
				if owner == g {
					acc.Mode = noc.OpLoad
					acc.Local = true
				} else {
					acc.Mode = noc.OpLoad
				}
				d.Pre = b.accs.One(acc)
				d.In = b.tiles.One(src.Tile(mi))
				return d
			}
			if ni != 0 {
				d.In = b.tiles.One(copies.Tile(mi, g))
				return d
			}
			addr := uint64(pattern.Addr.Eval(kernel.Env{GPU: int64(g), BlockIdx: int64(tb)}))
			acc := kernel.Access{
				Sem: kernel.SemRead, Addr: addr, Home: owner, Bytes: rowBytes,
				Publish: b.tiles.One(copies.Tile(mi, g)),
			}
			if owner == g {
				acc.Mode = noc.OpLoad
				acc.Local = true
			} else {
				acc.Mode = loadOp
				acc.Expected = b.P - 1
			}
			d.Pre = b.accs.One(acc)
			d.In = b.tiles.One(src.Tile(mi))
			return d
		},
	}
}

// ReduceMode selects how a fused GEMM-reduce writes its partial tiles out.
type ReduceMode int

const (
	// ReduceCAIS uses red.cais merged reductions: the switch accumulates
	// all contributions and writes one result to the row owner.
	ReduceCAIS ReduceMode = iota
	// ReduceP2PStore pushes each partial tile directly to the row owner,
	// which reduces locally (T3's DMA track-and-trigger).
	ReduceP2PStore
	// ReduceNVLSPush pushes partials through the NVLS unit's multimem.red
	// (T3-NVLS's DMA-based NVLS design): in-switch reduction with the
	// pre-existing NVLS buffers, but no merge-table/coordination machinery.
	ReduceNVLSPush
)

// FusedGEMMRS builds the compute-aware GEMM-RS kernel: each TB computes a
// partial output tile and immediately issues its reduction toward the row
// owner, following the write semantics of the computation. parts receives
// the reduced blocks (parts.Tile(mi, ni, 0) publishes at the owner when
// all P contributions have landed). n is the full output width; kLocal the
// per-GPU contraction shard.
func (b *Builder) FusedGEMMRS(name string, m, n, kLocal int, scale float64, in InTiles,
	mode ReduceMode, coord Coordination, red Sharded, parts LocalGrid) *kernel.Kernel {

	mT, nT := MTiles(m), NTiles(n)
	if parts.MTiles != mT || parts.NTiles != nT || parts.P != 1 {
		panic(fmt.Sprintf("model: %s: parts handle mismatch", name))
	}
	tileBytes := b.tileBytes()
	addrsPerTile := b.M.AddrsFor(tileBytes)
	base := b.M.AllocAddrs(mT * nT * addrsPerTile)

	pattern := kernel.Pattern{
		Name: "red." + name, Sem: kernel.SemReduce,
		Addr: kernel.Add(kernel.Const(int64(base)),
			kernel.Mul(kernel.ParamBlock, kernel.Const(int64(addrsPerTile)))),
		Home: kernel.Mod(
			kernel.Div(kernel.ParamBlock, kernel.Const(int64(nT))),
			kernel.Const(int64(b.P))),
		Bytes: tileBytes,
	}
	redOp := noc.OpStore
	switch mode {
	case ReduceCAIS:
		v := compiler.Analyze(pattern)
		if !v.Mergeable {
			panic(fmt.Sprintf("model: %s: compiler rejected CAIS lowering: %s", name, v.Reason))
		}
		redOp = v.Mode
	case ReduceNVLSPush:
		redOp = noc.OpMultimemRed
	default:
		// ReduceP2PStore keeps plain stores.
	}

	flops, localBytes := b.gemmTB(kLocal, scale)
	peers := b.P - 1
	if coord.Throttle {
		peers = b.P
	}
	groups := compiler.BuildGroups(mT*nT, b.P)
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindGEMM, Grid: mT * nT,
		Patterns:      []kernel.Pattern{pattern},
		PreLaunchSync: coord.PreLaunch && mode == ReduceCAIS,
		PreAccessSync: coord.PreAccess && mode == ReduceCAIS,
		Throttled:     coord.Throttle && mode == ReduceCAIS,
		Work: func(g, tb int) kernel.TBDesc {
			mi, ni := tb/nT, tb%nT
			owner := red.Owner(mi)
			addr := uint64(pattern.Addr.Eval(kernel.Env{GPU: int64(g), BlockIdx: int64(tb)}))
			acc := kernel.Access{
				Sem: kernel.SemReduce, Addr: addr, Home: owner, Bytes: tileBytes,
				TileNeed: b.P,
				Publish:  b.tiles.One(parts.Tile(mi, ni, 0)),
			}
			if owner == g {
				acc.Mode = noc.OpStore
				acc.Local = true
			} else {
				acc.Mode = redOp
				acc.Expected = b.P - 1
			}
			return kernel.TBDesc{
				Flops: flops, LocalBytes: localBytes,
				Group: groups.GroupOf(tb), GroupPeers: peers,
				In:   in(g, mi, ni),
				Post: b.accs.One(acc),
			}
		},
	}
}

// FusedGEMMAR builds the compute-aware GEMM-AR kernel of the paper's
// Fig. 1(h) combination table (an extension beyond the evaluated SP
// pipelines): each TB computes a partial output tile and issues a
// broadcast red.cais — the merge unit accumulates all P contributions and
// writes the reduced tile to every GPU's replica. out.Tile(mi, ni, g)
// publishes at GPU g when its reduced copy lands.
func (b *Builder) FusedGEMMAR(name string, m, n, kLocal int, scale float64, in InTiles,
	coord Coordination, out LocalGrid) *kernel.Kernel {

	mT, nT := MTiles(m), NTiles(n)
	tileBytes := b.tileBytes()
	addrsPerTile := b.M.AddrsFor(tileBytes)
	base := b.M.AllocAddrs(mT * nT * addrsPerTile)

	pattern := kernel.Pattern{
		Name: "red." + name, Sem: kernel.SemReduce,
		Addr: kernel.Add(kernel.Const(int64(base)),
			kernel.Mul(kernel.ParamBlock, kernel.Const(int64(addrsPerTile)))),
		Home: kernel.Mod(
			kernel.Div(kernel.ParamBlock, kernel.Const(int64(nT))),
			kernel.Const(int64(b.P))),
		Bytes: tileBytes,
	}
	v := compiler.Analyze(pattern)
	if !v.Mergeable {
		panic(fmt.Sprintf("model: %s: compiler rejected CAIS lowering: %s", name, v.Reason))
	}

	flops, localBytes := b.gemmTB(kLocal, scale)
	groups := compiler.BuildGroups(mT*nT, b.P)
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindGEMM, Grid: mT * nT,
		Patterns:      []kernel.Pattern{pattern},
		PreLaunchSync: coord.PreLaunch,
		PreAccessSync: coord.PreAccess,
		Throttled:     coord.Throttle,
		Work: func(g, tb int) kernel.TBDesc {
			mi, ni := tb/nT, tb%nT
			// All P GPUs contribute through the switch; the reduced tile
			// broadcasts back to every replica.
			// Receiver r's replica tile is out.Tile(mi, ni, r) — stride 1
			// in the GPU index, so the closure-free PublishEach form
			// applies.
			acc := kernel.Access{
				Sem: kernel.SemReduce, Mode: v.Mode,
				Addr: uint64(pattern.Addr.Eval(kernel.Env{GPU: int64(g), BlockIdx: int64(tb)})),
				Home: mi % b.P, Bytes: tileBytes,
				Expected: b.P, TileNeed: b.P, Broadcast: true,
				PublishEach: out.Tile(mi, ni, 0),
			}
			return kernel.TBDesc{
				Flops: flops, LocalBytes: localBytes,
				Group: groups.GroupOf(tb), GroupPeers: b.P,
				In:   in(g, mi, ni),
				Post: b.accs.One(acc),
			}
		},
	}
}

// ShardedRowOp builds a sequence-sharded row-wise kernel (LN, dropout/add
// under SP): GPU g processes only the row blocks it owns; its TB publishes
// the block's sharded tile. in wires the dependencies of an owned block
// (ni is always 0 for row ops).
func (b *Builder) ShardedRowOp(name string, kind kernel.Kind, rows, cols int, in InTiles, out Sharded) *kernel.Kernel {
	mT := MTiles(rows)
	if out.MTiles != mT {
		panic(fmt.Sprintf("model: %s: out has %d blocks, op needs %d", name, out.MTiles, mT))
	}
	bytes := 3 * b.rowBytes(cols) // read, normalize, write
	return &kernel.Kernel{
		Name: name, Kind: kind, Grid: mT,
		Work: func(g, tb int) kernel.TBDesc {
			if out.Owner(tb) != g {
				return kernel.TBDesc{Group: -1}
			}
			return kernel.TBDesc{
				LocalBytes: bytes, Group: -1,
				In:  in(g, tb, 0),
				Out: b.tiles.One(out.Tile(tb)),
			}
		},
	}
}

// ReplicatedRowOp builds a replicated row-wise kernel (LN under Basic TP):
// every GPU processes every row block on its own copy.
func (b *Builder) ReplicatedRowOp(name string, kind kernel.Kind, rows, cols int, in InTiles, out Gathered) *kernel.Kernel {
	mT := MTiles(rows)
	bytes := 3 * b.rowBytes(cols)
	return &kernel.Kernel{
		Name: name, Kind: kind, Grid: mT,
		Work: func(g, tb int) kernel.TBDesc {
			return kernel.TBDesc{
				LocalBytes: bytes, Group: -1,
				In:  in(g, tb, 0),
				Out: b.tiles.One(out.Tile(tb, g)),
			}
		},
	}
}

// LocalRowOp builds a per-GPU row-wise elementwise kernel over a local
// grid (GeLU on the column-parallel FFN activation): GPU g transforms its
// own shard in place.
func (b *Builder) LocalRowOp(name string, rows, colsLocal int, in InTiles, out LocalGrid) *kernel.Kernel {
	mT := MTiles(rows)
	nT := out.NTiles
	bytes := 2 * int64(TileM) * int64(TileN) * b.Elem
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindElemwise, Grid: mT * nT,
		Work: func(g, tb int) kernel.TBDesc {
			mi, ni := tb/nT, tb%nT
			return kernel.TBDesc{
				LocalBytes: bytes, Group: -1,
				In:  in(g, mi, ni),
				Out: b.tiles.One(out.Tile(mi, ni, g)),
			}
		},
	}
}

// Attention builds the head-local attention kernel: per (batch, local
// head, query block) TBs computing scores and context against the full
// K/V sequence. qkv is the QKV projection's local output grid (column ni
// indexes heads); out receives the context blocks.
func (b *Builder) Attention(name string, batch, headsLocal, seq, headDim int, scale float64,
	qkv LocalGrid, out LocalGrid) *kernel.Kernel {

	sT := MTiles(seq)
	grid := batch * headsLocal * sT
	flopsPerTB := 4 * float64(TileM) * float64(seq) * float64(headDim) * scale
	bytesPerTB := (2*int64(seq)*int64(headDim) + int64(TileM)*int64(seq)) * b.Elem / l2Reuse
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindAttention, Grid: grid,
		Work: func(g, tb int) kernel.TBDesc {
			bIdx := tb / (headsLocal * sT)
			h := (tb / sT) % headsLocal
			mi := tb % sT
			ni := h % qkv.NTiles
			// The query block depends on its own QKV rows plus the full
			// K/V column of its head (token rows of this batch element).
			// The column set is shared by every query block of the same
			// (batch, head, gpu), so it interns in the builder's cache.
			key := tileSetKey{kind: setAttn, buf: qkv.Buf, a: bIdx*qkv.NTiles + ni, b: g}
			in, ok := b.cache.lookup(key)
			if !ok {
				in = make([]kernel.Tile, 0, sT)
				for mj := 0; mj < sT; mj++ {
					in = append(in, qkv.Tile(bIdx*sT+mj, ni, g))
				}
				in = b.cache.store(key, in)
			}
			return kernel.TBDesc{
				Flops: flopsPerTB, LocalBytes: bytesPerTB, Group: -1,
				In:  in,
				Out: b.tiles.One(out.Tile(bIdx*sT+mi, h%out.NTiles, g)),
			}
		},
	}
}

package model

import (
	"fmt"

	"cais/internal/kernel"
	"cais/internal/noc"
)

// Communication kernel builders. These lower the collective operations the
// baselines rely on: NVLS push/pull collectives (communication-centric
// in-switch computing) and GPU-driven ring collectives (no in-switch
// computing). All of them are dedicated kernels occupying CommSMs SMs —
// the isolation the paper contrasts CAIS's fused kernels against.

// commKernel stamps the common comm-kernel fields.
func (b *Builder) commKernel(name string, grid int, work func(g, tb int) kernel.TBDesc) *kernel.Kernel {
	return &kernel.Kernel{
		Name: name, Kind: kernel.KindComm, Grid: grid,
		CommSMs: b.M.HW.CommSMs,
		Work:    work,
	}
}

// NVLSAllGather builds the multimem.st push-mode AllGather (Fig. 1g): the
// owner of each row block pushes it once; the switch replicates it to all
// peers. out.Tile(mi, g) publishes when GPU g's copy of block mi has
// arrived. in gates each block (typically the producer's sharded tile).
func (b *Builder) NVLSAllGather(name string, src Sharded, cols int, in InTiles, out Gathered) *kernel.Kernel {
	mT := src.MTiles
	if out.MTiles != mT {
		panic(fmt.Sprintf("model: %s: handle mismatch", name))
	}
	rowBytes := b.rowBytes(cols)
	base := b.M.AllocAddrs(mT * b.M.AddrsFor(rowBytes))
	addrsPerRow := uint64(b.M.AddrsFor(rowBytes))
	if b.P == 1 {
		return b.localCopyKernel(name, mT, in, func(mi, g int) []kernel.Tile {
			return b.tiles.One(out.Tile(mi, g))
		})
	}
	return b.commKernel(name, mT, func(g, tb int) kernel.TBDesc {
		if src.Owner(tb) != g {
			return kernel.TBDesc{Group: -1}
		}
		mi := tb
		return kernel.TBDesc{
			Group: -1,
			In:    in(g, mi, 0),
			// The owner's own copy is already local.
			Out: b.tiles.One(out.Tile(mi, g)),
			Post: b.accs.One(kernel.Access{
				Sem: kernel.SemWrite, Mode: noc.OpMultimemST,
				Addr: base + uint64(mi)*addrsPerRow, Home: g, Bytes: rowBytes,
				PublishEach: out.Tile(mi, 0),
			}),
		}
	})
}

// NVLSReduceScatter builds the multimem.ld_reduce pull-mode ReduceScatter:
// the owner of each row block pulls it, the switch fans reads to every
// GPU's replica and reduces in flight. parts.Tile(mi, ni, 0) publishes at
// the owner on arrival. in gates the pull on the partials' readiness.
func (b *Builder) NVLSReduceScatter(name string, m, n int, in InTiles, red Sharded, parts LocalGrid) *kernel.Kernel {
	mT, nT := MTiles(m), NTiles(n)
	tileBytes := b.tileBytes()
	base := b.M.AllocAddrs(mT * nT * b.M.AddrsFor(tileBytes))
	addrsPerTile := uint64(b.M.AddrsFor(tileBytes))
	if b.P == 1 {
		return b.localCopyKernel(name, mT*nT, in2(in, nT), func(tb, g int) []kernel.Tile {
			return b.tiles.One(parts.Tile(tb/nT, tb%nT, 0))
		})
	}
	return b.commKernel(name, mT*nT, func(g, tb int) kernel.TBDesc {
		mi, ni := tb/nT, tb%nT
		if red.Owner(mi) != g {
			return kernel.TBDesc{Group: -1}
		}
		return kernel.TBDesc{
			Group: -1,
			In:    in(g, mi, ni),
			Pre: b.accs.One(kernel.Access{
				Sem: kernel.SemRead, Mode: noc.OpMultimemLdReduce,
				Addr: base + uint64(tb)*addrsPerTile, Home: g, Bytes: tileBytes,
				Expected: 1,
				Publish:  b.tiles.One(parts.Tile(mi, ni, 0)),
			}),
		}
	})
}

// NVLSAllReduce builds the multimem.red push-mode AllReduce: every GPU
// pushes its partial; the switch reduces and broadcasts the result to all
// replicas. out.Tile(mi, ni, g) publishes when GPU g's reduced copy lands.
func (b *Builder) NVLSAllReduce(name string, m, n int, in InTiles, out LocalGrid) *kernel.Kernel {
	mT, nT := MTiles(m), NTiles(n)
	tileBytes := b.tileBytes()
	base := b.M.AllocAddrs(mT * nT * b.M.AddrsFor(tileBytes))
	addrsPerTile := uint64(b.M.AddrsFor(tileBytes))
	if b.P == 1 {
		return b.localCopyKernel(name, mT*nT, in2(in, nT), func(tb, g int) []kernel.Tile {
			return b.tiles.One(out.Tile(tb/nT, tb%nT, g))
		})
	}
	return b.commKernel(name, mT*nT, func(g, tb int) kernel.TBDesc {
		mi, ni := tb/nT, tb%nT
		return kernel.TBDesc{
			Group: -1,
			In:    in(g, mi, ni),
			Post: b.accs.One(kernel.Access{
				Sem: kernel.SemReduce, Mode: noc.OpMultimemRed,
				Addr: base + uint64(tb)*addrsPerTile, Home: -1, Bytes: tileBytes,
				Expected: b.P, TileNeed: b.P,
				PublishEach: out.Tile(mi, ni, 0),
			}),
		}
	})
}

// RingReduceScatter builds the GPU-driven ring ReduceScatter: each tile's
// partial travels P-1 accumulation hops ending at the row owner. Hop
// pipelining emerges from tile dependencies between per-hop TBs.
func (b *Builder) RingReduceScatter(name string, m, n int, in InTiles, red Sharded, parts LocalGrid) *kernel.Kernel {
	mT, nT := MTiles(m), NTiles(n)
	tileBytes := b.tileBytes()
	hopBuf := b.M.NewBuffer() // per-(tile, gpu) arrival markers
	hopTile := func(t, g int) kernel.Tile { return kernel.Tile{Buf: hopBuf, Idx: t*b.P + g} }
	base := b.M.AllocAddrs(mT * nT * b.M.AddrsFor(tileBytes))
	addrsPerTile := uint64(b.M.AddrsFor(tileBytes))
	if b.P == 1 {
		return b.localCopyKernel(name, mT*nT, in2(in, nT), func(tb, g int) []kernel.Tile {
			return b.tiles.One(parts.Tile(tb/nT, tb%nT, 0))
		})
	}
	return b.commKernel(name, mT*nT, func(g, tb int) kernel.TBDesc {
		mi, ni := tb/nT, tb%nT
		owner := red.Owner(mi)
		if g == owner {
			// The owner only contributes its local partial; the final
			// arriving hop publishes the reduced block.
			return kernel.TBDesc{Group: -1, In: in(g, mi, ni)}
		}
		next := (g + 1) % b.P
		d := kernel.TBDesc{Group: -1, In: in(g, mi, ni)}
		if g != (owner+1)%b.P {
			// Wait for the accumulated partial from the predecessor.
			d.In = b.tiles.With(d.In, hopTile(tb, g))
		}
		// The hop's only receiver is next, so a plain Publish replaces
		// the receiver-independent PublishAt closure.
		publish := hopTile(tb, next)
		if next == owner {
			publish = parts.Tile(mi, ni, 0)
		}
		d.Post = b.accs.One(kernel.Access{
			Sem: kernel.SemWrite, Mode: noc.OpStore,
			Addr: base + uint64(tb)*addrsPerTile, Home: next, Bytes: tileBytes,
			Publish: b.tiles.One(publish),
		})
		return d
	})
}

// RingAllGather builds the GPU-driven ring AllGather: each row block is
// forwarded around the ring, one hop per GPU, gated by its arrival tile.
func (b *Builder) RingAllGather(name string, src Sharded, cols int, in InTiles, out Gathered) *kernel.Kernel {
	mT := src.MTiles
	rowBytes := b.rowBytes(cols)
	base := b.M.AllocAddrs(mT * b.M.AddrsFor(rowBytes))
	addrsPerRow := uint64(b.M.AddrsFor(rowBytes))
	if b.P == 1 {
		return b.localCopyKernel(name, mT, in, func(mi, g int) []kernel.Tile {
			return b.tiles.One(out.Tile(mi, g))
		})
	}
	return b.commKernel(name, mT, func(g, tb int) kernel.TBDesc {
		mi := tb
		owner := src.Owner(mi)
		next := (g + 1) % b.P
		d := kernel.TBDesc{Group: -1}
		if g == owner {
			d.In = in(g, mi, 0)
			d.Out = b.tiles.One(out.Tile(mi, g))
		} else {
			// Forward after this GPU's copy arrived.
			d.In = b.tiles.One(out.Tile(mi, g))
		}
		if next == owner {
			// The block has completed its P-1 hops.
			return d
		}
		d.Post = b.accs.One(kernel.Access{
			Sem: kernel.SemWrite, Mode: noc.OpStore,
			Addr: base + uint64(mi)*addrsPerRow, Home: next, Bytes: rowBytes,
			PublishEach: out.Tile(mi, 0),
		})
		return d
	})
}

// RingAllReduce builds the GPU-driven ring AllReduce: a reduce-scatter
// phase (P-1 accumulation hops per tile) followed by an all-gather phase
// (P-1 forwarding hops of the reduced tile). out.Tile(mi, ni, g) publishes
// when GPU g's reduced copy is complete.
func (b *Builder) RingAllReduce(name string, m, n int, in InTiles, out LocalGrid) *kernel.Kernel {
	mT, nT := MTiles(m), NTiles(n)
	tiles := mT * nT
	tileBytes := b.tileBytes()
	hopBuf := b.M.NewBuffer()
	hopTile := func(t, g int) kernel.Tile { return kernel.Tile{Buf: hopBuf, Idx: t*b.P + g} }
	base := b.M.AllocAddrs(2 * tiles * b.M.AddrsFor(tileBytes))
	addrsPerTile := uint64(b.M.AddrsFor(tileBytes))
	if b.P == 1 {
		return b.localCopyKernel(name, tiles, in2(in, nT), func(tb, g int) []kernel.Tile {
			return b.tiles.One(out.Tile(tb/nT, tb%nT, g))
		})
	}
	// The reduce chain of tile t ends at its ring owner o(t) = t % P; the
	// gather chain then forwards the reduced tile from o(t) around.
	ringOwner := func(t int) int { return t % b.P }
	return b.commKernel(name, 2*tiles, func(g, tb int) kernel.TBDesc {
		phase, t := tb/tiles, tb%tiles
		mi, ni := t/nT, t%nT
		o := ringOwner(t)
		next := (g + 1) % b.P
		if phase == 0 {
			// Reduce-forward phase.
			if g == o {
				return kernel.TBDesc{Group: -1, In: in(g, mi, ni)}
			}
			d := kernel.TBDesc{Group: -1, In: in(g, mi, ni)}
			if g != (o+1)%b.P {
				d.In = b.tiles.With(d.In, hopTile(t, g))
			}
			publish := hopTile(t, next)
			if next == o {
				publish = out.Tile(mi, ni, o)
			}
			d.Post = b.accs.One(kernel.Access{
				Sem: kernel.SemWrite, Mode: noc.OpStore,
				Addr: base + uint64(t)*addrsPerTile, Home: next, Bytes: tileBytes,
				Publish: b.tiles.One(publish),
			})
			return d
		}
		// Gather-forward phase: forward the reduced copy once it arrives.
		d := kernel.TBDesc{Group: -1, In: b.tiles.One(out.Tile(mi, ni, g))}
		if next == o {
			return d
		}
		d.Post = b.accs.One(kernel.Access{
			Sem: kernel.SemWrite, Mode: noc.OpStore,
			Addr: base + uint64(tiles+t)*addrsPerTile, Home: next, Bytes: tileBytes,
			PublishEach: out.Tile(mi, ni, 0),
		})
		return d
	})
}

// P2PAllGather builds T3's hardware-triggered AllGather without NVLS: the
// owner of each row block pushes it to every peer with direct stores as
// soon as the block is ready (fine-grained, but P-1 redundant uplink
// copies since there is no in-switch multicast).
func (b *Builder) P2PAllGather(name string, src Sharded, cols int, in InTiles, out Gathered) *kernel.Kernel {
	mT := src.MTiles
	rowBytes := b.rowBytes(cols)
	addrsPerRow := b.M.AddrsFor(rowBytes)
	base := b.M.AllocAddrs(mT * b.P * addrsPerRow)
	if b.P == 1 {
		return b.localCopyKernel(name, mT, in, func(mi, g int) []kernel.Tile {
			return b.tiles.One(out.Tile(mi, g))
		})
	}
	return b.commKernel(name, mT, func(g, tb int) kernel.TBDesc {
		mi := tb
		if src.Owner(mi) != g {
			return kernel.TBDesc{Group: -1}
		}
		d := kernel.TBDesc{
			Group: -1,
			In:    in(g, mi, 0),
			Out:   b.tiles.One(out.Tile(mi, g)),
			Post:  b.accs.Make(b.P - 1),
		}
		i := 0
		for peer := 0; peer < b.P; peer++ {
			if peer == g {
				continue
			}
			// Each store's sole receiver is its home peer, so PublishEach
			// resolves to out.Tile(mi, peer) there.
			d.Post[i] = kernel.Access{
				Sem: kernel.SemWrite, Mode: noc.OpStore,
				Addr: base + uint64(mi*b.P+peer)*uint64(addrsPerRow),
				Home: peer, Bytes: rowBytes,
				PublishEach: out.Tile(mi, 0),
			}
			i++
		}
		return d
	})
}

// GateKernel builds a zero-work kernel whose TB c publishes gate tile
// (gateBuf, c*P+g) on GPU g once in(g, c) is satisfied — the chunk-level
// barrier of the software-pipelined overlap baselines (CoCoNet, FuseLib).
func (b *Builder) GateKernel(name string, chunks int, in func(g, c int) []kernel.Tile) (*kernel.Kernel, func(c, g int) kernel.Tile) {
	buf := b.M.NewBuffer()
	gate := func(c, g int) kernel.Tile { return kernel.Tile{Buf: buf, Idx: c*b.P + g} }
	k := &kernel.Kernel{
		Name: name, Kind: kernel.KindComm, Grid: chunks,
		CommSMs: 1,
		Work: func(g, tb int) kernel.TBDesc {
			return kernel.TBDesc{
				Group: -1,
				In:    in(g, tb),
				Out:   b.tiles.One(gate(tb, g)),
			}
		},
	}
	return k, gate
}

// localCopyKernel degenerates a collective for the single-GPU case: each
// TB republishes its tiles locally at HBM cost.
func (b *Builder) localCopyKernel(name string, grid int, in InTiles, out func(tb, g int) []kernel.Tile) *kernel.Kernel {
	return b.commKernel(name, grid, func(g, tb int) kernel.TBDesc {
		return kernel.TBDesc{
			Group: -1,
			In:    in(g, tb, 0),
			Out:   out(tb, g),
		}
	})
}

// in2 adapts an (mi, ni) wiring to a flat tb index.
func in2(in InTiles, nT int) InTiles {
	return func(g, tb, _ int) []kernel.Tile {
		return in(g, tb/nT, tb%nT)
	}
}

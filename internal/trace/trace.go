// Package trace is the simulation-wide event tracer: instrumented
// subsystems (gpu, nvswitch, noc, machine) record spans, instants and
// counter samples against simulated time, and the tracer serializes them
// as Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
//
// Tracing is strictly opt-in. A nil *Tracer is a valid, disabled tracer:
// every recording method is nil-receiver safe and returns immediately, so
// instrumentation call sites cost one nil check and zero allocations when
// no tracer is attached (guarded by the benchmark in bench_test.go). The
// tracer never schedules simulation events, so attaching one cannot
// perturb the bit-reproducible engine.
//
// Timestamps: simulated picoseconds map to trace microseconds (the Chrome
// trace-event unit), keeping sub-nanosecond precision as fractional ts
// values. Processes partition the timeline by hardware component — one
// "process" per GPU and per switch plane, plus one for machine-level
// kernel spans — and threads within a process are SM slots, switch ports
// and link directions.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"

	"cais/internal/sim"
)

// Process-ID layout of the trace. Chrome trace viewers group tracks by
// pid, so each simulated hardware component gets its own process.
const (
	// PIDMachine holds machine-level tracks (kernel launch→retire spans).
	PIDMachine int32 = 0
	// pidGPUBase + gpu is the per-GPU process.
	pidGPUBase int32 = 1
	// pidSwitchBase + plane is the per-switch-plane process.
	pidSwitchBase int32 = 1000
)

// Thread-ID layout inside GPU and switch processes.
const (
	// TIDSync is the GPU-process track carrying barrier-wait spans.
	TIDSync int32 = 900
	// TIDUplinkBase + gpu is the switch-process track of one uplink.
	TIDUplinkBase int32 = 100
	// TIDDownlinkBase + gpu is the switch-process track of one downlink.
	TIDDownlinkBase int32 = 200
)

// GPUPid returns the trace process ID of a GPU.
func GPUPid(gpu int) int32 { return pidGPUBase + int32(gpu) }

// SwitchPid returns the trace process ID of a switch plane.
func SwitchPid(plane int) int32 { return pidSwitchBase + int32(plane) }

// Attach installs t as eng's observer so components constructed against
// eng discover it via FromEngine. Attaching nil detaches.
func Attach(eng *sim.Engine, t *Tracer) { eng.SetObserver(t) }

// FromEngine returns the tracer attached to eng, or nil when tracing is
// disabled. Components call this once at construction and keep the typed
// pointer, so their hot paths only pay a nil check.
func FromEngine(eng *sim.Engine) *Tracer {
	t, _ := eng.Observer().(*Tracer)
	return t
}

// Event phase bytes (Chrome trace-event "ph" field), exported so offline
// consumers (internal/attrib) can classify visited events.
const (
	PhaseComplete   byte = 'X'
	PhaseInstant    byte = 'i'
	PhaseAsyncBegin byte = 'b'
	PhaseAsyncEnd   byte = 'e'
	PhaseCounter    byte = 'C'
)

// Internal aliases keep the recording methods terse.
const (
	phComplete   = PhaseComplete
	phInstant    = PhaseInstant
	phAsyncBegin = PhaseAsyncBegin
	phAsyncEnd   = PhaseAsyncEnd
	phCounter    = PhaseCounter
)

type event struct {
	name string
	cat  string
	ph   byte
	pid  int32
	tid  int32
	ts   sim.Time
	dur  sim.Time // complete events only
	id   uint64   // async events only
	val  float64  // counter events only
}

// Tracer accumulates trace events in memory. It is not goroutine-safe;
// the simulation engine is single-threaded by design.
type Tracer struct {
	events  []event
	procs   map[int32]string
	threads map[int64]string
	nextID  uint64
}

// New returns an empty, enabled tracer. The event buffer is pre-sized:
// even a quick sub-layer run emits thousands of events, so starting from a
// nil slice costs a dozen doubling copies per run for nothing.
func New() *Tracer {
	return &Tracer{
		events:  make([]event, 0, 4096),
		procs:   make(map[int32]string),
		threads: make(map[int64]string),
	}
}

// Enabled reports whether the tracer records events (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Len reports how many events have been recorded.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// NextID returns a fresh async-span correlation ID.
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	t.nextID++
	return t.nextID
}

// Span records a complete slice [start, end) on a process thread. Slices
// on one (pid, tid) track should not overlap (use async spans for those).
func (t *Tracer) Span(pid, tid int32, cat, name string, start, end sim.Time) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.events = append(t.events, event{
		name: name, cat: cat, ph: phComplete,
		pid: pid, tid: tid, ts: start, dur: end - start,
	})
}

// Instant records a point event.
func (t *Tracer) Instant(pid, tid int32, cat, name string, at sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{
		name: name, cat: cat, ph: phInstant, pid: pid, tid: tid, ts: at,
	})
}

// BeginAsync opens an overlapping span identified by (cat, id); pair with
// EndAsync using the same cat, name and id.
func (t *Tracer) BeginAsync(pid int32, cat, name string, id uint64, at sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{
		name: name, cat: cat, ph: phAsyncBegin, pid: pid, ts: at, id: id,
	})
}

// EndAsync closes the async span opened by BeginAsync.
func (t *Tracer) EndAsync(pid int32, cat, name string, id uint64, at sim.Time) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{
		name: name, cat: cat, ph: phAsyncEnd, pid: pid, ts: at, id: id,
	})
}

// Counter records a sampled counter value (rendered as a track graph).
func (t *Tracer) Counter(pid int32, name string, at sim.Time, v float64) {
	if t == nil {
		return
	}
	t.events = append(t.events, event{
		name: name, ph: phCounter, pid: pid, ts: at, val: v,
	})
}

// NameProcess labels a trace process (rendered as the track group title).
func (t *Tracer) NameProcess(pid int32, name string) {
	if t == nil {
		return
	}
	t.procs[pid] = name
}

// NameThread labels one thread inside a process.
func (t *Tracer) NameThread(pid, tid int32, name string) {
	if t == nil {
		return
	}
	t.threads[int64(pid)<<32|int64(uint32(tid))] = name
}

// Event is the read-only view of one recorded trace event handed to Visit
// callbacks. Dur is meaningful for PhaseComplete events only; ID pairs
// PhaseAsyncBegin with its PhaseAsyncEnd.
type Event struct {
	Name  string
	Cat   string
	Phase byte
	Pid   int32
	Tid   int32
	Ts    sim.Time
	Dur   sim.Time
	ID    uint64
}

// Visit calls fn for every recorded event in recording order. It is
// nil-receiver safe (a disabled tracer visits nothing), so offline
// consumers need no enabled check.
func (t *Tracer) Visit(fn func(Event)) {
	if t == nil {
		return
	}
	for i := range t.events {
		e := &t.events[i]
		fn(Event{
			Name: e.name, Cat: e.cat, Phase: e.ph,
			Pid: e.pid, Tid: e.tid, Ts: e.ts, Dur: e.dur, ID: e.id,
		})
	}
}

// CountCategory reports how many events carry the given category (used by
// tests and the CLI summary).
func (t *Tracer) CountCategory(cat string) int {
	if t == nil {
		return 0
	}
	n := 0
	for i := range t.events {
		if t.events[i].cat == cat {
			n++
		}
	}
	return n
}

// WriteFile serializes the trace as Chrome trace-event JSON to path.
func (t *Tracer) WriteFile(path string) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer has nothing to write")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteJSON serializes the trace in the Chrome trace-event JSON object
// format ({"traceEvents": [...]}) with metadata events first. Event
// serialization is hand-rolled: traces routinely hold millions of events
// and reflective encoding would dominate export time.
func (t *Tracer) WriteJSON(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer has nothing to write")
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
	}

	// Metadata: stable ordering for reproducible output.
	pids := make([]int32, 0, len(t.procs))
	for pid := range t.procs {
		pids = append(pids, pid)
	}
	sort.Slice(pids, func(i, j int) bool { return pids[i] < pids[j] })
	for _, pid := range pids {
		sep()
		fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`,
			pid, quote(t.procs[pid]))
	}
	tkeys := make([]int64, 0, len(t.threads))
	for k := range t.threads {
		tkeys = append(tkeys, k)
	}
	sort.Slice(tkeys, func(i, j int) bool { return tkeys[i] < tkeys[j] })
	for _, k := range tkeys {
		pid, tid := int32(k>>32), int32(uint32(k))
		sep()
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pid, tid, quote(t.threads[k]))
	}

	var buf []byte
	for i := range t.events {
		e := &t.events[i]
		sep()
		buf = buf[:0]
		buf = append(buf, `{"name":`...)
		buf = append(buf, quote(e.name)...)
		if e.cat != "" {
			buf = append(buf, `,"cat":`...)
			buf = append(buf, quote(e.cat)...)
		}
		buf = append(buf, `,"ph":"`...)
		buf = append(buf, e.ph)
		buf = append(buf, `","pid":`...)
		buf = strconv.AppendInt(buf, int64(e.pid), 10)
		if e.ph == phComplete || e.ph == phInstant {
			buf = append(buf, `,"tid":`...)
			buf = strconv.AppendInt(buf, int64(e.tid), 10)
		}
		buf = append(buf, `,"ts":`...)
		buf = appendMicros(buf, e.ts)
		switch e.ph {
		case phComplete:
			buf = append(buf, `,"dur":`...)
			buf = appendMicros(buf, e.dur)
		case phInstant:
			buf = append(buf, `,"s":"t"`...)
		case phAsyncBegin, phAsyncEnd:
			buf = append(buf, `,"id":`...)
			buf = strconv.AppendUint(buf, e.id, 10)
		case phCounter:
			buf = append(buf, `,"args":{"value":`...)
			buf = strconv.AppendFloat(buf, e.val, 'g', -1, 64)
			buf = append(buf, '}')
		}
		buf = append(buf, '}')
		bw.Write(buf)
	}
	bw.WriteString("],\"displayTimeUnit\":\"ns\"}")
	return bw.Flush()
}

// appendMicros renders a simulated time as trace microseconds, keeping
// picosecond precision as a fixed six-digit fraction.
func appendMicros(buf []byte, t sim.Time) []byte {
	ps := int64(t)
	if ps < 0 {
		buf = append(buf, '-')
		ps = -ps
	}
	buf = strconv.AppendInt(buf, ps/1_000_000, 10)
	frac := ps % 1_000_000
	if frac == 0 {
		return buf
	}
	buf = append(buf, '.')
	digits := strconv.AppendInt(nil, frac+1_000_000, 10) // "1ffffff"
	d := digits[1:]
	// Trim trailing zeros for compactness.
	for len(d) > 1 && d[len(d)-1] == '0' {
		d = d[:len(d)-1]
	}
	return append(buf, d...)
}

// quote renders a JSON string literal for trace names (ASCII-safe escape).
func quote(s string) string { return strconv.Quote(s) }

package trace

import (
	"testing"

	"cais/internal/sim"
)

// BenchmarkDisabledHotPath measures the instrumentation cost with tracing
// disabled (nil tracer): the opt-in guarantee requires 0 allocs/op so the
// bit-reproducible engine pays nothing when no tracer is attached. CI
// asserts the allocation bound via TestDisabledInstrumentationAllocatesNothing;
// this benchmark reports it (run with -benchmem).
func BenchmarkDisabledHotPath(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(1, 2, "gpu.tb", "gemm", sim.Time(i), sim.Time(i+10))
		tr.Instant(1, 2, "gpu.sync", "wait", sim.Time(i))
		tr.BeginAsync(3, "kernel", "k", uint64(i), sim.Time(i))
		tr.EndAsync(3, "kernel", "k", uint64(i), sim.Time(i+10))
		tr.Counter(3, "merge.used", sim.Time(i), float64(i))
	}
}

// BenchmarkEnabledSpan is the reference point: the cost of one recorded
// span with tracing on (amortized slice append).
func BenchmarkEnabledSpan(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Span(1, 2, "gpu.tb", "gemm", sim.Time(i), sim.Time(i+10))
	}
}

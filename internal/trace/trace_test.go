package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"cais/internal/sim"
)

func TestNilTracerIsDisabledAndSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must report disabled")
	}
	// Every recording method must be a no-op on the nil receiver.
	tr.Span(1, 2, "cat", "name", 0, 10)
	tr.Instant(1, 2, "cat", "name", 5)
	tr.BeginAsync(1, "cat", "name", 7, 0)
	tr.EndAsync(1, "cat", "name", 7, 10)
	tr.Counter(1, "name", 0, 1.5)
	tr.NameProcess(1, "p")
	tr.NameThread(1, 2, "t")
	if tr.Len() != 0 || tr.NextID() != 0 || tr.CountCategory("cat") != 0 {
		t.Fatal("nil tracer must record nothing")
	}
	if err := tr.WriteJSON(&strings.Builder{}); err == nil {
		t.Fatal("nil tracer WriteJSON must error")
	}
}

func TestEngineAttachment(t *testing.T) {
	eng := sim.NewEngine()
	if FromEngine(eng) != nil {
		t.Fatal("fresh engine must have no tracer")
	}
	tr := New()
	Attach(eng, tr)
	if FromEngine(eng) != tr {
		t.Fatal("FromEngine must return the attached tracer")
	}
	Attach(eng, nil)
	if FromEngine(eng) != nil {
		t.Fatal("detaching must clear the tracer")
	}
}

// chromeEvent is the decoded shape used to validate serialization.
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	ID   uint64  `json:"id"`
	Args map[string]any
}

func decode(t *testing.T, tr *Tracer) []chromeEvent {
	t.Helper()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v\n%s", err, sb.String())
	}
	return doc.TraceEvents
}

func TestWriteJSONChromeFormat(t *testing.T) {
	tr := New()
	tr.NameProcess(GPUPid(0), "gpu0")
	tr.NameThread(GPUPid(0), 3, "sm3")
	tr.Span(GPUPid(0), 3, "gpu.tb", "gemm", 2*sim.Microsecond, 5*sim.Microsecond)
	tr.Instant(GPUPid(0), 3, "gpu.tb", "evict", 7*sim.Microsecond)
	id := tr.NextID()
	tr.BeginAsync(SwitchPid(1), "nvswitch.merge", "red.session", id, sim.Microsecond)
	tr.EndAsync(SwitchPid(1), "nvswitch.merge", "red.session", id, 4*sim.Microsecond)
	tr.Counter(SwitchPid(1), "merge.used", 3*sim.Microsecond, 4096)

	evs := decode(t, tr)
	if len(evs) != 7 { // 2 metadata + 5 events
		t.Fatalf("event count = %d, want 7", len(evs))
	}
	byPh := map[string]int{}
	for _, e := range evs {
		byPh[e.Ph]++
	}
	for _, ph := range []string{"M", "X", "i", "b", "e", "C"} {
		if byPh[ph] == 0 {
			t.Fatalf("missing phase %q in %v", ph, byPh)
		}
	}
	// The complete span: ts in microseconds, dur = 3us.
	for _, e := range evs {
		if e.Ph == "X" {
			if e.Ts != 2 || e.Dur != 3 {
				t.Fatalf("span ts/dur = %v/%v, want 2/3", e.Ts, e.Dur)
			}
			if e.Pid != int(GPUPid(0)) || e.Tid != 3 {
				t.Fatalf("span pid/tid = %d/%d", e.Pid, e.Tid)
			}
		}
	}
	if tr.CountCategory("nvswitch.merge") != 2 {
		t.Fatalf("CountCategory = %d, want 2", tr.CountCategory("nvswitch.merge"))
	}
}

func TestSubMicrosecondPrecision(t *testing.T) {
	tr := New()
	// 1.5 ns = 1500 ps = 0.0015 us must survive the ps->us mapping.
	tr.Span(0, 0, "c", "n", 1500*sim.Picosecond, 3000*sim.Picosecond)
	evs := decode(t, tr)
	if evs[0].Ts != 0.0015 || evs[0].Dur != 0.0015 {
		t.Fatalf("ts/dur = %v/%v, want 0.0015/0.0015", evs[0].Ts, evs[0].Dur)
	}
}

func TestSpanClampsNegativeDuration(t *testing.T) {
	tr := New()
	tr.Span(0, 0, "c", "n", 10, 5)
	evs := decode(t, tr)
	if evs[0].Dur != 0 {
		t.Fatalf("negative duration must clamp to 0, got %v", evs[0].Dur)
	}
}

func TestNameEscaping(t *testing.T) {
	tr := New()
	tr.Span(0, 0, `cat"quote`, "name\nnewline", 0, 1)
	evs := decode(t, tr)
	if evs[0].Name != "name\nnewline" || evs[0].Cat != `cat"quote` {
		t.Fatalf("escaping roundtrip failed: %+v", evs[0])
	}
}

// TestDisabledInstrumentationAllocatesNothing guards the opt-in guarantee:
// with no tracer attached, an instrumentation call site is a nil check and
// must not allocate.
func TestDisabledInstrumentationAllocatesNothing(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Span(1, 2, "gpu.tb", "gemm", 0, 10)
		tr.Instant(1, 2, "gpu.sync", "wait", 5)
		tr.BeginAsync(3, "kernel", "k", 1, 0)
		tr.EndAsync(3, "kernel", "k", 1, 10)
		tr.Counter(3, "merge.used", 5, 42)
		tr.Visit(func(Event) {}) // the attribution reader is nil-safe too
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer hot path allocates %v bytes-equiv/op, want 0", allocs)
	}
}

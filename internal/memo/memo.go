// Package memo is the cross-sweep simulation-point cache: a
// content-addressed map from the canonical digest of a fully-resolved
// simulation point (hardware, strategy spec, workload, run options, fault
// schedule) to its value-type result. Figure drivers that share anchor
// points — the TP-NVLS / CAIS runs repeated by Fig. 11/12/15/16 and
// Table 2 — simulate each point once per `caissim -experiment all`
// invocation and serve the rest from the cache.
//
// The contract that keeps memoized output byte-identical to cold runs:
//
//   - Keys cover every input that can change the simulated result — and
//     nothing else. Worker count is excluded by construction (the key
//     builders never see it): a point's result is independent of which
//     goroutine computes it (see internal/sweep's determinism contract).
//   - Defaults are resolved before hashing, so a zero value and its
//     explicit default hash identically (StepLimit 0 vs
//     strategy.DefaultStepLimit, nil vs empty fault schedule).
//   - Entries are plain values (times, summaries, telemetry snapshots):
//     no machine, engine or other live state is retained, so a cache hit
//     cannot observe or perturb a later run. Callers must treat the
//     telemetry snapshot as read-only — it is shared across hits.
//
// The cache is the one component outside internal/sweep that parallel
// workers share, so it is mutex-guarded, with single-flight deduplication:
// when two workers race to the same cold key, one simulates and the other
// waits, keeping "strictly fewer runs with memoization on" true at any
// worker count.
package memo

import (
	"sync"

	"cais/internal/attrib"
	"cais/internal/metrics"
	"cais/internal/nvswitch"
	"cais/internal/sim"
)

// Entry is the value-type result of one simulation point: everything the
// experiment drivers consume, nothing tied to the run's live objects.
type Entry struct {
	Strategy  string
	Elapsed   sim.Time
	Stats     nvswitch.Summary
	AvgUtil   float64
	MergeHWM  int64
	Telemetry metrics.Snapshot
	// UpBytes/DownBytes capture machine.DirectionTraffic at completion
	// (Fig. 10's decomposition): the machine itself is not retained.
	UpBytes   int64
	DownBytes int64
	// Timeline is the replayable utilization timeline recorded when the
	// point ran with Options.UtilBin > 0 (Fig. 16). Shared across hits —
	// read-only, like Telemetry.
	Timeline metrics.UtilTimeline
	// Attrib is the attribution report recorded under Options.Attrib
	// (DESIGN.md §12). Shared across hits — read-only.
	Attrib *attrib.Report
}

// Speedup reports other's elapsed time divided by e's (how much faster e
// is), mirroring strategy.Result.Speedup.
func (e Entry) Speedup(other Entry) float64 {
	if e.Elapsed <= 0 {
		return 0
	}
	return float64(other.Elapsed) / float64(e.Elapsed)
}

// cell is one cache slot. done is closed when the in-flight computation
// finishes; ready distinguishes a populated cell from an abandoned one.
type cell struct {
	done  chan struct{}
	ready bool
	val   Entry
	err   error
}

// Cache is a content-addressed simulation-point cache, safe for use from
// parallel sweep workers.
type Cache struct {
	mu    sync.Mutex
	cells map[uint64]*cell

	hits     metrics.AtomicCounter // lookups served from a populated cell
	misses   metrics.AtomicCounter // lookups that simulated the point
	inflight metrics.AtomicCounter // lookups that waited on another worker
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{cells: make(map[uint64]*cell)}
}

// Hits reports lookups served from the cache (including waits on a
// concurrent first run).
func (c *Cache) Hits() int64 { return c.hits.Value() + c.inflight.Value() }

// Misses reports lookups that had to simulate the point.
func (c *Cache) Misses() int64 { return c.misses.Value() }

// Lookups reports total Do calls.
func (c *Cache) Lookups() int64 { return c.Hits() + c.Misses() }

// Len reports populated entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, s := range c.cells {
		if s.ready {
			n++
		}
	}
	return n
}

// RegisterMetrics exposes the cache's counters in a metrics registry
// (memo.* gauges in -metrics-json). GaugeFunc reads at snapshot time, so
// one registration at startup reports end-of-sweep totals.
func (c *Cache) RegisterMetrics(reg *metrics.Registry) {
	if c == nil || reg == nil {
		return
	}
	reg.GaugeFunc("memo.hits", func() float64 { return float64(c.hits.Value()) })
	reg.GaugeFunc("memo.misses", func() float64 { return float64(c.misses.Value()) })
	reg.GaugeFunc("memo.inflight_waits", func() float64 { return float64(c.inflight.Value()) })
	reg.GaugeFunc("memo.entries", func() float64 { return float64(c.Len()) })
}

// Do returns the entry for key, computing it with fn on first use. A nil
// cache always computes. Concurrent calls for the same cold key run fn
// once; the others block until it completes. Errors are cached like
// values (re-simulating a failing point would fail identically — the
// inputs are the key). If fn panics, the panic propagates and the slot is
// abandoned so waiters retry instead of wedging.
func (c *Cache) Do(key uint64, fn func() (Entry, error)) (Entry, error) {
	if c == nil {
		return fn()
	}
	for {
		c.mu.Lock()
		s, ok := c.cells[key]
		if ok {
			ready := s.ready
			c.mu.Unlock()
			if ready {
				c.hits.Inc()
				return s.val, s.err
			}
			// In flight elsewhere: the channel close publishes val/err/ready
			// (happens-before), so no re-lock is needed after the wait.
			<-s.done
			if s.ready {
				c.inflight.Inc()
				return s.val, s.err
			}
			// The computing worker panicked and abandoned the slot;
			// retry (we may become the new computing worker).
			continue
		}
		s = &cell{done: make(chan struct{})}
		c.cells[key] = s
		c.mu.Unlock()
		c.misses.Inc()

		completed := false
		defer func() {
			if !completed {
				// fn panicked: remove the slot and release waiters so the
				// panic (which sweep.Map re-raises deterministically) is
				// not compounded by a deadlock.
				c.mu.Lock()
				delete(c.cells, key)
				c.mu.Unlock()
				close(s.done)
			}
		}()
		val, err := fn()
		completed = true
		c.mu.Lock()
		s.val, s.err, s.ready = val, err, true
		c.mu.Unlock()
		close(s.done)
		return val, err
	}
}

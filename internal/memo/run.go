package memo

import (
	"cais/internal/config"
	"cais/internal/model"
	"cais/internal/strategy"
)

// entryOf flattens a strategy.Result into the cacheable value type,
// capturing the direction-traffic decomposition before the machine is
// dropped.
func entryOf(res strategy.Result) Entry {
	e := Entry{
		Strategy:  res.Strategy,
		Elapsed:   res.Elapsed,
		Stats:     res.Stats,
		AvgUtil:   res.AvgUtil,
		MergeHWM:  res.MergeHWM,
		Telemetry: res.Telemetry,
		Timeline:  res.Timeline,
		Attrib:    res.Attrib,
	}
	if res.Machine != nil {
		e.UpBytes, e.DownBytes = res.Machine.DirectionTraffic()
	}
	return e
}

// RunSubLayer is the memoizing wrapper around strategy.RunSubLayer: a nil
// cache or non-cacheable options (live callbacks) always simulate;
// otherwise the point simulates at most once per cache lifetime.
func RunSubLayer(c *Cache, hw config.Hardware, spec strategy.Spec, sub model.SubLayer, opts strategy.Options) (Entry, error) {
	run := func() (Entry, error) {
		res, err := strategy.RunSubLayer(hw, spec, sub, opts)
		return entryOf(res), err
	}
	if c == nil || !Cacheable(opts) {
		return run()
	}
	return c.Do(KeySubLayer(hw, spec, sub, opts), run)
}

// RunLayers is the memoizing wrapper around strategy.RunLayersOpts.
func RunLayers(c *Cache, hw config.Hardware, spec strategy.Spec, cfg config.Model, training bool, layers int, opts strategy.Options) (Entry, error) {
	run := func() (Entry, error) {
		res, err := strategy.RunLayersOpts(hw, spec, cfg, training, layers, opts)
		return entryOf(res), err
	}
	if c == nil || !Cacheable(opts) {
		return run()
	}
	return c.Do(KeyLayers(hw, spec, cfg, training, layers, opts), run)
}

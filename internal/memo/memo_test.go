package memo

import (
	"errors"
	"sync"
	"testing"
)

// TestCacheHitMiss pins the accounting contract the CLI and the
// fewer-runs assertion rely on: first lookup misses and computes, repeats
// hit without recomputing, distinct keys stay distinct.
func TestCacheHitMiss(t *testing.T) {
	c := NewCache()
	calls := 0
	fn := func() (Entry, error) {
		calls++
		return Entry{Strategy: "X", UpBytes: int64(calls)}, nil
	}
	a, err := c.Do(1, fn)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Do(1, fn)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("fn ran %d times for one key, want 1", calls)
	}
	if a.Strategy != b.Strategy || a.UpBytes != b.UpBytes {
		t.Fatalf("hit returned a different entry: %+v vs %+v", a, b)
	}
	if _, err := c.Do(2, fn); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Fatalf("distinct key did not compute: %d calls", calls)
	}
	if c.Hits() != 1 || c.Misses() != 2 || c.Lookups() != 3 {
		t.Fatalf("accounting hits=%d misses=%d lookups=%d, want 1/2/3",
			c.Hits(), c.Misses(), c.Lookups())
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}
}

// TestCacheCachesErrors pins that a failing point fails once: the inputs
// are the key, so re-simulating would fail identically.
func TestCacheCachesErrors(t *testing.T) {
	c := NewCache()
	boom := errors.New("boom")
	calls := 0
	fail := func() (Entry, error) { calls++; return Entry{}, boom }
	if _, err := c.Do(7, fail); !errors.Is(err, boom) {
		t.Fatalf("err=%v, want boom", err)
	}
	if _, err := c.Do(7, fail); !errors.Is(err, boom) {
		t.Fatalf("cached err=%v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("failing fn ran %d times, want 1", calls)
	}
}

// TestNilCacheComputes pins the -no-memo degradation: a nil cache is a
// pass-through, not a panic.
func TestNilCacheComputes(t *testing.T) {
	var c *Cache
	calls := 0
	for i := 0; i < 2; i++ {
		e, err := c.Do(1, func() (Entry, error) { calls++; return Entry{UpBytes: 9}, nil })
		if err != nil || e.UpBytes != 9 {
			t.Fatalf("nil cache: entry=%+v err=%v", e, err)
		}
	}
	if calls != 2 {
		t.Fatalf("nil cache memoized: %d calls, want 2", calls)
	}
}

// TestCacheSingleFlight pins the dedup contract that makes "strictly fewer
// runs" hold at any worker count: concurrent lookups of one cold key run
// the function exactly once, and every caller gets its value.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache()
	const workers = 16
	var mu sync.Mutex
	calls := 0
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-gate
			e, err := c.Do(42, func() (Entry, error) {
				mu.Lock()
				calls++
				mu.Unlock()
				return Entry{DownBytes: 5}, nil
			})
			if err != nil || e.DownBytes != 5 {
				t.Errorf("entry=%+v err=%v", e, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("cold key computed %d times under contention, want 1", calls)
	}
	if c.Lookups() != workers || c.Misses() != 1 || c.Hits() != workers-1 {
		t.Fatalf("accounting lookups=%d misses=%d hits=%d, want %d/1/%d",
			c.Lookups(), c.Misses(), c.Hits(), workers, workers-1)
	}
}

// TestCachePanicAbandonsSlot pins the failure mode: a panicking compute
// must not wedge the slot — the panic propagates and a later lookup
// recomputes.
func TestCachePanicAbandonsSlot(t *testing.T) {
	c := NewCache()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate")
			}
		}()
		_, _ = c.Do(3, func() (Entry, error) { panic("kaboom") })
	}()
	e, err := c.Do(3, func() (Entry, error) { return Entry{UpBytes: 1}, nil })
	if err != nil || e.UpBytes != 1 {
		t.Fatalf("slot wedged after panic: entry=%+v err=%v", e, err)
	}
}

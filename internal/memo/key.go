package memo

import (
	"math"

	"cais/internal/config"
	"cais/internal/faults"
	"cais/internal/model"
	"cais/internal/strategy"
)

// Hasher accumulates a canonical FNV-1a-64 digest. Every write is typed
// and fixed-width (strings are length-prefixed), so the encoding is
// prefix-free: two different field sequences cannot collide by
// concatenation. Key builders write fields in a single fixed order —
// the canonical form — so equal values always digest equally.
type Hasher struct{ h uint64 }

const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// NewHasher returns a hasher at the FNV-1a offset basis.
func NewHasher() *Hasher { return &Hasher{h: fnvOffset} }

func (h *Hasher) byte(b byte) {
	h.h ^= uint64(b)
	h.h *= fnvPrime
}

// U64 writes a fixed-width unsigned value.
func (h *Hasher) U64(v uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(v >> (8 * i)))
	}
}

// I64 writes a fixed-width signed value.
func (h *Hasher) I64(v int64) { h.U64(uint64(v)) }

// Int writes an int.
func (h *Hasher) Int(v int) { h.U64(uint64(int64(v))) }

// F64 writes a float by bit pattern (NaNs never appear in configs).
func (h *Hasher) F64(v float64) { h.U64(math.Float64bits(v)) }

// Bool writes a bool.
func (h *Hasher) Bool(v bool) {
	if v {
		h.byte(1)
	} else {
		h.byte(0)
	}
}

// Str writes a length-prefixed string.
func (h *Hasher) Str(s string) {
	h.U64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Sum returns the digest.
func (h *Hasher) Sum() uint64 { return h.h }

// hardware digests every config.Hardware field — all of them shape the
// simulated result (Seed included: it drives launch jitter and TB noise).
func (h *Hasher) hardware(hw config.Hardware) {
	h.Int(hw.NumGPUs)
	h.Int(hw.NumSwitchPlanes)
	h.Int(hw.SMsPerGPU)
	h.F64(hw.SMFLOPs)
	h.F64(hw.HBMBandwidth)
	h.F64(hw.LinkBandwidth)
	h.F64(hw.LinkEfficiency)
	h.I64(int64(hw.LinkLatency))
	h.I64(int64(hw.SwitchLatency))
	h.I64(hw.MergeTableBytes)
	h.I64(int64(hw.MergeTimeout))
	h.Int(hw.NumVirtualChannels)
	h.I64(hw.RequestBytes)
	h.I64(int64(hw.KernelLaunchOverhead))
	h.I64(int64(hw.KernelLaunchJitter))
	h.F64(hw.TBTimeNoise)
	h.I64(int64(hw.TBOverhead))
	h.I64(hw.ThrottleWindowBytes)
	h.Int(hw.CommSMs)
	h.Int(hw.ElemBytes)
	h.U64(hw.Seed)
}

// spec digests the full strategy.Spec, not just its name: ablation specs
// (Fig. 13b) share a name while differing in coordination knobs.
func (h *Hasher) spec(s strategy.Spec) {
	h.Str(s.Name)
	h.Int(int(s.Layout))
	h.Int(int(s.Gather))
	h.Int(int(s.Reduce))
	h.Int(int(s.Barrier))
	h.Int(s.Chunks)
	h.Bool(s.FusedComm)
	h.Bool(s.CoordPreLaunch)
	h.Bool(s.CoordPreAccess)
	h.Bool(s.Throttled)
	h.Bool(s.TrafficControl)
}

// options digests the value-type run knobs with defaults resolved, so a
// zero knob and its explicit default key identically. Callback knobs
// (Configure, Tracer, Progress) are NOT digested — points carrying them
// must bypass the cache entirely (see Cacheable).
func (h *Hasher) options(o strategy.Options) {
	h.I64(o.MergeTableBytes)
	h.Bool(o.UnlimitedMergeTable)
	h.Bool(o.NoMergeTimeout)
	h.Int(int(o.Eviction))
	h.Bool(o.NoControlSideband)
	limit := o.StepLimit
	if limit == 0 {
		limit = strategy.DefaultStepLimit
	}
	h.U64(limit)
	h.faults(o.Faults)
	h.I64(int64(o.UtilBin))
	h.Bool(o.Attrib)
}

// faults digests a fault schedule. An empty schedule is bit-identical to
// no schedule at run time (faults.Schedule.Empty), so both digest as the
// same zero marker; the schedule name is cosmetic and excluded.
func (h *Hasher) faults(s *faults.Schedule) {
	if s.Empty() {
		h.U64(0)
		return
	}
	h.U64(uint64(len(s.Faults)))
	for _, f := range s.Faults {
		h.Int(int(f.Kind))
		h.I64(int64(f.At))
		h.I64(int64(f.For))
		h.Int(f.Plane)
		h.Int(f.GPU)
		h.Int(int(f.Dir))
		h.F64(f.Factor)
	}
}

func (h *Hasher) op(o model.OpSpec) {
	h.Str(o.Name)
	h.Int(int(o.Kind))
	h.Int(o.M)
	h.Int(o.N)
	h.Int(o.K)
	h.Int(o.Rows)
	h.Int(o.Cols)
	h.Int(o.Batch)
	h.Int(o.Heads)
	h.Int(o.Seq)
	h.Int(o.HeadDim)
	h.F64(o.BackwardScale)
}

// Cacheable reports whether a point's options permit memoization: the
// callback knobs observe or mutate the live machine, which a cache hit
// does not build.
func Cacheable(o strategy.Options) bool {
	return o.Configure == nil && o.Tracer == nil && o.Progress == nil
}

// KeySubLayer digests a strategy.RunSubLayer point.
func KeySubLayer(hw config.Hardware, spec strategy.Spec, sub model.SubLayer, opts strategy.Options) uint64 {
	h := NewHasher()
	h.Str("sublayer")
	h.hardware(hw)
	h.spec(spec)
	h.Str(sub.ID)
	h.op(sub.RowGEMM)
	h.op(sub.LN)
	h.op(sub.ColGEMM)
	h.options(opts)
	return h.Sum()
}

// KeyLayers digests a strategy.RunLayersOpts point.
func KeyLayers(hw config.Hardware, spec strategy.Spec, cfg config.Model, training bool, layers int, opts strategy.Options) uint64 {
	h := NewHasher()
	h.Str("layers")
	h.hardware(hw)
	h.spec(spec)
	h.Str(cfg.Name)
	h.Int(cfg.Hidden)
	h.Int(cfg.FFNHidden)
	h.Int(cfg.Heads)
	h.Int(cfg.SeqLen)
	h.Int(cfg.Batch)
	h.Int(cfg.Layers)
	h.Bool(training)
	h.Int(layers)
	h.options(opts)
	return h.Sum()
}

package memo

import (
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"cais/internal/config"
	"cais/internal/faults"
	"cais/internal/lint"
	"cais/internal/machine"
	"cais/internal/model"
	"cais/internal/sim"
	"cais/internal/strategy"
	"cais/internal/trace"
)

func testPoint() (config.Hardware, strategy.Spec, model.SubLayer) {
	hw := config.DGXH100()
	spec := strategy.CAIS()
	sub := model.SubLayers(config.LLaMA7B())[1]
	return hw, spec, sub
}

// TestKeyDeterministic pins that key construction is a pure function of the
// point: equal inputs digest equally, run after run.
func TestKeyDeterministic(t *testing.T) {
	hw, spec, sub := testPoint()
	opts := strategy.Options{MergeTableBytes: 40 << 10}
	a := KeySubLayer(hw, spec, sub, opts)
	b := KeySubLayer(hw, spec, sub, opts)
	if a != b {
		t.Fatalf("same point digested differently: %#x vs %#x", a, b)
	}
	cfg := config.LLaMA7B()
	la := KeyLayers(hw, spec, cfg, true, 2, opts)
	lb := KeyLayers(hw, spec, cfg, true, 2, opts)
	if la != lb {
		t.Fatalf("same layers point digested differently: %#x vs %#x", la, lb)
	}
}

// TestKeyDomainSeparation pins that a sub-layer point and a layers point
// cannot collide merely by field coincidence: the key builders write
// distinct domain prefixes.
func TestKeyDomainSeparation(t *testing.T) {
	hw, spec, sub := testPoint()
	a := KeySubLayer(hw, spec, sub, strategy.Options{})
	b := KeyLayers(hw, spec, config.LLaMA7B(), false, 1, strategy.Options{})
	if a == b {
		t.Fatal("sub-layer and layers keys collided")
	}
}

// TestKeyDefaultResolution pins the canonicalization contract: a zero
// option and its explicit default are the same point and must hash
// identically (a cold run and a defaulted run would simulate identically).
func TestKeyDefaultResolution(t *testing.T) {
	hw, spec, sub := testPoint()

	zero := KeySubLayer(hw, spec, sub, strategy.Options{})
	explicit := KeySubLayer(hw, spec, sub, strategy.Options{StepLimit: strategy.DefaultStepLimit})
	if zero != explicit {
		t.Errorf("StepLimit 0 and explicit default hash differently: %#x vs %#x", zero, explicit)
	}

	nilSched := KeySubLayer(hw, spec, sub, strategy.Options{Faults: nil})
	emptySched := KeySubLayer(hw, spec, sub, strategy.Options{Faults: &faults.Schedule{}})
	if nilSched != emptySched {
		t.Errorf("nil and empty fault schedules hash differently: %#x vs %#x", nilSched, emptySched)
	}

	// A schedule's name is cosmetic (it never reaches the simulation); two
	// schedules differing only in name are the same point.
	f := []faults.Fault{{Kind: faults.Straggler, At: 0, GPU: 0, Plane: faults.All, Factor: 2}}
	named := KeySubLayer(hw, spec, sub, strategy.Options{Faults: &faults.Schedule{Name: "a", Faults: f}})
	renamed := KeySubLayer(hw, spec, sub, strategy.Options{Faults: &faults.Schedule{Name: "b", Faults: f}})
	if named != renamed {
		t.Errorf("schedule name leaked into the key: %#x vs %#x", named, renamed)
	}
}

// TestKeySemanticFieldsDiffer pins that every result-shaping input moves
// the key: seed, fault schedule contents, option knobs, and spec knobs
// hiding behind a shared name.
func TestKeySemanticFieldsDiffer(t *testing.T) {
	hw, spec, sub := testPoint()
	base := KeySubLayer(hw, spec, sub, strategy.Options{})

	seeded := hw
	seeded.Seed = hw.Seed + 1
	if KeySubLayer(seeded, spec, sub, strategy.Options{}) == base {
		t.Error("seed change did not move the key")
	}

	sched := &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.LinkDegrade, At: 0, Plane: faults.All, GPU: faults.All, Factor: 0.5},
	}}
	faulted := KeySubLayer(hw, spec, sub, strategy.Options{Faults: sched})
	if faulted == base {
		t.Error("fault schedule did not move the key")
	}
	harder := &faults.Schedule{Faults: []faults.Fault{
		{Kind: faults.LinkDegrade, At: 0, Plane: faults.All, GPU: faults.All, Factor: 0.25},
	}}
	if KeySubLayer(hw, spec, sub, strategy.Options{Faults: harder}) == faulted {
		t.Error("fault severity change did not move the key")
	}

	if KeySubLayer(hw, spec, sub, strategy.Options{UnlimitedMergeTable: true}) == base {
		t.Error("UnlimitedMergeTable did not move the key")
	}
	if KeySubLayer(hw, spec, sub, strategy.Options{MergeTableBytes: 40 << 10}) == base {
		t.Error("MergeTableBytes did not move the key")
	}

	// Fig. 13b's ablation specs share one name while differing in
	// coordination knobs: the full spec is digested, not just the name.
	tweaked := spec
	tweaked.Throttled = !spec.Throttled
	if KeySubLayer(hw, tweaked, sub, strategy.Options{}) == base {
		t.Error("spec knob change behind an unchanged name did not move the key")
	}
}

// TestKeyExcludesWorkerCount pins the exclusion that keeps memoization
// sound under -parallel: the worker count is not an input to any key
// builder (their signatures never see it), so the same point digests
// identically no matter how the sweep is scheduled. The GOMAXPROCS toggle
// below is the strongest runtime probe available for a by-construction
// property.
func TestKeyExcludesWorkerCount(t *testing.T) {
	hw, spec, sub := testPoint()
	before := KeySubLayer(hw, spec, sub, strategy.Options{})
	old := runtime.GOMAXPROCS(1)
	during := KeySubLayer(hw, spec, sub, strategy.Options{})
	runtime.GOMAXPROCS(old)
	if before != during {
		t.Fatal("key depends on runtime parallelism")
	}
}

// TestCacheable pins the bypass rule: any live-callback knob disqualifies
// a point (the callback observes or mutates machine state that a cache hit
// never builds).
func TestCacheable(t *testing.T) {
	if !Cacheable(strategy.Options{UnlimitedMergeTable: true, StepLimit: 5}) {
		t.Error("value-only options should be cacheable")
	}
	if Cacheable(strategy.Options{Progress: func(sim.Time, uint64) {}}) {
		t.Error("Progress callback must bypass the cache")
	}
	if Cacheable(strategy.Options{Configure: func(*machine.Machine) {}}) {
		t.Error("Configure callback must bypass the cache")
	}
	if Cacheable(strategy.Options{Tracer: trace.New()}) {
		t.Error("Tracer must bypass the cache")
	}
}

// copyModuleForMutation copies the module's buildable source (non-test
// .go files plus go.mod, skipping nested test modules) into a temp dir
// so a mutation can be applied without touching the checkout.
func copyModuleForMutation(t *testing.T) string {
	t.Helper()
	src, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "testdata", ".github":
				return fs.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		keep := rel == "go.mod" ||
			(strings.HasSuffix(rel, ".go") && !strings.HasSuffix(rel, "_test.go"))
		if !keep {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestKeyMutationCaughtByLint is the mutation test closing the loop
// between this package and caislint's digestcover pass: delete a single
// field-digest line from key.go and the analyzer must report exactly that
// field as uncovered. One mutation per Hasher digest method (hardware,
// spec, options, and the fault range loop).
func TestKeyMutationCaughtByLint(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks a mutated module copy per case; skipped in -short")
	}
	mutations := []struct {
		deleteLine string // unique substring of the line to delete
		wantField  string // field the diagnostic must name
	}{
		{"h.F64(hw.LinkBandwidth)", "config.Hardware.LinkBandwidth"},
		{"h.Bool(s.Throttled)", "strategy.Spec.Throttled"},
		{"h.I64(int64(o.UtilBin))", "strategy.Options.UtilBin"},
		{"h.F64(f.Factor)", "faults.Fault.Factor"},
	}
	for _, m := range mutations {
		t.Run(m.wantField, func(t *testing.T) {
			root := copyModuleForMutation(t)
			keyPath := filepath.Join(root, "internal", "memo", "key.go")
			data, err := os.ReadFile(keyPath)
			if err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(string(data), "\n")
			kept := lines[:0]
			removed := 0
			for _, line := range lines {
				if strings.Contains(line, m.deleteLine) {
					removed++
					continue
				}
				kept = append(kept, line)
			}
			if removed != 1 {
				t.Fatalf("substring %q matched %d lines in key.go, want exactly 1", m.deleteLine, removed)
			}
			if err := os.WriteFile(keyPath, []byte(strings.Join(kept, "\n")), 0o644); err != nil {
				t.Fatal(err)
			}
			diags, err := lint.Run(lint.Config{
				Dir:      root,
				Patterns: []string{"./internal/memo"},
				Checks:   []string{"digestcover"},
			})
			if err != nil {
				t.Fatalf("lint.Run on mutated module: %v", err)
			}
			for _, d := range diags {
				if d.Check == "digestcover" && strings.Contains(d.Msg, m.wantField) {
					return
				}
			}
			t.Fatalf("digestcover missed the deleted write of %s; diagnostics: %v", m.wantField, diags)
		})
	}
}

package faults

import (
	"reflect"
	"testing"

	"cais/internal/sim"
)

// TestRandomScheduleDeterministic pins the Monte-Carlo generator's
// contract: the same (seed, stream, spec, topology) always yields the same
// schedule, byte for byte.
func TestRandomScheduleDeterministic(t *testing.T) {
	gen := func() *Schedule {
		rng := sim.NewStreamRNG(0xCA15, "faults/campaign")
		return RandomSchedule(rng, "campaign", 8, 4, CampaignSpec{Faults: 8, Horizon: 100 * sim.Microsecond})
	}
	a, b := gen(), gen()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%+v\n%+v", a, b)
	}
	rng := sim.NewStreamRNG(0xBEEF, "faults/campaign")
	c := RandomSchedule(rng, "campaign", 8, 4, CampaignSpec{Faults: 8, Horizon: 100 * sim.Microsecond})
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Error("different seeds produced identical fault lists")
	}
}

// TestRandomScheduleAlwaysValid sweeps many seeds and topologies and
// requires every generated schedule to pass Validate — including the
// at-least-one-surviving-plane rule under heavy plane-kill pressure.
func TestRandomScheduleAlwaysValid(t *testing.T) {
	topos := []struct{ gpus, planes int }{{8, 4}, {4, 2}, {2, 1}, {16, 8}}
	for _, topo := range topos {
		for seed := uint64(0); seed < 64; seed++ {
			rng := sim.NewStreamRNG(seed, "faults/campaign")
			s := RandomSchedule(rng, "campaign", topo.gpus, topo.planes, CampaignSpec{
				Faults: 12, Horizon: 50 * sim.Microsecond,
			})
			if len(s.Faults) != 12 {
				t.Fatalf("topo %+v seed %d: %d faults, want 12", topo, seed, len(s.Faults))
			}
			if err := s.Validate(topo.gpus, topo.planes); err != nil {
				t.Fatalf("topo %+v seed %d: invalid schedule: %v\n%+v", topo, seed, err, s.Faults)
			}
		}
	}
}

// TestRandomScheduleZeroHorizon checks the steady-state mode used by the
// serving study: every onset is t=0.
func TestRandomScheduleZeroHorizon(t *testing.T) {
	rng := sim.NewStreamRNG(1, "faults/campaign")
	s := RandomSchedule(rng, "steady", 8, 4, CampaignSpec{Faults: 10})
	for i, f := range s.Faults {
		if f.At != 0 {
			t.Errorf("fault %d onset %v, want 0 (zero horizon)", i, f.At)
		}
	}
	if err := s.Validate(8, 4); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

package faults

import (
	"cais/internal/sim"
)

// CampaignSpec parameterizes RandomSchedule: a deterministic Monte-Carlo
// fault mix for resilience campaigns that want "some plausible mess" rather
// than a hand-picked scenario. All randomness comes from the caller's
// seeded generator (sim.NewStreamRNG), so a (seed, spec, topology) triple
// always yields the same schedule.
type CampaignSpec struct {
	// Faults is how many faults to draw (default 4).
	Faults int
	// Horizon bounds onset times: each fault starts uniformly in
	// [0, Horizon). Zero means every fault starts at t=0 (steady-state
	// degradation, the serving study's use).
	Horizon sim.Time
	// MaxDeadPlanes caps permanent plane kills (default: planes-1; the
	// validator requires at least one survivor regardless).
	MaxDeadPlanes int
}

// RandomSchedule draws a Validate-clean fault schedule from rng: a mix of
// link degradations, stragglers, merge-unit disables, transient link-down
// windows and (topology permitting) permanent plane kills. The draw order
// is fixed, so the schedule is a pure function of the generator state and
// the arguments.
func RandomSchedule(rng *sim.RNG, name string, numGPUs, numPlanes int, spec CampaignSpec) *Schedule {
	n := spec.Faults
	if n <= 0 {
		n = 4
	}
	maxDead := spec.MaxDeadPlanes
	if maxDead <= 0 || maxDead >= numPlanes {
		maxDead = numPlanes - 1
	}
	onset := func() sim.Time {
		if spec.Horizon <= 0 {
			return 0
		}
		return rng.Between(0, spec.Horizon-1)
	}
	s := &Schedule{Name: name}
	dead := 0
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // all-link bandwidth degradation, 25-75% loss
			s.Faults = append(s.Faults, Fault{
				Kind: LinkDegrade, At: onset(), Plane: All, GPU: All,
				Factor: 0.25 + 0.5*rng.Float64(),
			})
		case 1: // one straggler GPU at 1.25-3x slowdown
			s.Faults = append(s.Faults, Fault{
				Kind: Straggler, At: onset(), Plane: All, GPU: rng.Intn(numGPUs),
				Factor: 1.25 + 1.75*rng.Float64(),
			})
		case 2: // merge units off on one plane
			s.Faults = append(s.Faults, Fault{
				Kind: MergeDisable, At: onset(), Plane: rng.Intn(numPlanes), GPU: All,
			})
		case 3: // transient link-down window (repair mandatory)
			s.Faults = append(s.Faults, Fault{
				Kind: LinkDown, At: onset(), For: rng.Between(sim.Microsecond, 64*sim.Microsecond),
				Plane: rng.Intn(numPlanes), GPU: rng.Intn(numGPUs), Dir: Dir(rng.Intn(3)),
			})
		default: // permanent plane kill, budget permitting; else degrade
			if dead < maxDead {
				// Kill a specific plane once; duplicates are invalid, so
				// kill planes in ascending order regardless of the draw.
				s.Faults = append(s.Faults, Fault{Kind: PlaneDown, At: onset(), Plane: dead, GPU: All})
				dead++
			} else {
				s.Faults = append(s.Faults, Fault{
					Kind: LinkDegrade, At: onset(), Plane: All, GPU: All,
					Factor: 0.25 + 0.5*rng.Float64(),
				})
			}
		}
	}
	return s
}

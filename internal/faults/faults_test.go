package faults

import (
	"strings"
	"testing"

	"cais/internal/sim"
)

func TestValidateAcceptsWellFormedSchedule(t *testing.T) {
	s := &Schedule{Name: "mixed", Faults: []Fault{
		{Kind: LinkDegrade, Plane: All, GPU: All, Dir: DirBoth, Factor: 0.5},
		{Kind: LinkDown, At: 10 * sim.Microsecond, For: 5 * sim.Microsecond, Plane: 1, GPU: 3, Dir: DirUp},
		{Kind: PlaneDown, At: 20 * sim.Microsecond, Plane: 2},
		{Kind: MergeDisable, Plane: All, GPU: All},
		{Kind: Straggler, GPU: 7, Factor: 2},
	}}
	if err := s.Validate(8, 4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
		want string // substring of the error
	}{
		{"negative onset", Schedule{Faults: []Fault{{Kind: Straggler, At: -1, GPU: 0, Factor: 2}}}, "negative onset"},
		{"negative repair", Schedule{Faults: []Fault{{Kind: Straggler, For: -1, GPU: 0, Factor: 2}}}, "negative repair"},
		{"degrade factor zero", Schedule{Faults: []Fault{{Kind: LinkDegrade, Factor: 0}}}, "degrade factor"},
		{"degrade factor above one", Schedule{Faults: []Fault{{Kind: LinkDegrade, Factor: 1.5}}}, "degrade factor"},
		{"permanent link-down", Schedule{Faults: []Fault{{Kind: LinkDown, Plane: 0, GPU: 0}}}, "requires a repair time"},
		{"plane out of range", Schedule{Faults: []Fault{{Kind: PlaneDown, Plane: 4}}}, "plane 4 out of range"},
		{"plane wildcard not allowed", Schedule{Faults: []Fault{{Kind: PlaneDown, Plane: All}}}, "out of range"},
		{"gpu out of range", Schedule{Faults: []Fault{{Kind: Straggler, GPU: 8, Factor: 2}}}, "gpu 8 out of range"},
		{"straggler wildcard not allowed", Schedule{Faults: []Fault{{Kind: Straggler, GPU: All, Factor: 2}}}, "out of range"},
		{"straggler factor below one", Schedule{Faults: []Fault{{Kind: Straggler, GPU: 0, Factor: 0.5}}}, "straggler factor"},
		{"duplicate permanent plane kill", Schedule{Faults: []Fault{
			{Kind: PlaneDown, Plane: 1}, {Kind: PlaneDown, Plane: 1},
		}}, "already failed permanently"},
		{"all planes dead", Schedule{Faults: []Fault{
			{Kind: PlaneDown, Plane: 0}, {Kind: PlaneDown, Plane: 1},
			{Kind: PlaneDown, Plane: 2}, {Kind: PlaneDown, Plane: 3},
		}}, "at least one must survive"},
		{"unknown kind", Schedule{Faults: []Fault{{Kind: Kind(99)}}}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate(8, 4)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.s.Faults)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateNilSchedule(t *testing.T) {
	var s *Schedule
	if err := s.Validate(8, 4); err != nil {
		t.Fatalf("nil schedule should validate: %v", err)
	}
	if !s.Empty() {
		t.Fatal("nil schedule should be Empty")
	}
	if s.HasPlaneFault() {
		t.Fatal("nil schedule should not report a plane fault")
	}
}

func TestParseJSON(t *testing.T) {
	data := []byte(`{
		"name": "degrade-then-fail",
		"faults": [
			{"kind": "link-degrade", "at_us": 0, "plane": -1, "gpu": -1, "factor": 0.25},
			{"kind": "link-down", "at_us": 10, "for_us": 50, "plane": 1, "gpu": 3, "dir": "up"},
			{"kind": "plane-down", "at_us": 100.5, "plane": 2},
			{"kind": "merge-disable", "at_us": 0},
			{"kind": "straggler", "at_us": 0, "gpu": 5, "factor": 2.5}
		]
	}`)
	s, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Name != "degrade-then-fail" || len(s.Faults) != 5 {
		t.Fatalf("got name=%q faults=%d", s.Name, len(s.Faults))
	}
	if err := s.Validate(8, 4); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	f := s.Faults[0]
	if f.Kind != LinkDegrade || f.Plane != All || f.GPU != All || f.Dir != DirBoth || f.Factor != 0.25 {
		t.Errorf("fault 0 decoded as %+v", f)
	}
	f = s.Faults[1]
	if f.Kind != LinkDown || f.At != 10*sim.Microsecond || f.For != 50*sim.Microsecond || f.Dir != DirUp {
		t.Errorf("fault 1 decoded as %+v", f)
	}
	if s.Faults[2].At != sim.Scale(sim.Microsecond, 100.5) {
		t.Errorf("fractional at_us decoded as %v", s.Faults[2].At)
	}
	// Omitted plane/gpu default to 0, not wildcard.
	if s.Faults[3].Plane != 0 || s.Faults[3].GPU != 0 {
		t.Errorf("omitted targets decoded as plane=%d gpu=%d, want 0/0", s.Faults[3].Plane, s.Faults[3].GPU)
	}
	if !s.HasPlaneFault() {
		t.Error("schedule with plane-down should report HasPlaneFault")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte(`{"faults": [{"kind": "gamma-ray"}]}`)); err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("unknown kind: got %v", err)
	}
	if _, err := Parse([]byte(`{"faults": [{"kind": "link-down", "dir": "sideways"}]}`)); err == nil || !strings.Contains(err.Error(), "unknown dir") {
		t.Errorf("unknown dir: got %v", err)
	}
	if _, err := Parse([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestKindAndDirStrings(t *testing.T) {
	if LinkDegrade.String() != "link-degrade" || PlaneDown.String() != "plane-down" {
		t.Error("kind names wrong")
	}
	if DirUp.String() != "up" || DirBoth.String() != "both" {
		t.Error("dir names wrong")
	}
	if !strings.Contains(KindNames(), "straggler") {
		t.Errorf("KindNames() = %q", KindNames())
	}
}

// Package faults defines declarative fault schedules for the simulator:
// link bandwidth degradation, link-down windows, switch-plane failures,
// merge-unit disables, and straggler GPUs. A schedule is pure data — the
// injector in internal/machine turns it into onset/repair events on the
// sim clock. Schedules are constructed from Go code or parsed from JSON
// (the caissim -faults flag), and validated against a concrete topology
// before a run. Everything here is deterministic: a given (workload,
// schedule, seed) triple replays bit-identically.
package faults

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cais/internal/sim"
)

// Kind identifies a fault class.
type Kind int

const (
	// LinkDegrade scales the bandwidth of the targeted links by Factor
	// (0 < Factor <= 1) for the fault window; 0.25 models a link that lost
	// 75% of its lanes.
	LinkDegrade Kind = iota
	// LinkDown stalls the targeted links completely: queued traffic holds
	// and resumes at repair. A repair time is mandatory — a permanently
	// dead link would strand queued packets and deadlock the run (kill the
	// whole plane instead, which re-routes).
	LinkDown
	// PlaneDown fails one switch plane: its merge/NVLS state is flushed,
	// its sync-table entries dropped, and all address/group hashing
	// re-routes over the surviving planes. Repair is optional.
	PlaneDown
	// MergeDisable turns off the CAIS merge units on the targeted planes:
	// ld.cais / red.cais requests take the unmerged forwarding fallback
	// (the same path the strategy layer uses for non-CAIS configurations).
	MergeDisable
	// Straggler scales the targeted GPU's thread-block compute time by
	// Factor (>= 1): a thermally throttled or contended GPU.
	Straggler
)

var kindNames = map[Kind]string{
	LinkDegrade:  "link-degrade",
	LinkDown:     "link-down",
	PlaneDown:    "plane-down",
	MergeDisable: "merge-disable",
	Straggler:    "straggler",
}

var kindByName = map[string]Kind{
	"link-degrade":  LinkDegrade,
	"link-down":     LinkDown,
	"plane-down":    PlaneDown,
	"merge-disable": MergeDisable,
	"straggler":     Straggler,
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Dir selects which link directions a link fault applies to.
type Dir int

const (
	// DirBoth targets both the GPU->switch and switch->GPU links.
	DirBoth Dir = iota
	// DirUp targets only the GPU->switch uplink.
	DirUp
	// DirDown targets only the switch->GPU downlink.
	DirDown
)

var dirNames = map[Dir]string{DirBoth: "both", DirUp: "up", DirDown: "down"}

func (d Dir) String() string {
	if s, ok := dirNames[d]; ok {
		return s
	}
	return fmt.Sprintf("dir(%d)", int(d))
}

// All is the wildcard target: every plane (or every GPU) the fault kind
// can apply to.
const All = -1

// Fault is one scheduled fault. Zero values of the targeting fields mean
// "plane 0" / "GPU 0"; use All (-1) for wildcards where the kind allows.
type Fault struct {
	Kind Kind
	// At is the onset time on the sim clock.
	At sim.Time
	// For is the duration until repair; 0 means the fault persists to the
	// end of the run (invalid for LinkDown — see Validate).
	For sim.Time
	// Plane targets a switch plane (LinkDegrade, LinkDown, PlaneDown,
	// MergeDisable). All (-1) targets every plane where allowed.
	Plane int
	// GPU targets a GPU: the link endpoint for link faults (All = every
	// GPU's links), the merge-unit port for MergeDisable (All = every
	// port), the slowed device for Straggler (wildcard not allowed — a
	// straggler is one device, not the fleet).
	GPU int
	// Dir selects the link direction(s) for LinkDegrade / LinkDown.
	Dir Dir
	// Factor is the bandwidth scale for LinkDegrade (0 < f <= 1) and the
	// compute slowdown for Straggler (f >= 1); ignored otherwise.
	Factor float64
}

// String renders a compact human-readable description, used for trace
// instants and error messages.
func (f Fault) String() string {
	switch f.Kind {
	case LinkDegrade:
		return fmt.Sprintf("%s plane=%d gpu=%d dir=%s factor=%.3g", f.Kind, f.Plane, f.GPU, f.Dir, f.Factor)
	case LinkDown:
		return fmt.Sprintf("%s plane=%d gpu=%d dir=%s", f.Kind, f.Plane, f.GPU, f.Dir)
	case PlaneDown:
		return fmt.Sprintf("%s plane=%d", f.Kind, f.Plane)
	case MergeDisable:
		return fmt.Sprintf("%s plane=%d port=%d", f.Kind, f.Plane, f.GPU)
	case Straggler:
		return fmt.Sprintf("%s gpu=%d factor=%.3g", f.Kind, f.GPU, f.Factor)
	}
	return f.Kind.String()
}

// Schedule is an ordered list of faults. Faults with equal onset times are
// applied in slice order, which makes the whole schedule deterministic.
type Schedule struct {
	Name   string //caislint:nodigest cosmetic label; identical fault lists must share a memo key
	Faults []Fault
}

// Empty reports whether the schedule injects nothing. The injector treats
// an empty (or nil) schedule as "no fault machinery at all", so such runs
// are bit-identical to unfaulted ones.
func (s *Schedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// HasPlaneFault reports whether any fault kills a switch plane. Plane
// failures are the only faults that need the failover machinery (re-route
// hashing, sync re-registration, NVLS completion timeouts) armed.
func (s *Schedule) HasPlaneFault() bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind == PlaneDown {
			return true
		}
	}
	return false
}

func checkPlane(f Fault, numPlanes int, wildcardOK bool) error {
	if f.Plane == All && wildcardOK {
		return nil
	}
	if f.Plane < 0 || f.Plane >= numPlanes {
		return fmt.Errorf("faults: %s: plane %d out of range [0,%d)", f, f.Plane, numPlanes)
	}
	return nil
}

func checkGPU(f Fault, numGPUs int, wildcardOK bool) error {
	if f.GPU == All && wildcardOK {
		return nil
	}
	if f.GPU < 0 || f.GPU >= numGPUs {
		return fmt.Errorf("faults: %s: gpu %d out of range [0,%d)", f, f.GPU, numGPUs)
	}
	return nil
}

// Validate checks the schedule against a concrete topology. Rules beyond
// simple range checks: LinkDown must have a repair time (a permanently dead
// link deadlocks queued traffic), and at least one plane must survive every
// instant of the run (the re-route hash needs a live target).
func (s *Schedule) Validate(numGPUs, numPlanes int) error {
	if s == nil {
		return nil
	}
	if numGPUs < 1 || numPlanes < 1 {
		return fmt.Errorf("faults: topology has %d GPUs / %d planes; need at least 1 of each", numGPUs, numPlanes)
	}
	deadForever := map[int]bool{}
	for i, f := range s.Faults {
		if f.At < 0 {
			return fmt.Errorf("faults: fault %d (%s): negative onset time", i, f)
		}
		if f.For < 0 {
			return fmt.Errorf("faults: fault %d (%s): negative repair delay", i, f)
		}
		switch f.Kind {
		case LinkDegrade:
			if err := checkPlane(f, numPlanes, true); err != nil {
				return err
			}
			if err := checkGPU(f, numGPUs, true); err != nil {
				return err
			}
			if f.Factor <= 0 || f.Factor > 1 {
				return fmt.Errorf("faults: fault %d (%s): degrade factor must be in (0,1]", i, f)
			}
		case LinkDown:
			if err := checkPlane(f, numPlanes, true); err != nil {
				return err
			}
			if err := checkGPU(f, numGPUs, true); err != nil {
				return err
			}
			if f.For <= 0 {
				return fmt.Errorf("faults: fault %d (%s): link-down requires a repair time (For > 0); to remove a link permanently, fail its plane instead", i, f)
			}
		case PlaneDown:
			if err := checkPlane(f, numPlanes, false); err != nil {
				return err
			}
			if f.For == 0 {
				if deadForever[f.Plane] {
					return fmt.Errorf("faults: fault %d (%s): plane %d already failed permanently", i, f, f.Plane)
				}
				deadForever[f.Plane] = true
			}
		case MergeDisable:
			if err := checkPlane(f, numPlanes, true); err != nil {
				return err
			}
			if err := checkGPU(f, numGPUs, true); err != nil {
				return err
			}
		case Straggler:
			if err := checkGPU(f, numGPUs, false); err != nil {
				return err
			}
			if f.Factor < 1 {
				return fmt.Errorf("faults: fault %d (%s): straggler factor must be >= 1", i, f)
			}
		default:
			return fmt.Errorf("faults: fault %d: unknown kind %d", i, int(f.Kind))
		}
	}
	if len(deadForever) >= numPlanes {
		return fmt.Errorf("faults: schedule permanently kills all %d planes; at least one must survive", numPlanes)
	}
	return nil
}

// jsonFault is the wire form of a Fault. Times are microseconds (the
// natural scale for fault windows); omitted fields default to plane 0 /
// gpu 0 / both directions, and wildcards are spelled -1.
type jsonFault struct {
	Kind   string   `json:"kind"`
	AtUS   float64  `json:"at_us"`
	ForUS  float64  `json:"for_us,omitempty"`
	Plane  *int     `json:"plane,omitempty"`
	GPU    *int     `json:"gpu,omitempty"`
	Dir    string   `json:"dir,omitempty"`
	Factor *float64 `json:"factor,omitempty"`
}

type jsonSchedule struct {
	Name   string      `json:"name"`
	Faults []jsonFault `json:"faults"`
}

// Parse decodes a JSON fault schedule. See DESIGN.md §8 for the grammar.
// Parse does not validate against a topology — call Validate once the
// hardware description is known.
func Parse(data []byte) (*Schedule, error) {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return nil, fmt.Errorf("faults: parse: %w", err)
	}
	s := &Schedule{Name: js.Name, Faults: make([]Fault, 0, len(js.Faults))}
	for i, jf := range js.Faults {
		kind, ok := kindByName[jf.Kind]
		if !ok {
			return nil, fmt.Errorf("faults: fault %d: unknown kind %q (valid: %s)", i, jf.Kind, KindNames())
		}
		f := Fault{Kind: kind, At: sim.Scale(sim.Microsecond, jf.AtUS), For: sim.Scale(sim.Microsecond, jf.ForUS)}
		if jf.Plane != nil {
			f.Plane = *jf.Plane
		}
		if jf.GPU != nil {
			f.GPU = *jf.GPU
		}
		if jf.Factor != nil {
			f.Factor = *jf.Factor
		}
		switch jf.Dir {
		case "", "both":
			f.Dir = DirBoth
		case "up":
			f.Dir = DirUp
		case "down":
			f.Dir = DirDown
		default:
			return nil, fmt.Errorf("faults: fault %d: unknown dir %q (valid: both, up, down)", i, jf.Dir)
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

// Load reads and parses a JSON fault schedule from a file.
func Load(path string) (*Schedule, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	return Parse(data)
}

// KindNames lists the valid JSON kind strings, sorted.
func KindNames() string {
	names := make([]string, 0, len(kindByName))
	for n := range kindByName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

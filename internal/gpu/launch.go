package gpu

import (
	"fmt"

	"cais/internal/kernel"
	"cais/internal/pool"
	"cais/internal/sim"
)

// LaunchOpts parameterizes one kernel launch on one GPU.
type LaunchOpts struct {
	// LaunchID is the machine-wide launch sequence number; it seeds the
	// per-launch jitter so the same launch gets different (deterministic)
	// noise on each GPU.
	LaunchID int
	// GroupBase offsets the kernel's TB-local group IDs into the global
	// group-ID space shared with the switch's Group Sync Table.
	GroupBase int
	// OnTBRetire fires when TB tb retires (its posts are issued). out is
	// the TB's Out tile list from its work descriptor, handed back so the
	// machine layer publishes retirement tiles without re-running Work.
	OnTBRetire func(tb int, out []kernel.Tile)
	// OnDone fires when every TB of the launch has retired.
	OnDone func()
}

// Launch is one kernel instance executing on one GPU.
type Launch struct {
	K  *kernel.Kernel
	id int
	g  *GPU

	groupBase int
	limit     int // SM partition size (asymmetric kernel overlapping)
	active    int
	started   bool
	readyAt   sim.Time
	buffered  []int             // eligible TBs seen before readyAt
	ready     pool.Ring[*tbRun] // dispatchable deque (front = priority re-queue)
	remaining int
	done      bool

	onTBRetire func(int, []kernel.Tile)
	onDone     func()

	// StartedAt / FinishedAt bracket the launch for reporting.
	StartedAt  sim.Time
	FinishedAt sim.Time
}

// tbRun is one thread block's runtime state. Runs are pooled per GPU and
// recycled when the TB retires; the lifecycle transitions that used to be
// per-TB closures (dispatch -> pre-phase -> compute -> post-phase ->
// retire) run through a single cached step method value plus a next-state
// tag, so a recycled run schedules its whole lifecycle without allocating
// and the pooled object carries one closure instead of eight.
//
// The single-slot continuation is sound because a TB has exactly one
// outstanding continuation at any time: every site that schedules stepFn
// (event timer, sync-table release, access completion counter) sets next
// first, and the multi-shot counters (preDone / postIssued) keep next
// stable until their pending count drains.
type tbRun struct {
	g     *GPU
	l     *Launch
	tb    int
	desc  kernel.TBDesc
	group int // absolute group ID, -1 when ungrouped

	// loaded marks a coordinated TB whose pre-phase loads completed while
	// it was suspended: on re-dispatch it goes straight to compute.
	loaded bool
	// yielded marks a pre-phase that released its SM slot while the group
	// synchronizes: load completion then re-queues instead of computing.
	yielded bool
	// retireAfterPost: the direct post path still holds its SM slot and
	// must retire; the sync post path released it before waiting.
	retireAfterPost bool
	prePending      int // pre-phase accesses not yet completed
	postPending     int // post-phase accesses not yet fully issued

	// SM-residency trace bookkeeping (slotTid < 0 when untraced/yielded).
	slotTid   int32
	slotStart sim.Time

	// next selects what the cached stepFn does when it fires.
	next uint8
	// stepFn is the cached step method value (preserved across
	// reset/reuse) — the only closure a pooled run carries.
	stepFn func()
}

// tbRun continuation states (values of tbRun.next).
const (
	stepFinish uint8 = iota
	stepPrePhase
	stepPostPhase
	stepReady
	stepPreLoad
	stepPreDone
	stepIssuePosts
	stepPostIssued
)

// step dispatches the run's pending continuation. Callers set r.next
// before handing stepFn to a timer, sync table, or access counter.
func (r *tbRun) step() {
	switch r.next {
	case stepFinish:
		r.g.finishTB(r.l, r)
	case stepPrePhase:
		r.g.tbPrePhase(r.l, r)
	case stepPostPhase:
		r.g.tbPostPhase(r.l, r)
	case stepReady:
		r.enqueueReady()
	case stepPreLoad:
		r.preLoad()
	case stepPreDone:
		r.preDone()
	case stepIssuePosts:
		r.issuePosts()
	case stepPostIssued:
		r.postIssued()
	}
}

// reset clears per-TB state for pool reuse; the g back-pointer and cached
// step method value are the object's identity and survive (caislint:
// poolreset).
func (r *tbRun) reset() {
	r.l = nil
	r.tb = 0
	r.desc = kernel.TBDesc{}
	r.group = 0
	r.loaded = false
	r.yielded = false
	r.retireAfterPost = false
	r.prePending = 0
	r.postPending = 0
	r.slotTid = 0
	r.slotStart = 0
	r.next = stepFinish
}

// getRun pops a recycled run and (first time only) installs its step
// closure.
func (g *GPU) getRun(l *Launch) *tbRun {
	r := g.runs.Get()
	if r.g == nil {
		r.g = g
		r.stepFn = r.step
	}
	r.l = l
	r.group = -1
	r.slotTid = -1
	return r
}

// enqueueReady is the pre-launch sync release: releases arrive in
// admission order, so appending preserves the cross-GPU dispatch order
// (and keeps the home GPU's local-contribution TBs interleaved with their
// groups).
func (r *tbRun) enqueueReady() {
	r.l.ready.PushBack(r)
	r.g.trySchedule()
}

// preLoad is the pre-access sync release: issue every pre access with the
// shared completion counter.
func (r *tbRun) preLoad() {
	r.prePending = len(r.desc.Pre)
	r.next = stepPreDone
	for _, a := range r.desc.Pre {
		r.g.issueAccess(a, r.group, r.l.K.Throttled, nil, r.stepFn)
	}
}

// preDone accounts one pre access completing. A yielded TB re-queues with
// priority (its data already arrived); a slot-holding TB starts compute.
func (r *tbRun) preDone() {
	r.prePending--
	if r.prePending != 0 {
		return
	}
	if r.yielded {
		r.loaded = true
		r.l.ready.PushFront(r)
		r.g.trySchedule()
		return
	}
	r.g.tbCompute(r.l, r)
}

// issuePosts issues every post access; the TB finishes when all are issued
// (posted-write semantics).
func (r *tbRun) issuePosts() {
	if len(r.desc.Post) == 0 {
		r.postComplete()
		return
	}
	r.postPending = len(r.desc.Post)
	r.next = stepPostIssued
	for _, a := range r.desc.Post {
		r.g.issueAccess(a, r.group, r.l.K.Throttled, r.stepFn, nil)
	}
}

// postIssued accounts one post access fully handed to the fabric.
func (r *tbRun) postIssued() {
	r.postPending--
	if r.postPending == 0 {
		r.postComplete()
	}
}

func (r *tbRun) postComplete() {
	if r.retireAfterPost {
		r.g.tbRetire(r.l, r)
		return
	}
	r.g.finishTB(r.l, r)
}

// Launch starts a kernel on this GPU. The caller (machine layer) marks TBs
// eligible as their input tiles become ready.
func (g *GPU) Launch(k *kernel.Kernel, opts LaunchOpts) *Launch {
	if err := k.Validate(); err != nil {
		panic(fmt.Sprintf("gpu%d: %v", g.ID, err))
	}
	l := &Launch{
		K: k, id: opts.LaunchID, g: g,
		groupBase:  opts.GroupBase,
		limit:      g.partitionFor(k),
		remaining:  k.Grid,
		onTBRetire: opts.OnTBRetire,
		onDone:     opts.OnDone,
		StartedAt:  g.eng.Now(),
	}
	overhead := g.hw.KernelLaunchOverhead
	if k.LaunchOverheadOverride > 0 {
		overhead = k.LaunchOverheadOverride
	}
	rng := sim.NewRNG(sim.Hash64(g.seed, uint64(opts.LaunchID)))
	jitter := rng.Between(0, g.hw.KernelLaunchJitter)
	l.readyAt = g.eng.Now() + overhead + jitter
	g.launches = append(g.launches, l)
	g.eng.At(l.readyAt, func() {
		l.started = true
		buffered := l.buffered
		l.buffered = nil
		for _, tb := range buffered {
			l.admit(tb)
		}
		g.trySchedule()
	})
	return l
}

// partitionFor sizes a kernel's SM partition.
func (g *GPU) partitionFor(k *kernel.Kernel) int {
	if k.CommSMs > 0 {
		if k.CommSMs > g.hw.SMsPerGPU {
			return g.hw.SMsPerGPU
		}
		return k.CommSMs
	}
	if k.SMShare > 0 {
		n := int(k.SMShare * float64(g.hw.SMsPerGPU))
		if n < 1 {
			n = 1
		}
		return n
	}
	return g.hw.SMsPerGPU
}

// MarkEligible tells the launch that TB tb's input tiles are ready. The
// machine layer must call this exactly once per TB, in the same order on
// every GPU (our global tile tracker guarantees it); that shared order is
// what makes cross-GPU group synchronization deadlock-free.
func (l *Launch) MarkEligible(tb int) {
	if tb < 0 || tb >= l.K.Grid {
		panic(fmt.Sprintf("gpu%d: eligible tb %d out of grid %d", l.g.ID, tb, l.K.Grid))
	}
	if !l.started {
		l.buffered = append(l.buffered, tb)
		return
	}
	l.admit(tb)
	l.g.trySchedule()
}

// admit runs pre-launch synchronization (when coordinated) and then queues
// the TB for dispatch. No-op TBs (empty slots of an SPMD grid whose work
// lives on another GPU) retire immediately without occupying an SM.
func (l *Launch) admit(tb int) {
	desc := l.K.Work(l.g.ID, tb)
	run := l.g.getRun(l)
	run.tb, run.desc = tb, desc
	if isNoop(desc) {
		run.next = stepFinish
		l.g.eng.After(0, run.stepFn)
		return
	}
	if desc.Group >= 0 {
		run.group = l.groupBase + desc.Group
	}
	if l.K.PreLaunchSync && run.group >= 0 && participates(l.K, desc.Pre, desc.Post) {
		run.next = stepReady
		l.g.sync.Wait(run.group, PhasePreLaunch, l.groupPeers(desc), run.stepFn)
		return
	}
	l.ready.PushBack(run)
}

// groupPeers is the number of GPUs registering this TB's group with the
// switch's Group Sync Table.
func (l *Launch) groupPeers(d kernel.TBDesc) int {
	if d.GroupPeers > 0 {
		return d.GroupPeers
	}
	return l.g.hw.NumGPUs
}

// participates reports whether a TB takes part in its group's
// synchronization: TBs with CAIS-tagged accesses always do; with TB-aware
// request throttling enabled, the data owner's TB (whose access is local)
// also joins, so no GPU runs ahead of its group's peers (Sec. III-B-2).
func participates(k *kernel.Kernel, accLists ...[]kernel.Access) bool {
	for _, accs := range accLists {
		if anyMergeable(accs) {
			return true
		}
		if k.Throttled && anyLocalGrouped(accs) {
			return true
		}
	}
	return false
}

func anyLocalGrouped(accs []kernel.Access) bool {
	for _, a := range accs {
		if a.Local && (a.Sem == kernel.SemRead || a.Sem == kernel.SemReduce) && a.TileNeed != 1 {
			return true
		}
	}
	return false
}

// trySchedule dispatches dispatchable TBs onto free SM slots. Launches are
// served round-robin so concurrently-runnable kernels share the SM pool
// fairly — this is what lets asymmetric kernel overlapping co-run an
// uplink-heavy and a downlink-heavy kernel (Sec. III-C-2) — while
// per-launch partition limits still bound each kernel's footprint.
func (g *GPU) trySchedule() {
	for g.slotsFree > 0 {
		dispatched := false
		n := len(g.launches)
		for i := 0; i < n && g.slotsFree > 0; i++ {
			l := g.launches[(g.rrLaunch+i)%n]
			if l.done || !l.started || l.ready.Len() == 0 || l.active >= l.limit {
				continue
			}
			run := l.ready.PopFront()
			g.dispatch(l, run)
			g.rrLaunch = (g.rrLaunch + i + 1) % n
			dispatched = true
			break
		}
		if !dispatched {
			return
		}
	}
}

// dispatch runs one TB's lifecycle on an SM slot.
func (g *GPU) dispatch(l *Launch, run *tbRun) {
	g.slotsFree--
	l.active++
	g.slotAcquire(run)
	run.next = stepPrePhase
	g.eng.After(g.hw.TBOverhead, run.stepFn)
}

// slotAcquire assigns a free SM-slot trace track to a dispatched TB.
func (g *GPU) slotAcquire(run *tbRun) {
	if len(g.slotTids) == 0 {
		return
	}
	run.slotTid = g.slotTids[len(g.slotTids)-1]
	g.slotTids = g.slotTids[:len(g.slotTids)-1]
	run.slotStart = g.eng.Now()
}

// slotRelease emits the TB's SM-residency span and recycles its track.
// Residency spans cover dispatch-to-yield and dispatch-to-retire windows,
// so a coordinated TB that yields while its group synchronizes shows up as
// two spans — exactly the occupancy the SM scheduler sees.
func (g *GPU) slotRelease(l *Launch, run *tbRun) {
	if run.slotTid < 0 {
		return
	}
	g.tr.Span(g.pid, run.slotTid, "gpu.tb", l.K.Name, run.slotStart, g.eng.Now())
	g.slotTids = append(g.slotTids, run.slotTid)
	run.slotTid = -1
}

// tbPrePhase performs pre-access synchronization (for mergeable loads) and
// issues the TB's load accesses; compute starts once all loads complete.
//
// Coordinated TBs do not hold the SM while waiting: the group release
// triggers the (aligned) load issue directly — the loads need no compute —
// and the TB re-acquires a slot with priority once its data arrived. This
// models the paper's latency hiding ("the warp scheduler can issue
// independent instructions", Sec. III-B-2) and keeps the aligned issue
// times that make request merging effective.
func (g *GPU) tbPrePhase(l *Launch, run *tbRun) {
	if run.loaded {
		g.tbCompute(l, run)
		return
	}
	if l.K.PreAccessSync && run.group >= 0 && participates(l.K, run.desc.Pre) {
		run.yielded = true
		run.next = stepPreLoad
		g.sync.Wait(run.group, PhasePreLoad, l.groupPeers(run.desc), run.stepFn)
		// Yield the slot while the group synchronizes and the data moves.
		g.slotRelease(l, run)
		g.slotsFree++
		l.active--
		g.trySchedule()
		return
	}
	if len(run.desc.Pre) == 0 {
		g.tbCompute(l, run)
		return
	}
	run.yielded = false
	run.preLoad()
}

func anyMergeable(accs []kernel.Access) bool {
	for _, a := range accs {
		if mergeable(a.Mode) {
			return true
		}
	}
	return false
}

// tbCompute occupies the SM for the roofline duration with calibrated
// noise, then moves to the post phase.
func (g *GPU) tbCompute(l *Launch, run *tbRun) {
	d := g.computeTime(l, run)
	run.next = stepPostPhase
	g.eng.After(d, run.stepFn)
}

// computeTime is the TB's roofline cost: max of compute and local-memory
// time, scaled by deterministic per-(gpu,launch,tb) execution noise.
func (g *GPU) computeTime(l *Launch, run *tbRun) sim.Time {
	flopsT := sim.DurationForFlops(run.desc.Flops, g.hw.SMFLOPs)
	memT := sim.Time(0)
	if run.desc.LocalBytes > 0 {
		perSM := g.hw.HBMBandwidth / float64(g.hw.SMsPerGPU)
		memT = sim.DurationForBytes(run.desc.LocalBytes, perSM)
	}
	d := flopsT
	if memT > d {
		d = memT
	}
	rng := sim.NewRNG(sim.Hash64(g.seed, uint64(l.id), uint64(run.tb)))
	d = sim.Scale(d, rng.Jitter(g.hw.TBTimeNoise))
	// Straggler fault injection: a slowed GPU scales its roofline TB cost.
	// The jitter RNG above is seeded independently of fault state, so a
	// faulted run perturbs only the magnitude, never the noise stream.
	if g.slowdown != 1 {
		d = sim.Scale(d, g.slowdown)
	}
	return d
}

// tbPostPhase performs pre-access synchronization for mergeable reductions
// and issues the TB's write/reduction accesses; the TB retires once every
// post access has been issued (posted-write semantics — downstream
// dependencies are tracked at the home GPU).
func (g *GPU) tbPostPhase(l *Launch, run *tbRun) {
	if l.K.PreAccessSync && run.group >= 0 && participates(l.K, run.desc.Post) {
		// Yield the SM while waiting for the group: issuing the posts
		// after the release needs no further compute, so the TB finishes
		// without re-acquiring a slot.
		g.slotRelease(l, run)
		g.slotsFree++
		l.active--
		g.TBsRun++
		run.retireAfterPost = false
		run.next = stepIssuePosts
		g.sync.Wait(run.group, PhasePreReduce, l.groupPeers(run.desc), run.stepFn)
		g.trySchedule()
		return
	}
	run.retireAfterPost = true
	run.issuePosts()
}

// tbRetire frees the SM slot and finishes the TB.
func (g *GPU) tbRetire(l *Launch, run *tbRun) {
	g.slotRelease(l, run)
	g.slotsFree++
	l.active--
	g.TBsRun++
	g.finishTB(l, run)
}

// finishTB publishes the TB's output tiles (via the machine callback) and
// completes the launch when the grid drains. isNoop TBs come here directly
// without ever holding an SM slot.
func (g *GPU) finishTB(l *Launch, run *tbRun) {
	// The run's lifecycle ends here: recycle it before the retire
	// callback and scheduling sweep so the next admitted TB can reuse it.
	// The Out tile list rides along to the retire callback so the machine
	// layer never re-runs Work for retirement publishing.
	tb, out := run.tb, run.desc.Out
	run.reset()
	g.runs.Put(run)
	if l.onTBRetire != nil {
		l.onTBRetire(tb, out)
	}
	l.remaining--
	if l.remaining == 0 {
		l.done = true
		l.FinishedAt = g.eng.Now()
		g.removeLaunch(l)
		if l.onDone != nil {
			l.onDone()
		}
	}
	g.trySchedule()
}

// isNoop reports whether a TB descriptor carries no work at all: such TBs
// are the empty slots of an SPMD grid (the block's work lives on another
// GPU) and retire without occupying an SM.
func isNoop(d kernel.TBDesc) bool {
	return d.Flops == 0 && d.LocalBytes == 0 &&
		len(d.Pre) == 0 && len(d.Post) == 0
}

func (g *GPU) removeLaunch(l *Launch) {
	for i, x := range g.launches {
		if x == l {
			g.launches = append(g.launches[:i], g.launches[i+1:]...)
			return
		}
	}
}

// ActiveLaunches reports how many launches are in flight.
func (g *GPU) ActiveLaunches() int { return len(g.launches) }

// FreeSlots reports currently idle SM slots.
func (g *GPU) FreeSlots() int { return g.slotsFree }

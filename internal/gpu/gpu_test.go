package gpu

import (
	"testing"
	"testing/quick"

	"cais/internal/kernel"
	"cais/internal/noc"
	"cais/internal/sim"
)

func TestChunkSizes(t *testing.T) {
	cases := []struct {
		n, chunk int64
		want     []int64
	}{
		{0, 8192, []int64{0}},
		{100, 8192, []int64{100}},
		{8192, 8192, []int64{8192}},
		{8193, 8192, []int64{8192, 1}},
		{3 * 8192, 8192, []int64{8192, 8192, 8192}},
		{100, 0, []int64{100}}, // zero chunk = single request
	}
	for _, c := range cases {
		got := chunkSizes(c.n, c.chunk)
		if len(got) != len(c.want) {
			t.Fatalf("chunkSizes(%d,%d) = %v, want %v", c.n, c.chunk, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("chunkSizes(%d,%d) = %v, want %v", c.n, c.chunk, got, c.want)
			}
		}
	}
}

func TestChunkSizesConserveBytes(t *testing.T) {
	f := func(n32 uint32, chunk uint16) bool {
		// Bound the chunk count so the property check stays fast.
		n := n32 % (1 << 20)
		cs := chunkSizes(int64(n), int64(chunk)+64)
		var sum int64
		for _, c := range cs {
			sum += c
		}
		if n == 0 {
			return sum == 0 && len(cs) == 1
		}
		return sum == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThrottleWindowFIFO(t *testing.T) {
	eng := sim.NewEngine()
	th := newThrottle(eng, 0, 100)
	var order []int
	eng.At(0, func() {
		th.Acquire(60, func() { order = append(order, 1) })
		th.Acquire(60, func() { order = append(order, 2) }) // exceeds window, defers
		th.Acquire(10, func() { order = append(order, 3) }) // must stay behind 2
	})
	eng.Run()
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("initial grants = %v, want [1]", order)
	}
	th.Release(60)
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("post-release order = %v, want [1 2 3]", order)
	}
	if th.Outstanding() != 70 {
		t.Fatalf("outstanding = %d, want 70", th.Outstanding())
	}
}

func TestThrottleOversizeNeverStarves(t *testing.T) {
	eng := sim.NewEngine()
	th := newThrottle(eng, 0, 100)
	granted := false
	eng.At(0, func() {
		th.Acquire(500, func() { granted = true }) // larger than the window
	})
	eng.Run()
	if !granted {
		t.Fatal("oversize request starved on an idle window")
	}
}

func TestThrottlePacingSpacesGrants(t *testing.T) {
	eng := sim.NewEngine()
	// 1 GB/s pacing: 1000 bytes take 1us.
	th := newThrottle(eng, 1e9, 0)
	var times []sim.Time
	eng.At(0, func() {
		for i := 0; i < 3; i++ {
			th.Acquire(1000, func() { times = append(times, eng.Now()) })
		}
	})
	eng.Run()
	if len(times) != 3 {
		t.Fatalf("grants = %d, want 3", len(times))
	}
	if times[0] != 0 || times[1] != sim.Microsecond || times[2] != 2*sim.Microsecond {
		t.Fatalf("grant times = %v, want paced at 1us", times)
	}
}

func TestThrottleReleaseUnderflowPanics(t *testing.T) {
	eng := sim.NewEngine()
	th := newThrottle(eng, 0, 100)
	defer func() {
		if recover() == nil {
			t.Fatal("window underflow did not panic")
		}
	}()
	th.Release(1)
}

func TestThrottleDisabledPassesThrough(t *testing.T) {
	eng := sim.NewEngine()
	th := newThrottle(eng, 0, 0)
	n := 0
	eng.At(0, func() {
		for i := 0; i < 10; i++ {
			th.Acquire(1<<30, func() { n++ })
		}
	})
	eng.Run()
	if n != 10 {
		t.Fatalf("grants = %d, want 10 with throttling disabled", n)
	}
}

func TestWritesDataAndMergeable(t *testing.T) {
	if !writesData(noc.OpRedCAIS) || !writesData(noc.OpStore) || !writesData(noc.OpMultimemST) || !writesData(noc.OpMultimemRed) {
		t.Fatal("data-carrying ops misclassified")
	}
	if writesData(noc.OpLdCAIS) || writesData(noc.OpLoad) {
		t.Fatal("loads misclassified as writes")
	}
	if !mergeable(noc.OpLdCAIS) || !mergeable(noc.OpRedCAIS) {
		t.Fatal("CAIS ops must be mergeable")
	}
	if mergeable(noc.OpStore) || mergeable(noc.OpMultimemRed) {
		t.Fatal("non-CAIS ops must not be mergeable")
	}
}

func TestIsNoop(t *testing.T) {
	if !isNoop(kernel.TBDesc{}) {
		t.Fatal("empty desc should be noop")
	}
	if !isNoop(kernel.TBDesc{In: []kernel.Tile{{Buf: 1}}, Out: []kernel.Tile{{Buf: 2}}}) {
		t.Fatal("pure dependency/publish TBs are noop (no SM work)")
	}
	if isNoop(kernel.TBDesc{Flops: 1}) || isNoop(kernel.TBDesc{LocalBytes: 1}) {
		t.Fatal("compute TBs are not noop")
	}
	if isNoop(kernel.TBDesc{Post: []kernel.Access{{Bytes: 1}}}) {
		t.Fatal("TBs with accesses are not noop")
	}
}

func TestSynchronizerDuplicateWaitPanics(t *testing.T) {
	eng := sim.NewEngine()
	hwSeedGPU := newBareGPU(eng)
	s := hwSeedGPU.Synchronizer()
	s.waiting[syncKey{group: 1, phase: PhasePreLoad}] = &pendingWait{fn: func() {}}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate sync wait did not panic")
		}
	}()
	s.Wait(1, PhasePreLoad, 4, func() {})
}

func TestSynchronizerReleaseUnknownPanics(t *testing.T) {
	eng := sim.NewEngine()
	g := newBareGPU(eng)
	defer func() {
		if recover() == nil {
			t.Fatal("unknown release did not panic")
		}
	}()
	g.Synchronizer().Release(42, PhasePreReduce)
}

// newBareGPU builds a GPU with stub links for synchronizer tests.
func newBareGPU(eng *sim.Engine) *GPU {
	hw := testHardware()
	g := New(eng, 0, hw, func(addr uint64) int { return int(addr % 2) }, nopSink{})
	for p := 0; p < hw.NumSwitchPlanes; p++ {
		g.ConnectUp(p, noc.NewLink(eng, "up", 1e9, 0, noc.EndpointFunc(func(*noc.Packet) {})))
	}
	return g
}

type nopSink struct{}

func (nopSink) OnData(int, *noc.Packet)         {}
func (nopSink) OnAccessDone(int, kernel.Access) {}

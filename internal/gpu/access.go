package gpu

import (
	"fmt"

	"cais/internal/kernel"
	"cais/internal/noc"
)

// This file is the allocation-discipline core of the GPU package: the
// per-access and per-chunk state that the hot path used to carry in
// heap-allocated closures and latches lives in pooled context objects
// whose completion closures are method values cached once per object
// lifetime. A recycled context reuses its closures — the receiver pointer
// is stable across pool round trips — so steady-state access issue is
// allocation free apart from the packets themselves (which are pooled too).

// hbmJob kinds: what to do when an HBM reservation drains. HBM
// reservations are FIFO (sim.Resource ends are monotonic) and the engine
// breaks same-instant ties in scheduling order, so one ring of pending
// jobs plus a single cached drain closure replaces a closure per
// reservation.
const (
	jobServe    = int8(iota) // answer a remote read with a response packet
	jobLoadResp              // commit arrived read data, complete the chunk
	jobData                  // commit write/reduction/multicast data, notify sink
	jobLocal                 // finish a local access (publish + complete)
)

type hbmJob struct {
	kind int8
	p    *noc.Packet
	ctx  *accessCtx
}

// hbmDone drains the oldest pending HBM job. Exactly one job is pushed per
// scheduled invocation, so the ring head always matches.
func (g *GPU) hbmDone() {
	j := g.hbmJobs.PopFront()
	switch j.kind {
	case jobServe:
		p := j.p
		resp := g.pkts.Get()
		resp.ID, resp.Op, resp.Addr, resp.Home = g.pktID(), noc.OpLoadResp, p.Addr, g.ID
		resp.Src, resp.Dst, resp.Size, resp.Group = g.ID, p.Src, p.Size, p.Group
		resp.Tag = p.Tag
		g.pkts.Put(p)
		g.sendUp(resp)

	case jobLoadResp:
		p := j.p
		done := p.OnDone
		ctx, _ := p.Tag.(*accessCtx)
		g.pkts.Put(p)
		switch {
		case done != nil:
			done()
		case ctx != nil:
			ctx.chunkDone()
		}

	case jobData:
		p := j.p
		g.sink.OnData(g.ID, p)
		if p.OnDone != nil {
			p.OnDone()
		}
		g.pkts.Put(p)

	case jobLocal:
		c := j.ctx
		if len(c.a.Publish) > 0 || c.a.PublishAt != nil || c.a.PublishEach.Buf != 0 {
			g.sink.OnAccessDone(g.ID, c.a)
		}
		if c.onComplete != nil {
			c.onComplete()
		}
		c.reset()
		g.ctxs.Put(c)
	}
}

// accessCtx is one TB access in flight: it owns the chunk fan-out counters
// that used to be a pair of latches, the throttle-ordered chunk cursor, and
// the cached completion closures shared by every chunk of the access.
type accessCtx struct {
	g            *GPU
	a            kernel.Access
	group        int
	throttledReq bool // red.cais under TB-aware throttling
	publishHere  bool
	onIssued     func()
	onComplete   func()
	tag          *TileTag
	chunk        int64 // resolved request granularity
	nextChunk    int   // next chunk index the throttle will send
	pendingIssue int
	pendingDone  int

	// Cached method values, created once per object lifetime and preserved
	// across reset()/reuse.
	chunkDoneFn func()
	sendNextFn  func()
}

// reset clears the access state for pool reuse. The g back-pointer and the
// cached closures survive deliberately: they are bound to this object's
// identity, not to any one access (caislint: poolreset).
func (c *accessCtx) reset() {
	c.a = kernel.Access{}
	c.group = 0
	c.throttledReq = false
	c.publishHere = false
	c.onIssued = nil
	c.onComplete = nil
	c.tag = nil
	c.chunk = 0
	c.nextChunk = 0
	c.pendingIssue = 0
	c.pendingDone = 0
}

// getAccessCtx pops a recycled context and (first time only) installs its
// cached closures.
func (g *GPU) getAccessCtx() *accessCtx {
	c := g.ctxs.Get()
	if c.g == nil {
		c.g = g
		c.chunkDoneFn = c.chunkDone
		c.sendNextFn = c.sendNext
	}
	return c
}

// chunkIssued accounts one chunk handed to the fabric.
func (c *accessCtx) chunkIssued() {
	c.pendingIssue--
	if c.pendingIssue == 0 && c.onIssued != nil {
		c.onIssued()
	}
	c.maybeFree()
}

// chunkDone accounts one chunk's data movement finishing at this GPU.
func (c *accessCtx) chunkDone() {
	c.pendingDone--
	if c.pendingDone == 0 {
		if c.publishHere {
			c.g.sink.OnAccessDone(c.g.ID, c.a)
		}
		if c.onComplete != nil {
			c.onComplete()
		}
	}
	c.maybeFree()
}

// maybeFree recycles the context once every chunk has been both issued and
// completed. Each counter decrement fires exactly once per chunk, so the
// final decrement — whichever counter it lands on — is the unique release
// point.
func (c *accessCtx) maybeFree() {
	if c.pendingIssue == 0 && c.pendingDone == 0 {
		c.reset()
		c.g.ctxs.Put(c)
	}
}

// sendNext issues the next chunk in index order. Throttle grants are FIFO,
// so one shared closure with a cursor replaces a closure per chunk.
func (c *accessCtx) sendNext() {
	i := c.nextChunk
	c.nextChunk++
	c.sendChunk(i)
}

// sendChunk builds and injects chunk i's packet.
func (c *accessCtx) sendChunk(i int) {
	g := c.g
	sz := chunkSize(i, c.a.Bytes, c.chunk)
	p := g.pkts.Get()
	p.ID, p.Op, p.Addr, p.Home = g.pktID(), c.a.Mode, c.a.Addr+uint64(i), c.a.Home
	p.Src, p.Dst, p.Size, p.Group = g.ID, c.a.Home, sz, c.group
	if c.throttledReq {
		// Release on the switch's acceptance credit, not on completion:
		// completion of a merged request depends on peer GPUs and would
		// convoy the window.
		cc := g.getChunkCredit()
		cc.size = sz
		p.OnAccepted = cc.acceptedFn
	}
	switch c.a.Mode {
	case noc.OpLdCAIS, noc.OpMultimemLdReduce:
		p.Contribs = c.a.Expected
		p.OnDone = c.chunkDoneFn
	case noc.OpLoad:
		// Plain P2P loads route the completion through the tag: the home
		// GPU copies the tag onto its response.
		p.Contribs = c.a.Expected
		p.Tag = c
	case noc.OpStore, noc.OpMultimemST:
		p.Contribs = 1
		p.Tag = c.tag
		p.OnDone = c.chunkDoneFn
	case noc.OpRedCAIS, noc.OpMultimemRed:
		p.Contribs = c.a.Expected
		p.Tag = c.tag
		// Reductions complete (for throttling) when the merge session
		// finishes or flushes at the switch.
		p.OnDone = c.chunkDoneFn
		if c.a.Broadcast {
			p.Dst = -1
		} else if c.a.Mode == noc.OpMultimemRed {
			p.Dst = c.a.Home
		}
	default:
		panic(fmt.Sprintf("gpu%d: cannot issue op %v", g.ID, c.a.Mode))
	}
	g.sendUp(p)
	c.chunkIssued()
}

// chunkCredit carries one throttled chunk's byte count through the switch
// acceptance round trip. It cannot live on the packet: the credit fires
// after the merge unit absorbed (and recycled) the packet.
type chunkCredit struct {
	g          *GPU
	size       int64
	acceptedFn func()
}

// reset clears the credit for pool reuse; the back-pointer and cached
// closure survive (caislint: poolreset).
func (c *chunkCredit) reset() { c.size = 0 }

func (g *GPU) getChunkCredit() *chunkCredit {
	c := g.credits.Get()
	if c.g == nil {
		c.g = g
		c.acceptedFn = c.accepted
	}
	return c
}

// accepted releases the throttle window and recycles the credit: the
// switch sends exactly one acceptance per request.
func (c *chunkCredit) accepted() {
	sz := c.size
	c.reset()
	c.g.credits.Put(c)
	c.g.throttle.Release(sz)
}

// chunkCount is the number of request-granularity chunks for n bytes,
// matching chunkSizes (the reference implementation kept for tests).
func chunkCount(n, chunk int64) int {
	if n <= 0 {
		return 1
	}
	if chunk <= 0 {
		return 1
	}
	return int((n + chunk - 1) / chunk)
}

// chunkSize is chunk i's byte count under the same split.
func chunkSize(i int, n, chunk int64) int64 {
	if n <= 0 {
		return 0
	}
	if chunk <= 0 {
		return n
	}
	off := int64(i) * chunk
	if rem := n - off; rem < chunk {
		return rem
	}
	return chunk
}

package gpu

import (
	"fmt"

	"cais/internal/noc"
	"cais/internal/sim"
)

// Sync phases of the TB-group coordination protocol (Sec. III-B-2).
const (
	// PhasePreLaunch aligns TB dispatch across GPUs.
	PhasePreLaunch = 0
	// PhasePreLoad aligns the first mergeable load of a TB.
	PhasePreLoad = 1
	// PhasePreReduce aligns the first mergeable reduction of a TB.
	PhasePreReduce = 2
)

func phaseName(phase int) string {
	switch phase {
	case PhasePreLaunch:
		return "pre-launch"
	case PhasePreLoad:
		return "pre-load"
	case PhasePreReduce:
		return "pre-reduce"
	}
	return fmt.Sprintf("phase%d", phase)
}

type syncKey struct {
	group int
	phase int
}

// Synchronizer is the per-GPU module of Fig. 8b: it registers TB groups
// with the switch's Group Sync Table by exchanging lightweight empty
// packets (one request, one release, ~0.5 us round trip) and resumes the
// waiting TB when the release arrives.
type Synchronizer struct {
	g        *GPU
	waiting  map[syncKey]func()
	Requests int64 // sync requests sent (stats)
}

func newSynchronizer(g *GPU) *Synchronizer {
	return &Synchronizer{g: g, waiting: make(map[syncKey]func())}
}

// Wait registers the TB group for the given phase and calls fn when the
// switch releases the group. Exactly one TB per (group, phase) may wait on
// a given GPU — that is the group invariant established by the compiler.
func (s *Synchronizer) Wait(group, phase, expected int, fn func()) {
	key := syncKey{group: group, phase: phase}
	if _, dup := s.waiting[key]; dup {
		panic(fmt.Sprintf("gpu%d: duplicate sync wait for group %d phase %d", s.g.ID, group, phase))
	}
	if tr := s.g.tr; tr.Enabled() {
		// Barrier waits overlap freely per GPU, so they trace as async
		// spans: register-to-release per (group, phase).
		id := tr.NextID()
		name := phaseName(phase)
		tr.BeginAsync(s.g.pid, "gpu.sync", name, id, s.g.eng.Now())
		inner := fn
		fn = func() {
			tr.EndAsync(s.g.pid, "gpu.sync", name, id, s.g.eng.Now())
			inner()
		}
	}
	s.waiting[key] = fn
	s.Requests++
	req := &noc.Packet{
		ID: s.g.pktID(), Op: noc.OpSyncRequest,
		Addr: uint64(phase), Group: group,
		Src: s.g.ID, Dst: -1, Contribs: expected,
	}
	// Sync traffic routes on the group's deterministic plane so all GPUs
	// of a group meet at the same Group Sync Table.
	plane := group % len(s.g.up)
	if plane < 0 {
		plane = 0
	}
	s.g.up[plane].Send(req)
}

// Release resumes the TB waiting on (group, phase).
func (s *Synchronizer) Release(group, phase int) {
	key := syncKey{group: group, phase: phase}
	fn, ok := s.waiting[key]
	if !ok {
		panic(fmt.Sprintf("gpu%d: release for unknown sync group %d phase %d", s.g.ID, group, phase))
	}
	delete(s.waiting, key)
	fn()
}

// Pending reports how many sync waits are outstanding.
func (s *Synchronizer) Pending() int { return len(s.waiting) }

// Throttle implements TB-aware request throttling (Sec. III-B-2): it
// paces mergeable request injection to the GPU's effective uplink rate —
// the same rate on every GPU, so aligned issue stays aligned at the switch
// — and bounds outstanding bytes (the paper's Sec. V-C-2 footprint bound)
// as a backstop, releasing on the switch's acceptance credits.
type Throttle struct {
	eng      *sim.Engine
	rate     float64 // bytes/s injection pacing; <= 0 disables pacing
	window   int64   // outstanding-bytes bound; <= 0 disables
	nextFree sim.Time
	out      int64
	queue    []throttleReq
	armed    bool
	Deferred int64 // requests that could not issue immediately (stats)
}

type throttleReq struct {
	bytes int64
	fn    func()
}

func newThrottle(eng *sim.Engine, rate float64, window int64) *Throttle {
	return &Throttle{eng: eng, rate: rate, window: window}
}

// Acquire runs fn when pacing and the outstanding window allow; FIFO order
// is preserved.
func (t *Throttle) Acquire(bytes int64, fn func()) {
	wasIdle := len(t.queue) == 0
	t.queue = append(t.queue, throttleReq{bytes: bytes, fn: fn})
	t.pump()
	if !wasIdle || len(t.queue) > 0 {
		t.Deferred++
	}
}

func (t *Throttle) pump() {
	for len(t.queue) > 0 {
		head := t.queue[0]
		// Outstanding-window backstop: an idle window always grants so an
		// oversize request cannot starve.
		if t.window > 0 && t.out > 0 && t.out+head.bytes > t.window {
			return // a Release will re-pump
		}
		now := t.eng.Now()
		if t.rate > 0 && t.nextFree > now {
			if !t.armed {
				t.armed = true
				t.eng.At(t.nextFree, func() {
					t.armed = false
					t.pump()
				})
			}
			return
		}
		t.queue = t.queue[1:]
		t.out += head.bytes
		if t.rate > 0 {
			t.nextFree = now + sim.DurationForBytes(head.bytes, t.rate)
		}
		head.fn()
	}
}

// Release returns outstanding-window space (switch acceptance credit).
func (t *Throttle) Release(bytes int64) {
	if t.window <= 0 {
		return
	}
	t.out -= bytes
	if t.out < 0 {
		panic("gpu: throttle window underflow")
	}
	t.pump()
}

// Outstanding reports in-flight throttled bytes.
func (t *Throttle) Outstanding() int64 { return t.out }

package gpu

import (
	"fmt"
	"sort"

	"cais/internal/noc"
	"cais/internal/pool"
	"cais/internal/sim"
)

// Sync phases of the TB-group coordination protocol (Sec. III-B-2).
const (
	// PhasePreLaunch aligns TB dispatch across GPUs.
	PhasePreLaunch = 0
	// PhasePreLoad aligns the first mergeable load of a TB.
	PhasePreLoad = 1
	// PhasePreReduce aligns the first mergeable reduction of a TB.
	PhasePreReduce = 2
)

func phaseName(phase int) string {
	switch phase {
	case PhasePreLaunch:
		return "pre-launch"
	case PhasePreLoad:
		return "pre-load"
	case PhasePreReduce:
		return "pre-reduce"
	}
	return fmt.Sprintf("phase%d", phase)
}

type syncKey struct {
	group int
	phase int
}

// pendingWait is one outstanding sync registration: the resume closure
// plus the plane the registration was sent to, so a plane failure can
// re-register exactly the waits that were routed to the dead plane.
type pendingWait struct {
	fn       func()
	plane    int
	expected int
}

// reset clears the wait for pool reuse (caislint: poolreset).
func (w *pendingWait) reset() { *w = pendingWait{} }

// Synchronizer is the per-GPU module of Fig. 8b: it registers TB groups
// with the switch's Group Sync Table by exchanging lightweight empty
// packets (one request, one release, ~0.5 us round trip) and resumes the
// waiting TB when the release arrives.
type Synchronizer struct {
	g       *GPU
	waiting map[syncKey]*pendingWait
	waits   pool.Pool[pendingWait]
	// lenient tolerates releases for unknown keys (plane failover can
	// deliver a stale release after a wait was re-registered and released
	// by the surviving plane). Off by default: healthy runs keep the
	// strict single-release invariant.
	lenient bool

	Requests        int64 // sync requests sent (stats)
	Reregistrations int64 // waits re-sent after a routing change (fault stats)
	Retries         int64 // re-registration attempts deferred by a down uplink
	StaleReleases   int64 // duplicate releases tolerated in lenient mode
}

func newSynchronizer(g *GPU) *Synchronizer {
	return &Synchronizer{g: g, waiting: make(map[syncKey]*pendingWait)}
}

// SetLenient arms failover tolerance for duplicate releases. The injector
// enables it only for schedules containing a plane failure.
func (s *Synchronizer) SetLenient(on bool) { s.lenient = on }

// routePlane picks the Group Sync Table plane for a group: the machine's
// fault-aware hash when installed, else the static group % planes default.
func (s *Synchronizer) routePlane(group int) int {
	if s.g.groupPlane != nil {
		return s.g.groupPlane(group)
	}
	plane := group % len(s.g.up)
	if plane < 0 {
		plane = 0
	}
	return plane
}

// register sends the Group Sync Table registration packet on a plane.
func (s *Synchronizer) register(group, phase, expected, plane int) {
	s.Requests++
	req := s.g.pkts.Get()
	req.ID, req.Op = s.g.pktID(), noc.OpSyncRequest
	req.Addr, req.Group = uint64(phase), group
	req.Src, req.Dst, req.Contribs = s.g.ID, -1, expected
	s.g.up[plane].Send(req)
}

// Wait registers the TB group for the given phase and calls fn when the
// switch releases the group. Exactly one TB per (group, phase) may wait on
// a given GPU — that is the group invariant established by the compiler.
func (s *Synchronizer) Wait(group, phase, expected int, fn func()) {
	key := syncKey{group: group, phase: phase}
	if _, dup := s.waiting[key]; dup {
		panic(fmt.Sprintf("gpu%d: duplicate sync wait for group %d phase %d", s.g.ID, group, phase))
	}
	if tr := s.g.tr; tr.Enabled() {
		// Barrier waits overlap freely per GPU, so they trace as async
		// spans: register-to-release per (group, phase).
		id := tr.NextID()
		name := phaseName(phase)
		tr.BeginAsync(s.g.pid, "gpu.sync", name, id, s.g.eng.Now())
		inner := fn
		fn = func() {
			tr.EndAsync(s.g.pid, "gpu.sync", name, id, s.g.eng.Now())
			inner()
		}
	}
	// Sync traffic routes on the group's deterministic plane so all GPUs
	// of a group meet at the same Group Sync Table.
	plane := s.routePlane(group)
	w := s.waits.Get()
	w.fn, w.plane, w.expected = fn, plane, expected
	s.waiting[key] = w
	s.register(group, phase, expected, plane)
}

// Resync re-registers every pending wait whose registered plane no longer
// matches the current group routing — the recovery sweep the machine runs
// when a plane fails (or comes back and routing reverts). Each
// re-registration retries with exponential backoff while the target
// plane's uplink is down, so a simultaneous link-down fault only delays
// recovery instead of wedging it.
func (s *Synchronizer) Resync() {
	if len(s.waiting) == 0 {
		return
	}
	keys := make([]syncKey, 0, len(s.waiting))
	for k := range s.waiting {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].phase < keys[j].phase
	})
	for _, k := range keys {
		w := s.waiting[k]
		if w == nil || s.routePlane(k.group) == w.plane {
			continue
		}
		s.Reregistrations++
		key := k
		sim.Retry(s.g.eng, sim.Backoff{Base: sim.Microsecond, Max: 64 * sim.Microsecond, Factor: 2}, func(n int) bool {
			// Re-fetch on every attempt: waits are pooled, so pointer
			// identity cannot distinguish "still waiting" from "released
			// and re-registered" — the registered plane can.
			cur, ok := s.waiting[key]
			if !ok {
				return true // released while backing off; nothing to do
			}
			plane := s.routePlane(key.group)
			if cur.plane == plane {
				return true // already on the live plane
			}
			if link := s.g.up[plane]; link == nil || link.Down() {
				s.Retries++
				return false
			}
			cur.plane = plane
			s.register(key.group, key.phase, cur.expected, plane)
			return true
		}, nil)
	}
}

// Release resumes the TB waiting on (group, phase).
func (s *Synchronizer) Release(group, phase int) {
	key := syncKey{group: group, phase: phase}
	w, ok := s.waiting[key]
	if !ok {
		if s.lenient {
			s.StaleReleases++
			return
		}
		panic(fmt.Sprintf("gpu%d: release for unknown sync group %d phase %d", s.g.ID, group, phase))
	}
	delete(s.waiting, key)
	fn := w.fn
	w.reset()
	s.waits.Put(w)
	fn()
}

// Pending reports how many sync waits are outstanding.
func (s *Synchronizer) Pending() int { return len(s.waiting) }

// Throttle implements TB-aware request throttling (Sec. III-B-2): it
// paces mergeable request injection to the GPU's effective uplink rate —
// the same rate on every GPU, so aligned issue stays aligned at the switch
// — and bounds outstanding bytes (the paper's Sec. V-C-2 footprint bound)
// as a backstop, releasing on the switch's acceptance credits.
type Throttle struct {
	eng      *sim.Engine
	rate     float64 // bytes/s injection pacing; <= 0 disables pacing
	window   int64   // outstanding-bytes bound; <= 0 disables
	nextFree sim.Time
	out      int64
	queue    pool.Ring[throttleReq]
	armed    bool
	pumpFn   func()
	Deferred int64 // requests that could not issue immediately (stats)
}

type throttleReq struct {
	bytes int64
	fn    func()
}

func newThrottle(eng *sim.Engine, rate float64, window int64) *Throttle {
	t := &Throttle{eng: eng, rate: rate, window: window}
	t.pumpFn = t.pumpDisarm
	return t
}

// Acquire runs fn when pacing and the outstanding window allow; FIFO order
// is preserved.
func (t *Throttle) Acquire(bytes int64, fn func()) {
	wasIdle := t.queue.Len() == 0
	t.queue.PushBack(throttleReq{bytes: bytes, fn: fn})
	t.pump()
	if !wasIdle || t.queue.Len() > 0 {
		t.Deferred++
	}
}

func (t *Throttle) pumpDisarm() {
	t.armed = false
	t.pump()
}

func (t *Throttle) pump() {
	for t.queue.Len() > 0 {
		head := t.queue.Head()
		// Outstanding-window backstop: an idle window always grants so an
		// oversize request cannot starve.
		if t.window > 0 && t.out > 0 && t.out+head.bytes > t.window {
			return // a Release will re-pump
		}
		now := t.eng.Now()
		if t.rate > 0 && t.nextFree > now {
			if !t.armed {
				t.armed = true
				t.eng.At(t.nextFree, t.pumpFn)
			}
			return
		}
		t.queue.PopFront()
		t.out += head.bytes
		if t.rate > 0 {
			t.nextFree = now + sim.DurationForBytes(head.bytes, t.rate)
		}
		head.fn()
	}
}

// Release returns outstanding-window space (switch acceptance credit).
func (t *Throttle) Release(bytes int64) {
	if t.window <= 0 {
		return
	}
	t.out -= bytes
	if t.out < 0 {
		panic("gpu: throttle window underflow")
	}
	t.pump()
}

// Outstanding reports in-flight throttled bytes.
func (t *Throttle) Outstanding() int64 { return t.out }

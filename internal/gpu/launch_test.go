package gpu

import (
	"testing"

	"cais/internal/kernel"
	"cais/internal/noc"
	"cais/internal/sim"
)

// loopback is a minimal fabric: it answers load requests with data and
// lets everything else fall to the GPU or a recorder.
type loopback struct {
	eng  *sim.Engine
	gpus []*GPU
	seen []noc.Op
}

func (lb *loopback) Receive(p *noc.Packet) {
	lb.seen = append(lb.seen, p.Op)
	switch p.Op {
	case noc.OpLoad, noc.OpLdCAIS:
		resp := &noc.Packet{
			Op: noc.OpLoadResp, Addr: p.Addr, Home: p.Home,
			Src: p.Home, Dst: p.Src, Size: p.Size,
			OnDone: p.OnDone, Tag: p.Tag,
		}
		// Deliver straight to the requester.
		lb.eng.After(500*sim.Nanosecond, func() { lb.gpus[p.Src].Receive(resp) })
	case noc.OpRedCAIS, noc.OpStore:
		out := *p
		out.Contribs = p.Expected()
		lb.eng.After(500*sim.Nanosecond, func() {
			lb.gpus[p.Home].Receive(&out)
			if p.OnAccepted != nil {
				p.OnAccepted()
			}
			if p.OnDone != nil {
				p.OnDone()
			}
		})
	case noc.OpSyncRequest:
		// Single-GPU harness: release immediately.
		lb.eng.After(500*sim.Nanosecond, func() {
			lb.gpus[p.Src].Receive(&noc.Packet{Op: noc.OpSyncRelease, Addr: p.Addr, Group: p.Group, Dst: p.Src})
		})
	}
}

type recSink struct {
	data     []noc.Op
	accesses []kernel.Access
}

func (r *recSink) OnData(g int, p *noc.Packet)         { r.data = append(r.data, p.Op) }
func (r *recSink) OnAccessDone(g int, a kernel.Access) { r.accesses = append(r.accesses, a) }

func newHarness(t *testing.T) (*sim.Engine, *GPU, *loopback, *recSink) {
	t.Helper()
	eng := sim.NewEngine()
	eng.SetStepLimit(1_000_000)
	hw := testHardware()
	hw.NumGPUs = 1 // groups expect only this GPU
	lb := &loopback{eng: eng}
	sink := &recSink{}
	g := New(eng, 0, hw, func(addr uint64) int { return int(addr) % hw.NumSwitchPlanes }, sink)
	for p := 0; p < hw.NumSwitchPlanes; p++ {
		g.ConnectUp(p, noc.NewLink(eng, "up", 100e9, 250*sim.Nanosecond, lb))
	}
	lb.gpus = []*GPU{g}
	return eng, g, lb, sink
}

func TestLaunchLifecycleWithLoadsComputeAndPosts(t *testing.T) {
	eng, g, lb, sink := newHarness(t)
	copyTile := kernel.Tile{Buf: 1, Idx: 0}
	k := &kernel.Kernel{
		Name: "lifecycle", Grid: 2,
		PreLaunchSync: true, PreAccessSync: true,
		Work: func(gpu, tb int) kernel.TBDesc {
			if tb == 0 {
				return kernel.TBDesc{
					Flops: 1e8, Group: 0, GroupPeers: 1,
					Pre: []kernel.Access{{
						Sem: kernel.SemRead, Mode: noc.OpLdCAIS,
						Addr: 100, Home: 0, Bytes: 4 << 10, Expected: 1,
						Publish: []kernel.Tile{copyTile},
					}},
					Post: []kernel.Access{{
						Sem: kernel.SemReduce, Mode: noc.OpRedCAIS,
						Addr: 200, Home: 0, Bytes: 2 << 10, Expected: 1, TileNeed: 1,
					}},
				}
			}
			return kernel.TBDesc{Flops: 1e8, Group: -1}
		},
	}
	retired := map[int]bool{}
	done := false
	eng.At(0, func() {
		l := g.Launch(k, LaunchOpts{
			LaunchID: 1, GroupBase: 10,
			OnTBRetire: func(tb int, _ []kernel.Tile) { retired[tb] = true },
			OnDone:     func() { done = true },
		})
		l.MarkEligible(0)
		l.MarkEligible(1)
	})
	eng.Run()
	if !done || !retired[0] || !retired[1] {
		t.Fatalf("lifecycle incomplete: done=%v retired=%v", done, retired)
	}
	// The coordinated TB registered pre-launch + pre-access syncs.
	nSync := 0
	for _, op := range lb.seen {
		if op == noc.OpSyncRequest {
			nSync++
		}
	}
	if nSync < 2 {
		t.Fatalf("sync requests = %d, want >= 2 (pre-launch + pre-access)", nSync)
	}
	// The load completed and published its copy tile at the issuer.
	foundPublish := false
	for _, a := range sink.accesses {
		if a.Sem == kernel.SemRead && len(a.Publish) == 1 {
			foundPublish = true
		}
	}
	if !foundPublish {
		t.Fatal("load completion did not publish at the issuer")
	}
	// The reduction arrived at the home GPU's sink.
	foundRed := false
	for _, op := range sink.data {
		if op == noc.OpRedCAIS {
			foundRed = true
		}
	}
	if !foundRed {
		t.Fatal("reduction never committed at the home GPU")
	}
	if g.FreeSlots() != testHardwareSlots() {
		t.Fatalf("slots leaked: %d free", g.FreeSlots())
	}
}

func testHardwareSlots() int { return testHardware().SMsPerGPU }

func TestLaunchBuffersEligibilityUntilReady(t *testing.T) {
	eng, g, _, _ := newHarness(t)
	started := sim.Time(-1)
	k := &kernel.Kernel{
		Name: "buffered", Grid: 1,
		Work: func(gpu, tb int) kernel.TBDesc {
			return kernel.TBDesc{Flops: 1e7, Group: -1}
		},
	}
	eng.At(0, func() {
		l := g.Launch(k, LaunchOpts{LaunchID: 2, OnTBRetire: func(int, []kernel.Tile) { started = eng.Now() }})
		l.MarkEligible(0) // before readyAt: must be buffered, not lost
	})
	eng.Run()
	if started < 0 {
		t.Fatal("buffered TB never ran")
	}
	hw := testHardware()
	if started < hw.KernelLaunchOverhead {
		t.Fatalf("TB ran before the launch overhead elapsed: %v", started)
	}
}

func TestLaunchMultipleKernelsShareSlotsRoundRobin(t *testing.T) {
	eng, g, _, _ := newHarness(t)
	runs := map[string]int{}
	mk := func(name string) *kernel.Kernel {
		return &kernel.Kernel{
			Name: name, Grid: 8,
			Work: func(gpu, tb int) kernel.TBDesc {
				return kernel.TBDesc{Flops: 1e8, Group: -1}
			},
		}
	}
	eng.At(0, func() {
		for _, name := range []string{"a", "b"} {
			name := name
			l := g.Launch(mk(name), LaunchOpts{LaunchID: 3, OnTBRetire: func(int, []kernel.Tile) { runs[name]++ }})
			for tb := 0; tb < 8; tb++ {
				l.MarkEligible(tb)
			}
		}
	})
	eng.Run()
	if runs["a"] != 8 || runs["b"] != 8 {
		t.Fatalf("runs = %v", runs)
	}
}

func TestCommSMsPartitionCap(t *testing.T) {
	_, g, _, _ := newHarness(t)
	k := &kernel.Kernel{Name: "comm", Grid: 1, CommSMs: 2,
		Work: func(gpu, tb int) kernel.TBDesc { return kernel.TBDesc{} }}
	if got := g.partitionFor(k); got != 2 {
		t.Fatalf("comm partition = %d, want 2", got)
	}
	k.CommSMs = 10_000
	if got := g.partitionFor(k); got != testHardwareSlots() {
		t.Fatalf("oversize comm partition = %d, want clamp to pool", got)
	}
	share := &kernel.Kernel{Name: "s", Grid: 1, SMShare: 0.5,
		Work: func(gpu, tb int) kernel.TBDesc { return kernel.TBDesc{} }}
	if got := g.partitionFor(share); got != testHardwareSlots()/2 {
		t.Fatalf("share partition = %d", got)
	}
}

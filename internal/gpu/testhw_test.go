package gpu

import "cais/internal/config"

// testHardware is a small config for unit tests.
func testHardware() config.Hardware {
	hw := config.DGXH100()
	hw.NumGPUs = 4
	hw.NumSwitchPlanes = 2
	hw.SMsPerGPU = 4
	return hw
}

// Package gpu models one H100-class device at thread-block granularity:
// an SM pool with per-kernel partitions (asymmetric kernel overlapping), a
// FIFO TB scheduler with deterministic cross-GPU ordering, roofline TB
// cost with calibrated execution noise, remote request generation with
// configurable chunking, the CAIS synchronizer (pre-launch and pre-access
// TB-group synchronization, Sec. III-B), and TB-aware request throttling.
package gpu

import (
	"fmt"

	"cais/internal/config"
	"cais/internal/kernel"
	"cais/internal/noc"
	"cais/internal/pool"
	"cais/internal/sim"
	"cais/internal/trace"
)

// TileTag travels on data packets so the machine layer can publish tiles
// and count reduction contributions at the receiving GPU.
type TileTag struct {
	Base      uint64 // access base address (chunks share it)
	NeedBytes int64  // contribution bytes required before publishing
	Publish   []kernel.Tile
	// PublishAt, when non-nil, yields receiver-specific tiles (multicast
	// copies land in per-GPU local buffers).
	PublishAt func(gpu int) []kernel.Tile
	// PublishEach, when Buf != 0, makes receiver r publish the single
	// tile {Buf, Idx + r} — the closure-free stride-1 multicast form.
	PublishEach kernel.Tile
}

// DataSink is the machine layer's view of data movement: it receives every
// committed data arrival and every completed publishing access so it can
// drive TB-level dataflow.
type DataSink interface {
	// OnData fires when a data packet has been committed to this GPU's
	// HBM (stores, reduction results, multicast copies).
	OnData(gpu int, p *noc.Packet)
	// OnAccessDone fires when one TB's access (all chunks) completed at
	// the issuing GPU: loads with arrived data, or local accesses.
	OnAccessDone(gpu int, a kernel.Access)
}

// GPU is one simulated device.
type GPU struct {
	ID int

	eng     *sim.Engine
	hw      config.Hardware
	up      []*noc.Link // per switch plane
	planeOf func(addr uint64) int
	// groupPlane, when set by the assembly layer, routes sync traffic for
	// a TB group (fault-aware: it skips failed planes). Nil keeps the
	// default static group % planes hash.
	groupPlane func(group int) int
	// slowdown scales TB compute time (straggler fault injection; 1 =
	// healthy).
	slowdown float64
	hbm      *sim.Resource
	sink     DataSink

	slotsFree int
	launches  []*Launch
	rrLaunch  int
	sync      *Synchronizer
	throttle  *Throttle

	nextPktID uint64
	seed      uint64

	// Free lists for the request hot path. pkts is the run-wide packet
	// pool shared with the switches (wired by the assembly layer; nil
	// degrades to plain allocation); the rest are private to this GPU.
	pkts    *noc.PacketPool
	ctxs    pool.Pool[accessCtx]
	credits pool.Pool[chunkCredit]
	runs    pool.Pool[tbRun]

	// hbmJobs pairs pending HBM-reservation completions with the single
	// cached hbmDoneFn closure (see access.go).
	hbmJobs   pool.Ring[hbmJob]
	hbmDoneFn func()

	tr       *trace.Tracer
	pid      int32
	slotTids []int32 // free SM-slot trace tracks (only populated when tracing)

	// Stats.
	TBsRun         int64
	RequestsSent   int64
	BytesRequested int64
}

// New creates a GPU. Uplinks are attached afterwards with ConnectUp.
func New(eng *sim.Engine, id int, hw config.Hardware, planeOf func(addr uint64) int, sink DataSink) *GPU {
	g := &GPU{
		ID: id, eng: eng, hw: hw, planeOf: planeOf, sink: sink,
		slowdown:  1,
		up:        make([]*noc.Link, hw.NumSwitchPlanes),
		hbm:       sim.NewResource(fmt.Sprintf("gpu%d.hbm", id)),
		slotsFree: hw.SMsPerGPU,
		seed:      sim.Hash64(hw.Seed, uint64(id)),
		tr:        trace.FromEngine(eng),
		pid:       trace.GPUPid(id),
	}
	g.hbmDoneFn = g.hbmDone
	if g.tr.Enabled() {
		// SM-slot trace tracks, handed out lowest-numbered first so sparse
		// occupancy renders on the top tracks.
		g.slotTids = make([]int32, 0, hw.SMsPerGPU)
		for i := hw.SMsPerGPU - 1; i >= 0; i-- {
			g.slotTids = append(g.slotTids, int32(i))
		}
	}
	g.sync = newSynchronizer(g)
	// The throttle bounds outstanding mergeable bytes (released by switch
	// acceptance credits). Rate pacing is deliberately not used: any
	// per-GPU serialized regulator would perturb the alignment the group
	// synchronization establishes (GPU streams differ by data ownership).
	g.throttle = newThrottle(eng, 0, hw.ThrottleWindowBytes)
	return g
}

// ConnectUp attaches the GPU->switch link for one plane.
func (g *GPU) ConnectUp(plane int, link *noc.Link) { g.up[plane] = link }

// SetPacketPool wires the run-wide packet free list (assembly layer). A
// nil pool — the default for hand-wired unit tests — falls back to plain
// allocation.
func (g *GPU) SetPacketPool(pp *noc.PacketPool) { g.pkts = pp }

// PoolStats sums Get traffic, fresh allocations and idle entries across
// the GPU's typed free lists (access contexts, chunk credits, TB runs).
// The shared packet pool is excluded — the machine reports it once.
func (g *GPU) PoolStats() (gets, news, idle int) {
	for _, p := range []interface{ Stats() (int, int, int) }{&g.ctxs, &g.credits, &g.runs} {
		pg, pn, pi := p.Stats()
		gets, news, idle = gets+pg, news+pn, idle+pi
	}
	return
}

// SetGroupRouter installs a fault-aware sync routing function (see
// Synchronizer.Wait). The assembly layer points this at the machine's
// plane-liveness-aware hash; standalone GPUs keep the static default.
func (g *GPU) SetGroupRouter(fn func(group int) int) { g.groupPlane = fn }

// SetComputeSlowdown scales this GPU's TB compute time (straggler fault
// injection). 1 restores full speed.
func (g *GPU) SetComputeSlowdown(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("gpu%d: compute slowdown must be positive", g.ID))
	}
	g.slowdown = f
}

// ComputeSlowdown reports the current straggler factor (1 = healthy).
func (g *GPU) ComputeSlowdown() float64 { return g.slowdown }

// Uplink returns the GPU->switch link of a plane (for metrics wiring).
func (g *GPU) Uplink(plane int) *noc.Link { return g.up[plane] }

// HBM exposes the memory resource (for utilization reporting).
func (g *GPU) HBM() *sim.Resource { return g.hbm }

// Synchronizer exposes the TB-group synchronizer (for tests).
func (g *GPU) Synchronizer() *Synchronizer { return g.sync }

// Throttle exposes the request throttle (for tests).
func (g *GPU) Throttle() *Throttle { return g.throttle }

func (g *GPU) pktID() uint64 {
	g.nextPktID++
	return uint64(g.ID)<<48 | g.nextPktID
}

// SendHook, when set, observes every uplink send (diagnostics).
var SendHook func(gpu int, p *noc.Packet, t sim.Time)

// sendUp routes a packet onto the deterministic plane for its address.
func (g *GPU) sendUp(p *noc.Packet) {
	if SendHook != nil {
		SendHook(g.ID, p, g.eng.Now())
	}
	plane := g.planeOf(p.Addr)
	if g.up[plane] == nil {
		panic(fmt.Sprintf("gpu%d: no uplink for plane %d", g.ID, plane))
	}
	g.RequestsSent++
	g.BytesRequested += p.WireBytes()
	g.up[plane].Send(p)
}

// hbmTime is the service time of n bytes at full HBM bandwidth.
func (g *GPU) hbmTime(n int64) sim.Time {
	return sim.DurationForBytes(n, g.hw.HBMBandwidth)
}

// Receive implements noc.Endpoint for downlink traffic. HBM-bound work is
// parked on the job ring and drained by the cached hbmDoneFn closure:
// reservations are FIFO and same-instant events run in scheduling order,
// so job k always pairs with the k-th completion (see access.go).
func (g *GPU) Receive(p *noc.Packet) {
	switch p.Op {
	case noc.OpLoad, noc.OpReadFan:
		// Serve a remote read from HBM, then respond on the address's
		// plane so merge/pull sessions see the response.
		_, end := g.hbm.Reserve(g.eng.Now(), g.hbmTime(p.Size))
		g.hbmJobs.PushBack(hbmJob{kind: jobServe, p: p})
		g.eng.At(end, g.hbmDoneFn)

	case noc.OpLoadResp:
		// Requested data arrived: commit to HBM, then complete.
		_, end := g.hbm.Reserve(g.eng.Now(), g.hbmTime(p.Size))
		g.hbmJobs.PushBack(hbmJob{kind: jobLoadResp, p: p})
		g.eng.At(end, g.hbmDoneFn)

	case noc.OpStore, noc.OpRedCAIS, noc.OpMultimemRed, noc.OpMultimemST:
		// Incoming write/reduction/multicast data: commit to HBM, then
		// notify the machine layer (tile publishing, contribution
		// counting) and the issuer.
		_, end := g.hbm.Reserve(g.eng.Now(), g.hbmTime(p.Size))
		g.hbmJobs.PushBack(hbmJob{kind: jobData, p: p})
		g.eng.At(end, g.hbmDoneFn)

	case noc.OpSyncRelease:
		g.sync.Release(p.Group, int(p.Addr))
		g.pkts.Put(p)

	default:
		panic(fmt.Sprintf("gpu%d: unexpected downlink op %v", g.ID, p.Op))
	}
}

// issueAccess performs one TB access. onIssued fires once every chunk has
// been handed to the fabric (posted-write retirement point); onComplete
// fires when the access's data movement finished at this GPU (loads: all
// chunks arrived; local accesses: HBM reservation drained). onComplete may
// be nil for posted writes.
func (g *GPU) issueAccess(a kernel.Access, group int, throttled bool, onIssued, onComplete func()) {
	if a.Local {
		_, end := g.hbm.Reserve(g.eng.Now(), g.hbmTime(a.Bytes))
		if onIssued != nil {
			g.eng.After(0, onIssued)
		}
		if len(a.Publish) > 0 || a.PublishAt != nil || a.PublishEach.Buf != 0 || onComplete != nil {
			ctx := g.getAccessCtx()
			ctx.a = a
			ctx.onComplete = onComplete
			g.hbmJobs.PushBack(hbmJob{kind: jobLocal, ctx: ctx})
			g.eng.At(end, g.hbmDoneFn)
		}
		return
	}

	n := chunkCount(a.Bytes, g.hw.RequestBytes)
	ctx := g.getAccessCtx()
	ctx.a = a
	ctx.group = group
	ctx.onIssued = onIssued
	ctx.onComplete = onComplete
	// Reads publish their tiles at the issuing GPU once the data arrives;
	// remote writes/reductions publish at the home GPU via the packet tag
	// (never here — the issuer's completion is only a throttling signal).
	ctx.publishHere = a.Sem == kernel.SemRead &&
		(len(a.Publish) > 0 || a.PublishAt != nil || a.PublishEach.Buf != 0)
	// Throttling applies to reduction traffic: red.cais carries data
	// uplink (the direction the merge footprint accumulates on), while
	// ld.cais requests are header-only and already paced by the
	// request/response round trip.
	ctx.throttledReq = throttled && a.Mode == noc.OpRedCAIS
	ctx.chunk = g.hw.RequestBytes
	ctx.pendingIssue, ctx.pendingDone = n, n

	if writesData(a.Mode) {
		need := a.TileNeed
		if need <= 0 {
			need = 1
		}
		// The tag outlives the access context: multicast copies still in
		// flight reference it at their receivers, so it stays a plain
		// allocation rather than joining a pool.
		ctx.tag = &TileTag{
			Base: a.Addr, NeedBytes: int64(need) * a.Bytes,
			Publish: a.Publish, PublishAt: a.PublishAt, PublishEach: a.PublishEach,
		}
	}

	if ctx.throttledReq {
		for i := 0; i < n; i++ {
			g.throttle.Acquire(chunkSize(i, a.Bytes, ctx.chunk), ctx.sendNextFn)
		}
		return
	}
	for i := 0; i < n; i++ {
		ctx.sendChunk(i)
	}
}

func writesData(op noc.Op) bool {
	switch op {
	case noc.OpStore, noc.OpRedCAIS, noc.OpMultimemRed, noc.OpMultimemST:
		return true
	default:
		return false
	}
}

func mergeable(op noc.Op) bool {
	return op == noc.OpLdCAIS || op == noc.OpRedCAIS
}

// chunkSizes splits n bytes into request-granularity chunks.
func chunkSizes(n, chunk int64) []int64 {
	if n <= 0 {
		return []int64{0}
	}
	if chunk <= 0 {
		chunk = n
	}
	var out []int64
	for n > 0 {
		c := chunk
		if n < c {
			c = n
		}
		out = append(out, c)
		n -= c
	}
	return out
}

package nvswitch

import "cais/internal/sim"

// Stats aggregates switch-plane behavior. One Stats instance is shared by
// a plane's ports; experiments sum across planes.
type Stats struct {
	// NVLS unit.
	MulticastStores int64 // multimem.st replications
	PullReduces     int64 // completed multimem.ld_reduce sessions
	PushReduces     int64 // completed multimem.red sessions

	// Merge unit (Micro-Functions 1 and 2).
	MergedLoads   int64 // ld.cais requests absorbed by an existing session
	LoadFetches   int64 // fetches issued to home GPUs (one per session)
	BypassLoads   int64 // loads forwarded unmerged (table saturated)
	MergedReds    int64 // red.cais contributions accepted into sessions
	CompletedReds int64 // reduction sessions that gathered all contributions
	BypassReds    int64 // contributions forwarded unmerged

	// Eviction machinery.
	Evictions        int64 // LRU capacity evictions
	PartialFlushes   int64 // partial reduction results flushed to home GPUs
	TimeoutEvictions int64 // forward-progress timeouts

	// Group Sync Table.
	SyncReleases int64

	// Session lifetime (first arrival to release).
	sessLifeSum   sim.Time
	sessLifeCount int64

	// Per-address request skew: the delay between the earliest and latest
	// requests targeting the same address (the paper's "average waiting
	// time", Fig. 13b). Tracked independently of merge-session lifetime so
	// evictions don't hide skew.
	skew      map[uint64]*skewEntry
	skewSum   sim.Time
	skewCount int64
	skewMax   sim.Time

	ldSkewSum    sim.Time
	ldSkewCount  int64
	redSkewSum   sim.Time
	redSkewCount int64
}

type skewEntry struct {
	first    sim.Time
	last     sim.Time
	seen     int
	expected int
}

// NewStats returns an empty collector.
func NewStats() *Stats {
	return &Stats{skew: make(map[uint64]*skewEntry)}
}

func (st *Stats) noteArrival(addr uint64, src, expected int, now sim.Time) {
	st.noteArrivalKind(addr, expected, now, false)
}

func (st *Stats) noteArrivalKind(addr uint64, expected int, now sim.Time, isLoad bool) {
	if expected <= 1 {
		return
	}
	e, ok := st.skew[addr]
	if !ok {
		e = &skewEntry{first: now, expected: expected}
		st.skew[addr] = e
	}
	e.last = now
	e.seen++
	if e.seen >= e.expected {
		delete(st.skew, addr)
		d := e.last - e.first
		st.skewSum += d
		st.skewCount++
		if d > st.skewMax {
			st.skewMax = d
		}
		if isLoad {
			st.ldSkewSum += d
			st.ldSkewCount++
		} else {
			st.redSkewSum += d
			st.redSkewCount++
		}
	}
}

// AvgLoadSkew reports mean per-address arrival spread for load merging.
func (st Stats) AvgLoadSkew() sim.Time {
	if st.ldSkewCount == 0 {
		return 0
	}
	return st.ldSkewSum / sim.Time(st.ldSkewCount)
}

// AvgReductionSkew reports mean arrival spread for reduction merging.
func (st Stats) AvgReductionSkew() sim.Time {
	if st.redSkewCount == 0 {
		return 0
	}
	return st.redSkewSum / sim.Time(st.redSkewCount)
}

func (st *Stats) noteSessionLifetime(d sim.Time) {
	st.sessLifeSum += d
	st.sessLifeCount++
}

// AvgSkew reports the mean delay between the earliest and latest requests
// to the same address, across all fully-observed addresses.
func (st Stats) AvgSkew() sim.Time {
	if st.skewCount == 0 {
		return 0
	}
	return st.skewSum / sim.Time(st.skewCount)
}

// MaxSkew reports the largest observed per-address arrival spread.
func (st Stats) MaxSkew() sim.Time { return st.skewMax }

// SkewSamples reports how many addresses contributed to AvgSkew.
func (st Stats) SkewSamples() int64 { return st.skewCount }

// AvgSessionLifetime reports mean merge-session residency.
func (st Stats) AvgSessionLifetime() sim.Time {
	if st.sessLifeCount == 0 {
		return 0
	}
	return st.sessLifeSum / sim.Time(st.sessLifeCount)
}

// Merge returns st folded together with other (for summing across planes).
func (st *Stats) Merge(other *Stats) Stats {
	out := *st
	out.MulticastStores += other.MulticastStores
	out.PullReduces += other.PullReduces
	out.PushReduces += other.PushReduces
	out.MergedLoads += other.MergedLoads
	out.LoadFetches += other.LoadFetches
	out.BypassLoads += other.BypassLoads
	out.MergedReds += other.MergedReds
	out.CompletedReds += other.CompletedReds
	out.BypassReds += other.BypassReds
	out.Evictions += other.Evictions
	out.PartialFlushes += other.PartialFlushes
	out.TimeoutEvictions += other.TimeoutEvictions
	out.SyncReleases += other.SyncReleases
	out.sessLifeSum += other.sessLifeSum
	out.sessLifeCount += other.sessLifeCount
	out.skewSum += other.skewSum
	out.skewCount += other.skewCount
	out.ldSkewSum += other.ldSkewSum
	out.ldSkewCount += other.ldSkewCount
	out.redSkewSum += other.redSkewSum
	out.redSkewCount += other.redSkewCount
	if other.skewMax > out.skewMax {
		out.skewMax = other.skewMax
	}
	out.skew = nil
	return out
}

package nvswitch

import (
	"cais/internal/metrics"
	"cais/internal/sim"
)

// Stats is the live per-plane statistics collector. Every quantity is a
// named counter/gauge/histogram in a metrics.Registry (naming scheme
// "<prefix>.<metric>", e.g. "nvswitch.plane0.merged_loads"), so the same
// numbers that drive the paper's figures also appear in machine-readable
// run reports. One Stats instance is shared by a plane's ports;
// experiments fold planes together with Summary.
type Stats struct {
	// NVLS unit.
	multicastStores *metrics.Counter // multimem.st replications
	pullReduces     *metrics.Counter // completed multimem.ld_reduce sessions
	pushReduces     *metrics.Counter // completed multimem.red sessions

	// Merge unit (Micro-Functions 1 and 2).
	mergedLoads   *metrics.Counter // ld.cais requests absorbed by an existing session
	loadFetches   *metrics.Counter // fetches issued to home GPUs (one per session)
	bypassLoads   *metrics.Counter // loads forwarded unmerged (table saturated)
	mergedReds    *metrics.Counter // red.cais contributions accepted into sessions
	completedReds *metrics.Counter // reduction sessions that gathered all contributions
	bypassReds    *metrics.Counter // contributions forwarded unmerged

	// Eviction machinery.
	evictions        *metrics.Counter // LRU capacity evictions
	partialFlushes   *metrics.Counter // partial reduction results flushed to home GPUs
	timeoutEvictions *metrics.Counter // forward-progress timeouts

	// Group Sync Table.
	syncReleases *metrics.Counter

	// Fault tolerance (plane failover, see DESIGN.md §8).
	nvlsTimeoutFlushes *metrics.Counter // NVLS push sessions flushed partial by timeout/failover
	syncDropped        *metrics.Counter // sync entries dropped when the plane failed
	syncDuplicates     *metrics.Counter // duplicate registrations tolerated in fault mode

	// Session lifetime (first arrival to release).
	sessLifeSumPS *metrics.Counter
	sessLifeCount *metrics.Counter
	sessLifeUS    *metrics.Hist

	// Per-address request skew: the delay between the earliest and latest
	// requests targeting the same address (the paper's "average waiting
	// time", Fig. 13b). Tracked independently of merge-session lifetime so
	// evictions don't hide skew. The open-address map is collector state;
	// completed spreads accumulate into the registry.
	skew        map[uint64]*skewEntry
	skewSumPS   *metrics.Counter
	skewCount   *metrics.Counter
	skewMaxPS   *metrics.Gauge
	skewUS      *metrics.Hist
	ldSkewSumPS *metrics.Counter
	ldSkewCount *metrics.Counter
	redSkewSum  *metrics.Counter
	redSkewCnt  *metrics.Counter
}

type skewEntry struct {
	first    sim.Time
	last     sim.Time
	seen     int
	expected int
}

// NewStats returns a collector backed by a private registry (standalone
// switch tests); system assembly uses NewStatsIn with the machine's
// central registry.
func NewStats() *Stats { return NewStatsIn(metrics.NewRegistry(), "nvswitch") }

// NewStatsIn returns a collector whose metrics register into reg under
// "<prefix>.<metric>" names.
func NewStatsIn(reg *metrics.Registry, prefix string) *Stats {
	c := func(name string) *metrics.Counter { return reg.Counter(prefix + "." + name) }
	return &Stats{
		multicastStores:    c("multicast_stores"),
		pullReduces:        c("pull_reduces"),
		pushReduces:        c("push_reduces"),
		mergedLoads:        c("merged_loads"),
		loadFetches:        c("load_fetches"),
		bypassLoads:        c("bypass_loads"),
		mergedReds:         c("merged_reds"),
		completedReds:      c("completed_reds"),
		bypassReds:         c("bypass_reds"),
		evictions:          c("evictions"),
		partialFlushes:     c("partial_flushes"),
		timeoutEvictions:   c("timeout_evictions"),
		syncReleases:       c("sync_releases"),
		nvlsTimeoutFlushes: c("nvls_timeout_flushes"),
		syncDropped:        c("sync_dropped"),
		syncDuplicates:     c("sync_duplicates"),
		sessLifeSumPS:      c("session_lifetime_sum_ps"),
		sessLifeCount:      c("session_lifetime_count"),
		sessLifeUS:         reg.Hist(prefix + ".session_lifetime_us"),
		skew:               make(map[uint64]*skewEntry),
		skewSumPS:          c("skew_sum_ps"),
		skewCount:          c("skew_count"),
		skewMaxPS:          reg.Gauge(prefix + ".skew_max_ps"),
		skewUS:             reg.Hist(prefix + ".skew_us"),
		ldSkewSumPS:        c("load_skew_sum_ps"),
		ldSkewCount:        c("load_skew_count"),
		redSkewSum:         c("reduction_skew_sum_ps"),
		redSkewCnt:         c("reduction_skew_count"),
	}
}

func (st *Stats) noteArrivalKind(addr uint64, expected int, now sim.Time, isLoad bool) {
	if expected <= 1 {
		return
	}
	e, ok := st.skew[addr]
	if !ok {
		e = &skewEntry{first: now, expected: expected}
		st.skew[addr] = e
	}
	e.last = now
	e.seen++
	if e.seen >= e.expected {
		delete(st.skew, addr)
		d := e.last - e.first
		st.skewSumPS.Add(int64(d))
		st.skewCount.Inc()
		st.skewUS.Observe(d.Microseconds())
		if d > sim.FromPicoseconds(st.skewMaxPS.Value()) {
			st.skewMaxPS.Set(float64(d))
		}
		if isLoad {
			st.ldSkewSumPS.Add(int64(d))
			st.ldSkewCount.Inc()
		} else {
			st.redSkewSum.Add(int64(d))
			st.redSkewCnt.Inc()
		}
	}
}

func (st *Stats) noteSessionLifetime(d sim.Time) {
	st.sessLifeSumPS.Add(int64(d))
	st.sessLifeCount.Inc()
	st.sessLifeUS.Observe(d.Microseconds())
}

// OpenSkewAddrs reports how many addresses are mid-observation (expected
// arrivals not yet all seen) — diagnostics for tests.
func (st *Stats) OpenSkewAddrs() int { return len(st.skew) }

// Summary captures the collector into a plain value for reporting.
func (st *Stats) Summary() Summary {
	return Summary{
		MulticastStores:    st.multicastStores.Value(),
		PullReduces:        st.pullReduces.Value(),
		PushReduces:        st.pushReduces.Value(),
		MergedLoads:        st.mergedLoads.Value(),
		LoadFetches:        st.loadFetches.Value(),
		BypassLoads:        st.bypassLoads.Value(),
		MergedReds:         st.mergedReds.Value(),
		CompletedReds:      st.completedReds.Value(),
		BypassReds:         st.bypassReds.Value(),
		Evictions:          st.evictions.Value(),
		PartialFlushes:     st.partialFlushes.Value(),
		TimeoutEvictions:   st.timeoutEvictions.Value(),
		SyncReleases:       st.syncReleases.Value(),
		NvlsTimeoutFlushes: st.nvlsTimeoutFlushes.Value(),
		SyncDropped:        st.syncDropped.Value(),
		SyncDuplicates:     st.syncDuplicates.Value(),
		SessLifeSum:        sim.Time(st.sessLifeSumPS.Value()),
		SessLifeCount:      st.sessLifeCount.Value(),
		SkewSum:            sim.Time(st.skewSumPS.Value()),
		SkewCount:          st.skewCount.Value(),
		SkewMax:            sim.FromPicoseconds(st.skewMaxPS.Value()),
		LdSkewSum:          sim.Time(st.ldSkewSumPS.Value()),
		LdSkewCount:        st.ldSkewCount.Value(),
		RedSkewSum:         sim.Time(st.redSkewSum.Value()),
		RedSkewCount:       st.redSkewCnt.Value(),
	}
}

// Accessor convenience on the live collector (delegates to Summary).

// AvgSkew reports the mean per-address arrival spread observed so far.
func (st *Stats) AvgSkew() sim.Time { return st.Summary().AvgSkew() }

// MaxSkew reports the largest observed per-address arrival spread.
func (st *Stats) MaxSkew() sim.Time { return st.Summary().MaxSkew() }

// SkewSamples reports how many addresses contributed to AvgSkew.
func (st *Stats) SkewSamples() int64 { return st.Summary().SkewSamples() }

// AvgSessionLifetime reports mean merge-session residency.
func (st *Stats) AvgSessionLifetime() sim.Time { return st.Summary().AvgSessionLifetime() }

// Summary is one plane's (or, after Add, a whole machine's) statistics as
// a plain value: the reporting API consumed by experiments, the CLI and
// tests. Field names match the pre-registry Stats fields so call sites
// read identically.
type Summary struct {
	// NVLS unit.
	MulticastStores int64 // multimem.st replications
	PullReduces     int64 // completed multimem.ld_reduce sessions
	PushReduces     int64 // completed multimem.red sessions

	// Merge unit (Micro-Functions 1 and 2).
	MergedLoads   int64 // ld.cais requests absorbed by an existing session
	LoadFetches   int64 // fetches issued to home GPUs (one per session)
	BypassLoads   int64 // loads forwarded unmerged (table saturated)
	MergedReds    int64 // red.cais contributions accepted into sessions
	CompletedReds int64 // reduction sessions that gathered all contributions
	BypassReds    int64 // contributions forwarded unmerged

	// Eviction machinery.
	Evictions        int64 // LRU capacity evictions
	PartialFlushes   int64 // partial reduction results flushed to home GPUs
	TimeoutEvictions int64 // forward-progress timeouts

	// Group Sync Table.
	SyncReleases int64

	// Fault tolerance (plane failover).
	NvlsTimeoutFlushes int64 // NVLS push sessions flushed partial by timeout/failover
	SyncDropped        int64 // sync entries dropped when the plane failed
	SyncDuplicates     int64 // duplicate registrations tolerated in fault mode

	// Session lifetime (first arrival to release).
	SessLifeSum   sim.Time
	SessLifeCount int64

	// Per-address request skew aggregates.
	SkewSum      sim.Time
	SkewCount    int64
	SkewMax      sim.Time
	LdSkewSum    sim.Time
	LdSkewCount  int64
	RedSkewSum   sim.Time
	RedSkewCount int64
}

// Add folds another summary in (for summing across planes).
func (s Summary) Add(o Summary) Summary {
	s.MulticastStores += o.MulticastStores
	s.PullReduces += o.PullReduces
	s.PushReduces += o.PushReduces
	s.MergedLoads += o.MergedLoads
	s.LoadFetches += o.LoadFetches
	s.BypassLoads += o.BypassLoads
	s.MergedReds += o.MergedReds
	s.CompletedReds += o.CompletedReds
	s.BypassReds += o.BypassReds
	s.Evictions += o.Evictions
	s.PartialFlushes += o.PartialFlushes
	s.TimeoutEvictions += o.TimeoutEvictions
	s.SyncReleases += o.SyncReleases
	s.NvlsTimeoutFlushes += o.NvlsTimeoutFlushes
	s.SyncDropped += o.SyncDropped
	s.SyncDuplicates += o.SyncDuplicates
	s.SessLifeSum += o.SessLifeSum
	s.SessLifeCount += o.SessLifeCount
	s.SkewSum += o.SkewSum
	s.SkewCount += o.SkewCount
	s.LdSkewSum += o.LdSkewSum
	s.LdSkewCount += o.LdSkewCount
	s.RedSkewSum += o.RedSkewSum
	s.RedSkewCount += o.RedSkewCount
	if o.SkewMax > s.SkewMax {
		s.SkewMax = o.SkewMax
	}
	return s
}

// AvgSkew reports the mean delay between the earliest and latest requests
// to the same address, across all fully-observed addresses.
func (s Summary) AvgSkew() sim.Time {
	if s.SkewCount == 0 {
		return 0
	}
	return s.SkewSum / sim.Time(s.SkewCount)
}

// MaxSkew reports the largest observed per-address arrival spread.
func (s Summary) MaxSkew() sim.Time { return s.SkewMax }

// SkewSamples reports how many addresses contributed to AvgSkew.
func (s Summary) SkewSamples() int64 { return s.SkewCount }

// AvgLoadSkew reports mean per-address arrival spread for load merging.
func (s Summary) AvgLoadSkew() sim.Time {
	if s.LdSkewCount == 0 {
		return 0
	}
	return s.LdSkewSum / sim.Time(s.LdSkewCount)
}

// AvgReductionSkew reports mean arrival spread for reduction merging.
func (s Summary) AvgReductionSkew() sim.Time {
	if s.RedSkewCount == 0 {
		return 0
	}
	return s.RedSkewSum / sim.Time(s.RedSkewCount)
}

// AvgSessionLifetime reports mean merge-session residency.
func (s Summary) AvgSessionLifetime() sim.Time {
	if s.SessLifeCount == 0 {
		return 0
	}
	return s.SessLifeSum / sim.Time(s.SessLifeCount)
}

package nvswitch

import (
	"testing"

	"cais/internal/noc"
	"cais/internal/sim"
)

// fakeGPU is a minimal GPU endpoint: it answers read requests immediately
// and records everything it receives.
type fakeGPU struct {
	id       int
	up       *noc.Link
	received []*noc.Packet
}

func (g *fakeGPU) Receive(p *noc.Packet) {
	g.received = append(g.received, p)
	switch p.Op {
	case noc.OpLoad:
		g.up.Send(&noc.Packet{
			Op: noc.OpLoadResp, Addr: p.Addr, Home: g.id,
			Src: g.id, Dst: p.Src, Size: p.Size, Tag: p.Tag,
		})
	case noc.OpReadFan:
		g.up.Send(&noc.Packet{
			Op: noc.OpLoadResp, Addr: p.Addr, Home: g.id,
			Src: g.id, Dst: p.Src, Size: p.Size, Tag: p.Tag,
		})
	default:
		if p.OnDone != nil {
			p.OnDone()
		}
	}
}

func (g *fakeGPU) countOp(op noc.Op) int {
	n := 0
	for _, p := range g.received {
		if p.Op == op {
			n++
		}
	}
	return n
}

type rig struct {
	eng  *sim.Engine
	sw   *Switch
	gpus []*fakeGPU
}

func newRig(t *testing.T, n int, capacity int64, timeout sim.Time) *rig {
	t.Helper()
	eng := sim.NewEngine()
	eng.SetStepLimit(1_000_000)
	sw := New(eng, Config{
		NumGPUs: n, SwitchLatency: 50 * sim.Nanosecond,
		MergeCapacity: capacity, MergeTimeout: timeout,
	})
	r := &rig{eng: eng, sw: sw, gpus: make([]*fakeGPU, n)}
	const bw, lat = 100e9, 250 * sim.Nanosecond
	for g := 0; g < n; g++ {
		gpu := &fakeGPU{id: g}
		gpu.up = noc.NewLink(eng, "up", bw, lat, sw)
		sw.ConnectDown(g, noc.NewLink(eng, "down", bw, lat, gpu))
		r.gpus[g] = gpu
	}
	return r
}

func (r *rig) send(from int, p *noc.Packet) {
	r.gpus[from].up.Send(p)
}

func TestLoadMergingFetchesOnceServesAll(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	done := 0
	r.eng.At(0, func() {
		for _, g := range []int{1, 2, 3} {
			r.send(g, &noc.Packet{
				Op: noc.OpLdCAIS, Addr: 0x100, Home: 0, Src: g,
				Size: 1024, Contribs: 3, OnDone: func() { done++ },
			})
		}
	})
	r.eng.Run()
	if got := r.gpus[0].countOp(noc.OpLoad); got != 1 {
		t.Fatalf("home GPU saw %d fetches, want 1 (merged)", got)
	}
	for _, g := range []int{1, 2, 3} {
		if got := r.gpus[g].countOp(noc.OpLoadResp); got != 1 {
			t.Fatalf("gpu %d got %d responses, want 1", g, got)
		}
	}
	if done != 3 {
		t.Fatalf("OnDone fired %d times, want 3", done)
	}
	st := r.sw.Summary()
	if st.LoadFetches != 1 || st.MergedLoads != 2 {
		t.Fatalf("stats fetches=%d merged=%d, want 1/2", st.LoadFetches, st.MergedLoads)
	}
	if r.sw.Port(0).Sessions() != 0 {
		t.Fatal("session not released after all requesters served")
	}
	if r.sw.Port(0).Used() != 0 {
		t.Fatal("table occupancy not freed")
	}
}

func TestLoadMergingServesLateRequesterFromCache(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	r.eng.At(0, func() {
		r.send(1, &noc.Packet{Op: noc.OpLdCAIS, Addr: 0x200, Home: 0, Src: 1, Size: 512, Contribs: 3})
		r.send(2, &noc.Packet{Op: noc.OpLdCAIS, Addr: 0x200, Home: 0, Src: 2, Size: 512, Contribs: 3})
	})
	// Third requester arrives long after the fetch returned: it must be
	// served directly from the cached content array, not re-fetched.
	r.eng.At(50*sim.Microsecond, func() {
		r.send(3, &noc.Packet{Op: noc.OpLdCAIS, Addr: 0x200, Home: 0, Src: 3, Size: 512, Contribs: 3})
	})
	r.eng.Run()
	if got := r.gpus[0].countOp(noc.OpLoad); got != 1 {
		t.Fatalf("home saw %d fetches, want 1", got)
	}
	if got := r.gpus[3].countOp(noc.OpLoadResp); got != 1 {
		t.Fatal("late requester not served from cache")
	}
}

func TestReductionMergingSingleDownstreamWrite(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	done := 0
	r.eng.At(0, func() {
		for _, g := range []int{1, 2, 3} {
			r.send(g, &noc.Packet{
				Op: noc.OpRedCAIS, Addr: 0x300, Home: 0, Src: g,
				Size: 2048, Contribs: 3, OnDone: func() { done++ },
			})
		}
	})
	r.eng.Run()
	if got := r.gpus[0].countOp(noc.OpRedCAIS); got != 1 {
		t.Fatalf("home saw %d reduction writes, want 1 merged", got)
	}
	var result *noc.Packet
	for _, p := range r.gpus[0].received {
		if p.Op == noc.OpRedCAIS {
			result = p
		}
	}
	if result.Contribs != 3 {
		t.Fatalf("merged result folds %d contributions, want 3", result.Contribs)
	}
	if done != 3 {
		t.Fatalf("contributor OnDone fired %d, want 3", done)
	}
	st := r.sw.Summary()
	if st.CompletedReds != 1 || st.MergedReds != 3 {
		t.Fatalf("stats completed=%d merged=%d", st.CompletedReds, st.MergedReds)
	}
}

func TestReductionTimeoutFlushesPartial(t *testing.T) {
	r := newRig(t, 4, -1, 10*sim.Microsecond)
	r.eng.At(0, func() {
		r.send(1, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x400, Home: 0, Src: 1, Size: 256, Contribs: 3})
	})
	r.eng.Run()
	if got := r.gpus[0].countOp(noc.OpRedCAIS); got != 1 {
		t.Fatalf("home saw %d flushes, want 1", got)
	}
	p := r.gpus[0].received[len(r.gpus[0].received)-1]
	if p.Contribs != 1 {
		t.Fatalf("partial flush carries %d contribs, want 1", p.Contribs)
	}
	st := r.sw.Summary()
	if st.TimeoutEvictions != 1 || st.PartialFlushes != 1 {
		t.Fatalf("timeout=%d flushes=%d, want 1/1", st.TimeoutEvictions, st.PartialFlushes)
	}
	if r.sw.Port(0).Used() != 0 {
		t.Fatal("timed-out entry still occupies the table")
	}
}

func TestReductionTimeoutThenLateContributionsStillComplete(t *testing.T) {
	r := newRig(t, 4, -1, 10*sim.Microsecond)
	r.eng.At(0, func() {
		r.send(1, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x480, Home: 0, Src: 1, Size: 256, Contribs: 3})
	})
	// Arrive after the first entry timed out: a fresh session forms and
	// flushes on its own completion path; total folded contributions at
	// the home must still sum to 3.
	r.eng.At(30*sim.Microsecond, func() {
		r.send(2, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x480, Home: 0, Src: 2, Size: 256, Contribs: 3})
		r.send(3, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x480, Home: 0, Src: 3, Size: 256, Contribs: 3})
	})
	r.eng.Run()
	total := 0
	for _, p := range r.gpus[0].received {
		if p.Op == noc.OpRedCAIS {
			total += p.Contribs
		}
	}
	if total != 3 {
		t.Fatalf("home received %d total contributions, want 3", total)
	}
}

func TestCapacityPressureEvictsLRUReduction(t *testing.T) {
	// Capacity fits exactly one 1 KB session.
	r := newRig(t, 4, 1024, 0)
	r.eng.At(0, func() {
		r.send(1, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x500, Home: 0, Src: 1, Size: 1024, Contribs: 3})
	})
	r.eng.At(5*sim.Microsecond, func() {
		r.send(2, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x600, Home: 0, Src: 2, Size: 1024, Contribs: 3})
	})
	r.eng.Run()
	st := r.sw.Summary()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	// The first session's partial (1 contribution) must have been flushed.
	found := false
	for _, p := range r.gpus[0].received {
		if p.Op == noc.OpRedCAIS && p.Addr == 0x500 && p.Contribs == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("evicted session did not flush its partial to the home GPU")
	}
}

func TestCapacityPressureBypassesWhenNothingEvictable(t *testing.T) {
	// Load-Wait entries hold only request metadata, but they are not
	// evictable: once pending entries fill the table, a new load to a
	// different address must bypass the merge unit. Capacity fits one
	// metadata entry.
	r := newRig(t, 4, 200, 0)
	got := 0
	r.eng.At(0, func() {
		r.send(1, &noc.Packet{Op: noc.OpLdCAIS, Addr: 0x700, Home: 0, Src: 1, Size: 1024, Contribs: 3})
		r.send(2, &noc.Packet{Op: noc.OpLdCAIS, Addr: 0x800, Home: 0, Src: 2, Size: 1024, Contribs: 3,
			OnDone: func() { got++ }})
	})
	r.eng.Run()
	st := r.sw.Summary()
	if st.BypassLoads != 1 {
		t.Fatalf("bypasses = %d, want 1", st.BypassLoads)
	}
	if got != 1 {
		t.Fatal("bypassed load never completed")
	}
	// Home saw two fetches: the merged session's and the bypassed one.
	if fetches := r.gpus[0].countOp(noc.OpLoad); fetches != 2 {
		t.Fatalf("home fetches = %d, want 2", fetches)
	}
}

func TestHighWaterTracksPeakOccupancy(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	r.eng.At(0, func() {
		// Two concurrent 1 KB reduction sessions at the same port.
		r.send(1, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x900, Home: 0, Src: 1, Size: 1024, Contribs: 3})
		r.send(1, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0xA00, Home: 0, Src: 1, Size: 1024, Contribs: 3})
	})
	r.eng.Run()
	if hwm := r.sw.Port(0).HighWater(); hwm != 2048 {
		t.Fatalf("high water = %d, want 2048", hwm)
	}
}

func TestMulticastStoreReplicatesToPeers(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	done := false
	r.eng.At(0, func() {
		r.send(0, &noc.Packet{Op: noc.OpMultimemST, Addr: 0xB00, Home: 0, Src: 0,
			Size: 4096, OnDone: func() { done = true }})
	})
	r.eng.Run()
	if r.gpus[0].countOp(noc.OpMultimemST) != 0 {
		t.Fatal("multicast echoed back to the sender")
	}
	for g := 1; g < 4; g++ {
		if r.gpus[g].countOp(noc.OpMultimemST) != 1 {
			t.Fatalf("gpu %d copies = %d, want 1", g, r.gpus[g].countOp(noc.OpMultimemST))
		}
	}
	if !done {
		t.Fatal("sender OnDone not fired")
	}
}

func TestPullReduceFansToAllAndReturnsOne(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	done := false
	r.eng.At(0, func() {
		r.send(2, &noc.Packet{Op: noc.OpMultimemLdReduce, Addr: 0xC00, Home: 0, Src: 2,
			Size: 4096, OnDone: func() { done = true }})
	})
	r.eng.Run()
	for g := 0; g < 4; g++ {
		if r.gpus[g].countOp(noc.OpReadFan) != 1 {
			t.Fatalf("gpu %d fan reads = %d, want 1", g, r.gpus[g].countOp(noc.OpReadFan))
		}
	}
	if r.gpus[2].countOp(noc.OpLoadResp) != 1 {
		t.Fatal("requester did not get the reduced value")
	}
	resp := r.gpus[2].received[len(r.gpus[2].received)-1]
	if !done || resp.OnDone == nil {
		// OnDone is invoked by the fake GPU's default branch.
		t.Fatal("requester completion not delivered")
	}
}

func TestPushReduceBroadcastsWhenDstNegative(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	r.eng.At(0, func() {
		for g := 0; g < 4; g++ {
			r.send(g, &noc.Packet{Op: noc.OpMultimemRed, Addr: 0xD00, Home: 0, Src: g,
				Dst: -1, Size: 4096, Contribs: 4})
		}
	})
	r.eng.Run()
	for g := 0; g < 4; g++ {
		if r.gpus[g].countOp(noc.OpMultimemRed) != 1 {
			t.Fatalf("gpu %d results = %d, want 1 (broadcast)", g, r.gpus[g].countOp(noc.OpMultimemRed))
		}
	}
	if r.sw.Summary().PushReduces != 1 {
		t.Fatalf("push reduce sessions = %d, want 1", r.sw.Summary().PushReduces)
	}
}

func TestPushReduceToHomeOnly(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	r.eng.At(0, func() {
		for g := 0; g < 4; g++ {
			r.send(g, &noc.Packet{Op: noc.OpMultimemRed, Addr: 0xE00, Home: 1, Src: g,
				Dst: 1, Size: 4096, Contribs: 4})
		}
	})
	r.eng.Run()
	for g := 0; g < 4; g++ {
		want := 0
		if g == 1 {
			want = 1
		}
		if r.gpus[g].countOp(noc.OpMultimemRed) != want {
			t.Fatalf("gpu %d results = %d, want %d", g, r.gpus[g].countOp(noc.OpMultimemRed), want)
		}
	}
}

func TestGroupSyncReleasesAllRegistrants(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	var releaseTimes []sim.Time
	for g := 0; g < 4; g++ {
		g := g
		// Stagger registrations; releases must come only after the last.
		r.eng.At(sim.Time(g)*sim.Microsecond, func() {
			r.send(g, &noc.Packet{Op: noc.OpSyncRequest, Addr: 7, Group: 42, Src: g, Contribs: 4})
		})
	}
	orig := make([]func(*noc.Packet), 4)
	_ = orig
	r.eng.Run()
	for g := 0; g < 4; g++ {
		n := r.gpus[g].countOp(noc.OpSyncRelease)
		if n != 1 {
			t.Fatalf("gpu %d releases = %d, want 1", g, n)
		}
	}
	_ = releaseTimes
	if r.sw.Summary().SyncReleases != 1 {
		t.Fatalf("sync releases = %d, want 1", r.sw.Summary().SyncReleases)
	}
}

func TestSkewStatsMeasureArrivalSpread(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	// Three requests to the same address, 10 us apart: skew = 20 us
	// measured at switch arrival. (Link+switch delay affects absolute
	// arrival, but the spread is preserved since paths are identical.)
	for i, g := range []int{1, 2, 3} {
		i, g := i, g
		r.eng.At(sim.Time(i)*10*sim.Microsecond, func() {
			r.send(g, &noc.Packet{Op: noc.OpLdCAIS, Addr: 0xF00, Home: 0, Src: g, Size: 128, Contribs: 3})
		})
	}
	r.eng.Run()
	st := r.sw.Stats()
	if st.SkewSamples() != 1 {
		t.Fatalf("skew samples = %d, want 1", st.SkewSamples())
	}
	if got := st.AvgSkew(); got != 20*sim.Microsecond {
		t.Fatalf("avg skew = %v, want 20us", got)
	}
}

func TestSummaryAddFoldsPlanes(t *testing.T) {
	a := Summary{MergedLoads: 3, SkewSum: 10 * sim.Microsecond, SkewCount: 2}
	b := Summary{MergedLoads: 4, SkewSum: 20 * sim.Microsecond, SkewCount: 1,
		SkewMax: 15 * sim.Microsecond}
	m := a.Add(b)
	if m.MergedLoads != 7 {
		t.Fatalf("merged loads = %d, want 7", m.MergedLoads)
	}
	if m.AvgSkew() != 10*sim.Microsecond {
		t.Fatalf("avg skew = %v, want 10us", m.AvgSkew())
	}
	if m.MaxSkew() != 15*sim.Microsecond {
		t.Fatalf("max skew = %v, want 15us", m.MaxSkew())
	}
	// Add must not mutate its receiver (value semantics).
	if a.MergedLoads != 3 || a.SkewMax != 0 {
		t.Fatalf("Add mutated receiver: %+v", a)
	}
}

func TestSessionStateString(t *testing.T) {
	if LoadWait.String() != "Load-Wait" || LoadReady.String() != "Load-Ready" || Reduction.String() != "Reduction" {
		t.Fatal("state names wrong")
	}
}

func TestBroadcastReductionWritesEveryReplica(t *testing.T) {
	r := newRig(t, 4, -1, 0)
	done := 0
	r.eng.At(0, func() {
		for g := 0; g < 4; g++ {
			r.send(g, &noc.Packet{
				Op: noc.OpRedCAIS, Addr: 0x1100, Home: 0, Src: g, Dst: -1,
				Size: 1024, Contribs: 4, OnDone: func() { done++ },
			})
		}
	})
	r.eng.Run()
	for g := 0; g < 4; g++ {
		if got := r.gpus[g].countOp(noc.OpRedCAIS); got != 1 {
			t.Fatalf("gpu %d reduced copies = %d, want 1 (broadcast)", g, got)
		}
	}
	if done != 4 {
		t.Fatalf("contributor completions = %d, want 4", done)
	}
	if r.sw.Port(0).Used() != 0 {
		t.Fatal("broadcast session not released")
	}
}

func TestBroadcastReductionTimeoutCompletesInPlace(t *testing.T) {
	// A partially-filled broadcast session cannot strand a partial at a
	// home replica: on timeout it broadcasts what it has.
	r := newRig(t, 4, -1, 10*sim.Microsecond)
	r.eng.At(0, func() {
		r.send(1, &noc.Packet{Op: noc.OpRedCAIS, Addr: 0x1200, Home: 0, Src: 1, Dst: -1,
			Size: 1024, Contribs: 4})
	})
	r.eng.Run()
	total := 0
	for g := 0; g < 4; g++ {
		total += r.gpus[g].countOp(noc.OpRedCAIS)
	}
	if total != 4 {
		t.Fatalf("timed-out broadcast delivered %d copies, want 4", total)
	}
	if r.sw.Port(0).Used() != 0 {
		t.Fatal("timed-out broadcast session leaked")
	}
}

func TestEvictionPolicies(t *testing.T) {
	// Three reduction sessions with distinct recency; a fourth allocation
	// forces one eviction. LRU must evict the stalest, MRU the freshest.
	for _, tc := range []struct {
		policy EvictionPolicy
		victim uint64
	}{
		{EvictLRU, 0x10}, {EvictMRU, 0x30}, {EvictFIFO, 0x10},
	} {
		eng := sim.NewEngine()
		sw := New(eng, Config{NumGPUs: 4, MergeCapacity: 3 * 1024, Eviction: tc.policy})
		var flushed []uint64
		gpu0 := noc.EndpointFunc(func(p *noc.Packet) {
			if p.Op == noc.OpRedCAIS {
				flushed = append(flushed, p.Addr)
			}
		})
		for g := 0; g < 4; g++ {
			dst := gpu0
			if g != 0 {
				dst = noc.EndpointFunc(func(*noc.Packet) {})
			}
			sw.ConnectDown(g, noc.NewLink(eng, "d", 100e9, 0, dst))
		}
		up := noc.NewLink(eng, "u", 100e9, 0, sw)
		eng.At(0, func() {
			up.Send(&noc.Packet{Op: noc.OpRedCAIS, Addr: 0x10, Home: 0, Src: 1, Size: 1024, Contribs: 3})
		})
		eng.At(sim.Microsecond, func() {
			up.Send(&noc.Packet{Op: noc.OpRedCAIS, Addr: 0x20, Home: 0, Src: 1, Size: 1024, Contribs: 3})
		})
		eng.At(2*sim.Microsecond, func() {
			up.Send(&noc.Packet{Op: noc.OpRedCAIS, Addr: 0x30, Home: 0, Src: 1, Size: 1024, Contribs: 3})
		})
		eng.At(3*sim.Microsecond, func() {
			up.Send(&noc.Packet{Op: noc.OpRedCAIS, Addr: 0x40, Home: 0, Src: 1, Size: 1024, Contribs: 3})
		})
		eng.Run()
		if len(flushed) == 0 || flushed[0] != tc.victim {
			t.Errorf("policy %v evicted %v, want %#x first", tc.policy, flushed, tc.victim)
		}
	}
}

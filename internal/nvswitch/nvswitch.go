// Package nvswitch models one NVSwitch plane: deterministic routing of
// peer-to-peer traffic, the NVLS in-switch multicast/reduction unit
// (multimem.st / multimem.ld_reduce / multimem.red), the CAIS merge unit
// with its CAM lookup table, merging table, LRU eviction and timeout
// forward-progress mechanism (Section III-A of the paper), and the Group
// Sync Table used by merging-aware TB coordination (Section III-B).
package nvswitch

import (
	"fmt"
	"sort"

	"cais/internal/metrics"
	"cais/internal/noc"
	"cais/internal/pool"
	"cais/internal/sim"
	"cais/internal/trace"
)

// Config parameterizes one switch plane.
type Config struct {
	NumGPUs       int
	Plane         int      // plane index (for naming/diagnostics)
	SwitchLatency sim.Time // per-packet processing latency

	// MergeCapacity is the per-port merging-table capacity in bytes.
	// Negative means unlimited (used to measure the minimal required
	// table size, Fig. 13a).
	MergeCapacity int64
	// MergeTimeout is the forward-progress eviction timeout.
	MergeTimeout sim.Time

	// CreditLatency is the switch->GPU delay of the merge unit's
	// acceptance feedback (one link traversal).
	CreditLatency sim.Time

	// Eviction selects the merge unit's victim policy (default LRU).
	Eviction EvictionPolicy

	// Metrics, when set, is the central registry the plane's statistics
	// register into (as "nvswitch.plane<N>.<metric>"). Nil means a private
	// per-plane registry (standalone tests).
	Metrics *metrics.Registry
}

// Switch is one NVSwitch plane. It terminates the per-GPU uplinks (it is
// their noc.Endpoint) and owns one downlink plus one merge unit per
// GPU-facing port.
type Switch struct {
	eng  *sim.Engine
	cfg  Config
	down []*noc.Link // index = GPU
	port []*MergeUnit

	nvlsRed  map[uint64]*nvlsRedSession
	nvlsPull map[pullKey]*nvlsPullSession
	sync     map[syncTableKey]*syncEntry

	// faultTolerant arms the failover protocol (DESIGN.md §8): NVLS push
	// sessions get completion timeouts (re-routing can split a session
	// across planes, so waiting for all contributions may never end), and
	// duplicate sync registrations are tolerated instead of fatal. Off by
	// default so healthy runs keep strict invariants and bit-identical
	// behavior.
	faultTolerant bool
	// failed marks a plane taken down by the injector. The plane keeps
	// draining traffic already addressed to it (downlinks stay up), but
	// its merge/NVLS/sync state was flushed at failure.
	failed bool

	stats  *Stats
	tr     *trace.Tracer
	pid    int32
	nextID uint64

	// pkts is the run-wide packet free list (nil degrades to plain
	// allocation); the session pools are private to this plane.
	pkts         *noc.PacketPool
	redSessions  pool.Pool[nvlsRedSession]
	pullSessions pool.Pool[nvlsPullSession]
	syncEntries  pool.Pool[syncEntry]

	// pending pairs packets awaiting the switch-internal latency with the
	// single cached processNextFn closure: the latency is constant, so
	// processing is FIFO and the ring head always matches the next event.
	pending       pool.Ring[*noc.Packet]
	processNextFn func()
}

type pullKey struct {
	addr      uint64
	requester int
}

// pullTag routes a ld_reduce fan response back to the plane that issued the
// fan-out. It carries the owning switch pointer rather than a bare key:
// after a plane failure the requester's address hash re-routes to a
// surviving plane, so the response must still find the originating
// session wherever the uplink delivers it.
type pullTag struct {
	sw  *Switch
	key pullKey
}

// nvlsRedSession accumulates multimem.red push-reduction contributions in
// the (pre-existing, unbounded) NVLS pipeline buffers.
type nvlsRedSession struct {
	size     int64
	count    int
	expected int
	bcast    bool // broadcast result to all GPUs (AllReduce semantics)
	home     int
	group    int
	onDone   []func()
	tag      interface{}
	lru      sim.Time // last contribution (timeout base in fault-tolerant mode)
}

// reset clears the session for pool reuse (caislint: poolreset), keeping
// the onDone backing array so steady-state sessions stop allocating.
func (rs *nvlsRedSession) reset() {
	for i := range rs.onDone {
		rs.onDone[i] = nil
	}
	rs.onDone = rs.onDone[:0]
	rs.size, rs.count, rs.expected = 0, 0, 0
	rs.bcast = false
	rs.home, rs.group = 0, 0
	rs.tag = nil
	rs.lru = 0
}

// nvlsPullSession is one in-flight multimem.ld_reduce: reads fanned to all
// GPU replicas, reduced as responses return. fanTag is embedded so all N
// fan packets of the session share one tag instead of allocating N.
type nvlsPullSession struct {
	pending int
	resp    *noc.Packet
	fanTag  pullTag
}

// reset clears the session for pool reuse (caislint: poolreset).
func (ps *nvlsPullSession) reset() { *ps = nvlsPullSession{} }

type syncEntry struct {
	count    int
	expected int
	seen     []bool // indexed by GPU; backing array reused across entries
}

// reset clears the entry for pool reuse (caislint: poolreset), keeping the
// seen backing array.
func (e *syncEntry) reset() {
	for i := range e.seen {
		e.seen[i] = false
	}
	e.count, e.expected = 0, 0
}

// New creates a switch plane for cfg.
func New(eng *sim.Engine, cfg Config) *Switch {
	if cfg.NumGPUs < 1 {
		panic("nvswitch: NumGPUs must be >= 1")
	}
	st := NewStats()
	if cfg.Metrics != nil {
		st = NewStatsIn(cfg.Metrics, fmt.Sprintf("nvswitch.plane%d", cfg.Plane))
	}
	s := &Switch{
		eng:      eng,
		cfg:      cfg,
		down:     make([]*noc.Link, cfg.NumGPUs),
		port:     make([]*MergeUnit, cfg.NumGPUs),
		nvlsRed:  make(map[uint64]*nvlsRedSession),
		nvlsPull: make(map[pullKey]*nvlsPullSession),
		sync:     make(map[syncTableKey]*syncEntry),
		stats:    st,
		tr:       trace.FromEngine(eng),
		pid:      trace.SwitchPid(cfg.Plane),
	}
	s.processNextFn = s.processNext
	for g := 0; g < cfg.NumGPUs; g++ {
		s.port[g] = newMergeUnit(eng, fmt.Sprintf("sw%d.port%d", cfg.Plane, g), cfg.MergeCapacity, cfg.MergeTimeout, s.stats)
		s.port[g].sendDown = s.sendDown
		s.port[g].gpu = g
		s.port[g].creditLatency = cfg.CreditLatency
		s.port[g].policy = cfg.Eviction
		s.port[g].numGPUs = cfg.NumGPUs
		s.port[g].tr = s.tr
		s.port[g].pid = s.pid
	}
	return s
}

// ConnectDown attaches the switch->GPU link for one port. Must be called
// for every GPU before traffic flows.
func (s *Switch) ConnectDown(gpu int, link *noc.Link) { s.down[gpu] = link }

// SetPacketPool wires the run-wide packet free list into the plane and its
// merge units (assembly layer). Nil — the default for hand-wired tests —
// falls back to plain allocation.
func (s *Switch) SetPacketPool(pp *noc.PacketPool) {
	s.pkts = pp
	for _, port := range s.port {
		port.pkts = pp
	}
}

// Stats returns the plane's statistics collector.
func (s *Switch) Stats() *Stats { return s.stats }

// Summary captures the plane's statistics into a plain value.
func (s *Switch) Summary() Summary { return s.stats.Summary() }

// Port returns the merge unit of the given GPU-facing port.
func (s *Switch) Port(gpu int) *MergeUnit { return s.port[gpu] }

// PoolStats sums Get traffic, fresh allocations and idle entries across
// the plane's typed free lists (NVLS reduction/pull sessions, sync
// entries) and every port merge unit's (sessions, load tags). The shared
// packet pool is excluded — the machine reports it once.
func (s *Switch) PoolStats() (gets, news, idle int) {
	add := func(pg, pn, pi int) { gets, news, idle = gets+pg, news+pn, idle+pi }
	add(s.redSessions.Stats())
	add(s.pullSessions.Stats())
	add(s.syncEntries.Stats())
	for _, port := range s.port {
		add(port.sessPool.Stats())
		add(port.respTags.Stats())
		add(port.plainTags.Stats())
	}
	return
}

// SetFaultTolerant arms or disarms the failover protocol. The injector
// enables it (on every plane) only for schedules containing a plane
// failure, so all other runs keep today's strict, timeout-free NVLS
// semantics bit-for-bit.
func (s *Switch) SetFaultTolerant(on bool) { s.faultTolerant = on }

// Failed reports whether the injector has taken this plane down.
func (s *Switch) Failed() bool { return s.failed }

// Failover takes the plane down: every NVLS push session flushes its
// partial result (receivers count contribution bytes, so split sessions
// still complete), every Group Sync Table entry is dropped (the machine
// re-registers affected waiters on a surviving plane), and every port's
// merge unit quiesces. Traffic already addressed to the plane keeps
// draining — downlinks stay up — and any sessions such stragglers open are
// reaped by the fault-tolerant timeouts.
func (s *Switch) Failover() {
	s.failed = true
	addrs := make([]uint64, 0, len(s.nvlsRed))
	for a := range s.nvlsRed {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s.stats.nvlsTimeoutFlushes.Inc()
		s.completeRed(a, s.nvlsRed[a])
	}
	s.stats.syncDropped.Add(int64(len(s.sync)))
	s.sync = make(map[syncTableKey]*syncEntry)
	for _, port := range s.port {
		port.Quiesce()
	}
	if s.tr.Enabled() {
		s.tr.Instant(s.pid, 0, "nvswitch.fault", "plane failover", s.eng.Now())
	}
}

// Repair brings a failed plane back into service. Its tables are empty
// (flushed at failure); routing is restored by the machine.
func (s *Switch) Repair() {
	s.failed = false
	if s.tr.Enabled() {
		s.tr.Instant(s.pid, 0, "nvswitch.fault", "plane repair", s.eng.Now())
	}
}

// Receive implements noc.Endpoint for uplink traffic: the packet is
// processed after the switch-internal latency.
func (s *Switch) Receive(p *noc.Packet) {
	s.pending.PushBack(p)
	s.eng.After(s.cfg.SwitchLatency, s.processNextFn)
}

func (s *Switch) processNext() {
	s.process(s.pending.PopFront())
}

func (s *Switch) sendDown(gpu int, p *noc.Packet) {
	if gpu < 0 || gpu >= len(s.down) || s.down[gpu] == nil {
		panic(fmt.Sprintf("nvswitch: no downlink for gpu %d", gpu))
	}
	s.down[gpu].Send(p)
}

func (s *Switch) process(p *noc.Packet) {
	switch p.Op {
	case noc.OpLoad, noc.OpStore:
		// Plain P2P: forward toward the home GPU.
		s.sendDown(p.Home, p)

	case noc.OpLoadResp:
		s.handleLoadResp(p)

	case noc.OpMultimemST:
		s.handleMulticastStore(p)

	case noc.OpMultimemLdReduce:
		s.handlePullReduce(p)

	case noc.OpMultimemRed:
		s.handlePushReduce(p)

	case noc.OpLdCAIS:
		s.port[p.Home].HandleLoad(p)

	case noc.OpRedCAIS:
		s.port[p.Home].HandleReduction(p)

	case noc.OpSyncRequest:
		s.handleSync(p)

	default:
		panic(fmt.Sprintf("nvswitch: unexpected uplink op %v", p.Op))
	}
}

// handleLoadResp routes a data response from a home GPU. Responses for
// merge-unit sessions carry a *MergeUnit tag; pull-reduce fan responses
// carry a pullKey tag; plain responses route to their destination.
func (s *Switch) handleLoadResp(p *noc.Packet) {
	switch tag := p.Tag.(type) {
	case *mergeRespTag:
		tag.unit.HandleResponse(p, tag)
	case *pullTag:
		tag.sw.handlePullResponse(p, tag.key)
	case *plainLoadTag:
		// Bypassed (unmerged) load: restore the requester's completion
		// context and deliver directly.
		p.OnDone = tag.onDone
		p.Tag = tag.orig
		requester, unit := tag.requester, tag.unit
		if unit != nil {
			tag.reset()
			unit.plainTags.Put(tag)
		}
		s.sendDown(requester, p)
	default:
		s.sendDown(p.Dst, p)
	}
}

// handleMulticastStore implements the NVLS push-mode AllGather step: one
// uplink payload is replicated to every peer's downlink.
func (s *Switch) handleMulticastStore(p *noc.Packet) {
	s.stats.multicastStores.Inc()
	for g := 0; g < s.cfg.NumGPUs; g++ {
		if g == p.Src {
			continue
		}
		copyP := s.pkts.Get()
		*copyP = *p
		copyP.ID = s.id()
		copyP.Dst = g
		copyP.OnDone = nil // completion is sender-side
		s.sendDown(g, copyP)
	}
	// Push stores complete at the sender as soon as the switch accepts
	// them (posted semantics). The original is absorbed here.
	done := p.OnDone
	s.pkts.Put(p)
	if done != nil {
		s.eng.After(0, done)
	}
}

// handlePullReduce implements multimem.ld_reduce: fan control reads to
// every GPU's replica, reduce responses in-flight, return one value to the
// requester.
func (s *Switch) handlePullReduce(p *noc.Packet) {
	key := pullKey{addr: p.Addr, requester: p.Src}
	if _, ok := s.nvlsPull[key]; ok {
		panic(fmt.Sprintf("nvswitch: duplicate ld_reduce session %+v", key))
	}
	resp := s.pkts.Get()
	resp.ID, resp.Op, resp.Addr, resp.Home = s.id(), noc.OpLoadResp, p.Addr, p.Home
	resp.Src, resp.Dst, resp.Size, resp.Group = p.Home, p.Src, p.Size, p.Group
	resp.OnDone, resp.Tag, resp.Contribs = p.OnDone, p.Tag, s.cfg.NumGPUs
	sess := s.pullSessions.Get()
	sess.pending, sess.resp = s.cfg.NumGPUs, resp
	sess.fanTag = pullTag{sw: s, key: key}
	s.nvlsPull[key] = sess
	s.stats.pullReduces.Inc()
	for g := 0; g < s.cfg.NumGPUs; g++ {
		fan := s.pkts.Get()
		fan.ID, fan.Op, fan.Addr, fan.Home = s.id(), noc.OpReadFan, p.Addr, g
		fan.Src, fan.Dst, fan.Size, fan.Group = p.Src, g, p.Size, p.Group
		fan.Tag = &sess.fanTag
		s.sendDown(g, fan)
	}
	s.pkts.Put(p)
}

func (s *Switch) handlePullResponse(p *noc.Packet, key pullKey) {
	sess, ok := s.nvlsPull[key]
	if !ok {
		panic(fmt.Sprintf("nvswitch: pull response without session %+v", key))
	}
	s.pkts.Put(p)
	sess.pending--
	if sess.pending == 0 {
		delete(s.nvlsPull, key)
		resp := sess.resp
		sess.reset()
		s.pullSessions.Put(sess)
		s.sendDown(resp.Dst, resp)
	}
}

// handlePushReduce implements multimem.red: contributions accumulate per
// address; once all expected GPUs contributed, the reduced value is
// written to all replicas (broadcast) or to the home GPU only.
func (s *Switch) handlePushReduce(p *noc.Packet) {
	sess, ok := s.nvlsRed[p.Addr]
	if !ok {
		expected := p.Contribs
		if expected <= 0 {
			expected = s.cfg.NumGPUs
		}
		sess = s.redSessions.Get()
		sess.size, sess.expected, sess.home = p.Size, expected, p.Home
		sess.bcast, sess.group, sess.tag = p.Dst < 0, p.Group, p.Tag
		s.nvlsRed[p.Addr] = sess
		if s.faultTolerant {
			sess.lru = s.eng.Now()
			s.armRedTimeout(p.Addr, sess)
		}
	}
	sess.count++
	sess.lru = s.eng.Now()
	if p.OnDone != nil {
		sess.onDone = append(sess.onDone, p.OnDone)
	}
	addr := p.Addr
	s.pkts.Put(p) // contribution absorbed
	if sess.count < sess.expected {
		return
	}
	s.stats.pushReduces.Inc()
	s.completeRed(addr, sess)
}

// completeRed writes out an NVLS push session's (possibly partial)
// accumulated result and releases the session. Receivers count the
// contribution bytes each packet folds in, so a session split across
// partial flushes — or across planes after a failover — still sums to
// completion at every receiver.
func (s *Switch) completeRed(addr uint64, sess *nvlsRedSession) {
	delete(s.nvlsRed, addr)
	if sess.bcast {
		for g := 0; g < s.cfg.NumGPUs; g++ {
			s.sendRedResult(addr, sess, g)
		}
	} else {
		s.sendRedResult(addr, sess, sess.home)
	}
	for _, done := range sess.onDone {
		s.eng.After(0, done)
	}
	sess.reset()
	s.redSessions.Put(sess)
}

func (s *Switch) sendRedResult(addr uint64, sess *nvlsRedSession, g int) {
	out := s.pkts.Get()
	out.ID, out.Op, out.Addr, out.Home = s.id(), noc.OpMultimemRed, addr, sess.home
	out.Src, out.Dst, out.Size, out.Group = -1, g, sess.size, sess.group
	out.Contribs, out.Tag = sess.count, sess.tag
	s.sendDown(g, out)
}

// armRedTimeout gives an NVLS push session a forward-progress deadline
// (fault-tolerant mode only): once contributions stop arriving for the
// timeout window, the partial result flushes. This is what keeps sessions
// live when a plane failure re-routes later contributions elsewhere.
func (s *Switch) armRedTimeout(addr uint64, sess *nvlsRedSession) {
	to := s.cfg.MergeTimeout
	if to <= 0 {
		to = 8 * sim.Microsecond
	}
	deadline := sess.lru + to
	s.eng.At(deadline, func() {
		cur, ok := s.nvlsRed[addr]
		if !ok || cur != sess {
			return
		}
		if cur.lru+to > s.eng.Now() {
			s.armRedTimeout(addr, cur)
			return
		}
		s.stats.nvlsTimeoutFlushes.Inc()
		if s.tr.Enabled() {
			s.tr.Instant(s.pid, 0, "nvswitch.fault", "nvls timeout flush", s.eng.Now())
		}
		s.completeRed(addr, cur)
	})
}

// handleSync implements the Group Sync Table: when all expected GPUs have
// registered a given group/phase key, release packets broadcast to every
// GPU's synchronizer.
func (s *Switch) handleSync(p *noc.Packet) {
	s.syncRegister(p)
	s.pkts.Put(p) // registration request absorbed
}

func (s *Switch) syncRegister(p *noc.Packet) {
	key := syncKey(p.Group, p.Addr)
	e, ok := s.sync[key]
	if !ok {
		expected := p.Contribs
		if expected <= 0 {
			expected = s.cfg.NumGPUs
		}
		e = s.syncEntries.Get()
		if cap(e.seen) < s.cfg.NumGPUs {
			e.seen = make([]bool, s.cfg.NumGPUs)
		} else {
			e.seen = e.seen[:s.cfg.NumGPUs]
		}
		e.expected = expected
		s.sync[key] = e
	}
	if e.seen[p.Src] {
		if s.faultTolerant {
			// A failover re-registration can race a registration that was
			// in flight when the routing changed; idempotent registration
			// keeps the entry correct.
			s.stats.syncDuplicates.Inc()
			return
		}
		panic(fmt.Sprintf("nvswitch: duplicate sync registration group=%d phase=%d gpu=%d", p.Group, p.Addr, p.Src))
	}
	e.seen[p.Src] = true
	e.count++
	if e.count < e.expected {
		return
	}
	delete(s.sync, key)
	s.stats.syncReleases.Inc()
	if s.tr.Enabled() {
		s.tr.Instant(s.pid, int32(p.Group), "nvswitch.sync", "sync release", s.eng.Now())
	}
	for g := 0; g < s.cfg.NumGPUs; g++ {
		if !e.seen[g] {
			continue
		}
		rel := s.pkts.Get()
		rel.ID, rel.Op, rel.Addr = s.id(), noc.OpSyncRelease, p.Addr
		rel.Src, rel.Dst, rel.Group = -1, g, p.Group
		s.sendDown(g, rel)
	}
	e.reset()
	s.syncEntries.Put(e)
}

type syncTableKey struct {
	group int
	phase uint64
}

func syncKey(group int, phase uint64) syncTableKey {
	return syncTableKey{group: group, phase: phase}
}

func (s *Switch) id() uint64 {
	s.nextID++
	return s.nextID
}

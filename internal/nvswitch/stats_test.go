package nvswitch

import (
	"testing"

	"cais/internal/metrics"
	"cais/internal/sim"
)

const us = sim.Microsecond

// TestSkewAccountingPerAddress checks that arrival spread is tracked
// independently per address: interleaved arrivals to two addresses must
// each measure their own first-to-last window.
func TestSkewAccountingPerAddress(t *testing.T) {
	st := NewStats()
	// Address A: arrivals at 0 and 30us. Address B: 10us and 20us,
	// interleaved inside A's window.
	st.noteArrivalKind(0xA, 2, 0, true)
	st.noteArrivalKind(0xB, 2, 10*us, true)
	st.noteArrivalKind(0xB, 2, 20*us, true)
	if st.OpenSkewAddrs() != 1 {
		t.Fatalf("open addrs = %d, want 1 (A still waiting)", st.OpenSkewAddrs())
	}
	st.noteArrivalKind(0xA, 2, 30*us, true)
	if st.OpenSkewAddrs() != 0 {
		t.Fatalf("open addrs = %d, want 0", st.OpenSkewAddrs())
	}
	s := st.Summary()
	if s.SkewSamples() != 2 {
		t.Fatalf("samples = %d, want 2", s.SkewSamples())
	}
	if got := s.AvgSkew(); got != 20*us { // (30 + 10) / 2
		t.Fatalf("avg skew = %v, want 20us", got)
	}
	if got := s.MaxSkew(); got != 30*us {
		t.Fatalf("max skew = %v, want 30us", got)
	}
}

// TestSkewAccountingSplitsLoadAndReduction checks the ld/red decomposition
// (Fig. 13b reports the two waiting times separately).
func TestSkewAccountingSplitsLoadAndReduction(t *testing.T) {
	st := NewStats()
	st.noteArrivalKind(0x1, 2, 0, true) // load pair: spread 10us
	st.noteArrivalKind(0x1, 2, 10*us, true)
	st.noteArrivalKind(0x2, 2, 0, false) // reduction pair: spread 40us
	st.noteArrivalKind(0x2, 2, 40*us, false)
	s := st.Summary()
	if got := s.AvgLoadSkew(); got != 10*us {
		t.Fatalf("load skew = %v, want 10us", got)
	}
	if got := s.AvgReductionSkew(); got != 40*us {
		t.Fatalf("reduction skew = %v, want 40us", got)
	}
	if got := s.AvgSkew(); got != 25*us {
		t.Fatalf("combined skew = %v, want 25us", got)
	}
}

// TestSkewIgnoresSingletonExpectations: an address expecting a single
// request has no spread to measure and must not pollute the histogram.
func TestSkewIgnoresSingletonExpectations(t *testing.T) {
	st := NewStats()
	st.noteArrivalKind(0x9, 1, 5*us, true)
	st.noteArrivalKind(0x9, 0, 6*us, false)
	if st.OpenSkewAddrs() != 0 || st.Summary().SkewSamples() != 0 {
		t.Fatalf("singleton arrivals recorded: open=%d samples=%d",
			st.OpenSkewAddrs(), st.Summary().SkewSamples())
	}
}

// TestSkewMaxTracksLargestSpread: the max must survive later smaller
// samples and fold correctly across planes via Summary.Add.
func TestSkewMaxTracksLargestSpread(t *testing.T) {
	st := NewStats()
	st.noteArrivalKind(0x1, 2, 0, false)
	st.noteArrivalKind(0x1, 2, 50*us, false)
	st.noteArrivalKind(0x2, 2, 100*us, false)
	st.noteArrivalKind(0x2, 2, 110*us, false)
	if got := st.MaxSkew(); got != 50*us {
		t.Fatalf("max skew = %v, want 50us", got)
	}
	other := Summary{SkewMax: 80 * us}
	if got := st.Summary().Add(other).MaxSkew(); got != 80*us {
		t.Fatalf("folded max = %v, want 80us", got)
	}
}

// TestStatsRegisterIntoCentralRegistry checks the registry-backed wiring:
// counters appear under the prefix and the snapshot sees live values.
func TestStatsRegisterIntoCentralRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	st := NewStatsIn(reg, "nvswitch.plane0")
	st.mergedLoads.Add(5)
	st.noteSessionLifetime(3 * us)
	st.noteArrivalKind(0x1, 2, 0, true)
	st.noteArrivalKind(0x1, 2, 8*us, true)
	snap := reg.Snapshot()
	if v := snap.Value("nvswitch.plane0.merged_loads"); v != 5 {
		t.Fatalf("merged_loads = %v, want 5", v)
	}
	if v := snap.Value("nvswitch.plane0.skew_sum_ps"); v != float64(8*us) {
		t.Fatalf("skew_sum_ps = %v, want %v", v, float64(8*us))
	}
	m, ok := snap.Get("nvswitch.plane0.session_lifetime_us")
	if !ok || m.Kind != "hist" || m.Count != 1 {
		t.Fatalf("session lifetime hist = %+v ok=%v", m, ok)
	}
	if s := st.Summary(); s.MergedLoads != 5 || s.SessLifeCount != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if got := st.AvgSessionLifetime(); got != 3*us {
		t.Fatalf("avg lifetime = %v, want 3us", got)
	}
}

// TestSummaryAverageArithmeticIsExact: sums are integer picoseconds, so
// folded averages must reproduce exact integer division (bit-reproducible
// figure output depends on this).
func TestSummaryAverageArithmeticIsExact(t *testing.T) {
	a := Summary{SkewSum: 7 * us, SkewCount: 2}
	b := Summary{SkewSum: 8 * us, SkewCount: 1}
	if got := a.Add(b).AvgSkew(); got != 5*us {
		t.Fatalf("avg = %v, want exactly 5us", got)
	}
	var empty Summary
	if empty.AvgSkew() != 0 || empty.AvgLoadSkew() != 0 ||
		empty.AvgReductionSkew() != 0 || empty.AvgSessionLifetime() != 0 {
		t.Fatal("empty summary averages must be 0")
	}
}

package nvswitch

import (
	"fmt"
	"sort"

	"cais/internal/noc"
	"cais/internal/pool"
	"cais/internal/sim"
	"cais/internal/trace"
)

// SessionState is the state a merging-table entry tracks (Fig. 5).
type SessionState int

const (
	// LoadWait: a load session whose fetch to the home GPU is in flight.
	LoadWait SessionState = iota
	// LoadReady: the fetched data is cached in the content array.
	LoadReady
	// Reduction: an accumulating red.cais session.
	Reduction
)

func (st SessionState) String() string {
	switch st {
	case LoadWait:
		return "Load-Wait"
	case LoadReady:
		return "Load-Ready"
	case Reduction:
		return "Reduction"
	}
	return fmt.Sprintf("state(%d)", int(st))
}

// session is one merging-table entry: the CAM lookup table is the sessions
// map (associative search by address+type), the merging table is the entry
// contents (state, count, content-array bytes).
type session struct {
	addr     uint64
	state    SessionState
	size     int64 // content-array occupancy in bytes
	count    int   // merged requests (loads) or contributions (reductions)
	expected int
	bcast    bool // broadcast the merged result to all GPUs (GEMM-AR)
	pinned   bool // temporarily not evictable (growing in place)
	group    int
	waiters  []*noc.Packet // load requesters pending the fetch
	first    sim.Time      // first request arrival
	lru      sim.Time      // last access (LRU stamp + timeout base)
	flush    bool          // evict as soon as the pending response arrives
	tag      interface{}
	onDone   []func() // reduction contributors' completions
	traceID  uint64   // async-span id while tracing (0 = untraced)

	// m and timeoutFn are the entry's pooled identity: the owning unit and
	// its cached forward-progress closure, installed once at first pool Get
	// and preserved across reset so re-arming never allocates.
	m         *MergeUnit
	timeoutFn func()
}

// reset clears the entry for pool reuse (caislint: poolreset), keeping the
// waiters/onDone backing arrays and the cached timeout closure.
func (s *session) reset() {
	for i := range s.waiters {
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	for i := range s.onDone {
		s.onDone[i] = nil
	}
	s.onDone = s.onDone[:0]
	s.addr, s.state, s.size, s.count, s.expected = 0, LoadWait, 0, 0, 0
	s.bcast, s.pinned, s.flush = false, false, false
	s.group = 0
	s.first, s.lru = 0, 0
	s.tag = nil
	s.traceID = 0
}

// ArrivalHook, when set, observes every red.cais arrival (diagnostics).
var ArrivalHook func(addr uint64, src int, t sim.Time)

// loadMetaBytes is the merging-table footprint of a Load-Wait entry: the
// CAM entry plus request metadata in the content array. The fetched data
// itself occupies the table only from response arrival (Load-Ready) until
// the entry releases — matching the Fig. 5 design where the content array
// caches arriving data, not outstanding requests.
const loadMetaBytes = 128

// mergeRespTag routes a home-GPU fetch response back to its session.
type mergeRespTag struct {
	unit *MergeUnit
	addr uint64
	orig interface{}
}

// reset clears the tag for pool reuse (caislint: poolreset).
func (t *mergeRespTag) reset() { *t = mergeRespTag{} }

// EvictionPolicy selects the victim-selection rule under capacity
// pressure. The paper uses LRU; the alternatives exist for the design
// ablation (DESIGN.md: ablation benches for called-out design choices).
type EvictionPolicy int

const (
	// EvictLRU evicts the least-recently-used evictable entry (paper).
	EvictLRU EvictionPolicy = iota
	// EvictFIFO evicts the oldest evictable entry by insertion.
	EvictFIFO
	// EvictMRU evicts the most-recently-used evictable entry (an
	// adversarial policy for the ablation).
	EvictMRU
)

func (p EvictionPolicy) String() string {
	switch p {
	case EvictLRU:
		return "lru"
	case EvictFIFO:
		return "fifo"
	case EvictMRU:
		return "mru"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// MergeUnit is the per-port CAIS merge unit (Fig. 5): a CAM lookup table
// plus merging table with byte-capacity accounting, LRU eviction and a
// timeout-based forward-progress mechanism (Sec. III-A-4).
type MergeUnit struct {
	name          string
	gpu           int // the GPU this port faces (the home side)
	eng           *sim.Engine
	capacity      int64 // bytes; negative = unlimited
	timeout       sim.Time
	sessions      map[uint64]*session
	order         []uint64 // insertion/access order for deterministic LRU scan
	used          int64
	hwm           int64
	stats         *Stats
	sendDown      func(gpu int, p *noc.Packet)
	creditLatency sim.Time
	policy        EvictionPolicy
	numGPUs       int
	nextID        uint64
	disabled      bool // fault injection: force the unmerged bypass path
	tr            *trace.Tracer
	pid           int32

	// pkts is the run-wide packet free list (nil degrades to allocation);
	// the session/tag pools are private to this port.
	pkts      *noc.PacketPool
	sessPool  pool.Pool[session]
	respTags  pool.Pool[mergeRespTag]
	plainTags pool.Pool[plainLoadTag]
}

// getSession hands out a pooled merging-table entry, installing the owning
// unit and the cached timeout closure on first use.
func (m *MergeUnit) getSession() *session {
	s := m.sessPool.Get()
	if s.m == nil {
		s.m = m
		s.timeoutFn = s.timeoutCheck
	}
	return s
}

func newMergeUnit(eng *sim.Engine, name string, capacity int64, timeout sim.Time, stats *Stats) *MergeUnit {
	return &MergeUnit{
		name: name, eng: eng, capacity: capacity, timeout: timeout,
		sessions: make(map[uint64]*session), stats: stats,
	}
}

// SetDisabled turns the merge unit off (true) or back on (false). While
// disabled, ld.cais / red.cais requests take the same unmerged forwarding
// fallback used under table saturation — the NVLS/unmerged degradation the
// fault model calls "merge-disable". Disabling quiesces live sessions so
// no request waits on a unit that will never merge again.
func (m *MergeUnit) SetDisabled(disabled bool) {
	if m.disabled == disabled {
		return
	}
	m.disabled = disabled
	if disabled {
		m.Quiesce()
	}
}

// Disabled reports whether the merge unit is fault-disabled.
func (m *MergeUnit) Disabled() bool { return m.disabled }

// Quiesce flushes every live session: reduction entries flush partial
// results, cached loads release, and in-flight fetches are marked to
// release as soon as their response arrives. Used at merge-disable onset
// and plane failover.
func (m *MergeUnit) Quiesce() {
	if len(m.sessions) == 0 {
		return
	}
	addrs := make([]uint64, 0, len(m.sessions))
	for a := range m.sessions {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s, ok := m.sessions[a]
		if !ok {
			continue
		}
		if s.state == LoadWait {
			// The home fetch is in flight; serve the waiters and release
			// when the response lands (same deferral as timeout eviction).
			s.flush = true
			continue
		}
		m.stats.evictions.Inc()
		m.evict(s)
	}
}

// Used reports current content-array occupancy in bytes.
func (m *MergeUnit) Used() int64 { return m.used }

// HighWater reports the maximum occupancy observed; with unlimited
// capacity this is the "minimal required merge table size" of Fig. 13a.
func (m *MergeUnit) HighWater() int64 { return m.hwm }

// Sessions reports the number of live entries.
func (m *MergeUnit) Sessions() int { return len(m.sessions) }

func (m *MergeUnit) id() uint64 {
	m.nextID++
	return m.nextID
}

// credit returns the acceptance feedback to the issuing GPU's throttle.
func (m *MergeUnit) credit(p *noc.Packet) {
	if p.OnAccepted == nil {
		return
	}
	fn := p.OnAccepted
	m.eng.After(m.creditLatency, fn)
}

// HandleLoad implements Micro-Function 1 (load request merging).
func (m *MergeUnit) HandleLoad(p *noc.Packet) {
	m.stats.noteArrivalKind(p.Addr, p.Expected(), m.eng.Now(), true)
	m.credit(p)
	now := m.eng.Now()
	if m.disabled {
		m.stats.bypassLoads.Inc()
		m.forwardPlainLoad(p)
		m.pkts.Put(p) // original absorbed; the fetch carries its context
		return
	}
	if s, ok := m.sessions[p.Addr]; ok && s.state != Reduction {
		// CAM hit on an active load session.
		s.count++
		s.lru = now
		//caislint:ignore exhaustive the enclosing CAM-hit guard excludes Reduction sessions
		switch s.state {
		case LoadWait:
			// Data still pending: append the request metadata to the
			// content array for a deferred response.
			s.waiters = append(s.waiters, p)
			m.stats.mergedLoads.Inc()
		case LoadReady:
			// Serve immediately from cached data.
			m.stats.mergedLoads.Inc()
			m.respond(s, p)
			m.pkts.Put(p) // served from cache; request absorbed
			if s.count >= s.expected {
				m.release(s)
			}
		}
		return
	}
	// Miss: allocate a new entry (Load-Wait entries hold only request
	// metadata); on capacity pressure, evict LRU evictable entries; if
	// nothing is evictable, bypass the merge unit.
	if !m.reserve(loadMetaBytes) {
		m.stats.bypassLoads.Inc()
		if m.tr.Enabled() {
			m.tr.Instant(m.pid, int32(m.gpu), "nvswitch.merge", "load bypass", now)
		}
		m.forwardPlainLoad(p)
		m.pkts.Put(p)
		return
	}
	s := m.getSession()
	s.addr, s.state, s.size, s.count = p.Addr, LoadWait, loadMetaBytes, 1
	s.expected, s.group, s.first, s.lru = p.Expected(), p.Group, now, now
	s.waiters = append(s.waiters, p)
	s.tag = p.Tag
	m.insert(s)
	m.stats.loadFetches.Inc()
	// Forward the fetch to the home GPU through the standard routing path.
	tag := m.respTags.Get()
	tag.unit, tag.addr, tag.orig = m, p.Addr, p.Tag
	fetch := m.pkts.Get()
	fetch.ID, fetch.Op, fetch.Addr, fetch.Home = m.id(), noc.OpLoad, p.Addr, p.Home
	fetch.Src, fetch.Dst, fetch.Size, fetch.Group = p.Src, p.Home, p.Size, p.Group
	fetch.Tag = tag
	m.sendDown(p.Home, fetch)
	m.armTimeout(s)
}

// HandleResponse consumes the home GPU's fetch response for a LoadWait
// session: cache the data, answer all deferred requesters, and serve
// subsequent hits from the cache.
func (m *MergeUnit) HandleResponse(p *noc.Packet, tag *mergeRespTag) {
	s, ok := m.sessions[tag.addr]
	orig := tag.orig
	tag.reset()
	m.respTags.Put(tag)
	if !ok {
		// Session was force-released (timeout after flush); deliver to the
		// original requester only, with its completion context restored.
		p.Tag = orig
		m.sendDown(p.Dst, p)
		return
	}
	s.state = LoadReady
	s.lru = m.eng.Now()
	for i, w := range s.waiters {
		m.respond(s, w)
		m.pkts.Put(w)
		s.waiters[i] = nil
	}
	s.waiters = s.waiters[:0]
	if s.count >= s.expected || s.flush {
		m.release(s)
		m.pkts.Put(p)
		return
	}
	// Cache the arrived data for later requesters: grow the entry to the
	// data size. If the content array cannot hold it, serve what we have
	// and release (later requesters will re-fetch). The entry is pinned
	// during the reservation so the eviction scan cannot pick it as its
	// own victim (which would leak the grown bytes).
	grow := p.Size - s.size
	if grow > 0 {
		s.pinned = true
		ok := m.reserve(grow)
		s.pinned = false
		if !ok {
			m.stats.evictions.Inc()
			m.release(s)
			m.pkts.Put(p)
			return
		}
		s.size += grow
	}
	m.pkts.Put(p) // response data cached; packet absorbed
}

// respond sends cached data down to one requester.
func (m *MergeUnit) respond(s *session, req *noc.Packet) {
	resp := m.pkts.Get()
	resp.ID, resp.Op, resp.Addr, resp.Home = m.id(), noc.OpLoadResp, s.addr, m.gpu
	resp.Src, resp.Dst, resp.Size, resp.Group = m.gpu, req.Src, req.Size, req.Group
	resp.OnDone, resp.Tag = req.OnDone, req.Tag
	m.sendDown(req.Src, resp)
}

// forwardPlainLoad bypasses merging: the request goes to the home GPU and
// the response routes straight back (no caching, no table entry). Per
// Sec. III-A-4 this path avoids thrashing when the table is saturated.
func (m *MergeUnit) forwardPlainLoad(p *noc.Packet) {
	tag := m.plainTags.Get()
	tag.unit, tag.requester, tag.onDone, tag.orig = m, p.Src, p.OnDone, p.Tag
	fetch := m.pkts.Get()
	fetch.ID, fetch.Op, fetch.Addr, fetch.Home = m.id(), noc.OpLoad, p.Addr, p.Home
	fetch.Src, fetch.Dst, fetch.Size, fetch.Group = p.Src, p.Home, p.Size, p.Group
	fetch.Tag = tag
	m.sendDown(p.Home, fetch)
}

// plainLoadTag marks a bypassed load so the home GPU's response routes to
// the requester without touching the merge unit.
type plainLoadTag struct {
	unit      *MergeUnit
	requester int
	onDone    func()
	orig      interface{}
}

// reset clears the tag for pool reuse (caislint: poolreset).
func (t *plainLoadTag) reset() { *t = plainLoadTag{} }

// HandleReduction implements Micro-Function 2 (reduction request merging).
func (m *MergeUnit) HandleReduction(p *noc.Packet) {
	m.stats.noteArrivalKind(p.Addr, p.Expected(), m.eng.Now(), false)
	if ArrivalHook != nil {
		ArrivalHook(p.Addr, p.Src, m.eng.Now())
	}
	m.credit(p)
	now := m.eng.Now()
	if m.disabled {
		m.stats.bypassReds.Inc()
		if p.Dst < 0 {
			// Broadcast (GEMM-AR) contribution with merging off: without
			// in-switch accumulation each contribution is replicated to
			// every replica, which count contributions to completion —
			// the full downlink cost of losing the merge unit.
			for g := 0; g < m.numGPUs; g++ {
				out := m.pkts.Get()
				out.ID, out.Op, out.Addr, out.Home = m.id(), noc.OpRedCAIS, p.Addr, m.gpu
				out.Src, out.Dst, out.Size, out.Group = -1, g, p.Size, p.Group
				out.Contribs, out.Tag = 1, p.Tag
				if g == m.gpu {
					out.OnDone = p.OnDone
				}
				m.sendDown(g, out)
			}
			m.pkts.Put(p)
			return
		}
		m.forwardPartial(p.Addr, p.Size, p.Group, 1, p.Tag, p.OnDone)
		m.pkts.Put(p)
		return
	}
	s, ok := m.sessions[p.Addr]
	if ok && s.state != Reduction {
		// Same address used for both load and reduction merging would be
		// a workload bug: CAIS keys sessions by (address, type) and our
		// address space assigns distinct ranges per buffer.
		panic(fmt.Sprintf("nvswitch: %s: load/reduction key collision at %#x", m.name, p.Addr))
	}
	if !ok {
		if !m.reserve(p.Size) {
			// Bypass: forward the lone contribution straight to the home
			// GPU, which folds it in at HBM cost.
			m.stats.bypassReds.Inc()
			if m.tr.Enabled() {
				m.tr.Instant(m.pid, int32(m.gpu), "nvswitch.merge", "red bypass", now)
			}
			m.forwardPartial(p.Addr, p.Size, p.Group, 1, p.Tag, p.OnDone)
			m.pkts.Put(p)
			return
		}
		s = m.getSession()
		s.addr, s.state, s.size = p.Addr, Reduction, p.Size
		s.expected, s.group, s.first, s.lru = p.Expected(), p.Group, now, now
		s.bcast, s.tag = p.Dst < 0, p.Tag
		m.insert(s)
		m.armTimeout(s)
	}
	s.count++
	s.lru = now
	if p.OnDone != nil {
		s.onDone = append(s.onDone, p.OnDone)
	}
	m.pkts.Put(p) // contribution absorbed into the merging table
	m.stats.mergedReds.Inc()
	if s.count >= s.expected {
		m.stats.completedReds.Inc()
		m.finishReduction(s)
	}
}

// finishReduction writes the merged value out — to the home GPU, or to
// every GPU's replica for broadcast (GEMM-AR) sessions — and releases the
// entry.
func (m *MergeUnit) finishReduction(s *session) {
	if s.bcast {
		for g := 0; g < m.numGPUs; g++ {
			out := m.pkts.Get()
			out.ID, out.Op, out.Addr, out.Home = m.id(), noc.OpRedCAIS, s.addr, m.gpu
			out.Src, out.Dst, out.Size, out.Group = -1, g, s.size, s.group
			out.Contribs, out.Tag = s.count, s.tag
			m.sendDown(g, out)
		}
	} else {
		m.forwardPartial(s.addr, s.size, s.group, s.count, s.tag, nil)
	}
	for _, done := range s.onDone {
		m.eng.After(0, done)
	}
	m.release(s)
}

// forwardPartial sends an accumulated (possibly partial) reduction result
// to the home GPU; Contribs tells the home how many contributions the
// payload folds in so it can detect completion.
func (m *MergeUnit) forwardPartial(addr uint64, size int64, group, contribs int, tag interface{}, onDone func()) {
	out := m.pkts.Get()
	out.ID, out.Op, out.Addr, out.Home = m.id(), noc.OpRedCAIS, addr, m.gpu
	out.Src, out.Dst, out.Size, out.Group = -1, m.gpu, size, group
	out.Contribs, out.Tag, out.OnDone = contribs, tag, onDone
	m.sendDown(m.gpu, out)
}

// reserve makes room for size bytes, evicting LRU evictable entries if
// needed. It reports false when the allocation cannot be satisfied (the
// arriving request must bypass the merge unit).
func (m *MergeUnit) reserve(size int64) bool {
	if m.capacity < 0 {
		m.used += size
		if m.used > m.hwm {
			m.hwm = m.used
		}
		return true
	}
	if size > m.capacity {
		return false
	}
	for m.used+size > m.capacity {
		if !m.evictOne() {
			return false
		}
	}
	m.used += size
	if m.used > m.hwm {
		m.hwm = m.used
	}
	return true
}

// evictOne evicts one evictable entry per the configured policy
// (Sec. III-A-4, LRU by default): Reduction entries flush their partial
// sum to the home GPU; LoadReady entries drop their cached data; LoadWait
// entries are deferred (marked flush-on-response) and are not immediately
// reclaimable.
func (m *MergeUnit) evictOne() bool {
	var victim *session
	for _, addr := range m.order {
		s, ok := m.sessions[addr]
		if !ok {
			continue
		}
		if s.state == LoadWait || s.flush || s.pinned {
			continue
		}
		switch m.policy {
		case EvictFIFO:
			// m.order is insertion-ordered: first evictable wins.
			victim = s
		case EvictMRU:
			if victim == nil || s.lru > victim.lru {
				victim = s
			}
		default: // EvictLRU
			if victim == nil || s.lru < victim.lru {
				victim = s
			}
		}
		if m.policy == EvictFIFO && victim != nil {
			break
		}
	}
	if victim == nil {
		return false
	}
	m.stats.evictions.Inc()
	if m.tr.Enabled() {
		m.tr.Instant(m.pid, int32(m.gpu), "nvswitch.merge", "evict "+victim.state.String(), m.eng.Now())
	}
	m.evict(victim)
	return true
}

func (m *MergeUnit) evict(s *session) {
	if s.state == Reduction && s.bcast {
		// A broadcast session cannot flush partials to a home replica;
		// it completes in place (all contributions are counted at the
		// receivers, so partial broadcasts stay correct).
		m.stats.partialFlushes.Inc()
		m.finishReduction(s)
		return
	}
	if s.state == Reduction {
		// Flush the partial result to the home GPU.
		m.stats.partialFlushes.Inc()
		m.forwardPartial(s.addr, s.size, s.group, s.count, s.tag, nil)
		for _, done := range s.onDone {
			m.eng.After(0, done)
		}
	}
	m.release(s)
}

// release frees an entry's table space and recycles the entry. The guard
// compares pointers, not just presence: sessions are pooled, so a stale
// release must not tear down a successor entry that reuses the address.
func (m *MergeUnit) release(s *session) {
	if cur, ok := m.sessions[s.addr]; !ok || cur != s {
		return
	}
	m.recordSkew(s)
	if s.traceID != 0 {
		name := "merge load"
		if s.state == Reduction {
			name = "merge red"
		}
		m.tr.EndAsync(m.pid, "nvswitch.merge", name, s.traceID, m.eng.Now())
	}
	delete(m.sessions, s.addr)
	m.used -= s.size
	if m.used < 0 {
		panic("nvswitch: merge table occupancy underflow")
	}
	s.reset()
	m.sessPool.Put(s)
}

func (m *MergeUnit) recordSkew(s *session) {
	// Session lifetime (first arrival to release) approximates the
	// arrival spread the entry had to buffer; full per-address skew is
	// tracked in Stats independently of session lifetime.
	m.stats.noteSessionLifetime(m.eng.Now() - s.first)
}

func (m *MergeUnit) insert(s *session) {
	if m.tr.Enabled() {
		s.traceID = m.tr.NextID()
		name := "merge load"
		if s.state == Reduction {
			name = "merge red"
		}
		m.tr.BeginAsync(m.pid, "nvswitch.merge", name, s.traceID, s.first)
	}
	m.sessions[s.addr] = s
	m.order = append(m.order, s.addr)
	// Compact the order slice opportunistically once it accumulates
	// mostly-dead addresses.
	if len(m.order) > 4*len(m.sessions)+64 {
		live := m.order[:0]
		for _, addr := range m.order {
			if _, ok := m.sessions[addr]; ok {
				live = append(live, addr)
			}
		}
		m.order = live
	}
}

// armTimeout schedules the forward-progress check for a session. Each
// access extends the deadline; the event re-arms itself (via the session's
// cached closure — no per-arm allocation) until the session is released or
// goes stale.
func (m *MergeUnit) armTimeout(s *session) {
	if m.timeout <= 0 {
		return
	}
	m.eng.At(s.lru+m.timeout, s.timeoutFn)
}

// timeoutCheck is the body of the forward-progress event. Sessions are
// pooled, so a fired check distinguishes "my session" from "a successor
// reusing my entry object" by the sessions-map lookup: if the recycled
// entry now serves a different address the lookup misses (or finds a
// different pointer) and the stale event dies; if it serves the same
// address again, the lru guard makes the check equivalent to a freshly
// armed one.
func (s *session) timeoutCheck() {
	m := s.m
	cur, ok := m.sessions[s.addr]
	if !ok || cur != s {
		return
	}
	if cur.lru+m.timeout > m.eng.Now() {
		// Touched since; re-arm at the extended deadline.
		m.armTimeout(cur)
		return
	}
	m.stats.timeoutEvictions.Inc()
	if m.tr.Enabled() {
		m.tr.Instant(m.pid, int32(m.gpu), "nvswitch.merge", "timeout", m.eng.Now())
	}
	if cur.state == LoadWait {
		// Defer until the response arrives (Sec. III-A-4).
		cur.flush = true
		return
	}
	m.evict(cur)
}

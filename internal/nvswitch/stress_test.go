package nvswitch

import (
	"testing"
	"testing/quick"

	"cais/internal/noc"
	"cais/internal/sim"
)

// TestMergeUnitStressInvariants drives randomized load/reduction mixes
// through a capacity-limited merge unit with timeouts and checks the
// structural invariants the design guarantees:
//
//  1. every load request is answered exactly once (merged, cached, or
//     bypassed),
//  2. every reduction contribution reaches the home GPU exactly once
//     (inside a merged result or a partial flush),
//  3. the merging table drains to zero occupancy,
//  4. accounting identities hold (fetches + merged + bypasses = loads).
func TestMergeUnitStressInvariants(t *testing.T) {
	f := func(seed uint64, capKB uint8, nAddr uint8, timeoutUS uint8) bool {
		rng := sim.NewRNG(seed)
		capacity := int64(capKB%64+1) << 10
		addrs := int(nAddr%16) + 2
		timeout := sim.Time(timeoutUS%40+5) * sim.Microsecond

		r := newStressRig(4, capacity, timeout)
		const perAddrLoad = 3 // requesters per load address (P-1)
		const perAddrRed = 3

		type expect struct {
			isLoad   bool
			contribs int
		}
		expects := make([]expect, addrs)
		responses := 0
		wantResponses := 0
		// Loads on even addresses, reductions on odd. Offset the address
		// space so load/red keys never collide.
		for a := 0; a < addrs; a++ {
			isLoad := a%2 == 0
			expects[a] = expect{isLoad: isLoad}
			for g := 1; g <= 3; g++ {
				g := g
				addr := uint64(a*2 + 1)
				at := rng.Between(0, 60*sim.Microsecond)
				if isLoad {
					wantResponses++
					r.eng.At(at, func() {
						r.send(g, &noc.Packet{
							Op: noc.OpLdCAIS, Addr: addr, Home: 0, Src: g,
							Size: 2 << 10, Contribs: perAddrLoad,
							OnDone: func() { responses++ },
						})
					})
				} else {
					r.eng.At(at, func() {
						r.send(g, &noc.Packet{
							Op: noc.OpRedCAIS, Addr: addr, Home: 0, Src: g,
							Size: 2 << 10, Contribs: perAddrRed,
						})
					})
				}
			}
		}
		r.eng.Run()

		// Invariant 1: every load answered exactly once.
		if responses != wantResponses {
			t.Logf("seed %d: responses = %d, want %d", seed, responses, wantResponses)
			return false
		}
		// Invariant 2: reduction contributions conserved at the home GPU.
		contribs := map[uint64]int{}
		for _, p := range r.gpus[0].received {
			if p.Op == noc.OpRedCAIS {
				contribs[p.Addr] += p.Contribs
			}
		}
		for a := 0; a < addrs; a++ {
			if expects[a].isLoad {
				continue
			}
			if got := contribs[uint64(a*2+1)]; got != perAddrRed {
				t.Logf("seed %d: addr %d contributions = %d, want %d", seed, a, got, perAddrRed)
				return false
			}
		}
		// Invariant 3: the table drained.
		for g := 0; g < 4; g++ {
			if r.sw.Port(g).Used() != 0 || r.sw.Port(g).Sessions() != 0 {
				t.Logf("seed %d: port %d not drained", seed, g)
				return false
			}
		}
		// Invariant 4: load accounting.
		st := r.sw.Summary()
		totalLoads := int64(wantResponses)
		if st.LoadFetches+st.MergedLoads+st.BypassLoads < totalLoads {
			t.Logf("seed %d: load accounting %d+%d+%d < %d",
				seed, st.LoadFetches, st.MergedLoads, st.BypassLoads, totalLoads)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

type stressRig struct {
	eng  *sim.Engine
	sw   *Switch
	gpus []*fakeGPU
}

func newStressRig(n int, capacity int64, timeout sim.Time) *stressRig {
	eng := sim.NewEngine()
	eng.SetStepLimit(5_000_000)
	sw := New(eng, Config{
		NumGPUs: n, SwitchLatency: 50 * sim.Nanosecond,
		MergeCapacity: capacity, MergeTimeout: timeout,
		CreditLatency: 250 * sim.Nanosecond,
	})
	r := &stressRig{eng: eng, sw: sw, gpus: make([]*fakeGPU, n)}
	for g := 0; g < n; g++ {
		gpu := &fakeGPU{id: g}
		gpu.up = noc.NewLink(eng, "up", 100e9, 250*sim.Nanosecond, sw)
		sw.ConnectDown(g, noc.NewLink(eng, "down", 100e9, 250*sim.Nanosecond, gpu))
		r.gpus[g] = gpu
	}
	return r
}

func (r *stressRig) send(from int, p *noc.Packet) {
	r.gpus[from].up.Send(p)
}

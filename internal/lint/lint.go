// Package lint is caislint: a project-specific static analyzer that
// enforces the simulator's determinism and unit-safety invariants. The
// whole reproduction (event ordering, merge-session bookkeeping, telemetry
// digests) is only meaningful if runs are bit-reproducible, so the checks
// guard the properties reviewers cannot reliably eyeball:
//
//   - wallclock:  time.Now / time.Since / time.Until are forbidden outside
//     cmd/ and internal/trace — simulated components must use sim.Engine
//     time.
//   - rand:      global math/rand functions are forbidden everywhere; only
//     seeded generators (sim.RNG, *rand.Rand built via rand.New) flowing
//     from configuration are allowed.
//   - map-order: a `for range` over a map whose body is order-dependent
//     (mutates state, schedules events, appends computed values, emits
//     trace/metrics, accumulates floats) must iterate sorted keys instead.
//   - units:     float→sim.Time conversions outside the audited helpers in
//     internal/sim, and float64 accumulation of simulated-time values, are
//     forbidden (truncation and non-associative float sums break digests).
//   - poolreset: the free-list lifecycle discipline from internal/pool —
//     every element type handed to a pool.Pool must carry a reset()
//     method, and every Put(x) must have x.reset() as the immediately
//     preceding statement, so no object re-enters a free list carrying
//     state from its previous lifetime.
//   - goroutine: `go` statements are forbidden in the engine packages
//     (sim, gpu, nvswitch, noc, machine) — the simulator is
//     single-threaded by design — and everywhere else outside the
//     sanctioned concurrency sites (internal/sweep's bounded worker pool
//     and cmd/): parallelism belongs in sweep.Map, which fans independent
//     simulation points out and collects results by index.
//
// Violations that are intentional carry a directive with a mandatory
// reason:
//
//	//caislint:ignore <check> <reason>        (this line or the next)
//	//caislint:file-ignore <check> <reason>   (whole file)
//
// The analyzer is pure stdlib (go/parser, go/ast, go/types, go/importer);
// it type-checks the module from source so the unit-safety check sees real
// types, not syntax.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Msg)
}

// Check names. "directive" covers malformed or unused directives.
const (
	CheckWallclock = "wallclock"
	CheckRand      = "rand"
	CheckMapOrder  = "map-order"
	CheckUnits     = "units"
	CheckGoroutine = "goroutine"
	CheckPoolReset = "poolreset"
	CheckDirective = "directive"
)

var knownChecks = map[string]bool{
	CheckWallclock: true,
	CheckRand:      true,
	CheckMapOrder:  true,
	CheckUnits:     true,
	CheckGoroutine: true,
	CheckPoolReset: true,
}

// Config selects what to analyze and where the policy boundaries sit. The
// zero value of every policy field derives a default from the module path,
// matching this repository's layout.
type Config struct {
	// Dir is the module root (a directory containing go.mod).
	Dir string
	// Patterns are package patterns relative to Dir ("./...", ".",
	// "./internal/..."). Empty means "./...".
	Patterns []string

	// TimeTypes are fully-qualified named types ("<pkg>.<Name>") treated
	// as simulated time. Default: <module>/internal/sim.Time.
	TimeTypes []string
	// WallclockAllow are import-path prefixes where wall-clock reads are
	// legal. Default: <module>/cmd, <module>/internal/trace.
	WallclockAllow []string
	// EnginePackages are import paths where `go` statements are forbidden
	// unconditionally (no allowlist applies).
	// Default: <module>/internal/{sim,gpu,nvswitch,noc,machine}.
	EnginePackages []string
	// ConcurrencyAllow are import-path prefixes where `go` statements are
	// legal outside the engine packages — the sanctioned concurrency
	// sites. Default: <module>/internal/sweep, <module>/cmd.
	ConcurrencyAllow []string
	// UnitConvertAllow are import-path prefixes housing the audited
	// float→time conversion helpers. Default: <module>/internal/sim.
	UnitConvertAllow []string
	// PoolPackages are import paths providing the generic free-list type
	// Pool whose lifecycle discipline the poolreset check enforces.
	// Default: <module>/internal/pool.
	PoolPackages []string
}

// resolved is the config with module-path defaults filled in.
type resolved struct {
	timeTypes        map[string]bool
	wallclockAllow   []string
	enginePkgs       map[string]bool
	concurrencyAllow []string
	unitAllow        []string
	poolPkgs         map[string]bool
}

func (c Config) resolve(module string) *resolved {
	r := &resolved{timeTypes: map[string]bool{}, enginePkgs: map[string]bool{}}
	tt := c.TimeTypes
	if len(tt) == 0 {
		tt = []string{module + "/internal/sim.Time"}
	}
	for _, t := range tt {
		r.timeTypes[t] = true
	}
	r.wallclockAllow = c.WallclockAllow
	if len(r.wallclockAllow) == 0 {
		r.wallclockAllow = []string{module + "/cmd", module + "/internal/trace"}
	}
	eng := c.EnginePackages
	if len(eng) == 0 {
		for _, p := range []string{"sim", "gpu", "nvswitch", "noc", "machine"} {
			eng = append(eng, module+"/internal/"+p)
		}
	}
	for _, p := range eng {
		r.enginePkgs[p] = true
	}
	r.concurrencyAllow = c.ConcurrencyAllow
	if len(r.concurrencyAllow) == 0 {
		r.concurrencyAllow = []string{module + "/internal/sweep", module + "/cmd"}
	}
	r.unitAllow = c.UnitConvertAllow
	if len(r.unitAllow) == 0 {
		r.unitAllow = []string{module + "/internal/sim"}
	}
	pp := c.PoolPackages
	if len(pp) == 0 {
		pp = []string{module + "/internal/pool"}
	}
	r.poolPkgs = map[string]bool{}
	for _, p := range pp {
		r.poolPkgs[p] = true
	}
	return r
}

// pathAllowed reports whether an import path is covered by an allowlist
// prefix (exact package or any package below it).
func pathAllowed(path string, allow []string) bool {
	for _, a := range allow {
		if path == a || strings.HasPrefix(path, a+"/") {
			return true
		}
	}
	return false
}

// Run analyzes the requested packages and returns every diagnostic, sorted
// by file, line and column. A non-nil error means the analysis itself
// could not run (parse/type errors, bad patterns) — distinct from
// violations, which arrive as diagnostics with a nil error.
func Run(cfg Config) ([]Diagnostic, error) {
	l, err := newLoader(cfg.Dir)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	rc := cfg.resolve(l.module)

	var diags []Diagnostic
	for _, path := range paths {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		diags = append(diags, lintPackage(l.fset, p, rc)...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// reporter is the sink checks report into; suppression by directive
// happens here.
type reporter func(pos token.Pos, check, format string, args ...any)

func lintPackage(fset *token.FileSet, p *Package, rc *resolved) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		dirs, dirDiags := parseDirectives(fset, f)
		diags = append(diags, dirDiags...)
		rep := func(pos token.Pos, check, format string, args ...any) {
			position := fset.Position(pos)
			if dirs.suppressed(check, position.Line) {
				return
			}
			diags = append(diags, Diagnostic{
				File: position.Filename, Line: position.Line, Col: position.Column,
				Check: check, Msg: fmt.Sprintf(format, args...),
			})
		}
		checkWallclock(p, f, rc, rep)
		checkRand(p, f, rep)
		checkGoroutine(p, f, rc, rep)
		checkUnits(p, f, rc, rep)
		checkMapOrder(p, f, rep)
		checkPoolReset(p, f, rc, rep)
		diags = append(diags, dirs.unused(fset)...)
	}
	return diags
}

// directive is one parsed //caislint: comment.
type directive struct {
	check    string
	fileWide bool
	line     int
	pos      token.Pos
	used     bool
}

type directiveSet struct {
	list []*directive
}

// parseDirectives extracts caislint directives from a file's comments.
// Malformed directives (unknown check, missing reason) are diagnostics
// themselves: a suppression without a recorded reason is indistinguishable
// from a shrug.
func parseDirectives(fset *token.FileSet, f *ast.File) (*directiveSet, []Diagnostic) {
	ds := &directiveSet{}
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		position := fset.Position(pos)
		diags = append(diags, Diagnostic{
			File: position.Filename, Line: position.Line, Col: position.Column,
			Check: CheckDirective, Msg: fmt.Sprintf(format, args...),
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments cannot carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "caislint:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad(c.Pos(), "empty caislint directive")
				continue
			}
			verb := fields[0]
			if verb != "ignore" && verb != "file-ignore" {
				bad(c.Pos(), "unknown caislint directive %q (want ignore or file-ignore)", verb)
				continue
			}
			if len(fields) < 2 {
				bad(c.Pos(), "caislint:%s needs a check name", verb)
				continue
			}
			check := fields[1]
			if !knownChecks[check] {
				bad(c.Pos(), "caislint:%s names unknown check %q", verb, check)
				continue
			}
			if len(fields) < 3 {
				bad(c.Pos(), "caislint:%s %s is missing its mandatory reason", verb, check)
				continue
			}
			ds.list = append(ds.list, &directive{
				check:    check,
				fileWide: verb == "file-ignore",
				line:     fset.Position(c.Pos()).Line,
				pos:      c.Pos(),
			})
		}
	}
	return ds, diags
}

// suppressed reports whether a diagnostic for check at the given line is
// covered: file-wide directives cover everything, line directives cover
// their own line and the line directly below (comment-above placement).
func (ds *directiveSet) suppressed(check string, line int) bool {
	hit := false
	for _, d := range ds.list {
		if d.check != check {
			continue
		}
		if d.fileWide || d.line == line || d.line == line-1 {
			d.used = true
			hit = true
		}
	}
	return hit
}

// unused reports directives that suppressed nothing — stale annotations
// are themselves violations so the tree stays minimally annotated.
func (ds *directiveSet) unused(fset *token.FileSet) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds.list {
		if d.used {
			continue
		}
		position := fset.Position(d.pos)
		out = append(out, Diagnostic{
			File: position.Filename, Line: position.Line, Col: position.Column,
			Check: CheckDirective,
			Msg:   fmt.Sprintf("unused caislint:ignore directive for %s (nothing to suppress here)", d.check),
		})
	}
	return out
}

// Package lint is caislint: a project-specific static analyzer that
// enforces the simulator's determinism, unit-safety and cache-soundness
// invariants. The whole reproduction (event ordering, merge-session
// bookkeeping, telemetry digests, memoized simulation points) is only
// meaningful if runs are bit-reproducible and cache keys cover every
// semantically relevant input, so the checks guard the properties
// reviewers cannot reliably eyeball.
//
// The check catalog lives in registry.go; `caislint -list` prints it.
// Local syntactic checks (wallclock, rand, map-order, units, goroutine,
// poolreset) analyze one package at a time. Three whole-module passes
// reason across package boundaries:
//
//   - digestcover: for each struct type consumed by a memo.Hasher digest
//     method, every exported field must be written into the digest,
//     passed to a nested digest call, or annotated
//     `//caislint:nodigest <reason>` at its declaration; func-typed
//     fields must additionally be guarded by memo.Cacheable. Adding a
//     field to strategy.Options without updating internal/memo/key.go is
//     a build-breaking diagnostic instead of a silent stale cache hit.
//   - exhaustive: switches and map literals over enum-like const blocks
//     (faults.Kind, attrib.Bucket, ...) must cover every declared
//     constant or carry an explicit default.
//   - taintwall: a transitive call-graph taint pass — a helper that
//     wraps time.Now or the global math/rand source is flagged at every
//     call site in simulated code, not just at its definition.
//
// Violations that are intentional carry a directive with a mandatory
// reason:
//
//	//caislint:ignore <check>[,<check>...] <reason>   (this line, or the
//	    line above — covering the full line range of the statement that
//	    starts there)
//	//caislint:file-ignore <check> <reason>           (whole file)
//	//caislint:nodigest <reason>                      (in a struct field's
//	    doc or trailing comment: deliberately excluded from the digest)
//
// The analyzer is pure stdlib (go/parser, go/ast, go/types, go/importer);
// it type-checks the module from source so the type-driven checks see
// real types, not syntax. Incremental runs (Config.CachePath) reuse
// per-package results keyed by content hashes of the package and its
// transitive module dependencies.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	File  string `json:"file"`
	Line  int    `json:"line"`
	Col   int    `json:"col"`
	Check string `json:"check"`
	Msg   string `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Msg)
}

// Check names. "directive" covers malformed or unused directives.
const (
	CheckWallclock   = "wallclock"
	CheckRand        = "rand"
	CheckMapOrder    = "map-order"
	CheckUnits       = "units"
	CheckGoroutine   = "goroutine"
	CheckPoolReset   = "poolreset"
	CheckDigestCover = "digestcover"
	CheckExhaustive  = "exhaustive"
	CheckTaintWall   = "taintwall"
	CheckDirective   = "directive"
)

// knownChecks is the directive vocabulary, derived from the registry.
var knownChecks = func() map[string]bool {
	m := map[string]bool{}
	for _, a := range registry {
		m[a.Name] = true
	}
	return m
}()

// Config selects what to analyze and where the policy boundaries sit. The
// zero value of every policy field derives a default from the module path,
// matching this repository's layout.
type Config struct {
	// Dir is the module root (a directory containing go.mod).
	Dir string
	// Patterns are package patterns relative to Dir ("./...", ".",
	// "./internal/..."). Empty means "./...".
	Patterns []string
	// Checks selects a subset of the registered analyzers by name.
	// Empty means all.
	Checks []string
	// CachePath, when non-empty, enables incremental mode: per-package
	// diagnostics are cached there keyed by content hashes of the
	// package and its transitive module dependencies, so repeated runs
	// skip unchanged packages entirely.
	CachePath string

	// TimeTypes are fully-qualified named types ("<pkg>.<Name>") treated
	// as simulated time. Default: <module>/internal/sim.Time.
	TimeTypes []string
	// WallclockAllow are import-path prefixes where wall-clock reads are
	// legal. Default: <module>/cmd, <module>/internal/trace.
	WallclockAllow []string
	// EnginePackages are import paths where `go` statements are forbidden
	// unconditionally (no allowlist applies).
	// Default: <module>/internal/{sim,gpu,nvswitch,noc,machine}.
	EnginePackages []string
	// ConcurrencyAllow are import-path prefixes where `go` statements are
	// legal outside the engine packages — the sanctioned concurrency
	// sites. Default: <module>/internal/sweep, <module>/cmd.
	ConcurrencyAllow []string
	// UnitConvertAllow are import-path prefixes housing the audited
	// float→time conversion helpers. Default: <module>/internal/sim.
	UnitConvertAllow []string
	// PoolPackages are import paths providing the generic free-list type
	// Pool whose lifecycle discipline the poolreset check enforces.
	// Default: <module>/internal/pool.
	PoolPackages []string
	// DigestPackages are import paths whose Hasher methods define the
	// memoization digest; digestcover analyzes the structs they consume.
	// Default: <module>/internal/memo.
	DigestPackages []string
}

// resolved is the config with module-path defaults filled in.
type resolved struct {
	module           string
	timeTypes        map[string]bool
	wallclockAllow   []string
	enginePkgs       map[string]bool
	concurrencyAllow []string
	unitAllow        []string
	poolPkgs         map[string]bool
	digestPkgs       map[string]bool
}

func (c Config) resolve(module string) *resolved {
	r := &resolved{module: module, timeTypes: map[string]bool{}, enginePkgs: map[string]bool{}}
	tt := c.TimeTypes
	if len(tt) == 0 {
		tt = []string{module + "/internal/sim.Time"}
	}
	for _, t := range tt {
		r.timeTypes[t] = true
	}
	r.wallclockAllow = c.WallclockAllow
	if len(r.wallclockAllow) == 0 {
		r.wallclockAllow = []string{module + "/cmd", module + "/internal/trace"}
	}
	eng := c.EnginePackages
	if len(eng) == 0 {
		for _, p := range []string{"sim", "gpu", "nvswitch", "noc", "machine"} {
			eng = append(eng, module+"/internal/"+p)
		}
	}
	for _, p := range eng {
		r.enginePkgs[p] = true
	}
	r.concurrencyAllow = c.ConcurrencyAllow
	if len(r.concurrencyAllow) == 0 {
		r.concurrencyAllow = []string{module + "/internal/sweep", module + "/cmd"}
	}
	r.unitAllow = c.UnitConvertAllow
	if len(r.unitAllow) == 0 {
		r.unitAllow = []string{module + "/internal/sim"}
	}
	pp := c.PoolPackages
	if len(pp) == 0 {
		pp = []string{module + "/internal/pool"}
	}
	r.poolPkgs = map[string]bool{}
	for _, p := range pp {
		r.poolPkgs[p] = true
	}
	dp := c.DigestPackages
	if len(dp) == 0 {
		dp = []string{module + "/internal/memo"}
	}
	r.digestPkgs = map[string]bool{}
	for _, p := range dp {
		r.digestPkgs[p] = true
	}
	return r
}

// fingerprint renders the policy config canonically for cache keying: any
// policy change invalidates every cached package.
func (r *resolved) fingerprint() string {
	var b strings.Builder
	b.WriteString("module=" + r.module)
	for _, part := range []struct {
		name string
		vals []string
	}{
		{"time", sortedKeys(r.timeTypes)},
		{"wallclock", append([]string(nil), r.wallclockAllow...)},
		{"engine", sortedKeys(r.enginePkgs)},
		{"conc", append([]string(nil), r.concurrencyAllow...)},
		{"unit", append([]string(nil), r.unitAllow...)},
		{"pool", sortedKeys(r.poolPkgs)},
		{"digest", sortedKeys(r.digestPkgs)},
	} {
		b.WriteString(";" + part.name + "=")
		b.WriteString(strings.Join(part.vals, ","))
	}
	return b.String()
}

// pathAllowed reports whether an import path is covered by an allowlist
// prefix (exact package or any package below it).
func pathAllowed(path string, allow []string) bool {
	for _, a := range allow {
		if path == a || strings.HasPrefix(path, a+"/") {
			return true
		}
	}
	return false
}

// Run analyzes the requested packages and returns every diagnostic, sorted
// by file, line and column. A non-nil error means the analysis itself
// could not run (parse/type errors, bad patterns) — distinct from
// violations, which arrive as diagnostics with a nil error.
func Run(cfg Config) ([]Diagnostic, error) {
	checks, err := selectAnalyzers(cfg.Checks)
	if err != nil {
		return nil, err
	}
	l, err := newLoader(cfg.Dir)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	rc := cfg.resolve(l.module)
	mod := newModState(l, rc)

	var cache *Cache
	if cfg.CachePath != "" {
		cache, err = openCache(cfg.CachePath, l, rc.fingerprint(), checkNames(checks))
		if err != nil {
			return nil, err
		}
	}

	var diags []Diagnostic
	for _, path := range paths {
		if cache != nil {
			if cached, ok := cache.get(path); ok {
				diags = append(diags, cached...)
				continue
			}
		}
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		pd := lintPackage(p, mod, checks)
		diags = append(diags, pd...)
		if cache != nil {
			cache.put(path, pd)
		}
	}
	if cache != nil {
		if err := cache.save(); err != nil {
			return nil, err
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// checkNames lists analyzer names in registry order (cache key input).
func checkNames(checks []*Analyzer) []string {
	out := make([]string, len(checks))
	for i, a := range checks {
		out[i] = a.Name
	}
	return out
}

// reporter is the sink checks report into; suppression by directive
// happens here.
type reporter func(pos token.Pos, check, format string, args ...any)

func lintPackage(p *Package, mod *modState, checks []*Analyzer) []Diagnostic {
	fset := p.Fset
	var diags []Diagnostic
	dirsByFile := map[string]*directiveSet{}
	for _, f := range p.Files {
		ds, dirDiags := parseDirectives(fset, f)
		ds.resolveRanges(fset, f)
		diags = append(diags, dirDiags...)
		dirsByFile[fset.Position(f.Pos()).Filename] = ds
	}
	rep := func(pos token.Pos, check, format string, args ...any) {
		position := fset.Position(pos)
		if ds := dirsByFile[position.Filename]; ds != nil && ds.suppressed(check, position.Line) {
			return
		}
		diags = append(diags, Diagnostic{
			File: position.Filename, Line: position.Line, Col: position.Column,
			Check: check, Msg: fmt.Sprintf(format, args...),
		})
	}
	pass := &Pass{Pkg: p, rc: mod.rc, mod: mod, rep: rep}
	ran := map[string]bool{}
	for _, a := range checks {
		a.run(pass)
		ran[a.Name] = true
	}
	for _, name := range sortedKeys(dirsByFile) {
		diags = append(diags, dirsByFile[name].unused(fset, ran)...)
	}
	return diags
}

// directive is one parsed //caislint: comment. A single ignore comment
// naming several checks ("//caislint:ignore wallclock,rand reason")
// expands into one directive per check, tracked individually so a stale
// name inside a multi-check directive is still reported.
type directive struct {
	check    string
	fileWide bool
	line     int
	covEnd   int // last line covered (resolved from statement extents)
	pos      token.Pos
	used     bool
}

type directiveSet struct {
	list []*directive
}

// parseDirectives extracts caislint directives from a file's comments.
// Malformed directives (unknown check, missing reason) are diagnostics
// themselves: a suppression without a recorded reason is indistinguishable
// from a shrug. //caislint:nodigest annotations are validated here (their
// package owns the malformed-annotation diagnostic) but consumed by the
// digestcover pass, so they carry no suppression range and are exempt
// from unused-directive tracking.
func parseDirectives(fset *token.FileSet, f *ast.File) (*directiveSet, []Diagnostic) {
	ds := &directiveSet{}
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		position := fset.Position(pos)
		diags = append(diags, Diagnostic{
			File: position.Filename, Line: position.Line, Col: position.Column,
			Check: CheckDirective, Msg: fmt.Sprintf(format, args...),
		})
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // block comments cannot carry directives
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, "caislint:")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				bad(c.Pos(), "empty caislint directive")
				continue
			}
			verb := fields[0]
			switch verb {
			case "nodigest":
				if len(fields) < 2 {
					bad(c.Pos(), "caislint:nodigest is missing its mandatory reason")
				}
				continue // consumed by digestcover via the field's position
			case "ignore", "file-ignore":
			default:
				bad(c.Pos(), "unknown caislint directive %q (want ignore, file-ignore or nodigest)", verb)
				continue
			}
			if len(fields) < 2 {
				bad(c.Pos(), "caislint:%s needs a check name", verb)
				continue
			}
			names := strings.Split(fields[1], ",")
			badName := false
			for _, check := range names {
				if !knownChecks[check] {
					bad(c.Pos(), "caislint:%s names unknown check %q", verb, check)
					badName = true
				}
			}
			if badName {
				continue
			}
			if len(fields) < 3 {
				bad(c.Pos(), "caislint:%s %s is missing its mandatory reason", verb, fields[1])
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, check := range names {
				ds.list = append(ds.list, &directive{
					check:    check,
					fileWide: verb == "file-ignore",
					line:     line,
					covEnd:   line + 1,
					pos:      c.Pos(),
				})
			}
		}
	}
	return ds, diags
}

// resolveRanges widens each line directive to the full line range of the
// statement (or declaration) starting on its own line or the line below,
// so a directive above a multi-line statement suppresses diagnostics
// anywhere inside it — not just on the first line. Bare blocks are not
// extents of their own (a directive above `{` should not blanket the
// block), and function declarations keep the narrow two-line coverage so
// a directive above `func` never silently shadows a whole body.
func (ds *directiveSet) resolveRanges(fset *token.FileSet, f *ast.File) {
	lineOf := func(p token.Pos) int { return fset.Position(p).Line }
	widen := func(start, end int) {
		for _, d := range ds.list {
			if d.fileWide {
				continue
			}
			if (start == d.line || start == d.line+1) && end > d.covEnd {
				d.covEnd = end
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt, *ast.FuncDecl, nil:
			return true
		case ast.Stmt:
			widen(lineOf(n.Pos()), lineOf(n.End()))
		case *ast.GenDecl:
			widen(lineOf(n.Pos()), lineOf(n.End()))
		}
		return true
	})
}

// suppressed reports whether a diagnostic for check at the given line is
// covered: file-wide directives cover everything, line directives cover
// the resolved line range of the statement they annotate (at minimum
// their own line and the line directly below).
func (ds *directiveSet) suppressed(check string, line int) bool {
	hit := false
	for _, d := range ds.list {
		if d.check != check {
			continue
		}
		if d.fileWide || (line >= d.line && line <= d.covEnd) {
			d.used = true
			hit = true
		}
	}
	return hit
}

// unused reports directives that suppressed nothing — stale annotations
// are themselves violations so the tree stays minimally annotated. A
// directive is only known-stale when its check actually ran, so under
// -checks subsetting the other checks' ignores are left alone.
func (ds *directiveSet) unused(fset *token.FileSet, ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ds.list {
		if d.used || !ran[d.check] {
			continue
		}
		position := fset.Position(d.pos)
		out = append(out, Diagnostic{
			File: position.Filename, Line: position.Line, Col: position.Column,
			Check: CheckDirective,
			Msg:   fmt.Sprintf("unused caislint:ignore directive for %s (nothing to suppress here)", d.check),
		})
	}
	return out
}

package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestReadmeTableMatchesRegistry asserts the README's check table (the
// block between the caislint-checks markers) lists exactly the registered
// analyzers, in registry order, with their registered doc strings — the
// same rows `caislint -list` prints.
func TestReadmeTableMatchesRegistry(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Skipf("README.md not found: %v", err)
	}
	text := string(data)
	begin := strings.Index(text, "<!-- caislint-checks:begin -->")
	end := strings.Index(text, "<!-- caislint-checks:end -->")
	if begin < 0 || end < 0 || end < begin {
		t.Fatal("README.md is missing the caislint-checks marker block")
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z-]+)` \\| (.+) \\|$")
	rows := rowRe.FindAllStringSubmatch(text[begin:end], -1)
	analyzers := Analyzers()
	if len(rows) != len(analyzers) {
		t.Fatalf("README table has %d check rows, registry has %d", len(rows), len(analyzers))
	}
	for i, a := range analyzers {
		if rows[i][1] != a.Name {
			t.Errorf("README row %d names %q, registry order says %q", i, rows[i][1], a.Name)
		}
		if rows[i][2] != a.Doc {
			t.Errorf("README doc for %s:\n  table:    %s\n  registry: %s", a.Name, rows[i][2], a.Doc)
		}
	}
}

func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers(nil)
	if err != nil || len(all) != len(registry) {
		t.Fatalf("empty selection = %d analyzers, err %v; want the full registry", len(all), err)
	}
	// Requested order does not matter: partial runs report in registry
	// order, and duplicates collapse.
	got, err := selectAnalyzers([]string{CheckTaintWall, CheckWallclock, CheckTaintWall})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != CheckWallclock || got[1].Name != CheckTaintWall {
		names := make([]string, len(got))
		for i, a := range got {
			names[i] = a.Name
		}
		t.Fatalf("subset = %v, want [wallclock taintwall] in registry order", names)
	}
	if _, err := selectAnalyzers([]string{"frobnicate"}); err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("unknown check selection error = %v, want unknown-check error", err)
	}
}

// TestEveryCheckHasFixtures enforces the registry contract: each analyzer
// ships golden fixtures with at least one positive case (a lintwant
// marker) and at least one suppressed case (an ignore directive naming
// the check) under testdata/src.
func TestEveryCheckHasFixtures(t *testing.T) {
	positives := map[string]int{}
	suppressions := map[string]int{}
	ignoreRe := regexp.MustCompile(`caislint:(?:file-)?ignore ([a-z,-]+)`)
	err := filepath.WalkDir("testdata/src", func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range wantRe.FindAllStringSubmatch(string(data), -1) {
			positives[m[2]]++
		}
		for _, m := range ignoreRe.FindAllStringSubmatch(string(data), -1) {
			for _, name := range strings.Split(m[1], ",") {
				suppressions[name]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range Analyzers() {
		if positives[a.Name] == 0 {
			t.Errorf("check %s has no positive fixture (lintwant:%s marker)", a.Name, a.Name)
		}
		if suppressions[a.Name] == 0 {
			t.Errorf("check %s has no suppressed fixture (caislint:ignore %s ...)", a.Name, a.Name)
		}
	}
	// The directive pseudo-check is exercised by the malformed-directive
	// fixtures rather than by suppression.
	if positives[CheckDirective] == 0 {
		t.Error("no malformed-directive fixtures (lintwant:directive)")
	}
}

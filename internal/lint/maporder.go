package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// checkMapOrder flags `for range` loops over maps whose bodies are
// order-dependent. Go randomizes map iteration order per run, so any such
// loop that mutates simulation state, schedules events, appends computed
// values, emits trace/metrics, or accumulates floats makes the simulator
// non-reproducible.
//
// A small vocabulary of provably order-independent bodies is allowed
// without annotation:
//
//   - key/value collection:      keys = append(keys, k)   (sort afterwards)
//   - integer accumulation:      n += len(v); count++
//   - keyed writes:              dst[k] = <pure expr>     (distinct keys)
//   - idempotent constant write: seen = true
//   - guarded min/max updates:   if v > best { best = v }
//   - keyed deletes:             delete(other, k)
//   - pure local declarations, continue, benign nested loops/ifs/switches
//
// Everything else — function calls, returns, breaks, float accumulation,
// appends of computed values — must either iterate sorted keys or carry a
// //caislint:ignore map-order <reason> directive.
func checkMapOrder(p *Package, f *ast.File, _ *resolved, rep reporter) {
	ast.Inspect(f, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := p.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		w := &mapOrderWalker{p: p}
		if id := loopIdent(rs.Key); id != nil {
			w.keyVar = id.Name
			w.loopVars = append(w.loopVars, id.Name)
		}
		if id := loopIdent(rs.Value); id != nil {
			w.loopVars = append(w.loopVars, id.Name)
		}
		if off := w.block(rs.Body, nil); off != "" {
			rep(rs.For, CheckMapOrder,
				"range over map %s has an order-dependent body (%s); iterate sorted keys or add //caislint:ignore map-order <reason>",
				types.ExprString(rs.X), off)
		}
		return true
	})
}

func loopIdent(e ast.Expr) *ast.Ident {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return id
}

// mapOrderWalker scans a map-range body for order-dependent statements.
// Methods return "" when benign, or a short reason naming the offending
// construct.
type mapOrderWalker struct {
	p        *Package
	keyVar   string
	loopVars []string
}

func (w *mapOrderWalker) isLoopVar(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	for _, v := range w.loopVars {
		if id.Name == v {
			return true
		}
	}
	return false
}

func (w *mapOrderWalker) block(b *ast.BlockStmt, guard ast.Expr) string {
	for _, s := range b.List {
		if off := w.stmt(s, guard); off != "" {
			return off
		}
	}
	return ""
}

func (w *mapOrderWalker) stmt(s ast.Stmt, guard ast.Expr) string {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return w.assign(s, guard)

	case *ast.IncDecStmt:
		if off := w.impure(s.X); off != "" {
			return off
		}
		if isIntegerish(w.p.Info.TypeOf(s.X)) {
			return ""
		}
		return fmt.Sprintf("line %d: non-integer %s is order-dependent", w.line(s), s.Tok)

	case *ast.IfStmt:
		if s.Init != nil {
			if off := w.stmt(s.Init, nil); off != "" {
				return off
			}
		}
		if off := w.impure(s.Cond); off != "" {
			return off
		}
		g := comparisonGuard(s.Cond)
		if off := w.block(s.Body, g); off != "" {
			return off
		}
		if s.Else != nil {
			if off := w.stmt(s.Else, g); off != "" {
				return off
			}
		}
		return ""

	case *ast.BlockStmt:
		return w.block(s, guard)

	case *ast.RangeStmt:
		if off := w.impure(s.X); off != "" {
			return off
		}
		// Nested map ranges get their own diagnostic from checkMapOrder;
		// here the nested body is scanned under the same rules either way,
		// since it runs once per outer-map element.
		return w.block(s.Body, nil)

	case *ast.ForStmt:
		if s.Init != nil {
			if off := w.stmt(s.Init, nil); off != "" {
				return off
			}
		}
		if s.Cond != nil {
			if off := w.impure(s.Cond); off != "" {
				return off
			}
		}
		if s.Post != nil {
			if off := w.stmt(s.Post, nil); off != "" {
				return off
			}
		}
		return w.block(s.Body, nil)

	case *ast.SwitchStmt:
		if s.Init != nil {
			if off := w.stmt(s.Init, nil); off != "" {
				return off
			}
		}
		if s.Tag != nil {
			if off := w.impure(s.Tag); off != "" {
				return off
			}
		}
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				if off := w.impure(e); off != "" {
					return off
				}
			}
			for _, st := range cc.Body {
				if off := w.stmt(st, nil); off != "" {
					return off
				}
			}
		}
		return ""

	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return fmt.Sprintf("line %d: declaration", w.line(s))
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, v := range vs.Values {
				if off := w.impure(v); off != "" {
					return off
				}
			}
		}
		return ""

	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && w.isKeyedDelete(call) {
			return ""
		}
		return fmt.Sprintf("line %d: %s", w.line(s), describeCall(s.X))

	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return fmt.Sprintf("line %d: %s exits the loop at an order-dependent element", w.line(s), s.Tok)

	case *ast.ReturnStmt:
		return fmt.Sprintf("line %d: return selects an order-dependent element", w.line(s))

	default:
		return fmt.Sprintf("line %d: order-dependent statement", w.line(s))
	}
}

// assign classifies an assignment inside a map-range body.
func (w *mapOrderWalker) assign(s *ast.AssignStmt, guard ast.Expr) string {
	for _, r := range s.Rhs {
		if s.Tok == token.DEFINE || !w.isCollectAppend(s) {
			if off := w.impure(r); off != "" {
				return off
			}
		}
	}
	for _, l := range s.Lhs {
		if off := w.impure(l); off != "" {
			return off
		}
	}
	switch s.Tok {
	case token.DEFINE:
		return "" // fresh locals per iteration are order-independent

	case token.ASSIGN:
		if w.isCollectAppend(s) {
			return ""
		}
		if len(s.Lhs) == 1 {
			// Keyed write: dst[k] = <pure> touches a distinct element per
			// iteration, so the final state is order-independent.
			if ix, ok := s.Lhs[0].(*ast.IndexExpr); ok && w.isLoopVar(ix.Index) {
				return ""
			}
			// Idempotent constant write: x = true / x = 0.
			if len(s.Rhs) == 1 {
				if tv, ok := w.p.Info.Types[s.Rhs[0]]; ok && tv.Value != nil {
					return ""
				}
			}
			// Guarded min/max update: if v > best { best = v }.
			if guard != nil && lhsInGuard(s.Lhs[0], guard) {
				return ""
			}
		}
		return fmt.Sprintf("line %d: assignment to %s depends on iteration order", w.line(s), types.ExprString(s.Lhs[0]))

	default: // op-assign: += -= *= ...
		if len(s.Lhs) != 1 {
			return fmt.Sprintf("line %d: compound assignment", w.line(s))
		}
		t := w.p.Info.TypeOf(s.Lhs[0])
		if isFloat(t) {
			return fmt.Sprintf("line %d: float accumulation %s is non-associative across iteration orders", w.line(s), types.ExprString(s.Lhs[0]))
		}
		if isIntegerish(t) {
			return ""
		}
		return fmt.Sprintf("line %d: compound assignment to non-integer %s", w.line(s), types.ExprString(s.Lhs[0]))
	}
}

// isCollectAppend recognizes the sorted-keys idiom's collection step:
// keys = append(keys, k) (or the value variable). Anything appended beyond
// the raw loop variables is a computed value whose slice order would leak
// map order.
func (w *mapOrderWalker) isCollectAppend(s *ast.AssignStmt) bool {
	if s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
		return false
	}
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if _, isBuiltin := w.p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	if types.ExprString(call.Args[0]) != types.ExprString(s.Lhs[0]) {
		return false
	}
	for _, a := range call.Args[1:] {
		if !w.isLoopVar(a) {
			return false
		}
	}
	return true
}

// isKeyedDelete recognizes delete(m, k) with the loop key: deletions of
// distinct keys commute.
func (w *mapOrderWalker) isKeyedDelete(call *ast.CallExpr) bool {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" || len(call.Args) != 2 {
		return false
	}
	if _, isBuiltin := w.p.Info.Uses[fn].(*types.Builtin); !isBuiltin {
		return false
	}
	return w.isLoopVar(call.Args[1])
}

// impure returns a reason when the expression could have side effects or
// capture order-dependent state: any call that is not a builtin or a type
// conversion, a function literal, or a channel operation.
func (w *mapOrderWalker) impure(e ast.Expr) string {
	reason := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := w.p.Info.Types[n.Fun]; ok && tv.IsType() {
				return true // type conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isBuiltin := w.p.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
			reason = fmt.Sprintf("line %d: %s", w.p.line(n), describeCall(n))
			return false
		case *ast.FuncLit:
			reason = fmt.Sprintf("line %d: function literal captures iteration state", w.p.line(n))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reason = fmt.Sprintf("line %d: channel receive", w.p.line(n))
				return false
			}
		}
		return true
	})
	return reason
}

func (w *mapOrderWalker) line(n ast.Node) int { return w.p.line(n) }

func (p *Package) line(n ast.Node) int {
	return p.Fset.Position(n.Pos()).Line
}

// describeCall renders a short human label for the offending expression.
func describeCall(e ast.Expr) string {
	if call, ok := e.(*ast.CallExpr); ok {
		return fmt.Sprintf("call to %s", types.ExprString(call.Fun))
	}
	return types.ExprString(e)
}

// comparisonGuard returns the condition when it is an ordering comparison
// (the min/max idiom); nil otherwise.
func comparisonGuard(cond ast.Expr) ast.Expr {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return be
	}
	return nil
}

// lhsInGuard reports whether the assignment target's base identifier
// appears in the guarding comparison — `if s.lru < victim.lru { victim = s }`.
func lhsInGuard(lhs ast.Expr, guard ast.Expr) bool {
	base := baseIdent(lhs)
	if base == "" {
		return false
	}
	found := false
	ast.Inspect(guard, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == base {
			found = true
			return false
		}
		return !found
	})
	return found
}

func baseIdent(e ast.Expr) string {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x.Name
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return ""
		}
	}
}

func isIntegerish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsInteger|types.IsBoolean) != 0
}

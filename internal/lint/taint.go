package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// checkTaintWall extends the wallclock and rand checks from direct-call
// detection to a transitive call-graph taint pass: a module function that
// reaches time.Now/Since/Until or the unseeded global math/rand source —
// directly or through any chain of module-internal calls — taints every
// call site. A helper that wraps time.Now is therefore flagged in every
// engine package that calls it, not just at its definition, and a
// //caislint:ignore wallclock directive on the definition does not
// launder the call sites.
//
// Wallclock taint does not propagate out of the sanctioned packages
// (cmd/, internal/trace): functions defined there may read the wall
// clock by policy, so calling them is not a violation. Rand taint has no
// sanctioned packages, matching the direct check. The pass follows named
// functions and methods; function values and closures are outside its
// reach (the direct checks still cover their bodies).
func checkTaintWall(pass *Pass) {
	p := pass.Pkg
	wallAllowed := pathAllowed(p.Path, pass.rc.wallclockAllow)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || !pass.mod.inModule(fn.Pkg()) {
				return true
			}
			facts := pass.mod.taintOf(fn)
			if facts.wall != nil && !wallAllowed {
				pass.rep(call.Pos(), CheckTaintWall,
					"call to %s transitively reads the wall clock (%s); simulated code must use sim.Engine time",
					shortFuncName(fn), strings.Join(facts.wall, " -> "))
			}
			if facts.rand != nil {
				pass.rep(call.Pos(), CheckTaintWall,
					"call to %s transitively uses the unseeded global math/rand source (%s); thread a seeded generator (sim.RNG) instead",
					shortFuncName(fn), strings.Join(facts.rand, " -> "))
			}
			return true
		})
	}
}

// taintFacts records, per function, a witness call chain to each taint
// source; nil means clean for that flavor.
type taintFacts struct {
	wall []string // e.g. [util.Stamp, time.Now]
	rand []string
}

// calleeFunc resolves a call expression to the named function or method
// it invokes, or nil for closures, function values and builtins.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// shortFuncName renders pkg.Func or pkg.Type.Method for diagnostics.
func shortFuncName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		name = fn.Pkg().Name() + "." + name
	}
	return name
}

// taintOf returns the (memoized) taint facts for a module function.
func (m *modState) taintOf(fn *types.Func) *taintFacts {
	facts, _ := m.taint(fn)
	return facts
}

// taint computes taint facts by walking the function body. The second
// result reports completeness: results computed while a call-graph cycle
// is open are correct for the caller but under-explored, so they are not
// memoized (direct sources are always seen by their own function's walk,
// which keeps values exact; only caching is affected).
func (m *modState) taint(fn *types.Func) (*taintFacts, bool) {
	if facts, ok := m.taints[fn]; ok {
		return facts, true
	}
	if m.taintRun[fn] {
		return &taintFacts{}, false
	}
	m.taintRun[fn] = true
	defer delete(m.taintRun, fn)

	facts := &taintFacts{}
	complete := true
	decl, p := m.declOf(fn)
	if decl == nil || decl.Body == nil {
		m.taints[fn] = facts
		return facts, true
	}
	wallSanctioned := pathAllowed(fn.Pkg().Path(), m.rc.wallclockAllow)
	self := shortFuncName(fn)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			pkg := pkgOf(p, n.X)
			if pkg == nil {
				return true
			}
			switch pkg.Path() {
			case "time":
				switch n.Sel.Name {
				case "Now", "Since", "Until":
					if facts.wall == nil && !wallSanctioned {
						facts.wall = []string{self, "time." + n.Sel.Name}
					}
				}
			case "math/rand", "math/rand/v2":
				if randAllowed[n.Sel.Name] {
					return true
				}
				if obj, ok := p.Info.Uses[n.Sel]; ok {
					if _, isType := obj.(*types.TypeName); isType {
						return true
					}
				}
				if facts.rand == nil {
					facts.rand = []string{self, "rand." + n.Sel.Name}
				}
			}
		case *ast.CallExpr:
			callee := calleeFunc(p, n)
			if callee == nil || callee == fn || !m.inModule(callee.Pkg()) {
				return true
			}
			child, done := m.taint(callee)
			if !done {
				complete = false
			}
			if child.wall != nil && facts.wall == nil && !wallSanctioned {
				facts.wall = append([]string{self}, child.wall...)
			}
			if child.rand != nil && facts.rand == nil {
				facts.rand = append([]string{self}, child.rand...)
			}
		}
		return true
	})
	if complete {
		m.taints[fn] = facts
	}
	return facts, complete
}

package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF 2.1.0 output: the minimal, spec-conformant subset code-scanning
// UIs consume. Rules come from the analyzer registry (plus the synthetic
// "directive" rule for malformed/stale annotations); results reference
// module-relative URIs against a SRCROOT base so the log is portable
// across checkouts.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool               sarifTool               `json:"tool"`
	OriginalURIBaseIDs map[string]sarifBaseURI `json:"originalUriBaseIds,omitempty"`
	Results            []sarifResult           `json:"results"`
	ColumnKind         string                  `json:"columnKind"`
}

type sarifBaseURI struct {
	URI string `json:"uri"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Version        string      `json:"version"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. root is the module
// root used to relativize file paths; diagnostics outside it keep their
// absolute path (and no base URI).
func SARIF(diags []Diagnostic, root string) ([]byte, error) {
	rules := []sarifRule{}
	ruleIndex := map[string]int{}
	for _, a := range Analyzers() {
		ruleIndex[a.Name] = len(rules)
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	ruleIndex[CheckDirective] = len(rules)
	rules = append(rules, sarifRule{
		ID:               CheckDirective,
		ShortDescription: sarifMessage{Text: "malformed or stale //caislint directives are violations themselves"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		art := sarifArtifact{URI: filepath.ToSlash(d.File)}
		if root != "" {
			if rel, err := filepath.Rel(root, d.File); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				art = sarifArtifact{URI: filepath.ToSlash(rel), URIBaseID: "SRCROOT"}
			}
		}
		idx, ok := ruleIndex[d.Check]
		if !ok {
			idx = ruleIndex[CheckDirective]
		}
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: art,
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			}}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:    "caislint",
				Version: cacheSchemaVersion,
				Rules:   rules,
			}},
			OriginalURIBaseIDs: map[string]sarifBaseURI{
				"SRCROOT": {URI: "file://" + filepath.ToSlash(root) + "/"},
			},
			Results:    results,
			ColumnKind: "utf16CodeUnits",
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == "../"
}

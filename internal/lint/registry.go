package lint

import (
	"fmt"
	"go/ast"
)

// Analyzer is one registered check: a stable name (the directive
// vocabulary), a one-line doc string (rendered by `caislint -list` and
// asserted against the README's check table), and the pass itself.
// Every analyzer must come with golden fixtures under testdata/src
// exercising at least one positive and one suppressed case — the
// registry test enforces that.
type Analyzer struct {
	Name string
	Doc  string
	run  func(*Pass)
}

// Pass is the per-package analysis context handed to each analyzer: the
// type-checked package under analysis, the resolved policy config, and a
// whole-module view for the cross-package passes (digestcover walks the
// digested structs' defining packages, taintwall follows the call graph
// into dependency bodies, exhaustive reads enum const blocks from their
// declaring package).
type Pass struct {
	Pkg *Package
	rc  *resolved
	mod *modState
	rep reporter
}

// perFile adapts the single-file checks to the per-package run signature.
func perFile(fn func(*Package, *ast.File, *resolved, reporter)) func(*Pass) {
	return func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			fn(pass.Pkg, f, pass.rc, pass.rep)
		}
	}
}

// registry lists every analyzer in reporting-vocabulary order. The order
// is cosmetic (diagnostics sort by position), but -list and the README
// table render it as written here.
var registry = []*Analyzer{
	{
		Name: CheckWallclock,
		Doc:  "time.Now/Since/Until forbidden outside cmd/ and internal/trace; simulated code uses sim.Engine time",
		run:  perFile(checkWallclock),
	},
	{
		Name: CheckRand,
		Doc:  "global math/rand(/v2) functions forbidden everywhere; only seeded generators (sim.RNG, rand.New) are allowed",
		run:  perFile(checkRand),
	},
	{
		Name: CheckMapOrder,
		Doc:  "for-range over a map with an order-dependent body must iterate sorted keys instead",
		run:  perFile(checkMapOrder),
	},
	{
		Name: CheckUnits,
		Doc:  "raw float-to-sim.Time conversions outside internal/sim and float accumulation of time values are forbidden",
		run:  perFile(checkUnits),
	},
	{
		Name: CheckGoroutine,
		Doc:  "go statements forbidden in the engine packages and outside the sanctioned concurrency sites (internal/sweep, cmd/)",
		run:  perFile(checkGoroutine),
	},
	{
		Name: CheckPoolReset,
		Doc:  "pool.Pool element types need a reset() method and every Put(x) must be immediately preceded by x.reset()",
		run:  perFile(checkPoolReset),
	},
	{
		Name: CheckDigestCover,
		Doc:  "every exported field of a struct digested by a memo.Hasher method must be written into the digest, passed to a nested digest, or annotated //caislint:nodigest; func-typed fields must be guarded by memo.Cacheable",
		run:  checkDigestCover,
	},
	{
		Name: CheckExhaustive,
		Doc:  "switches and map literals over enum-like const blocks must cover every declared constant or carry an explicit default",
		run:  checkExhaustive,
	},
	{
		Name: CheckTaintWall,
		Doc:  "calls to module functions that transitively reach time.Now or the global math/rand source are flagged at every call site",
		run:  checkTaintWall,
	},
}

// Analyzers returns the registered checks in registry order.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, len(registry))
	copy(out, registry)
	return out
}

// selectAnalyzers resolves the Config.Checks subset (empty = all),
// rejecting unknown names so a typo in -checks fails loudly instead of
// silently running nothing.
func selectAnalyzers(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range registry {
		byName[a.Name] = a
	}
	var out []*Analyzer
	seen := map[string]bool{}
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (run caislint -list for the catalog)", n)
		}
		if seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, a)
	}
	// Preserve registry order regardless of the requested order, so
	// partial runs report identically to full runs.
	var ordered []*Analyzer
	for _, a := range registry {
		if seen[a.Name] {
			ordered = append(ordered, a)
		}
	}
	return ordered, nil
}

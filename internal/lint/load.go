package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	Path  string // import path ("cais/internal/sim")
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// loader resolves and type-checks module-internal packages with a custom
// importer: module paths map to source directories, standard-library paths
// fall through to the stdlib source importer. No x/tools dependency.
type loader struct {
	fset     *token.FileSet
	root     string            // module root (absolute)
	module   string            // module path from go.mod
	dirs     map[string]string // import path -> absolute dir
	pkgs     map[string]*Package
	checking map[string]bool // cycle guard
	std      types.Importer
}

func newLoader(root string) (*loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:     token.NewFileSet(),
		root:     root,
		module:   module,
		dirs:     map[string]string{},
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	if err := l.discover(); err != nil {
		return nil, err
	}
	return l, nil
}

// modulePath reads the module declaration from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			if m := strings.TrimSpace(rest); m != "" {
				return strings.Trim(m, `"`), nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s/go.mod", root)
}

// discover maps every package directory of the module to its import path.
// Directories named testdata or vendor and hidden/underscore directories
// are skipped, matching the go tool's convention.
func (l *loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := l.module
		if rel != "." {
			ip = l.module + "/" + filepath.ToSlash(rel)
		}
		l.dirs[ip] = path
		return nil
	})
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer: module-internal packages type-check
// from source through this loader; everything else defers to the standard
// library importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.dirs[path]; ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module package (memoized).
func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown package %s", path)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer:                 l,
		DisableUnusedImportCheck: true,
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// expand resolves package patterns ("./...", "./internal/...", ".",
// "./cmd/caissim") against the discovered module directories and returns
// the matching import paths in sorted order.
func (l *loader) expand(patterns []string) ([]string, error) {
	all := sortedKeys(l.dirs)
	set := map[string]bool{}
	for _, pat := range patterns {
		matched := false
		clean := strings.TrimPrefix(pat, "./")
		switch {
		case pat == "." || pat == "./":
			if _, ok := l.dirs[l.module]; ok {
				set[l.module] = true
				matched = true
			}
		case clean == "..." || pat == "all":
			for _, ip := range all {
				set[ip] = true
			}
			matched = len(all) > 0
		case strings.HasSuffix(clean, "/..."):
			prefix := l.module + "/" + strings.TrimSuffix(clean, "/...")
			for _, ip := range all {
				if ip == prefix || strings.HasPrefix(ip, prefix+"/") {
					set[ip] = true
					matched = true
				}
			}
		default:
			ip := l.module + "/" + filepath.ToSlash(clean)
			if strings.HasPrefix(pat, l.module) {
				ip = pat // fully-qualified import path
			}
			if _, ok := l.dirs[ip]; ok {
				set[ip] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("lint: pattern %q matched no packages", pat)
		}
	}
	return sortedKeys(set), nil
}

// sortedKeys returns a map's keys in sorted order — the iteration
// discipline the map-order check enforces on the simulator itself.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgOf resolves the package an identifier's selector base refers to,
// returning nil when the base is not a package name (so aliased imports
// are handled and shadowing local variables named "time" are not).
func pkgOf(p *Package, x ast.Expr) *types.Package {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// checkWallclock forbids wall-clock reads in simulated code: the engine's
// sim.Time is the only clock, so time.Now/Since/Until anywhere outside the
// CLI and tracing layers silently breaks replayability.
func checkWallclock(p *Package, f *ast.File, rc *resolved, rep reporter) {
	if pathAllowed(p.Path, rc.wallclockAllow) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(p, sel.X)
		if pkg == nil || pkg.Path() != "time" {
			return true
		}
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			rep(sel.Pos(), CheckWallclock,
				"time.%s reads the wall clock; simulated code must use sim.Engine time (allowed only under cmd/ and internal/trace)",
				sel.Sel.Name)
		}
		return true
	})
}

// randAllowed are the math/rand entry points that construct seeded
// generators; everything else on the package (Intn, Float64, Shuffle,
// Seed, ...) goes through the unseeded global source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"NewZipf":    true, // takes a *rand.Rand, so it is already seeded
}

// checkRand forbids the global math/rand functions: only explicitly
// seeded generators (sim.RNG, or *rand.Rand built via rand.New) keep runs
// reproducible across processes and Go versions.
func checkRand(p *Package, f *ast.File, _ *resolved, rep reporter) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(p, sel.X)
		if pkg == nil {
			return true
		}
		if path := pkg.Path(); path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		if randAllowed[sel.Sel.Name] {
			return true
		}
		// Types (rand.Rand, rand.Source) are legitimate in signatures.
		if obj, ok := p.Info.Uses[sel.Sel]; ok {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
		rep(sel.Pos(), CheckRand,
			"rand.%s uses the unseeded global source; use sim.RNG (sim.NewRNG or a labeled sim.NewStreamRNG stream) or a *rand.Rand seeded from the run configuration",
			sel.Sel.Name)
		return true
	})
}

// checkGoroutine polices `go` statements. Engine packages forbid them
// unconditionally: the discrete-event simulator is single-threaded by
// design, and a goroutine on the hot path reintroduces scheduler-dependent
// ordering. Everywhere else, concurrency must flow through the sanctioned
// sites (internal/sweep's bounded pool, cmd/) so that parallel sweeps keep
// the byte-identical-output contract instead of sprouting ad-hoc
// goroutines with their own result-ordering bugs.
func checkGoroutine(p *Package, f *ast.File, rc *resolved, rep reporter) {
	engine := rc.enginePkgs[p.Path]
	if !engine && pathAllowed(p.Path, rc.concurrencyAllow) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if engine {
				rep(g.Pos(), CheckGoroutine,
					"go statement in engine package %s; the simulator is single-threaded — schedule an event on sim.Engine instead",
					p.Path)
			} else {
				rep(g.Pos(), CheckGoroutine,
					"go statement outside the sanctioned concurrency sites; fan independent points out with sweep.Map (internal/sweep) instead")
			}
		}
		return true
	})
}

// isTimeType reports whether t (or its pointer base) is one of the
// configured simulated-time types.
func isTimeType(rc *resolved, t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return rc.timeTypes[obj.Pkg().Path()+"."+obj.Name()]
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkUnits enforces the typed-time boundary with go/types:
//
//  1. A conversion from a float expression to sim.Time truncates
//     picoseconds and must go through an audited helper in internal/sim
//     (Scale, DurationForBytes, DurationForFlops, FromPicoseconds).
//  2. Accumulating simulated time into a float64 (`sum += float64(t)` or
//     `sum += t.Seconds()`) is flagged: float summation is
//     non-associative, so the result depends on accumulation order —
//     accumulate in sim.Time and convert once.
func checkUnits(p *Package, f *ast.File, rc *resolved, rep reporter) {
	if pathAllowed(p.Path, rc.unitAllow) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			tv, ok := p.Info.Types[n.Fun]
			if !ok || !tv.IsType() || !isTimeType(rc, tv.Type) || len(n.Args) != 1 {
				return true
			}
			if isFloat(p.Info.TypeOf(n.Args[0])) {
				rep(n.Pos(), CheckUnits,
					"float-to-time conversion truncates picoseconds; use an audited sim helper (Scale, DurationForBytes, DurationForFlops, FromPicoseconds)")
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
				return true
			}
			if len(n.Lhs) != 1 || !isFloat(p.Info.TypeOf(n.Lhs[0])) {
				return true
			}
			if derivesFromTime(p, rc, n.Rhs[0]) {
				rep(n.Pos(), CheckUnits,
					"float accumulation of simulated-time values is order-dependent (non-associative); accumulate in sim.Time and convert once")
			}
		}
		return true
	})
}

// derivesFromTime reports whether an expression converts a simulated-time
// value to float — either a float(t) conversion or a unit method call on a
// time value (t.Seconds() and friends).
func derivesFromTime(p *Package, rc *resolved, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && isFloat(tv.Type) && len(call.Args) == 1 {
			if isTimeType(rc, p.Info.TypeOf(call.Args[0])) {
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isTimeType(rc, p.Info.TypeOf(sel.X)) && isFloat(p.Info.TypeOf(call)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isPoolType reports whether t (or its pointer base) is an instantiation
// of Pool from a configured free-list package, returning the named type
// for type-argument inspection.
func isPoolType(rc *resolved, t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Pool" {
		return nil, false
	}
	return named, rc.poolPkgs[obj.Pkg().Path()]
}

// hasResetMethod reports whether *T has a niladic reset() method. The
// lookup runs from T's own package: reset is deliberately unexported — the
// lifecycle discipline is a package-internal contract.
func hasResetMethod(elem types.Type) bool {
	named, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(elem), true, named.Obj().Pkg(), "reset")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// checkPoolReset enforces the free-list lifecycle discipline (see
// internal/pool): every element type handed to a pool.Pool must carry a
// reset() method, and every Put must be immediately preceded by a reset of
// the object it returns — pool.Get hands objects out without clearing
// them, so a skipped or distant reset resurfaces one run's state in
// another object's lifetime, the classic stale-field heisenbug.
func checkPoolReset(p *Package, f *ast.File, rc *resolved, rep reporter) {
	if rc.poolPkgs[p.Path] {
		return // the pool package itself (generic T has no methods to check)
	}

	// Rule 1: every Pool[T] type expression needs T to have reset().
	ast.Inspect(f, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[e]
		if !ok || !tv.IsType() {
			return true
		}
		named, isPool := isPoolType(rc, tv.Type)
		if !isPool || named.TypeArgs().Len() != 1 {
			return true
		}
		elem := named.TypeArgs().At(0)
		if _, isTP := elem.(*types.TypeParam); isTP {
			return true
		}
		if !hasResetMethod(elem) {
			rep(e.Pos(), CheckPoolReset,
				"pool.Pool element type %s has no reset() method; pooled objects must reset before returning to the free list",
				types.TypeString(elem, types.RelativeTo(p.Types)))
		}
		return false
	})

	// Rule 2: every Put(x) statement is immediately preceded by x.reset().
	// Statement lists live in blocks and in switch/select clause bodies.
	checked := map[token.Pos]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			call := poolPutStmt(p, rc, stmt)
			if call == nil {
				continue
			}
			checked[call.Pos()] = true
			arg := types.ExprString(call.Args[0])
			if i == 0 || !isResetOf(list[i-1], arg) {
				rep(call.Pos(), CheckPoolReset,
					"%s is returned to its pool without %s.reset() as the immediately preceding statement",
					arg, arg)
			}
		}
		return true
	})

	// Any pool Put reached outside statement position (defer, go, an
	// expression context) cannot be paired with a reset statically — flag
	// it rather than silently trusting it.
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || checked[call.Pos()] || !isPoolPutCall(p, rc, call) {
			return true
		}
		rep(call.Pos(), CheckPoolReset,
			"pool Put in non-statement position; call reset() then Put as two adjacent statements so the lifecycle is auditable")
		return true
	})
}

// poolPutStmt returns the pool Put call when stmt is a plain `x.Put(y)`
// expression statement, nil otherwise.
func poolPutStmt(p *Package, rc *resolved, stmt ast.Stmt) *ast.CallExpr {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || !isPoolPutCall(p, rc, call) {
		return nil
	}
	return call
}

// isPoolPutCall reports whether call invokes Pool.Put from a configured
// free-list package.
func isPoolPutCall(p *Package, rc *resolved, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	_, isPool := isPoolType(rc, sig.Recv().Type())
	return isPool
}

// isResetOf reports whether stmt is exactly `<arg>.reset()`.
func isResetOf(stmt ast.Stmt, arg string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "reset" {
		return false
	}
	return types.ExprString(sel.X) == arg
}

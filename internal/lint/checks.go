package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// pkgOf resolves the package an identifier's selector base refers to,
// returning nil when the base is not a package name (so aliased imports
// are handled and shadowing local variables named "time" are not).
func pkgOf(p *Package, x ast.Expr) *types.Package {
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// checkWallclock forbids wall-clock reads in simulated code: the engine's
// sim.Time is the only clock, so time.Now/Since/Until anywhere outside the
// CLI and tracing layers silently breaks replayability.
func checkWallclock(p *Package, f *ast.File, rc *resolved, rep reporter) {
	if pathAllowed(p.Path, rc.wallclockAllow) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(p, sel.X)
		if pkg == nil || pkg.Path() != "time" {
			return true
		}
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			rep(sel.Pos(), CheckWallclock,
				"time.%s reads the wall clock; simulated code must use sim.Engine time (allowed only under cmd/ and internal/trace)",
				sel.Sel.Name)
		}
		return true
	})
}

// randAllowed are the math/rand entry points that construct seeded
// generators; everything else on the package (Intn, Float64, Shuffle,
// Seed, ...) goes through the unseeded global source.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"NewZipf":    true, // takes a *rand.Rand, so it is already seeded
}

// checkRand forbids the global math/rand functions: only explicitly
// seeded generators (sim.RNG, or *rand.Rand built via rand.New) keep runs
// reproducible across processes and Go versions.
func checkRand(p *Package, f *ast.File, rep reporter) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgOf(p, sel.X)
		if pkg == nil {
			return true
		}
		if path := pkg.Path(); path != "math/rand" && path != "math/rand/v2" {
			return true
		}
		if randAllowed[sel.Sel.Name] {
			return true
		}
		// Types (rand.Rand, rand.Source) are legitimate in signatures.
		if obj, ok := p.Info.Uses[sel.Sel]; ok {
			if _, isType := obj.(*types.TypeName); isType {
				return true
			}
		}
		rep(sel.Pos(), CheckRand,
			"rand.%s uses the unseeded global source; use sim.RNG or a *rand.Rand seeded from the run configuration",
			sel.Sel.Name)
		return true
	})
}

// checkGoroutine polices `go` statements. Engine packages forbid them
// unconditionally: the discrete-event simulator is single-threaded by
// design, and a goroutine on the hot path reintroduces scheduler-dependent
// ordering. Everywhere else, concurrency must flow through the sanctioned
// sites (internal/sweep's bounded pool, cmd/) so that parallel sweeps keep
// the byte-identical-output contract instead of sprouting ad-hoc
// goroutines with their own result-ordering bugs.
func checkGoroutine(p *Package, f *ast.File, rc *resolved, rep reporter) {
	engine := rc.enginePkgs[p.Path]
	if !engine && pathAllowed(p.Path, rc.concurrencyAllow) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if engine {
				rep(g.Pos(), CheckGoroutine,
					"go statement in engine package %s; the simulator is single-threaded — schedule an event on sim.Engine instead",
					p.Path)
			} else {
				rep(g.Pos(), CheckGoroutine,
					"go statement outside the sanctioned concurrency sites; fan independent points out with sweep.Map (internal/sweep) instead")
			}
		}
		return true
	})
}

// isTimeType reports whether t (or its pointer base) is one of the
// configured simulated-time types.
func isTimeType(rc *resolved, t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return rc.timeTypes[obj.Pkg().Path()+"."+obj.Name()]
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// checkUnits enforces the typed-time boundary with go/types:
//
//  1. A conversion from a float expression to sim.Time truncates
//     picoseconds and must go through an audited helper in internal/sim
//     (Scale, DurationForBytes, DurationForFlops, FromPicoseconds).
//  2. Accumulating simulated time into a float64 (`sum += float64(t)` or
//     `sum += t.Seconds()`) is flagged: float summation is
//     non-associative, so the result depends on accumulation order —
//     accumulate in sim.Time and convert once.
func checkUnits(p *Package, f *ast.File, rc *resolved, rep reporter) {
	if pathAllowed(p.Path, rc.unitAllow) {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			tv, ok := p.Info.Types[n.Fun]
			if !ok || !tv.IsType() || !isTimeType(rc, tv.Type) || len(n.Args) != 1 {
				return true
			}
			if isFloat(p.Info.TypeOf(n.Args[0])) {
				rep(n.Pos(), CheckUnits,
					"float-to-time conversion truncates picoseconds; use an audited sim helper (Scale, DurationForBytes, DurationForFlops, FromPicoseconds)")
			}
		case *ast.AssignStmt:
			if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
				return true
			}
			if len(n.Lhs) != 1 || !isFloat(p.Info.TypeOf(n.Lhs[0])) {
				return true
			}
			if derivesFromTime(p, rc, n.Rhs[0]) {
				rep(n.Pos(), CheckUnits,
					"float accumulation of simulated-time values is order-dependent (non-associative); accumulate in sim.Time and convert once")
			}
		}
		return true
	})
}

// derivesFromTime reports whether an expression converts a simulated-time
// value to float — either a float(t) conversion or a unit method call on a
// time value (t.Seconds() and friends).
func derivesFromTime(p *Package, rc *resolved, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && isFloat(tv.Type) && len(call.Args) == 1 {
			if isTimeType(rc, p.Info.TypeOf(call.Args[0])) {
				found = true
				return false
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if isTimeType(rc, p.Info.TypeOf(sel.X)) && isFloat(p.Info.TypeOf(call)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

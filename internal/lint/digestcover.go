package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// checkDigestCover proves the memo cache's key soundness invariant: every
// struct type consumed by a memo.Hasher digest method must have each of
// its exported fields either written into the digest (a selector read in
// the digest function's body), covered by a nested digest call (the
// whole struct value passed along), or explicitly excluded with a
// //caislint:nodigest <reason> annotation at the field's declaration.
// Otherwise adding a field to config.Hardware or strategy.Options
// without a matching Hasher write silently serves stale cache hits — the
// classic incremental-recomputation hazard, caught here at build time
// instead of as a wrong answer later.
//
// Structs reached through a `for range` over a slice inside a digest
// function (faults.Schedule's []Fault) are held to the same standard via
// the range variable.
//
// Func-typed fields cannot be digested at all; they must be guarded by
// the digest package's Cacheable function (points carrying callbacks
// bypass the cache entirely), in addition to carrying an annotation.
func checkDigestCover(pass *Pass) {
	p := pass.Pkg
	if !pass.rc.digestPkgs[p.Path] {
		return
	}
	hashers := hasherTypes(p)
	if len(hashers) == 0 {
		return
	}
	cacheable := cacheableFields(pass.mod, p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !usesHasher(p, fd, hashers) {
				continue
			}
			for _, c := range consumedStructs(pass.mod, p, fd, hashers) {
				auditStructCoverage(pass, fd, c, cacheable)
			}
		}
	}
}

// hasherTypes collects the digest accumulator types declared in this
// package (named "Hasher" by convention, matching internal/memo).
func hasherTypes(p *Package) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	obj, ok := p.Types.Scope().Lookup("Hasher").(*types.TypeName)
	if ok {
		out[obj] = true
	}
	return out
}

// isHasher reports whether t (or its pointer base) is a registered
// hasher type.
func isHasher(t types.Type, hashers map[*types.TypeName]bool) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && hashers[named.Obj()]
}

// usesHasher reports whether a function is a digest function: its
// receiver or one of its parameters is a (pointer to) Hasher.
func usesHasher(p *Package, fd *ast.FuncDecl, hashers map[*types.TypeName]bool) bool {
	obj, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil && isHasher(recv.Type(), hashers) {
		return true
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isHasher(sig.Params().At(i).Type(), hashers) {
			return true
		}
	}
	return false
}

// consumed is one struct-typed variable a digest function is responsible
// for: a parameter, or a range variable over a slice of structs.
type consumed struct {
	v   *types.Var   // the variable holding the struct
	st  *types.Named // its (pointer-stripped) named struct type
	pos ast.Node     // where to anchor diagnostics
}

// moduleStruct returns the named module-declared struct type behind t
// (through one pointer), or nil.
func moduleStruct(m *modState, t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || !m.inModule(named.Obj().Pkg()) {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// consumedStructs collects the struct variables a digest function must
// cover: its module-struct parameters and every range variable iterating
// a slice of module structs inside its body.
func consumedStructs(mod *modState, p *Package, fd *ast.FuncDecl, hashers map[*types.TypeName]bool) []consumed {
	var out []consumed
	obj := p.Info.Defs[fd.Name].(*types.Func)
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		prm := sig.Params().At(i)
		if isHasher(prm.Type(), hashers) {
			continue
		}
		if st := moduleStruct(mod, prm.Type()); st != nil {
			out = append(out, consumed{v: prm, st: st, pos: fd.Name})
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		id, ok := rs.Value.(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		v, ok := p.Info.Defs[id].(*types.Var)
		if !ok {
			return true
		}
		if st := moduleStruct(mod, v.Type()); st != nil {
			out = append(out, consumed{v: v, st: st, pos: id})
		}
		return true
	})
	return out
}

// fieldUse describes how a digest function touches one consumed variable.
type fieldUse struct {
	fields map[string]bool // field names read through selectors
	whole  bool            // the variable escapes as a bare value (nested digest)
}

// usesOf scans a function body for every use of variable v: selector
// reads collect field names; any bare (non-selector-base) use means the
// whole value was handed to another function — a nested digest call —
// which transfers coverage responsibility to the callee (itself audited
// when it is a digest function).
func usesOf(p *Package, body *ast.BlockStmt, v *types.Var) fieldUse {
	u := fieldUse{fields: map[string]bool{}}
	selBase := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && p.Info.Uses[id] == v {
			selBase[id] = true
			u.fields[sel.Sel.Name] = true
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || selBase[id] || p.Info.Uses[id] != v {
			return true
		}
		u.whole = true
		return true
	})
	return u
}

// cacheableFields maps each struct type the digest package's Cacheable
// function inspects to the set of field names it references — the guard
// that routes callback-carrying points around the cache.
func cacheableFields(mod *modState, p *Package) map[*types.Named]map[string]bool {
	out := map[*types.Named]map[string]bool{}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Cacheable" || fd.Recv != nil || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			for i := 0; i < sig.Params().Len(); i++ {
				prm := sig.Params().At(i)
				st := moduleStruct(mod, prm.Type())
				if st == nil {
					continue
				}
				u := usesOf(p, fd.Body, prm)
				if out[st] == nil {
					out[st] = map[string]bool{}
				}
				for name := range u.fields {
					out[st][name] = true
				}
			}
		}
	}
	return out
}

// shortName renders a type as pkgname.Type for diagnostics.
func shortName(t *types.Named) string {
	return types.TypeString(t, func(pkg *types.Package) string { return pkg.Name() })
}

// auditStructCoverage reports every exported field of c's struct that the
// digest function fails to cover.
func auditStructCoverage(pass *Pass, fd *ast.FuncDecl, c consumed, cacheable map[*types.Named]map[string]bool) {
	p := pass.Pkg
	u := usesOf(p, fd.Body, c.v)
	st := c.st.Underlying().(*types.Struct)
	var missing, unguarded []string
	for i := 0; i < st.NumFields(); i++ {
		fld := st.Field(i)
		if !fld.Exported() {
			continue
		}
		_, isFuncField := fld.Type().Underlying().(*types.Signature)
		covered := u.whole || u.fields[fld.Name()] || pass.mod.fieldNodigest(fld)
		if !covered {
			missing = append(missing, fld.Name())
		}
		if isFuncField && !cacheable[c.st][fld.Name()] {
			unguarded = append(unguarded, fld.Name())
		}
	}
	sort.Strings(missing)
	sort.Strings(unguarded)
	for _, name := range missing {
		pass.rep(c.pos.Pos(), CheckDigestCover,
			"%s does not digest %s.%s; write it into the digest, pass the whole value to a nested digest, or annotate the field //caislint:nodigest <reason>",
			fd.Name.Name, shortName(c.st), name)
	}
	for _, name := range unguarded {
		pass.rep(c.pos.Pos(), CheckDigestCover,
			"func-typed field %s.%s is not guarded by Cacheable; callback-carrying points must bypass the cache (add a nil check in Cacheable)",
			shortName(c.st), name)
	}
}

package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

// TestSARIFShape pins the SARIF 2.1.0 surface consumers rely on: schema
// and version, one rule per registered check plus the directive rule,
// results referencing rules by id and index, and module-relative URIs
// against the SRCROOT base.
func TestSARIFShape(t *testing.T) {
	root := filepath.Join("/", "repo")
	diags := []Diagnostic{
		{File: filepath.Join(root, "internal", "gpu", "gpu.go"), Line: 12, Col: 3, Check: CheckWallclock, Msg: "boom"},
		{File: filepath.Join("/", "elsewhere", "x.go"), Line: 1, Col: 1, Check: CheckDirective, Msg: "stale"},
	}
	data, err := SARIF(diags, root)
	if err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-schema-2.1.0") {
		t.Errorf("version %q schema %q; want SARIF 2.1.0", log.Version, log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "caislint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	wantRules := len(Analyzers()) + 1 // + the synthetic directive rule
	if len(run.Tool.Driver.Rules) != wantRules {
		t.Fatalf("got %d rules, want %d (registry + directive)", len(run.Tool.Driver.Rules), wantRules)
	}
	ruleAt := map[int]string{}
	for i, r := range run.Tool.Driver.Rules {
		ruleAt[i] = r.ID
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has an empty description", r.ID)
		}
	}
	if len(run.Results) != len(diags) {
		t.Fatalf("got %d results, want %d", len(run.Results), len(diags))
	}
	for i, res := range run.Results {
		if res.RuleID != diags[i].Check {
			t.Errorf("result %d ruleId %q, want %q", i, res.RuleID, diags[i].Check)
		}
		if ruleAt[res.RuleIndex] != res.RuleID {
			t.Errorf("result %d ruleIndex %d resolves to %q, want %q", i, res.RuleIndex, ruleAt[res.RuleIndex], res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("result %d level %q", i, res.Level)
		}
	}
	// In-module path: relative URI under SRCROOT.
	art := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation
	if art.URI != "internal/gpu/gpu.go" || art.URIBaseID != "SRCROOT" {
		t.Errorf("in-module artifact = %+v, want internal/gpu/gpu.go under SRCROOT", art)
	}
	if region := run.Results[0].Locations[0].PhysicalLocation.Region; region.StartLine != 12 || region.StartColumn != 3 {
		t.Errorf("region = %+v, want 12:3", region)
	}
	// Out-of-module path: absolute URI, no base.
	art = run.Results[1].Locations[0].PhysicalLocation.ArtifactLocation
	if art.URIBaseID != "" || !strings.HasSuffix(art.URI, "elsewhere/x.go") {
		t.Errorf("out-of-module artifact = %+v, want absolute URI without a base", art)
	}
	if base, ok := run.OriginalURIBaseIDs["SRCROOT"]; !ok || !strings.HasPrefix(base.URI, "file://") {
		t.Errorf("originalUriBaseIds = %+v, want a file:// SRCROOT", run.OriginalURIBaseIDs)
	}
}

// TestSARIFEmpty keeps the empty log well-formed: rules present, results
// an empty array (not null) so strict consumers accept it.
func TestSARIFEmpty(t *testing.T) {
	data, err := SARIF(nil, "/repo")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	runs := raw["runs"].([]any)
	results, ok := runs[0].(map[string]any)["results"].([]any)
	if !ok {
		t.Fatalf("results is %T, want an empty JSON array", runs[0].(map[string]any)["results"])
	}
	if len(results) != 0 {
		t.Fatalf("empty log has %d results", len(results))
	}
}

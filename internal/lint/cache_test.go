package lint

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// copyFixtureModule copies the fixture module into a temp dir so tests
// can edit files and observe cache invalidation.
func copyFixtureModule(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	err := filepath.WalkDir("testdata/src", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel("testdata/src", path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// rewriteCacheEntry mutates one package's cached diagnostics in place,
// keeping its key, so a subsequent hit is observable from the outside.
func rewriteCacheEntry(t *testing.T, path, pkg string, diags []Diagnostic) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	e, ok := cf.Entries[pkg]
	if !ok {
		t.Fatalf("cache has no entry for %s", pkg)
	}
	e.Diags = diags
	cf.Entries[pkg] = e
	out, err := json.Marshal(cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalCache(t *testing.T) {
	root := copyFixtureModule(t)
	cachePath := filepath.Join(t.TempDir(), "caislint.json")
	cfg := Config{Dir: root, CachePath: cachePath}

	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh) == 0 {
		t.Fatal("fixture module produced no diagnostics")
	}
	cached, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatal("cached run differs from fresh run")
	}

	// Prove the second run actually served from the cache: plant a
	// sentinel diagnostic under fixture/internal/pool's current key and
	// watch it come back with its path rebased onto the module root.
	sentinel := Diagnostic{File: "internal/pool/pool.go", Line: 1, Col: 1, Check: CheckRand, Msg: "sentinel from cache"}
	rewriteCacheEntry(t, cachePath, "fixture/internal/pool", []Diagnostic{sentinel})
	planted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range planted {
		if d.Msg == sentinel.Msg {
			found = true
			if d.File != filepath.Join(root, "internal", "pool", "pool.go") {
				t.Errorf("sentinel path = %s, want it rebased under the module root", d.File)
			}
		}
	}
	if !found {
		t.Fatal("sentinel not served: the second run did not use the cache")
	}

	// Editing the package invalidates its entry (content hash changes),
	// so the sentinel disappears and the true diagnostics return.
	poolFile := filepath.Join(root, "internal", "pool", "pool.go")
	data, err := os.ReadFile(poolFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(poolFile, append(data, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	rewriteCacheEntry(t, cachePath, "fixture/internal/pool", []Diagnostic{sentinel})
	after, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range after {
		if d.Msg == sentinel.Msg {
			t.Fatal("sentinel survived a package edit: stale cache entry served")
		}
	}
	if !reflect.DeepEqual(fresh, after) {
		t.Fatal("diagnostics after an inert edit differ from the fresh run")
	}
}

// TestCacheDependencyInvalidation: editing a dependency must invalidate
// its dependents — the whole-module passes read dependency bodies.
func TestCacheDependencyInvalidation(t *testing.T) {
	root := copyFixtureModule(t)
	cachePath := filepath.Join(t.TempDir(), "caislint.json")
	cfg := Config{Dir: root, CachePath: cachePath}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// fixture/internal/sim depends on fixture/internal/util (taintwall
	// fixtures). Plant a sentinel for sim, then edit util.
	sentinel := Diagnostic{File: "internal/sim/sim.go", Line: 1, Col: 1, Check: CheckTaintWall, Msg: "dep sentinel"}
	utilFile := filepath.Join(root, "internal", "util", "util.go")
	data, err := os.ReadFile(utilFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(utilFile, append(data, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	rewriteCacheEntry(t, cachePath, "fixture/internal/sim", []Diagnostic{sentinel})
	diags, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Msg == sentinel.Msg {
			t.Fatal("editing a dependency did not invalidate the dependent package")
		}
	}
}

// TestCacheVersionAndCorruption: a version-mismatched or corrupt cache
// file degrades to a full run instead of failing or serving stale data.
func TestCacheVersionAndCorruption(t *testing.T) {
	root := copyFixtureModule(t)
	cachePath := filepath.Join(t.TempDir(), "caislint.json")
	cfg := Config{Dir: root, CachePath: cachePath}
	fresh, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Downgrade the version and plant a sentinel: the whole file must be
	// discarded, so the sentinel never surfaces.
	sentinel := Diagnostic{File: "internal/pool/pool.go", Line: 1, Col: 1, Check: CheckRand, Msg: "versioned sentinel"}
	rewriteCacheEntry(t, cachePath, "fixture/internal/pool", []Diagnostic{sentinel})
	data, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil {
		t.Fatal(err)
	}
	cf.Version = "caislint/0"
	out, err := json.Marshal(cf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cachePath, out, 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Msg == sentinel.Msg {
			t.Fatal("version-mismatched cache entry served")
		}
	}
	if !reflect.DeepEqual(fresh, diags) {
		t.Fatal("full re-run after version mismatch differs from fresh run")
	}

	// Corrupt file: still a clean full run.
	if err := os.WriteFile(cachePath, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	diags, err = Run(cfg)
	if err != nil {
		t.Fatalf("corrupt cache file failed the run: %v", err)
	}
	if !reflect.DeepEqual(fresh, diags) {
		t.Fatal("run with corrupt cache differs from fresh run")
	}
	// And the run rewrote it into a valid store.
	data, err = os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &cf); err != nil || cf.Version != cacheSchemaVersion {
		t.Fatalf("cache not rewritten after corruption: %v (version %q)", err, cf.Version)
	}
}

func TestDepClosure(t *testing.T) {
	imports := map[string][]string{
		"a": {"b"},
		"b": {"c", "b"},
		"c": nil,
	}
	got := depClosure("a", imports)
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("depClosure(a) = %v, want %v", got, want)
	}
	if got := depClosure("c", imports); !reflect.DeepEqual(got, []string{"c"}) {
		t.Fatalf("depClosure(c) = %v", got)
	}
}

// BenchmarkLintModule measures a full whole-module analysis over the
// fixture module — the end-to-end cost `make lint` pays per package tree
// (load, type check, all registered passes).
func BenchmarkLintModule(b *testing.B) {
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Dir: root}); err != nil {
			b.Fatal(err)
		}
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// cacheSchemaVersion names the analyzer generation. Bump it whenever a
// check's semantics change: cached diagnostics from an older analyzer
// must never satisfy a newer gate — the same schema-versioning discipline
// the memo cache applies to simulation points.
const cacheSchemaVersion = "caislint/2"

// Cache is the incremental-mode store: per-package diagnostics keyed by a
// content hash covering the package's own files, the files of every
// transitive module dependency, the policy configuration and the enabled
// check set. A package whose key is unchanged is skipped entirely — no
// parse, no type check, no analysis — which turns repeated CI and
// pre-commit runs over a mostly-unchanged tree into hash comparisons.
//
// Dependencies are part of the key because the whole-module passes make
// package results depend on dependency bodies: digestcover reads field
// annotations from the digested structs' packages, taintwall follows
// callees, exhaustive reads enum const blocks, and the type checker
// itself sees dependency APIs.
type Cache struct {
	path    string
	entries map[string]cacheEntry
	keys    map[string]string // import path -> current content key
	root    string
	live    map[string]bool // packages seen this run (pruning)
	Hits    int
	Misses  int
}

type cacheEntry struct {
	Key   string       `json:"key"`
	Diags []Diagnostic `json:"diags"`
}

type cacheFile struct {
	Version string                `json:"version"`
	Entries map[string]cacheEntry `json:"entries"`
}

// openCache loads (or initializes) the cache at path and computes the
// current content key of every discovered module package. A missing,
// unreadable or version-mismatched cache file degrades to an empty cache,
// never an error: incremental mode must always be safe to enable.
func openCache(path string, l *loader, policyFP string, checks []string) (*Cache, error) {
	c := &Cache{
		path:    path,
		entries: map[string]cacheEntry{},
		keys:    map[string]string{},
		root:    l.root,
		live:    map[string]bool{},
	}
	if data, err := os.ReadFile(path); err == nil {
		var cf cacheFile
		if json.Unmarshal(data, &cf) == nil && cf.Version == cacheSchemaVersion && cf.Entries != nil {
			c.entries = cf.Entries
		}
	}
	if err := c.computeKeys(l, policyFP, checks); err != nil {
		return nil, err
	}
	return c, nil
}

// computeKeys hashes every discovered package and closes the hash over
// the module-internal import graph.
func (c *Cache) computeKeys(l *loader, policyFP string, checks []string) error {
	paths := sortedKeys(l.dirs)
	content := map[string]uint64{} // pkg -> hash of its own files
	imports := map[string][]string{}
	for _, ip := range paths {
		h, imps, err := hashPackageDir(l.dirs[ip], l.module)
		if err != nil {
			return err
		}
		content[ip] = h
		imports[ip] = imps
	}
	base := fmt.Sprintf("%s|%s|%s", cacheSchemaVersion, policyFP, strings.Join(checks, ","))
	for _, ip := range paths {
		closure := depClosure(ip, imports)
		h := fnv.New64a()
		fmt.Fprintf(h, "%d:%s", len(base), base)
		for _, dep := range closure {
			fmt.Fprintf(h, "%d:%s=%016x;", len(dep), dep, content[dep])
		}
		c.keys[ip] = fmt.Sprintf("%016x", h.Sum64())
	}
	return nil
}

// depClosure returns the sorted transitive module-internal dependency
// closure of a package, itself included.
func depClosure(ip string, imports map[string][]string) []string {
	seen := map[string]bool{}
	stack := []string{ip}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[p] {
			continue
		}
		seen[p] = true
		stack = append(stack, imports[p]...)
	}
	return sortedKeys(seen)
}

// hashPackageDir hashes a package directory's buildable Go files and
// collects its module-internal imports. Imports come from a lightweight
// imports-only parse — no type checking.
func hashPackageDir(dir, module string) (uint64, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	h := fnv.New64a()
	impSet := map[string]bool{}
	fset := token.NewFileSet()
	for _, n := range names {
		data, err := os.ReadFile(filepath.Join(dir, n))
		if err != nil {
			return 0, nil, err
		}
		fmt.Fprintf(h, "%d:%s:%d:", len(n), n, len(data))
		h.Write(data)
		f, err := parser.ParseFile(fset, n, data, parser.ImportsOnly)
		if err != nil {
			continue // a syntax error surfaces later, from the real load
		}
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == module || strings.HasPrefix(ip, module+"/") {
				impSet[ip] = true
			}
		}
	}
	return h.Sum64(), sortedKeys(impSet), nil
}

// get returns the cached diagnostics for a package when its key is
// current, rebasing stored module-relative paths onto the current root.
func (c *Cache) get(ip string) ([]Diagnostic, bool) {
	c.live[ip] = true
	e, ok := c.entries[ip]
	if !ok || e.Key != c.keys[ip] {
		c.Misses++
		return nil, false
	}
	c.Hits++
	out := make([]Diagnostic, len(e.Diags))
	for i, d := range e.Diags {
		d.File = filepath.Join(c.root, filepath.FromSlash(d.File))
		out[i] = d
	}
	return out, true
}

// put stores a package's freshly computed diagnostics under its current
// key, with file paths stored module-relative so the cache survives a
// checkout moving.
func (c *Cache) put(ip string, diags []Diagnostic) {
	c.live[ip] = true
	stored := make([]Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(c.root, d.File); err == nil {
			d.File = filepath.ToSlash(rel)
		}
		stored[i] = d
	}
	c.entries[ip] = cacheEntry{Key: c.keys[ip], Diags: stored}
}

// save writes the cache back, dropping entries for packages that no
// longer exist. Entries for packages outside this run's patterns are
// kept — a scoped run must not evict the rest of the tree.
func (c *Cache) save() error {
	for _, ip := range sortedKeys(c.entries) {
		if _, stillExists := c.keys[ip]; !stillExists {
			delete(c.entries, ip)
		}
	}
	data, err := json.MarshalIndent(cacheFile{Version: cacheSchemaVersion, Entries: c.entries}, "", "\t")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(c.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(c.path, append(data, '\n'), 0o644)
}

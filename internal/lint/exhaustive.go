package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// checkExhaustive enforces enum coverage: a switch over an enum-like
// module type must cover every declared constant or carry an explicit
// default clause, and a map literal keyed by such a type must cover every
// constant outright (a map has no default). This catches the "added
// LinkDown handling everywhere except Fault.String" class of drift: a
// new enum member compiles fine while half the dispatch sites silently
// fall through.
//
// Enum-like means: a named type declared in this module whose underlying
// type is an integer or string basic type, with at least two package-
// level constants of exactly that type in its defining package
// (faults.Kind, faults.Dir, attrib.Bucket, attrib.Class, model.OpKind,
// the strategy enums, ...). Constants of a different declared type —
// like attrib.NumBuckets, which is an int — do not join the enum.
//
// Switches or literals mentioning any non-constant key are skipped: no
// coverage claim can be proven about them.
func checkExhaustive(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SwitchStmt:
				exhaustiveSwitch(pass, n)
			case *ast.CompositeLit:
				exhaustiveMapLit(pass, n)
			}
			return true
		})
	}
}

// enumMember is one declared constant of an enum type.
type enumMember struct {
	name string
	val  string // exact constant value, the identity used for coverage
}

// enumMembers returns the enum members of a named type, or nil when the
// type does not qualify as enum-like. Memoized per Run.
func (m *modState) enumMembers(named *types.Named) []enumMember {
	obj := named.Obj()
	if !m.inModule(obj.Pkg()) {
		return nil
	}
	if cached, ok := m.enums[obj]; ok {
		return cached
	}
	members := []enumMember{}
	basic, ok := named.Underlying().(*types.Basic)
	if ok && basic.Info()&(types.IsInteger|types.IsString) != 0 {
		scope := obj.Pkg().Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), named) {
				continue
			}
			members = append(members, enumMember{name: name, val: c.Val().ExactString()})
		}
		sort.Slice(members, func(i, j int) bool {
			if members[i].val != members[j].val {
				return members[i].val < members[j].val
			}
			return members[i].name < members[j].name
		})
	}
	if len(members) < 2 {
		members = nil
	}
	m.enums[obj] = members
	return members
}

// enumOf classifies an expression's type, returning its named enum type
// and members when it qualifies.
func enumOf(pass *Pass, t types.Type) (*types.Named, []enumMember) {
	named, ok := t.(*types.Named)
	if !ok {
		return nil, nil
	}
	members := pass.mod.enumMembers(named)
	if members == nil {
		return nil, nil
	}
	return named, members
}

// missingMembers returns the names of declared members whose values are
// absent from covered, collapsing aliases (two names with one value are
// covered together, reported once).
func missingMembers(members []enumMember, covered map[string]bool) []string {
	var missing []string
	seen := map[string]bool{}
	for _, mem := range members {
		if covered[mem.val] || seen[mem.val] {
			continue
		}
		seen[mem.val] = true
		missing = append(missing, mem.name)
	}
	return missing
}

// exhaustiveSwitch audits one value switch.
func exhaustiveSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	named, members := enumOf(pass, pass.Pkg.Info.TypeOf(sw.Tag))
	if named == nil {
		return
	}
	covered := map[string]bool{}
	for _, clause := range sw.Body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			return // explicit default: the author handled the remainder
		}
		for _, e := range cc.List {
			tv, ok := pass.Pkg.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: coverage unprovable, skip
			}
			covered[tv.Value.ExactString()] = true
		}
	}
	if missing := missingMembers(members, covered); len(missing) > 0 {
		pass.rep(sw.Pos(), CheckExhaustive,
			"switch on %s is not exhaustive: missing %s (add the cases, a default clause, or //caislint:ignore exhaustive <reason>)",
			shortName(named), strings.Join(missing, ", "))
	}
}

// exhaustiveMapLit audits one map literal keyed by an enum type.
func exhaustiveMapLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	mt, ok := t.Underlying().(*types.Map)
	if !ok {
		return
	}
	named, members := enumOf(pass, mt.Key())
	if named == nil {
		return
	}
	covered := map[string]bool{}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return
		}
		tv, ok := pass.Pkg.Info.Types[kv.Key]
		if !ok || tv.Value == nil {
			return // computed key: coverage unprovable, skip
		}
		covered[tv.Value.ExactString()] = true
	}
	if missing := missingMembers(members, covered); len(missing) > 0 {
		pass.rep(lit.Pos(), CheckExhaustive,
			"map literal over %s is not exhaustive: missing %s (cover every constant or add //caislint:ignore exhaustive <reason>)",
			shortName(named), strings.Join(missing, ", "))
	}
}

package lint

import (
	"encoding/json"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// wantRe matches expectation markers in fixture files: "lintwant:<check>"
// expects a diagnostic of that check on the marker's own line;
// "lintwant+1:<check>" expects it on the next line (for diagnostics that
// land on directive comments, which cannot carry a trailing marker).
var wantRe = regexp.MustCompile(`lintwant(\+1)?:([a-z-]+)`)

// collectWants scans every fixture file for markers and returns a multiset
// keyed by "relpath:line:check".
func collectWants(t *testing.T, root string) map[string]int {
	t.Helper()
	want := map[string]int{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				ln := i + 1
				if m[1] == "+1" {
					ln++
				}
				want[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), ln, m[2])]++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// TestFixtures runs the analyzer over the fixture module and checks the
// reported diagnostics against the lintwant markers, both ways: every
// marker must be hit and nothing unmarked may be reported.
func TestFixtures(t *testing.T) {
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Config{Dir: root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture tree produced no diagnostics; the fixtures exist to fail")
	}
	got := map[string]int{}
	for _, d := range diags {
		rel, err := filepath.Rel(root, d.File)
		if err != nil {
			t.Fatal(err)
		}
		got[fmt.Sprintf("%s:%d:%s", filepath.ToSlash(rel), d.Line, d.Check)]++
	}
	want := collectWants(t, root)

	keys := map[string]bool{}
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		if got[k] != want[k] {
			t.Errorf("%s: got %d diagnostic(s), marker expects %d", k, got[k], want[k])
		}
	}
	if t.Failed() {
		for _, d := range diags {
			t.Logf("reported: %s", d)
		}
	}
}

// TestFixturesSorted checks Run's ordering contract: by file, then line,
// then column.
func TestFixturesSorted(t *testing.T) {
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(Config{Dir: root})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.File > b.File || (a.File == b.File && (a.Line > b.Line || (a.Line == b.Line && a.Col > b.Col))) {
			t.Fatalf("diagnostics out of order: %s before %s", a, b)
		}
	}
}

// TestExpandPatterns exercises the pattern resolver against the fixture
// module layout.
func TestExpandPatterns(t *testing.T) {
	root, err := filepath.Abs("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	l, err := newLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		patterns []string
		want     []string
	}{
		{[]string{"./..."}, []string{
			"fixture/cmd/tool", "fixture/internal/cfg", "fixture/internal/faults",
			"fixture/internal/gpu", "fixture/internal/memo", "fixture/internal/pool",
			"fixture/internal/serve", "fixture/internal/sim", "fixture/internal/sweep",
			"fixture/internal/trace", "fixture/internal/util",
		}},
		{[]string{"./internal/..."}, []string{
			"fixture/internal/cfg", "fixture/internal/faults", "fixture/internal/gpu",
			"fixture/internal/memo", "fixture/internal/pool", "fixture/internal/serve",
			"fixture/internal/sim", "fixture/internal/sweep", "fixture/internal/trace",
			"fixture/internal/util",
		}},
		{[]string{"./internal/sim", "./cmd/tool"}, []string{
			"fixture/cmd/tool", "fixture/internal/sim",
		}},
		{[]string{"fixture/internal/sim"}, []string{"fixture/internal/sim"}},
	}
	for _, c := range cases {
		got, err := l.expand(c.patterns)
		if err != nil {
			t.Errorf("expand(%v): %v", c.patterns, err)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("expand(%v) = %v, want %v", c.patterns, got, c.want)
		}
	}
	if _, err := l.expand([]string{"./does/not/exist"}); err == nil {
		t.Error("expand of a nonexistent package did not fail")
	}
}

// TestDiagnosticJSON pins the machine-readable shape -json emits.
func TestDiagnosticJSON(t *testing.T) {
	d := Diagnostic{File: "a.go", Line: 3, Col: 7, Check: CheckMapOrder, Msg: "boom"}
	data, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"file":"a.go","line":3,"col":7,"check":"map-order","msg":"boom"}`
	if string(data) != want {
		t.Errorf("json = %s, want %s", data, want)
	}
	if s := d.String(); s != "a.go:3:7: [map-order] boom" {
		t.Errorf("String() = %q", s)
	}
}

// TestRepoClean lints the real repository: the tree must stay free of
// determinism and unit-safety violations. This is the same gate CI runs
// via cmd/caislint, enforced from the test suite as well.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("module root not found: %v", err)
	}
	diags, err := Run(Config{Dir: root})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

package lint

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseSrc parses a synthetic file and runs directive extraction plus
// range resolution, the way lintPackage does.
func parseSrc(t *testing.T, src string) (*token.FileSet, *directiveSet, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ds, diags := parseDirectives(fset, f)
	ds.resolveRanges(fset, f)
	return fset, ds, diags
}

func diagMsgs(diags []Diagnostic) string {
	var parts []string
	for _, d := range diags {
		parts = append(parts, d.Msg)
	}
	return strings.Join(parts, " | ")
}

func TestDirectiveMultiCheck(t *testing.T) {
	_, ds, diags := parseSrc(t, `package p

func f() {
	//caislint:ignore wallclock,rand,taintwall one comment, three checks
	_ = 1
}
`)
	if len(diags) != 0 {
		t.Fatalf("well-formed multi-check directive reported: %s", diagMsgs(diags))
	}
	if len(ds.list) != 3 {
		t.Fatalf("got %d directives, want 3 (one per named check)", len(ds.list))
	}
	want := []string{CheckWallclock, CheckRand, CheckTaintWall}
	for i, d := range ds.list {
		if d.check != want[i] {
			t.Errorf("directive %d covers %q, want %q", i, d.check, want[i])
		}
		if d.fileWide {
			t.Errorf("directive %d is file-wide, want line-scoped", i)
		}
	}
	// Each expanded directive suppresses independently.
	if !ds.suppressed(CheckRand, ds.list[0].line+1) {
		t.Error("rand not suppressed on the annotated line")
	}
	if ds.suppressed(CheckUnits, ds.list[0].line+1) {
		t.Error("units suppressed though the directive never named it")
	}
}

func TestDirectiveMultiCheckMissingReason(t *testing.T) {
	_, ds, diags := parseSrc(t, `package p

//caislint:ignore wallclock,rand
func f() {}
`)
	if len(ds.list) != 0 {
		t.Fatalf("reason-less directive produced %d suppressions, want 0", len(ds.list))
	}
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "mandatory reason") {
		t.Fatalf("want one missing-reason diagnostic, got: %s", diagMsgs(diags))
	}
}

func TestDirectiveMultiCheckUnknownName(t *testing.T) {
	_, ds, diags := parseSrc(t, `package p

//caislint:ignore wallclock,frob,rand,blah the list mixes known and unknown
func f() {}
`)
	if len(ds.list) != 0 {
		t.Fatalf("poisoned directive produced %d suppressions, want 0", len(ds.list))
	}
	if len(diags) != 2 {
		t.Fatalf("want one diagnostic per unknown name, got %d: %s", len(diags), diagMsgs(diags))
	}
	for _, d := range diags {
		if !strings.Contains(d.Msg, "unknown check") {
			t.Errorf("unexpected diagnostic: %s", d.Msg)
		}
	}
}

func TestDirectiveNodigestValidation(t *testing.T) {
	_, _, diags := parseSrc(t, `package p

type s struct {
	A int //caislint:nodigest cosmetic, display only
	B int //caislint:nodigest
}
`)
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "nodigest is missing its mandatory reason") {
		t.Fatalf("want exactly the reason-less nodigest reported, got: %s", diagMsgs(diags))
	}
}

// TestDirectiveStatementRange is the unit-level regression for multi-line
// suppression: a directive above a statement covers every line the
// statement spans, and a directive above a func covers only the func line
// (never the whole body).
func TestDirectiveStatementRange(t *testing.T) {
	_, ds, diags := parseSrc(t, `package p

func f() string {
	//caislint:ignore wallclock spans the whole call below
	return sprintf("%v %v",
		1,
		2)
}

//caislint:ignore rand must not blanket the body
func g() int {
	return 3
}

func sprintf(string, ...any) string { return "" }
`)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %s", diagMsgs(diags))
	}
	var wall, rand *directive
	for _, d := range ds.list {
		switch d.check {
		case CheckWallclock:
			wall = d
		case CheckRand:
			rand = d
		}
	}
	if wall == nil || rand == nil {
		t.Fatal("directives not parsed")
	}
	// The return statement starts on wall.line+1 and ends two lines later.
	if wall.covEnd != wall.line+3 {
		t.Errorf("wallclock directive covers through line %d, want %d (statement end)", wall.covEnd, wall.line+3)
	}
	if !ds.suppressed(CheckWallclock, wall.line+3) {
		t.Error("last line of the multi-line statement not suppressed")
	}
	// FuncDecls are excluded from widening: coverage stays at line+1.
	if rand.covEnd != rand.line+1 {
		t.Errorf("func-level directive covers through line %d, want %d (func line only)", rand.covEnd, rand.line+1)
	}
	if ds.suppressed(CheckRand, rand.line+2) {
		t.Error("directive above func suppressed inside the body")
	}
}

func TestDirectiveUnusedReported(t *testing.T) {
	fset, ds, _ := parseSrc(t, `package p

//caislint:ignore wallclock,rand only one half will match
func f() {}
`)
	// Simulate a wallclock hit on the func line; the rand half stays stale.
	if !ds.suppressed(CheckWallclock, ds.list[0].line+1) {
		t.Fatal("wallclock half did not suppress")
	}
	allRan := map[string]bool{}
	for _, a := range Analyzers() {
		allRan[a.Name] = true
	}
	unused := ds.unused(fset, allRan)
	if len(unused) != 1 || !strings.Contains(unused[0].Msg, "for rand") {
		t.Fatalf("want exactly the rand half reported stale, got: %+v", unused)
	}
	// Under -checks subsetting, a directive for a check that did not run
	// cannot be known-stale and must not be reported.
	if got := ds.unused(fset, map[string]bool{CheckWallclock: true}); len(got) != 0 {
		t.Fatalf("rand did not run, its directive must not be reported stale, got: %+v", got)
	}
}

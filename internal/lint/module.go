package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// modState is the whole-module view shared by every package analyzed in
// one Run. The cross-package passes use it to reach beyond the package
// under analysis: digestcover reads field annotations from the digested
// structs' defining packages, exhaustive collects enum const blocks from
// their declaring package, and taintwall walks callee bodies across the
// module's call graph. All lookups are lazy and memoized — a package's
// AST and type information load at most once per Run, shared with the
// per-package analysis itself through the loader.
type modState struct {
	l  *loader
	rc *resolved

	decls    map[string]map[*types.Func]*ast.FuncDecl // pkg path -> func object -> decl
	nodigest map[string]map[token.Pos]bool            // pkg path -> annotated field-name positions
	enums    map[*types.TypeName][]enumMember
	taints   map[*types.Func]*taintFacts
	taintRun map[*types.Func]bool // DFS guard for call-graph cycles
}

func newModState(l *loader, rc *resolved) *modState {
	return &modState{
		l:        l,
		rc:       rc,
		decls:    map[string]map[*types.Func]*ast.FuncDecl{},
		nodigest: map[string]map[token.Pos]bool{},
		enums:    map[*types.TypeName][]enumMember{},
		taints:   map[*types.Func]*taintFacts{},
		taintRun: map[*types.Func]bool{},
	}
}

// inModule reports whether a types.Package belongs to the module under
// analysis (as opposed to the standard library).
func (m *modState) inModule(pkg *types.Package) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == m.l.module || strings.HasPrefix(path, m.l.module+"/")
}

// pkgFor loads the module package a types.Package corresponds to,
// returning nil for non-module packages or load failures (the package
// already type-checked once to get here, so failures are theoretical).
func (m *modState) pkgFor(pkg *types.Package) *Package {
	if !m.inModule(pkg) {
		return nil
	}
	p, err := m.l.load(pkg.Path())
	if err != nil {
		return nil
	}
	return p
}

// declOf resolves a module function or method object to its declaration,
// building a per-package index on first use.
func (m *modState) declOf(fn *types.Func) (*ast.FuncDecl, *Package) {
	p := m.pkgFor(fn.Pkg())
	if p == nil {
		return nil, nil
	}
	idx, ok := m.decls[p.Path]
	if !ok {
		idx = map[*types.Func]*ast.FuncDecl{}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					idx[obj] = fd
				}
			}
		}
		m.decls[p.Path] = idx
	}
	return idx[fn], p
}

// nodigestFields returns the set of field-name positions carrying a
// well-formed //caislint:nodigest annotation, resolved through the AST: a
// field is annotated by its own doc comment or its own trailing comment,
// never by a neighboring field's (a trailing annotation on one field must
// not bleed into the next line's field). Malformed annotations (missing
// reason) are reported by the owning package's directive parsing and
// deliberately NOT honored here, so a reason-less exclusion still fails
// the digest-coverage gate.
func (m *modState) nodigestFields(p *Package) map[token.Pos]bool {
	if set, ok := m.nodigest[p.Path]; ok {
		return set
	}
	set := map[token.Pos]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				if !hasNodigest(fld.Doc) && !hasNodigest(fld.Comment) {
					continue
				}
				for _, name := range fld.Names {
					set[name.Pos()] = true
				}
			}
			return true
		})
	}
	m.nodigest[p.Path] = set
	return set
}

// hasNodigest reports whether a comment group carries a well-formed
// (reason-bearing) nodigest annotation.
func hasNodigest(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		rest, ok := strings.CutPrefix(strings.TrimSpace(text), "caislint:nodigest")
		if ok && strings.TrimSpace(rest) != "" {
			return true
		}
	}
	return false
}

// fieldNodigest reports whether a struct field carries a well-formed
// //caislint:nodigest annotation at its declaration.
func (m *modState) fieldNodigest(field *types.Var) bool {
	p := m.pkgFor(field.Pkg())
	if p == nil {
		return false
	}
	return m.nodigestFields(p)[field.Pos()]
}

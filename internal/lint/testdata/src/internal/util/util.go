// Package util sits outside both the engine package list and the
// concurrency allowlist: raw goroutines are violations here, while going
// through sweep.Map is the sanctioned pattern and passes.
package util

import "fixture/internal/sweep"

// Background spawns a raw goroutine outside the sanctioned sites.
func Background(ch chan int) {
	go func() { ch <- 1 }() // lintwant:goroutine
}

// Squares fans work out the sanctioned way: calling into sweep.Map is not
// a `go` statement in this package and must lint clean.
func Squares(n int) []int {
	return sweep.Map(n, 4, func(i int) int { return i * i })
}

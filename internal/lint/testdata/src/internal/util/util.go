// Package util sits outside the engine package list, so the goroutine
// check does not apply here.
package util

// Background spawns a goroutine outside the engine (allowed).
func Background(ch chan int) {
	go func() { ch <- 1 }()
}

package util

import (
	"math/rand"
	"time"
)

// Stamp wraps the wall clock. The ignore below silences the direct
// wallclock check at this definition only — taintwall still flags every
// call site in simulated code, so the helper cannot launder time.Now.
//
//caislint:ignore wallclock audited for CLI status output, never simulation
func Stamp() int64 { return time.Now().UnixNano() }

// StampTwice reaches the wall clock through Stamp. util is not a
// sanctioned package, so both call sites here are taintwall violations
// themselves, and StampTwice propagates the taint one hop further.
func StampTwice() int64 { return Stamp() + Stamp() } // lintwant:taintwall lintwant:taintwall

// Jitter wraps the unseeded global source: the direct rand check fires
// at the definition, and callers are flagged by taintwall.
func Jitter() float64 { return rand.Float64() } // lintwant:rand

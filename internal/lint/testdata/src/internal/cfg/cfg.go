// Package cfg declares the struct types the fixture memo package
// digests. The digestcover pass reads the //caislint:nodigest field
// annotations from here — across the package boundary — when auditing
// the digest functions in fixture/internal/memo.
package cfg

// Params is digested by memo's params method. Label is neither digested
// nor annotated (a violation at the digest site); Note is deliberately
// excluded with a reasoned annotation; Bad carries a reason-less
// annotation, which is malformed (reported here) and not honored (so the
// digest site is also flagged for it).
type Params struct {
	Width int
	Depth int
	Label string
	Note  string //caislint:nodigest cosmetic note, display only
	// lintwant+1:directive
	Bad int //caislint:nodigest
}

// Hooks carries callbacks. Both are annotated as undigestable, but only
// OnStart is guarded by memo.Cacheable — the missing OnFinish guard is
// reported at every digest site that consumes Hooks.
type Hooks struct {
	Steps    uint64
	OnStart  func() //caislint:nodigest opaque callback, guarded by Cacheable
	OnFinish func() //caislint:nodigest opaque callback, guard missing on purpose
}

// Item is reached through a range variable inside memo's batch digest;
// Tag is neither digested nor annotated.
type Item struct {
	ID   int
	Name string //caislint:nodigest cosmetic label
	Tag  string
}

// Batch is the slice carrier for Item.
type Batch struct {
	Items []Item
}

// Package pool is the fixture stand-in for the module's free-list
// package: the poolreset check keys off the fully-qualified type
// fixture/internal/pool.Pool.
package pool

// Pool is a minimal typed free list.
type Pool[T any] struct {
	free []*T
}

// Get pops a free object or allocates one.
func (p *Pool[T]) Get() *T {
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return new(T)
}

// Put returns an object to the free list.
func (p *Pool[T]) Put(x *T) {
	p.free = append(p.free, x)
}

// Package memo mirrors the production digest package: digestcover
// resolves it from the module path (fixture/internal/memo) and audits
// every struct type its Hasher functions consume.
package memo

import "fixture/internal/cfg"

// Hasher is the fixture digest accumulator, name-matched by the check.
type Hasher struct{ sum uint64 }

// Uint64 folds one value into the digest.
func (h *Hasher) Uint64(v uint64) { h.sum = h.sum*1099511628211 + v }

// params misses cfg.Params.Label outright, and cfg.Params.Bad carries a
// reason-less nodigest annotation that is not honored: two diagnostics
// on this line.
func (h *Hasher) params(p cfg.Params) { // lintwant:digestcover lintwant:digestcover
	h.Uint64(uint64(p.Width))
	h.Uint64(uint64(p.Depth))
}

// hooks digests the only plain field; both callbacks are annotated, but
// cfg.Hooks.OnFinish is not guarded by Cacheable.
func (h *Hasher) hooks(o cfg.Hooks) { // lintwant:digestcover
	h.Uint64(o.Steps)
}

// batch covers cfg.Batch itself (Items is read), then iterates: the
// range variable holds cfg.Item, whose Tag field is uncovered. The
// diagnostic anchors on the range statement.
func (h *Hasher) batch(b cfg.Batch) {
	h.Uint64(uint64(len(b.Items)))
	for _, it := range b.Items { // lintwant:digestcover
		h.Uint64(uint64(it.ID))
	}
}

// Key hands each struct to a nested digest as a whole value, which
// transfers per-field responsibility to the callee — no missing-field
// diagnostics here. The unguarded func field of cfg.Hooks is still
// reported: every digest function consuming Hooks is a hazard site.
func Key(h *Hasher, p cfg.Params, o cfg.Hooks, b cfg.Batch) uint64 { // lintwant:digestcover
	h.params(p)
	h.hooks(o)
	h.batch(b)
	return h.sum
}

// Cacheable guards cfg.Hooks.OnStart but forgets OnFinish; digestcover
// reports the gap at the digest sites above.
func Cacheable(o cfg.Hooks) bool { return o.OnStart == nil }

// legacy would report the same two Params fields as params above; the
// directive suppresses both (they anchor on the func line).
//
//caislint:ignore digestcover legacy digest kept only for comparison runs
func (h *Hasher) legacy(p cfg.Params) {
	h.Uint64(uint64(p.Width))
}

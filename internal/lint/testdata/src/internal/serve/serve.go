// Package serve mirrors the real serving-engine package: every random draw
// must come from an explicitly seeded generator (sim.NewStreamRNG in the
// real tree) — reaching for the global math/rand source would break the
// workload engine's replay-bit-identically contract.
package serve

import "math/rand"

// Arrivals draws inter-arrival gaps. The seeded generator is sanctioned;
// topping it up from the global source is exactly the bug the check exists
// to catch.
func Arrivals(n int) []float64 {
	r := rand.New(rand.NewSource(0xCA15)) // seeded constructor: allowed
	gaps := make([]float64, n)
	for i := range gaps {
		gaps[i] = r.ExpFloat64() // method on *rand.Rand: allowed
	}
	if n > 0 {
		gaps[0] += rand.ExpFloat64() // lintwant:rand
	}
	return gaps
}

// Package faults declares an enum-like const block — a named integer
// type with several package-level constants — for the exhaustive check.
package faults

// Kind is the fixture enum.
type Kind int

// Enum members. KindAlias shares KindC's value: covering either name
// covers both, and a switch missing both reports the canonical name once.
const (
	KindA Kind = iota
	KindB
	KindC
	KindAlias = KindC
)

// String misses KindC (and its alias): one diagnostic.
func (k Kind) String() string {
	switch k { // lintwant:exhaustive
	case KindA:
		return "a"
	case KindB:
		return "b"
	}
	return "kind(?)"
}

// Short carries an explicit default clause: exempt by design.
func Short(k Kind) string {
	switch k {
	case KindA:
		return "a"
	default:
		return "-"
	}
}

// labels misses KindB; a map literal has no default escape hatch.
var labels = map[Kind]string{ // lintwant:exhaustive
	KindA: "a",
	KindC: "c",
}

// allLabels covers every constant value (KindC via its alias): clean.
var allLabels = map[Kind]string{
	KindA:     "a",
	KindB:     "b",
	KindAlias: "c",
}

// Grouped is suppressed with a recorded reason; the directive covers the
// whole switch statement's line range.
func Grouped(k Kind) int {
	//caislint:ignore exhaustive KindB and KindC share the caller's fallback path
	switch k {
	case KindA:
		return 1
	}
	return 0
}

// Use keeps the package-level literals referenced.
func Use(k Kind) string { return labels[k] + allLabels[k] }

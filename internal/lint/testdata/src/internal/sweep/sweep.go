// Package sweep mirrors the real module's sanctioned concurrency site:
// goroutines are allowed here (and only here, outside cmd/).
package sweep

import "sync"

// Map fans fn out over n points on a pool of goroutines (allowed: this
// package is the concurrency allowlist's default entry).
func Map(n, workers int, fn func(i int) int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(start int) {
			defer wg.Done()
			for i := start; i < n; i += workers {
				out[i] = fn(i)
			}
		}(w)
	}
	wg.Wait()
	return out
}

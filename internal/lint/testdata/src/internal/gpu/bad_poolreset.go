package gpu

import "fixture/internal/pool"

// req follows the pool discipline: it carries reset().
type req struct {
	id   int
	data []byte
}

func (r *req) reset() { *r = req{data: r.data[:0]} }

// norst does not carry reset(), so pooling it is itself a violation.
type norst struct {
	id int
}

type reqPools struct {
	ok  pool.Pool[req]
	bad pool.Pool[norst] // lintwant:poolreset
}

// RecycleClean is the sanctioned shape: reset immediately before Put.
func RecycleClean(p *reqPools) {
	r := p.ok.Get()
	r.id = 7
	r.reset()
	p.ok.Put(r)
}

// RecycleMissing skips the reset entirely.
func RecycleMissing(p *reqPools) {
	r := p.ok.Get()
	r.id = 7
	p.ok.Put(r) // lintwant:poolreset
}

// RecycleDistant resets, but not as the immediately preceding statement —
// the touch in between can dirty the object again.
func RecycleDistant(p *reqPools) {
	r := p.ok.Get()
	r.reset()
	r.id = 7
	p.ok.Put(r) // lintwant:poolreset
}

// RecycleWrongObject resets a different object than the one returned.
func RecycleWrongObject(p *reqPools, other *req) {
	r := p.ok.Get()
	other.reset()
	p.ok.Put(r) // lintwant:poolreset
}

// RecycleDeferred hides the Put in a defer, where no adjacent reset can be
// verified statically.
func RecycleDeferred(p *reqPools) {
	r := p.ok.Get()
	r.reset()
	defer p.ok.Put(r) // lintwant:poolreset
}

// RecycleBranch pairs reset and Put inside a nested block and a switch
// case — both are statement lists the check walks.
func RecycleBranch(p *reqPools, keep bool) {
	r := p.ok.Get()
	if !keep {
		r.reset()
		p.ok.Put(r)
	}
	switch x := p.ok.Get(); {
	case keep:
		x.reset()
		p.ok.Put(x)
	default:
		p.ok.Put(x) // lintwant:poolreset
	}
}

// RecycleNoReset exercises the bad pool: norst cannot be reset, so the Put
// is unfixable without adding the method.
func RecycleNoReset(p *reqPools) {
	n := p.bad.Get()
	p.bad.Put(n) // lintwant:poolreset
}

// scrub clears the object on the callee side.
func scrub(r *req) { r.reset() }

// RecycleWaived is suppressed with a recorded reason: the scrub helper
// clears every field before the Put.
func RecycleWaived(p *reqPools) {
	r := p.ok.Get()
	scrub(r)
	p.ok.Put(r) //caislint:ignore poolreset scrub clears every pooled field on the callee side
}

package gpu

import "math/rand"

// Rand mixes the unseeded global source with a properly seeded generator.
func Rand() int {
	r := rand.New(rand.NewSource(1))   // seeded constructor: allowed
	n := r.Intn(10)                    // method on *rand.Rand: allowed
	n += rand.Intn(10)                 // lintwant:rand
	rand.Shuffle(n, func(i, j int) {}) // lintwant:rand
	return n
}

// UseRNG proves the rand.Rand type name is legal in signatures.
func UseRNG(r *rand.Rand) int { return r.Intn(3) }

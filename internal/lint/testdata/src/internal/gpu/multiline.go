package gpu

import (
	"fmt"
	"time"
)

// Multiline is the regression fixture for statement-range suppression: a
// directive above a multi-line statement covers every line the statement
// spans, so the wall-clock read two lines below the directive is
// suppressed — before the fix only the directive's own line and the line
// directly beneath it were covered.
func Multiline() string {
	//caislint:ignore wallclock banner timestamp, outside the simulated timeline
	return fmt.Sprintf("started %v",
		time.Now())
}

// Multicheck exercises per-name tracking inside one multi-check
// directive: the wallclock half suppresses the read below, while the
// rand half suppresses nothing and is reported stale on its own line.
func Multicheck() time.Time {
	// lintwant+1:directive
	//caislint:ignore wallclock,rand only the wallclock half matches here
	return time.Now()
}

//caislint:file-ignore wallclock fixture: this file times the host, not the simulation
package gpu

import "time"

// HostNow and HostElapsed read the wall clock under a file-wide waiver.
func HostNow() time.Time { return time.Now() }

// HostElapsed measures host-side elapsed time.
func HostElapsed(start time.Time) time.Duration { return time.Since(start) }

package gpu

import "time"

// Wallclock reads the host clock from an engine package.
func Wallclock() time.Duration {
	start := time.Now()    // lintwant:wallclock
	d := time.Since(start) // lintwant:wallclock
	_ = time.Until(start)  // lintwant:wallclock
	_ = time.Unix(0, 0)    // constructing a time.Time is fine
	_ = time.Second        // durations are fine
	return d
}

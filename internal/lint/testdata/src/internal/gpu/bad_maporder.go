package gpu

// Each loop below is order-dependent in a different way.

func process(string) {}

// OffenderCall calls a function per element.
func OffenderCall(m map[string]int) {
	for k := range m { // lintwant:map-order
		process(k)
	}
}

// OffenderAppendComputed appends a derived value, leaking map order into
// slice order.
func OffenderAppendComputed(m map[string]int) []int {
	var out []int
	for _, v := range m { // lintwant:map-order
		out = append(out, v*2)
	}
	return out
}

// OffenderReturn returns whichever element iterates first.
func OffenderReturn(m map[string]int) int {
	for _, v := range m { // lintwant:map-order
		return v
	}
	return 0
}

// OffenderFloat accumulates floats, which is non-associative.
func OffenderFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // lintwant:map-order
		sum += v
	}
	return sum
}

// OffenderBreak stops at an arbitrary element.
func OffenderBreak(m map[string]int) int {
	n := 0
	for range m { // lintwant:map-order
		n++
		break
	}
	return n
}

// OffenderAssign overwrites a single variable per element.
func OffenderAssign(m map[string]int) int {
	last := 0
	for _, v := range m { // lintwant:map-order
		last = v
	}
	return last
}

package gpu

import "fixture/internal/sim"

// Convert performs a raw float-to-time conversion outside internal/sim.
func Convert(x float64) sim.Time {
	return sim.Time(x * 2) // lintwant:units
}

// Accumulate sums simulated time into float64 accumulators.
func Accumulate(ts []sim.Time) float64 {
	var sum float64
	for _, t := range ts {
		sum += t.Seconds() // lintwant:units
	}
	var raw float64
	for _, t := range ts {
		raw += float64(t) // lintwant:units
	}
	return sum + raw
}

// AllowedConversions are the patterns the units check must not flag.
func AllowedConversions(ps float64, n int64, ts []sim.Time) sim.Time {
	a := sim.FromPicoseconds(ps) // audited helper: allowed
	b := sim.Time(n)             // integer conversion: allowed
	var total sim.Time
	for _, t := range ts {
		total += t // typed accumulation: allowed
	}
	return a + b + total
}

package gpu

import (
	"math/rand"
	"time"

	"fixture/internal/sim"
)

// Suppressed exercises both line-directive placements (the line above and
// the same line) for every check; nothing here may be reported.
func Suppressed(x float64, m map[string]int) sim.Time {
	//caislint:ignore wallclock fixture proves comment-above suppression
	start := time.Now()
	_ = time.Since(start) //caislint:ignore wallclock fixture proves same-line suppression
	_ = rand.Int()        //caislint:ignore rand fixture demo value
	go func() {}()        //caislint:ignore goroutine fixture proves suppression
	//caislint:ignore map-order fixture: print order does not matter here
	for k := range m {
		process(k)
	}
	//caislint:ignore units fixture keeps one legacy conversion
	return sim.Time(x)
}

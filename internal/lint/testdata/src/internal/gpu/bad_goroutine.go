package gpu

// Spawn launches a goroutine inside an engine package.
func Spawn(ch chan int) {
	go func() { ch <- 1 }() // lintwant:goroutine
}

package gpu

import "sort"

// Every loop in this file is order-independent and must not be flagged.

// SortedKeys is the canonical collect-then-sort idiom.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count accumulates integers, which is commutative.
func Count(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// Invert writes distinct keys of another map.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// MaxVal is a guarded max update.
func MaxVal(m map[string]int) int {
	best := 0
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}

// Found sets an idempotent constant.
func Found(m map[string]int) bool {
	hit := false
	for _, v := range m {
		if v > 10 {
			hit = true
		}
	}
	return hit
}

// Prune deletes distinct keys from another map.
func Prune(m, other map[string]int) {
	for k := range m {
		delete(other, k)
	}
}

// SkipSmall mixes continue, pure defines and integer counting, with a
// benign nested loop.
func SkipSmall(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		if len(vs) == 0 {
			continue
		}
		total := 0
		for _, v := range vs {
			total += v
		}
		if total < 3 {
			continue
		}
		n++
	}
	return n
}

package gpu

// Malformed or stale directives are violations themselves. The lintwant+1
// markers expect the diagnostic on the directive's own line.

// lintwant+1:directive
//caislint:

// lintwant+1:directive
//caislint:frobnicate wallclock some reason

// lintwant+1:directive
//caislint:ignore

// lintwant+1:directive
//caislint:ignore nosuchcheck the check name is wrong

// lintwant+1:directive
//caislint:ignore rand

// lintwant+1:directive
//caislint:file-ignore units

// An unknown name anywhere in a multi-check list poisons the directive.
// lintwant+1:directive
//caislint:ignore wallclock,nosuchcheck mixed list with an unknown check

// Multi-check directives still need the mandatory trailing reason.
// lintwant+1:directive
//caislint:ignore wallclock,rand

// A well-formed directive that suppresses nothing is stale.
// lintwant+1:directive
//caislint:ignore goroutine nothing here spawns a goroutine

/*caislint:ignore rand block comments never carry directives, so this is inert*/

package sim

import "fixture/internal/util"

// Calls that transitively reach the wall clock or the global rand source
// are violations inside simulated code; the diagnostic carries the
// witness chain.

// stampNow reaches time.Now through one hop (util.Stamp).
func stampNow() int64 { return util.Stamp() } // lintwant:taintwall

// stampTwo reaches it through two hops (util.StampTwice -> util.Stamp).
func stampTwo() int64 { return util.StampTwice() } // lintwant:taintwall

// jitter reaches the global rand source through util.Jitter.
func jitter() float64 { return util.Jitter() } // lintwant:taintwall

// banner is suppressed with a recorded reason.
//
//caislint:ignore taintwall startup banner, runs before the simulated timeline
func banner() int64 { return stampNow() + stampTwo() + int64(jitter()) }

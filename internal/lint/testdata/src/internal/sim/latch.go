package sim

import "fixture/internal/pool"

// Latch mirrors the production pooled countdown latch: recycling happens
// inside fire(), before the stashed callback runs, so the callback can
// immediately Get the same object back from the pool.
type Latch struct {
	remaining int
	fired     bool
	fn        func()
	home      *LatchPool
}

func (l *Latch) reset() {
	l.remaining = 0
	l.fired = false
	l.fn = nil
	l.home = nil
}

// LatchPool is the free list the latches recycle through.
type LatchPool struct {
	p pool.Pool[Latch]
}

// Get arms a recycled latch.
func (lp *LatchPool) Get(n int, fn func()) *Latch {
	l := lp.p.Get()
	l.remaining, l.fn, l.home = n, fn, lp
	return l
}

// fireClean is the sanctioned recycle shape: the callback slot is stashed
// in a local, reset immediately precedes Put, and only then does the
// callback run.
func (l *Latch) fireClean() {
	fn, home := l.fn, l.home
	l.fired = true
	if home != nil {
		l.reset()
		home.p.Put(l)
	}
	if fn != nil {
		fn()
	}
}

// fireDirty recycles without clearing: the stale callback and counter
// leak into whatever Get hands this latch to next.
func (l *Latch) fireDirty() {
	fn, home := l.fn, l.home
	home.p.Put(l) // lintwant:poolreset
	fn()
}

// drain clears via a whole-struct composite assignment, which the check
// cannot see through; the waiver records why the Put is still clean.
func (lp *LatchPool) drain(l *Latch) {
	*l = Latch{}
	lp.p.Put(l) //caislint:ignore poolreset the composite assignment clears every pooled field
}

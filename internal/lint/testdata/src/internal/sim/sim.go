// Package sim is the fixture's stand-in for the real simulation clock; the
// units check resolves the time type and the conversion allowlist from the
// module path, so this package mirrors the production layout.
package sim

// Time is simulated time in picoseconds.
type Time int64

// Unit constants.
const (
	Picosecond Time = 1
	Second     Time = 1e12
)

// Seconds converts to float64 seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// FromPicoseconds is an audited float-to-time conversion; raw conversions
// are allowed inside internal/sim, so this definition is not a violation.
func FromPicoseconds(ps float64) Time { return Time(ps) }

// Package trace mirrors the production tracing layer, which legitimately
// timestamps host-side events: the wallclock check allowlists it.
package trace

import "time"

// Stamp reads the wall clock (allowed here).
func Stamp() time.Time { return time.Now() }

// Elapsed measures host time (allowed here).
func Elapsed(start time.Time) time.Duration { return time.Since(start) }

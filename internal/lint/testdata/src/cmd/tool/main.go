// Command tool mirrors a CLI entry point: wall-clock reads under cmd/ are
// allowed.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}

// Command tool mirrors a CLI entry point: wall-clock reads and goroutines
// under cmd/ are allowed.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	done := make(chan struct{})
	go func() { close(done) }() // allowed: cmd/ is on the concurrency allowlist
	<-done
	fmt.Println(time.Since(start))
}

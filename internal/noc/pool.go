package noc

import "cais/internal/pool"

// PacketPool is the per-run free list for Packets. It is created by the
// assembly layer (machine.New) and shared by every GPU and switch in the
// run — the whole simulation is single-threaded, so one unsynchronized
// stack suffices.
//
// Ownership rule: whoever terminally consumes a packet releases it. A
// forwarded packet (switch relaying a store to the home GPU) is not
// consumed; a packet whose content has been absorbed (merge-unit
// contribution folded into a session, sync request registered, data
// committed to HBM) is. A nil *PacketPool is valid and degrades to plain
// allocation, so unit tests that wire components by hand keep working.
type PacketPool struct {
	p pool.Pool[Packet]
}

// NewPacketPool returns an empty pool.
func NewPacketPool() *PacketPool { return &PacketPool{} }

// Get returns a zeroed packet, recycled when possible.
func (pp *PacketPool) Get() *Packet {
	if pp == nil {
		return &Packet{}
	}
	return pp.p.Get()
}

// Put recycles a packet the caller terminally consumed. The packet must not
// be referenced again: any event closure or session still holding it is a
// lifecycle bug that resurfaces as cross-talk after reuse.
func (pp *PacketPool) Put(p *Packet) {
	if pp == nil || p == nil {
		return
	}
	p.reset()
	pp.p.Put(p)
}

// Stats reports pool traffic (total gets, fresh allocations, free-list
// depth); nil pools report zeros.
func (pp *PacketPool) Stats() (gets, news, idle int) {
	if pp == nil {
		return 0, 0, 0
	}
	return pp.p.Stats()
}

// Package noc models the NVLink interconnect fabric at packet granularity:
// unidirectional links with serialization delay and propagation latency,
// virtual channels with round-robin arbitration (the paper's traffic
// control, Section III-C), and the request vocabulary shared by GPUs and
// switches — including the NVLS multimem operations and the CAIS
// compute-aware ld.cais / red.cais extensions.
package noc

import (
	"fmt"

	"cais/internal/sim"
	"cais/internal/trace"
)

// Op identifies the semantic operation a packet carries. The first group
// is plain peer-to-peer traffic, the second the communication-centric NVLS
// primitives (Fig. 1g), the third the CAIS compute-aware extensions
// (Fig. 4), and the fourth control traffic.
type Op int

const (
	// OpLoad is a plain P2P remote read request (control packet); the
	// home GPU answers with OpLoadResp carrying data.
	OpLoad Op = iota
	// OpLoadResp carries read data back to a requester.
	OpLoadResp
	// OpStore carries write data to the home GPU.
	OpStore

	// OpMultimemST is the NVLS push-mode multicast store backing
	// AllGather: one uplink data packet replicated by the switch to all
	// peers.
	OpMultimemST
	// OpMultimemLdReduce is the NVLS pull-mode reducing load backing
	// ReduceScatter/AllReduce: the switch fans read requests to every
	// GPU's replica, reduces in-flight, and returns one value.
	OpMultimemLdReduce
	// OpMultimemRed is the NVLS push-mode reduction.
	OpMultimemRed
	// OpReadFan is the switch-generated per-replica read of an
	// OpMultimemLdReduce fan-out (control packet to one GPU).
	OpReadFan

	// OpLdCAIS is the compute-aware mergeable load (ld.cais): same-address
	// loads from different GPUs are merged at the switch port's merge
	// unit — fetched once, replicated to all requesters (Micro-Function 1).
	OpLdCAIS
	// OpRedCAIS is the compute-aware mergeable reduction (red.cais):
	// same-address contributions accumulate in the merge unit and a
	// single result is written to the home GPU (Micro-Function 2).
	OpRedCAIS

	// OpSyncRequest registers one GPU's TB group with the switch's Group
	// Sync Table (pre-launch / pre-access synchronization).
	OpSyncRequest
	// OpSyncRelease is the switch's broadcast release for a TB group.
	OpSyncRelease
	// OpCredit is switch->GPU merge-tracker feedback used by TB-aware
	// request throttling.
	OpCredit
)

var opNames = map[Op]string{
	OpLoad:             "ld",
	OpLoadResp:         "ld.resp",
	OpStore:            "st",
	OpMultimemST:       "multimem.st",
	OpMultimemLdReduce: "multimem.ld_reduce",
	OpMultimemRed:      "multimem.red",
	OpReadFan:          "read.fan",
	OpLdCAIS:           "ld.cais",
	OpRedCAIS:          "red.cais",
	OpSyncRequest:      "sync.req",
	OpSyncRelease:      "sync.rel",
	OpCredit:           "credit",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsControl reports whether packets of this op carry no data payload (only
// the 16-byte header travels on the wire).
func (o Op) IsControl() bool {
	switch o {
	case OpLoad, OpMultimemLdReduce, OpReadFan, OpLdCAIS, OpSyncRequest, OpSyncRelease, OpCredit:
		return true
	default:
		return false
	}
}

// Class is the virtual-channel traffic class. The paper's traffic control
// (Sec. III-C-2) separates load from reduction traffic to avoid
// head-of-line blocking on the shared links.
type Class int

const (
	// ClassLoad carries load requests and load/gather data.
	ClassLoad Class = iota
	// ClassReduction carries reduction contributions and results.
	ClassReduction
	// ClassControl carries synchronization and credit packets.
	ClassControl
	numClasses
)

// ClassOf maps an op to its traffic class.
func ClassOf(op Op) Class {
	switch op {
	case OpLoad, OpLoadResp, OpMultimemST, OpMultimemLdReduce, OpReadFan, OpLdCAIS:
		return ClassLoad
	case OpStore, OpMultimemRed, OpRedCAIS:
		return ClassReduction
	default:
		return ClassControl
	}
}

// HeaderBytes is the per-packet header (one 16-byte flit, Sec. IV-A).
const HeaderBytes = 16

// Packet is one unit of traffic. Size is the payload in bytes; control
// packets have Size 0 and occupy only the header on the wire.
type Packet struct {
	ID    uint64
	Op    Op
	Addr  uint64 // address key used for routing and merging
	Home  int    // GPU owning Addr
	Src   int    // issuing GPU (or home GPU for responses)
	Dst   int    // destination GPU; -1 = switch-terminated
	Size  int64  // payload bytes
	Group int    // TB-group ID for sync/merge coordination; -1 = none

	// Contribs is, for reduction results flowing to the home GPU, how
	// many GPU contributions the payload already folds in. The home GPU
	// counts contributions to detect reduction completion.
	Contribs int

	// OnDone is invoked at the requester when the operation completes
	// (response delivered, or write committed at the home GPU).
	OnDone func()

	// OnAccepted is invoked when the switch's merge unit accepts the
	// request (after the credit-return latency) — the feedback signal
	// TB-aware request throttling paces against (Sec. III-B-2).
	OnAccepted func()

	// Tag carries protocol-specific context opaque to the fabric.
	Tag interface{}
}

// reset clears every field so a recycled packet is indistinguishable from a
// fresh one (pool discipline, caislint: poolreset).
func (p *Packet) reset() {
	*p = Packet{}
}

// Expected returns the number of participating requests a mergeable
// request anticipates: on request packets Contribs carries the expected
// participant count set by the issuing kernel's group metadata. Requests
// without metadata expect only themselves.
func (p *Packet) Expected() int {
	if p.Contribs > 0 {
		return p.Contribs
	}
	return 1
}

// WireBytes is the packet's size on the wire including header flits.
func (p *Packet) WireBytes() int64 {
	if p.Op.IsControl() {
		return HeaderBytes
	}
	return p.Size + HeaderBytes
}

// Endpoint consumes delivered packets.
type Endpoint interface {
	Receive(p *Packet)
}

// EndpointFunc adapts a function to the Endpoint interface.
type EndpointFunc func(p *Packet)

// Receive implements Endpoint.
func (f EndpointFunc) Receive(p *Packet) { f(p) }

// BusyRecorder observes link busy intervals; used to build the
// bandwidth-utilization-over-time series of Fig. 16.
type BusyRecorder interface {
	RecordBusy(start, end sim.Time, bytes int64)
}

// ring is a reusable circular packet queue. Unlike the append/reslice
// idiom it grows to the burst high-water mark once and then recycles the
// backing array forever, so steady-state enqueue/dequeue is allocation
// free. Capacity is kept a power of two so index wrap is a mask, not a
// division.
type ring struct {
	buf  []*Packet
	head int
	n    int
}

func (r *ring) len() int { return r.n }

func (r *ring) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = p
	r.n++
}

// pop removes and returns the oldest packet, or nil when empty. The slot is
// cleared so the ring never pins a delivered packet for the GC (or a pool).
func (r *ring) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *ring) grow() {
	c := len(r.buf) * 2
	if c < 16 {
		c = 16
	}
	nb := make([]*Packet, c)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf, r.head = nb, 0
}

// Link is a unidirectional NVLink: packets serialize at the link bandwidth
// and arrive after the propagation latency. With virtual channels enabled,
// per-class queues are served round-robin, eliminating head-of-line
// blocking between load and reduction traffic; otherwise a single FIFO is
// used (the CAIS-Partial configuration).
type Link struct {
	Name string

	eng      *sim.Engine
	bw       float64 // bytes/s
	latency  sim.Time
	dst      Endpoint
	vcOn     bool
	sideband bool // dedicated control/request channel (default on)
	control  ring // sideband queue: requests, sync, credits
	queues   [numClasses]ring
	fifo     ring
	rr       Class
	busy     bool
	bwScale  float64 // fault-injection bandwidth degradation factor (1 = healthy)
	down     bool    // fault-injection link-down: queued packets stall until repair
	busyTime sim.Time
	sent     int64 // total wire bytes
	pkts     int64
	recorder BusyRecorder
	maxQueue int

	// inflight holds packets whose serialization has been booked, in
	// transmit order. Serialization end times are monotonic and the
	// propagation latency is fixed, so delivery is FIFO: the two cached
	// closures below replace the two per-packet closures the hot path used
	// to allocate (18% of all simulation allocations, by -pprof).
	inflight       ring
	onSerializedFn func()
	deliverFn      func()

	tr     *trace.Tracer
	trPid  int32
	trTid  int32
	traced bool
}

// NewLink creates a link delivering to dst. The control sideband is
// enabled by default.
func NewLink(eng *sim.Engine, name string, bytesPerSecond float64, latency sim.Time, dst Endpoint) *Link {
	if bytesPerSecond <= 0 {
		panic("noc: link bandwidth must be positive")
	}
	l := &Link{Name: name, eng: eng, bw: bytesPerSecond, latency: latency, dst: dst, sideband: true,
		bwScale: 1, tr: trace.FromEngine(eng)}
	l.onSerializedFn = l.onSerialized
	l.deliverFn = l.deliver
	return l
}

// TraceOn places the link's busy intervals on a trace track: every
// transmitted packet becomes a complete span on (pid, tid). The assembly
// layer assigns tracks; without it the link records nothing.
func (l *Link) TraceOn(pid, tid int32) {
	l.trPid, l.trTid = pid, tid
	l.traced = l.tr.Enabled()
}

// SetControlSideband enables (default) or disables the dedicated channel
// for header-only packets. Disabling it is a design ablation: control
// traffic then queues behind data and suffers head-of-line blocking.
func (l *Link) SetControlSideband(on bool) { l.sideband = on }

// SetVirtualChannels enables (true) or disables (false) per-class virtual
// channels with round-robin arbitration. Must be configured before traffic
// flows.
func (l *Link) SetVirtualChannels(on bool) { l.vcOn = on }

// SetRecorder installs a busy-interval observer.
func (l *Link) SetRecorder(r BusyRecorder) { l.recorder = r }

// SetBandwidthScale degrades (or restores) the link's effective bandwidth:
// packets serialized after the call see bw*scale. In-flight packets keep the
// serialization time computed at transmit start — degradation is felt at the
// next arbitration decision, like a real link retraining to fewer lanes.
func (l *Link) SetBandwidthScale(scale float64) {
	if scale <= 0 {
		panic("noc: bandwidth scale must be positive")
	}
	l.bwScale = scale
}

// BandwidthScale reports the current degradation factor (1 = healthy).
func (l *Link) BandwidthScale() float64 { return l.bwScale }

// SetDown takes the link down (true) or repairs it (false). A down link
// stalls: Send still enqueues, an in-flight packet finishes its
// serialization and delivery, but no new packet starts until repair. Stall
// time does not count toward BusyTime/Utilization — a dead link is idle,
// not busy. On repair, transmission resumes immediately if traffic queued.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down && !l.busy {
		l.transmitNext()
	}
}

// Down reports whether the link is currently failed.
func (l *Link) Down() bool { return l.down }

// Bandwidth reports the link's bandwidth in bytes/s.
func (l *Link) Bandwidth() float64 { return l.bw }

// BusyTime reports accumulated serialization time.
func (l *Link) BusyTime() sim.Time { return l.busyTime }

// BytesSent reports total wire bytes transmitted (including headers).
func (l *Link) BytesSent() int64 { return l.sent }

// Packets reports the number of packets transmitted.
func (l *Link) Packets() int64 { return l.pkts }

// MaxQueueDepth reports the high-water mark of queued packets.
func (l *Link) MaxQueueDepth() int { return l.maxQueue }

// Utilization reports busy fraction over [0, horizon].
func (l *Link) Utilization(horizon sim.Time) float64 {
	if horizon <= 0 {
		return 0
	}
	u := float64(l.busyTime) / float64(horizon)
	if u > 1 {
		u = 1
	}
	return u
}

// Send enqueues p for transmission. Header-only packets (requests,
// synchronization, credits) always travel on a dedicated request/control
// channel — NVSwitch reserves virtual channels for control flits and read
// requests — so the paper's traffic-control knob governs only the
// separation of load and reduction data streams.
func (l *Link) Send(p *Packet) {
	switch {
	case l.sideband && p.Op.IsControl():
		l.control.push(p)
	case l.vcOn:
		l.queues[ClassOf(p.Op)].push(p)
	default:
		l.fifo.push(p)
	}
	if d := l.queueDepth(); d > l.maxQueue {
		l.maxQueue = d
	}
	if !l.busy && !l.down {
		l.transmitNext()
	}
}

// QueueDepth reports the number of packets currently queued (not in
// flight). Exposed for fault-injection tests and diagnostics.
func (l *Link) QueueDepth() int { return l.queueDepth() }

func (l *Link) queueDepth() int {
	n := l.control.len()
	if !l.vcOn {
		return n + l.fifo.len()
	}
	for c := range l.queues {
		n += l.queues[c].len()
	}
	return n
}

// pop selects the next packet: control sideband first (header-only flits),
// then data per the arbitration policy.
func (l *Link) pop() *Packet {
	if p := l.control.pop(); p != nil {
		return p
	}
	if !l.vcOn {
		return l.fifo.pop()
	}
	// Round-robin over non-empty classes after the last served (the
	// ClassControl queue is only populated when the sideband is off).
	for i := 1; i <= int(numClasses); i++ {
		c := Class((int(l.rr) + i) % int(numClasses))
		if p := l.queues[c].pop(); p != nil {
			l.rr = c
			return p
		}
	}
	return nil
}

func (l *Link) transmitNext() {
	if l.down {
		// Stall: leave the queue intact; SetDown(false) restarts us.
		l.busy = false
		return
	}
	p := l.pop()
	if p == nil {
		l.busy = false
		return
	}
	l.busy = true
	wire := p.WireBytes()
	ser := sim.DurationForBytes(wire, l.bw*l.bwScale)
	start := l.eng.Now()
	end := start + ser
	l.busyTime += ser
	l.sent += wire
	l.pkts++
	if l.recorder != nil {
		l.recorder.RecordBusy(start, end, wire)
	}
	if l.traced {
		l.tr.Span(l.trPid, l.trTid, "noc.link", p.Op.String(), start, end)
	}
	// Cut-through delivery: the head arrives after latency, the tail
	// after latency + serialization. The packet parks on the inflight
	// ring; onSerialized/deliver pair it back up in FIFO order.
	l.inflight.push(p)
	l.eng.At(end, l.onSerializedFn)
}

// onSerialized runs when the oldest in-flight packet finishes serializing:
// its delivery is scheduled after the propagation latency, and the link
// arbitrates the next packet.
func (l *Link) onSerialized() {
	l.eng.After(l.latency, l.deliverFn)
	l.transmitNext()
}

// deliver hands the oldest in-flight packet to the destination. Deliveries
// fire in transmit order (monotonic serialization ends + fixed latency), so
// popping the ring head always yields the matching packet.
func (l *Link) deliver() {
	l.dst.Receive(l.inflight.pop())
}

package noc

import "testing"

func TestRingFIFOAcrossWrap(t *testing.T) {
	var r ring
	pkts := make([]*Packet, 100)
	for i := range pkts {
		pkts[i] = &Packet{ID: uint64(i)}
	}
	// Interleave pushes and pops so the head wraps the backing array
	// several times at small capacity.
	next := 0
	for i, p := range pkts {
		r.push(p)
		if i%3 == 2 {
			if got := r.pop(); got != pkts[next] {
				t.Fatalf("pop %d: got ID %d want %d", next, got.ID, pkts[next].ID)
			}
			next++
		}
	}
	for r.len() > 0 {
		if got := r.pop(); got != pkts[next] {
			t.Fatalf("drain pop %d: got ID %d want %d", next, got.ID, pkts[next].ID)
		}
		next++
	}
	if next != len(pkts) {
		t.Fatalf("drained %d packets, want %d", next, len(pkts))
	}
	if r.pop() != nil {
		t.Fatalf("pop on empty ring should return nil")
	}
}

func TestRingPopClearsSlot(t *testing.T) {
	var r ring
	r.push(&Packet{ID: 1})
	r.pop()
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("slot %d still holds a packet after pop", i)
		}
	}
}

func TestRingSteadyStateZeroAlloc(t *testing.T) {
	var r ring
	p := &Packet{}
	// Warm to an 8-deep burst so the backing array reaches its high-water
	// capacity, then verify churn at that depth never reallocates.
	for i := 0; i < 8; i++ {
		r.push(p)
	}
	for r.len() > 0 {
		r.pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 8; i++ {
			r.push(p)
		}
		for j := 0; j < 8; j++ {
			r.pop()
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state ring churn allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkRingEnqueueDequeue measures the per-class queue churn pattern
// Link.Send/pop exercise: bursts of enqueues drained in FIFO order. The
// old append/reslice queues allocated on every burst; the ring reuses its
// backing array (0 allocs/op at steady state).
func BenchmarkRingEnqueueDequeue(b *testing.B) {
	var r ring
	p := &Packet{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			r.push(p)
		}
		for j := 0; j < 16; j++ {
			r.pop()
		}
	}
}

// BenchmarkSliceEnqueueDequeue is the pre-PR-5 append/reslice queue idiom,
// kept as the comparison baseline for BenchmarkRingEnqueueDequeue.
func BenchmarkSliceEnqueueDequeue(b *testing.B) {
	var q []*Packet
	p := &Packet{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			q = append(q, p)
		}
		for j := 0; j < 16; j++ {
			q = q[1:]
		}
		q = nil
	}
}

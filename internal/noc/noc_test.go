package noc

import (
	"testing"
	"testing/quick"

	"cais/internal/sim"
)

type sink struct {
	got   []*Packet
	times []sim.Time
	eng   *sim.Engine
}

func (s *sink) Receive(p *Packet) {
	s.got = append(s.got, p)
	s.times = append(s.times, s.eng.Now())
}

func newTestLink(bw float64, lat sim.Time) (*sim.Engine, *Link, *sink) {
	eng := sim.NewEngine()
	s := &sink{eng: eng}
	l := NewLink(eng, "test", bw, lat, s)
	return eng, l, s
}

func TestLinkDeliversAfterSerializationPlusLatency(t *testing.T) {
	// 100 GB/s = 0.1 B/ps; 1000-byte payload + 16B header = 10160 ps.
	eng, l, s := newTestLink(100e9, 250*sim.Nanosecond)
	p := &Packet{Op: OpStore, Size: 1000}
	eng.At(0, func() { l.Send(p) })
	eng.Run()
	if len(s.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(s.got))
	}
	want := sim.Time(10160) + 250*sim.Nanosecond
	if s.times[0] != want {
		t.Fatalf("delivery at %v, want %v", s.times[0], want)
	}
}

func TestLinkControlPacketsOnlyCarryHeader(t *testing.T) {
	eng, l, s := newTestLink(16e12, sim.Nanosecond) // 16 B/ps -> header = 1ps
	eng.At(0, func() { l.Send(&Packet{Op: OpLdCAIS, Size: 1 << 20}) })
	eng.Run()
	if s.times[0] != sim.Nanosecond+1 {
		t.Fatalf("control packet delivery at %v, want 1.001ns", s.times[0])
	}
	if l.BytesSent() != HeaderBytes {
		t.Fatalf("wire bytes = %d, want %d", l.BytesSent(), HeaderBytes)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	eng, l, s := newTestLink(100e9, 0)
	// Two packets sent at t=0: second must wait for first's serialization.
	eng.At(0, func() {
		l.Send(&Packet{Op: OpStore, Size: 984}) // wire 1000B -> 10ns
		l.Send(&Packet{Op: OpStore, Size: 984})
	})
	eng.Run()
	if s.times[0] != 10*sim.Nanosecond || s.times[1] != 20*sim.Nanosecond {
		t.Fatalf("deliveries at %v, %v; want 10ns, 20ns", s.times[0], s.times[1])
	}
	if l.BusyTime() != 20*sim.Nanosecond {
		t.Fatalf("busy = %v, want 20ns", l.BusyTime())
	}
}

func TestLinkFIFOHeadOfLineBlocking(t *testing.T) {
	// Without VCs, a control load request queued behind a large reduction
	// payload is delayed by the full serialization (head-of-line blocking).
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() {
		l.Send(&Packet{Op: OpRedCAIS, Size: 99984}) // 100000B -> 1000ns
		l.Send(&Packet{Op: OpLdCAIS})               // header only
	})
	eng.Run()
	if s.got[0].Op != OpRedCAIS {
		t.Fatal("FIFO order violated")
	}
	if s.times[1] < 1000*sim.Nanosecond {
		t.Fatalf("load escaped HoL blocking: %v", s.times[1])
	}
}

func TestLinkVirtualChannelsRoundRobin(t *testing.T) {
	// With VCs the interleaving alternates between classes even though all
	// reduction packets were enqueued first.
	eng, l, s := newTestLink(100e9, 0)
	l.SetVirtualChannels(true)
	eng.At(0, func() {
		for i := 0; i < 3; i++ {
			l.Send(&Packet{Op: OpRedCAIS, Size: 984})
		}
		for i := 0; i < 3; i++ {
			l.Send(&Packet{Op: OpLoadResp, Size: 984})
		}
	})
	eng.Run()
	if len(s.got) != 6 {
		t.Fatalf("delivered %d, want 6", len(s.got))
	}
	// First packet was already in flight when loads arrived; thereafter
	// classes must alternate.
	sawAlternation := false
	for i := 1; i < len(s.got)-1; i++ {
		if ClassOf(s.got[i].Op) != ClassOf(s.got[i+1].Op) {
			sawAlternation = true
		}
	}
	if !sawAlternation {
		t.Fatalf("no class alternation under VC arbitration: %v", opsOf(s.got))
	}
	// A load must be served before all reductions are done.
	firstLoad := -1
	for i, p := range s.got {
		if p.Op == OpLoadResp {
			firstLoad = i
			break
		}
	}
	if firstLoad >= 3 {
		t.Fatalf("loads fully blocked behind reductions: %v", opsOf(s.got))
	}
}

func opsOf(ps []*Packet) []Op {
	ops := make([]Op, len(ps))
	for i, p := range ps {
		ops[i] = p.Op
	}
	return ops
}

func TestLinkUtilization(t *testing.T) {
	eng, l, _ := newTestLink(100e9, 0)
	eng.At(0, func() { l.Send(&Packet{Op: OpStore, Size: 984}) }) // 10ns busy
	eng.Run()
	if u := l.Utilization(40 * sim.Nanosecond); u != 0.25 {
		t.Fatalf("utilization = %v, want 0.25", u)
	}
}

func TestClassOfCoversAllOps(t *testing.T) {
	cases := map[Op]Class{
		OpLoad:             ClassLoad,
		OpLoadResp:         ClassLoad,
		OpMultimemST:       ClassLoad,
		OpMultimemLdReduce: ClassLoad,
		OpReadFan:          ClassLoad,
		OpLdCAIS:           ClassLoad,
		OpStore:            ClassReduction,
		OpMultimemRed:      ClassReduction,
		OpRedCAIS:          ClassReduction,
		OpSyncRequest:      ClassControl,
		OpSyncRelease:      ClassControl,
		OpCredit:           ClassControl,
	}
	for op, want := range cases {
		if got := ClassOf(op); got != want {
			t.Errorf("ClassOf(%v) = %v, want %v", op, got, want)
		}
	}
}

func TestOpIsControl(t *testing.T) {
	control := []Op{OpLoad, OpMultimemLdReduce, OpReadFan, OpLdCAIS, OpSyncRequest, OpSyncRelease, OpCredit}
	data := []Op{OpLoadResp, OpStore, OpMultimemST, OpMultimemRed, OpRedCAIS}
	for _, op := range control {
		if !op.IsControl() {
			t.Errorf("%v should be control", op)
		}
	}
	for _, op := range data {
		if op.IsControl() {
			t.Errorf("%v should carry data", op)
		}
	}
}

func TestOpStringNames(t *testing.T) {
	if OpLdCAIS.String() != "ld.cais" || OpRedCAIS.String() != "red.cais" {
		t.Fatal("CAIS op names wrong")
	}
	if OpMultimemST.String() != "multimem.st" {
		t.Fatal("multimem.st name wrong")
	}
	if Op(999).String() == "" {
		t.Fatal("unknown op should still render")
	}
}

func TestLinkConservesBytes(t *testing.T) {
	// Property: total delivered payload equals total sent payload and
	// wire bytes account for all headers, for any packet mix.
	f := func(sizes []uint16, vc bool) bool {
		eng, l, s := newTestLink(450e9, 250*sim.Nanosecond)
		l.SetVirtualChannels(vc)
		var sentPayload int64
		eng.At(0, func() {
			for i, sz := range sizes {
				op := OpStore
				if i%2 == 1 {
					op = OpLoadResp
				}
				l.Send(&Packet{Op: op, Size: int64(sz)})
				sentPayload += int64(sz)
			}
		})
		eng.Run()
		var gotPayload int64
		for _, p := range s.got {
			gotPayload += p.Size
		}
		return len(s.got) == len(sizes) &&
			gotPayload == sentPayload &&
			l.BytesSent() == sentPayload+int64(len(sizes))*HeaderBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

type intervalRec struct {
	total sim.Time
	bytes int64
}

func (r *intervalRec) RecordBusy(start, end sim.Time, b int64) {
	r.total += end - start
	r.bytes += b
}

func TestLinkRecorderSeesAllBusyTime(t *testing.T) {
	eng, l, _ := newTestLink(100e9, 0)
	rec := &intervalRec{}
	l.SetRecorder(rec)
	eng.At(0, func() {
		l.Send(&Packet{Op: OpStore, Size: 984})
		l.Send(&Packet{Op: OpLoadResp, Size: 1984})
	})
	eng.Run()
	if rec.total != l.BusyTime() {
		t.Fatalf("recorder total %v != link busy %v", rec.total, l.BusyTime())
	}
	if rec.bytes != l.BytesSent() {
		t.Fatalf("recorder bytes %d != link sent %d", rec.bytes, l.BytesSent())
	}
}

func TestControlSidebandBypassesData(t *testing.T) {
	// A sync release behind a large data packet must still arrive first
	// when the sideband is on (default)...
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() {
		l.Send(&Packet{Op: OpRedCAIS, Size: 99984}) // 1000ns serialization
		l.Send(&Packet{Op: OpSyncRelease})
	})
	eng.Run()
	if s.got[1].Op != OpSyncRelease || s.times[1] >= 1010*sim.Nanosecond {
		t.Fatalf("sideband did not prioritize control: %v at %v", s.got[1].Op, s.times[1])
	}

	// ...and must queue behind it when the sideband is disabled.
	eng2 := sim.NewEngine()
	s2 := &sink{eng: eng2}
	l2 := NewLink(eng2, "nosideband", 100e9, 0, s2)
	l2.SetControlSideband(false)
	eng2.At(0, func() {
		l2.Send(&Packet{Op: OpRedCAIS, Size: 99984})
		l2.Send(&Packet{Op: OpSyncRelease})
	})
	eng2.Run()
	if s2.times[1] < 1000*sim.Nanosecond {
		t.Fatalf("disabled sideband still bypassed data: %v", s2.times[1])
	}
}

func TestRequestPacketsUseSideband(t *testing.T) {
	// ld.cais requests are header-only and ride the sideband past QUEUED
	// load-response data (the in-flight packet still finishes first).
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() {
		l.Send(&Packet{Op: OpLoadResp, Size: 99984}) // in flight
		l.Send(&Packet{Op: OpLoadResp, Size: 99984}) // queued
		l.Send(&Packet{Op: OpLdCAIS})                // must jump the queue
	})
	eng.Run()
	if s.got[1].Op != OpLdCAIS {
		t.Fatalf("request did not bypass the queued data: %v", opsOf(s.got))
	}
}

// Arbitration edge cases (table-driven): saturated single-class queues,
// classes draining to empty mid-stream, and control traffic sharing the
// round-robin when the sideband is off.
func TestLinkArbitrationEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		vc        bool
		sideband  bool
		send      []*Packet
		wantOrder []Op
		wantMaxQ  int
	}{
		{
			// Only one class has traffic: round-robin must not stall on
			// the two empty classes and order stays FIFO within the class.
			name: "saturated-single-class",
			vc:   true, sideband: true,
			send: []*Packet{
				{Op: OpRedCAIS, Size: 984},
				{Op: OpRedCAIS, Size: 984},
				{Op: OpRedCAIS, Size: 984},
				{Op: OpRedCAIS, Size: 984},
			},
			wantOrder: []Op{OpRedCAIS, OpRedCAIS, OpRedCAIS, OpRedCAIS},
			wantMaxQ:  3, // head transmits immediately; three wait
		},
		{
			// A class empties mid-stream: the arbiter must fall through to
			// the remaining class without a gap.
			name: "class-drains-to-zero",
			vc:   true, sideband: true,
			send: []*Packet{
				{Op: OpRedCAIS, Size: 984},
				{Op: OpLoadResp, Size: 984},
				{Op: OpLoadResp, Size: 984},
				{Op: OpLoadResp, Size: 984},
			},
			wantOrder: []Op{OpRedCAIS, OpLoadResp, OpLoadResp, OpLoadResp},
			wantMaxQ:  3,
		},
		{
			// Sideband off + VCs on: control packets take the ClassControl
			// queue and win the next round-robin grant over queued data.
			name: "control-joins-round-robin",
			vc:   true, sideband: false,
			send: []*Packet{
				{Op: OpRedCAIS, Size: 984},
				{Op: OpLoadResp, Size: 984},
				{Op: OpSyncRelease},
			},
			wantOrder: []Op{OpRedCAIS, OpSyncRelease, OpLoadResp},
			wantMaxQ:  2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, l, s := newTestLink(100e9, 0)
			l.SetVirtualChannels(tc.vc)
			l.SetControlSideband(tc.sideband)
			eng.At(0, func() {
				for _, p := range tc.send {
					l.Send(p)
				}
			})
			eng.Run()
			if len(s.got) != len(tc.wantOrder) {
				t.Fatalf("delivered %d packets, want %d", len(s.got), len(tc.wantOrder))
			}
			for i, op := range tc.wantOrder {
				if s.got[i].Op != op {
					t.Fatalf("delivery order %v, want %v", opsOf(s.got), tc.wantOrder)
				}
			}
			if l.MaxQueueDepth() != tc.wantMaxQ {
				t.Fatalf("max queue depth = %d, want %d", l.MaxQueueDepth(), tc.wantMaxQ)
			}
			if l.QueueDepth() != 0 {
				t.Fatalf("residual queue depth = %d after drain", l.QueueDepth())
			}
		})
	}
}

func TestLinkNearZeroBandwidthBackToBack(t *testing.T) {
	// A 99.9% degraded link still makes forward progress: back-to-back
	// packets serialize strictly, 1000x slower.
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() {
		l.SetBandwidthScale(0.001) // 100 MB/s effective: 1000B -> 10us
		l.Send(&Packet{Op: OpStore, Size: 984})
		l.Send(&Packet{Op: OpStore, Size: 984})
	})
	eng.Run()
	if len(s.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(s.got))
	}
	if s.times[0] != 10*sim.Microsecond || s.times[1] != 20*sim.Microsecond {
		t.Fatalf("deliveries at %v, %v; want 10us, 20us", s.times[0], s.times[1])
	}
	if l.BusyTime() != 20*sim.Microsecond {
		t.Fatalf("busy = %v, want 20us", l.BusyTime())
	}
}

func TestLinkDegradeMidFlightAffectsNextPacketOnly(t *testing.T) {
	// Degradation lands at the next arbitration decision: the in-flight
	// packet keeps its start-of-transmit serialization time.
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() {
		l.Send(&Packet{Op: OpStore, Size: 984}) // 10ns at full rate
		l.Send(&Packet{Op: OpStore, Size: 984})
	})
	eng.At(5*sim.Nanosecond, func() { l.SetBandwidthScale(0.5) })
	eng.Run()
	if s.times[0] != 10*sim.Nanosecond {
		t.Fatalf("in-flight packet rescheduled by degradation: %v", s.times[0])
	}
	if s.times[1] != 30*sim.Nanosecond { // 10ns wait + 20ns at half rate
		t.Fatalf("second delivery at %v, want 30ns", s.times[1])
	}
	if l.BandwidthScale() != 0.5 {
		t.Fatalf("scale = %v, want 0.5", l.BandwidthScale())
	}
}

func TestLinkDownMidFlightUtilization(t *testing.T) {
	// The link fails while a packet is on the wire: the in-flight packet
	// completes, the queued one stalls until repair, and the stall window
	// counts as idle — BusyTime covers only true serialization.
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() {
		l.Send(&Packet{Op: OpStore, Size: 984}) // 10ns ser
		l.Send(&Packet{Op: OpStore, Size: 984})
	})
	eng.At(5*sim.Nanosecond, func() { l.SetDown(true) })
	eng.At(1005*sim.Nanosecond, func() { l.SetDown(false) })
	eng.Run()
	if len(s.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(s.got))
	}
	if s.times[0] != 10*sim.Nanosecond {
		t.Fatalf("in-flight packet delivery at %v, want 10ns", s.times[0])
	}
	if s.times[1] != 1015*sim.Nanosecond {
		t.Fatalf("stalled packet delivery at %v, want 1015ns", s.times[1])
	}
	if l.BusyTime() != 20*sim.Nanosecond {
		t.Fatalf("busy = %v, want 20ns (stall must not count)", l.BusyTime())
	}
	if u := l.Utilization(1015 * sim.Nanosecond); u >= 0.02 {
		t.Fatalf("utilization %v should reflect the idle outage window", u)
	}
}

func TestLinkSendWhileDownQueues(t *testing.T) {
	eng, l, s := newTestLink(100e9, 0)
	eng.At(0, func() { l.SetDown(true) })
	eng.At(1*sim.Nanosecond, func() {
		l.Send(&Packet{Op: OpStore, Size: 984})
		if l.QueueDepth() != 1 {
			t.Fatalf("queue depth = %d while down, want 1", l.QueueDepth())
		}
	})
	eng.At(100*sim.Nanosecond, func() { l.SetDown(false) })
	eng.Run()
	if len(s.got) != 1 || s.times[0] != 110*sim.Nanosecond {
		t.Fatalf("post-repair delivery = %v, want one packet at 110ns", s.times)
	}
}

// Package core is the compositional entry point of the CAIS engine: a
// Session assembles a simulated multi-GPU system and executes custom
// kernel pipelines built with the model package's builders. The paper's
// canonical workloads go through the higher-level strategy and experiments
// packages; Session is for bespoke studies (custom collectives, synthetic
// kernels, new fusion shapes).
package core

import (
	"fmt"

	"cais/internal/config"
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/model"
	"cais/internal/nvswitch"
	"cais/internal/sim"
)

// Session is one assembled system plus a staged execution plan.
type Session struct {
	machine *machine.Machine
	builder *model.Builder
	stages  [][]*kernel.Kernel
	ran     bool
	elapsed sim.Time
	drained sim.Time
}

// NewSession assembles a machine for the hardware configuration.
func NewSession(hw config.Hardware, opts machine.Options) (*Session, error) {
	if err := hw.Validate(); err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	eng.SetStepLimit(2_000_000_000)
	m := machine.New(eng, hw, opts)
	return &Session{machine: m, builder: model.NewBuilder(m)}, nil
}

// Builder exposes the kernel builders bound to this session's machine.
func (s *Session) Builder() *model.Builder { return s.builder }

// Machine exposes the underlying machine (links, switches, tile tracker).
func (s *Session) Machine() *machine.Machine { return s.machine }

// Stage appends a new barrier-delimited stage: its kernels launch together
// once every kernel of the previous stage has completed on all GPUs.
func (s *Session) Stage(ks ...*kernel.Kernel) {
	s.stages = append(s.stages, ks)
}

// Concurrent appends kernels to the current stage (creating one if none
// exists), so they co-run with the stage's other kernels.
func (s *Session) Concurrent(ks ...*kernel.Kernel) {
	if len(s.stages) == 0 {
		s.stages = append(s.stages, nil)
	}
	last := len(s.stages) - 1
	s.stages[last] = append(s.stages[last], ks...)
}

// PublishTiles seeds input tiles before the run.
func (s *Session) PublishTiles(tiles []kernel.Tile) {
	s.machine.PublishTiles(tiles)
}

// Run executes the staged plan to completion and returns the simulated
// time at which the final stage finished.
func (s *Session) Run() (sim.Time, error) {
	if s.ran {
		return 0, fmt.Errorf("core: session already ran")
	}
	s.ran = true
	completed := false
	var doneAt sim.Time
	s.machine.Eng.At(0, func() {
		var step func(i int)
		step = func(i int) {
			if i >= len(s.stages) {
				completed = true
				doneAt = s.machine.Eng.Now()
				return
			}
			s.machine.LaunchAll(s.stages[i], func() { step(i + 1) })
		}
		step(0)
	})
	s.drained = s.machine.Run()
	if !completed {
		if err := s.machine.CheckQuiescent(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("core: plan did not complete")
	}
	s.elapsed = doneAt
	return doneAt, nil
}

// Elapsed reports the completion time of the last Run's staged plan
// (thread-block retirement; posted writes may still be in flight).
func (s *Session) Elapsed() sim.Time { return s.elapsed }

// DrainedAt reports when the event queue fully drained — all posted data
// delivered and committed. Collective microbenchmarks should use this.
func (s *Session) DrainedAt() sim.Time { return s.drained }

// SwitchStats folds the per-plane switch statistics.
func (s *Session) SwitchStats() nvswitch.Summary { return s.machine.SwitchStats() }

// AvgLinkUtilization reports the mean link busy fraction over the run.
func (s *Session) AvgLinkUtilization() float64 {
	return s.machine.AvgLinkUtilization(s.elapsed)
}

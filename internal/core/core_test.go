package core

import (
	"testing"

	"cais/internal/config"
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/model"
)

func coreHW() config.Hardware {
	hw := config.DGXH100()
	hw.NumGPUs = 4
	hw.NumSwitchPlanes = 2
	hw.SMsPerGPU = 8
	hw.RequestBytes = 8 << 10
	return hw
}

func TestSessionRejectsInvalidHardware(t *testing.T) {
	hw := coreHW()
	hw.NumGPUs = 0
	if _, err := NewSession(hw, machine.Options{}); err == nil {
		t.Fatal("invalid hardware accepted")
	}
}

func TestSessionStagedPipeline(t *testing.T) {
	s, err := NewSession(coreHW(), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := s.Builder()
	red := b.NewSharded(512)
	parts := b.NewParts(512, 512)
	rs := b.FusedGEMMRS("rs", 512, 512, 256, 1,
		func(g, mi, ni int) []kernel.Tile { return nil },
		model.ReduceCAIS, model.FullCoordination(), red, parts)
	s.Stage(rs)
	elapsed, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
	if s.SwitchStats().MergedReds == 0 {
		t.Fatal("fused GEMM-RS produced no merged reductions")
	}
	if s.AvgLinkUtilization() <= 0 {
		t.Fatal("no link utilization")
	}
}

func TestSessionPublishTilesSeedsInputs(t *testing.T) {
	s, err := NewSession(coreHW(), machine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := s.Builder()
	in := b.NewLocalGrid(256, 256)
	var tiles []kernel.Tile
	for mi := 0; mi < in.MTiles; mi++ {
		for ni := 0; ni < in.NTiles; ni++ {
			for g := 0; g < 4; g++ {
				tiles = append(tiles, in.Tile(mi, ni, g))
			}
		}
	}
	s.PublishTiles(tiles)
	out := b.NewLocalGrid(256, 256)
	k := b.GEMM("g", 256, 256, 512, 1,
		func(g, mi, ni int) []kernel.Tile { return []kernel.Tile{in.Tile(mi, ni, g)} }, out)
	s.Stage(k)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

package serve

import (
	"math"
	"sort"

	"cais/internal/sim"
)

// SLO is a latency service-level objective. Zero fields mean "no bound on
// this axis"; a request meets the SLO when every set bound holds.
type SLO struct {
	// TTFT bounds time-to-first-token.
	TTFT sim.Time
	// E2E bounds end-to-end latency.
	E2E sim.Time
}

// met reports whether the request satisfies every set bound.
func (s SLO) met(r Request) bool {
	if s.TTFT > 0 && r.TTFT() > s.TTFT {
		return false
	}
	if s.E2E > 0 && r.E2E() > s.E2E {
		return false
	}
	return true
}

// LatencyStats are exact order statistics over one latency axis, computed
// by sorting the per-request samples (nearest-rank quantiles — not the
// bucket estimates metrics.Hist trades precision for).
type LatencyStats struct {
	P50, P95, P99, Max sim.Time
	Mean               sim.Time
}

// statsOf computes exact nearest-rank order statistics. Empty input yields
// the zero value.
func statsOf(samples []sim.Time) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := append([]sim.Time(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(q float64) sim.Time {
		// Nearest-rank: the smallest sample with cumulative share >= q.
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	var sum sim.Time
	for _, s := range sorted {
		sum += s
	}
	return LatencyStats{
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / sim.Time(len(sorted)),
	}
}

// Summary is the SLO evaluation of one serving run.
type Summary struct {
	Requests int
	// SLOMet counts requests meeting every bound; SLOShare is the
	// fraction.
	SLOMet   int
	SLOShare float64
	// ThroughputRPS counts all completions per simulated second;
	// GoodputRPS only SLO-meeting ones — the metric that makes resilience
	// studies actionable (RAPID-LLM's framing in PAPERS.md).
	ThroughputRPS float64
	GoodputRPS    float64

	Queue LatencyStats
	TTFT  LatencyStats
	TPOT  LatencyStats
	E2E   LatencyStats
}

// Evaluate computes the SLO summary of a completed run.
func Evaluate(res Result, slo SLO) Summary {
	n := len(res.Requests)
	sum := Summary{Requests: n}
	if n == 0 {
		return sum
	}
	queues := make([]sim.Time, 0, n)
	ttfts := make([]sim.Time, 0, n)
	tpots := make([]sim.Time, 0, n)
	e2es := make([]sim.Time, 0, n)
	for _, r := range res.Requests {
		queues = append(queues, r.Queue())
		ttfts = append(ttfts, r.TTFT())
		if r.OutputTokens > 1 {
			tpots = append(tpots, r.TPOT())
		}
		e2es = append(e2es, r.E2E())
		if slo.met(r) {
			sum.SLOMet++
		}
	}
	sum.SLOShare = float64(sum.SLOMet) / float64(n)
	if res.Makespan > 0 {
		seconds := res.Makespan.Seconds()
		sum.ThroughputRPS = float64(n) / seconds
		sum.GoodputRPS = float64(sum.SLOMet) / seconds
	}
	sum.Queue = statsOf(queues)
	sum.TTFT = statsOf(ttfts)
	sum.TPOT = statsOf(tpots)
	sum.E2E = statsOf(e2es)
	return sum
}

package serve

import (
	"fmt"

	"cais/internal/metrics"
	"cais/internal/sim"
)

// SchedConfig tunes the continuous-batching scheduler.
type SchedConfig struct {
	// MaxBatch caps concurrently decoding requests (default 16).
	MaxBatch int
	// MaxPrefillTokens budgets prompt tokens per prefill iteration; a
	// single over-budget request still admits alone (default 4096).
	MaxPrefillTokens int
}

func (sc SchedConfig) maxBatch() int {
	if sc.MaxBatch < 1 {
		return 16
	}
	return sc.MaxBatch
}

func (sc SchedConfig) maxPrefillTokens() int {
	if sc.MaxPrefillTokens < 1 {
		return 4096
	}
	return sc.MaxPrefillTokens
}

// Result is one serving simulation's outcome: the completed request trace
// plus scheduler and cost-model accounting.
type Result struct {
	Requests []Request
	// Iterations = PrefillIters + DecodeIters.
	Iterations   int
	PrefillIters int
	DecodeIters  int
	// Makespan is the completion time of the last request.
	Makespan sim.Time
	// CostSims/CostLookups mirror the cost model's counters when it is a
	// *StrategyCost (0 otherwise): lookups are per-iteration prices
	// served, sims the anchor simulations behind them.
	CostSims    int64
	CostLookups int64
}

// Throughput reports completed requests per second of simulated time.
func (r Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(len(r.Requests)) / r.Makespan.Seconds()
}

// active is one running (decoding) request.
type active struct {
	req       *Request
	remaining int // output tokens still to emit
}

// Run drives the continuous-batching scheduler over the workload:
//
//   - Requests arrive on the sim clock per the workload's trace and wait
//     in a FIFO queue.
//   - Each scheduler iteration either admits queued requests (a prefill
//     iteration over their summed prompt tokens, bounded by the batch and
//     token budgets — prefill has priority, the vLLM-style policy) or
//     advances every running request by one token (a decode iteration).
//   - The clock advances by the cost model's price for the iteration;
//     per-request Admitted/FirstToken/Done timestamps fall out of the
//     loop, giving queueing, TTFT, TPOT and end-to-end latency exactly.
//
// The scheduler is a synchronous loop over sim.Time rather than a
// sim.Engine event program: iterations are strictly sequential (the batch
// is a single resource) and arrivals are known from the trace, so there is
// no event interleaving to resolve — and nothing for a worker count or
// map order to perturb. Determinism is by construction.
func Run(w Workload, cm CostModel, sc SchedConfig) (Result, error) {
	reqs, err := GenRequests(w)
	if err != nil {
		return Result{}, err
	}
	maxBatch := sc.maxBatch()
	maxPrefill := sc.maxPrefillTokens()

	var (
		clock    sim.Time
		queue    []*Request // arrived, waiting for admission
		running  []active   // decoding
		next     int        // next request index to arrive
		done     int
		res      Result
		makespan sim.Time
	)
	// Iteration guard: every iteration either admits a request or emits
	// one token per running request, so total iterations are bounded by
	// requests + total output tokens; anything past that is a bug.
	budget := len(reqs)
	for _, r := range reqs {
		budget += r.OutputTokens
	}

	for done < len(reqs) {
		if res.Iterations > budget {
			return Result{}, fmt.Errorf("serve: scheduler exceeded its iteration budget (%d); cost model returned a non-advancing price?", budget)
		}
		// Pull arrivals up to the current instant into the queue.
		for next < len(reqs) && reqs[next].Arrival <= clock {
			queue = append(queue, &reqs[next])
			next++
		}
		// Idle: jump to the next arrival.
		if len(running) == 0 && len(queue) == 0 {
			clock = reqs[next].Arrival
			continue
		}

		// Admission: fill free batch slots from the queue under the
		// prefill token budget. Prefill preempts decode (new requests'
		// first tokens beat in-flight tail tokens), the continuous-
		// batching policy the serving literature defaults to.
		var admit []*Request
		tokens := 0
		for len(queue) > 0 && len(running)+len(admit) < maxBatch {
			r := queue[0]
			if len(admit) > 0 && tokens+r.PromptTokens > maxPrefill {
				break
			}
			admit = append(admit, r)
			tokens += r.PromptTokens
			queue = queue[1:]
		}

		if len(admit) > 0 {
			cost, err := cm.Prefill(tokens)
			if err != nil {
				return Result{}, err
			}
			start := clock
			clock += cost
			res.PrefillIters++
			res.Iterations++
			for _, r := range admit {
				r.Admitted = start
				r.FirstToken = clock // prefill emits the first token
				if r.OutputTokens <= 1 {
					r.Done = clock
					done++
					makespan = clock
				} else {
					running = append(running, active{req: r, remaining: r.OutputTokens - 1})
				}
			}
			continue
		}

		// Decode: one token for every running request.
		cost, err := cm.Decode(len(running))
		if err != nil {
			return Result{}, err
		}
		clock += cost
		res.DecodeIters++
		res.Iterations++
		keep := running[:0]
		for _, a := range running {
			a.remaining--
			if a.remaining == 0 {
				a.req.Done = clock
				done++
				makespan = clock
			} else {
				keep = append(keep, a)
			}
		}
		running = keep
	}

	res.Requests = reqs
	res.Makespan = makespan
	if stc, ok := cm.(*StrategyCost); ok {
		res.CostSims = stc.Sims()
		res.CostLookups = stc.Lookups()
	}
	return res, nil
}

// Record observes the request trace into latency histograms (serve.*_us,
// microsecond-valued) on the registry, exporting the distributions through
// the standard -metrics-json path with the registry's p50/p95/p99 fields.
// Call it from a single goroutine (registries are not goroutine-safe); the
// experiment drivers record during their sequential fold.
func (r Result) Record(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	queue := reg.Hist("serve.queue_us")
	ttft := reg.Hist("serve.ttft_us")
	tpot := reg.Hist("serve.tpot_us")
	e2e := reg.Hist("serve.e2e_us")
	for _, req := range r.Requests {
		queue.Observe(req.Queue().Microseconds())
		ttft.Observe(req.TTFT().Microseconds())
		if req.OutputTokens > 1 {
			tpot.Observe(req.TPOT().Microseconds())
		}
		e2e.Observe(req.E2E().Microseconds())
	}
}

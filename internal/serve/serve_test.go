package serve

import (
	"reflect"
	"testing"

	"cais/internal/config"
	"cais/internal/memo"
	"cais/internal/metrics"
	"cais/internal/sim"
	"cais/internal/strategy"
)

func tinyModel() config.Model {
	return config.Model{Name: "Serve-Tiny", Hidden: 512, FFNHidden: 2048, Heads: 4, SeqLen: 512, Batch: 2, Layers: 4}
}

func tinyHW() config.Hardware {
	hw := config.DGXH100()
	hw.RequestBytes = 32 << 10
	return hw
}

func testWorkload() Workload {
	return Workload{
		Requests:   12,
		RatePerSec: 50,
		Prompt:     Uniform(64, 256),
		Output:     Uniform(4, 12),
		Seed:       0xCA15,
	}
}

func TestGenRequestsDeterministic(t *testing.T) {
	a, err := GenRequests(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenRequests(testWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical workloads generated different traces")
	}
	var prev sim.Time
	for i, r := range a {
		if r.Arrival < prev {
			t.Fatalf("request %d arrives at %v before predecessor at %v", i, r.Arrival, prev)
		}
		prev = r.Arrival
		if r.PromptTokens < 64 || r.PromptTokens > 256 {
			t.Errorf("request %d prompt %d outside [64,256]", i, r.PromptTokens)
		}
		if r.OutputTokens < 4 || r.OutputTokens > 12 {
			t.Errorf("request %d output %d outside [4,12]", i, r.OutputTokens)
		}
	}
}

// TestGenRequestsStreamIsolation pins the labeled-stream property: changing
// the output-length distribution must not move a single arrival time or
// prompt length.
func TestGenRequestsStreamIsolation(t *testing.T) {
	w := testWorkload()
	a, err := GenRequests(w)
	if err != nil {
		t.Fatal(err)
	}
	w.Output = Fixed(8)
	b, err := GenRequests(w)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Arrival != b[i].Arrival || a[i].PromptTokens != b[i].PromptTokens {
			t.Fatalf("request %d: changing the output distribution perturbed arrivals/prompts", i)
		}
		if b[i].OutputTokens != 8 {
			t.Fatalf("request %d: fixed output dist gave %d tokens", i, b[i].OutputTokens)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	cases := []Workload{
		{Requests: 0, RatePerSec: 1, Prompt: Fixed(1), Output: Fixed(1)},
		{Requests: 1, RatePerSec: 0, Prompt: Fixed(1), Output: Fixed(1)},
		{Requests: 1, RatePerSec: 1, Prompt: Fixed(0), Output: Fixed(1)},
		{Requests: 1, RatePerSec: 1, Prompt: Fixed(1), Output: Uniform(5, 2)},
		{Requests: 1, RatePerSec: 1, Prompt: LengthDist{Kind: DistKind(99), Value: 1}, Output: Fixed(1)},
	}
	for i, w := range cases {
		if _, err := GenRequests(w); err == nil {
			t.Errorf("case %d: invalid workload %+v accepted", i, w)
		}
	}
}

func TestQuantizeTokens(t *testing.T) {
	cases := map[int]int{1: 16, 16: 16, 17: 32, 100: 128, 128: 128, 129: 256}
	for in, want := range cases {
		if got := quantizeTokens(in); got != want {
			t.Errorf("quantizeTokens(%d) = %d, want %d", in, got, want)
		}
	}
}

// fixedCost is a deterministic unit-test cost model: linear in tokens.
type fixedCost struct{ perToken sim.Time }

func (f fixedCost) Prefill(tokens int) (sim.Time, error) { return f.perToken * sim.Time(tokens), nil }
func (f fixedCost) Decode(batch int) (sim.Time, error)   { return f.perToken * sim.Time(batch), nil }

// TestSchedulerInvariants drives the scheduler with an analytic cost model
// and checks the request-lifecycle invariants that every latency metric
// rests on.
func TestSchedulerInvariants(t *testing.T) {
	w := testWorkload()
	res, err := Run(w, fixedCost{perToken: sim.Microsecond}, SchedConfig{MaxBatch: 4, MaxPrefillTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != w.Requests {
		t.Fatalf("completed %d requests, want %d", len(res.Requests), w.Requests)
	}
	if res.Iterations != res.PrefillIters+res.DecodeIters {
		t.Errorf("iterations %d != prefill %d + decode %d", res.Iterations, res.PrefillIters, res.DecodeIters)
	}
	var maxDone sim.Time
	for _, r := range res.Requests {
		if r.Admitted < r.Arrival {
			t.Errorf("request %d admitted at %v before arrival %v", r.ID, r.Admitted, r.Arrival)
		}
		if r.FirstToken <= r.Admitted {
			t.Errorf("request %d first token at %v not after admission %v", r.ID, r.FirstToken, r.Admitted)
		}
		if r.Done < r.FirstToken {
			t.Errorf("request %d done %v before first token %v", r.ID, r.Done, r.FirstToken)
		}
		if r.OutputTokens > 1 && r.Done == r.FirstToken {
			t.Errorf("request %d emitted %d tokens in zero decode time", r.ID, r.OutputTokens)
		}
		if r.Done > maxDone {
			maxDone = r.Done
		}
	}
	if res.Makespan != maxDone {
		t.Errorf("makespan %v != last completion %v", res.Makespan, maxDone)
	}
	if res.Throughput() <= 0 {
		t.Error("non-positive throughput")
	}
}

// TestSchedulerDeterministic runs the same configuration twice and
// requires identical traces.
func TestSchedulerDeterministic(t *testing.T) {
	a, err := Run(testWorkload(), fixedCost{perToken: sim.Microsecond}, SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(testWorkload(), fixedCost{perToken: sim.Microsecond}, SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical scheduler runs produced different results")
	}
}

// TestStrategyCostMemoizesShapes is the tentpole's memo pin at the serve
// layer: a serving run issues one cost lookup per scheduler iteration, but
// quantized shapes collapse onto a handful of anchors — strictly fewer
// simulations than iterations, and a second run over the same cache
// simulates nothing new.
func TestStrategyCostMemoizesShapes(t *testing.T) {
	cache := memo.NewCache()
	cm, err := NewStrategyCost(tinyHW(), strategy.CAIS(), tinyModel(), 1, strategy.Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(testWorkload(), cm, SchedConfig{MaxBatch: 4, MaxPrefillTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.CostLookups != int64(res.Iterations) {
		t.Errorf("%d lookups for %d iterations, want one per iteration", res.CostLookups, res.Iterations)
	}
	if res.CostSims == 0 {
		t.Fatal("no anchor simulations ran; the cost model is not consulting the strategy layer")
	}
	if res.CostSims >= int64(res.Iterations) {
		t.Fatalf("sims (%d) not strictly fewer than scheduler iterations (%d)", res.CostSims, res.Iterations)
	}
	t.Logf("serve memo: %d iterations, %d lookups, %d anchor simulations", res.Iterations, res.CostLookups, res.CostSims)

	// Same shapes, same cache: a second cost model simulates nothing.
	cm2, err := NewStrategyCost(tinyHW(), strategy.CAIS(), tinyModel(), 1, strategy.Options{}, cache)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(testWorkload(), cm2, SchedConfig{MaxBatch: 4, MaxPrefillTokens: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CostSims != 0 {
		t.Errorf("hot-cache run simulated %d new anchors, want 0", res2.CostSims)
	}
	if !reflect.DeepEqual(res.Requests, res2.Requests) {
		t.Error("hot-cache request trace differs from cold run")
	}
}

// TestStrategyCostPrivateCacheMatchesShared pins memo-on/off byte-identity
// at the cost layer: prices from a shared cache and from the private
// fallback cache are identical.
func TestStrategyCostPrivateCacheMatchesShared(t *testing.T) {
	shared, err := NewStrategyCost(tinyHW(), strategy.CAIS(), tinyModel(), 1, strategy.Options{}, memo.NewCache())
	if err != nil {
		t.Fatal(err)
	}
	private, err := NewStrategyCost(tinyHW(), strategy.CAIS(), tinyModel(), 1, strategy.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tokens := range []int{1, 7, 16, 100, 250} {
		a, err := shared.Prefill(tokens)
		if err != nil {
			t.Fatal(err)
		}
		b, err := private.Prefill(tokens)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("tokens=%d: shared-cache price %v != private-cache price %v", tokens, a, b)
		}
		if a <= 0 {
			t.Errorf("tokens=%d: non-positive price %v", tokens, a)
		}
	}
}

// TestStrategyCostRejectsUncacheableOptions: live callbacks cannot memoize,
// so the constructor refuses them up front.
func TestStrategyCostRejectsUncacheableOptions(t *testing.T) {
	opts := strategy.Options{Progress: func(sim.Time, uint64) {}, ProgressEvery: 1}
	if _, err := NewStrategyCost(tinyHW(), strategy.CAIS(), tinyModel(), 1, opts, nil); err == nil {
		t.Fatal("uncacheable options accepted")
	}
}

// TestEvaluateExact checks the SLO evaluator against a handcrafted trace.
func TestEvaluateExact(t *testing.T) {
	mk := func(id int, arrival, admitted, first, done sim.Time, out int) Request {
		return Request{ID: id, Arrival: arrival, Admitted: admitted, FirstToken: first, Done: done, OutputTokens: out, PromptTokens: 1}
	}
	res := Result{
		Requests: []Request{
			mk(0, 0, 0, 1*sim.Millisecond, 2*sim.Millisecond, 2),
			mk(1, 0, 1*sim.Millisecond, 2*sim.Millisecond, 4*sim.Millisecond, 3),
			mk(2, 0, 2*sim.Millisecond, 4*sim.Millisecond, 10*sim.Millisecond, 4),
			mk(3, 0, 0, 8*sim.Millisecond, 8*sim.Millisecond, 1),
		},
		Makespan: 10 * sim.Millisecond,
	}
	sum := Evaluate(res, SLO{E2E: 8 * sim.Millisecond})
	if sum.Requests != 4 || sum.SLOMet != 3 {
		t.Fatalf("SLO met = %d/%d, want 3/4", sum.SLOMet, sum.Requests)
	}
	if sum.SLOShare != 0.75 {
		t.Errorf("SLO share %v, want 0.75", sum.SLOShare)
	}
	if sum.ThroughputRPS != 400 || sum.GoodputRPS != 300 {
		t.Errorf("throughput/goodput = %v/%v, want 400/300", sum.ThroughputRPS, sum.GoodputRPS)
	}
	if sum.E2E.P50 != 4*sim.Millisecond {
		t.Errorf("E2E p50 = %v, want 4ms (nearest rank of [2,4,8,10])", sum.E2E.P50)
	}
	if sum.E2E.P99 != 10*sim.Millisecond || sum.E2E.Max != 10*sim.Millisecond {
		t.Errorf("E2E p99/max = %v/%v, want 10ms/10ms", sum.E2E.P99, sum.E2E.Max)
	}
	// TPOT only counts multi-token requests: (2-1)/1, (4-2)/2, (10-4)/3 ms.
	if sum.TPOT.P50 != sim.Millisecond {
		t.Errorf("TPOT p50 = %v, want 1ms", sum.TPOT.P50)
	}
	// TTFT bound excludes request 3 (8ms TTFT > 4ms).
	strict := Evaluate(res, SLO{TTFT: 4 * sim.Millisecond})
	if strict.SLOMet != 3 {
		t.Errorf("TTFT-bound SLO met = %d, want 3", strict.SLOMet)
	}
	// No bounds: everything meets.
	if all := Evaluate(res, SLO{}); all.SLOMet != 4 {
		t.Errorf("unbounded SLO met = %d, want 4", all.SLOMet)
	}
}

func TestRecordExportsHistograms(t *testing.T) {
	res, err := Run(testWorkload(), fixedCost{perToken: sim.Microsecond}, SchedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	res.Record(reg)
	snap := reg.Snapshot()
	for _, name := range []string{"serve.queue_us", "serve.ttft_us", "serve.tpot_us", "serve.e2e_us"} {
		m, ok := snap.Get(name)
		if !ok || m.Count == 0 {
			t.Errorf("histogram %s missing or empty in snapshot", name)
			continue
		}
		if name != "serve.queue_us" && m.P99 < m.P50 {
			t.Errorf("%s: p99 %v < p50 %v", name, m.P99, m.P50)
		}
	}
}

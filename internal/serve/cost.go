package serve

import (
	"fmt"

	"cais/internal/config"
	"cais/internal/memo"
	"cais/internal/metrics"
	"cais/internal/sim"
	"cais/internal/strategy"
)

// CostModel prices scheduler iterations. Implementations must be
// deterministic: the same token/batch argument always returns the same
// cost (the scheduler replays bit-identically only if they do).
type CostModel interface {
	// Prefill returns the cost of one prefill iteration over the given
	// total prompt tokens (summed over the admitted requests).
	Prefill(tokens int) (sim.Time, error)
	// Decode returns the cost of one decode iteration emitting one token
	// for each of batch running requests.
	Decode(batch int) (sim.Time, error)
}

// minShapeTokens is the smallest simulated token count: shapes quantize
// upward to a power of two no smaller than this, so a decode batch of 1
// and of 13 share the 16-token anchor simulation.
const minShapeTokens = 16

// quantizeTokens rounds n up to the next power of two, at least
// minShapeTokens. Quantization is what makes the per-shape memoization
// effective: a serving run issues hundreds of iteration-cost lookups but
// only ever simulates a handful of anchor shapes.
func quantizeTokens(n int) int {
	q := minShapeTokens
	for q < n {
		q <<= 1
	}
	return q
}

// StrategyCost prices iterations by simulating the strategy/machine layer
// on shape anchors: a token count t maps to a one-layer forward pass of
// the base architecture reshaped to Batch=1, SeqLen=quantize(t), scaled
// back linearly to t tokens and up to the full model depth (the layer-
// homogeneity argument of DESIGN.md §1). A decode iteration over B
// sequences is priced as a forward pass over B tokens: per token, the
// tensor-parallel GEMM and collective volumes are shape-equivalent, and
// the KV-cache attention depth this ignores is second-order for the
// communication behavior under study.
//
// Anchor simulations flow through memo.RunLayers. With a shared cache the
// anchors join the sweep-wide pool (shapes repeat across arrival rates, so
// cross-point hits are the common case); with none a private cache still
// guarantees one simulation per shape per cost model. Costs are identical
// either way, so serving output is byte-identical memo on or off.
type StrategyCost struct {
	hw     config.Hardware
	spec   strategy.Spec
	base   config.Model
	layers int
	opts   strategy.Options
	cache  *memo.Cache

	sims    metrics.AtomicCounter // anchor simulations actually run
	lookups metrics.AtomicCounter // Prefill/Decode calls served
}

// NewStrategyCost builds a cost model for one (hardware, strategy, model)
// configuration. layers is the per-iteration simulated depth (<= 1 means
// 1); opts carries run knobs — notably Options.Faults for degraded-mode
// pricing. cache may be nil: a private per-model cache is used so repeated
// shapes still simulate once.
func NewStrategyCost(hw config.Hardware, spec strategy.Spec, base config.Model, layers int, opts strategy.Options, cache *memo.Cache) (*StrategyCost, error) {
	if base.Layers < 1 {
		return nil, fmt.Errorf("serve: base model %q has %d layers", base.Name, base.Layers)
	}
	if layers < 1 {
		layers = 1
	}
	if !memo.Cacheable(opts) {
		return nil, fmt.Errorf("serve: cost-model options must be cacheable (no Configure/Tracer/Progress callbacks)")
	}
	if cache == nil {
		cache = memo.NewCache()
	}
	return &StrategyCost{hw: hw, spec: spec, base: base, layers: layers, opts: opts, cache: cache}, nil
}

// Sims reports how many anchor simulations this model triggered (cache
// misses it caused). The scheduler's memo test pins Sims() strictly below
// the iteration count.
func (sc *StrategyCost) Sims() int64 { return sc.sims.Value() }

// Lookups reports how many iteration prices were served.
func (sc *StrategyCost) Lookups() int64 { return sc.lookups.Value() }

// anchorModel derives the simulated shape for q tokens. The name encodes
// the anchor deterministically — config.Model.Name is part of the memo
// key, so it must be a pure function of the shape.
func (sc *StrategyCost) anchorModel(q int) config.Model {
	m := sc.base
	m.Name = fmt.Sprintf("serve/%s/tok%d", sc.base.Name, q)
	m.Batch = 1
	m.SeqLen = q
	return m
}

// tokenCost prices a forward pass over tokens tokens: simulate the
// quantized anchor once, then scale the full-depth extrapolation linearly
// from the anchor's token count to the requested one. All arithmetic is
// integer, so the price is exact and replayable.
func (sc *StrategyCost) tokenCost(tokens int) (sim.Time, error) {
	if tokens < 1 {
		return 0, fmt.Errorf("serve: non-positive token count %d", tokens)
	}
	sc.lookups.Inc()
	q := quantizeTokens(tokens)
	m := sc.anchorModel(q)
	e, err := sc.cache.Do(memo.KeyLayers(sc.hw, sc.spec, m, false, sc.layers, sc.opts), func() (memo.Entry, error) {
		sc.sims.Inc()
		return memo.RunLayers(nil, sc.hw, sc.spec, m, false, sc.layers, sc.opts)
	})
	if err != nil {
		return 0, fmt.Errorf("serve: anchor %s: %w", m.Name, err)
	}
	perLayer := e.Elapsed / sim.Time(sc.layers)
	full := perLayer * sim.Time(sc.base.Layers)
	return full * sim.Time(tokens) / sim.Time(q), nil
}

// Prefill prices a prefill iteration over the admitted prompt tokens.
func (sc *StrategyCost) Prefill(tokens int) (sim.Time, error) { return sc.tokenCost(tokens) }

// Decode prices a decode iteration for a batch of running requests.
func (sc *StrategyCost) Decode(batch int) (sim.Time, error) { return sc.tokenCost(batch) }

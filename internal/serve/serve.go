// Package serve is the deterministic request-level LLM serving engine
// layered over the iteration-level simulator: a seeded open-loop arrival
// process feeds a continuous-batching scheduler whose per-iteration costs
// come from the strategy/machine layer (memoized per batch shape through
// internal/memo), and an SLO evaluator turns the per-request latencies
// into p50/p95/p99 and goodput numbers (DESIGN.md §13).
//
// Everything runs on the sim clock and every random draw comes from
// labeled sim.NewStreamRNG streams, so a (workload, cost model) pair
// replays bit-identically — the same determinism contract as the rest of
// the stack, and the property the serving experiment's parallel-sweep
// byte-identity tests pin.
package serve

import (
	"fmt"

	"cais/internal/sim"
)

// DistKind selects a length-distribution family.
type DistKind int

const (
	// DistFixed yields Value for every request.
	DistFixed DistKind = iota
	// DistUniform yields a uniform integer in [Min, Max].
	DistUniform
)

// LengthDist is a configurable token-length distribution.
type LengthDist struct {
	Kind DistKind
	// Value is the fixed length (DistFixed).
	Value int
	// Min/Max bound the uniform draw (DistUniform).
	Min, Max int
}

// Fixed returns a distribution yielding v always.
func Fixed(v int) LengthDist { return LengthDist{Kind: DistFixed, Value: v} }

// Uniform returns a uniform distribution over [lo, hi].
func Uniform(lo, hi int) LengthDist { return LengthDist{Kind: DistUniform, Min: lo, Max: hi} }

// sample draws one length; results are clamped to at least 1 token.
func (d LengthDist) sample(rng *sim.RNG) int {
	n := d.Value
	switch d.Kind {
	case DistFixed:
		// n already set.
	case DistUniform:
		lo, hi := d.Min, d.Max
		if hi < lo {
			lo, hi = hi, lo
		}
		n = lo + rng.Intn(hi-lo+1)
	default:
		n = d.Value
	}
	if n < 1 {
		n = 1
	}
	return n
}

func (d LengthDist) validate(what string) error {
	switch d.Kind {
	case DistFixed:
		if d.Value < 1 {
			return fmt.Errorf("serve: %s: fixed length %d, want >= 1", what, d.Value)
		}
	case DistUniform:
		if d.Min < 1 || d.Max < d.Min {
			return fmt.Errorf("serve: %s: uniform bounds [%d,%d], want 1 <= min <= max", what, d.Min, d.Max)
		}
	default:
		return fmt.Errorf("serve: %s: unknown distribution kind %d", what, int(d.Kind))
	}
	return nil
}

// Workload describes an open-loop serving workload: requests arrive by a
// Poisson process (deterministic exponential inter-arrivals) regardless of
// how fast the system drains them.
type Workload struct {
	// Requests is the number of requests to generate.
	Requests int
	// RatePerSec is the mean arrival rate in requests per second.
	RatePerSec float64
	// Prompt and Output are the per-request token-length distributions.
	Prompt LengthDist
	Output LengthDist
	// Seed is the base seed; arrivals and each length distribution draw
	// from independent labeled streams, so changing one distribution never
	// perturbs the others.
	Seed uint64
}

// Validate checks the workload parameters.
func (w Workload) Validate() error {
	if w.Requests < 1 {
		return fmt.Errorf("serve: workload needs at least 1 request, have %d", w.Requests)
	}
	if w.RatePerSec <= 0 {
		return fmt.Errorf("serve: arrival rate must be positive, have %g", w.RatePerSec)
	}
	if err := w.Prompt.validate("prompt"); err != nil {
		return err
	}
	return w.Output.validate("output")
}

// Request is one serving request with its lifecycle timestamps, all on the
// sim clock. The arrival fields are set by GenRequests; the rest by the
// scheduler.
type Request struct {
	ID           int
	Arrival      sim.Time // enters the queue
	PromptTokens int
	OutputTokens int

	Admitted   sim.Time // pulled from the queue into a prefill iteration
	FirstToken sim.Time // end of its prefill iteration (TTFT anchor)
	Done       sim.Time // last output token emitted
}

// Queue reports the request's queueing delay.
func (r Request) Queue() sim.Time { return r.Admitted - r.Arrival }

// TTFT reports time-to-first-token (arrival to end of prefill).
func (r Request) TTFT() sim.Time { return r.FirstToken - r.Arrival }

// TPOT reports the mean time-per-output-token over the decode phase; zero
// for single-token outputs (there is no inter-token gap to measure).
func (r Request) TPOT() sim.Time {
	if r.OutputTokens <= 1 {
		return 0
	}
	return (r.Done - r.FirstToken) / sim.Time(r.OutputTokens-1)
}

// E2E reports the end-to-end latency.
func (r Request) E2E() sim.Time { return r.Done - r.Arrival }

// GenRequests materializes the workload's request trace: exponential
// inter-arrivals at RatePerSec plus per-request prompt/output lengths,
// each from its own labeled stream of the workload seed. The trace is
// sorted by arrival time by construction and is a pure function of the
// workload value.
func GenRequests(w Workload) ([]Request, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	arrivals := sim.NewStreamRNG(w.Seed, "serve/arrivals")
	prompts := sim.NewStreamRNG(w.Seed, "serve/prompt")
	outputs := sim.NewStreamRNG(w.Seed, "serve/output")

	reqs := make([]Request, w.Requests)
	var at sim.Time
	for i := range reqs {
		// Exponential gap with mean 1/rate seconds; Scale is the audited
		// float->Time conversion.
		at += sim.Scale(sim.Second, arrivals.ExpFloat64()/w.RatePerSec)
		reqs[i] = Request{
			ID:           i,
			Arrival:      at,
			PromptTokens: w.Prompt.sample(prompts),
			OutputTokens: w.Output.sample(outputs),
		}
	}
	return reqs, nil
}

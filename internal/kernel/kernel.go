// Package kernel defines the kernel intermediate representation the CAIS
// stack operates on: tiled grids of thread blocks, symbolic address
// expressions for the compiler's static index analysis (Fig. 8a), and the
// per-TB work descriptors the GPU model executes.
//
// A kernel is deliberately represented at thread-block granularity: every
// mechanism the paper builds (request merging, TB-group coordination,
// TB-level dataflow) is defined at this granularity.
package kernel

import (
	"fmt"

	"cais/internal/noc"
	"cais/internal/sim"
)

// Kind classifies kernels for scheduling and reporting.
type Kind int

const (
	// KindGEMM is a tiled matrix multiplication.
	KindGEMM Kind = iota
	// KindLN is layer normalization (row-wise, memory-bound).
	KindLN
	// KindElemwise covers dropout/add/activation kernels.
	KindElemwise
	// KindAttention is the (head-local) attention score/context compute.
	KindAttention
	// KindComm is a dedicated communication kernel (NVLS collectives,
	// ring steps) that occupies a small number of SMs.
	KindComm
)

func (k Kind) String() string {
	switch k {
	case KindGEMM:
		return "gemm"
	case KindLN:
		return "ln"
	case KindElemwise:
		return "elemwise"
	case KindAttention:
		return "attention"
	case KindComm:
		return "comm"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Semantic is the memory-semantic requirement of an access (the paper's
// read/write requirement that must align with the communication mode).
type Semantic int

const (
	// SemRead requires load semantics (e.g. AG-GEMM input gathering).
	SemRead Semantic = iota
	// SemReduce requires reducing-write semantics (e.g. GEMM-RS output).
	SemReduce
	// SemWrite requires plain write semantics.
	SemWrite
)

func (s Semantic) String() string {
	switch s {
	case SemRead:
		return "read"
	case SemReduce:
		return "reduce"
	case SemWrite:
		return "write"
	}
	return fmt.Sprintf("sem(%d)", int(s))
}

// Tile identifies one unit of data for TB-level dependency tracking: a
// (buffer, index) pair. Buffers are assigned unique IDs by the workload
// builder.
type Tile struct {
	Buf int
	Idx int
}

// Access is one remote or local memory operation a TB performs.
type Access struct {
	// Sem is the semantic requirement; Mode is the lowered wire
	// operation. Strategies must keep them aligned (that alignment is
	// exactly what CAIS provides and NVLS lacks).
	Sem  Semantic
	Mode noc.Op

	Addr     uint64 // address key (merging/routing)
	Home     int    // owner GPU; == issuing GPU for local accesses
	Bytes    int64  // total bytes moved by this access
	Expected int    // participating requests for merge/sync tracking

	// Publish lists tiles that become ready when this access's data
	// movement completes: at the issuing GPU for loads and local
	// accesses, at the home GPU (via contribution counting) for
	// reductions and stores.
	Publish []Tile

	// PublishAt, when non-nil, yields receiver-specific tiles for
	// multicast stores, whose copies land in per-GPU local buffers.
	PublishAt func(gpu int) []Tile

	// PublishEach is the closure-free form of the common stride-1
	// PublishAt pattern: when Buf != 0, receiver r publishes the single
	// tile {Buf, Idx + r}. Builders prefer it over PublishAt because a
	// Tile value costs nothing to construct while a closure is a heap
	// allocation per access per kernel per iteration.
	PublishEach Tile

	// TileNeed is the number of whole-access contributions required at
	// the home GPU before Publish tiles become ready (reductions: all
	// contributors including the home GPU's local partial). Zero means 1.
	TileNeed int

	// Broadcast marks a reduction whose merged result is written to every
	// GPU's replica (the AllReduce semantics of the paper's GEMM-AR
	// combination, Fig. 1h) instead of only the home GPU.
	Broadcast bool

	// Local marks an access served entirely by the issuing GPU's HBM.
	Local bool
}

// TBDesc describes one thread block's work.
type TBDesc struct {
	Flops      float64  // compute work
	LocalBytes int64    // HBM traffic of the compute phase
	Pre        []Access // performed before compute (loads)
	Post       []Access // performed after compute (writes/reductions)
	In         []Tile   // tiles that must be ready before the TB starts
	Out        []Tile   // tiles published when the TB (and its posts) retire
	Group      int      // TB-group ID (compiler-assigned); -1 = ungrouped

	// GroupPeers is the number of GPUs whose TB of this group issues
	// CAIS-tagged instructions and therefore registers with the Group
	// Sync Table. The GPU owning the data accesses it locally and is not
	// part of the group, so this is typically NumGPUs-1. Zero means all
	// GPUs participate.
	GroupPeers int
}

// Kernel is one device kernel: a grid of TBs whose work is produced by the
// Work generator. The same kernel object is launched on every GPU (SPMD);
// Work receives the GPU index.
type Kernel struct {
	Name string
	Kind Kind
	Grid int // number of thread blocks per GPU

	// Work generates TB tb's descriptor on GPU gpu. It must be
	// deterministic: calling it again with the same arguments must yield
	// an equivalent descriptor. It may allocate the descriptor's slices
	// from a per-run arena (the model builders do), so callers must not
	// retain Pre/Post/In/Out slices across a later arena rewind.
	Work func(gpu, tb int) TBDesc

	// Patterns are the symbolic access patterns of the kernel body,
	// consumed by the compiler's static index analysis. They describe
	// the same accesses Work generates concretely.
	Patterns []Pattern

	// SMShare is the fraction of the GPU's SMs this kernel may occupy
	// (asymmetric kernel overlapping partitions the pool). Zero means
	// the full GPU.
	SMShare float64

	// CommSMs pins a comm kernel to a fixed SM count instead of a share.
	CommSMs int

	// PreLaunchSync enables pre-launch TB-group synchronization (aligned
	// dispatch across GPUs); PreAccessSync enables pre-access
	// synchronization at the first CAIS-tagged instruction. Full
	// merging-aware coordination (Sec. III-B) enables both.
	PreLaunchSync bool
	PreAccessSync bool

	// Throttled enables TB-aware request throttling.
	Throttled bool

	// LaunchOverheadOverride, when positive, replaces the hardware
	// default (fused kernels launch once; chunked pipelines pay per
	// chunk).
	LaunchOverheadOverride sim.Time
}

// Validate reports structural problems in the kernel definition.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernel: empty name")
	}
	if k.Grid < 1 {
		return fmt.Errorf("kernel %s: grid %d, need >= 1", k.Name, k.Grid)
	}
	if k.Work == nil {
		return fmt.Errorf("kernel %s: nil Work generator", k.Name)
	}
	if k.SMShare < 0 || k.SMShare > 1 {
		return fmt.Errorf("kernel %s: SMShare %v out of [0,1]", k.Name, k.SMShare)
	}
	return nil
}

// TotalFlops sums compute work across the grid for one GPU.
func (k *Kernel) TotalFlops(gpu int) float64 {
	var total float64
	for tb := 0; tb < k.Grid; tb++ {
		total += k.Work(gpu, tb).Flops
	}
	return total
}

// RemoteBytes sums non-local access bytes across the grid for one GPU.
func (k *Kernel) RemoteBytes(gpu int) int64 {
	var total int64
	for tb := 0; tb < k.Grid; tb++ {
		d := k.Work(gpu, tb)
		for _, a := range d.Pre {
			if !a.Local {
				total += a.Bytes
			}
		}
		for _, a := range d.Post {
			if !a.Local {
				total += a.Bytes
			}
		}
	}
	return total
}

package kernel

import (
	"testing"
	"testing/quick"

	"cais/internal/noc"
)

func TestExprEval(t *testing.T) {
	env := Env{GPU: 3, BlockIdx: 17}
	cases := []struct {
		e    Expr
		want int64
	}{
		{Const(5), 5},
		{ParamGPU, 3},
		{ParamBlock, 17},
		{Add(ParamBlock, Const(1)), 18},
		{Mul(ParamBlock, Const(128)), 17 * 128},
		{Div(ParamBlock, Const(4)), 4},
		{Mod(ParamBlock, Const(4)), 1},
		{Add(Mul(ParamGPU, Const(100)), ParamBlock), 317},
	}
	for _, c := range cases {
		if got := c.e.Eval(env); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestExprDivModByZeroPanics(t *testing.T) {
	for _, e := range []Expr{Div(ParamBlock, Const(0)), Mod(ParamBlock, Const(0))} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", e)
				}
			}()
			e.Eval(Env{})
		}()
	}
}

func TestUsesParam(t *testing.T) {
	gpuVariant := Add(Mul(ParamGPU, Const(4096)), ParamBlock)
	gpuInvariant := Add(Mul(ParamBlock, Const(128)), Const(7))
	if !UsesParam(gpuVariant, ParamGPU) {
		t.Error("gpuID not detected in variant expression")
	}
	if UsesParam(gpuInvariant, ParamGPU) {
		t.Error("false gpuID detection in invariant expression")
	}
	if !UsesParam(gpuInvariant, ParamBlock) {
		t.Error("blockIdx not detected")
	}
}

func TestExprGPUInvarianceProperty(t *testing.T) {
	// Property: an expression not using gpuID evaluates identically on
	// all GPUs for the same blockIdx (the exact property the compiler's
	// index analysis relies on).
	f := func(scale uint8, off uint16, block uint8) bool {
		e := Add(Mul(ParamBlock, Const(int64(scale)+1)), Const(int64(off)))
		var first int64
		for g := 0; g < 8; g++ {
			v := e.Eval(Env{GPU: int64(g), BlockIdx: int64(block)})
			if g == 0 {
				first = v
			} else if v != first {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternEvaluators(t *testing.T) {
	p := Pattern{
		Name: "ld.X", Sem: SemRead,
		Addr:  Mul(ParamBlock, Const(1024)),
		Home:  Mod(ParamBlock, Const(8)),
		Bytes: 2048,
	}
	if got := p.AddrAt(5, 3); got != 3072 {
		t.Fatalf("AddrAt = %d, want 3072", got)
	}
	if got := p.HomeAt(5, 11); got != 3 {
		t.Fatalf("HomeAt = %d, want 3", got)
	}
}

func TestKernelValidate(t *testing.T) {
	ok := &Kernel{Name: "k", Grid: 4, Work: func(g, tb int) TBDesc { return TBDesc{} }}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid kernel rejected: %v", err)
	}
	bad := []*Kernel{
		{Grid: 4, Work: ok.Work},
		{Name: "k", Grid: 0, Work: ok.Work},
		{Name: "k", Grid: 4},
		{Name: "k", Grid: 4, Work: ok.Work, SMShare: 1.5},
	}
	for i, k := range bad {
		if err := k.Validate(); err == nil {
			t.Errorf("bad kernel %d accepted", i)
		}
	}
}

func TestKernelAggregates(t *testing.T) {
	k := &Kernel{
		Name: "g", Grid: 3,
		Work: func(gpu, tb int) TBDesc {
			return TBDesc{
				Flops: 100,
				Pre:   []Access{{Mode: noc.OpLdCAIS, Bytes: 10}},
				Post:  []Access{{Mode: noc.OpStore, Bytes: 5, Local: true}},
			}
		},
	}
	if got := k.TotalFlops(0); got != 300 {
		t.Fatalf("TotalFlops = %v, want 300", got)
	}
	if got := k.RemoteBytes(0); got != 30 {
		t.Fatalf("RemoteBytes = %v, want 30 (local posts excluded)", got)
	}
}

func TestKindAndSemanticStrings(t *testing.T) {
	if KindGEMM.String() != "gemm" || KindComm.String() != "comm" {
		t.Fatal("kind names wrong")
	}
	if SemRead.String() != "read" || SemReduce.String() != "reduce" || SemWrite.String() != "write" {
		t.Fatal("semantic names wrong")
	}
}

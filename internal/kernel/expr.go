package kernel

import "fmt"

// Expr is a symbolic integer expression over kernel launch parameters,
// used to describe memory-access index expressions. The CAIS compiler's
// static index analysis (Fig. 8a) walks these expressions to decide
// whether an access is GPU-invariant: if the expression does not reference
// the GPU ID, thread blocks with equal blockIdx on different GPUs access
// the same location and are mergeable.
type Expr interface {
	// Eval computes the expression under the given bindings.
	Eval(env Env) int64
	// fmt.Stringer for diagnostics.
	String() string
	// walk visits the expression tree.
	walk(fn func(Expr))
}

// Env binds the kernel launch parameters.
type Env struct {
	GPU      int64 // gpuID
	BlockIdx int64 // blockIdx (linearized)
}

// Param names a launch parameter.
type Param string

// The two parameters the index analysis distinguishes.
const (
	ParamGPU   Param = "gpuID"
	ParamBlock Param = "blockIdx"
)

// Eval implements Expr.
func (p Param) Eval(env Env) int64 {
	switch p {
	case ParamGPU:
		return env.GPU
	case ParamBlock:
		return env.BlockIdx
	}
	panic(fmt.Sprintf("kernel: unknown param %q", string(p)))
}

func (p Param) String() string     { return string(p) }
func (p Param) walk(fn func(Expr)) { fn(p) }

// Const is an integer literal.
type Const int64

// Eval implements Expr.
func (c Const) Eval(Env) int64     { return int64(c) }
func (c Const) String() string     { return fmt.Sprintf("%d", int64(c)) }
func (c Const) walk(fn func(Expr)) { fn(c) }

// BinOp is the operator of a binary expression.
type BinOp byte

// Supported operators.
const (
	OpAdd BinOp = '+'
	OpMul BinOp = '*'
	OpDiv BinOp = '/'
	OpMod BinOp = '%'
)

// Bin is a binary expression.
type Bin struct {
	Op   BinOp
	L, R Expr
}

// Eval implements Expr.
func (b Bin) Eval(env Env) int64 {
	l, r := b.L.Eval(env), b.R.Eval(env)
	switch b.Op {
	case OpAdd:
		return l + r
	case OpMul:
		return l * r
	case OpDiv:
		if r == 0 {
			panic("kernel: division by zero in address expression")
		}
		return l / r
	case OpMod:
		if r == 0 {
			panic("kernel: modulo by zero in address expression")
		}
		return l % r
	}
	panic(fmt.Sprintf("kernel: unknown binop %q", string(b.Op)))
}

func (b Bin) String() string { return fmt.Sprintf("(%s %c %s)", b.L, b.Op, b.R) }
func (b Bin) walk(fn func(Expr)) {
	fn(b)
	b.L.walk(fn)
	b.R.walk(fn)
}

// Add builds l + r.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }

// Mul builds l * r.
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }

// Div builds l / r.
func Div(l, r Expr) Expr { return Bin{Op: OpDiv, L: l, R: r} }

// Mod builds l % r.
func Mod(l, r Expr) Expr { return Bin{Op: OpMod, L: l, R: r} }

// UsesParam reports whether e references the given parameter anywhere.
func UsesParam(e Expr, p Param) bool {
	found := false
	e.walk(func(sub Expr) {
		if q, ok := sub.(Param); ok && q == p {
			found = true
		}
	})
	return found
}

// Pattern is one symbolic access pattern of a kernel body: the compiler
// analyzes Addr for GPU-invariance and, when mergeable, rewrites the
// instruction to its CAIS variant and forms TB groups.
type Pattern struct {
	Name  string   // instruction label, e.g. "ld.X" or "red.Y"
	Sem   Semantic // memory-semantic requirement
	Addr  Expr     // address index expression
	Home  Expr     // owner-GPU expression
	Bytes int64    // bytes per access instance
}

// AddrAt evaluates the pattern's address for a (gpu, blockIdx) instance.
func (p Pattern) AddrAt(gpu, block int) uint64 {
	return uint64(p.Addr.Eval(Env{GPU: int64(gpu), BlockIdx: int64(block)}))
}

// HomeAt evaluates the pattern's owner GPU for a (gpu, blockIdx) instance.
func (p Pattern) HomeAt(gpu, block int) int {
	return int(p.Home.Eval(Env{GPU: int64(gpu), BlockIdx: int64(block)}))
}

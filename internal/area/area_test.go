package area

import "testing"

func TestSwitchOverheadMatchesPaper(t *testing.T) {
	r := SwitchOverhead(Default())
	// Paper: about 0.50 mm^2, less than 1% of the NVSwitch die.
	if r.MM2 < 0.40 || r.MM2 > 0.60 {
		t.Fatalf("switch overhead = %.3f mm^2, want ~0.50", r.MM2)
	}
	if r.PctOfDie >= 1.0 {
		t.Fatalf("switch overhead %.2f%% of die, want < 1%%", r.PctOfDie)
	}
}

func TestGPUOverheadMatchesPaper(t *testing.T) {
	r := GPUOverhead(Default())
	// Paper: about 0.019 mm^2, well under 0.01% of the H100 die... the
	// paper says "less than 0.01%"; with an 814 mm^2 die 0.019 mm^2 is
	// 0.0023%.
	if r.MM2 < 0.015 || r.MM2 > 0.025 {
		t.Fatalf("gpu overhead = %.4f mm^2, want ~0.019", r.MM2)
	}
	if r.PctOfDie >= 0.01 {
		t.Fatalf("gpu overhead %.4f%% of die, want < 0.01%%", r.PctOfDie)
	}
}

func TestOverheadScalesWithStructures(t *testing.T) {
	c := Default()
	base := SwitchOverhead(c).MM2
	c.MergeTableBytes *= 2
	if SwitchOverhead(c).MM2 <= base {
		t.Fatal("doubling the table must increase area")
	}
	c = Default()
	c.PortsPerSwitch *= 2
	if got := SwitchOverhead(c).MM2; got <= base || got > 2.2*base {
		t.Fatalf("doubling ports: %.3f vs base %.3f, want ~2x", got, base)
	}
}

func TestPctGuards(t *testing.T) {
	c := Default()
	c.SwitchDie = 0
	if SwitchOverhead(c).PctOfDie != 0 {
		t.Fatal("zero die should yield zero percentage")
	}
}

// Package area estimates the silicon cost of the CAIS hardware extensions
// at TSMC 12 nm (Section V-D of the paper): the per-port merge units added
// to the NVSwitch datapath and the per-GPU TB-group synchronizer. The
// estimator derives area from the same structural parameters the paper's
// design fixes (table capacity, entry count, port count) using published
// 12 nm density figures.
package area

// Process density constants for TSMC 12 nm (approximate published values).
const (
	// SRAMmm2PerMbit is high-density 6T SRAM macro area per Mbit.
	SRAMmm2PerMbit = 0.16
	// CAMmm2PerMbit is content-addressable memory area per Mbit (~4x SRAM).
	CAMmm2PerMbit = 0.64
	// Logicmm2PerKGate is synthesized-logic area per thousand NAND2
	// equivalents, including routing overhead.
	Logicmm2PerKGate = 0.0002
)

// Config describes the structures being costed.
type Config struct {
	// Switch side.
	PortsPerSwitch  int   // GPU-facing ports (DGX-H100 NVSwitch: 8)
	MergeTableBytes int64 // merging-table capacity per port (40 KB)
	MergeEntries    int   // CAM entries per port (320)
	TagBits         int   // CAM tag width (address + type)
	MergeLogicKGate int   // adders + state machines per port

	// GPU side.
	SyncTableEntries int // active TB groups tracked per GPU
	SyncEntryBits    int // group ID + counters + state
	SyncLogicKGate   int // scheduler interface + credit logic

	// Die areas for relative overhead (mm^2).
	SwitchDie float64
	GPUDie    float64
}

// Default returns the paper's configuration: 8 ports x 40 KB / 320
// entries, an NVSwitch-class die and an H100-class die.
func Default() Config {
	return Config{
		PortsPerSwitch:  8,
		MergeTableBytes: 40 << 10,
		MergeEntries:    320,
		TagBits:         48,
		MergeLogicKGate: 20,

		SyncTableEntries: 64,
		SyncEntryBits:    64,
		SyncLogicKGate:   92,

		SwitchDie: 100, // NVSwitch-class die, mm^2
		GPUDie:    814, // H100 die, mm^2
	}
}

// Result is an area estimate.
type Result struct {
	MM2      float64 // absolute area
	PctOfDie float64 // relative to the host die
}

// SwitchOverhead estimates the total per-switch area of the CAIS merge
// units (content SRAM + CAM lookup + merge logic across all ports).
func SwitchOverhead(c Config) Result {
	ports := float64(c.PortsPerSwitch)
	sramMbit := float64(c.MergeTableBytes) * 8 / 1e6 * ports
	camMbit := float64(c.MergeEntries) * float64(c.TagBits) / 1e6 * ports
	logicKG := float64(c.MergeLogicKGate) * ports
	mm2 := sramMbit*SRAMmm2PerMbit + camMbit*CAMmm2PerMbit + logicKG*Logicmm2PerKGate
	return Result{MM2: mm2, PctOfDie: pct(mm2, c.SwitchDie)}
}

// GPUOverhead estimates the per-GPU synchronizer area (group table +
// scheduler-interface logic).
func GPUOverhead(c Config) Result {
	tableMbit := float64(c.SyncTableEntries) * float64(c.SyncEntryBits) / 1e6
	mm2 := tableMbit*SRAMmm2PerMbit + float64(c.SyncLogicKGate)*Logicmm2PerKGate
	return Result{MM2: mm2, PctOfDie: pct(mm2, c.GPUDie)}
}

func pct(mm2, die float64) float64 {
	if die <= 0 {
		return 0
	}
	return mm2 / die * 100
}

package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// Registry is the central metric registry: every subsystem registers its
// counters, gauges and histograms by name (naming scheme:
// "subsystem.metric", optionally with an instance segment such as
// "nvswitch.plane0.merged_loads") and the registry snapshots them into a
// machine-readable run report.
//
// Registration is idempotent per (name, kind); registering the same name
// with a different kind panics — two subsystems fighting over one name is
// a wiring bug. The registry is not goroutine-safe: the simulation engine
// is single-threaded and metric updates happen only on the event loop.
type Registry struct {
	items map[string]metric
}

type metric interface {
	snap(name string) Metric
	kind() string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{items: make(map[string]metric)}
}

// Len reports how many metrics are registered.
func (r *Registry) Len() int { return len(r.items) }

func (r *Registry) register(name, kind string, create func() metric) metric {
	if existing, ok := r.items[name]; ok {
		if existing.kind() != kind {
			panic(fmt.Sprintf("metrics: %q registered as %s and %s", name, existing.kind(), kind))
		}
		return existing
	}
	m := create()
	r.items[name] = m
	return m
}

// Counter returns the named monotonic counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	return r.register(name, "counter", func() metric { return &Counter{} }).(*Counter)
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	return r.register(name, "gauge", func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a lazily-evaluated gauge: fn is called at snapshot
// time. It lets existing subsystem state feed the registry without rewiring
// hot paths. Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if existing, ok := r.items[name]; ok {
		if g, isFn := existing.(*funcGauge); isFn {
			g.fn = fn
			return
		}
		panic(fmt.Sprintf("metrics: %q registered as %s and func-gauge", name, existing.kind()))
	}
	r.items[name] = &funcGauge{fn: fn}
}

// Hist returns the named weighted histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	return r.register(name, "hist", func() metric { return newHist() }).(*Hist)
}

// Snapshot captures every registered metric, sorted by name.
func (r *Registry) Snapshot() Snapshot {
	names := make([]string, 0, len(r.items))
	for n := range r.items {
		names = append(names, n)
	}
	sort.Strings(names)
	out := Snapshot{Metrics: make([]Metric, 0, len(names))}
	for _, n := range names {
		out.Metrics = append(out.Metrics, r.items[n].snap(n))
	}
	return out
}

// WriteJSON serializes a snapshot of the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}

// Counter is a monotonic int64 counter. Add/Inc are allocation-free and
// safe on the simulation hot path.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n int64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

func (c *Counter) kind() string { return "counter" }
func (c *Counter) snap(name string) Metric {
	return Metric{Name: name, Kind: "counter", Value: float64(c.v)}
}

// AtomicCounter is a goroutine-safe monotonic counter for the few
// measurement points that live outside the single-threaded engine — today
// the sweep-level memo cache's hit/miss accounting, which parallel workers
// update concurrently. Engine-side code should use Counter (cheaper, and
// the engine is single-threaded by construction).
type AtomicCounter struct{ v atomic.Int64 }

// Inc adds one.
func (c *AtomicCounter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *AtomicCounter) Add(n int64) { c.v.Add(n) }

// Value reports the current count.
func (c *AtomicCounter) Value() int64 { return c.v.Load() }

func (c *AtomicCounter) kind() string { return "counter" }
func (c *AtomicCounter) snap(name string) Metric {
	return Metric{Name: name, Kind: "counter", Value: float64(c.Value())}
}

// Gauge is a settable instantaneous value.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Value reports the stored value.
func (g *Gauge) Value() float64 { return g.v }

func (g *Gauge) kind() string { return "gauge" }
func (g *Gauge) snap(name string) Metric {
	return Metric{Name: name, Kind: "gauge", Value: g.v}
}

type funcGauge struct{ fn func() float64 }

func (g *funcGauge) kind() string { return "gauge" }
func (g *funcGauge) snap(name string) Metric {
	return Metric{Name: name, Kind: "gauge", Value: g.fn()}
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts weight for values in (2^(i-1), 2^i] (bucket 0 holds (0, 1]).
const histBuckets = 64

// Hist is a weighted power-of-two histogram. Observations carry a weight,
// which makes it a time-weighted histogram when the weight is a duration
// (e.g. "merge-table occupancy weighted by how long it persisted") and a
// plain frequency histogram with weight 1.
type Hist struct {
	buckets [histBuckets]float64
	count   int64
	sum     float64
	wsum    float64
	min     float64
	max     float64
}

func newHist() *Hist { return &Hist{min: math.Inf(1), max: math.Inf(-1)} }

// Observe records v with weight 1.
func (h *Hist) Observe(v float64) { h.ObserveWeighted(v, 1) }

// ObserveWeighted records v with the given weight (non-positive weights
// are ignored). NaN values are ignored.
func (h *Hist) ObserveWeighted(v, weight float64) {
	if weight <= 0 || math.IsNaN(v) {
		return
	}
	h.count++
	h.sum += v * weight
	h.wsum += weight
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketOf(v)] += weight
}

// bucketOf maps a value to the bucket index i with 2^(i-1) < v <= 2^i.
func bucketOf(v float64) int {
	if v <= 1 {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	b := exp
	if frac == 0.5 { // exact power of two belongs to the lower bucket
		b = exp - 1
	}
	if b < 0 {
		b = 0
	}
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Count reports the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Mean reports the weighted mean of observations (0 when empty).
func (h *Hist) Mean() float64 {
	if h.wsum == 0 {
		return 0
	}
	return h.sum / h.wsum
}

// Max reports the largest observed value (0 when empty).
func (h *Hist) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the weighted
// distribution from the power-of-two buckets: it walks the bucket CDF to
// the crossing bucket and interpolates linearly within it, clamping to the
// exact observed min/max. Resolution is bounded by the bucket width (a
// factor of two), which is adequate for the latency-distribution exports
// this feeds; consumers needing exact order statistics must keep the raw
// samples (internal/serve's SLO evaluator does).
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := q * h.wsum
	cum := 0.0
	for i, w := range h.buckets {
		if w == 0 {
			continue
		}
		if cum+w < target {
			cum += w
			continue
		}
		// Crossing bucket: interpolate between its bounds (lo, hi].
		hi := math.Ldexp(1, i)
		lo := 0.0
		if i > 0 {
			lo = hi / 2
		}
		v := lo + (target-cum)/w*(hi-lo)
		// The true extremes are known exactly; never report past them.
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

func (h *Hist) kind() string { return "hist" }
func (h *Hist) snap(name string) Metric {
	m := Metric{Name: name, Kind: "hist", Value: h.Mean(), Count: h.count}
	if h.count > 0 {
		m.Min, m.Max, m.Sum = h.min, h.max, h.sum
		m.P50, m.P95, m.P99 = h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99)
		for i, w := range h.buckets {
			if w == 0 {
				continue
			}
			m.Buckets = append(m.Buckets, Bucket{UpperBound: math.Ldexp(1, i), Weight: w})
		}
	}
	return m
}

// Metric is one snapshotted metric, JSON-ready. Value carries the counter
// or gauge value; for histograms it is the weighted mean.
type Metric struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value float64 `json:"value"`
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	// P50/P95/P99 are bucket-interpolated quantile estimates, present for
	// histograms only (see Hist.Quantile for the resolution caveat).
	P50     float64  `json:"p50,omitempty"`
	P95     float64  `json:"p95,omitempty"`
	P99     float64  `json:"p99,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one histogram bucket: accumulated weight for values in
// (UpperBound/2, UpperBound].
type Bucket struct {
	UpperBound float64 `json:"le"`
	Weight     float64 `json:"weight"`
}

// Snapshot is a machine-readable capture of a registry: the structured
// telemetry block attached to run results and serialized by -metrics-json.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Get looks a metric up by name.
func (s Snapshot) Get(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// Value returns a metric's value by name (0 when absent).
func (s Snapshot) Value(name string) float64 {
	m, _ := s.Get(name)
	return m.Value
}

// Len reports how many metrics the snapshot holds.
func (s Snapshot) Len() int { return len(s.Metrics) }

// WriteJSON serializes the snapshot with stable ordering.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

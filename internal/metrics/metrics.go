// Package metrics provides the measurement utilities the experiment
// harness builds the paper's figures from: binned link-utilization time
// series (Fig. 16), geometric means (the speedup summaries of Figs. 11-12)
// and plain-text table rendering for the CLI and EXPERIMENTS.md.
package metrics

import (
	"fmt"
	"math"
	"strings"

	"cais/internal/sim"
)

// UtilSeries accumulates link busy intervals into fixed-width time bins.
// It implements noc.BusyRecorder; attach one instance to every link whose
// aggregate utilization-over-time is wanted.
type UtilSeries struct {
	bin   sim.Time
	links int
	busy  []sim.Time
}

// NewUtilSeries creates a series with the given bin width covering links
// attached links.
func NewUtilSeries(bin sim.Time, links int) *UtilSeries {
	if bin <= 0 {
		panic("metrics: bin width must be positive")
	}
	if links < 1 {
		links = 1
	}
	// Pre-size for a few hundred bins: sub-layer runs span O(100) bins, so
	// the common case never regrows mid-run.
	return &UtilSeries{bin: bin, links: links, busy: make([]sim.Time, 0, 256)}
}

// RecordBusy implements noc.BusyRecorder: the interval [start, end) is
// distributed across the bins it overlaps. The bin slice is pre-sized from
// the interval end, so a long interval costs one grow instead of one
// append per bin it spans.
func (s *UtilSeries) RecordBusy(start, end sim.Time, bytes int64) {
	if end <= start {
		return
	}
	if start < 0 {
		start = 0
	}
	last := int((end - 1) / s.bin)
	if last >= len(s.busy) {
		if last >= cap(s.busy) {
			// Grow geometrically without the temporary slice an
			// append(make(...)) would allocate on every extension.
			c := 2 * cap(s.busy)
			if c <= last {
				c = last + 1
			}
			grown := make([]sim.Time, last+1, c)
			copy(grown, s.busy)
			s.busy = grown
		} else {
			s.busy = s.busy[:last+1]
		}
	}
	for t := start; t < end; {
		idx := int(t / s.bin)
		binEnd := sim.Time(idx+1) * s.bin
		seg := binEnd
		if end < seg {
			seg = end
		}
		s.busy[idx] += seg - t
		t = seg
	}
}

// BinWidth reports the bin width.
func (s *UtilSeries) BinWidth() sim.Time { return s.bin }

// UtilTimeline is the value-type snapshot of a finished UtilSeries: a
// replayable telemetry timeline the memo layer can cache and serve on
// hits (DESIGN.md §12). A zero Bin marks "no timeline recorded". The Busy
// slice is shared across cache hits — treat it as read-only.
type UtilTimeline struct {
	Bin   sim.Time
	Links int
	Busy  []sim.Time
}

// Timeline snapshots the series into its replayable value form.
func (s *UtilSeries) Timeline() UtilTimeline {
	return UtilTimeline{Bin: s.bin, Links: s.links, Busy: s.busy}
}

// IsZero reports whether no timeline was recorded.
func (t UtilTimeline) IsZero() bool { return t.Bin == 0 }

// Utilization returns per-bin utilization in [0, 1], identically to
// UtilSeries.Utilization on the live recorder.
func (t UtilTimeline) Utilization() []float64 {
	out := make([]float64, len(t.Busy))
	denom := float64(t.Bin) * float64(t.Links)
	for i, b := range t.Busy {
		u := float64(b) / denom
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// Utilization returns per-bin utilization in [0, 1]: busy time divided by
// bin width times the number of links feeding the series.
func (s *UtilSeries) Utilization() []float64 {
	out := make([]float64, len(s.busy))
	denom := float64(s.bin) * float64(s.links)
	for i, b := range s.busy {
		u := float64(b) / denom
		if u > 1 {
			u = 1
		}
		out[i] = u
	}
	return out
}

// Mean reports the average utilization over bins [0, n) (n <= 0 means all).
func (s *UtilSeries) Mean(n int) float64 {
	u := s.Utilization()
	if n <= 0 || n > len(u) {
		n = len(u)
	}
	if n == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range u[:n] {
		sum += v
	}
	return sum / float64(n)
}

// Geomean computes the geometric mean of positive values; non-positive
// values are skipped. Empty input yields 0.
func Geomean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Table renders aligned plain-text tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends one row built from format/value pairs: each argument is
// rendered with %v.
func (t *Table) Addf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			if math.IsNaN(v) || math.IsInf(v, 0) {
				row[i] = "n/a"
			} else {
				row[i] = fmt.Sprintf("%.3g", v)
			}
		case sim.Time:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(row...)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			fmt.Fprintf(&b, "%-*s", width[i]+2, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestRegistryCountersGaugesIdempotent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("nvswitch.plane0.merged_loads")
	c.Inc()
	c.Add(2)
	if r.Counter("nvswitch.plane0.merged_loads") != c {
		t.Fatal("Counter must be idempotent per name")
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("gpu.free_slots")
	g.Set(42)
	if r.Gauge("gpu.free_slots").Value() != 42 {
		t.Fatal("gauge roundtrip failed")
	}
	r.GaugeFunc("sim.steps", func() float64 { return 7 })
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
}

func TestRegistryKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("kind collision must panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotSortedAndQueryable(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.two").Add(2)
	r.Counter("a.one").Add(1)
	r.GaugeFunc("c.three", func() float64 { return 3 })
	s := r.Snapshot()
	if s.Len() != 3 {
		t.Fatalf("snapshot len = %d", s.Len())
	}
	names := []string{s.Metrics[0].Name, s.Metrics[1].Name, s.Metrics[2].Name}
	if names[0] != "a.one" || names[1] != "b.two" || names[2] != "c.three" {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	if s.Value("b.two") != 2 || s.Value("c.three") != 3 {
		t.Fatalf("values wrong: %+v", s.Metrics)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get on missing name must report false")
	}
}

func TestHistWeightedStats(t *testing.T) {
	r := NewRegistry()
	h := r.Hist("nvswitch.session_lifetime_us")
	h.Observe(2)
	h.ObserveWeighted(10, 3) // time-weighted: value 10 held for 3 units
	h.ObserveWeighted(5, 0)  // ignored: non-positive weight
	h.Observe(math.NaN())    // ignored
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	want := (2.0*1 + 10.0*3) / 4.0
	if math.Abs(h.Mean()-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", h.Mean(), want)
	}
	if h.Max() != 10 {
		t.Fatalf("max = %v, want 10", h.Max())
	}
	m := h.snap("x")
	if m.Kind != "hist" || m.Count != 2 || m.Min != 2 || m.Max != 10 {
		t.Fatalf("snapshot = %+v", m)
	}
	var totalW float64
	for _, b := range m.Buckets {
		totalW += b.Weight
	}
	if totalW != 4 {
		t.Fatalf("bucket weight = %v, want 4", totalW)
	}
}

func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 0}, {1.5, 1}, {2, 1}, {2.1, 2}, {4, 2}, {5, 3},
		{1 << 20, 20}, {math.MaxFloat64, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Fatalf("bucketOf(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistQuantiles(t *testing.T) {
	h := newHist()
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}

	// 100 unit-weight observations of the value i+1 (1..100): every
	// quantile is derivable by hand. Values spread over buckets
	// (0,1], (1,2], (2,4], ... so interpolation is exercised.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i + 1))
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("q=0: got %v, want min 1", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Errorf("q=1: got %v, want max 100", got)
	}
	// The bucket estimate must land within one power-of-two bucket of the
	// exact order statistic.
	cases := []struct {
		q       float64
		exact   float64
		loosest float64 // allowed multiplicative error (one bucket)
	}{
		{0.50, 50, 2}, {0.95, 95, 2}, {0.99, 99, 2},
	}
	for _, c := range cases {
		got := h.Quantile(c.q)
		if got < c.exact/c.loosest || got > c.exact*c.loosest {
			t.Errorf("q=%v: got %v, want within %vx of %v", c.q, got, c.loosest, c.exact)
		}
	}
	// Monotonicity across the full range.
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistQuantileSingleValue(t *testing.T) {
	h := newHist()
	h.ObserveWeighted(42, 3)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 42 {
			t.Errorf("q=%v: got %v, want 42 (all mass at one value, clamped to min/max)", q, got)
		}
	}
}

func TestHistSnapshotCarriesQuantiles(t *testing.T) {
	h := newHist()
	for i := 0; i < 100; i++ {
		h.Observe(float64(i + 1))
	}
	m := h.snap("serve.e2e_us")
	if m.P50 != h.Quantile(0.50) || m.P95 != h.Quantile(0.95) || m.P99 != h.Quantile(0.99) {
		t.Fatalf("snapshot quantiles %v/%v/%v disagree with accessors", m.P50, m.P95, m.P99)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"p50"`, `"p95"`, `"p99"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("metric JSON missing %s: %s", key, data)
		}
	}
}

func TestSnapshotJSONRoundtrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("noc.up.wire_bytes").Add(1024)
	r.Hist("gpu.tb_us").Observe(3)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(sb.String()), &s); err != nil {
		t.Fatalf("snapshot JSON invalid: %v\n%s", err, sb.String())
	}
	if s.Value("noc.up.wire_bytes") != 1024 {
		t.Fatalf("roundtrip value = %v", s.Value("noc.up.wire_bytes"))
	}
	m, ok := s.Get("gpu.tb_us")
	if !ok || m.Kind != "hist" || m.Count != 1 {
		t.Fatalf("hist roundtrip = %+v ok=%v", m, ok)
	}
}

func TestCounterHotPathAllocatesNothing(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot")
	h := r.Hist("hot_hist")
	if allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		h.Observe(2)
	}); allocs != 0 {
		t.Fatalf("metric hot path allocates %v/op, want 0", allocs)
	}
}

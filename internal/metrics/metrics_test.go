package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cais/internal/sim"
)

func TestUtilSeriesBinsIntervals(t *testing.T) {
	s := NewUtilSeries(10*sim.Microsecond, 1)
	// Busy 5us in bin 0, spanning interval into bin 1.
	s.RecordBusy(5*sim.Microsecond, 15*sim.Microsecond, 0)
	u := s.Utilization()
	if len(u) != 2 {
		t.Fatalf("bins = %d, want 2", len(u))
	}
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("utilization = %v, want [0.5 0.5]", u)
	}
}

func TestUtilSeriesMultiLinkNormalization(t *testing.T) {
	s := NewUtilSeries(10*sim.Microsecond, 2)
	s.RecordBusy(0, 10*sim.Microsecond, 0) // link A fully busy
	u := s.Utilization()
	if u[0] != 0.5 {
		t.Fatalf("two-link normalization: %v, want 0.5", u[0])
	}
}

func TestUtilSeriesConservesBusyTime(t *testing.T) {
	f := func(intervals []uint16) bool {
		s := NewUtilSeries(7*sim.Microsecond, 1)
		var total sim.Time
		at := sim.Time(0)
		for _, d := range intervals {
			dur := sim.Time(d) * sim.Nanosecond
			s.RecordBusy(at, at+dur, 0)
			total += dur
			at += dur + sim.Microsecond
		}
		var binned sim.Time
		for _, b := range s.busy {
			binned += b
		}
		return binned == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilSeriesMean(t *testing.T) {
	s := NewUtilSeries(10*sim.Microsecond, 1)
	s.RecordBusy(0, 10*sim.Microsecond, 0)
	s.RecordBusy(10*sim.Microsecond, 15*sim.Microsecond, 0)
	if got := s.Mean(0); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("mean = %v, want 0.75", got)
	}
	if got := s.Mean(1); got != 1.0 {
		t.Fatalf("mean(1) = %v, want 1.0", got)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %v, want 4", g)
	}
	if g := Geomean([]float64{1.5, 0, -2}); math.Abs(g-1.5) > 1e-9 {
		t.Fatalf("geomean skips non-positive: %v", g)
	}
	if Geomean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig. X", "name", "value")
	tb.AddRow("alpha", "1.00")
	tb.Addf("beta", 2.5, sim.Microsecond)
	out := tb.String()
	for _, want := range []string{"Fig. X", "name", "alpha", "beta", "2.5", "1.000us", "---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
}

// TestUtilSeriesLongIntervalPreSizes is the regression test for the
// RecordBusy growth fix: one interval spanning many bins must pre-size the
// bin slice in a single grow and still conserve busy time.
func TestUtilSeriesLongIntervalPreSizes(t *testing.T) {
	bin := sim.Microsecond
	s := NewUtilSeries(bin, 1)
	const bins = 200_000
	start := 500 * sim.Nanosecond
	end := sim.Time(bins)*bin + 500*sim.Nanosecond
	s.RecordBusy(start, end, 0)
	if len(s.busy) != bins+1 {
		t.Fatalf("bins = %d, want %d", len(s.busy), bins+1)
	}
	if c := cap(s.busy); c < bins+1 {
		t.Fatalf("cap = %d, want >= %d", c, bins+1)
	}
	var total sim.Time
	for _, b := range s.busy {
		if b > bin {
			t.Fatalf("bin overfilled: %v > %v", b, bin)
		}
		total += b
	}
	if total != end-start {
		t.Fatalf("binned total = %v, want %v", total, end-start)
	}
	// Interior bins are fully busy; the two edge bins are half busy.
	if s.busy[0] != bin-start || s.busy[bins] != 500*sim.Nanosecond {
		t.Fatalf("edge bins = %v/%v", s.busy[0], s.busy[bins])
	}
	u := s.Utilization()
	if u[1] != 1 || u[bins/2] != 1 {
		t.Fatalf("interior bins must be fully utilized: %v %v", u[1], u[bins/2])
	}
}

// TestAddfNonFiniteFloats guards the Addf rendering fix: NaN and ±Inf must
// render as an explicit "n/a" instead of %.3g garbage.
func TestAddfNonFiniteFloats(t *testing.T) {
	tb := NewTable("", "a", "b", "c", "d")
	tb.Addf(math.NaN(), math.Inf(1), math.Inf(-1), 1.25)
	got := tb.Rows[0]
	want := []string{"n/a", "n/a", "n/a", "1.25"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cell %d = %q, want %q (row %v)", i, got[i], want[i], got)
		}
	}
	if out := tb.String(); strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("rendered table leaks non-finite values:\n%s", out)
	}
}

func TestUtilSeriesRejectsBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero bin width accepted")
		}
	}()
	NewUtilSeries(0, 1)
}

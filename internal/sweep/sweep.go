// Package sweep is the repository's single sanctioned concurrency site: a
// bounded worker pool that fans fully independent simulation points out
// across goroutines and collects their results by index.
//
// The determinism contract: each point owns its private sim.Engine,
// machine and metric registry (nothing is shared between points), results
// land in a slice slot fixed by the point's index, and callers fold the
// slice sequentially — so the rendered tables, telemetry digests and trace
// digests of a parallel sweep are byte-identical to the sequential run.
// Goroutine scheduling can only change *when* a point computes its result,
// never *what* the result is or where it lands.
//
// caislint enforces the "single site" half of the contract: `go`
// statements anywhere else in the module (outside cmd/) are lint
// violations, and the engine packages forbid them unconditionally.
package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS
// (one worker per schedulable CPU), anything else passes through.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// panicValue carries a worker panic (with its index for deterministic
// selection) back to the Map caller.
type panicValue struct {
	index int
	value any
}

// Map evaluates fn(0..n-1) on a pool of `workers` goroutines (<= 0 means
// GOMAXPROCS, 1 runs inline with no goroutines) and returns the results
// indexed by point. All points are attempted; if any fail, the error of
// the lowest-index failing point is returned — the same error a
// sequential loop would surface first, so error output is independent of
// worker count. A panicking point re-panics in the caller (again lowest
// index first), preserving the engine's panic-on-bug guards.
//
// fn must be safe to call concurrently with itself on distinct indices:
// in this codebase that means each point builds its own engine and
// machine and touches no shared mutable state.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		// Sequential fast path: no goroutines, first error aborts — the
		// exact pre-parallelization behavior.
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []panicValue
	)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							panics = append(panics, panicValue{index: i, value: r})
							panicMu.Unlock()
						}
					}()
					out[i], errs[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()

	if len(panics) > 0 {
		first := panics[0]
		for _, p := range panics[1:] {
			if p.index < first.index {
				first = p
			}
		}
		panic(first.value)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return out, nil
}

package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapCollectsByIndex(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapZeroPoints(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

// TestMapReturnsLowestIndexError pins the error-determinism contract: no
// matter which worker finishes first, the surfaced error is the one a
// sequential loop would have hit first.
func TestMapReturnsLowestIndexError(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		_, err := Map(40, workers, func(i int) (int, error) {
			if i%10 == 3 { // fails at 3, 13, 23, 33
				return 0, fmt.Errorf("point %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "point 3 failed" {
			t.Fatalf("workers=%d: err = %v, want point 3 failed", workers, err)
		}
	}
}

func TestMapSequentialStopsAtFirstError(t *testing.T) {
	var calls int32
	sentinel := errors.New("boom")
	_, err := Map(10, 1, func(i int) (int, error) {
		atomic.AddInt32(&calls, 1)
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("sequential path ran %d points after failure, want 3", calls)
	}
}

// TestMapRepanicsLowestIndex checks that a panicking point resurfaces in
// the caller (the engine's step-limit and causality guards are panics and
// must stay fatal under parallel sweeps), picking the lowest index when
// several points blow up.
func TestMapRepanicsLowestIndex(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Map swallowed the panic")
		}
		if s, ok := r.(string); !ok || s != "kaboom 5" {
			t.Fatalf("recovered %v, want kaboom 5", r)
		}
	}()
	Map(20, 4, func(i int) (int, error) {
		if i >= 5 && i%5 == 0 { // panics at 5, 10, 15
			panic(fmt.Sprintf("kaboom %d", i))
		}
		return i, nil
	})
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	if runtime.GOMAXPROCS(0) < 1 {
		t.Skip("no CPUs")
	}
	const workers = 4
	var inflight, peak atomic.Int32
	gate := make(chan struct{})
	_, err := Map(workers, workers, func(i int) (int, error) {
		cur := inflight.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		// Rendezvous: every worker must be in-flight at once before any
		// may leave, proving the pool really fans out.
		if cur == workers {
			close(gate)
		}
		<-gate
		inflight.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got != workers {
		t.Fatalf("peak concurrency %d, want %d", got, workers)
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", Workers(0))
	}
	if Workers(-3) != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", Workers(-3))
	}
	if Workers(5) != 5 {
		t.Errorf("Workers(5) = %d", Workers(5))
	}
}

// TestMapDeterministicAcrossWorkerCounts is the package-local half of the
// sweep determinism suite: identical inputs produce identical outputs at
// every worker count and across repeated runs.
func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) []int {
		out, err := Map(100, workers, func(i int) (int, error) { return 31*i + i*i%97, nil })
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, w := range []int{1, 2, 3, 8, 0} {
		for rep := 0; rep < 3; rep++ {
			got := run(w)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d rep=%d: out[%d] = %d, want %d", w, rep, i, got[i], ref[i])
				}
			}
		}
	}
}

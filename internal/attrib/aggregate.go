package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"

	"cais/internal/metrics"
	"cais/internal/sim"
)

// Aggregator folds per-point reports into sweep-level views. It is the
// one attrib type shared across parallel sweep workers, so Add is
// mutex-guarded; every read-side method renders from the label-sorted
// point list, so output bytes are independent of worker count and of
// whether a report came from a cold run or a memo hit.
type Aggregator struct {
	mu     sync.Mutex
	points map[string]*Report
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{points: make(map[string]*Report)}
}

// Add records one point's report under its label. Nil-safe on both sides
// (no aggregator attached, or a run without attribution): drivers call it
// unconditionally. Re-adding a label overwrites — memoized sweeps revisit
// the same point with the identical replayed report.
func (a *Aggregator) Add(label string, r *Report) {
	if a == nil || r == nil {
		return
	}
	a.mu.Lock()
	a.points[label] = r
	a.mu.Unlock()
}

// Len reports how many labeled points have been added.
func (a *Aggregator) Len() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.points)
}

// sorted snapshots the points in label order.
func (a *Aggregator) sorted() (labels []string, reps []*Report) {
	a.mu.Lock()
	defer a.mu.Unlock()
	labels = make([]string, 0, len(a.points))
	for l := range a.points {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	reps = make([]*Report, len(labels))
	for i, l := range labels {
		reps[i] = a.points[l]
	}
	return labels, reps
}

// Render formats the sweep-level attribution table: one row per point,
// class-averaged bucket shares plus the critical path's communication
// share. Rows are label-sorted, so the bytes are deterministic.
func (a *Aggregator) Render() string {
	labels, reps := a.sorted()
	t := metrics.NewTable("Time attribution across points (class-averaged share of elapsed, %)",
		"Point", "elapsed",
		"gpu:compute", "gpu:sync", "gpu:stall",
		"plane:transit", "plane:merge", "plane:stall",
		"fault", "crit:comm")
	pct := func(v float64) string { return fmt.Sprintf("%.1f", v*100) }
	for i, l := range labels {
		r := reps[i]
		fault := (r.ClassShare(ClassGPU, FaultStall) + r.ClassShare(ClassPlane, FaultStall)) / 2
		t.AddRow(l, r.Elapsed.String(),
			pct(r.ClassShare(ClassGPU, Compute)),
			pct(r.ClassShare(ClassGPU, SyncWait)),
			pct(r.ClassShare(ClassGPU, QueueStall)),
			pct(r.ClassShare(ClassPlane, Transit)),
			pct(r.ClassShare(ClassPlane, Merge)),
			pct(r.ClassShare(ClassPlane, QueueStall)),
			pct(fault),
			pct(r.ShareOf("comm")))
	}
	return t.String()
}

// jsonComponent is the JSON form of one component's buckets.
type jsonComponent struct {
	Name       string   `json:"name"`
	Compute    sim.Time `json:"compute_ps"`
	Merge      sim.Time `json:"merge_ps"`
	Transit    sim.Time `json:"transit_ps"`
	SyncWait   sim.Time `json:"sync_wait_ps"`
	FaultStall sim.Time `json:"fault_stall_ps"`
	QueueStall sim.Time `json:"queue_stall_ps"`
}

// jsonPoint is the JSON form of one labeled point.
type jsonPoint struct {
	Label      string          `json:"label"`
	Elapsed    sim.Time        `json:"elapsed_ps"`
	Components []jsonComponent `json:"components"`
	Path       []PathSeg       `json:"critical_path"`
	PathShare  []KindShare     `json:"path_share"`
}

func jsonOf(label string, r *Report) jsonPoint {
	p := jsonPoint{Label: label, Elapsed: r.Elapsed, Path: r.Path, PathShare: r.PathShare}
	for _, c := range r.Components {
		p.Components = append(p.Components, jsonComponent{
			Name:       c.Name,
			Compute:    c.Buckets[Compute],
			Merge:      c.Buckets[Merge],
			Transit:    c.Buckets[Transit],
			SyncWait:   c.Buckets[SyncWait],
			FaultStall: c.Buckets[FaultStall],
			QueueStall: c.Buckets[QueueStall],
		})
	}
	return p
}

// WriteJSON serializes every point, label-sorted, as one JSON document.
func (a *Aggregator) WriteJSON(w io.Writer) error {
	labels, reps := a.sorted()
	points := make([]jsonPoint, 0, len(labels))
	for i, l := range labels {
		points = append(points, jsonOf(l, reps[i]))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Points []jsonPoint `json:"points"`
	}{points})
}

// WriteFile writes the JSON report to path.
func (a *Aggregator) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteJSON serializes a single report as a one-point document (the
// -attrib-json form for strategy runs).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(jsonOf("run", r))
}

package attrib

import (
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/sim"
)

// PathSeg is one critical-path segment: the kernel that finished last in
// its launch wave, i.e. the kernel the next barrier waited for.
type PathSeg struct {
	Wave  int      `json:"wave"`
	Name  string   `json:"kernel"`
	Kind  string   `json:"kind"`
	Start sim.Time `json:"start_ps"`
	End   sim.Time `json:"end_ps"`
	// Stall is the launch gap after the previous wave's completion.
	Stall sim.Time `json:"stall_ps"`
	// Contrib is this wave's extension of the critical path (its end
	// minus the previous segment's end); segment contributions sum to
	// the path's total length.
	Contrib sim.Time `json:"contrib_ps"`
}

// KindShare is one kernel kind's (or the launch-stall pseudo-kind's)
// share of the critical path.
type KindShare struct {
	Kind string   `json:"kind"`
	Time sim.Time `json:"time_ps"`
}

// launchStallShare is the pseudo-kind collecting inter-wave launch gaps.
const launchStallShare = "launch-stall"

// criticalPath extracts the longest dependency chain over the kernel
// spans. The dependency graph is the wave order: machine.LaunchAll gives
// every kernel of one barrier-delimited batch a shared wave number and
// waves launch strictly after their predecessor completes, so the chain
// of per-wave last finishers IS the longest path through the run. Within
// a wave the span with the latest End is critical; ties break to launch
// order (the spans slice is append-ordered), which is deterministic.
func criticalPath(spans []*machine.KernelSpan, elapsed sim.Time) ([]PathSeg, []KindShare) {
	if len(spans) == 0 {
		return nil, nil
	}
	maxWave := 0
	for _, s := range spans {
		if s.Wave > maxWave {
			maxWave = s.Wave
		}
	}
	best := make([]*machine.KernelSpan, maxWave+1)
	for _, s := range spans {
		if b := best[s.Wave]; b == nil || s.End > b.End {
			best[s.Wave] = s
		}
	}
	var path []PathSeg
	var prevEnd sim.Time
	shares := make([]sim.Time, int(kernel.KindComm)+1)
	var stallTotal sim.Time
	for w := 1; w <= maxWave; w++ {
		s := best[w]
		if s == nil {
			continue
		}
		seg := PathSeg{Wave: w, Name: s.Name, Kind: s.Kind.String(), Start: s.Start, End: s.End}
		if s.Start > prevEnd {
			seg.Stall = s.Start - prevEnd
		}
		if s.End > prevEnd {
			seg.Contrib = s.End - prevEnd
		}
		// The contribution splits into the launch gap and the span's own
		// extension; attribute each to its share.
		run := seg.Contrib - seg.Stall
		if run < 0 {
			run = 0
			seg.Stall = seg.Contrib
		}
		stallTotal += seg.Stall
		if k := int(s.Kind); k >= 0 && k < len(shares) {
			shares[k] += run
		}
		if s.End > prevEnd {
			prevEnd = s.End
		}
		path = append(path, seg)
	}
	// Time after the last wave's completion (tail work the strategy layer
	// accounts into elapsed) lands in launch-stall so shares still sum to
	// elapsed exactly.
	if elapsed > prevEnd {
		stallTotal += elapsed - prevEnd
	}
	var out []KindShare
	for k, t := range shares {
		if t > 0 {
			out = append(out, KindShare{Kind: kernel.Kind(k).String(), Time: t})
		}
	}
	if stallTotal > 0 {
		out = append(out, KindShare{Kind: launchStallShare, Time: stallTotal})
	}
	return path, out
}

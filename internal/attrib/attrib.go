// Package attrib is the deterministic time-attribution engine: it
// consumes the trace spans and fault schedule of one finished run and
// partitions every component's wall time — each GPU and each switch
// plane — into exclusive buckets (compute, merge, transit, queueing
// stall, sync wait, fault-induced stall) that sum exactly to the run's
// elapsed time in simulation ticks.
//
// The partition is an interval sweep: each bucket contributes a set of
// half-open intervals harvested from the tracer (TB execution spans,
// barrier waits, link busy slices, merge sessions) or derived from the
// fault schedule; buckets claim time in a fixed per-component priority
// order, later buckets only counting time not already claimed; whatever
// remains of [0, elapsed) is the queueing stall. Integer tick arithmetic
// on sorted interval lists makes the result exact and bit-reproducible —
// no floats, no map iteration, no wall clock.
//
// On top of the per-component breakdown the package extracts the
// critical path over the kernel dependency graph (see path.go) and folds
// per-point reports into sweep-level tables and exports (aggregate.go,
// chrome.go). Attribution is strictly offline: it runs after the engine
// has drained, so enabling it cannot perturb the simulated result.
package attrib

import (
	"fmt"

	"cais/internal/faults"
	"cais/internal/machine"
	"cais/internal/metrics"
	"cais/internal/sim"
	"cais/internal/trace"
)

// Bucket is one exclusive time-attribution class.
type Bucket int

const (
	// Compute is time a GPU spends executing thread blocks.
	Compute Bucket = iota
	// Merge is time a switch plane holds live merge/NVLS sessions.
	Merge
	// Transit is time a plane's links are serializing packets.
	Transit
	// SyncWait is time a GPU blocks on barrier/group synchronization
	// outside of TB execution.
	SyncWait
	// FaultStall is otherwise-unattributed time inside an active fault
	// window targeting the component.
	FaultStall
	// QueueStall is the remainder: the component is neither computing,
	// merging, transiting, syncing nor faulted — it queues or idles.
	QueueStall

	// NumBuckets is the bucket count (array dimension).
	NumBuckets int = iota
)

// String names the bucket as rendered in tables and JSON.
func (b Bucket) String() string {
	switch b {
	case Compute:
		return "compute"
	case Merge:
		return "merge"
	case Transit:
		return "transit"
	case SyncWait:
		return "sync-wait"
	case FaultStall:
		return "fault-stall"
	case QueueStall:
		return "queue-stall"
	}
	return fmt.Sprintf("bucket(%d)", int(b))
}

// Class distinguishes the two component families of the breakdown.
type Class int

const (
	// ClassGPU marks a per-GPU component.
	ClassGPU Class = iota
	// ClassPlane marks a per-switch-plane component.
	ClassPlane
)

// Component is one hardware component's exclusive wall-time partition.
// The buckets sum exactly to the report's Elapsed.
type Component struct {
	Name    string `json:"name"`
	Class   Class  `json:"-"`
	Buckets [NumBuckets]sim.Time
}

// Total sums the buckets (always equal to the report's Elapsed).
func (c Component) Total() sim.Time {
	var t sim.Time
	for _, b := range c.Buckets {
		t += b
	}
	return t
}

// Report is the value-type attribution of one simulation point. It holds
// no live simulation state, so the memo layer caches it and replays it on
// hits; treat slices as read-only (they are shared across hits).
type Report struct {
	// Elapsed is the run's completion time; every component's buckets sum
	// to it exactly.
	Elapsed sim.Time
	// Components lists every GPU then every switch plane, in index order.
	Components []Component
	// Path is the critical path over the kernel dependency graph: one
	// segment per launch wave, chained in wave order (path.go).
	Path []PathSeg
	// PathShare decomposes Elapsed along the critical path by kernel kind
	// plus the "launch-stall" share; the shares sum to Elapsed.
	PathShare []KindShare
}

// interval is one half-open busy window [start, end).
type interval struct{ start, end sim.Time }

// addClamped appends [s, e) clamped to [0, limit), dropping empties.
func addClamped(iv []interval, s, e, limit sim.Time) []interval {
	if s < 0 {
		s = 0
	}
	if e > limit {
		e = limit
	}
	if e <= s {
		return iv
	}
	return append(iv, interval{s, e})
}

// merge sorts the intervals and coalesces overlaps in place, returning
// the merged, strictly ascending, pairwise-disjoint list.
func merge(iv []interval) []interval {
	if len(iv) < 2 {
		return iv
	}
	// Insertion-free sort by start (then end) via the standard library
	// would allocate a closure; lists here are short-lived and offline,
	// so a simple shell sort keeps it dependency- and alloc-free.
	for gap := len(iv) / 2; gap > 0; gap /= 2 {
		for i := gap; i < len(iv); i++ {
			v := iv[i]
			j := i
			for ; j >= gap && (iv[j-gap].start > v.start || (iv[j-gap].start == v.start && iv[j-gap].end > v.end)); j -= gap {
				iv[j] = iv[j-gap]
			}
			iv[j] = v
		}
	}
	out := iv[:1]
	for _, v := range iv[1:] {
		last := &out[len(out)-1]
		if v.start <= last.end {
			if v.end > last.end {
				last.end = v.end
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

// subtract returns a minus b; both inputs must be merged lists.
func subtract(a, b []interval) []interval {
	var out []interval
	j := 0
	for _, v := range a {
		s := v.start
		for j < len(b) && b[j].end <= s {
			j++
		}
		k := j
		for k < len(b) && b[k].start < v.end {
			if b[k].start > s {
				out = append(out, interval{s, b[k].start})
			}
			if b[k].end > s {
				s = b[k].end
			}
			if s >= v.end {
				break
			}
			k++
		}
		if s < v.end {
			out = append(out, interval{s, v.end})
		}
	}
	return out
}

// length sums a disjoint interval list.
func length(iv []interval) sim.Time {
	var t sim.Time
	for _, v := range iv {
		t += v.end - v.start
	}
	return t
}

// fill partitions [0, elapsed) for one component: buckets claim time in
// priority order (earlier wins overlaps), QueueStall takes the remainder.
// Exactness is structural: claimed pieces are pairwise disjoint subsets
// of [0, elapsed), so their lengths plus the remainder sum to elapsed.
func fill(c *Component, elapsed sim.Time, prio []Bucket, ivs [][]interval) {
	var covered []interval
	var total sim.Time
	for i, b := range prio {
		u := merge(ivs[i])
		fresh := subtract(u, covered)
		c.Buckets[b] = length(fresh)
		total += c.Buckets[b]
		covered = merge(append(covered, fresh...))
	}
	c.Buckets[QueueStall] = elapsed - total
}

// openSpan tracks an unmatched async begin event.
type openSpan struct {
	pid     int32
	cat     byte // 's' = gpu.sync, 'm' = nvswitch.merge
	start   sim.Time
	matched bool
}

// Build attributes a finished run. It reads the machine's topology, fault
// schedule and kernel spans plus the tracer's recorded events; the
// returned report is a plain value safe to cache and share.
func Build(m *machine.Machine, tr *trace.Tracer, elapsed sim.Time) *Report {
	nGPU := m.HW.NumGPUs
	nPlane := m.HW.NumSwitchPlanes

	gpuCompute := make([][]interval, nGPU)
	gpuSync := make([][]interval, nGPU)
	gpuFault := make([][]interval, nGPU)
	planeTransit := make([][]interval, nPlane)
	planeMerge := make([][]interval, nPlane)
	planeFault := make([][]interval, nPlane)

	// One pass over the trace. Async begin/end events pair by the
	// tracer's globally unique correlation ID; spans still open at the
	// end of the run close at elapsed (slice scan, not map iteration, so
	// leftovers process in recording order).
	var opens []openSpan
	openIdx := make(map[uint64]int)
	tr.Visit(func(e trace.Event) {
		switch e.Phase {
		case trace.PhaseComplete:
			switch e.Cat {
			case "gpu.tb":
				if g := int(e.Pid) - int(trace.GPUPid(0)); g >= 0 && g < nGPU {
					gpuCompute[g] = addClamped(gpuCompute[g], e.Ts, e.Ts+e.Dur, elapsed)
				}
			case "noc.link":
				if p := int(e.Pid) - int(trace.SwitchPid(0)); p >= 0 && p < nPlane {
					planeTransit[p] = addClamped(planeTransit[p], e.Ts, e.Ts+e.Dur, elapsed)
				}
			}
		case trace.PhaseAsyncBegin:
			switch e.Cat {
			case "gpu.sync":
				openIdx[e.ID] = len(opens)
				opens = append(opens, openSpan{pid: e.Pid, cat: 's', start: e.Ts})
			case "nvswitch.merge":
				openIdx[e.ID] = len(opens)
				opens = append(opens, openSpan{pid: e.Pid, cat: 'm', start: e.Ts})
			}
		case trace.PhaseAsyncEnd:
			if e.Cat != "gpu.sync" && e.Cat != "nvswitch.merge" {
				return
			}
			i, ok := openIdx[e.ID]
			if !ok || opens[i].matched {
				return
			}
			opens[i].matched = true
			emitAsync(opens[i], e.Ts, elapsed, nGPU, nPlane, gpuSync, planeMerge)
		}
	})
	for _, o := range opens {
		if !o.matched {
			emitAsync(o, elapsed, elapsed, nGPU, nPlane, gpuSync, planeMerge)
		}
	}

	// Fault windows from the schedule: [At, At+For), permanent when For
	// is zero. Straggler windows land on the slowed GPU, everything else
	// on the targeted plane(s).
	if s := m.Opts.Faults; !s.Empty() {
		for _, f := range s.Faults {
			end := elapsed
			if f.For > 0 {
				end = f.At + f.For
			}
			if f.Kind == faults.Straggler {
				for g := 0; g < nGPU; g++ {
					if f.GPU == faults.All || f.GPU == g {
						gpuFault[g] = addClamped(gpuFault[g], f.At, end, elapsed)
					}
				}
				continue
			}
			for p := 0; p < nPlane; p++ {
				if f.Plane == faults.All || f.Plane == p {
					planeFault[p] = addClamped(planeFault[p], f.At, end, elapsed)
				}
			}
		}
	}

	rep := &Report{Elapsed: elapsed}
	for g := 0; g < nGPU; g++ {
		c := Component{Name: fmt.Sprintf("gpu%d", g), Class: ClassGPU}
		fill(&c, elapsed, []Bucket{Compute, SyncWait, FaultStall},
			[][]interval{gpuCompute[g], gpuSync[g], gpuFault[g]})
		rep.Components = append(rep.Components, c)
	}
	for p := 0; p < nPlane; p++ {
		c := Component{Name: fmt.Sprintf("plane%d", p), Class: ClassPlane}
		fill(&c, elapsed, []Bucket{Transit, Merge, FaultStall},
			[][]interval{planeTransit[p], planeMerge[p], planeFault[p]})
		rep.Components = append(rep.Components, c)
	}
	rep.Path, rep.PathShare = criticalPath(m.KernelSpans, elapsed)
	return rep
}

// emitAsync routes one closed async span to its component's bucket list.
func emitAsync(o openSpan, end, elapsed sim.Time, nGPU, nPlane int, gpuSync, planeMerge [][]interval) {
	switch o.cat {
	case 's':
		if g := int(o.pid) - int(trace.GPUPid(0)); g >= 0 && g < nGPU {
			gpuSync[g] = addClamped(gpuSync[g], o.start, end, elapsed)
		}
	case 'm':
		if p := int(o.pid) - int(trace.SwitchPid(0)); p >= 0 && p < nPlane {
			planeMerge[p] = addClamped(planeMerge[p], o.start, end, elapsed)
		}
	}
}

// ClassShare reports the mean fraction of elapsed time the class's
// components spend in the bucket (0 when the class has no components).
func (r *Report) ClassShare(cl Class, b Bucket) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	var sum sim.Time
	n := 0
	for _, c := range r.Components {
		if c.Class == cl {
			sum += c.Buckets[b]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / (float64(r.Elapsed) * float64(n))
}

// ShareOf reports one named path share's fraction of elapsed time.
func (r *Report) ShareOf(kind string) float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	for _, s := range r.PathShare {
		if s.Kind == kind {
			return float64(s.Time) / float64(r.Elapsed)
		}
	}
	return 0
}

// RenderBreakdown formats the per-component bucket table.
func (r *Report) RenderBreakdown() string {
	t := metrics.NewTable("Time attribution (per component; buckets sum to elapsed "+r.Elapsed.String()+")",
		"Component", "compute", "merge", "transit", "sync-wait", "fault-stall", "queue-stall")
	for _, c := range r.Components {
		t.AddRow(c.Name,
			c.Buckets[Compute].String(), c.Buckets[Merge].String(),
			c.Buckets[Transit].String(), c.Buckets[SyncWait].String(),
			c.Buckets[FaultStall].String(), c.Buckets[QueueStall].String())
	}
	return t.String()
}

// RenderPath formats the critical-path table, eliding the middle of paths
// longer than max segments (max <= 0 prints everything).
func (r *Report) RenderPath(max int) string {
	t := metrics.NewTable("Critical path (one segment per launch wave)",
		"Wave", "Kernel", "Kind", "start", "end", "launch-stall", "contribution")
	segs := r.Path
	elided := 0
	if max > 0 && len(segs) > max {
		elided = len(segs) - max
		segs = segs[:max]
	}
	for _, s := range segs {
		t.AddRow(fmt.Sprintf("%d", s.Wave), s.Name, s.Kind,
			s.Start.String(), s.End.String(), s.Stall.String(), s.Contrib.String())
	}
	if elided > 0 {
		t.AddRow("...", fmt.Sprintf("(%d more segments)", elided), "", "", "", "", "")
	}
	share := "path share:"
	for _, s := range r.PathShare {
		share += fmt.Sprintf(" %s %.1f%%", s.Kind, r.ShareOf(s.Kind)*100)
	}
	return t.String() + share + "\n"
}

// Render formats the full single-point report.
func (r *Report) Render() string {
	return r.RenderBreakdown() + "\n" + r.RenderPath(40)
}

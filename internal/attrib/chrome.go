package attrib

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"

	"cais/internal/sim"
)

// Chrome-trace "top contributors" export: each labeled point renders as
// one trace process whose tracks make the attribution visual — the
// critical path as real-time complete slices on track 0, and per bucket
// one track where the top contributing components are laid out as
// consecutive slices sized by their bucket time. Loadable in Perfetto /
// chrome://tracing next to a run's full event trace.

// topContributors is how many components each bucket track shows.
const topContributors = 5

// WriteChromeTrace serializes the aggregate in Chrome trace-event JSON.
func (a *Aggregator) WriteChromeTrace(w io.Writer) error {
	labels, reps := a.sorted()
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	for i, l := range labels {
		writePointTrace(bw, int32(i), l, reps[i], &first)
	}
	bw.WriteString("],\"displayTimeUnit\":\"ns\"}")
	return bw.Flush()
}

// WriteChromeTraceFile writes the Chrome trace to path.
func (a *Aggregator) WriteChromeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteChromeTrace serializes a single report as a one-process trace.
func (r *Report) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	writePointTrace(bw, 0, "attribution", r, &first)
	bw.WriteString("],\"displayTimeUnit\":\"ns\"}")
	return bw.Flush()
}

func writePointTrace(bw *bufio.Writer, pid int32, label string, r *Report, first *bool) {
	sep := func() {
		if !*first {
			bw.WriteString(",\n")
		}
		*first = false
	}
	sep()
	fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"args":{"name":%s}}`,
		pid, strconv.Quote(label))
	sep()
	fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"critical path"}}`, pid)
	for _, seg := range r.Path {
		sep()
		writeSlice(bw, pid, 0, seg.Kind, fmt.Sprintf("w%d %s", seg.Wave, seg.Name), seg.Start, seg.End-seg.Start)
	}
	// One track per bucket, its top contributors stacked from t=0.
	for b := Bucket(0); int(b) < NumBuckets; b++ {
		top := topFor(r, b)
		if len(top) == 0 {
			continue
		}
		tid := int32(b) + 1
		sep()
		fmt.Fprintf(bw, `{"name":"thread_name","ph":"M","pid":%d,"tid":%d,"args":{"name":%s}}`,
			pid, tid, strconv.Quote("top "+b.String()))
		var at sim.Time
		for _, c := range top {
			sep()
			writeSlice(bw, pid, tid, b.String(), c.Name, at, c.Buckets[b])
			at += c.Buckets[b]
		}
	}
}

// topFor picks the bucket's top contributors by time (desc), breaking
// ties by component order (GPU index, then plane index) — deterministic.
func topFor(r *Report, b Bucket) []Component {
	var out []Component
	for _, c := range r.Components {
		if c.Buckets[b] > 0 {
			out = append(out, c)
		}
	}
	// Stable insertion sort by bucket time descending: component order is
	// already deterministic, so equal times keep index order.
	for i := 1; i < len(out); i++ {
		v := out[i]
		j := i
		for ; j > 0 && out[j-1].Buckets[b] < v.Buckets[b]; j-- {
			out[j] = out[j-1]
		}
		out[j] = v
	}
	if len(out) > topContributors {
		out = out[:topContributors]
	}
	return out
}

// writeSlice emits one complete event; timestamps render as microseconds
// with picosecond precision (same convention as internal/trace).
func writeSlice(bw *bufio.Writer, pid, tid int32, cat, name string, ts, dur sim.Time) {
	fmt.Fprintf(bw, `{"name":%s,"cat":%s,"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s}`,
		strconv.Quote(name), strconv.Quote(cat), pid, tid, micros(ts), micros(dur))
}

func micros(t sim.Time) string {
	ps := int64(t)
	neg := ""
	if ps < 0 {
		neg, ps = "-", -ps
	}
	whole := ps / 1_000_000
	frac := ps % 1_000_000
	if frac == 0 {
		return neg + strconv.FormatInt(whole, 10)
	}
	s := strconv.FormatInt(frac+1_000_000, 10)[1:]
	for len(s) > 1 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	return neg + strconv.FormatInt(whole, 10) + "." + s
}

package attrib

import (
	"bytes"
	"encoding/json"
	"testing"

	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/sim"
)

// --- interval machinery -------------------------------------------------

func TestMergeCoalesces(t *testing.T) {
	iv := []interval{{10, 20}, {0, 5}, {15, 30}, {5, 7}, {40, 50}}
	got := merge(iv)
	want := []interval{{0, 7}, {10, 30}, {40, 50}}
	if len(got) != len(want) {
		t.Fatalf("merge: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d]: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSubtractDisjoint(t *testing.T) {
	a := []interval{{0, 100}}
	b := []interval{{10, 20}, {50, 60}}
	got := subtract(a, b)
	want := []interval{{0, 10}, {20, 50}, {60, 100}}
	if len(got) != len(want) {
		t.Fatalf("subtract: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subtract[%d]: got %v, want %v", i, got[i], want[i])
		}
	}
	if length(got)+length(b) != length(a) {
		t.Fatal("subtract must partition: |a-b| + |b| != |a| for b ⊆ a")
	}
}

// TestFillPartitionExact is the structural-exactness guarantee in
// miniature: overlapping bucket claims plus the queue-stall remainder must
// tile [0, elapsed) with no gap and no double count, in integer ticks.
func TestFillPartitionExact(t *testing.T) {
	const elapsed = sim.Time(1000)
	c := Component{Name: "gpu0", Class: ClassGPU}
	// Compute [100,400) overlaps SyncWait [300,600); FaultStall [550,700)
	// overlaps SyncWait. Priority order Compute > SyncWait > FaultStall.
	fill(&c, elapsed, []Bucket{Compute, SyncWait, FaultStall}, [][]interval{
		{{100, 400}},
		{{300, 600}},
		{{550, 700}},
	})
	if got := c.Buckets[Compute]; got != 300 {
		t.Errorf("compute: got %d, want 300", got)
	}
	if got := c.Buckets[SyncWait]; got != 200 { // [400,600): overlap ceded to compute
		t.Errorf("sync-wait: got %d, want 200", got)
	}
	if got := c.Buckets[FaultStall]; got != 100 { // [600,700): overlap ceded to sync
		t.Errorf("fault-stall: got %d, want 100", got)
	}
	if got := c.Buckets[QueueStall]; got != 400 {
		t.Errorf("queue-stall: got %d, want 400", got)
	}
	if c.Total() != elapsed {
		t.Fatalf("buckets sum to %d, want elapsed %d", c.Total(), elapsed)
	}
}

// --- critical path ------------------------------------------------------

func span(name string, kind kernel.Kind, wave int, start, end sim.Time) *machine.KernelSpan {
	return &machine.KernelSpan{Name: name, Kind: kind, Wave: wave, Start: start, End: end}
}

func TestCriticalPathChainsWaves(t *testing.T) {
	spans := []*machine.KernelSpan{
		span("gemm", kernel.KindGEMM, 1, 0, 100),
		span("ln", kernel.KindLN, 1, 0, 80), // not critical: earlier End
		span("comm", kernel.KindComm, 2, 120, 250),
	}
	path, shares := criticalPath(spans, 300)
	if len(path) != 2 {
		t.Fatalf("path length: got %d, want 2", len(path))
	}
	if path[0].Name != "gemm" || path[1].Name != "comm" {
		t.Fatalf("path: got %s -> %s, want gemm -> comm", path[0].Name, path[1].Name)
	}
	if path[1].Stall != 20 { // launch gap after wave 1 completed at 100
		t.Errorf("wave-2 stall: got %v, want 20", path[1].Stall)
	}
	var sum sim.Time
	for _, s := range shares {
		sum += s.Time
	}
	if sum != 300 {
		t.Fatalf("path shares sum to %v, want elapsed 300 (tail must land in launch-stall)", sum)
	}
}

// TestCriticalPathTieBreak pins the determinism rule: equal End times
// resolve to launch order, not to anything scheduling-dependent.
func TestCriticalPathTieBreak(t *testing.T) {
	spans := []*machine.KernelSpan{
		span("first", kernel.KindGEMM, 1, 0, 100),
		span("second", kernel.KindGEMM, 1, 10, 100),
	}
	path, _ := criticalPath(spans, 100)
	if len(path) != 1 || path[0].Name != "first" {
		t.Fatalf("tie must break to launch order, got %+v", path)
	}
}

func TestCriticalPathEmpty(t *testing.T) {
	path, shares := criticalPath(nil, 100)
	if path != nil || shares != nil {
		t.Fatalf("no spans must yield an empty path, got %v / %v", path, shares)
	}
}

// --- aggregation & export ----------------------------------------------

// syntheticReport builds a small, fully populated report by hand.
func syntheticReport(elapsed sim.Time) *Report {
	r := &Report{Elapsed: elapsed}
	g := Component{Name: "gpu0", Class: ClassGPU}
	fill(&g, elapsed, []Bucket{Compute, SyncWait, FaultStall},
		[][]interval{{{0, elapsed / 2}}, {{elapsed / 2, 3 * elapsed / 4}}, nil})
	p := Component{Name: "plane0", Class: ClassPlane}
	fill(&p, elapsed, []Bucket{Transit, Merge, FaultStall},
		[][]interval{{{0, elapsed / 4}}, {{elapsed / 4, elapsed / 2}}, nil})
	r.Components = []Component{g, p}
	r.Path, r.PathShare = criticalPath([]*machine.KernelSpan{
		span("gemm", kernel.KindGEMM, 1, 0, elapsed/2),
		span("comm", kernel.KindComm, 2, elapsed/2, elapsed),
	}, elapsed)
	return r
}

// TestAggregatorOrderIndependent: insertion order (the racy part under a
// parallel sweep) must not influence a single output byte.
func TestAggregatorOrderIndependent(t *testing.T) {
	r1, r2, r3 := syntheticReport(1000), syntheticReport(2000), syntheticReport(3000)
	a := NewAggregator()
	a.Add("fig/x", r1)
	a.Add("fig/y", r2)
	a.Add("fig/z", r3)
	b := NewAggregator()
	b.Add("fig/z", r3)
	b.Add("fig/x", r1)
	b.Add("fig/y", r2)
	if a.Render() != b.Render() {
		t.Error("Render depends on insertion order")
	}
	var ja, jb bytes.Buffer
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja.Bytes(), jb.Bytes()) {
		t.Error("WriteJSON depends on insertion order")
	}
	var ca, cb bytes.Buffer
	if err := a.WriteChromeTrace(&ca); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteChromeTrace(&cb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ca.Bytes(), cb.Bytes()) {
		t.Error("WriteChromeTrace depends on insertion order")
	}
}

func TestAggregatorNilSafe(t *testing.T) {
	var a *Aggregator
	a.Add("x", syntheticReport(10)) // must not panic
	if a.Len() != 0 {
		t.Fatal("nil aggregator must report zero points")
	}
	b := NewAggregator()
	b.Add("x", nil) // a run without attribution
	if b.Len() != 0 {
		t.Fatal("nil report must not be recorded")
	}
}

// TestChromeTraceDecodes checks the export is well-formed JSON with the
// expected envelope and event phases.
func TestChromeTraceDecodes(t *testing.T) {
	a := NewAggregator()
	a.Add("p1", syntheticReport(1000))
	a.Add("p2", syntheticReport(2000))
	var buf bytes.Buffer
	if err := a.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Pid  int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit: got %q, want ns", doc.DisplayTimeUnit)
	}
	var meta, slices int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
		default:
			t.Errorf("unexpected phase %q in event %q", e.Ph, e.Name)
		}
	}
	if meta == 0 || slices == 0 {
		t.Fatalf("expected metadata and slice events, got %d meta / %d slices", meta, slices)
	}
}

func TestMicrosRendering(t *testing.T) {
	cases := []struct {
		ps   sim.Time
		want string
	}{
		{0, "0"},
		{1_000_000, "1"},
		{1_500_000, "1.5"},
		{123, "0.000123"},
		{-2_500_000, "-2.5"},
	}
	for _, c := range cases {
		if got := micros(c.ps); got != c.want {
			t.Errorf("micros(%d): got %q, want %q", int64(c.ps), got, c.want)
		}
	}
}

func TestClassShare(t *testing.T) {
	r := syntheticReport(1000)
	if got := r.ClassShare(ClassGPU, Compute); got != 0.5 {
		t.Errorf("gpu compute share: got %v, want 0.5", got)
	}
	if got := r.ClassShare(ClassPlane, Transit); got != 0.25 {
		t.Errorf("plane transit share: got %v, want 0.25", got)
	}
	var zero Report
	if got := zero.ClassShare(ClassGPU, Compute); got != 0 {
		t.Errorf("zero-elapsed share must be 0, got %v", got)
	}
}

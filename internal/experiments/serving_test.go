package experiments

import (
	"runtime"
	"strings"
	"testing"

	"cais/internal/memo"
	"cais/internal/metrics"
)

// TestServingDeterminism is the serving study's acceptance ladder: rendered
// output is byte-identical at worker counts 1, 2 and GOMAXPROCS, with the
// memo cache shared or absent.
func TestServingDeterminism(t *testing.T) {
	cold := Quick()
	cold.Workers = 1
	ref, err := Run("serving", cold)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		for _, memoized := range []bool{false, true} {
			c := Quick()
			c.Workers = workers
			if memoized {
				c.Memo = memo.NewCache()
			}
			got, err := Run("serving", c)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Errorf("workers=%d memo=%v: serving output differs from cold sequential run", workers, memoized)
			}
		}
	}
}

// TestServingMemoHits pins the anchor-sharing guarantee: quantized cost
// anchors repeat across arrival rates, strategies only differ per spec, so a
// serving run over a shared cache must hit far more often than it simulates.
func TestServingMemoHits(t *testing.T) {
	c := Quick()
	c.Workers = 1
	c.Memo = memo.NewCache()
	if _, err := Run("serving", c); err != nil {
		t.Fatal(err)
	}
	if c.Memo.Hits() == 0 {
		t.Fatal("serving run recorded no cache hits; anchors are keying differently across points")
	}
	if c.Memo.Misses() >= c.Memo.Lookups() {
		t.Fatalf("misses (%d) not strictly fewer than lookups (%d)", c.Memo.Misses(), c.Memo.Lookups())
	}
	t.Logf("serving memo: %d lookups, %d hits, %d simulated", c.Memo.Lookups(), c.Memo.Hits(), c.Memo.Misses())
}

// TestServingRateAndSLOOverrides checks the caissim -arrival-rate and -slo
// knobs: a single rate collapses the sweep (and anchors the fault study) and
// the SLO bound lands in the rendered header.
func TestServingRateAndSLOOverrides(t *testing.T) {
	c := Quick()
	c.Workers = 1
	c.ServingRate = 500
	c.ServingSLOMs = 7
	r, err := Serving(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rates) != 1 || r.Rates[0] != 500 || r.FaultRate != 500 {
		t.Errorf("rates = %v faultRate = %g, want single 500", r.Rates, r.FaultRate)
	}
	if want := 4; len(r.Rows) != want {
		t.Errorf("sweep rows = %d, want %d (one per strategy)", len(r.Rows), want)
	}
	out := r.Render()
	if !strings.Contains(out, "SLO: E2E <= 7.000ms") {
		t.Errorf("rendered header missing the 7ms SLO bound:\n%s", out)
	}
	if !strings.Contains(out, "500 rps") {
		t.Errorf("fault table header missing the 500 rps rate:\n%s", out)
	}
}

// TestServingRecordsMetrics checks the -metrics-json path: the sweep's
// per-request latencies land in Config.Metrics with the expected counts
// (rate sweep only — faulted runs stay out of the distributions).
func TestServingRecordsMetrics(t *testing.T) {
	c := Quick()
	c.Workers = 1
	c.Metrics = metrics.NewRegistry()
	r, err := Serving(c)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, row := range r.Rows {
		want += row.Sum.Requests
	}
	snap := c.Metrics.Snapshot()
	m, ok := snap.Get("serve.e2e_us")
	if !ok {
		t.Fatal("serve.e2e_us missing from the registry snapshot")
	}
	if int(m.Count) != want {
		t.Errorf("serve.e2e_us count = %d, want %d (sweep rows only)", m.Count, want)
	}
	if m.P99 < m.P50 {
		t.Errorf("serve.e2e_us p99 %v < p50 %v", m.P99, m.P50)
	}
}

// TestServingHealthyAnchorsFaultTable checks the fold: every strategy's
// healthy fault-row is its own baseline (RelGoodput exactly 1) and the
// healthy goodput matches the sweep row at the fault-study rate.
func TestServingHealthyAnchorsFaultTable(t *testing.T) {
	c := Quick()
	c.Workers = 1
	r, err := Serving(c)
	if err != nil {
		t.Fatal(err)
	}
	sweepAtFaultRate := map[string]float64{}
	for _, row := range r.Rows {
		if row.Rate == r.FaultRate {
			sweepAtFaultRate[row.Strategy] = row.Sum.GoodputRPS
		}
	}
	healthy := 0
	for _, row := range r.FaultRows {
		if row.Scenario != "healthy" {
			continue
		}
		healthy++
		if row.RelGoodput != 1 {
			t.Errorf("%s healthy RelGoodput = %g, want 1", row.Strategy, row.RelGoodput)
		}
		if got, want := row.Sum.GoodputRPS, sweepAtFaultRate[row.Strategy]; got != want {
			t.Errorf("%s healthy goodput %g != sweep goodput %g at rate %g", row.Strategy, got, want, r.FaultRate)
		}
	}
	if healthy != len(r.Strategies) {
		t.Errorf("healthy fault rows = %d, want %d", healthy, len(r.Strategies))
	}
}

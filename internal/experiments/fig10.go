package experiments

import (
	"fmt"

	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/strategy"
)

// Fig10Row is one strategy's directional traffic decomposition.
type Fig10Row struct {
	Strategy string
	UpGB     float64 // GPU->switch wire traffic
	DownGB   float64 // switch->GPU wire traffic
	// Imbalance is |up-down| / (up+down): 0 = perfectly balanced links.
	Imbalance float64
	Elapsed   string
}

// Fig10Result is the asymmetric-traffic study.
type Fig10Result struct{ Rows []Fig10Row }

// Fig10 quantifies the paper's Fig. 10 observation on real workloads:
// in-switch reduction (GEMM-RS) is GPU-to-switch heavy while in-switch
// gathering (AG-GEMM) is switch-to-GPU heavy, so a strategy that
// serializes them leaves each direction idle half the time. Running the
// L2 sub-layer (which contains one of each) shows the per-direction
// volumes and how CAIS's asymmetric kernel overlapping balances them in
// time rather than in volume.
func Fig10(c Config) (*Fig10Result, error) {
	sub := model.SubLayers(c.primaryModel())[1]
	hw := c.microHW()
	specs := []strategy.Spec{strategy.SPNVLS(), strategy.T3NVLS(), strategy.CAISBase(), strategy.CAIS()}
	rows, err := mapPoints(c, len(specs), func(i int) (Fig10Row, error) {
		spec := specs[i]
		res, err := c.runSubLayer("fig10/"+spec.Name, hw, spec, sub, strategy.Options{})
		if err != nil {
			return Fig10Row{}, fmt.Errorf("fig10 %s: %w", spec.Name, err)
		}
		up, down := res.UpBytes, res.DownBytes
		total := float64(up + down)
		imb := 0.0
		if total > 0 {
			imb = abs64(float64(up)-float64(down)) / total
		}
		return Fig10Row{
			Strategy:  spec.Name,
			UpGB:      float64(up) / 1e9,
			DownGB:    float64(down) / 1e9,
			Imbalance: imb,
			Elapsed:   res.Elapsed.String(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render formats the Fig. 10 table.
func (r *Fig10Result) Render() string {
	t := metrics.NewTable("Fig. 10: asymmetric traffic per direction (LLaMA-7B L2: GEMM-RS + LN + AG-GEMM)",
		"Strategy", "G2S (GB)", "S2G (GB)", "volume imbalance", "elapsed")
	for _, row := range r.Rows {
		t.Addf(row.Strategy, row.UpGB, row.DownGB, row.Imbalance, row.Elapsed)
	}
	return t.String()
}

package experiments

import (
	"cais/internal/config"
	"cais/internal/memo"
	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/sim"
	"cais/internal/strategy"
	"fmt"
)

// Table1 renders the Table I model settings.
func Table1() string {
	t := metrics.NewTable("Table I: LLM settings used in evaluation",
		"Name", "Hidden", "FFN Hidden", "Heads", "SeqLen", "Batch", "Layers")
	for _, m := range config.TableIModels() {
		t.Addf(m.Name, m.Hidden, m.FFNHidden, m.Heads, m.SeqLen, m.Batch, m.Layers)
	}
	return t.String()
}

// Fig2Row is one GPU-count point of the compute-vs-communication scaling
// study.
type Fig2Row struct {
	GPUs      int
	ComputeMS float64 // per-layer computation time
	CommMS    float64 // per-layer communication time
	Ratio     float64 // comm / compute
}

// Fig2Result is the Fig. 2 sweep.
type Fig2Result struct{ Rows []Fig2Row }

// Fig2 reproduces Fig. 2: computation and communication time per layer for
// LLaMA-7B under SP-NVLS while scaling the GPU count. The paper observes
// communication overtaking computation between 4 and 8 GPUs (~1.6x at 8).
//
// Decomposition: posted writes make kernel spans a poor attribution (data
// movement bleeds into the consumer's span), so computation time is
// measured on an ideal fabric (near-infinite bandwidth, zero latency) and
// communication is the exposed remainder on the real fabric.
func Fig2(c Config) (*Fig2Result, error) {
	counts := []int{1, 2, 4, 8, 16}
	if c.Quick {
		counts = []int{2, 8}
	}
	cfg := c.primaryModel()
	rows, err := mapPoints(c, len(counts), func(i int) (Fig2Row, error) {
		p := counts[i]
		hw := c.e2eHW()
		hw.NumGPUs = p
		real, err := c.runLayers(fmt.Sprintf("fig2/p%d/real", p), hw, strategy.SPNVLS(), cfg, false, c.layers(), strategy.Options{})
		if err != nil {
			return Fig2Row{}, fmt.Errorf("fig2 p=%d: %w", p, err)
		}
		ideal := hw
		ideal.LinkBandwidth *= 1e4
		ideal.LinkEfficiency = 1
		ideal.LinkLatency = 0
		ideal.SwitchLatency = 0
		perfect, err := c.runLayers(fmt.Sprintf("fig2/p%d/ideal", p), ideal, strategy.SPNVLS(), cfg, false, c.layers(), strategy.Options{})
		if err != nil {
			return Fig2Row{}, fmt.Errorf("fig2 ideal p=%d: %w", p, err)
		}
		compute := perfect.Elapsed
		comm := real.Elapsed - perfect.Elapsed
		if comm < 0 {
			comm = 0
		}
		row := Fig2Row{GPUs: p, ComputeMS: ms(compute) / float64(c.layers()), CommMS: ms(comm) / float64(c.layers())}
		if row.ComputeMS > 0 {
			row.Ratio = row.CommMS / row.ComputeMS
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Rows: rows}, nil
}

// Render formats the Fig. 2 table.
func (r *Fig2Result) Render() string {
	t := metrics.NewTable("Fig. 2: computation vs communication per layer (LLaMA-7B, SP-NVLS)",
		"GPUs", "compute (ms)", "comm (ms)", "comm/compute")
	for _, row := range r.Rows {
		t.Addf(row.GPUs, row.ComputeMS, row.CommMS, row.Ratio)
	}
	return t.String()
}

// SpeedupRow is one (model, workload) row of speedups of CAIS over every
// baseline.
type SpeedupRow struct {
	Model    string
	Workload string // "inference" or "training"
	// Elapsed per strategy (simulated per-layer chain time).
	Elapsed map[string]sim.Time
	// Speedup of CAIS over each strategy.
	Speedup map[string]float64
}

// Fig11Result is the end-to-end speedup study.
type Fig11Result struct {
	Rows       []SpeedupRow
	Strategies []string
	// Geomean of CAIS speedup over each baseline across rows.
	Geomean map[string]float64
}

// Fig11 reproduces Fig. 11: end-to-end speedup of CAIS over the nine
// baselines plus CAIS-Base, for training and inference (prefill) on the
// Table I models.
func Fig11(c Config) (*Fig11Result, error) {
	workloads := []struct {
		name     string
		training bool
	}{{"inference", false}, {"training", true}}
	if c.Quick {
		workloads = workloads[:1]
	}
	return speedupStudy(c, func(spec strategy.Spec, cfg config.Model, training bool) (memo.Entry, error) {
		wl := "inference"
		if training {
			wl = "training"
		}
		return c.runLayers("fig11/"+cfg.Name+"/"+wl+"/"+spec.Name,
			c.e2eHW(), spec, cfg, training, c.layers(), strategy.Options{})
	}, workloads)
}

func speedupStudy(c Config,
	run func(spec strategy.Spec, cfg config.Model, training bool) (memo.Entry, error),
	workloads []struct {
		name     string
		training bool
	}) (*Fig11Result, error) {

	specs := strategy.All()
	out := &Fig11Result{Geomean: map[string]float64{}}
	for _, s := range specs {
		out.Strategies = append(out.Strategies, s.Name)
	}

	// Fan the (model, workload, strategy) cube out as independent points,
	// then fold sequentially in the original nested order so rows,
	// speedups and geomeans come out byte-identical to a sequential run.
	models := c.models()
	type runKey struct{ mi, wi, si int }
	keys := make([]runKey, 0, len(models)*len(workloads)*len(specs))
	for mi := range models {
		for wi := range workloads {
			for si := range specs {
				keys = append(keys, runKey{mi, wi, si})
			}
		}
	}
	elapsed, err := mapPoints(c, len(keys), func(i int) (sim.Time, error) {
		k := keys[i]
		res, err := run(specs[k.si], models[k.mi], workloads[k.wi].training)
		if err != nil {
			return 0, fmt.Errorf("fig11 %s/%s/%s: %w",
				models[k.mi].Name, workloads[k.wi].name, specs[k.si].Name, err)
		}
		return res.Elapsed, nil
	})
	if err != nil {
		return nil, err
	}

	samples := map[string][]float64{}
	idx := 0
	for _, cfg := range models {
		for _, w := range workloads {
			row := SpeedupRow{
				Model: cfg.Name, Workload: w.name,
				Elapsed: map[string]sim.Time{},
				Speedup: map[string]float64{},
			}
			for _, spec := range specs {
				row.Elapsed[spec.Name] = elapsed[idx]
				idx++
			}
			cais := row.Elapsed["CAIS"]
			for name, e := range row.Elapsed {
				if name == "CAIS" || cais == 0 {
					continue
				}
				sp := float64(e) / float64(cais)
				row.Speedup[name] = sp
				samples[name] = append(samples[name], sp)
			}
			out.Rows = append(out.Rows, row)
		}
	}
	for _, s := range out.Strategies {
		if xs := samples[s]; len(xs) > 0 {
			out.Geomean[s] = metrics.Geomean(xs)
		}
	}
	return out, nil
}

// Render formats the Fig. 11 table.
func (r *Fig11Result) Render() string {
	headers := append([]string{"Model", "Workload"}, r.Strategies...)
	t := metrics.NewTable("Fig. 11: CAIS speedup over baselines (end-to-end per-layer chain)", headers...)
	for _, row := range r.Rows {
		cells := []string{row.Model, row.Workload}
		for _, s := range r.Strategies {
			if s == "CAIS" {
				cells = append(cells, row.Elapsed[s].String())
				continue
			}
			cells = append(cells, fmt.Sprintf("%.2fx", row.Speedup[s]))
		}
		t.AddRow(cells...)
	}
	geo := []string{"geomean", ""}
	for _, s := range r.Strategies {
		if s == "CAIS" {
			geo = append(geo, "1.00x")
			continue
		}
		geo = append(geo, fmt.Sprintf("%.2fx", r.Geomean[s]))
	}
	t.AddRow(geo...)
	return t.String()
}

// Fig12Result is the sub-layer speedup study (L1-L4).
type Fig12Result struct {
	Rows       []SpeedupRow // Workload carries the sub-layer ID
	Strategies []string
	Geomean    map[string]float64
}

// Fig12 reproduces Fig. 12: speedups on the four communication-intensive
// sub-layers (GEMM-RS + LN + AG-GEMM pipelines).
func Fig12(c Config) (*Fig12Result, error) {
	specs := strategy.All()
	out := &Fig12Result{Geomean: map[string]float64{}}
	for _, s := range specs {
		out.Strategies = append(out.Strategies, s.Name)
	}
	hw := c.microHW()

	// Flatten the (model, sub-layer, strategy) cube into independent
	// points; fold in nested order afterwards.
	type subKey struct {
		model config.Model
		sub   model.SubLayer
	}
	var cells []subKey
	for _, cfg := range c.models() {
		subs := model.SubLayers(cfg)
		if c.Quick {
			subs = subs[:2]
		}
		for _, sub := range subs {
			cells = append(cells, subKey{model: cfg, sub: sub})
		}
	}
	type runKey struct{ ci, si int }
	keys := make([]runKey, 0, len(cells)*len(specs))
	for ci := range cells {
		for si := range specs {
			keys = append(keys, runKey{ci, si})
		}
	}
	elapsed, err := mapPoints(c, len(keys), func(i int) (sim.Time, error) {
		k := keys[i]
		cell := cells[k.ci]
		res, err := c.runSubLayer("fig12/"+cell.model.Name+"/"+cell.sub.ID+"/"+specs[k.si].Name,
			hw, specs[k.si], cell.sub, strategy.Options{})
		if err != nil {
			return 0, fmt.Errorf("fig12 %s/%s/%s: %w", cell.model.Name, cell.sub.ID, specs[k.si].Name, err)
		}
		return res.Elapsed, nil
	})
	if err != nil {
		return nil, err
	}

	samples := map[string][]float64{}
	idx := 0
	for _, cell := range cells {
		row := SpeedupRow{
			Model: cell.model.Name, Workload: cell.sub.ID,
			Elapsed: map[string]sim.Time{},
			Speedup: map[string]float64{},
		}
		for _, spec := range specs {
			row.Elapsed[spec.Name] = elapsed[idx]
			idx++
		}
		cais := row.Elapsed["CAIS"]
		for name, e := range row.Elapsed {
			if name == "CAIS" || cais == 0 {
				continue
			}
			sp := float64(e) / float64(cais)
			row.Speedup[name] = sp
			samples[name] = append(samples[name], sp)
		}
		out.Rows = append(out.Rows, row)
	}
	for _, s := range out.Strategies {
		if xs := samples[s]; len(xs) > 0 {
			out.Geomean[s] = metrics.Geomean(xs)
		}
	}
	return out, nil
}

// Render formats the Fig. 12 table.
func (r *Fig12Result) Render() string {
	headers := append([]string{"Model", "Sub-layer"}, r.Strategies...)
	t := metrics.NewTable("Fig. 12: CAIS speedup on sub-layers L1-L4", headers...)
	for _, row := range r.Rows {
		cells := []string{row.Model, row.Workload}
		for _, s := range r.Strategies {
			if s == "CAIS" {
				cells = append(cells, row.Elapsed[s].String())
				continue
			}
			cells = append(cells, fmt.Sprintf("%.2fx", row.Speedup[s]))
		}
		t.AddRow(cells...)
	}
	geo := []string{"geomean", ""}
	for _, s := range r.Strategies {
		if s == "CAIS" {
			geo = append(geo, "1.00x")
			continue
		}
		geo = append(geo, fmt.Sprintf("%.2fx", r.Geomean[s]))
	}
	t.AddRow(geo...)
	return t.String()
}

// Fig17Row is one GPU-count point of the scalability study.
type Fig17Row struct {
	GPUs int
	// Per-GPU throughput normalized to 8-GPU CAIS.
	CAIS        float64
	CoCoNetNVLS float64
}

// Fig17Result is the scalability study.
type Fig17Result struct{ Rows []Fig17Row }

// Fig17 reproduces Fig. 17: per-GPU computation throughput of CAIS and
// CoCoNet-NVLS for 8..32 GPUs, with the hidden dimension scaled
// proportionally to the GPU count; normalized to 8-GPU CAIS. The paper
// reports a <5% drop at 32 GPUs.
func Fig17(c Config) (*Fig17Result, error) {
	counts := []int{8, 16, 24, 32}
	if c.Quick {
		counts = []int{4, 8}
	}
	base := counts[0]
	cfg0 := c.primaryModel()
	type point struct{ cais, coco float64 }
	points, err := mapPoints(c, len(counts), func(i int) (point, error) {
		p := counts[i]
		// Fine request granularity: at coarse chunks the merge table
		// quantizes to one session per port and thrashes at high GPU
		// counts, which is a simulation artifact, not a CAIS property.
		hw := c.microHW()
		hw.NumGPUs = p
		scale := float64(p) / float64(base)
		cfg := cfg0.Scale(scale)
		cfg.Layers = cfg0.Layers
		var pt point
		for _, spec := range []strategy.Spec{strategy.CAIS(), strategy.CoCoNetNVLS()} {
			res, err := c.runLayers(fmt.Sprintf("fig17/p%d/%s", p, spec.Name),
				hw, spec, cfg, false, 1, strategy.Options{})
			if err != nil {
				return point{}, fmt.Errorf("fig17 p=%d %s: %w", p, spec.Name, err)
			}
			flopsPerGPU := layerFlopsPerGPU(cfg, p)
			tput := flopsPerGPU / res.Elapsed.Seconds()
			if spec.Name == "CAIS" {
				pt.cais = tput
			} else {
				pt.coco = tput
			}
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	norm := points[0].cais
	out := &Fig17Result{}
	for i, p := range counts {
		out.Rows = append(out.Rows, Fig17Row{
			GPUs:        p,
			CAIS:        points[i].cais / norm,
			CoCoNetNVLS: points[i].coco / norm,
		})
	}
	return out, nil
}

// layerFlopsPerGPU approximates one transformer layer's GEMM+attention
// FLOPs per GPU under TP degree p.
func layerFlopsPerGPU(m config.Model, p int) float64 {
	tokens := float64(m.Tokens())
	h := float64(m.Hidden)
	f := float64(m.FFNHidden)
	attn := 4 * tokens * float64(m.SeqLen) * float64(m.HeadDim()) * float64(m.Heads)
	gemms := 2*tokens*3*h*h + 2*tokens*h*h + 2*tokens*f*h + 2*tokens*h*f
	return (gemms + attn) / float64(p)
}

// Render formats the Fig. 17 table.
func (r *Fig17Result) Render() string {
	t := metrics.NewTable("Fig. 17: per-GPU throughput vs GPU count (normalized to first CAIS point)",
		"GPUs", "CAIS", "CoCoNet-NVLS")
	for _, row := range r.Rows {
		t.Addf(row.GPUs, row.CAIS, row.CoCoNetNVLS)
	}
	return t.String()
}

// Table2Row is one scaled-down-validation configuration.
type Table2Row struct {
	Setup   string
	Hidden  int
	FFN     int
	Heads   int
	SMs     int
	Speedup float64 // CAIS over TP-NVLS
}

// Table2Result is the scaled-down validation.
type Table2Result struct{ Rows []Table2Row }

// Table2 reproduces Table II: the CAIS-over-TP-NVLS speedup under the
// full-scale configuration (132 SMs, full matrix dims) and the half-scale
// one (66 SMs, halved dims); the paper reports 1.43 vs 1.40.
func Table2(c Config) (*Table2Result, error) {
	full := config.Model{Name: "Full", Hidden: 8192, FFNHidden: 22528, Heads: 64,
		SeqLen: c.primaryModel().SeqLen, Batch: c.primaryModel().Batch, Layers: 1}
	half := config.Model{Name: "Half", Hidden: 4096, FFNHidden: 11264, Heads: 32,
		SeqLen: full.SeqLen, Batch: full.Batch, Layers: 1}
	if c.Quick {
		// Quick mode shifts both setups one halving down so the pair
		// stays realistically sized but cheap.
		full = half
		full.Name = "Full"
		half = config.Model{Name: "Half", Hidden: 2048, FFNHidden: 5632, Heads: 16,
			SeqLen: full.SeqLen, Batch: full.Batch, Layers: 1}
	}
	fullSMs, halfSMs := 2*c.HW.SMsPerGPU, c.HW.SMsPerGPU
	if c.Quick {
		fullSMs, halfSMs = c.HW.SMsPerGPU, c.HW.SMsPerGPU/2
	}
	setups := []struct {
		cfg config.Model
		sms int
	}{{full, fullSMs}, {half, halfSMs}}
	rows, err := mapPoints(c, len(setups), func(i int) (Table2Row, error) {
		setup := setups[i]
		hw := c.e2eHW()
		hw.SMsPerGPU = setup.sms
		cais, err := c.runLayers("table2/"+setup.cfg.Name+"/CAIS", hw, strategy.CAIS(), setup.cfg, false, 1, strategy.Options{})
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %s: %w", setup.cfg.Name, err)
		}
		tp, err := c.runLayers("table2/"+setup.cfg.Name+"/TP-NVLS", hw, strategy.TPNVLS(), setup.cfg, false, 1, strategy.Options{})
		if err != nil {
			return Table2Row{}, fmt.Errorf("table2 %s: %w", setup.cfg.Name, err)
		}
		return Table2Row{
			Setup: setup.cfg.Name, Hidden: setup.cfg.Hidden, FFN: setup.cfg.FFNHidden,
			Heads: setup.cfg.Heads, SMs: setup.sms,
			Speedup: cais.Speedup(tp),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Table2Result{Rows: rows}, nil
}

// Render formats the Table II table.
func (r *Table2Result) Render() string {
	t := metrics.NewTable("Table II: scaled-down validation (CAIS speedup over TP-NVLS)",
		"Setup", "Hidden", "FFN Hidden", "Heads", "#SM", "Speedup")
	for _, row := range r.Rows {
		t.Addf(row.Setup, row.Hidden, row.FFN, row.Heads, row.SMs, fmt.Sprintf("%.2f", row.Speedup))
	}
	return t.String()
}

package experiments

import (
	"crypto/sha256"
	"testing"

	"cais/internal/memo"
)

// TestTileArenaIsolationAcrossPoints pins the tile-arena isolation
// invariant: kernel-construction state (per-machine tile/access arenas,
// the builder's interned tile-set cache, pooled latches and dependency
// records) must never leak between sweep points. Rendering an experiment
// alone, rendering it immediately after a different experiment in the
// same process, and rendering it after that experiment with a shared memo
// cache must all be byte-identical — with the cache in play the second
// point replays some anchor shapes from memo artifacts, so any arena
// aliasing between the simulated and replayed paths would shift bytes.
func TestTileArenaIsolationAcrossPoints(t *testing.T) {
	render := func(t *testing.T, c Config, id string) string {
		t.Helper()
		s, err := Run(id, c)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		return s
	}
	base := func() Config {
		c := Quick()
		c.Workers = 1
		return c
	}

	solo := render(t, base(), "table2")

	cold := base()
	render(t, cold, "fig13b")
	afterCold := render(t, cold, "table2")

	warm := base()
	warm.Memo = memo.NewCache()
	render(t, warm, "fig13b")
	afterWarm := render(t, warm, "table2")

	if solo != afterCold {
		t.Errorf("table2 differs when run after fig13b (no memo): arena or cache state leaked across points\nsolo  sha256 %x\nafter sha256 %x",
			sha256.Sum256([]byte(solo)), sha256.Sum256([]byte(afterCold)))
	}
	if solo != afterWarm {
		t.Errorf("table2 differs when run after fig13b with a shared memo cache\nsolo  sha256 %x\nafter sha256 %x",
			sha256.Sum256([]byte(solo)), sha256.Sum256([]byte(afterWarm)))
	}
}

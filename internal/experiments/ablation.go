package experiments

import (
	"fmt"

	"cais/internal/memo"
	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/nvswitch"
	"cais/internal/sim"
	"cais/internal/strategy"
)

// Ablation benches for the design choices DESIGN.md calls out. These go
// beyond the paper's figures: they quantify the two mechanisms the
// reproduction's merge unit depends on (the victim-selection policy and
// the dedicated control/request channel).

// AblationRow is one design-variant measurement.
type AblationRow struct {
	Variant string
	Elapsed sim.Time
	// SlowdownPct relative to the first (reference) variant.
	SlowdownPct float64
	// Flushes counts partial reduction flushes (merge-quality proxy).
	Flushes int64
	SkewUS  float64
}

// AblationResult is one design-choice sweep.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// AblationEviction compares the merge unit's victim policies (the paper
// fixes LRU, Sec. III-A-4). Measured on the uncoordinated variant, where
// staggered arrivals keep many sessions live and the victim choice
// actually matters; under full coordination sessions are so short-lived
// that the policies coincide.
func AblationEviction(c Config) (*AblationResult, error) {
	out := &AblationResult{Title: "merge-unit eviction policy (CAIS-w/o-Coord, LLaMA-7B L2, 40 KB/port)"}
	sub := model.SubLayers(c.primaryModel())[1]
	hw := c.microHW()
	policies := []nvswitch.EvictionPolicy{nvswitch.EvictLRU, nvswitch.EvictFIFO, nvswitch.EvictMRU}
	results, err := mapPoints(c, len(policies), func(i int) (memo.Entry, error) {
		pol := policies[i]
		res, err := c.runSubLayer("ablation-eviction/"+pol.String(), hw, strategy.CAISNoCoord(), sub, strategy.Options{Eviction: pol})
		if err != nil {
			return memo.Entry{}, fmt.Errorf("ablation eviction %v: %w", pol, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	// Fold in index order: SlowdownPct references Rows[0] as the baseline.
	for i, res := range results {
		out.add(policies[i].String(), res)
	}
	return out, nil
}

// AblationSideband compares the dedicated control/request channel against
// control packets sharing the data queues — the head-of-line-blocking
// failure mode that breaks synchronization alignment.
func AblationSideband(c Config) (*AblationResult, error) {
	out := &AblationResult{Title: "control/request sideband (CAIS, LLaMA-7B L2)"}
	sub := model.SubLayers(c.primaryModel())[1]
	hw := c.microHW()
	variants := []struct {
		name string
		off  bool
	}{{"sideband on (default)", false}, {"sideband off", true}}
	results, err := mapPoints(c, len(variants), func(i int) (memo.Entry, error) {
		v := variants[i]
		res, err := c.runSubLayer("ablation-sideband/"+v.name, hw, strategy.CAIS(), sub, strategy.Options{NoControlSideband: v.off})
		if err != nil {
			return memo.Entry{}, fmt.Errorf("ablation sideband %s: %w", v.name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		out.add(variants[i].name, res)
	}
	return out, nil
}

// AblationGranularity sweeps the simulation's request granularity to show
// the reported shapes are not an artifact of one chunk size.
func AblationGranularity(c Config) (*AblationResult, error) {
	out := &AblationResult{Title: "request granularity sensitivity (CAIS speedup over TP-NVLS, LLaMA-7B L2)"}
	sub := model.SubLayers(c.primaryModel())[1]
	sizes := []int64{8 << 10, 16 << 10, 32 << 10}
	if c.Quick {
		sizes = sizes[1:]
	}
	rows, err := mapPoints(c, len(sizes), func(i int) (AblationRow, error) {
		rb := sizes[i]
		hw := c.HW
		hw.RequestBytes = rb
		caisRes, err := c.runSubLayer(fmt.Sprintf("ablation-granularity/%dKB/CAIS", rb>>10), hw, strategy.CAIS(), sub, strategy.Options{})
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablation granularity %d: %w", rb, err)
		}
		tp, err := c.runSubLayer(fmt.Sprintf("ablation-granularity/%dKB/TP-NVLS", rb>>10), hw, strategy.TPNVLS(), sub, strategy.Options{})
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablation granularity %d: %w", rb, err)
		}
		return AblationRow{
			Variant:     fmt.Sprintf("%d KB requests", rb>>10),
			Elapsed:     caisRes.Elapsed,
			SlowdownPct: (caisRes.Speedup(tp) - 1) * 100, // speedup margin, in %
			Flushes:     caisRes.Stats.PartialFlushes,
			SkewUS:      caisRes.Stats.AvgSkew().Microseconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

func (r *AblationResult) add(name string, res memo.Entry) {
	row := AblationRow{
		Variant: name, Elapsed: res.Elapsed,
		Flushes: res.Stats.PartialFlushes,
		SkewUS:  res.Stats.AvgSkew().Microseconds(),
	}
	if len(r.Rows) > 0 {
		ref := r.Rows[0].Elapsed
		row.SlowdownPct = (float64(res.Elapsed)/float64(ref) - 1) * 100
	}
	r.Rows = append(r.Rows, row)
}

// Render formats an ablation table.
func (r *AblationResult) Render() string {
	t := metrics.NewTable("Ablation: "+r.Title,
		"Variant", "elapsed", "delta %", "partial flushes", "skew (us)")
	for _, row := range r.Rows {
		t.Addf(row.Variant, row.Elapsed, row.SlowdownPct, row.Flushes, row.SkewUS)
	}
	return t.String()
}

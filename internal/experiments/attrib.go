package experiments

import (
	"cais/internal/config"
	"cais/internal/memo"
	"cais/internal/model"
	"cais/internal/strategy"
)

// runSubLayer is the drivers' labeled memo wrapper. With an attribution
// aggregator attached (Config.Attrib) it turns on the attribution pass
// for the point and folds the resulting report under the label; without
// one the options pass through untouched, so memo keys, run counts and
// alloc profiles match the pre-attribution behavior exactly. Attrib is a
// hashed option, so attributed points memoize like any other — a cache
// hit replays the recorded report.
func (c Config) runSubLayer(label string, hw config.Hardware, spec strategy.Spec, sub model.SubLayer, opts strategy.Options) (memo.Entry, error) {
	if c.Attrib != nil {
		opts.Attrib = true
	}
	e, err := memo.RunSubLayer(c.Memo, hw, spec, sub, opts)
	if err == nil {
		c.Attrib.Add(label, e.Attrib)
	}
	return e, err
}

// runLayers is runSubLayer's end-to-end counterpart.
func (c Config) runLayers(label string, hw config.Hardware, spec strategy.Spec, cfg config.Model, training bool, layers int, opts strategy.Options) (memo.Entry, error) {
	if c.Attrib != nil {
		opts.Attrib = true
	}
	e, err := memo.RunLayers(c.Memo, hw, spec, cfg, training, layers, opts)
	if err == nil {
		c.Attrib.Add(label, e.Attrib)
	}
	return e, err
}

package experiments

import (
	"fmt"
	"math"

	"cais/internal/area"
	"cais/internal/config"
	"cais/internal/kernel"
	"cais/internal/machine"
	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/sim"
)

// Fig18Row is one AllReduce message-size point.
type Fig18Row struct {
	SizeMB   int
	SimMS    float64 // event-simulated NVLS AllReduce
	RefMS    float64 // hardware reference model
	ErrPct   float64
	RingMS   float64 // GPU-driven ring AllReduce (Sec. II's 2-8x context)
	NVLSGain float64 // ring / NVLS
	BusBWGBs float64 // achieved algorithm bandwidth
}

// Fig18Result is the NVLS validation study.
type Fig18Result struct {
	Rows   []Fig18Row
	AvgErr float64 // the paper reports 3.87%
}

// Fig18 reproduces Fig. 18: AllReduce latency of the simulated NVLS
// implementation across message sizes, validated against a hardware
// reference model (an alpha-beta model parameterized from published
// DGX-H100 NVLS numbers — DESIGN.md §1 records this substitution: no
// physical testbed exists here). The paper measures 1-16 GB messages on
// real hardware; we sweep the same saturated-bandwidth regime at sizes the
// event simulator covers in reasonable time.
func Fig18(c Config) (*Fig18Result, error) {
	sizesMB := []int{64, 128, 256, 512, 1024}
	if c.Quick {
		sizesMB = []int{64, 128}
	}
	hw := c.HW
	hw.RequestBytes = 64 << 10
	// Reference: T = alpha + V / algbw with algbw the effective
	// per-direction link bandwidth (NVLS one-shot AllReduce moves V up
	// and V down per GPU).
	algbw := hw.LinkBandwidth * hw.LinkEfficiency
	// alpha folds the fixed costs our simulator charges a collective
	// (kernel launch overhead plus expected launch-jitter absorption).
	alpha := hw.KernelLaunchOverhead + hw.KernelLaunchJitter

	rows, err := mapPoints(c, len(sizesMB), func(i int) (Fig18Row, error) {
		mb := sizesMB[i]
		bytes := int64(mb) << 20
		simT, err := runAllReduce(hw, bytes, true)
		if err != nil {
			return Fig18Row{}, fmt.Errorf("fig18 %dMB nvls: %w", mb, err)
		}
		ringT, err := runAllReduce(hw, bytes, false)
		if err != nil {
			return Fig18Row{}, fmt.Errorf("fig18 %dMB ring: %w", mb, err)
		}
		refT := alpha + sim.DurationForBytes(bytes, algbw)
		e := math.Abs(float64(simT)-float64(refT)) / float64(refT) * 100
		return Fig18Row{
			SizeMB: mb,
			SimMS:  ms(simT), RefMS: ms(refT), ErrPct: e,
			RingMS: ms(ringT), NVLSGain: float64(ringT) / float64(simT),
			BusBWGBs: float64(bytes) / simT.Seconds() / 1e9,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig18Result{Rows: rows}
	var errSum float64
	for _, row := range rows {
		errSum += row.ErrPct
	}
	out.AvgErr = errSum / float64(len(sizesMB))
	return out, nil
}

// runAllReduce simulates one bare AllReduce of the given payload using the
// NVLS push-reduction (nvls=true) or the GPU-driven ring (nvls=false).
func runAllReduce(hw config.Hardware, bytes int64, nvls bool) (sim.Time, error) {
	eng := sim.NewEngine()
	eng.SetStepLimit(500_000_000)
	m := machine.New(eng, hw, machine.Options{})
	b := model.NewBuilder(m)

	// Shape the payload as an M x N bf16 tensor.
	cols := 8192
	rows := int(bytes / int64(cols*hw.ElemBytes))
	if rows < model.TileM {
		rows = model.TileM
	}
	partial := b.NewLocalGrid(rows, cols)
	out := b.NewLocalGrid(rows, cols)
	in := func(g, mi, ni int) []kernel.Tile { return nil }
	var k *kernel.Kernel
	if nvls {
		k = b.NVLSAllReduce("ar.bench", rows, cols, in, out)
	} else {
		k = b.RingAllReduce("ar.bench", rows, cols, in, out)
	}
	_ = partial
	completed := false
	m.Eng.At(0, func() {
		m.LaunchKernel(k, func() { completed = true })
	})
	// The collective is done when every GPU's reduced copy has been
	// delivered, not when the (posted) pushes were issued: run to
	// quiescence and confirm all output tiles published.
	end := m.Run()
	if !completed {
		if err := m.CheckQuiescent(); err != nil {
			return 0, err
		}
		return 0, fmt.Errorf("allreduce did not complete")
	}
	for g := 0; g < hw.NumGPUs; g++ {
		if !m.TileReady(out.Tile(0, 0, g)) || !m.TileReady(out.Tile(out.MTiles-1, out.NTiles-1, g)) {
			return 0, fmt.Errorf("allreduce data not fully delivered")
		}
	}
	return end, nil
}

// Render formats the Fig. 18 table.
func (r *Fig18Result) Render() string {
	t := metrics.NewTable("Fig. 18: NVLS AllReduce validation vs hardware reference model",
		"Size (MB)", "sim (ms)", "ref (ms)", "err %", "ring (ms)", "NVLS gain", "algbw (GB/s)")
	for _, row := range r.Rows {
		t.Addf(row.SizeMB, row.SimMS, row.RefMS, row.ErrPct, row.RingMS, row.NVLSGain, row.BusBWGBs)
	}
	t.AddRow("", "", "", fmt.Sprintf("avg %.2f%%", r.AvgErr), "", "", "")
	return t.String()
}

// Area renders the Section V-D hardware-overhead estimates.
func Area() string {
	cfg := area.Default()
	sw := area.SwitchOverhead(cfg)
	g := area.GPUOverhead(cfg)
	t := metrics.NewTable("Sec. V-D: hardware overhead at TSMC 12nm",
		"Structure", "Area (mm^2)", "% of die")
	t.AddRow("NVSwitch merge units (8 ports)", fmt.Sprintf("%.3f", sw.MM2), fmt.Sprintf("%.2f%%", sw.PctOfDie))
	t.AddRow("GPU TB-group synchronizer", fmt.Sprintf("%.4f", g.MM2), fmt.Sprintf("%.4f%%", g.PctOfDie))
	return t.String()
}

package experiments

import (
	"strings"
	"testing"
)

func TestResilienceQuick(t *testing.T) {
	r, err := Resilience(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 || len(r.Waits) != 4 {
		t.Fatalf("rows=%d waits=%d, want >0 and 4", len(r.Rows), len(r.Waits))
	}

	// Every fault family starts at a healthy anchor with relative
	// throughput exactly 1, and throughput decays monotonically (never
	// increases) as severity rises — for every strategy.
	byFamily := map[string][]ResilienceRow{}
	var order []string
	for _, row := range r.Rows {
		if _, seen := byFamily[row.Family]; !seen {
			order = append(order, row.Family)
		}
		byFamily[row.Family] = append(byFamily[row.Family], row)
	}
	if len(order) != 3 {
		t.Fatalf("fault families = %v, want 3", order)
	}
	for _, fam := range order {
		rows := byFamily[fam]
		for _, s := range r.Strategies {
			if rows[0].RelTput[s] != 1 {
				t.Errorf("%s/%s: healthy anchor rel tput = %v, want 1", fam, s, rows[0].RelTput[s])
			}
			for i := 1; i < len(rows); i++ {
				if rows[i].RelTput[s] > rows[i-1].RelTput[s] {
					t.Errorf("%s/%s: throughput rose with severity: %v -> %v (%s -> %s)",
						fam, s, rows[i-1].RelTput[s], rows[i].RelTput[s],
						rows[i-1].Severity, rows[i].Severity)
				}
			}
		}
	}

	// The healthy anchors of all families are the same unfaulted run and
	// must agree bit-for-bit (the zero-fault schedule is inert).
	base := byFamily[order[0]][0]
	for _, fam := range order[1:] {
		anchor := byFamily[fam][0]
		for _, s := range r.Strategies {
			if anchor.Elapsed[s] != base.Elapsed[s] {
				t.Errorf("healthy anchor of %s differs for %s: %v vs %v",
					fam, s, anchor.Elapsed[s], base.Elapsed[s])
			}
		}
	}

	// CAIS must stay ahead of every baseline under faults (geomean > 1).
	for s, g := range r.Geomean {
		if g <= 1 {
			t.Errorf("CAIS lost its advantage under faults vs %s: geomean %.3f", s, g)
		}
	}

	out := r.Render()
	for _, want := range []string{"Resilience", "relative throughput", "waiting time", "geomean"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestResilienceDeterministic(t *testing.T) {
	r1, err := Resilience(Quick())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Resilience(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatal("resilience study not byte-stable across runs")
	}
}

func TestResilienceCoordinationBoundsStragglerWait(t *testing.T) {
	r, err := Resilience(Quick())
	if err != nil {
		t.Fatal(err)
	}
	// Waits rows: CAIS healthy, CAIS straggler, no-coord healthy,
	// no-coord straggler. Under a straggler, coordination must keep the
	// average wait far below the uncoordinated run.
	caisStraggler, noCoordStraggler := r.Waits[1], r.Waits[3]
	if caisStraggler.SkewUS >= noCoordStraggler.SkewUS {
		t.Fatalf("coordination did not bound straggler wait: %v vs %v",
			caisStraggler.SkewUS, noCoordStraggler.SkewUS)
	}
}

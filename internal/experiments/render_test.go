package experiments

import (
	"strings"
	"testing"
)

// Render coverage: every result type must produce a titled, populated
// table (quick fidelity).
func TestAllRendersPopulated(t *testing.T) {
	c := Quick()
	cases := []struct {
		name string
		run  func() (string, error)
		want []string
	}{
		{"fig2", func() (string, error) { r, e := Fig2(c); return render(r, e) },
			[]string{"Fig. 2", "GPUs", "comm/compute"}},
		{"fig10", func() (string, error) { r, e := Fig10(c); return render(r, e) },
			[]string{"Fig. 10", "G2S", "S2G", "CAIS"}},
		{"fig13a", func() (string, error) { r, e := Fig13a(c); return render(r, e) },
			[]string{"Fig. 13a", "reduction"}},
		{"fig13b", func() (string, error) { r, e := Fig13b(c); return render(r, e) },
			[]string{"Fig. 13b", "throttling"}},
		{"fig14", func() (string, error) { r, e := Fig14(c); return render(r, e) },
			[]string{"Fig. 14", "Table (KB)"}},
		{"fig16", func() (string, error) { r, e := Fig16(c); return render(r, e) },
			[]string{"Fig. 16", "CAIS-Base", "%"}},
		{"fig18", func() (string, error) { r, e := Fig18(c); return render(r, e) },
			[]string{"Fig. 18", "avg", "algbw"}},
		{"table2", func() (string, error) { r, e := Table2(c); return render(r, e) },
			[]string{"Table II", "Full", "Half"}},
		{"ablation-eviction", func() (string, error) { r, e := AblationEviction(c); return render(r, e) },
			[]string{"eviction", "lru", "mru"}},
		{"ablation-granularity", func() (string, error) { r, e := AblationGranularity(c); return render(r, e) },
			[]string{"granularity", "KB requests"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			out, err := tc.run()
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range tc.want {
				if !strings.Contains(out, w) {
					t.Errorf("%s render missing %q:\n%s", tc.name, w, out)
				}
			}
		})
	}
}

func TestFig17RenderAndFig15Render(t *testing.T) {
	c := Quick()
	r15, err := Fig15(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r15.Render(), "average") {
		t.Error("fig15 render missing average row")
	}
	r17, err := Fig17(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r17.Render(), "CoCoNet-NVLS") {
		t.Error("fig17 render missing baseline column")
	}
}

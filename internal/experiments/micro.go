package experiments

import (
	"fmt"

	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/sim"
	"cais/internal/strategy"
)

// Fig13aRow is one sub-layer's minimal required merge-table size.
type Fig13aRow struct {
	Model    string
	SubLayer string
	// Per-port high-water marks with an unlimited table, in KB.
	CoordKB   float64
	UncoordKB float64
}

// Fig13aResult is the minimal-table-size study.
type Fig13aResult struct {
	Rows []Fig13aRow
	// ReductionPct is the average reduction in required table size from
	// coordination (the paper reports 87%).
	ReductionPct float64
}

// Fig13a reproduces Fig. 13(a): the minimal merging-table size required to
// merge all eligible requests, measured as the per-port occupancy
// high-water mark with an unlimited table, with and without merging-aware
// TB coordination.
func Fig13a(c Config) (*Fig13aResult, error) {
	out := &Fig13aResult{}
	hw := c.microHW()
	type cell struct {
		modelName string
		sub       model.SubLayer
	}
	var cells []cell
	for _, cfg := range c.microModels() {
		subs := model.SubLayers(cfg)
		if c.Quick {
			subs = subs[:1]
		}
		for _, sub := range subs {
			cells = append(cells, cell{modelName: cfg.Name, sub: sub})
		}
	}
	// Each point runs one cell's coordinated and uncoordinated probes.
	rows, err := mapPoints(c, len(cells), func(i int) (Fig13aRow, error) {
		cl := cells[i]
		// "Merge all eligible requests": unlimited capacity and no
		// forward-progress timeout, so every session waits for its
		// full request set and the high-water mark is the true
		// buffering requirement.
		opts := strategy.Options{UnlimitedMergeTable: true, NoMergeTimeout: true}
		coord, err := c.runSubLayer("fig13a/"+cl.modelName+"/"+cl.sub.ID+"/CAIS", hw, strategy.CAIS(), cl.sub, opts)
		if err != nil {
			return Fig13aRow{}, fmt.Errorf("fig13a %s/%s coord: %w", cl.modelName, cl.sub.ID, err)
		}
		uncoord, err := c.runSubLayer("fig13a/"+cl.modelName+"/"+cl.sub.ID+"/no-coord", hw, strategy.CAISNoCoord(), cl.sub, opts)
		if err != nil {
			return Fig13aRow{}, fmt.Errorf("fig13a %s/%s uncoord: %w", cl.modelName, cl.sub.ID, err)
		}
		return Fig13aRow{
			Model: cl.modelName, SubLayer: cl.sub.ID,
			CoordKB:   float64(coord.MergeHWM) / 1024,
			UncoordKB: float64(uncoord.MergeHWM) / 1024,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var sumRatio float64
	var n int
	for _, row := range rows {
		out.Rows = append(out.Rows, row)
		if row.UncoordKB > 0 {
			sumRatio += 1 - row.CoordKB/row.UncoordKB
			n++
		}
	}
	if n > 0 {
		out.ReductionPct = sumRatio / float64(n) * 100
	}
	return out, nil
}

// Render formats the Fig. 13(a) table.
func (r *Fig13aResult) Render() string {
	t := metrics.NewTable("Fig. 13a: minimal required merge-table size per port (unlimited-table high-water mark)",
		"Model", "Sub-layer", "CAIS (KB)", "w/o coord (KB)")
	for _, row := range r.Rows {
		t.Addf(row.Model, row.SubLayer, row.CoordKB, row.UncoordKB)
	}
	t.AddRow("", "", fmt.Sprintf("avg reduction: %.0f%%", r.ReductionPct), "")
	return t.String()
}

// Fig13bRow is one coordination-ablation step.
type Fig13bRow struct {
	Step    string
	SkewUS  float64 // average per-address arrival spread (waiting time)
	Elapsed sim.Time
}

// Fig13bResult is the coordination ablation.
type Fig13bResult struct{ Rows []Fig13bRow }

// Fig13b reproduces Fig. 13(b): the average waiting time (delay between
// the earliest and latest requests targeting the same address) as the
// coordination mechanisms are enabled one by one. The paper reduces
// ~35 us to <3 us.
func Fig13b(c Config) (*Fig13bResult, error) {
	steps := []struct {
		name string
		spec strategy.Spec
	}{
		{"no coordination", strategy.CAISNoCoord()},
		{"+ pre-launch sync", withCoord(strategy.CAISNoCoord(), true, false, false)},
		{"+ pre-access sync", withCoord(strategy.CAISNoCoord(), true, true, false)},
		{"+ request throttling", strategy.CAIS()},
	}
	sub := model.SubLayers(c.primaryModel())[1] // the paper's L2
	hw := c.microHW()
	rows, err := mapPoints(c, len(steps), func(i int) (Fig13bRow, error) {
		st := steps[i]
		res, err := c.runSubLayer("fig13b/"+st.name, hw, st.spec, sub, strategy.Options{UnlimitedMergeTable: true})
		if err != nil {
			return Fig13bRow{}, fmt.Errorf("fig13b %s: %w", st.name, err)
		}
		return Fig13bRow{
			Step: st.name, SkewUS: res.Stats.AvgSkew().Microseconds(), Elapsed: res.Elapsed,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig13bResult{Rows: rows}, nil
}

func withCoord(s strategy.Spec, preLaunch, preAccess, throttle bool) strategy.Spec {
	s.CoordPreLaunch = preLaunch
	s.CoordPreAccess = preAccess
	s.Throttled = throttle
	if preLaunch || preAccess || throttle {
		s.Name = "CAIS-ablation"
	}
	return s
}

// Render formats the Fig. 13(b) table.
func (r *Fig13bResult) Render() string {
	t := metrics.NewTable("Fig. 13b: TB-coordination ablation (average waiting time, LLaMA-7B L2)",
		"Configuration", "avg wait (us)", "elapsed")
	for _, row := range r.Rows {
		t.Addf(row.Step, row.SkewUS, row.Elapsed)
	}
	return t.String()
}

// Fig14Row is one merge-table-size point.
type Fig14Row struct {
	TableKB int
	// Performance normalized to CAIS at the largest table.
	CAIS    float64
	Uncoord float64
}

// Fig14Result is the table-size sensitivity study.
type Fig14Result struct{ Rows []Fig14Row }

// Fig14 reproduces Fig. 14: performance sensitivity to the merge-table
// size for LLaMA-7B. Coordinated CAIS stays near its peak with small
// tables; the uncoordinated variant degrades as the table shrinks.
func Fig14(c Config) (*Fig14Result, error) {
	// Sizes start at the simulation's request granularity (entries are
	// request-sized here; the paper's 5 KB point assumes 128 B entries).
	sizes := []int{10, 20, 40, 80, 160, 320}
	if c.Quick {
		sizes = []int{40, 80, 320}
	}
	sub := model.SubLayers(c.primaryModel())[1]
	hw := c.microHW()
	type pair struct{ cais, unc sim.Time }
	points, err := mapPoints(c, len(sizes), func(i int) (pair, error) {
		kb := sizes[i]
		opts := strategy.Options{MergeTableBytes: int64(kb) << 10}
		cais, err := c.runSubLayer(fmt.Sprintf("fig14/%dKB/CAIS", kb), hw, strategy.CAIS(), sub, opts)
		if err != nil {
			return pair{}, fmt.Errorf("fig14 cais %dKB: %w", kb, err)
		}
		unc, err := c.runSubLayer(fmt.Sprintf("fig14/%dKB/no-coord", kb), hw, strategy.CAISNoCoord(), sub, opts)
		if err != nil {
			return pair{}, fmt.Errorf("fig14 uncoord %dKB: %w", kb, err)
		}
		return pair{cais: cais.Elapsed, unc: unc.Elapsed}, nil
	})
	if err != nil {
		return nil, err
	}
	ref := points[len(sizes)-1].cais
	out := &Fig14Result{}
	for i, kb := range sizes {
		out.Rows = append(out.Rows, Fig14Row{
			TableKB: kb,
			CAIS:    float64(ref) / float64(points[i].cais),
			Uncoord: float64(ref) / float64(points[i].unc),
		})
	}
	return out, nil
}

// Render formats the Fig. 14 table.
func (r *Fig14Result) Render() string {
	t := metrics.NewTable("Fig. 14: performance vs merge-table size (normalized, LLaMA-7B L2)",
		"Table (KB)", "CAIS", "w/o coordination")
	for _, row := range r.Rows {
		t.Addf(row.TableKB, row.CAIS, row.Uncoord)
	}
	return t.String()
}

// Fig15Row is one sub-layer's average bandwidth utilization per config.
type Fig15Row struct {
	Model    string
	SubLayer string
	BasePct  float64
	PartPct  float64
	CAISPct  float64
}

// Fig15Result is the bandwidth-utilization study.
type Fig15Result struct {
	Rows []Fig15Row
	// Averages across rows (the paper reports 62.4 / 84.7 / 90.2).
	AvgBase, AvgPartial, AvgCAIS float64
}

// Fig15 reproduces Fig. 15: average bandwidth utilization (across all
// links and both directions, over the communication-active window) for
// CAIS-Base, CAIS-Partial (no traffic control) and full CAIS.
func Fig15(c Config) (*Fig15Result, error) {
	out := &Fig15Result{}
	hw := c.microHW()
	specs := []strategy.Spec{strategy.CAISBase(), strategy.CAISPartial(), strategy.CAIS()}
	type cell struct {
		modelName string
		sub       model.SubLayer
	}
	var cells []cell
	for _, cfg := range c.microModels() {
		subs := model.SubLayers(cfg)
		if c.Quick {
			subs = subs[:1]
		}
		for _, sub := range subs {
			cells = append(cells, cell{modelName: cfg.Name, sub: sub})
		}
	}
	// Flatten (cell, strategy) into independent utilization probes.
	type runKey struct{ ci, si int }
	keys := make([]runKey, 0, len(cells)*len(specs))
	for ci := range cells {
		for si := range specs {
			keys = append(keys, runKey{ci, si})
		}
	}
	utils, err := mapPoints(c, len(keys), func(i int) (float64, error) {
		k := keys[i]
		cl := cells[k.ci]
		res, err := c.runSubLayer("fig15/"+cl.modelName+"/"+cl.sub.ID+"/"+specs[k.si].Name,
			hw, specs[k.si], cl.sub, strategy.Options{})
		if err != nil {
			return 0, fmt.Errorf("fig15 %s/%s/%s: %w", cl.modelName, cl.sub.ID, specs[k.si].Name, err)
		}
		return res.AvgUtil * 100, nil
	})
	if err != nil {
		return nil, err
	}
	var n float64
	idx := 0
	for _, cl := range cells {
		row := Fig15Row{Model: cl.modelName, SubLayer: cl.sub.ID}
		row.BasePct = utils[idx]
		row.PartPct = utils[idx+1]
		row.CAISPct = utils[idx+2]
		idx += 3
		out.Rows = append(out.Rows, row)
		out.AvgBase += row.BasePct
		out.AvgPartial += row.PartPct
		out.AvgCAIS += row.CAISPct
		n++
	}
	if n > 0 {
		out.AvgBase /= n
		out.AvgPartial /= n
		out.AvgCAIS /= n
	}
	return out, nil
}

// Render formats the Fig. 15 table.
func (r *Fig15Result) Render() string {
	t := metrics.NewTable("Fig. 15: average bandwidth utilization per sub-layer (%)",
		"Model", "Sub-layer", "CAIS-Base", "CAIS-Partial", "CAIS")
	for _, row := range r.Rows {
		t.Addf(row.Model, row.SubLayer, row.BasePct, row.PartPct, row.CAISPct)
	}
	t.Addf("average", "", r.AvgBase, r.AvgPartial, r.AvgCAIS)
	return t.String()
}

// Fig16Series is one configuration's utilization-over-time series.
type Fig16Series struct {
	Name string
	Bin  sim.Time
	Util []float64
}

// Fig16Result is the utilization-over-time study.
type Fig16Result struct{ Series []Fig16Series }

// Fig16 reproduces Fig. 16: link bandwidth utilization over time for the
// L2 sub-layer of LLaMA-7B under CAIS-Base, CAIS-Partial and CAIS. The
// paper shows CAIS sustaining near-peak utilization while Partial dips
// from contention and Base fluctuates lowest.
func Fig16(c Config) (*Fig16Result, error) {
	sub := model.SubLayers(c.primaryModel())[1]
	hw := c.microHW()
	bin := 20 * sim.Microsecond
	if c.Quick {
		bin = 50 * sim.Microsecond
	}
	specs := []strategy.Spec{strategy.CAISBase(), strategy.CAISPartial(), strategy.CAIS()}
	series, err := mapPoints(c, len(specs), func(i int) (Fig16Series, error) {
		spec := specs[i]
		// UtilBin is declarative and hashed into the memo key, so the
		// timeline records into the cache entry on the first run and
		// replays byte-identically on hits — this figure used to bypass
		// the cache via a Configure callback.
		ent, err := c.runSubLayer("fig16/"+spec.Name, hw, spec, sub, strategy.Options{UtilBin: bin})
		if err != nil {
			return Fig16Series{}, fmt.Errorf("fig16 %s: %w", spec.Name, err)
		}
		return Fig16Series{Name: spec.Name, Bin: bin, Util: ent.Timeline.Utilization()}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig16Result{Series: series}, nil
}

// Render formats the Fig. 16 series as a sparkline-style table.
func (r *Fig16Result) Render() string {
	t := metrics.NewTable("Fig. 16: bandwidth utilization over time (LLaMA-7B L2)",
		"t", "CAIS-Base", "CAIS-Partial", "CAIS")
	maxLen := 0
	for _, s := range r.Series {
		if len(s.Util) > maxLen {
			maxLen = len(s.Util)
		}
	}
	bin := sim.Time(0)
	if len(r.Series) > 0 {
		bin = r.Series[0].Bin
	}
	at := func(s Fig16Series, i int) string {
		if i >= len(s.Util) {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", s.Util[i]*100)
	}
	for i := 0; i < maxLen; i++ {
		t.AddRow((sim.Time(i) * bin).String(), at(r.Series[0], i), at(r.Series[1], i), at(r.Series[2], i))
	}
	return t.String()
}

package experiments

import (
	"fmt"

	"cais/internal/attrib"
	"cais/internal/faults"
	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/sim"
	"cais/internal/strategy"
)

// ResilienceRow is one (fault family, severity) point: elapsed time per
// strategy, CAIS speedup over each baseline, and each strategy's relative
// throughput versus its own healthy run (1.0 at severity zero, expected
// monotone non-increasing as severity rises).
type ResilienceRow struct {
	Family   string
	Severity string
	Elapsed  map[string]sim.Time
	Speedup  map[string]float64
	RelTput  map[string]float64
}

// ResilienceWaitRow is one straggler waiting-time measurement (the Fig. 13b
// companion): average per-address arrival spread with and without the TB
// coordination mechanisms, healthy versus one straggler GPU.
type ResilienceWaitRow struct {
	Config  string
	GPUs    string // "healthy" or the straggler description
	SkewUS  float64
	Elapsed sim.Time
}

// ResilienceAttribRow is one (family, severity) point's CAIS time
// attribution: class-averaged bucket shares showing which bucket the
// fault's damage lands in (DESIGN.md §12). Populated only when the study
// runs with an attribution aggregator attached (caissim -attrib).
type ResilienceAttribRow struct {
	Family   string
	Severity string
	// GPU-class shares of elapsed.
	Compute, SyncWait, GPUStall float64
	// Switch-plane-class shares of elapsed.
	Transit, Merge, PlaneStall float64
	// FaultStall is the mean fault-overlap share across both classes.
	FaultStall float64
}

// ResilienceResult is the degradation study.
type ResilienceResult struct {
	Rows       []ResilienceRow
	Strategies []string
	// Geomean of CAIS speedup over each baseline across every faulted
	// scenario (severity-zero rows excluded: they are the healthy anchor).
	Geomean map[string]float64
	Waits   []ResilienceWaitRow
	// AttribRows is the attribution section (empty without -attrib).
	AttribRows []ResilienceAttribRow
}

// resilienceScenario is one severity step of a fault family; a nil schedule
// is the healthy anchor and must reproduce the unfaulted run exactly.
type resilienceScenario struct {
	severity string
	sched    *faults.Schedule
}

// degradeAll builds a permanent all-link bandwidth degradation schedule.
func degradeAll(name string, factor float64) *faults.Schedule {
	return &faults.Schedule{Name: name, Faults: []faults.Fault{
		{Kind: faults.LinkDegrade, At: 0, Plane: faults.All, GPU: faults.All, Factor: factor},
	}}
}

// killPlanes builds a schedule taking the first n planes down at t=0 — the
// "boot with dead planes" scenario; address-hash re-routing spreads their
// traffic over the survivors.
func killPlanes(name string, n int) *faults.Schedule {
	s := &faults.Schedule{Name: name}
	for p := 0; p < n; p++ {
		s.Faults = append(s.Faults, faults.Fault{Kind: faults.PlaneDown, At: 0, Plane: p, GPU: faults.All})
	}
	return s
}

// straggle builds a schedule slowing GPU 0's compute by the factor.
func straggle(name string, factor float64) *faults.Schedule {
	return &faults.Schedule{Name: name, Faults: []faults.Fault{
		{Kind: faults.Straggler, At: 0, GPU: 0, Plane: faults.All, Factor: factor},
	}}
}

// resilienceFamilies enumerates the severity sweeps of the study: link
// degradation 0-75%, one and two dead switch planes, and one straggler GPU
// at 1.5-4x compute slowdown. Quick mode trims each sweep to its healthy
// anchor plus one faulted point.
func resilienceFamilies(quick bool) []struct {
	name      string
	scenarios []resilienceScenario
} {
	degrade := []resilienceScenario{
		{"0%", nil},
		{"25%", degradeAll("degrade-25", 0.75)},
		{"50%", degradeAll("degrade-50", 0.50)},
		{"75%", degradeAll("degrade-75", 0.25)},
	}
	planes := []resilienceScenario{
		{"0 dead", nil},
		{"1 dead", killPlanes("plane-kill-1", 1)},
		{"2 dead", killPlanes("plane-kill-2", 2)},
	}
	straggler := []resilienceScenario{
		{"none", nil},
		{"1.5x", straggle("straggler-1.5", 1.5)},
		{"2x", straggle("straggler-2", 2)},
		{"4x", straggle("straggler-4", 4)},
	}
	if quick {
		degrade = []resilienceScenario{degrade[0], degrade[2]}
		planes = planes[:2]
		straggler = []resilienceScenario{straggler[0], straggler[2]}
	}
	return []struct {
		name      string
		scenarios []resilienceScenario
	}{
		{"link degradation", degrade},
		{"dead planes", planes},
		{"straggler GPU0", straggler},
	}
}

// resilienceStrategies are the compared executions: CAIS against the three
// strongest baseline families of Fig. 11.
func resilienceStrategies() []strategy.Spec {
	return []strategy.Spec{strategy.CAIS(), strategy.TPNVLS(), strategy.CoCoNetNVLS(), strategy.T3()}
}

// Resilience runs the degradation study: every strategy on the L2
// sub-layer under each fault scenario, measuring how gracefully throughput
// decays with fault severity and whether CAIS keeps its advantage under
// faults. Severity-zero rows run with no schedule installed and therefore
// reproduce the healthy baseline bit-for-bit.
func Resilience(c Config) (*ResilienceResult, error) {
	specs := resilienceStrategies()
	out := &ResilienceResult{Geomean: map[string]float64{}}
	for _, s := range specs {
		out.Strategies = append(out.Strategies, s.Name)
	}
	sub := model.SubLayers(c.primaryModel())[1] // the paper's L2
	hw := c.microHW()

	// Flatten the (family, scenario, strategy) cube into independent
	// simulation points, fan them out, then fold sequentially below in the
	// original nested order (the healthy anchor and geomean samples depend
	// on fold order, not run order).
	families := resilienceFamilies(c.Quick)
	type runKey struct {
		sched *faults.Schedule
		tag   string
		spec  strategy.Spec
	}
	var keys []runKey
	for _, fam := range families {
		for _, sc := range fam.scenarios {
			for _, spec := range specs {
				keys = append(keys, runKey{
					sched: sc.sched,
					tag:   fam.name + "/" + sc.severity + "/" + spec.Name,
					spec:  spec,
				})
			}
		}
	}
	type pointResult struct {
		elapsed sim.Time
		rep     *attrib.Report
	}
	points, err := mapPoints(c, len(keys), func(i int) (pointResult, error) {
		k := keys[i]
		res, err := c.runSubLayer("resilience/"+k.tag, hw, k.spec, sub, strategy.Options{Faults: k.sched})
		if err != nil {
			return pointResult{}, fmt.Errorf("resilience %s: %w", k.tag, err)
		}
		return pointResult{elapsed: res.Elapsed, rep: res.Attrib}, nil
	})
	if err != nil {
		return nil, err
	}

	samples := map[string][]float64{}
	idx := 0
	for _, fam := range families {
		healthy := map[string]sim.Time{}
		for _, sc := range fam.scenarios {
			row := ResilienceRow{
				Family: fam.name, Severity: sc.severity,
				Elapsed: map[string]sim.Time{},
				Speedup: map[string]float64{},
				RelTput: map[string]float64{},
			}
			for _, spec := range specs {
				pt := points[idx]
				e := pt.elapsed
				idx++
				row.Elapsed[spec.Name] = e
				if sc.sched == nil {
					healthy[spec.Name] = e
				}
				if h := healthy[spec.Name]; h > 0 && e > 0 {
					row.RelTput[spec.Name] = float64(h) / float64(e)
				}
				if spec.Name == "CAIS" && pt.rep != nil {
					out.AttribRows = append(out.AttribRows, attribRow(fam.name, sc.severity, pt.rep))
				}
			}
			cais := row.Elapsed["CAIS"]
			for name, e := range row.Elapsed {
				if name == "CAIS" || cais == 0 {
					continue
				}
				sp := float64(e) / float64(cais)
				row.Speedup[name] = sp
				if sc.sched != nil {
					samples[name] = append(samples[name], sp)
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	for _, s := range out.Strategies {
		if xs := samples[s]; len(xs) > 0 {
			out.Geomean[s] = metrics.Geomean(xs)
		}
	}
	waits, err := resilienceWaits(c, sub)
	if err != nil {
		return nil, err
	}
	out.Waits = waits
	return out, nil
}

// resilienceWaits is the Fig. 13b companion under a straggler: average
// waiting time (per-address arrival spread) for CAIS with and without TB
// coordination, healthy versus one 2x straggler GPU. Coordination should
// keep the spread bounded even when one GPU falls behind.
func resilienceWaits(c Config, sub model.SubLayer) ([]ResilienceWaitRow, error) {
	type step struct {
		name  string
		spec  strategy.Spec
		sched *faults.Schedule
	}
	steps := []step{
		{"CAIS", strategy.CAIS(), nil},
		{"CAIS", strategy.CAIS(), straggle("wait-straggler-2", 2)},
		{"CAIS w/o coordination", strategy.CAISNoCoord(), nil},
		{"CAIS w/o coordination", strategy.CAISNoCoord(), straggle("wait-straggler-2", 2)},
	}
	mhw := c.microHW()
	return mapPoints(c, len(steps), func(i int) (ResilienceWaitRow, error) {
		st := steps[i]
		gpus := "healthy"
		if st.sched != nil {
			gpus = "gpu0 2x slower"
		}
		res, err := c.runSubLayer("resilience/waits/"+st.name+"/"+gpus,
			mhw, st.spec, sub, strategy.Options{UnlimitedMergeTable: true, Faults: st.sched})
		if err != nil {
			return ResilienceWaitRow{}, fmt.Errorf("resilience waits %s: %w", st.name, err)
		}
		return ResilienceWaitRow{
			Config: st.name, GPUs: gpus,
			SkewUS: res.Stats.AvgSkew().Microseconds(), Elapsed: res.Elapsed,
		}, nil
	})
}

// Render formats the degradation tables.
func (r *ResilienceResult) Render() string {
	baselines := make([]string, 0, len(r.Strategies))
	for _, s := range r.Strategies {
		if s != "CAIS" {
			baselines = append(baselines, s)
		}
	}
	headers := append([]string{"Fault family", "Severity", "CAIS"}, baselines...)
	sp := metrics.NewTable("Resilience: CAIS speedup over baselines under faults (LLaMA-7B L2)", headers...)
	for _, row := range r.Rows {
		cells := []string{row.Family, row.Severity, row.Elapsed["CAIS"].String()}
		for _, b := range baselines {
			cells = append(cells, fmt.Sprintf("%.2fx", row.Speedup[b]))
		}
		sp.AddRow(cells...)
	}
	geo := []string{"geomean (faulted)", "", "1.00x"}
	for _, b := range baselines {
		geo = append(geo, fmt.Sprintf("%.2fx", r.Geomean[b]))
	}
	sp.AddRow(geo...)

	tpHeaders := append([]string{"Fault family", "Severity"}, r.Strategies...)
	tp := metrics.NewTable("Resilience: relative throughput vs own healthy run", tpHeaders...)
	for _, row := range r.Rows {
		cells := []string{row.Family, row.Severity}
		for _, s := range r.Strategies {
			cells = append(cells, fmt.Sprintf("%.3f", row.RelTput[s]))
		}
		tp.AddRow(cells...)
	}

	wt := metrics.NewTable("Resilience: waiting time under a straggler (Fig. 13b companion)",
		"Configuration", "GPUs", "avg wait (us)", "elapsed")
	for _, row := range r.Waits {
		wt.Addf(row.Config, row.GPUs, row.SkewUS, row.Elapsed)
	}
	out := sp.String() + "\n" + tp.String() + "\n" + wt.String()
	if len(r.AttribRows) > 0 {
		at := metrics.NewTable("Resilience: CAIS time attribution under faults (class-averaged share of elapsed, %)",
			"Fault family", "Severity",
			"gpu:compute", "gpu:sync", "gpu:stall",
			"plane:transit", "plane:merge", "plane:stall", "fault")
		pct := func(v float64) string { return fmt.Sprintf("%.1f", v*100) }
		for _, row := range r.AttribRows {
			at.AddRow(row.Family, row.Severity,
				pct(row.Compute), pct(row.SyncWait), pct(row.GPUStall),
				pct(row.Transit), pct(row.Merge), pct(row.PlaneStall),
				pct(row.FaultStall))
		}
		out += "\n" + at.String()
	}
	return out
}

// attribRow folds one CAIS report into the attribution section's row.
func attribRow(family, severity string, rep *attrib.Report) ResilienceAttribRow {
	return ResilienceAttribRow{
		Family: family, Severity: severity,
		Compute:    rep.ClassShare(attrib.ClassGPU, attrib.Compute),
		SyncWait:   rep.ClassShare(attrib.ClassGPU, attrib.SyncWait),
		GPUStall:   rep.ClassShare(attrib.ClassGPU, attrib.QueueStall),
		Transit:    rep.ClassShare(attrib.ClassPlane, attrib.Transit),
		Merge:      rep.ClassShare(attrib.ClassPlane, attrib.Merge),
		PlaneStall: rep.ClassShare(attrib.ClassPlane, attrib.QueueStall),
		FaultStall: (rep.ClassShare(attrib.ClassGPU, attrib.FaultStall) +
			rep.ClassShare(attrib.ClassPlane, attrib.FaultStall)) / 2,
	}
}

package experiments

import (
	"fmt"

	"cais/internal/config"
	"cais/internal/faults"
	"cais/internal/metrics"
	"cais/internal/serve"
	"cais/internal/sim"
	"cais/internal/strategy"
)

// ServingRow is one (arrival rate, strategy) point of the latency-throughput
// sweep: the SLO summary of a full serving run.
type ServingRow struct {
	Rate     float64
	Strategy string
	Sum      serve.Summary
}

// ServingFaultRow is one (fault scenario, strategy) point of the
// goodput-under-faults study at the fixed fault-study rate. RelGoodput is
// goodput relative to the same strategy's healthy run (1.0 when healthy).
type ServingFaultRow struct {
	Scenario   string
	Strategy   string
	Sum        serve.Summary
	RelGoodput float64
}

// ServingResult is the serving workload study (DESIGN.md §13): request-level
// latency/throughput across arrival rates, plus goodput retention under the
// resilience study's fault scenarios.
type ServingResult struct {
	SLO        serve.SLO
	Rates      []float64
	FaultRate  float64
	Strategies []string
	Rows       []ServingRow
	FaultRows  []ServingFaultRow
}

// servingModel is the architecture behind the serving cost anchors: the
// miniature model in quick mode, LLaMA-7B at full fidelity.
func (c Config) servingModel() config.Model {
	if c.Quick {
		return quickModel()
	}
	return c.primaryModel()
}

// servingWorkload builds the open-loop workload for one arrival rate. Sizes
// follow the fidelity level; lengths are uniform so prefill shapes exercise
// several quantization anchors.
func (c Config) servingWorkload(rate float64) serve.Workload {
	w := serve.Workload{RatePerSec: rate, Seed: c.HW.Seed}
	if c.Quick {
		w.Requests = 16
		w.Prompt = serve.Uniform(32, 128)
		w.Output = serve.Uniform(4, 8)
	} else {
		w.Requests = 64
		w.Prompt = serve.Uniform(64, 512)
		w.Output = serve.Uniform(8, 32)
	}
	return w
}

// servingRates is the arrival-rate sweep, tuned around each fidelity level's
// service capacity (quick decode iterations cost ~0.3ms, LLaMA-7B ~11ms):
// one rate comfortably under capacity, one near it, one past saturation.
// caissim -arrival-rate collapses the sweep to a single rate.
func (c Config) servingRates() []float64 {
	if c.ServingRate > 0 {
		return []float64{c.ServingRate}
	}
	if c.Quick {
		return []float64{250, 1000, 4000}
	}
	return []float64{10, 25, 50}
}

// servingSLO is the end-to-end latency objective; caissim -slo overrides the
// fidelity default.
func (c Config) servingSLO() serve.SLO {
	msBound := c.ServingSLOMs
	if msBound <= 0 {
		if c.Quick {
			msBound = 10
		} else {
			msBound = 750
		}
	}
	return serve.SLO{E2E: sim.Scale(sim.Millisecond, msBound)}
}

// servingScenario is one fault scenario of the goodput study.
type servingScenario struct {
	name  string
	sched *faults.Schedule
}

// servingScenarios reuses the resilience study's fault constructors plus a
// seeded Monte-Carlo mix from faults.RandomSchedule (drawn from a labeled
// stream of the hardware seed, so the mix is stable across runs and worker
// counts). Quick mode trims to healthy + one deterministic + the random mix.
func servingScenarios(hw config.Hardware, quick bool) []servingScenario {
	rng := sim.NewStreamRNG(hw.Seed, "serving/faults")
	mix := faults.RandomSchedule(rng, "serving-random-mix", hw.NumGPUs, hw.NumSwitchPlanes,
		faults.CampaignSpec{Faults: 3, MaxDeadPlanes: 1})
	all := []servingScenario{
		{"healthy", nil},
		{"link degrade 50%", degradeAll("serving-degrade-50", 0.50)},
		{"1 dead plane", killPlanes("serving-plane-kill-1", 1)},
		{"straggler 2x", straggle("serving-straggler-2", 2)},
		{"random mix", mix},
	}
	if quick {
		return []servingScenario{all[0], all[1], all[4]}
	}
	return all
}

// Serving runs the serving workload study: every strategy serves the same
// request trace through the continuous-batching scheduler, first across the
// arrival-rate sweep (latency-throughput frontier) and then under the fault
// scenarios at the mid sweep rate (goodput retention). Iteration costs come
// from strategy-layer anchor simulations through the shared memo cache —
// shapes repeat heavily across rates and strategies, so most points price
// from cache. Per-request latencies from the rate sweep land in c.Metrics
// (serve.* histograms) during the sequential fold.
func Serving(c Config) (*ServingResult, error) {
	specs := resilienceStrategies()
	rates := c.servingRates()
	slo := c.servingSLO()
	hw := c.e2eHW()
	base := c.servingModel()
	scenarios := servingScenarios(hw, c.Quick)
	faultRate := rates[len(rates)/2]

	// Flatten (rate x strategy) + (scenario x strategy) into independent
	// points; fold sequentially below in the same order.
	type runKey struct {
		tag   string
		rate  float64
		spec  strategy.Spec
		sched *faults.Schedule
	}
	var keys []runKey
	for _, rate := range rates {
		for _, spec := range specs {
			keys = append(keys, runKey{
				tag: fmt.Sprintf("rate-%g/%s", rate, spec.Name), rate: rate, spec: spec,
			})
		}
	}
	for _, sc := range scenarios {
		for _, spec := range specs {
			keys = append(keys, runKey{
				tag: "faults/" + sc.name + "/" + spec.Name, rate: faultRate, spec: spec, sched: sc.sched,
			})
		}
	}
	type point struct {
		res serve.Result
		sum serve.Summary
	}
	points, err := mapPoints(c, len(keys), func(i int) (point, error) {
		k := keys[i]
		cm, err := serve.NewStrategyCost(hw, k.spec, base, c.layers(), strategy.Options{Faults: k.sched}, c.Memo)
		if err != nil {
			return point{}, fmt.Errorf("serving %s: %w", k.tag, err)
		}
		res, err := serve.Run(c.servingWorkload(k.rate), cm, serve.SchedConfig{})
		if err != nil {
			return point{}, fmt.Errorf("serving %s: %w", k.tag, err)
		}
		return point{res: res, sum: serve.Evaluate(res, slo)}, nil
	})
	if err != nil {
		return nil, err
	}

	out := &ServingResult{SLO: slo, Rates: rates, FaultRate: faultRate}
	for _, s := range specs {
		out.Strategies = append(out.Strategies, s.Name)
	}
	idx := 0
	for _, rate := range rates {
		for _, spec := range specs {
			p := points[idx]
			idx++
			out.Rows = append(out.Rows, ServingRow{Rate: rate, Strategy: spec.Name, Sum: p.sum})
			// Only healthy sweep latencies feed the exported histograms;
			// faulted runs would skew the distributions.
			p.res.Record(c.Metrics)
		}
	}
	healthyGoodput := map[string]float64{}
	for _, sc := range scenarios {
		for _, spec := range specs {
			p := points[idx]
			idx++
			row := ServingFaultRow{Scenario: sc.name, Strategy: spec.Name, Sum: p.sum}
			if sc.sched == nil {
				healthyGoodput[spec.Name] = p.sum.GoodputRPS
			}
			if h := healthyGoodput[spec.Name]; h > 0 {
				row.RelGoodput = p.sum.GoodputRPS / h
			}
			out.FaultRows = append(out.FaultRows, row)
		}
	}
	return out, nil
}

// Render formats the serving tables.
func (r *ServingResult) Render() string {
	f1 := func(v float64) string { return fmt.Sprintf("%.1f", v) }
	f3 := func(t sim.Time) string { return fmt.Sprintf("%.3f", ms(t)) }

	lt := metrics.NewTable(
		fmt.Sprintf("Serving: latency-throughput sweep (SLO: E2E <= %s)", r.SLO.E2E),
		"Rate (rps)", "Strategy", "tput (rps)", "goodput (rps)", "SLO met",
		"TTFT p50 (ms)", "TTFT p99 (ms)", "TPOT p50 (ms)", "E2E p50 (ms)", "E2E p99 (ms)")
	for _, row := range r.Rows {
		lt.AddRow(fmt.Sprintf("%g", row.Rate), row.Strategy,
			f1(row.Sum.ThroughputRPS), f1(row.Sum.GoodputRPS),
			fmt.Sprintf("%d/%d", row.Sum.SLOMet, row.Sum.Requests),
			f3(row.Sum.TTFT.P50), f3(row.Sum.TTFT.P99),
			f3(row.Sum.TPOT.P50),
			f3(row.Sum.E2E.P50), f3(row.Sum.E2E.P99))
	}

	gf := metrics.NewTable(
		fmt.Sprintf("Serving: goodput under faults (%g rps)", r.FaultRate),
		"Scenario", "Strategy", "goodput (rps)", "SLO met", "E2E p99 (ms)", "vs healthy")
	for _, row := range r.FaultRows {
		gf.AddRow(row.Scenario, row.Strategy,
			f1(row.Sum.GoodputRPS),
			fmt.Sprintf("%d/%d", row.Sum.SLOMet, row.Sum.Requests),
			f3(row.Sum.E2E.P99),
			fmt.Sprintf("%.3f", row.RelGoodput))
	}
	return lt.String() + "\n" + gf.String()
}

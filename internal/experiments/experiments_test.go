package experiments

import (
	"strings"
	"testing"
)

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{"table1", "fig2", "fig11", "fig12", "fig13a", "fig13b",
		"fig14", "fig15", "fig16", "fig17", "fig18", "table2", "area", "fig10",
		"ablation-eviction", "ablation-sideband", "ablation-granularity",
		"resilience", "serving"}
	reg := Registry()
	for _, id := range want {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(reg), len(want))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", Quick()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1ListsModels(t *testing.T) {
	out := Table1()
	for _, want := range []string{"Mega-GPT-4B", "Mega-GPT-8B", "LLaMA-7B", "4096", "11264"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig2QuickShowsCommGrowth(t *testing.T) {
	r, err := Fig2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatal("too few points")
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	// Communication relative to computation must grow with GPU count.
	if last.Ratio <= first.Ratio {
		t.Errorf("comm/compute ratio did not grow: %v -> %v", first.Ratio, last.Ratio)
	}
	if !strings.Contains(r.Render(), "comm/compute") {
		t.Error("render missing header")
	}
}

func TestFig11QuickCAISWins(t *testing.T) {
	r, err := Fig11(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, base := range []string{"TP-NVLS", "SP-NVLS", "LADM"} {
		if r.Geomean[base] <= 1.0 {
			t.Errorf("CAIS does not beat %s: geomean %.2f", base, r.Geomean[base])
		}
	}
	out := r.Render()
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "CAIS-Base") {
		t.Error("render incomplete")
	}
}

func TestFig12QuickRuns(t *testing.T) {
	r, err := Fig12(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	if r.Geomean["TP-NVLS"] <= 1.0 {
		t.Errorf("sub-layer geomean vs TP-NVLS = %.2f, want > 1", r.Geomean["TP-NVLS"])
	}
}

func TestFig13aCoordinationShrinksTable(t *testing.T) {
	r, err := Fig13a(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.CoordKB > row.UncoordKB {
			t.Errorf("%s/%s: coordinated table %.1fKB larger than uncoordinated %.1fKB",
				row.Model, row.SubLayer, row.CoordKB, row.UncoordKB)
		}
	}
	if r.ReductionPct <= 0 {
		t.Errorf("reduction = %.1f%%, want positive", r.ReductionPct)
	}
}

func TestFig13bCoordinationReducesWaiting(t *testing.T) {
	r, err := Fig13b(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 ablation steps", len(r.Rows))
	}
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.SkewUS >= first.SkewUS {
		t.Errorf("waiting time did not drop: %.1fus -> %.1fus", first.SkewUS, last.SkewUS)
	}
}

func TestFig14CAISToleratesSmallTables(t *testing.T) {
	r, err := Fig14(Quick())
	if err != nil {
		t.Fatal(err)
	}
	smallest, largest := r.Rows[0], r.Rows[len(r.Rows)-1]
	// CAIS at the smallest table must retain more of its large-table
	// performance than the uncoordinated variant retains of its own.
	caisRetention := smallest.CAIS / largest.CAIS
	uncRetention := smallest.Uncoord / largest.Uncoord
	if caisRetention < uncRetention {
		t.Errorf("CAIS retention %.2f < uncoordinated %.2f", caisRetention, uncRetention)
	}
}

func TestFig15UtilizationLadder(t *testing.T) {
	r, err := Fig15(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgBase <= 0 || r.AvgCAIS <= 0 {
		t.Fatal("zero utilization")
	}
	if r.AvgCAIS > 100 || r.AvgBase > 100 {
		t.Fatal("utilization above 100%")
	}
}

func TestFig16ProducesSeries(t *testing.T) {
	r, err := Fig16(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(r.Series))
	}
	for _, s := range r.Series {
		if len(s.Util) == 0 {
			t.Errorf("series %s empty", s.Name)
		}
		for _, u := range s.Util {
			if u < 0 || u > 1 {
				t.Errorf("series %s utilization %v out of range", s.Name, u)
			}
		}
	}
}

func TestFig17PerGPUThroughputStable(t *testing.T) {
	r, err := Fig17(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 2 {
		t.Fatal("too few points")
	}
	if r.Rows[0].CAIS != 1.0 {
		t.Errorf("first point not normalized: %v", r.Rows[0].CAIS)
	}
	last := r.Rows[len(r.Rows)-1]
	if last.CAIS < 0.5 {
		t.Errorf("per-GPU throughput collapsed at scale: %.2f", last.CAIS)
	}
}

func TestFig18ValidationError(t *testing.T) {
	r, err := Fig18(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgErr > 25 {
		t.Errorf("avg validation error %.1f%%, want within 25%% in quick mode", r.AvgErr)
	}
	for _, row := range r.Rows {
		if row.NVLSGain <= 1.0 {
			t.Errorf("%dMB: NVLS not faster than ring (gain %.2f)", row.SizeMB, row.NVLSGain)
		}
	}
}

func TestTable2SpeedupsConsistent(t *testing.T) {
	r, err := Table2(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Speedup <= 0.9 {
			t.Errorf("%s: CAIS speedup %.2f over TP-NVLS too low", row.Setup, row.Speedup)
		}
	}
	full, half := r.Rows[0].Speedup, r.Rows[1].Speedup
	if diff := full/half - 1; diff > 0.25 || diff < -0.25 {
		t.Errorf("scaled-down setup diverges: full %.2f vs half %.2f", full, half)
	}
}

func TestFig10DirectionalTraffic(t *testing.T) {
	r, err := Fig10(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.UpGB <= 0 || row.DownGB <= 0 {
			t.Errorf("%s: zero directional traffic", row.Strategy)
		}
		if row.Imbalance < 0 || row.Imbalance > 1 {
			t.Errorf("%s: imbalance %v out of range", row.Strategy, row.Imbalance)
		}
	}
}

func TestAblationSidebandShowsHoLBlocking(t *testing.T) {
	r, err := AblationSideband(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	on, off := r.Rows[0], r.Rows[1]
	if off.Elapsed <= on.Elapsed {
		t.Errorf("disabling the sideband should slow CAIS: %v vs %v", off.Elapsed, on.Elapsed)
	}
	if off.SkewUS <= on.SkewUS {
		t.Errorf("disabling the sideband should raise arrival skew: %.1f vs %.1f", off.SkewUS, on.SkewUS)
	}
}

func TestAblationEvictionLRUCompetitive(t *testing.T) {
	r, err := AblationEviction(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	lru := r.Rows[0].Elapsed
	for _, row := range r.Rows[1:] {
		if float64(lru) > 1.1*float64(row.Elapsed) {
			t.Errorf("LRU (%v) should be within 10%% of %s (%v)", lru, row.Variant, row.Elapsed)
		}
	}
}

func TestAblationGranularityStableSpeedup(t *testing.T) {
	r, err := AblationGranularity(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// SlowdownPct holds the CAIS-over-TP-NVLS margin here.
		if row.SlowdownPct <= 0 {
			t.Errorf("%s: CAIS margin over TP-NVLS %.1f%%, want positive", row.Variant, row.SlowdownPct)
		}
	}
}

func TestAreaRenders(t *testing.T) {
	out := Area()
	if !strings.Contains(out, "merge units") || !strings.Contains(out, "synchronizer") {
		t.Errorf("area output incomplete:\n%s", out)
	}
}

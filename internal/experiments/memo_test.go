package experiments

import (
	"runtime"
	"testing"

	"cais/internal/attrib"
	"cais/internal/memo"
)

// memoExperiments are drivers sharing anchor points: fig13b's
// coordination-ablation endpoints (CAIS and CAIS-w/o-Coord with an
// unlimited table on L2) reappear as the resilience study's healthy
// waiting-time anchors, and resilience itself re-runs each strategy's
// healthy point once per fault family. Together they must produce cache
// hits, and each must render byte-identically with the cache hot or cold.
// Table II rides along to cover the RunLayers key path. Fig. 16 joins the
// set now that its utilization timeline is a replayable memo artifact
// (Options.UtilBin) instead of a cache-bypassing Configure callback. The
// serving study joins for its anchor shapes: quantized (strategy, token)
// anchors repeat across arrival rates and fault scenarios, so the driver
// must both hit the shared cache and render byte-identically without one.
var memoExperiments = []string{"fig13b", "fig16", "table2", "resilience", "serving"}

// runAll renders the memo-sensitive experiments under one configuration
// and returns the concatenated output.
func runAll(t *testing.T, c Config) string {
	t.Helper()
	var out string
	for _, id := range memoExperiments {
		s, err := Run(id, c)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out += s
	}
	return out
}

// TestMemoStrictlyFewerRuns pins the tentpole's run-count guarantee: with
// a shared cache, an `-experiment all`-style invocation performs strictly
// fewer simulations than lookups — duplicate points across figure drivers
// simulate once.
func TestMemoStrictlyFewerRuns(t *testing.T) {
	c := Quick()
	c.Workers = 1
	c.Memo = memo.NewCache()
	runAll(t, c)
	if c.Memo.Lookups() == 0 {
		t.Fatal("no lookups recorded; drivers are not consulting the cache")
	}
	if c.Memo.Hits() == 0 {
		t.Fatalf("no cache hits across %v: shared anchor points are keying differently", memoExperiments)
	}
	if c.Memo.Misses() >= c.Memo.Lookups() {
		t.Fatalf("misses (%d) not strictly fewer than lookups (%d)", c.Memo.Misses(), c.Memo.Lookups())
	}
	t.Logf("memo: %d lookups, %d hits, %d simulated", c.Memo.Lookups(), c.Memo.Hits(), c.Memo.Misses())
}

// TestMemoOutputByteIdentical pins the correctness half of the contract:
// rendered tables are byte-identical with memoization on and off, and —
// with it on — at worker counts 1, 2 and GOMAXPROCS (the parallel
// determinism suite's ladder). A cache hit must be indistinguishable from
// a cold simulation in every output byte.
func TestMemoOutputByteIdentical(t *testing.T) {
	cold := Quick()
	cold.Workers = 1
	ref := runAll(t, cold)

	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		c := Quick()
		c.Workers = workers
		c.Memo = memo.NewCache()
		if got := runAll(t, c); got != ref {
			t.Errorf("memoized output at workers=%d differs from cold sequential run", workers)
		}
	}

	// A second pass over one shared cache is the all-hits extreme: every
	// point served from memory, still byte-identical.
	c := Quick()
	c.Workers = 1
	c.Memo = memo.NewCache()
	runAll(t, c)
	missesAfterFirst := c.Memo.Misses()
	if got := runAll(t, c); got != ref {
		t.Error("all-hits re-render differs from cold run")
	}
	if c.Memo.Misses() != missesAfterFirst {
		t.Errorf("re-render simulated %d new points, want 0", c.Memo.Misses()-missesAfterFirst)
	}
}

// TestFig16MemoReplay pins the tentpole's replayable-timeline guarantee in
// isolation: Fig. 16 consumes a binned utilization timeline per point, so a
// second regeneration over a shared cache must simulate NOTHING — every
// timeline replays from its memo entry — and still render byte-identically.
func TestFig16MemoReplay(t *testing.T) {
	c := Quick()
	c.Workers = 1
	c.Memo = memo.NewCache()
	first, err := Run("fig16", c)
	if err != nil {
		t.Fatal(err)
	}
	misses := c.Memo.Misses()
	if misses == 0 {
		t.Fatal("cold fig16 run simulated nothing; memo wiring is broken")
	}
	second, err := Run("fig16", c)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("memo-hit fig16 output differs from cold run")
	}
	if c.Memo.Misses() != misses {
		t.Errorf("second fig16 run simulated %d new points, want 0 (timeline did not replay)",
			c.Memo.Misses()-misses)
	}
	if c.Memo.Hits() == 0 {
		t.Error("second fig16 run recorded no cache hits")
	}
}

// TestAttributionReplaysFromMemo checks the other replayable artifact:
// attribution reports cached on a miss must replay on hits with
// byte-identical aggregate output (cold cache vs fully hot cache).
func TestAttributionReplaysFromMemo(t *testing.T) {
	c := Quick()
	c.Workers = 1
	c.Memo = memo.NewCache()
	c.Attrib = attrib.NewAggregator()
	if _, err := Run("fig13b", c); err != nil {
		t.Fatal(err)
	}
	cold := c.Attrib.Render()
	misses := c.Memo.Misses()

	c.Attrib = attrib.NewAggregator()
	if _, err := Run("fig13b", c); err != nil {
		t.Fatal(err)
	}
	if c.Memo.Misses() != misses {
		t.Errorf("hot re-run simulated %d new points, want 0", c.Memo.Misses()-misses)
	}
	if hot := c.Attrib.Render(); hot != cold {
		t.Error("attribution from memo hits differs from cold-run attribution")
	}
}

// Package experiments regenerates every table and figure of the paper's
// evaluation section (the experiment index in DESIGN.md §3): each driver
// runs the simulation sweep behind one figure and returns both structured
// rows and a rendered table for the CLI, benchmarks and EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"

	"cais/internal/attrib"
	"cais/internal/config"
	"cais/internal/memo"
	"cais/internal/metrics"
	"cais/internal/sim"
	"cais/internal/sweep"
)

// Config tunes experiment fidelity.
type Config struct {
	// HW is the base hardware; the drivers override per-experiment knobs
	// (GPU count, merge-table size, request granularity).
	HW config.Hardware

	// Quick trades fidelity for speed: a miniature model and coarse
	// request granularity. Used by the test suite; the CLI and benchmark
	// defaults run the full Table I configurations.
	Quick bool

	// Layers simulated per end-to-end run (layer homogeneity scales the
	// result to full depth; DESIGN.md §1).
	Layers int

	// Workers bounds the sweep worker pool fanning independent simulation
	// points out across goroutines (caissim -parallel). <= 0 selects
	// GOMAXPROCS; 1 runs strictly sequentially. Every driver collects
	// results by point index, so the rendered output is byte-identical at
	// any worker count (DESIGN.md "Parallel sweeps & engine hot path").
	Workers int

	// Memo is the cross-sweep simulation-point cache (DESIGN.md §10). When
	// set, drivers sharing anchor points — the repeated TP-NVLS / CAIS runs
	// behind Figs. 11/12/15/16 and Table II — simulate each point once per
	// invocation. Nil disables memoization (caissim -no-memo); output bytes
	// are identical either way, only the run count changes.
	Memo *memo.Cache

	// ServingRate, when positive, collapses the serving experiment's
	// arrival-rate sweep to this single rate in requests/second (caissim
	// -arrival-rate).
	ServingRate float64

	// ServingSLOMs, when positive, overrides the serving experiment's
	// end-to-end latency SLO in milliseconds (caissim -slo).
	ServingSLOMs float64

	// Metrics, when set, receives per-request serving latency histograms
	// (serve.*_us) from the serving experiment's sequential fold; caissim
	// exports the snapshot through -metrics-json. Registries are not
	// goroutine-safe, so drivers record only during the fold, never from
	// sweep workers.
	Metrics *metrics.Registry

	// Attrib, when set, collects a time-attribution report for every
	// simulation point the drivers run (caissim -attrib, DESIGN.md §12).
	// Points are labeled "<experiment>/<point>" and folded label-sorted, so
	// the aggregate renders byte-identically at any worker count. Nil (the
	// default) keeps attribution fully disabled: options pass through the
	// run helpers untouched.
	Attrib *attrib.Aggregator
}

// Default returns the full-fidelity configuration.
func Default() Config {
	return Config{HW: config.DGXH100(), Layers: 1}
}

// Quick returns the reduced configuration used in tests: coarse request
// granularity everywhere and a miniature model for the wide sweeps, while
// the phenomena-sensitive microstudies keep the real LLaMA-7B shape.
func Quick() Config {
	c := Default()
	c.Quick = true
	c.HW.RequestBytes = 32 << 10
	return c
}

// models returns the evaluation models for the fidelity level.
func (c Config) models() []config.Model {
	if c.Quick {
		return []config.Model{quickModel()}
	}
	return config.TableIModels()
}

// primaryModel is the model used by single-model studies (LLaMA-7B in the
// paper). Quick mode keeps the real model: the microstudies' phenomena
// (merge-table pressure, arrival skew) need realistic tensor shapes.
func (c Config) primaryModel() config.Model {
	return config.LLaMA7B()
}

func quickModel() config.Model {
	return config.Model{Name: "Quick-Tiny", Hidden: 512, FFNHidden: 2048, Heads: 4, SeqLen: 512, Batch: 2, Layers: 4}
}

func (c Config) layers() int {
	if c.Layers > 0 {
		return c.Layers
	}
	return 1
}

// e2eHW is the hardware used for end-to-end sweeps: coarser request
// granularity keeps full-model event counts tractable (DESIGN.md §1).
func (c Config) e2eHW() config.Hardware {
	hw := c.HW
	if !c.Quick && hw.RequestBytes < 32<<10 {
		hw.RequestBytes = 32 << 10
	}
	return hw
}

// microHW is the hardware for the merging/bandwidth microstudies: finer
// request granularity for merge-table fidelity.
func (c Config) microHW() config.Hardware {
	hw := c.HW
	if !c.Quick {
		hw.RequestBytes = 8 << 10
	}
	return hw
}

// microModels returns the models for the microstudies: the real models at
// full fidelity, only the primary one in quick mode.
func (c Config) microModels() []config.Model {
	if c.Quick {
		return []config.Model{c.primaryModel()}
	}
	return config.TableIModels()
}

// Runner produces one experiment's rendered output.
type Runner func(c Config) (string, error)

// Registry maps experiment IDs to their drivers.
func Registry() map[string]Runner {
	return map[string]Runner{
		"table1": func(c Config) (string, error) { return Table1(), nil },
		"fig2":   func(c Config) (string, error) { r, err := Fig2(c); return render(r, err) },
		"fig10":  func(c Config) (string, error) { r, err := Fig10(c); return render(r, err) },
		"fig11":  func(c Config) (string, error) { r, err := Fig11(c); return render(r, err) },
		"fig12":  func(c Config) (string, error) { r, err := Fig12(c); return render(r, err) },
		"fig13a": func(c Config) (string, error) { r, err := Fig13a(c); return render(r, err) },
		"fig13b": func(c Config) (string, error) { r, err := Fig13b(c); return render(r, err) },
		"fig14":  func(c Config) (string, error) { r, err := Fig14(c); return render(r, err) },
		"fig15":  func(c Config) (string, error) { r, err := Fig15(c); return render(r, err) },
		"fig16":  func(c Config) (string, error) { r, err := Fig16(c); return render(r, err) },
		"fig17":  func(c Config) (string, error) { r, err := Fig17(c); return render(r, err) },
		"fig18":  func(c Config) (string, error) { r, err := Fig18(c); return render(r, err) },
		"table2": func(c Config) (string, error) { r, err := Table2(c); return render(r, err) },
		"area":   func(c Config) (string, error) { return Area(), nil },

		// Fault-injection degradation study (DESIGN.md §8).
		"resilience": func(c Config) (string, error) { r, err := Resilience(c); return render(r, err) },

		// Request-level serving workload study (DESIGN.md §13).
		"serving": func(c Config) (string, error) { r, err := Serving(c); return render(r, err) },

		// Design-choice ablations beyond the paper's figures.
		"ablation-eviction": func(c Config) (string, error) { r, err := AblationEviction(c); return render(r, err) },
		"ablation-sideband": func(c Config) (string, error) { r, err := AblationSideband(c); return render(r, err) },
		"ablation-granularity": func(c Config) (string, error) {
			r, err := AblationGranularity(c)
			return render(r, err)
		},
	}
}

// Names lists registered experiment IDs in stable order.
func Names() []string {
	reg := Registry()
	names := make([]string, 0, len(reg))
	for n := range reg {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes one experiment by ID.
func Run(id string, c Config) (string, error) {
	r, ok := Registry()[id]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (have %v)", id, Names())
	}
	return r(c)
}

// mapPoints fans n independent simulation points out on the configured
// worker pool, collecting results by index. Each point must build its own
// engine/machine (strategy.Run* always does); the fold back into rows,
// maps and geomeans happens sequentially in the caller, in index order, so
// output bytes do not depend on Workers.
func mapPoints[T any](c Config, n int, fn func(i int) (T, error)) ([]T, error) {
	return sweep.Map(n, c.Workers, fn)
}

type renderer interface{ Render() string }

func render(r renderer, err error) (string, error) {
	if err != nil {
		return "", err
	}
	return r.Render(), nil
}

func ms(t sim.Time) float64 { return t.Milliseconds() }

package cais_test

import (
	"testing"

	"cais/internal/experiments"
)

// Allocation ceilings for the three benchmark workloads the pooling
// overhauls target (see DESIGN.md §10). The PR-5 pooling pass halved the
// original baseline (BENCH_20260806.json: Fig17 13.18M, Table2 7.44M,
// Fig13b 4.49M allocs/op); the zero-alloc kernel-construction pass (tile
// arenas, pooled latches and dependency records, interned tile sets, the
// single-slot TB continuation) cut the remainder to under a tenth of the
// original. Ceilings sit ~10% above the post-overhaul measurement
// (Fig17 1,235,823 / Table2 695,539 / Fig13b 488,819), so a change that
// reintroduces per-TB or per-registration allocation trips these before
// it reaches a benchmark diff.
// The ceilings double as the attribution PR's disabled-path guard: none of
// these configs set Config.Attrib or Options.UtilBin, so a change that
// makes the off-by-default observability layer allocate (an eagerly built
// tracer, an unconditional recorder) trips them immediately.
const (
	allocCeilingFig17  = 1_360_000 // measured 1,235,823 + ~10%
	allocCeilingTable2 = 765_000   // measured 695,539 + ~10%
	allocCeilingFig13b = 538_000   // measured 488,819 + ~10%
)

// allocsForRun measures one quick-fidelity sequential regeneration.
// Workers is pinned to 1: testing.AllocsPerRun sets GOMAXPROCS to 1, and a
// sequential sweep keeps the measurement free of worker-pool scheduling
// noise.
func allocsForRun(t *testing.T, fn func(c experiments.Config) error) float64 {
	t.Helper()
	cfg := experiments.Quick()
	cfg.Workers = 1
	return testing.AllocsPerRun(1, func() {
		if err := fn(cfg); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAllocCeilingFig17(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin runs full quick sweeps")
	}
	got := allocsForRun(t, func(c experiments.Config) error {
		_, err := experiments.Fig17(c)
		return err
	})
	t.Logf("Fig17 allocs/run: %.0f (ceiling %d)", got, allocCeilingFig17)
	if got > allocCeilingFig17 {
		t.Errorf("Fig17 allocates %.0f per run, over the pinned ceiling %d", got, allocCeilingFig17)
	}
}

func TestAllocCeilingTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin runs full quick sweeps")
	}
	got := allocsForRun(t, func(c experiments.Config) error {
		_, err := experiments.Table2(c)
		return err
	})
	t.Logf("Table2 allocs/run: %.0f (ceiling %d)", got, allocCeilingTable2)
	if got > allocCeilingTable2 {
		t.Errorf("Table2 allocates %.0f per run, over the pinned ceiling %d", got, allocCeilingTable2)
	}
}

func TestAllocCeilingFig13Coordination(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation pin runs full quick sweeps")
	}
	got := allocsForRun(t, func(c experiments.Config) error {
		_, err := experiments.Fig13b(c)
		return err
	})
	t.Logf("Fig13b allocs/run: %.0f (ceiling %d)", got, allocCeilingFig13b)
	if got > allocCeilingFig13b {
		t.Errorf("Fig13b allocates %.0f per run, over the pinned ceiling %d", got, allocCeilingFig13b)
	}
}

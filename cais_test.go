package cais_test

import (
	"strings"
	"testing"

	"cais"
	"cais/internal/kernel"
)

func fastHW() cais.Hardware {
	hw := cais.DGXH100()
	hw.NumGPUs = 4
	hw.NumSwitchPlanes = 2
	hw.SMsPerGPU = 16
	hw.RequestBytes = 16 << 10
	return hw
}

func tiny() cais.Model {
	return cais.Model{Name: "tiny", Hidden: 512, FFNHidden: 1024, Heads: 4, SeqLen: 256, Batch: 2, Layers: 2}
}

func TestFacadeInferenceAndTraining(t *testing.T) {
	hw := fastHW()
	inf, err := cais.RunInference(hw, cais.CAIS(), tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := cais.RunTraining(hw, cais.CAIS(), tiny(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Elapsed <= inf.Elapsed {
		t.Fatalf("training (%v) should exceed inference (%v)", tr.Elapsed, inf.Elapsed)
	}
}

func TestFacadeSubLayer(t *testing.T) {
	subs := cais.SubLayers(tiny())
	if len(subs) != 4 {
		t.Fatalf("sub-layers = %d", len(subs))
	}
	res, err := cais.RunSubLayer(fastHW(), cais.CAIS(), subs[0], cais.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestFacadeServing(t *testing.T) {
	w := cais.ServingWorkload{
		Requests:   8,
		RatePerSec: 500,
		Prompt:     cais.ServingUniform(32, 64),
		Output:     cais.ServingUniform(2, 4),
		Seed:       7,
	}
	res, err := cais.RunServing(fastHW(), cais.CAIS(), tiny(), 1, w, cais.NewMemoCache())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Requests) != w.Requests {
		t.Fatalf("completed %d requests, want %d", len(res.Requests), w.Requests)
	}
	sum := cais.EvaluateServing(res, cais.ServingSLO{})
	if sum.SLOMet != w.Requests || sum.GoodputRPS <= 0 {
		t.Fatalf("unbounded SLO: met %d/%d, goodput %g", sum.SLOMet, sum.Requests, sum.GoodputRPS)
	}
}

func TestFacadeStrategyCatalog(t *testing.T) {
	if len(cais.Strategies()) != 11 {
		t.Fatalf("strategies = %d, want 11", len(cais.Strategies()))
	}
	s, err := cais.StrategyByName("t3-nvls")
	if err != nil || s.Name != "T3-NVLS" {
		t.Fatalf("lookup failed: %v %v", s, err)
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	names := cais.ExperimentNames()
	if len(names) != 19 {
		t.Fatalf("experiments = %d, want 19", len(names))
	}
	out, err := cais.RunExperiment("table1", cais.QuickExperiments())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "LLaMA-7B") {
		t.Fatal("table1 output incomplete")
	}
}

func TestFacadeSessionCustomPipeline(t *testing.T) {
	hw := fastHW()
	s, err := cais.NewSession(hw, cais.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := s.Builder()
	out := b.NewLocalGrid(256, 256)
	k := b.GEMM("custom", 256, 256, 512, 1,
		func(g, mi, ni int) []kernel.Tile { return nil }, out)
	s.Stage(k)
	elapsed, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 || s.DrainedAt() < elapsed {
		t.Fatalf("elapsed=%v drained=%v", elapsed, s.DrainedAt())
	}
	// Second run must be rejected.
	if _, err := s.Run(); err == nil {
		t.Fatal("double Run accepted")
	}
}

func TestFacadeSessionConcurrentStages(t *testing.T) {
	s, err := cais.NewSession(fastHW(), cais.SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := s.Builder()
	o1 := b.NewLocalGrid(256, 256)
	o2 := b.NewLocalGrid(256, 256)
	k1 := b.GEMM("a", 256, 256, 256, 1, func(g, mi, ni int) []kernel.Tile { return nil }, o1)
	k2 := b.GEMM("b", 256, 256, 256, 1, func(g, mi, ni int) []kernel.Tile { return nil }, o2)
	s.Stage(k1)
	s.Concurrent(k2)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.SwitchStats().MergedLoads != 0 {
		t.Fatal("local GEMMs must not touch the merge unit")
	}
}

// Inference: simulate the communication-heavy prefill stage for the three
// Table I models under CAIS and the two Megatron-style NVLS baselines, and
// report where the time goes (the compute/communication split that
// motivates compute-aware in-switch computing, Fig. 2).
//
//	go run ./examples/inference
package main

import (
	"fmt"
	"log"

	"cais"
)

func main() {
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10

	specs := []string{"TP-NVLS", "SP-NVLS", "CAIS"}
	fmt.Printf("prefill latency per transformer layer, %d GPUs\n\n", hw.NumGPUs)
	fmt.Printf("%-14s", "model")
	for _, s := range specs {
		fmt.Printf(" %14s", s)
	}
	fmt.Printf(" %12s\n", "CAIS gain")

	for _, model := range cais.TableIModels() {
		fmt.Printf("%-14s", model.Name)
		var times []cais.Time
		for _, name := range specs {
			spec, err := cais.StrategyByName(name)
			if err != nil {
				log.Fatal(err)
			}
			res, err := cais.RunInference(hw, spec, model, 1)
			if err != nil {
				log.Fatalf("%s/%s: %v", model.Name, name, err)
			}
			times = append(times, res.Elapsed)
			fmt.Printf(" %14v", res.Elapsed)
		}
		best := times[0]
		if times[1] < best {
			best = times[1]
		}
		fmt.Printf(" %11.2fx\n", float64(best)/float64(times[2]))
	}
	fmt.Println("\n(CAIS gain = best NVLS baseline / CAIS; the paper's end-to-end inference geomean over TP-NVLS is 1.38x)")
}

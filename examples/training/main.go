// Training: simulate one transformer layer of a training step (forward +
// backward) for every execution strategy and extrapolate to the full
// model, reproducing the training side of the paper's Fig. 11 for one
// model.
//
//	go run ./examples/training [model]
//
// model: mega-gpt-4b | mega-gpt-8b | llama-7b (default)
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"cais"
)

func main() {
	model := cais.LLaMA7B()
	if len(os.Args) > 1 {
		switch strings.ToLower(os.Args[1]) {
		case "mega-gpt-4b":
			model = cais.MegaGPT4B()
		case "mega-gpt-8b":
			model = cais.MegaGPT8B()
		case "llama-7b":
		default:
			log.Fatalf("unknown model %q", os.Args[1])
		}
	}
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10 // coarse chunks for a fast end-to-end sweep

	fmt.Printf("training step, %s, %d GPUs (1 layer simulated, %d extrapolated)\n\n",
		model.Name, hw.NumGPUs, model.Layers)
	fmt.Printf("%-14s %14s %16s %10s\n", "strategy", "per layer", "full model step", "vs CAIS")
	var caisTime cais.Time
	type row struct {
		name    string
		perStep cais.Time
	}
	var rows []row
	for _, spec := range cais.Strategies() {
		res, err := cais.RunTraining(hw, spec, model, 1)
		if err != nil {
			log.Fatalf("%s: %v", spec.Name, err)
		}
		full := res.Elapsed * cais.Time(model.Layers)
		rows = append(rows, row{spec.Name, full})
		if spec.Name == "CAIS" {
			caisTime = full
		}
	}
	for _, r := range rows {
		rel := float64(r.perStep) / float64(caisTime)
		fmt.Printf("%-14s %14v %16v %9.2fx\n",
			r.name, r.perStep/cais.Time(model.Layers), r.perStep, rel)
	}
	fmt.Println("\n(>1.00x means slower than CAIS; the paper reports 1.37-1.96x for the NVLS and overlap baselines)")
}

// Quickstart: simulate one communication-intensive sub-layer pipeline
// (GEMM-RS -> LayerNorm -> AG-GEMM) of LLaMA-7B on an 8-GPU DGX-H100 under
// compute-aware in-switch computing (CAIS) and under the NVLS baseline,
// and compare them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cais"
)

func main() {
	hw := cais.DGXH100()
	model := cais.LLaMA7B()

	// L2: second FFN layer -> LayerNorm -> input projection (forward).
	sub := cais.SubLayers(model)[1]
	fmt.Printf("workload: %s of %s on %d GPUs\n\n", sub.Desc, model.Name, hw.NumGPUs)

	baseline, err := cais.RunSubLayer(hw, mustStrategy("TP-NVLS"), sub, cais.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	caisRun, err := cais.RunSubLayer(hw, cais.CAIS(), sub, cais.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TP-NVLS (communication-centric, global barriers): %v\n", baseline.Elapsed)
	fmt.Printf("CAIS    (compute-aware, TB-level overlap):        %v\n", caisRun.Elapsed)
	fmt.Printf("speedup: %.2fx\n\n", caisRun.Speedup(baseline))

	st := caisRun.Stats
	fmt.Println("what the switch did for CAIS:")
	fmt.Printf("  ld.cais loads merged:        %d (only %d fetches reached the home GPUs)\n",
		st.MergedLoads, st.LoadFetches)
	fmt.Printf("  red.cais contributions:      %d\n", st.MergedReds)
	fmt.Printf("  TB-group sync releases:      %d\n", st.SyncReleases)
	fmt.Printf("  avg request arrival skew:    %v (coordinated)\n", st.AvgSkew())
	fmt.Printf("  link utilization:            %.1f%%\n", caisRun.AvgUtil*100)
}

func mustStrategy(name string) cais.Strategy {
	s, err := cais.StrategyByName(name)
	if err != nil {
		log.Fatal(err)
	}
	return s
}

// Collectives: use the Session API to build raw collective microbenchmarks
// against the simulated NVSwitch fabric — NVLS in-switch AllReduce vs the
// GPU-driven ring — across message sizes, in the spirit of the paper's
// Fig. 18 validation and its Section II observation that NVLS accelerates
// collectives by 2-8x over GPU-driven implementations.
//
//	go run ./examples/collectives
package main

import (
	"fmt"
	"log"

	"cais"
	"cais/internal/kernel"
	"cais/internal/model"
)

func main() {
	hw := cais.DGXH100()
	hw.RequestBytes = 64 << 10

	fmt.Printf("collectives on %d GPUs, %d switch planes, %.0f GB/s effective per direction\n",
		hw.NumGPUs, hw.NumSwitchPlanes, hw.LinkBandwidth*hw.LinkEfficiency/1e9)

	fmt.Printf("\nAllReduce (multimem.red vs ring)\n")
	fmt.Printf("%-10s %14s %14s %10s %14s\n", "size", "NVLS", "ring", "gain", "NVLS algbw")
	for _, mb := range []int{32, 64, 128, 256} {
		bytes := int64(mb) << 20
		nvls, err := runAllReduce(hw, bytes, true)
		if err != nil {
			log.Fatal(err)
		}
		ring, err := runAllReduce(hw, bytes, false)
		if err != nil {
			log.Fatal(err)
		}
		algbw := float64(bytes) / nvls.Seconds() / 1e9
		fmt.Printf("%-10s %14v %14v %9.2fx %11.1f GB/s\n",
			fmt.Sprintf("%d MB", mb), nvls, ring, float64(ring)/float64(nvls), algbw)
	}

	fmt.Printf("\nAllGather (multimem.st vs ring)\n")
	fmt.Printf("%-10s %14s %14s %10s\n", "size", "NVLS", "ring", "gain")
	for _, mb := range []int{64, 256} {
		nvls, ring, err := runAllGather(hw, int64(mb)<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14v %14v %9.2fx\n", fmt.Sprintf("%d MB", mb), nvls, ring, float64(ring)/float64(nvls))
	}

	fmt.Printf("\nReduceScatter (multimem.ld_reduce vs ring)\n")
	fmt.Printf("%-10s %14s %14s %10s\n", "size", "NVLS", "ring", "gain")
	for _, mb := range []int{64, 256} {
		nvls, ring, err := runReduceScatter(hw, int64(mb)<<20)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %14v %14v %9.2fx\n", fmt.Sprintf("%d MB", mb), nvls, ring, float64(ring)/float64(nvls))
	}
	fmt.Println("\n(AllReduce is where in-switch reduction halves the wire traffic — the paper's 2-8x band;")
	fmt.Println(" AllGather/ReduceScatter move the same volume either way, so NVLS's edge there is latency, not bandwidth)")
}

// runAllGather compares the push-multicast AllGather against the ring.
func runAllGather(hw cais.Hardware, bytes int64) (nvls, ring cais.Time, err error) {
	run := func(useNVLS bool) (cais.Time, error) {
		s, err := cais.NewSession(hw, cais.SessionOptions{})
		if err != nil {
			return 0, err
		}
		b := s.Builder()
		cols := 8192
		rows := int(bytes / int64(cols*hw.ElemBytes))
		if rows < model.TileM {
			rows = model.TileM
		}
		src := b.NewSharded(rows)
		copies := b.NewGathered(rows)
		var tiles []kernel.Tile
		for mi := 0; mi < src.MTiles; mi++ {
			tiles = append(tiles, src.Tile(mi))
		}
		s.PublishTiles(tiles)
		in := func(g, mi, ni int) []kernel.Tile { return nil }
		if useNVLS {
			s.Stage(b.NVLSAllGather("ag", src, cols, in, copies))
		} else {
			s.Stage(b.RingAllGather("ag", src, cols, in, copies))
		}
		if _, err := s.Run(); err != nil {
			return 0, err
		}
		return s.DrainedAt(), nil
	}
	if nvls, err = run(true); err != nil {
		return
	}
	ring, err = run(false)
	return
}

// runReduceScatter compares the pull-reduce ReduceScatter against the ring.
func runReduceScatter(hw cais.Hardware, bytes int64) (nvls, ring cais.Time, err error) {
	run := func(useNVLS bool) (cais.Time, error) {
		s, err := cais.NewSession(hw, cais.SessionOptions{})
		if err != nil {
			return 0, err
		}
		b := s.Builder()
		cols := 8192
		rows := int(bytes / int64(cols*hw.ElemBytes))
		if rows < model.TileM {
			rows = model.TileM
		}
		red := b.NewSharded(rows)
		parts := b.NewParts(rows, cols)
		in := func(g, mi, ni int) []kernel.Tile { return nil }
		if useNVLS {
			s.Stage(b.NVLSReduceScatter("rs", rows, cols, in, red, parts))
		} else {
			s.Stage(b.RingReduceScatter("rs", rows, cols, in, red, parts))
		}
		if _, err := s.Run(); err != nil {
			return 0, err
		}
		return s.DrainedAt(), nil
	}
	if nvls, err = run(true); err != nil {
		return
	}
	ring, err = run(false)
	return
}

// runAllReduce composes the collective from the session builders: the
// payload is shaped as an M x 8192 bf16 tensor and every GPU contributes a
// partial.
func runAllReduce(hw cais.Hardware, bytes int64, nvls bool) (cais.Time, error) {
	s, err := cais.NewSession(hw, cais.SessionOptions{})
	if err != nil {
		return 0, err
	}
	b := s.Builder()
	cols := 8192
	rows := int(bytes / int64(cols*hw.ElemBytes))
	if rows < model.TileM {
		rows = model.TileM
	}
	out := b.NewLocalGrid(rows, cols)
	in := func(g, mi, ni int) []kernel.Tile { return nil }
	var k *kernel.Kernel
	if nvls {
		k = b.NVLSAllReduce("allreduce", rows, cols, in, out)
	} else {
		k = b.RingAllReduce("allreduce", rows, cols, in, out)
	}
	s.Stage(k)
	if _, err := s.Run(); err != nil {
		return 0, err
	}
	// Completion means delivery everywhere: DrainedAt covers the last
	// reduced copy landing, not just the (posted) pushes.
	return s.DrainedAt(), nil
}

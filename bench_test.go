// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation section. Each iteration regenerates the experiment at
// reduced (Quick) fidelity and reports the headline quantity the paper's
// figure shows as a custom metric; the full-fidelity regeneration is
// `go run ./cmd/caissim -experiment all`.
package cais_test

import (
	"testing"

	"cais/internal/attrib"
	"cais/internal/experiments"
)

func benchConfig() experiments.Config { return experiments.Quick() }

func BenchmarkTable1Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkFig2Scaling(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		ratio = r.Rows[len(r.Rows)-1].Ratio
	}
	b.ReportMetric(ratio, "comm/compute@maxGPUs")
}

func BenchmarkFig10AsymmetricTraffic(b *testing.B) {
	var imb float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		imb = r.Rows[len(r.Rows)-1].Imbalance
	}
	b.ReportMetric(imb, "CAIS-volume-imbalance")
}

func BenchmarkFig11EndToEnd(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		geo = r.Geomean["TP-NVLS"]
	}
	b.ReportMetric(geo, "speedup-vs-TP-NVLS")
}

func BenchmarkFig12SubLayer(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		geo = r.Geomean["T3-NVLS"]
	}
	b.ReportMetric(geo, "speedup-vs-T3-NVLS")
}

func BenchmarkFig13MergeTable(b *testing.B) {
	var reduction float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13a(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		reduction = r.ReductionPct
	}
	b.ReportMetric(reduction, "table-size-reduction-%")
}

func BenchmarkFig13Coordination(b *testing.B) {
	var wait float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig13b(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		wait = r.Rows[len(r.Rows)-1].SkewUS
	}
	b.ReportMetric(wait, "coordinated-wait-us")
}

func BenchmarkFig14TableSweep(b *testing.B) {
	var retention float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig14(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		retention = r.Rows[0].CAIS
	}
	b.ReportMetric(retention, "CAIS-perf@smallest-table")
}

func BenchmarkFig15Bandwidth(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		util = r.AvgCAIS
	}
	b.ReportMetric(util, "CAIS-bandwidth-util-%")
}

func BenchmarkFig16UtilOverTime(b *testing.B) {
	var bins float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig16(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		bins = float64(len(r.Series[len(r.Series)-1].Util))
	}
	b.ReportMetric(bins, "series-bins")
}

func BenchmarkFig17GPUScaling(b *testing.B) {
	var tput float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig17(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		tput = r.Rows[len(r.Rows)-1].CAIS
	}
	b.ReportMetric(tput, "per-GPU-throughput@maxGPUs")
}

// BenchmarkFig17Attributed is the same sweep with time attribution on:
// the delta against BenchmarkFig17GPUScaling is the all-in cost of
// tracing every point plus the offline interval sweep. The disabled path
// (the benchmark above) is the regression-guarded one; this one exists to
// keep the enabled-path cost visible in benchmark diffs.
func BenchmarkFig17Attributed(b *testing.B) {
	var points float64
	for i := 0; i < b.N; i++ {
		cfg := benchConfig()
		cfg.Attrib = attrib.NewAggregator()
		if _, err := experiments.Fig17(cfg); err != nil {
			b.Fatal(err)
		}
		points = float64(cfg.Attrib.Len())
	}
	b.ReportMetric(points, "attributed-points")
}

func BenchmarkFig18NVLSValidation(b *testing.B) {
	var errPct float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		errPct = r.AvgErr
	}
	b.ReportMetric(errPct, "avg-validation-error-%")
}

func BenchmarkTable2ScaledDown(b *testing.B) {
	var full float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table2(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		full = r.Rows[0].Speedup
	}
	b.ReportMetric(full, "CAIS-speedup-full-scale")
}

// BenchmarkServingSweep regenerates the request-level serving study: the
// reported metric is CAIS goodput at the fault-study rate — the headline
// number the serving tables exist to produce. Registered in scripts/bench.sh's
// full suite (root package), so `make bench-diff` guards its cost.
func BenchmarkServingSweep(b *testing.B) {
	var goodput float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Serving(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.FaultRows {
			if row.Scenario == "healthy" && row.Strategy == "CAIS" {
				goodput = row.Sum.GoodputRPS
			}
		}
	}
	b.ReportMetric(goodput, "CAIS-goodput-rps")
}

func BenchmarkAblationEviction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEviction(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSideband(b *testing.B) {
	var slowdown float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSideband(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		slowdown = r.Rows[len(r.Rows)-1].SlowdownPct
	}
	b.ReportMetric(slowdown, "no-sideband-slowdown-%")
}

func BenchmarkAreaModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Area(); len(out) == 0 {
			b.Fatal("empty area output")
		}
	}
}

package cais_test

import (
	"bytes"
	"crypto/sha256"
	"runtime"
	"testing"

	"cais"
	"cais/internal/sweep"
)

// The parallel half of the determinism suite: fanning sweep points out
// over a worker pool must not change a single output byte. These tests pin
// the contract at both levels — rendered experiment tables through the
// Config.Workers knob, and raw telemetry/trace digests through sweep.Map
// directly.

// renderExperiment runs one experiment at the given worker count.
func renderExperiment(t *testing.T, id string, workers int) string {
	t.Helper()
	cfg := cais.QuickExperiments()
	cfg.Workers = workers
	out, err := cais.RunExperiment(id, cfg)
	if err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	return out
}

// TestParallelExperimentTablesByteIdentical renders experiment tables at
// -parallel 1, 2 and GOMAXPROCS and requires byte-identical output, plus a
// repeated parallel run to catch scheduling-dependent flakiness.
func TestParallelExperimentTablesByteIdentical(t *testing.T) {
	for _, id := range []string{"fig11", "fig2"} {
		ref := renderExperiment(t, id, 1)
		for _, workers := range []int{2, 0} {
			if got := renderExperiment(t, id, workers); got != ref {
				t.Errorf("%s: workers=%d output differs from sequential\nseq sha256 %x\npar sha256 %x",
					id, workers, sha256.Sum256([]byte(ref)), sha256.Sum256([]byte(got)))
			}
		}
		if a, b := renderExperiment(t, id, 2), renderExperiment(t, id, 2); a != b {
			t.Errorf("%s: repeated parallel runs differ", id)
		}
	}
	// Resilience has the most intricate fold (nested cube, healthy anchors,
	// geomeans); one sequential-vs-parallel comparison covers it without
	// quintupling the suite's runtime.
	if testing.Short() {
		return
	}
	if got, ref := renderExperiment(t, "resilience", 4), renderExperiment(t, "resilience", 1); got != ref {
		t.Error("resilience: parallel output differs from sequential")
	}
	// Serving folds through a different layer (the request-level scheduler
	// over memoized cost anchors); same one-shot coverage.
	if got, ref := renderExperiment(t, "serving", 4), renderExperiment(t, "serving", 1); got != ref {
		t.Error("serving: parallel output differs from sequential")
	}
}

// attribAt runs one experiment with an attribution aggregator attached at
// the given worker count and returns the aggregator's rendered table plus
// its JSON export.
func attribAt(t *testing.T, id string, workers int) string {
	t.Helper()
	cfg := cais.QuickExperiments()
	cfg.Workers = workers
	cfg.Attrib = cais.NewAttribAggregator()
	if _, err := cais.RunExperiment(id, cfg); err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	if cfg.Attrib.Len() == 0 {
		t.Fatalf("%s (workers=%d): aggregator collected no points", id, workers)
	}
	var buf bytes.Buffer
	if err := cfg.Attrib.WriteJSON(&buf); err != nil {
		t.Fatalf("%s (workers=%d): %v", id, workers, err)
	}
	return cfg.Attrib.Render() + buf.String()
}

// TestParallelAttributionByteIdentical extends the ladder to the
// attribution aggregator: per-point reports arrive in worker-completion
// order, but the label-sorted fold must render byte-identically at
// -parallel 1, 2 and GOMAXPROCS.
func TestParallelAttributionByteIdentical(t *testing.T) {
	for _, id := range []string{"fig16", "fig13b"} {
		ref := attribAt(t, id, 1)
		for _, workers := range []int{2, 0} {
			if got := attribAt(t, id, workers); got != ref {
				t.Errorf("%s: attribution at workers=%d differs from sequential\nseq sha256 %x\npar sha256 %x",
					id, workers, sha256.Sum256([]byte(ref)), sha256.Sum256([]byte(got)))
			}
		}
	}
}

// pointDigest hashes everything observable about one sweep point: the
// scalar results plus the full telemetry and trace byte streams.
type pointDigest struct {
	elapsed   cais.Time
	steps     uint64
	telemetry [sha256.Size]byte
	trace     [sha256.Size]byte
}

// digestPoints runs a 3-point request-granularity sweep through sweep.Map
// at the given worker count, digesting each point. Each point builds its
// own engine, machine and tracer — the isolation sweep.Map requires.
func digestPoints(t *testing.T, workers int) []pointDigest {
	t.Helper()
	hw := cais.DGXH100()
	hw.Seed = 0xD37E12
	m := cais.Model{Name: "Tiny", Hidden: 512, FFNHidden: 2048, Heads: 4, SeqLen: 512, Batch: 2, Layers: 2}
	sizes := []int64{16 << 10, 32 << 10, 64 << 10}
	out, err := sweep.Map(len(sizes), workers, func(i int) (pointDigest, error) {
		phw := hw
		phw.RequestBytes = sizes[i]
		tr := cais.NewTracer()
		res, err := cais.RunInferenceOpts(phw, cais.CAIS(), m, 1, cais.RunOptions{Tracer: tr})
		if err != nil {
			return pointDigest{}, err
		}
		var tele, spans bytes.Buffer
		if err := res.Telemetry.WriteJSON(&tele); err != nil {
			return pointDigest{}, err
		}
		if err := tr.WriteJSON(&spans); err != nil {
			return pointDigest{}, err
		}
		return pointDigest{
			elapsed:   res.Elapsed,
			steps:     res.Machine.Eng.Steps(),
			telemetry: sha256.Sum256(tele.Bytes()),
			trace:     sha256.Sum256(spans.Bytes()),
		}, nil
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return out
}

// TestParallelSweepDigestsByteIdentical checks the stronger property under
// the rendered tables: each point's telemetry and trace digests — not just
// the summary rows — are independent of the worker count and stable across
// repeated parallel runs.
func TestParallelSweepDigestsByteIdentical(t *testing.T) {
	ref := digestPoints(t, 1)
	workerCounts := []int{2, runtime.GOMAXPROCS(0), 2}
	for _, workers := range workerCounts {
		got := digestPoints(t, workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("workers=%d point %d: digest differs from sequential run", workers, i)
			}
		}
	}
}

// Package cais is the public facade of the CAIS reproduction: a
// discrete-event simulation stack for compute-aware in-switch computing on
// NVLink/NVSwitch multi-GPU systems, reproducing "Towards Compute-Aware
// In-Switch Computing for LLMs Tensor-Parallelism on Multi-GPU Systems"
// (HPCA 2026).
//
// The facade exposes three levels:
//
//   - Canonical workloads: RunInference / RunTraining / RunSubLayer execute
//     the paper's transformer workloads under any of the twelve execution
//     strategies (CAIS, its ablations, and the nine baselines).
//   - Experiments: RunExperiment regenerates any table or figure of the
//     paper's evaluation section by ID (see ExperimentNames).
//   - Sessions: NewSession (internal/core) composes custom kernel
//     pipelines against the same simulated machine for bespoke studies.
package cais

import (
	"cais/internal/attrib"
	"cais/internal/config"
	"cais/internal/core"
	"cais/internal/experiments"
	"cais/internal/faults"
	"cais/internal/machine"
	"cais/internal/memo"
	"cais/internal/metrics"
	"cais/internal/model"
	"cais/internal/serve"
	"cais/internal/sim"
	"cais/internal/strategy"
	"cais/internal/trace"
)

// Re-exported core types.
type (
	// Hardware is the simulated system configuration (GPUs, switches,
	// links, merge tables).
	Hardware = config.Hardware
	// Model is one LLM workload configuration (Table I).
	Model = config.Model
	// Strategy is one execution strategy (CAIS or a baseline).
	Strategy = strategy.Spec
	// RunOptions are per-run experiment knobs.
	RunOptions = strategy.Options
	// Result is a simulated run's outcome.
	Result = strategy.Result
	// SubLayer is one of the paper's communication-intensive sub-layer
	// pipelines (Fig. 12's L1-L4).
	SubLayer = model.SubLayer
	// Session composes custom kernel pipelines (see internal/core).
	Session = core.Session
	// SessionOptions tune session machine assembly.
	SessionOptions = machine.Options
	// ExperimentConfig tunes experiment fidelity.
	ExperimentConfig = experiments.Config
	// MemoCache is the cross-sweep simulation-point cache: attach one via
	// ExperimentConfig.Memo so experiment drivers sharing anchor points
	// simulate each point once per invocation (DESIGN.md §10). Output is
	// byte-identical with and without it.
	MemoCache = memo.Cache
	// Time is simulated time in picoseconds.
	Time = sim.Time
	// Tracer records simulation events for Perfetto/Chrome trace viewers.
	// A nil Tracer disables tracing with zero overhead.
	Tracer = trace.Tracer
	// Telemetry is a point-in-time snapshot of every registered metric.
	Telemetry = metrics.Snapshot
	// Metric is one named telemetry value in a snapshot.
	Metric = metrics.Metric
	// FaultSchedule is a declarative fault-injection schedule (DESIGN.md
	// §8). Attach via RunOptions.Faults or SessionOptions.Faults; nil
	// reproduces the unfaulted run bit-for-bit.
	FaultSchedule = faults.Schedule
	// Fault is one fault of a schedule (kind, onset, duration, target).
	Fault = faults.Fault
	// AttribReport is one run's deterministic time-attribution report:
	// per-component bucket breakdown plus the critical path (DESIGN.md
	// §12). Produced via RunOptions.Attrib.
	AttribReport = attrib.Report
	// AttribAggregator folds labeled per-point reports into sweep-level
	// tables and JSON/Chrome-trace exports. Attach via
	// ExperimentConfig.Attrib (caissim -attrib).
	AttribAggregator = attrib.Aggregator
	// UtilTimeline is a replayable binned link-utilization timeline
	// (RunOptions.UtilBin).
	UtilTimeline = metrics.UtilTimeline
	// MetricsRegistry registers named counters and gauges and snapshots
	// them into Telemetry.
	MetricsRegistry = metrics.Registry
	// ServingWorkload is an open-loop request-arrival workload for the
	// serving engine (DESIGN.md §13).
	ServingWorkload = serve.Workload
	// ServingLengthDist is a prompt/output token-length distribution;
	// build one with ServingFixed or ServingUniform.
	ServingLengthDist = serve.LengthDist
	// ServingResult is one serving run's completed request trace.
	ServingResult = serve.Result
	// ServingSLO is a latency service-level objective for EvaluateServing.
	ServingSLO = serve.SLO
	// ServingSummary is the SLO/goodput evaluation of a serving run.
	ServingSummary = serve.Summary
)

// NewTracer creates an enabled event tracer. Pass it via RunOptions.Tracer
// (or SessionOptions.Tracer) and serialize with its WriteFile/WriteJSON.
func NewTracer() *Tracer { return trace.New() }

// DGXH100 returns the paper's simulated system configuration.
func DGXH100() Hardware { return config.DGXH100() }

// TableIModels returns the three evaluation models.
func TableIModels() []Model { return config.TableIModels() }

// LLaMA7B returns the LLaMA-7B configuration of Table I.
func LLaMA7B() Model { return config.LLaMA7B() }

// MegaGPT4B returns the Mega-GPT-4B configuration of Table I.
func MegaGPT4B() Model { return config.MegaGPT4B() }

// MegaGPT8B returns the Mega-GPT-8B configuration of Table I.
func MegaGPT8B() Model { return config.MegaGPT8B() }

// Strategies returns the nine baselines plus CAIS-Base and CAIS.
func Strategies() []Strategy { return strategy.All() }

// ExtensionStrategies returns strategies beyond the paper's evaluated set
// (currently CAIS-TP, the compute-aware GEMM-AR lowering of Fig. 1h).
func ExtensionStrategies() []Strategy { return strategy.Extensions() }

// CAIS returns the full compute-aware in-switch computing strategy.
func CAIS() Strategy { return strategy.CAIS() }

// StrategyByName resolves a strategy case-insensitively (including the
// CAIS-Partial and CAIS-w/o-Coord ablations).
func StrategyByName(name string) (Strategy, error) { return strategy.ByName(name) }

// SubLayers returns the paper's L1-L4 sub-layer pipelines for a model.
func SubLayers(m Model) []SubLayer { return model.SubLayers(m) }

// RunInference simulates `layers` transformer layers of prefill under the
// strategy and returns the elapsed simulated time and statistics.
func RunInference(hw Hardware, s Strategy, m Model, layers int) (Result, error) {
	return strategy.RunLayers(hw, s, m, false, layers)
}

// RunTraining simulates `layers` layers of a training step (forward and
// backward) under the strategy.
func RunTraining(hw Hardware, s Strategy, m Model, layers int) (Result, error) {
	return strategy.RunLayers(hw, s, m, true, layers)
}

// RunInferenceOpts is RunInference with run options (tracing, progress
// callbacks, step limits, machine configuration hooks).
func RunInferenceOpts(hw Hardware, s Strategy, m Model, layers int, opts RunOptions) (Result, error) {
	return strategy.RunLayersOpts(hw, s, m, false, layers, opts)
}

// RunTrainingOpts is RunTraining with run options.
func RunTrainingOpts(hw Hardware, s Strategy, m Model, layers int, opts RunOptions) (Result, error) {
	return strategy.RunLayersOpts(hw, s, m, true, layers, opts)
}

// RunSubLayer simulates one sub-layer pipeline under the strategy.
func RunSubLayer(hw Hardware, s Strategy, sub SubLayer, opts RunOptions) (Result, error) {
	return strategy.RunSubLayer(hw, s, sub, opts)
}

// LoadFaultSchedule reads a JSON fault schedule from a file (the grammar
// is documented in DESIGN.md §8).
func LoadFaultSchedule(path string) (*FaultSchedule, error) { return faults.Load(path) }

// ParseFaultSchedule parses a JSON fault schedule.
func ParseFaultSchedule(data []byte) (*FaultSchedule, error) { return faults.Parse(data) }

// NewSession assembles a machine for custom kernel pipelines.
func NewSession(hw Hardware, opts SessionOptions) (*Session, error) {
	return core.NewSession(hw, opts)
}

// NewMemoCache creates an empty simulation-point cache for
// ExperimentConfig.Memo.
func NewMemoCache() *MemoCache { return memo.NewCache() }

// NewAttribAggregator creates an empty attribution aggregator for
// ExperimentConfig.Attrib.
func NewAttribAggregator() *AttribAggregator { return attrib.NewAggregator() }

// NewMetricsRegistry creates an empty metrics registry (caissim uses one
// to export sweep-level counters such as the memo cache's hit/miss totals
// via -metrics-json in experiment mode).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// RegisterMemoMetrics exposes a memo cache's hit/miss/single-flight
// counters in a registry as memo.* gauges.
func RegisterMemoMetrics(c *MemoCache, reg *MetricsRegistry) { c.RegisterMetrics(reg) }

// ServingFixed returns a length distribution yielding v tokens always.
func ServingFixed(v int) ServingLengthDist { return serve.Fixed(v) }

// ServingUniform returns a uniform length distribution over [lo, hi] tokens.
func ServingUniform(lo, hi int) ServingLengthDist { return serve.Uniform(lo, hi) }

// RunServing drives the continuous-batching scheduler over the workload,
// pricing iterations by memoized strategy-layer anchor simulations: layers
// is the per-anchor simulated depth, cache may be nil (a private cache
// still collapses repeated shapes). See DESIGN.md §13.
func RunServing(hw Hardware, s Strategy, m Model, layers int, w ServingWorkload, cache *MemoCache) (ServingResult, error) {
	cm, err := serve.NewStrategyCost(hw, s, m, layers, RunOptions{}, cache)
	if err != nil {
		return ServingResult{}, err
	}
	return serve.Run(w, cm, serve.SchedConfig{})
}

// EvaluateServing computes latency order statistics, throughput and goodput
// for a completed serving run under the SLO.
func EvaluateServing(res ServingResult, slo ServingSLO) ServingSummary {
	return serve.Evaluate(res, slo)
}

// DefaultExperiments returns the full-fidelity experiment configuration.
func DefaultExperiments() ExperimentConfig { return experiments.Default() }

// QuickExperiments returns the reduced-fidelity experiment configuration.
func QuickExperiments() ExperimentConfig { return experiments.Quick() }

// ExperimentNames lists the reproducible tables and figures.
func ExperimentNames() []string { return experiments.Names() }

// RunExperiment regenerates one table or figure by ID and returns its
// rendered output.
func RunExperiment(id string, cfg ExperimentConfig) (string, error) {
	return experiments.Run(id, cfg)
}

package cais_test

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"cais"
)

// The simulator's evaluation is only meaningful if runs are
// bit-reproducible: same configuration and seed must yield the same event
// count, elapsed time, switch statistics, telemetry bytes and trace bytes.
// caislint guards the static side of that invariant (map iteration order,
// wall-clock reads, unseeded randomness); this test guards it at runtime
// by running identical workloads twice and comparing digests.

// runDigest captures everything observable about one run.
type runDigest struct {
	elapsed   cais.Time
	steps     uint64
	stats     string
	avgUtil   float64
	mergeHWM  int64
	telemetry [sha256.Size]byte
	trace     [sha256.Size]byte
	attrib    [sha256.Size]byte
}

func digestRun(t *testing.T, training bool) runDigest {
	return digestRunFaults(t, training, nil)
}

func digestRunFaults(t *testing.T, training bool, sched *cais.FaultSchedule) runDigest {
	t.Helper()
	hw := cais.DGXH100()
	hw.RequestBytes = 32 << 10 // coarse requests keep the event count small
	hw.Seed = 0xD37E12
	m := cais.Model{Name: "Tiny", Hidden: 512, FFNHidden: 2048, Heads: 4, SeqLen: 512, Batch: 2, Layers: 2}
	tr := cais.NewTracer()
	var (
		res cais.Result
		err error
	)
	// Attribution rides along on every digested run: its rendered report
	// plus JSON must be exactly as bit-reproducible as the raw trace.
	opts := cais.RunOptions{Tracer: tr, Faults: sched, Attrib: true}
	if training {
		res, err = cais.RunTrainingOpts(hw, cais.CAIS(), m, 2, opts)
	} else {
		res, err = cais.RunInferenceOpts(hw, cais.CAIS(), m, 2, opts)
	}
	if err != nil {
		t.Fatalf("run(training=%v): %v", training, err)
	}
	var tele, spans, rep bytes.Buffer
	if err := res.Telemetry.WriteJSON(&tele); err != nil {
		t.Fatalf("telemetry: %v", err)
	}
	if err := tr.WriteJSON(&spans); err != nil {
		t.Fatalf("trace: %v", err)
	}
	if res.Attrib == nil {
		t.Fatal("attribution report missing")
	}
	rep.WriteString(res.Attrib.Render())
	if err := res.Attrib.WriteJSON(&rep); err != nil {
		t.Fatalf("attribution: %v", err)
	}
	return runDigest{
		elapsed:   res.Elapsed,
		steps:     res.Machine.Eng.Steps(),
		stats:     fmt.Sprintf("%+v", res.Stats),
		avgUtil:   res.AvgUtil,
		mergeHWM:  res.MergeHWM,
		telemetry: sha256.Sum256(tele.Bytes()),
		trace:     sha256.Sum256(spans.Bytes()),
		attrib:    sha256.Sum256(rep.Bytes()),
	}
}

func assertIdentical(t *testing.T, a, b runDigest) {
	t.Helper()
	if a.elapsed != b.elapsed {
		t.Errorf("elapsed differs across identical runs: %v vs %v", a.elapsed, b.elapsed)
	}
	if a.steps != b.steps {
		t.Errorf("event count differs across identical runs: %d vs %d", a.steps, b.steps)
	}
	if a.stats != b.stats {
		t.Errorf("switch stats differ across identical runs:\n  %s\n  %s", a.stats, b.stats)
	}
	if a.avgUtil != b.avgUtil {
		t.Errorf("link utilization differs across identical runs: %v vs %v", a.avgUtil, b.avgUtil)
	}
	if a.mergeHWM != b.mergeHWM {
		t.Errorf("merge-table HWM differs across identical runs: %d vs %d", a.mergeHWM, b.mergeHWM)
	}
	if a.telemetry != b.telemetry {
		t.Errorf("telemetry JSON digest differs across identical runs")
	}
	if a.trace != b.trace {
		t.Errorf("trace JSON digest differs across identical runs")
	}
	if a.attrib != b.attrib {
		t.Errorf("attribution report digest differs across identical runs")
	}
}

func TestDeterminismInference(t *testing.T) {
	assertIdentical(t, digestRun(t, false), digestRun(t, false))
}

func TestDeterminismTraining(t *testing.T) {
	assertIdentical(t, digestRun(t, true), digestRun(t, true))
}

// TestDeterminismExperimentTables renders experiment tables twice and
// requires byte-identical output — the property that makes regenerated
// paper tables diffable.
func TestDeterminismExperimentTables(t *testing.T) {
	for _, id := range []string{"table1", "fig11"} {
		first, err := cais.RunExperiment(id, cais.QuickExperiments())
		if err != nil {
			t.Fatalf("%s (run 1): %v", id, err)
		}
		second, err := cais.RunExperiment(id, cais.QuickExperiments())
		if err != nil {
			t.Fatalf("%s (run 2): %v", id, err)
		}
		if first != second {
			t.Errorf("%s: rendered table not byte-stable across runs\nrun1 sha256 %x\nrun2 sha256 %x",
				id, sha256.Sum256([]byte(first)), sha256.Sum256([]byte(second)))
		}
	}
}

// TestDeterminismUnderFaults runs the same workload under the same fault
// schedule twice: fault injection (failover, re-routing, retries) must be
// exactly as reproducible as a healthy run.
func TestDeterminismUnderFaults(t *testing.T) {
	sched, err := cais.ParseFaultSchedule([]byte(`{
		"name": "determinism-mix",
		"faults": [
			{"kind": "link-degrade", "at_us": 5, "for_us": 100, "factor": 0.5},
			{"kind": "plane-down", "at_us": 20, "plane": 3},
			{"kind": "straggler", "at_us": 0, "gpu": 1, "factor": 1.5}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, digestRunFaults(t, false, sched), digestRunFaults(t, false, sched))
}

// TestEmptyFaultScheduleMatchesBaseline requires an empty schedule to be
// fully inert: every digest — elapsed, steps, stats, telemetry, trace —
// must match the unfaulted run bit-for-bit.
func TestEmptyFaultScheduleMatchesBaseline(t *testing.T) {
	empty := &cais.FaultSchedule{Name: "empty"}
	assertIdentical(t, digestRun(t, false), digestRunFaults(t, false, empty))
}
